package memlife_test

// One benchmark per reproduced table and figure of the paper (see
// DESIGN.md section 4), plus the ablation benches of section 5 and a
// set of micro-benchmarks for the hot kernels. The macro benches run
// the same experiment drivers the CLI uses, at the reduced "fast"
// scale; the regenerated rows/series go to the benchmark log when run
// with -v via b.Log.

import (
	"sync"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/crossbar"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/experiments"
	"memlife/internal/lifetime"
	"memlife/internal/mapping"
	"memlife/internal/nn"
	"memlife/internal/tensor"
	"memlife/internal/train"
	"memlife/internal/tuning"
)

var benchOpt = experiments.Options{Fast: true, Seed: 1}

// benchLifetimeConfig is the shortened budget macro benches use so a
// single iteration stays in the seconds range.
func benchLifetimeConfig(target float64) lifetime.Config {
	cfg := lifetime.DefaultConfig()
	cfg.TargetAcc = target
	cfg.AppsPerCycle = 1000
	cfg.MaxCycles = 12
	cfg.Tuning.MaxIters = 20
	cfg.EvalN = 48
	return cfg
}

var (
	leNetOnce sync.Once
	leNetB    *experiments.Bundle
	leNetErr  error

	targetOnce sync.Once
	targetVal  float64
	targetErr  error
)

// benchTarget memoizes the per-bundle scenario target accuracy.
func benchTarget(b *testing.B, bundle *experiments.Bundle) float64 {
	b.Helper()
	targetOnce.Do(func() { targetVal, targetErr = experiments.ScenarioTarget(bundle, benchOpt) })
	if targetErr != nil {
		b.Fatal(targetErr)
	}
	return targetVal
}

func leNetBundle(b *testing.B) *experiments.Bundle {
	b.Helper()
	leNetOnce.Do(func() { leNetB, leNetErr = experiments.LeNetBundle(benchOpt) })
	if leNetErr != nil {
		b.Fatal(leNetErr)
	}
	return leNetB
}

var (
	vggOnce sync.Once
	vggB    *experiments.Bundle
	vggErr  error
)

func vggBundle(b *testing.B) *experiments.Bundle {
	b.Helper()
	vggOnce.Do(func() { vggB, vggErr = experiments.VGGBundle(benchOpt) })
	if vggErr != nil {
		b.Fatal(vggErr)
	}
	return vggB
}

// BenchmarkTable1Lifetime regenerates the Table I lifetime comparison
// (T+T vs ST+T vs ST+AT) on the LeNet-5 case at bench scale.
func BenchmarkTable1Lifetime(b *testing.B) {
	bundle := leNetBundle(b)
	target := benchTarget(b, bundle)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := experiments.Table1BundleWithConfig(bundle, benchOpt, benchLifetimeConfig(target))
		if err != nil {
			b.Fatal(err)
		}
		if row.LifeTT > row.LifeSTT {
			b.Fatalf("Table I ordering violated: T+T %d > ST+T %d", row.LifeTT, row.LifeSTT)
		}
	}
}

// BenchmarkTable2SkewedTraining regenerates the Table II parameter rows.
func BenchmarkTable2SkewedTraining(b *testing.B) {
	bundle := leNetBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := train.NetworkStats(bundle.Skewed)
		if len(stats) != 5 {
			b.Fatalf("LeNet-5 must report 5 weight layers, got %d", len(stats))
		}
	}
}

// BenchmarkFig3Distributions regenerates the conventional-training
// distribution histograms of Fig. 3.
func BenchmarkFig3Distributions(b *testing.B) {
	leNetBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := experiments.Fig3(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if d.MeanRelConductance < 0.3 {
			b.Fatalf("conventional training should sit mid-range, got %g", d.MeanRelConductance)
		}
	}
}

// BenchmarkFig4AgingBounds regenerates the aged-range trajectory of
// Fig. 4.
func BenchmarkFig4AgingBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig4(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if pts[len(pts)-1].UsableLevels >= pts[0].UsableLevels {
			b.Fatal("levels must decay with stress")
		}
	}
}

// BenchmarkFig6SkewedDistributions regenerates the skewed-training
// distribution histograms of Fig. 6.
func BenchmarkFig6SkewedDistributions(b *testing.B) {
	leNetBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := experiments.Fig6(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if d.MeanRelConductance > 0.4 {
			b.Fatalf("skewed training should push towards low conductance, got %g", d.MeanRelConductance)
		}
	}
}

// BenchmarkFig7RegularizerShape regenerates the penalty curves of Fig. 7.
func BenchmarkFig7RegularizerShape(b *testing.B) {
	leNetBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Penalty.X) == 0 {
			b.Fatal("penalty series must not be empty")
		}
	}
}

// BenchmarkFig8RangeSelection regenerates the iterative common-range
// selection of Fig. 8 on an unevenly aged layer.
func BenchmarkFig8RangeSelection(b *testing.B) {
	leNetBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Candidates) == 0 {
			b.Fatal("selection must evaluate candidates")
		}
	}
}

// BenchmarkFig9VGGLayer3Histogram regenerates the VGG-16 third-layer
// skewed weight histogram of Fig. 9.
func BenchmarkFig9VGGLayer3Histogram(b *testing.B) {
	vggBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if r.Hist.N == 0 {
			b.Fatal("histogram must not be empty")
		}
	}
}

// BenchmarkFig10TuningTrend regenerates the tuning-iterations-vs-
// applications series of Fig. 10 (LeNet case) at bench scale.
func BenchmarkFig10TuningTrend(b *testing.B) {
	bundle := leNetBundle(b)
	cfg := benchLifetimeConfig(benchTarget(b, bundle))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := bundle.Normal.SnapshotParams()
		res, err := lifetime.Run(bundle.Normal, bundle.TrainDS, lifetime.TT,
			experiments.DeviceParams(), experiments.AgingModel(), experiments.TempK, cfg)
		bundle.Normal.RestoreParams(snap)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 {
			b.Fatal("run must record cycles")
		}
	}
}

// BenchmarkFig11ConvVsFC regenerates the conv-vs-FC aging curves of
// Fig. 11 at bench scale.
func BenchmarkFig11ConvVsFC(b *testing.B) {
	bundle := leNetBundle(b)
	cfg := benchLifetimeConfig(benchTarget(b, bundle))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := bundle.Normal.SnapshotParams()
		res, err := lifetime.Run(bundle.Normal, bundle.TrainDS, lifetime.TT,
			experiments.DeviceParams(), experiments.AgingModel(), experiments.TempK, cfg)
		bundle.Normal.RestoreParams(snap)
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range res.Records {
			if rec.ConvUpper <= 0 || rec.FCUpper <= 0 {
				b.Fatal("per-kind upper bounds must be recorded")
			}
		}
	}
}

// BenchmarkAblationStressModel compares power-proportional vs uniform
// per-pulse stress at bench scale (T+T vs ST+T under both).
func BenchmarkAblationStressModel(b *testing.B) {
	bundle := leNetBundle(b)
	cfg := benchLifetimeConfig(benchTarget(b, bundle))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, uniform := range []bool{false, true} {
			p := experiments.DeviceParams()
			p.UniformStress = uniform
			snap := bundle.Skewed.SnapshotParams()
			_, err := lifetime.Run(bundle.Skewed, bundle.TrainDS, lifetime.STT,
				p, experiments.AgingModel(), experiments.TempK, cfg)
			bundle.Skewed.RestoreParams(snap)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationTracingDensity sweeps the representative-tracing
// stride (1, 3, 5) at bench scale.
func BenchmarkAblationTracingDensity(b *testing.B) {
	bundle := leNetBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, stride := range []int{1, 3, 5} {
			cfg := benchLifetimeConfig(benchTarget(b, bundle))
			cfg.TraceStride = stride
			snap := bundle.Skewed.SnapshotParams()
			_, err := lifetime.Run(bundle.Skewed, bundle.TrainDS, lifetime.STAT,
				experiments.DeviceParams(), experiments.AgingModel(), experiments.TempK, cfg)
			bundle.Skewed.RestoreParams(snap)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationLevels compares the 32- and 64-level devices at
// bench scale.
func BenchmarkAblationLevels(b *testing.B) {
	bundle := leNetBundle(b)
	cfg := benchLifetimeConfig(benchTarget(b, bundle))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range []device.Params{device.Params32(), device.Params64()} {
			snap := bundle.Skewed.SnapshotParams()
			_, err := lifetime.Run(bundle.Skewed, bundle.TrainDS, lifetime.STAT,
				p, experiments.AgingModel(), experiments.TempK, cfg)
			bundle.Skewed.RestoreParams(snap)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationRangePolicy compares the aged-range selection
// policies at bench scale.
func BenchmarkAblationRangePolicy(b *testing.B) {
	bundle := leNetBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range []mapping.PolicyKind{mapping.AgingAware, mapping.WorstCase, mapping.MeanBound} {
			cfg := benchLifetimeConfig(benchTarget(b, bundle))
			p := pol
			cfg.PolicyOverride = &p
			snap := bundle.Skewed.SnapshotParams()
			_, err := lifetime.Run(bundle.Skewed, bundle.TrainDS, lifetime.STAT,
				experiments.DeviceParams(), experiments.AgingModel(), experiments.TempK, cfg)
			bundle.Skewed.RestoreParams(snap)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- micro-benchmarks for the hot kernels ----

func BenchmarkMatMul64(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.New(64, 64)
	y := tensor.New(64, 64)
	out := tensor.New(64, 64)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(y, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := tensor.ConvGeom{InC: 16, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rng := tensor.NewRNG(1)
	in := tensor.New(g.InC, g.InH, g.InW)
	rng.FillNormal(in, 0, 1)
	cols := tensor.New(g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2Col(cols, in, g)
	}
}

func BenchmarkLeNetForward(b *testing.B) {
	rng := tensor.NewRNG(1)
	net, err := nn.NewLeNet5(nn.LeNetConfig{InC: 3, H: 16, W: 16, Classes: 10}, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(16, 3*16*16)
	rng.FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkCrossbarMapWeights(b *testing.B) {
	p := device.Params32()
	rng := tensor.NewRNG(1)
	w := tensor.New(128, 64)
	rng.FillNormal(w, 0, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cb, err := crossbar.New(128, 64, p, aging.DefaultModel(), 300)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	}
}

func BenchmarkEffectiveWeights(b *testing.B) {
	p := device.Params32()
	rng := tensor.NewRNG(1)
	w := tensor.New(128, 64)
	rng.FillNormal(w, 0, 0.5)
	cb, err := crossbar.New(128, 64, p, aging.DefaultModel(), 300)
	if err != nil {
		b.Fatal(err)
	}
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cb.EffectiveWeights(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTuneIteration(b *testing.B) {
	cfgDS := dataset.SynthConfig{Classes: 4, TrainN: 96, TestN: 32, C: 3, H: 8, W: 8, Noise: 0.2, Seed: 9}
	trainDS, testDS := dataset.MustGenerate(cfgDS)
	net, err := nn.NewMLP("bench", []int{trainDS.SampleSize(), 24, 4}, tensor.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := train.Train(net, trainDS, testDS, train.Config{Epochs: 3, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	mn, err := crossbar.NewMappedNetwork(net, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mapping.Map(mn, mapping.Config{Policy: mapping.Fresh}, nil, nil); err != nil {
		b.Fatal(err)
	}
	batch := trainDS.Batches(64, nil)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mn.Drift(0.05, tensor.NewRNG(int64(i)))
		if _, err := tuning.Tune(mn, trainDS, batch.X, batch.Y, tuning.Config{
			MaxIters: 2, TargetAcc: 1.0, BatchSize: 32, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
