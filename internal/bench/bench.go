// Package bench is the programmatic benchmark harness: a registry of
// named micro-kernels covering the hot read path (cached vs naive VMM
// and readback, the batched kernel, raw matmul, and weight mapping),
// run through testing.Benchmark and emitted as a canonical JSON report
// (BENCH_<date>.json). CI re-runs the kernels and gates on a committed
// baseline with Compare: ns/op with a generous cross-machine tolerance
// (it catches order-of-magnitude regressions, not scheduler jitter) and
// allocs/op tightly (allocation counts are machine-independent). The
// machine-independent performance claim — the cached read path is at
// least 3x faster than the naive per-device oracle on repeated reads of
// the same mapped array — is asserted by TestVMMCachedSpeedup, which
// measures both kernels in the same process so hardware cancels out.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/crossbar"
	"memlife/internal/device"
	"memlife/internal/fleet"
	"memlife/internal/telemetry"
	"memlife/internal/tensor"
)

// Result is the measurement of one kernel, plus the kernel's hard
// allocation budget when it declares one. Budgets are part of the
// committed baseline: Compare enforces them on the CURRENT run with no
// slack — exceeding max_allocs_per_op or max_bytes_per_op fails the
// gate exactly like an ns/op regression. Nil means unbudgeted (the
// pointer keeps an absent JSON field distinct from an explicit 0).
type Result struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	Iterations     int     `json:"iterations"`
	MaxAllocsPerOp *int64  `json:"max_allocs_per_op,omitempty"`
	MaxBytesPerOp  *int64  `json:"max_bytes_per_op,omitempty"`
}

// Equal compares two results by value (pointer budgets compare by
// pointee).
func (r Result) Equal(o Result) bool {
	eqPtr := func(a, b *int64) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || *a == *b
	}
	return r.Name == o.Name && r.NsPerOp == o.NsPerOp &&
		r.AllocsPerOp == o.AllocsPerOp && r.BytesPerOp == o.BytesPerOp &&
		r.Iterations == o.Iterations &&
		eqPtr(r.MaxAllocsPerOp, o.MaxAllocsPerOp) && eqPtr(r.MaxBytesPerOp, o.MaxBytesPerOp)
}

// Report is one harness run: environment, date, and per-kernel results
// sorted by kernel name (the JSON encoding is canonical, so reports
// diff cleanly).
type Report struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// Get returns the result for the named kernel.
func (r Report) Get(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// WriteJSON writes the report as canonical indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode report: %w", err)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("bench: decode report: %w", err)
	}
	return rep, nil
}

// kernel is one registered micro-benchmark. setup builds the fixture
// outside the timed region; run is the b.N loop. maxAllocs/maxBytes,
// when non-nil, are the kernel's hard per-op budgets: they are stamped
// into the emitted Result, committed with the baseline, and enforced by
// Compare with zero slack.
type kernel struct {
	name      string
	run       func(b *testing.B)
	maxAllocs *int64
	maxBytes  *int64
}

// zeroAlloc is the budget of the steady-state kernels: 0 allocs/op and
// 0 bytes/op, enforced exactly.
var zeroAlloc int64 = 0

// byteBudgetNoise is the per-run byte total below which a bytes/op
// budget overage is attributed to in-process noise the kernel does not
// own (CPU-profile buffer flushes, runtime housekeeping) rather than a
// leak. See Compare.
const byteBudgetNoise = 64 << 10

// benchState is the shared fixture: one mapped crossbar (no faults, so
// reads are pure and draw no RNG), an input vector, an input batch, and
// a weight matrix. Sized so per-op cost is dominated by the kernel, not
// the harness.
const (
	benchRows  = 64
	benchCols  = 64
	benchBatch = 32
)

func newBenchCrossbar() (*crossbar.Crossbar, *tensor.Tensor, error) {
	cb, err := crossbar.New(benchRows, benchCols, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		return nil, nil, err
	}
	w := tensor.New(benchRows, benchCols)
	tensor.NewRNG(17).FillNormal(w, 0, 0.5)
	p := cb.Params()
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	return cb, w, nil
}

// kernels returns the registry. Each call builds fresh fixtures so
// kernels cannot contaminate each other through device aging.
func kernels() ([]kernel, error) {
	cb, w, err := newBenchCrossbar()
	if err != nil {
		return nil, err
	}
	x := tensor.New(benchRows)
	tensor.NewRNG(18).FillNormal(x, 0, 1)
	xb := tensor.New(benchBatch, benchRows)
	tensor.NewRNG(19).FillNormal(xb, 0, 1)

	// The repeated-read kernels measure steady-state serving: the SAME
	// mapped array read b.N (>= 100) times with no mutation in between,
	// which is exactly the per-application inference pattern the cache
	// was built for.
	ks := []kernel{
		{name: "vmm/cached", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			// Steady-state serving through the caller-owned destination:
			// with a warm cache, zero allocations per read.
			dst := tensor.New(benchCols)
			if err := cb.VMMInto(dst, x); err != nil { // warm the cache outside the timer
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cb.VMMInto(dst, x); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "vmm/naive", run: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cb.VMMNaive(x); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "effweights/cached", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			dst := tensor.New(benchRows, benchCols)
			if err := cb.ReadWeightsInto(dst); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cb.ReadWeightsInto(dst); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "effweights/naive", run: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cb.EffectiveWeightsNaive(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "vmmbatch", run: func(b *testing.B) {
			if _, err := cb.VMMBatch(xb, 0); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cb.VMMBatch(xb, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "vmmbatch/into", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			// The caller-owned-destination batch kernel: the whole batch
			// evaluated with zero allocations.
			dst := tensor.New(benchBatch, benchCols)
			if err := cb.VMMBatchInto(dst, xb, 0); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cb.VMMBatchInto(dst, xb, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "matmul", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			a := tensor.New(benchBatch, benchRows)
			tensor.NewRNG(20).FillNormal(a, 0, 1)
			dst := tensor.New(benchBatch, benchCols)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(dst, a, w)
			}
		}},
		{name: "telemetry/counter_disabled", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			// The disabled-telemetry fast path: a nil registry hands out a
			// nil counter whose Inc is a single-branch no-op. The gate
			// pins this at 0 allocs/op so instrumenting hot loops stays
			// free when no -metrics-out/-trace-out/-debug-addr is set.
			var reg *telemetry.Registry
			c := reg.Counter("bench/disabled")
			h := reg.Histogram("bench/disabled_ns", telemetry.NsBounds())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Inc()
				h.Observe(float64(i))
			}
		}},
		{name: "fleet/tick", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			// One event-clock tick of a small fleet under the busiest
			// balancer. The loop runs past the configured horizon —
			// Tick keeps serving beyond cfg.Ticks — so b.N is
			// unbounded. The gate pins 0 allocs/op: the event heap,
			// routing scratch, sketches and RNG are preallocated at
			// New (see fleet.TestTickSteadyStateZeroAlloc).
			cfg := fleet.Defaults(10, true)
			cfg.Balancer = fleet.BalLeastAged
			sim, err := fleet.New(cfg, device.Params32(), aging.DefaultModel(), 300, 42)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				sim.Tick() // warm past first-touch growth
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Tick()
			}
		}},
		{name: "mapweights", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			// Its own array: repeated programming ages devices, and that
			// wear must not leak into the read kernels. The warm call
			// sizes the aged-bounds memo outside the timer, so the
			// steady-state remap is allocation-free.
			mcb, mw, err := newBenchCrossbar()
			if err != nil {
				b.Fatal(err)
			}
			p := mcb.Params()
			mcb.MapWeights(mw, p.RminFresh, p.RmaxFresh)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mcb.MapWeights(mw, p.RminFresh, p.RmaxFresh)
			}
		}},
		{name: "mapweights/lut", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			// The software-side quantization pass of the range selection
			// (QuantizeWeightsInto): pure LUT arithmetic, no device state,
			// zero allocations into a caller-owned destination.
			dst := tensor.New(benchRows, benchCols)
			p := cb.Params()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cb.QuantizeWeightsInto(dst, w, p.RminFresh, p.RmaxFresh)
			}
		}},
		{name: "model/pulse", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			// The full stochastic pulse path through the model zoo:
			// stress accrual, the counter-based C2C draw, the diffusive
			// StepG (lognormal scaling + relaxation) and the window
			// clamp. Models are cached per Params value and the noise
			// stream is pure counter arithmetic, so dispatching device
			// physics through the Model interface must stay free of
			// per-pulse allocations.
			p := device.Params32()
			p.Model = device.ModelSpec{Kind: device.ModelDiffusive, D2D: 0.05, C2C: 0.02}
			d := device.New(p)
			d.SeedNoise(42)
			lo, hi := p.RminFresh, p.RmaxFresh
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Pulse(1-2*(i&1), lo, hi)
			}
		}},
		{name: "stepdevice/batch", maxAllocs: &zeroAlloc, maxBytes: &zeroAlloc, run: func(b *testing.B) {
			// Batched tuning pulses: one StepDevices call applying a
			// quarter of the array per op, patching the cache per cell.
			// Its own array (pulses age devices).
			scb, sw, err := newBenchCrossbar()
			if err != nil {
				b.Fatal(err)
			}
			steps := make([]crossbar.Step, 0, benchRows*benchCols/4)
			rng := tensor.NewRNG(21)
			for len(steps) < cap(steps) {
				dir := 1
				if rng.Float64() < 0.5 {
					dir = -1
				}
				steps = append(steps, crossbar.Step{I: rng.Intn(benchRows), J: rng.Intn(benchCols), Dir: dir})
			}
			p := scb.Params()
			scb.MapWeights(sw, p.RminFresh, p.RmaxFresh)
			sink := tensor.New(benchRows, benchCols)
			if err := scb.ReadWeightsInto(sink); err != nil { // warm the cache: StepDevices patches it
				b.Fatal(err)
			}
			scb.StepDevices(steps, 2) // warm the bounds memo
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scb.StepDevices(steps, 2)
			}
		}},
	}
	return ks, nil
}

// Names returns the registered kernel names, sorted.
func Names() []string {
	ks, err := kernels()
	if err != nil {
		return nil
	}
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.name
	}
	sort.Strings(names)
	return names
}

// Run measures the named kernels (all of them when names is empty)
// through testing.Benchmark and returns the report. date is stamped
// into the report verbatim (the caller owns the clock).
func Run(date string, names []string) (Report, error) {
	ks, err := kernels()
	if err != nil {
		return Report{}, err
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	rep := Report{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	matched := 0
	for _, k := range ks {
		if len(want) > 0 && !want[k.name] {
			continue
		}
		matched++
		r := testing.Benchmark(k.run)
		if r.N == 0 {
			return Report{}, fmt.Errorf("bench: kernel %s failed (see benchmark log)", k.name)
		}
		rep.Results = append(rep.Results, Result{
			Name:           k.name,
			NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
			Iterations:     r.N,
			MaxAllocsPerOp: k.maxAllocs,
			MaxBytesPerOp:  k.maxBytes,
		})
	}
	if len(want) > 0 && matched != len(want) {
		return Report{}, fmt.Errorf("bench: unknown kernel in %v (known: %v)", names, Names())
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	return rep, nil
}

// RunAll measures every registered kernel.
func RunAll(date string) (Report, error) { return Run(date, nil) }

// Compare gates cur against the committed baseline. ns/op may grow by
// at most a factor of (1+tol) — tol is deliberately generous because
// baselines are recorded on different hardware than CI; the gate exists
// to catch order-of-magnitude regressions (a cache that silently
// stopped caching), not scheduler noise. allocs/op is gated tightly
// (25% + 2 allocs of slack) because allocation counts do not depend on
// the machine. On top of that, a baseline kernel carrying a hard budget
// (max_allocs_per_op / max_bytes_per_op) is enforced with NO per-op
// slack: budgets are contracts, not measurements, and exceeding one
// fails the gate at any ns/op tolerance. The bytes budget alone is
// enforced above a small per-RUN noise floor (byteBudgetNoise): rare
// in-process allocations the kernel does not own — a CPU-profile
// buffer flush under -cpuprofile, runtime housekeeping — amortize to a
// bounded byte total per run and can surface as 1–2 bytes/op, while a
// genuine per-op leak scales with the iteration count (even a single
// 16-byte allocation per op totals megabytes). allocs/op needs no
// floor: testing.Benchmark truncates, so a handful of stray
// allocations over thousands of iterations reads 0. Kernels present
// only in cur are ignored (new kernels need no baseline); kernels
// missing from cur are an error.
func Compare(base, cur Report, tol float64) error {
	if tol < 0 {
		return fmt.Errorf("bench: negative tolerance %g", tol)
	}
	var failures []string
	for _, b := range base.Results {
		c, ok := cur.Get(b.Name)
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		if maxNs := b.NsPerOp * (1 + tol); c.NsPerOp > maxNs {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %gx",
				b.Name, c.NsPerOp, b.NsPerOp, 1+tol))
		}
		if maxAllocs := b.AllocsPerOp + b.AllocsPerOp/4 + 2; c.AllocsPerOp > maxAllocs {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds baseline %d allocs/op (limit %d)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, maxAllocs))
		}
		if b.MaxAllocsPerOp != nil && c.AllocsPerOp > *b.MaxAllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds the hard budget of %d",
				b.Name, c.AllocsPerOp, *b.MaxAllocsPerOp))
		}
		if b.MaxBytesPerOp != nil && c.BytesPerOp > *b.MaxBytesPerOp &&
			(c.BytesPerOp-*b.MaxBytesPerOp)*int64(c.Iterations) > byteBudgetNoise {
			failures = append(failures, fmt.Sprintf("%s: %d bytes/op exceeds the hard budget of %d",
				b.Name, c.BytesPerOp, *b.MaxBytesPerOp))
		}
	}
	if len(failures) > 0 {
		msg := "bench: regression against baseline:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// Speedup returns slow.NsPerOp / fast.NsPerOp from one report — the
// machine-independent ratio (both kernels ran in the same process).
func Speedup(r Report, slow, fast string) (float64, error) {
	s, ok := r.Get(slow)
	if !ok {
		return 0, fmt.Errorf("bench: no result for %s", slow)
	}
	f, ok := r.Get(fast)
	if !ok {
		return 0, fmt.Errorf("bench: no result for %s", fast)
	}
	if f.NsPerOp <= 0 {
		return 0, fmt.Errorf("bench: %s measured %g ns/op", fast, f.NsPerOp)
	}
	return s.NsPerOp / f.NsPerOp, nil
}
