package bench

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func sampleReport() Report {
	return Report{
		Date: "2026-01-01", GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64",
		Results: []Result{
			{Name: "vmm/cached", NsPerOp: 1000, AllocsPerOp: 2, BytesPerOp: 512, Iterations: 100000},
			{Name: "vmm/naive", NsPerOp: 9000, AllocsPerOp: 4, BytesPerOp: 66000, Iterations: 10000},
			{Name: "stepdevice/batch", NsPerOp: 500, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 200000,
				MaxAllocsPerOp: &zeroAlloc, MaxBytesPerOp: &zeroAlloc},
		},
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != rep.Date || len(got.Results) != len(rep.Results) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for _, want := range rep.Results {
		g, ok := got.Get(want.Name)
		if !ok || !g.Equal(want) {
			t.Fatalf("result %s corrupted: got %+v, want %+v", want.Name, g, want)
		}
	}
	// An unbudgeted kernel must round-trip with nil budgets, not 0 —
	// absent and explicit-zero budgets are different contracts.
	g, _ := got.Get("vmm/cached")
	if g.MaxAllocsPerOp != nil || g.MaxBytesPerOp != nil {
		t.Fatalf("unbudgeted kernel decoded with budgets: %+v", g)
	}
	if gb, _ := got.Get("stepdevice/batch"); gb.MaxAllocsPerOp == nil || *gb.MaxAllocsPerOp != 0 {
		t.Fatalf("budgeted kernel lost its budget: %+v", gb)
	}
}

func TestReportJSONIsCanonical(t *testing.T) {
	rep := sampleReport()
	// Shuffle, encode, and require sorted-by-name output.
	rep.Results[0], rep.Results[1] = rep.Results[1], rep.Results[0]
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Index(s, "vmm/cached") > strings.Index(s, "vmm/naive") {
		t.Fatalf("results must encode sorted by name:\n%s", s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Fatal("canonical report must end with a newline")
	}
}

func TestCompareGates(t *testing.T) {
	base := sampleReport()

	ok := sampleReport() // identical: passes at any tolerance
	if err := Compare(base, ok, 0); err != nil {
		t.Fatalf("identical report must pass: %v", err)
	}

	slow := sampleReport()
	slow.Results[0].NsPerOp = base.Results[0].NsPerOp * 10
	if err := Compare(base, slow, 4); err == nil {
		t.Fatal("10x ns/op regression must fail a 5x gate")
	} else if !strings.Contains(err.Error(), "vmm/cached") {
		t.Fatalf("failure must name the kernel: %v", err)
	}
	if err := Compare(base, slow, 20); err != nil {
		t.Fatalf("10x must pass a 21x gate: %v", err)
	}

	leaky := sampleReport()
	leaky.Results[0].AllocsPerOp = 40
	if err := Compare(base, leaky, 4); err == nil {
		t.Fatal("alloc regression must fail even within the ns tolerance")
	}

	missing := sampleReport()
	missing.Results = missing.Results[:1]
	if err := Compare(base, missing, 4); err == nil {
		t.Fatal("a kernel missing from the current run must fail the gate")
	}

	extra := sampleReport()
	extra.Results = append(extra.Results, Result{Name: "new/kernel", NsPerOp: 1})
	if err := Compare(base, extra, 4); err != nil {
		t.Fatalf("kernels without a baseline must be ignored: %v", err)
	}

	// Hard budgets have no slack: a single alloc (or byte) over the
	// committed budget fails the gate at any tolerance, even though the
	// 25%+2 relative alloc gate alone would let it pass.
	overBudget := sampleReport()
	overBudget.Results[2].AllocsPerOp = 1
	if err := Compare(base, overBudget, 1000); err == nil {
		t.Fatal("1 alloc/op over a 0 budget must fail the gate")
	} else if !strings.Contains(err.Error(), "hard budget") {
		t.Fatalf("failure must name the budget: %v", err)
	}
	overBytes := sampleReport()
	overBytes.Results[2].BytesPerOp = 16
	if err := Compare(base, overBytes, 1000); err == nil {
		t.Fatal("16 bytes/op over a 0-byte budget must fail the gate")
	}

	// ...except below the per-run noise floor: 1 byte/op over 5000
	// iterations is a 5 KiB run total — profiler/runtime noise, not a
	// leak — and must pass even though the per-op budget is exceeded.
	noisy := sampleReport()
	noisy.Results[2].BytesPerOp = 1
	noisy.Results[2].Iterations = 5000
	if err := Compare(base, noisy, 1000); err != nil {
		t.Fatalf("sub-noise-floor byte overage must pass: %v", err)
	}

	if err := Compare(base, ok, -1); err == nil {
		t.Fatal("negative tolerance must be rejected")
	}
}

func TestSpeedup(t *testing.T) {
	rep := sampleReport()
	r, err := Speedup(rep, "vmm/naive", "vmm/cached")
	if err != nil {
		t.Fatal(err)
	}
	if r != 9 {
		t.Fatalf("speedup = %g, want 9", r)
	}
	if _, err := Speedup(rep, "absent", "vmm/cached"); err == nil {
		t.Fatal("unknown kernel must error")
	}
}

func TestNamesCoverTheContract(t *testing.T) {
	want := []string{
		"effweights/cached", "effweights/naive", "fleet/tick",
		"mapweights", "mapweights/lut", "matmul", "model/pulse",
		"stepdevice/batch", "telemetry/counter_disabled",
		"vmm/cached", "vmm/naive", "vmmbatch", "vmmbatch/into",
	}
	got := Names()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("kernel registry = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kernel registry = %v, want %v", got, want)
		}
	}
}

func TestRunRejectsUnknownKernel(t *testing.T) {
	if _, err := Run("d", []string{"no/such/kernel"}); err == nil {
		t.Fatal("unknown kernel name must be rejected")
	}
}

// TestDisabledTelemetryZeroAlloc is the regression gate for the
// nil-sink fast path: incrementing a counter and observing a histogram
// from a disabled (nil) registry must cost 0 allocs/op and 0 bytes/op,
// so leaving instrumentation in hot simulation loops is free when no
// telemetry flag is set. Skipped in -short runs like the other
// measurement tests (testing.Benchmark spends ~1s per kernel).
func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	rep, err := Run("test", []string{"telemetry/counter_disabled"})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rep.Get("telemetry/counter_disabled")
	if !ok {
		t.Fatal("telemetry kernel missing from report")
	}
	if r.AllocsPerOp != 0 || r.BytesPerOp != 0 {
		t.Fatalf("disabled telemetry path allocates: %d allocs/op, %d bytes/op (want 0/0)",
			r.AllocsPerOp, r.BytesPerOp)
	}
}

// TestHotKernelBudgets measures every budgeted hot kernel and enforces
// its own stamped budget via Compare(rep, rep, ...): the steady-state
// VMM, batch VMM, readback, mapping, quantization, and batched stepping
// kernels must measure 0 allocs/op and 0 bytes/op on this machine.
// Skipped in -short runs (testing.Benchmark spends ~1s per kernel).
func TestHotKernelBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	names := []string{"vmm/cached", "vmmbatch/into", "effweights/cached", "mapweights", "mapweights/lut", "stepdevice/batch"}
	rep, err := Run("test", names)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		r, ok := rep.Get(n)
		if !ok {
			t.Fatalf("kernel %s missing from report", n)
		}
		if r.MaxAllocsPerOp == nil || r.MaxBytesPerOp == nil {
			t.Fatalf("kernel %s must carry a hard budget", n)
		}
	}
	if err := Compare(rep, rep, 1); err != nil {
		t.Fatalf("hot kernels exceed their own budgets: %v", err)
	}
}

// TestVMMCachedSpeedup is the acceptance check for the cached read
// path: repeated VMMs against the same mapped array (>= 100 reads; in
// practice b.N is far larger) must be at least 3x faster through the
// cache than through the naive per-device oracle. Both kernels run in
// this process, so the ratio is machine-independent. Skipped in -short
// runs: testing.Benchmark spends ~1s per kernel.
func TestVMMCachedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	rep, err := Run("test", []string{"vmm/cached", "vmm/naive"})
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := rep.Get("vmm/cached")
	if cached.Iterations < 100 {
		t.Fatalf("cached kernel ran only %d reads, want >= 100", cached.Iterations)
	}
	ratio, err := Speedup(rep, "vmm/naive", "vmm/cached")
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 3 {
		t.Fatalf("cached VMM speedup %.1fx, want >= 3x", ratio)
	}
	t.Logf("cached VMM speedup: %.1fx", ratio)
}
