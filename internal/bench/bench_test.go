package bench

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func sampleReport() Report {
	return Report{
		Date: "2026-01-01", GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64",
		Results: []Result{
			{Name: "vmm/cached", NsPerOp: 1000, AllocsPerOp: 2, BytesPerOp: 512, Iterations: 100000},
			{Name: "vmm/naive", NsPerOp: 9000, AllocsPerOp: 4, BytesPerOp: 66000, Iterations: 10000},
		},
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != rep.Date || len(got.Results) != len(rep.Results) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Results[0] != rep.Results[0] || got.Results[1] != rep.Results[1] {
		t.Fatalf("results corrupted: %+v", got.Results)
	}
}

func TestReportJSONIsCanonical(t *testing.T) {
	rep := sampleReport()
	// Shuffle, encode, and require sorted-by-name output.
	rep.Results[0], rep.Results[1] = rep.Results[1], rep.Results[0]
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Index(s, "vmm/cached") > strings.Index(s, "vmm/naive") {
		t.Fatalf("results must encode sorted by name:\n%s", s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Fatal("canonical report must end with a newline")
	}
}

func TestCompareGates(t *testing.T) {
	base := sampleReport()

	ok := sampleReport() // identical: passes at any tolerance
	if err := Compare(base, ok, 0); err != nil {
		t.Fatalf("identical report must pass: %v", err)
	}

	slow := sampleReport()
	slow.Results[0].NsPerOp = base.Results[0].NsPerOp * 10
	if err := Compare(base, slow, 4); err == nil {
		t.Fatal("10x ns/op regression must fail a 5x gate")
	} else if !strings.Contains(err.Error(), "vmm/cached") {
		t.Fatalf("failure must name the kernel: %v", err)
	}
	if err := Compare(base, slow, 20); err != nil {
		t.Fatalf("10x must pass a 21x gate: %v", err)
	}

	leaky := sampleReport()
	leaky.Results[0].AllocsPerOp = 40
	if err := Compare(base, leaky, 4); err == nil {
		t.Fatal("alloc regression must fail even within the ns tolerance")
	}

	missing := sampleReport()
	missing.Results = missing.Results[:1]
	if err := Compare(base, missing, 4); err == nil {
		t.Fatal("a kernel missing from the current run must fail the gate")
	}

	extra := sampleReport()
	extra.Results = append(extra.Results, Result{Name: "new/kernel", NsPerOp: 1})
	if err := Compare(base, extra, 4); err != nil {
		t.Fatalf("kernels without a baseline must be ignored: %v", err)
	}

	if err := Compare(base, ok, -1); err == nil {
		t.Fatal("negative tolerance must be rejected")
	}
}

func TestSpeedup(t *testing.T) {
	rep := sampleReport()
	r, err := Speedup(rep, "vmm/naive", "vmm/cached")
	if err != nil {
		t.Fatal(err)
	}
	if r != 9 {
		t.Fatalf("speedup = %g, want 9", r)
	}
	if _, err := Speedup(rep, "absent", "vmm/cached"); err == nil {
		t.Fatal("unknown kernel must error")
	}
}

func TestNamesCoverTheContract(t *testing.T) {
	want := []string{"effweights/cached", "effweights/naive", "fleet/tick", "mapweights", "matmul", "telemetry/counter_disabled", "vmm/cached", "vmm/naive", "vmmbatch"}
	got := Names()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("kernel registry = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kernel registry = %v, want %v", got, want)
		}
	}
}

func TestRunRejectsUnknownKernel(t *testing.T) {
	if _, err := Run("d", []string{"no/such/kernel"}); err == nil {
		t.Fatal("unknown kernel name must be rejected")
	}
}

// TestDisabledTelemetryZeroAlloc is the regression gate for the
// nil-sink fast path: incrementing a counter and observing a histogram
// from a disabled (nil) registry must cost 0 allocs/op and 0 bytes/op,
// so leaving instrumentation in hot simulation loops is free when no
// telemetry flag is set. Skipped in -short runs like the other
// measurement tests (testing.Benchmark spends ~1s per kernel).
func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	rep, err := Run("test", []string{"telemetry/counter_disabled"})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rep.Get("telemetry/counter_disabled")
	if !ok {
		t.Fatal("telemetry kernel missing from report")
	}
	if r.AllocsPerOp != 0 || r.BytesPerOp != 0 {
		t.Fatalf("disabled telemetry path allocates: %d allocs/op, %d bytes/op (want 0/0)",
			r.AllocsPerOp, r.BytesPerOp)
	}
}

// TestVMMCachedSpeedup is the acceptance check for the cached read
// path: repeated VMMs against the same mapped array (>= 100 reads; in
// practice b.N is far larger) must be at least 3x faster through the
// cache than through the naive per-device oracle. Both kernels run in
// this process, so the ratio is machine-independent. Skipped in -short
// runs: testing.Benchmark spends ~1s per kernel.
func TestVMMCachedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark measurement in -short mode")
	}
	rep, err := Run("test", []string{"vmm/cached", "vmm/naive"})
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := rep.Get("vmm/cached")
	if cached.Iterations < 100 {
		t.Fatalf("cached kernel ran only %d reads, want >= 100", cached.Iterations)
	}
	ratio, err := Speedup(rep, "vmm/naive", "vmm/cached")
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 3 {
		t.Fatalf("cached VMM speedup %.1fx, want >= 3x", ratio)
	}
	t.Logf("cached VMM speedup: %.1fx", ratio)
}
