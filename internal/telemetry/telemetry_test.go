package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestValidName(t *testing.T) {
	good := []string{"crossbar/cache_hits", "device/pulses_total", "a/b.c-d_e", "layer/sub/name"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	bad := []string{"", "noslash", "/lead", "trail/", "Upper/case", "sp ace/x"}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t/c")
	c.Inc()
	c.Add(4)
	c.Add(-7) // monotone: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("t/c") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("t/g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t/h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1053.5 {
		t.Fatalf("sum = %g, want 1053.5", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	wantCounts := []int64{2, 1, 1} // <=1: {0.5, 1}; <=10: {2}; <=100: {50}
	for i, want := range wantCounts {
		if hs.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d", i, hs.Buckets[i].Count, want)
		}
	}
	if hs.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", hs.Overflow)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t/x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering t/x as a gauge after counter must panic")
		}
	}()
	r.Gauge("t/x")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid instrument name must panic")
		}
	}()
	r.Counter("NoSlash")
}

// TestNilRegistryAndInstruments: the disabled path must be fully
// nil-safe — nil registry hands out nil instruments, and every method
// no-ops.
func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("a/b")
	g := r.Gauge("a/b")
	h := r.Histogram("a/b", NsBounds())
	tl := r.Timeline("a/b")
	if c != nil || g != nil || h != nil || tl != nil {
		t.Fatal("disabled registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tl.Append(map[string]float64{"x": 1})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || tl.Len() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Timelines) != 0 {
		t.Fatal("nil registry must snapshot empty")
	}
}

// TestDisabledFastPathZeroAllocs is the contract the bench harness
// gates on: incrementing through a disabled registry's handle must not
// allocate.
func TestDisabledFastPathZeroAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("hot/pulses")
	g := r.Gauge("hot/stress")
	h := r.Histogram("hot/lat_ns", NsBounds())
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(0.5)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("disabled instrument ops allocate %v allocs/op, want 0", n)
	}
}

// TestEnabledCounterZeroAllocs: the enabled counter path must also be
// allocation-free (it is on the simulation hot path).
func TestEnabledCounterZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot/pulses")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("enabled Counter.Inc allocates %v allocs/op, want 0", n)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("t/conc")
			g := r.Gauge("t/gconc")
			h := r.Histogram("t/hconc", []float64{10, 100})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("t/conc").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("t/gconc").Value(); got != workers*per {
		t.Fatalf("gauge = %g, want %d", got, workers*per)
	}
	if got := r.Histogram("t/hconc", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestTimeline(t *testing.T) {
	r := NewRegistry()
	tl := r.Timeline("life/timeline")
	tl.Append(map[string]float64{"cycle": 1, "acc": 0.9})
	tl.Append(map[string]float64{"cycle": 2, "acc": 0.8})
	if tl.Len() != 2 {
		t.Fatalf("timeline len = %d, want 2", tl.Len())
	}
	recs, ok := r.Snapshot().Timeline("life/timeline")
	if !ok || len(recs) != 2 || recs[1]["cycle"] != 2 {
		t.Fatalf("snapshot timeline wrong: %v %v", recs, ok)
	}
}

func TestSnapshotCanonicalAndRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("b/two").Add(2)
	r.Counter("a/one").Inc()
	r.Gauge("z/g").Set(3.25)
	r.Histogram("m/h_ns", []float64{1, 2}).Observe(1.5)
	r.Timeline("life/t").Append(map[string]float64{"x": 1})

	var buf1, buf2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("snapshot JSON must be canonical (identical bytes for identical state)")
	}
	if strings.Index(buf1.String(), "a/one") > strings.Index(buf1.String(), "b/two") {
		t.Fatal("counters must be sorted by name")
	}
	back, err := ReadSnapshot(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Counter("b/two"); !ok || v != 2 {
		t.Fatalf("round-trip lost b/two: %d %v", v, ok)
	}
}

// TestDeterministicFilter: wall-clock instruments (the _ns suffix) are
// excluded; everything else survives.
func TestDeterministicFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("a/pure").Inc()
	r.Histogram("a/lat_ns", NsBounds()).Observe(5)
	r.Gauge("a/busy").Set(1)
	d := r.Snapshot().Deterministic()
	if len(d.Histograms) != 0 {
		t.Fatalf("wall-clock histogram must be filtered, got %v", d.Histograms)
	}
	if len(d.Counters) != 1 || len(d.Gauges) != 1 {
		t.Fatalf("pure instruments must survive: %+v", d)
	}
}

// TestSnapshotIdenticalForIdenticalDrives: the registry half of the
// determinism contract — two registries driven by the same event
// sequence snapshot identically.
func TestSnapshotIdenticalForIdenticalDrives(t *testing.T) {
	drive := func() Snapshot {
		r := NewRegistry()
		for i := 0; i < 100; i++ {
			r.Counter("x/events").Inc()
			r.Histogram("x/sizes", []float64{10, 50}).Observe(float64(i))
			r.Timeline("x/t").Append(map[string]float64{"i": float64(i)})
		}
		return r.Snapshot()
	}
	if a, b := drive(), drive(); !reflect.DeepEqual(a, b) {
		t.Fatal("identical drives must snapshot identically")
	}
}

func TestGlobalInstallAndReset(t *testing.T) {
	if Global() != nil {
		t.Fatal("tests must start with telemetry disabled")
	}
	C("g/x").Inc() // disabled: no-op, no panic
	r := NewRegistry()
	SetGlobal(r)
	defer SetGlobal(nil)
	C("g/x").Inc()
	if got := r.Counter("g/x").Value(); got != 1 {
		t.Fatalf("global counter = %d, want 1", got)
	}
	if H("g/h_ns", NsBounds()) == nil || G("g/g") == nil || T("g/t") == nil {
		t.Fatal("global helpers must resolve instruments once installed")
	}
}
