package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attrs are the structured attributes attached to a span or event.
// Values must be JSON-encodable (numbers, strings, bools).
type Attrs map[string]any

// Tracer emits spans and events as JSONL, one object per line:
//
//	{"type":"event","name":"lifetime/cycle","t_us":1234,"attrs":{...}}
//	{"type":"span","name":"tuning/tune","span":7,"t_us":900,"dur_us":334,"attrs":{...}}
//
// t_us is microseconds since the tracer was created; span lines are
// written when the span ends. Writes are serialized, so every line is
// whole — a killed process can tear at most the final line (the same
// torn-tail contract as the campaign checkpoint journal).
//
// A nil *Tracer is the disabled tracer: StartSpan returns a nil span
// and Event is a no-op, so call sites need no enabled-check.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	start  time.Time
	nextID atomic.Uint64
	err    error
}

// NewTracer returns a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now()}
}

// traceLine is the wire form of one span or event.
type traceLine struct {
	Type  string `json:"type"`
	Name  string `json:"name"`
	Span  uint64 `json:"span,omitempty"`
	TUs   int64  `json:"t_us"`
	DurUs int64  `json:"dur_us,omitempty"`
	Attrs Attrs  `json:"attrs,omitempty"`
}

func (t *Tracer) emit(l traceLine) {
	b, err := json.Marshal(l)
	if err != nil {
		// Unencodable attrs: record the failure, keep the stream valid.
		b, _ = json.Marshal(traceLine{Type: "error", Name: l.Name, TUs: l.TUs,
			Attrs: Attrs{"error": err.Error()}})
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return // sink broke earlier; tracing is best-effort
	}
	if _, err := t.w.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

// Err returns the first sink write error (nil while healthy).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Event emits one instantaneous event.
func (t *Tracer) Event(name string, attrs Attrs) {
	if t == nil {
		return
	}
	t.emit(traceLine{Type: "event", Name: name, TUs: time.Since(t.start).Microseconds(), Attrs: attrs})
}

// Span is one in-flight timed operation; End emits it.
type Span struct {
	t     *Tracer
	name  string
	id    uint64
	start time.Time
}

// StartSpan opens a span. On the nil tracer it returns a nil span
// whose End is a no-op.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, id: t.nextID.Add(1), start: time.Now()}
}

// Active reports whether the span is real (false on the nil span from
// a disabled tracer) — the guard call sites use before building attrs.
func (s *Span) Active() bool { return s != nil }

// End emits the span line with its duration and the given attributes.
// Safe on the nil span.
func (s *Span) End(attrs Attrs) {
	if s == nil {
		return
	}
	s.t.emit(traceLine{
		Type:  "span",
		Name:  s.name,
		Span:  s.id,
		TUs:   s.start.Sub(s.t.start).Microseconds(),
		DurUs: time.Since(s.start).Microseconds(),
		Attrs: attrs,
	})
}

// TraceRecord is the parsed form of one JSONL trace line, used by
// tests and tooling reading back a -trace-out file.
type TraceRecord struct {
	Type  string         `json:"type"`
	Name  string         `json:"name"`
	Span  uint64         `json:"span,omitempty"`
	TUs   int64          `json:"t_us"`
	DurUs int64          `json:"dur_us,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// ReadTrace parses a JSONL trace stream. A torn (non-JSON) final line
// is tolerated, matching the writer's kill contract; a malformed
// interior line is an error.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []TraceRecord
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// The malformed line was not the last one: corruption.
			return nil, pendingErr
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("telemetry: trace line %d: %w", line, err)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read trace: %w", err)
	}
	return out, nil
}
