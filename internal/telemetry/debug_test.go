package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("crossbar/cache_hits").Add(7)
	srv, err := StartDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get("/metrics/json")
	if code != 200 {
		t.Fatalf("/metrics/json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics/json is not a snapshot: %v\n%s", err, body)
	}
	if v, ok := snap.Counter("crossbar/cache_hits"); !ok || v != 7 {
		t.Fatalf("served snapshot lost the counter: %v %v", v, ok)
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	srv, err := StartDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics/json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("nil-registry snapshot must still be valid JSON: %v", err)
	}
	if len(snap.Counters) != 0 {
		t.Fatalf("nil registry must serve an empty snapshot: %+v", snap)
	}
}

func TestDebugServerCloseNil(t *testing.T) {
	var srv *DebugServer
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
