package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTracerSpansAndEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.StartSpan("tuning/tune")
	tr.Event("lifetime/cycle", Attrs{"cycle": 1, "acc": 0.75})
	sp.End(Attrs{"iterations": 12, "converged": true})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// The event was emitted before the span ended, so it comes first.
	if recs[0].Type != "event" || recs[0].Name != "lifetime/cycle" || recs[0].Attrs["cycle"].(float64) != 1 {
		t.Fatalf("event record wrong: %+v", recs[0])
	}
	if recs[1].Type != "span" || recs[1].Name != "tuning/tune" || recs[1].Span == 0 {
		t.Fatalf("span record wrong: %+v", recs[1])
	}
	if recs[1].Attrs["converged"].(bool) != true {
		t.Fatalf("span attrs lost: %+v", recs[1].Attrs)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("a/b")
	if sp.Active() {
		t.Fatal("nil tracer must return an inactive span")
	}
	sp.End(Attrs{"x": 1})
	tr.Event("a/b", nil)
	if tr.Err() != nil {
		t.Fatal("nil tracer must report no error")
	}
}

func TestTracerConcurrentLinesWhole(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Event("t/e", Attrs{"worker": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the stream: %v", err)
	}
	if len(recs) != 400 {
		t.Fatalf("got %d records, want 400", len(recs))
	}
}

func TestReadTraceTornTail(t *testing.T) {
	in := `{"type":"event","name":"a/b","t_us":1}` + "\n" + `{"type":"span","name":`
	recs, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	// A malformed interior line is corruption.
	in = `{"bad` + "\n" + `{"type":"event","name":"a/b","t_us":1}` + "\n"
	if _, err := ReadTrace(strings.NewReader(in)); err == nil {
		t.Fatal("malformed interior line must be an error")
	}
}

func TestTracerUnencodableAttrs(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Event("a/b", Attrs{"bad": func() {}}) // functions cannot marshal
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != "error" {
		t.Fatalf("unencodable attrs must degrade to an error record, got %+v", recs)
	}
}
