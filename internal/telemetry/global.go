package telemetry

import "sync/atomic"

// The global registry and tracer are the process-wide install points
// the simulation layers read their instruments from. Both default to
// nil (telemetry disabled): every lookup then returns a nil instrument
// whose methods no-op, so instrumented hot paths cost one branch.
//
// The CLI installs a registry/tracer before running experiments; tests
// install fresh ones per run (and reset to nil) to keep runs isolated.
var (
	globalReg    atomic.Pointer[Registry]
	globalTracer atomic.Pointer[Tracer]
)

// SetGlobal installs r as the process-wide registry (nil disables
// telemetry). Instrument handles resolved from a previous registry
// keep writing to that registry; install before constructing the
// objects you want instrumented.
func SetGlobal(r *Registry) {
	globalReg.Store(r)
}

// Global returns the installed registry — nil when telemetry is
// disabled, which every instrument lookup and method tolerates.
func Global() *Registry {
	return globalReg.Load()
}

// SetGlobalTracer installs t as the process-wide tracer (nil disables
// tracing).
func SetGlobalTracer(t *Tracer) {
	globalTracer.Store(t)
}

// GlobalTracer returns the installed tracer (nil when disabled).
func GlobalTracer() *Tracer {
	return globalTracer.Load()
}

// C resolves a counter from the global registry (nil when disabled).
func C(name string) *Counter { return Global().Counter(name) }

// G resolves a gauge from the global registry (nil when disabled).
func G(name string) *Gauge { return Global().Gauge(name) }

// H resolves a histogram from the global registry (nil when disabled).
func H(name string, bounds []float64) *Histogram { return Global().Histogram(name, bounds) }

// T resolves a timeline from the global registry (nil when disabled).
func T(name string) *Timeline { return Global().Timeline(name) }

// StartSpan opens a span on the global tracer (nil span when tracing
// is disabled).
func StartSpan(name string) *Span { return GlobalTracer().StartSpan(name) }

// Event emits an event on the global tracer (no-op when disabled).
// Callers building non-trivial attrs should guard with
// GlobalTracer() != nil to avoid the map allocation.
func Event(name string, attrs Attrs) { GlobalTracer().Event(name, attrs) }
