// Package telemetry is the observability layer of the simulation
// stack: a zero-external-dependency, concurrency-safe metrics registry
// (counters, gauges, fixed-bucket histograms, timelines) plus a
// lightweight span/event tracer that emits structured JSONL.
//
// Design contract (see DESIGN.md "Telemetry"):
//
//   - Deterministic by construction. Instruments never draw random
//     numbers and never feed back into simulation state, so enabling
//     telemetry cannot change simulation results. Instruments that
//     record wall-clock time (latency histograms, span durations) are
//     named with an "_ns" suffix; everything else is a pure function of
//     the simulated events and is bit-identical across repeated runs —
//     Snapshot.Deterministic filters to exactly that subset.
//
//   - Near-zero cost when disabled. A nil *Registry hands out nil
//     instrument handles, and every instrument method is a nil-receiver
//     no-op: the disabled hot path is one predictable branch, zero
//     allocations (asserted by the bench harness's telemetry kernel).
//
//   - Names are "layer/name" paths: lowercase [a-z0-9_/.-], at least
//     one '/', e.g. "crossbar/cache_hits". Registering the same name
//     twice returns the same instrument; reusing a name across
//     instrument kinds panics (a programmer error worth failing loud).
package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ValidName reports whether name follows the layer/name convention.
func ValidName(name string) bool {
	slash := false
	if len(name) == 0 || name[0] == '/' || name[len(name)-1] == '/' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '/':
			slash = true
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '.', c == '-':
		default:
			return false
		}
	}
	return slash
}

// Counter is a monotonically increasing integer. The nil counter (from
// a disabled registry) accepts every method as a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can move both ways (a level, a rate, an
// accumulated physical quantity such as stress).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta atomically (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= bounds[i]; one implicit overflow bucket catches the
// rest. Sum and Count accumulate exactly.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on the nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on the nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBounds returns n geometric bucket bounds start, start*factor, ...
// — the standard latency-histogram shape.
func ExpBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: invalid ExpBounds(%g, %g, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NsBounds are the default duration buckets (nanoseconds): 1us .. ~17s
// in x4 steps. Instruments using them must carry the "_ns" suffix.
func NsBounds() []float64 { return ExpBounds(1e3, 4, 13) }

// maxTimelineRecords bounds each timeline's memory; appends past the
// cap are counted, not stored (no silent truncation: Snapshot reports
// Dropped).
const maxTimelineRecords = 1 << 16

// Timeline is an append-only sequence of structured records — the
// instrument behind per-cycle lifetime trajectories (the data of
// Fig. 4/8): each record is a flat field->value map, kept in append
// order.
type Timeline struct {
	mu      sync.Mutex
	records []map[string]float64
	dropped int64
}

// Append adds one record. The map is stored as-is; callers must not
// mutate it afterwards.
func (t *Timeline) Append(rec map[string]float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.records) >= maxTimelineRecords {
		t.dropped++
		return
	}
	t.records = append(t.records, rec)
}

// Len returns the number of stored records.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.records)
}

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. A nil *Registry is the disabled registry: every lookup
// returns a nil instrument whose methods no-op.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	timelines map[string]*Timeline
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		timelines: map[string]*Timeline{},
	}
}

func (r *Registry) checkName(name, kind string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("telemetry: invalid instrument name %q (want layer/name, lowercase)", name))
	}
	for k, taken := range map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"histogram": r.hists[name] != nil,
		"timeline":  r.timelines[name] != nil,
	} {
		if taken && k != kind {
			panic(fmt.Sprintf("telemetry: %q already registered as a %s, requested as a %s", name, k, kind))
		}
	}
}

// Counter returns (registering on first use) the named counter; nil on
// the disabled registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkName(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (registering on first use) the named gauge; nil on the
// disabled registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkName(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (registering on first use) the named histogram.
// The first caller's bounds win; later calls return the existing
// instrument whatever bounds they pass. Nil on the disabled registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkName(name, "histogram")
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds must increase strictly", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Timeline returns (registering on first use) the named timeline; nil
// on the disabled registry.
func (r *Registry) Timeline(name string) *Timeline {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timelines[name]; ok {
		return t
	}
	r.checkName(name, "timeline")
	t := &Timeline{}
	r.timelines[name] = t
	return t
}
