package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one histogram bucket: the count of observations with
// value <= LE.
type BucketSnap struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnap is one histogram in a snapshot. Overflow counts
// observations above the last bucket bound (the implicit +Inf bucket,
// kept separate because JSON cannot encode infinity).
type HistogramSnap struct {
	Name     string       `json:"name"`
	Count    int64        `json:"count"`
	Sum      float64      `json:"sum"`
	Buckets  []BucketSnap `json:"buckets"`
	Overflow int64        `json:"overflow"`
}

// TimelineSnap is one timeline in a snapshot: records in append order.
// Dropped counts records lost to the per-timeline cap (0 in any sane
// run).
type TimelineSnap struct {
	Name    string               `json:"name"`
	Records []map[string]float64 `json:"records"`
	Dropped int64                `json:"dropped,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, ordered by
// instrument name within each kind — the canonical JSON form written
// by -metrics-out and served at /metrics/json.
type Snapshot struct {
	// Version is the build header the writing binary stamps on the
	// snapshot (module version and VCS revision, see cmd/memlife
	// -version); empty when the writer predates the field or did not set
	// it. It identifies which build produced a metrics file without
	// affecting the deterministic instrument comparison.
	Version    string          `json:"version,omitempty"`
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
	Timelines  []TimelineSnap  `json:"timelines"`
}

// Snapshot copies the registry's current state. Safe to call
// concurrently with instrument updates; each instrument is read
// atomically (a snapshot taken mid-run is internally consistent per
// instrument, not across instruments). A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	s.Counters = []CounterSnap{}
	s.Gauges = []GaugeSnap{}
	s.Histograms = []HistogramSnap{}
	s.Timelines = []TimelineSnap{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	timelines := make(map[string]*Timeline, len(r.timelines))
	for k, v := range r.timelines {
		timelines[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		hs := HistogramSnap{Name: name, Count: h.Count(), Sum: h.Sum()}
		for i, b := range h.bounds {
			hs.Buckets = append(hs.Buckets, BucketSnap{LE: b, Count: h.counts[i].Load()})
		}
		hs.Overflow = h.counts[len(h.bounds)].Load()
		s.Histograms = append(s.Histograms, hs)
	}
	for name, t := range timelines {
		t.mu.Lock()
		ts := TimelineSnap{Name: name, Records: make([]map[string]float64, len(t.records)), Dropped: t.dropped}
		for i, rec := range t.records {
			cp := make(map[string]float64, len(rec))
			for k, v := range rec {
				cp[k] = v
			}
			ts.Records[i] = cp
		}
		t.mu.Unlock()
		s.Timelines = append(s.Timelines, ts)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Timelines, func(i, j int) bool { return s.Timelines[i].Name < s.Timelines[j].Name })
	return s
}

// wallClock reports whether the instrument name records wall-clock
// time (the "_ns" naming convention) and is therefore excluded from
// determinism comparisons.
func wallClock(name string) bool { return strings.HasSuffix(name, "_ns") }

// Deterministic returns a copy of the snapshot with every wall-clock
// instrument removed: what remains is a pure function of the simulated
// events, bit-identical across identical runs — the subset the
// determinism tests compare.
func (s Snapshot) Deterministic() Snapshot {
	out := Snapshot{
		Counters:   []CounterSnap{},
		Gauges:     []GaugeSnap{},
		Histograms: []HistogramSnap{},
		Timelines:  []TimelineSnap{},
	}
	for _, c := range s.Counters {
		if !wallClock(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if !wallClock(g.Name) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if !wallClock(h.Name) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	for _, t := range s.Timelines {
		if !wallClock(t.Name) {
			out.Timelines = append(out.Timelines, t)
		}
	}
	return out
}

// Counter returns the snapshotted value of the named counter (0, false
// when absent).
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Timeline returns the snapshotted records of the named timeline (nil,
// false when absent).
func (s Snapshot) Timeline(name string) ([]map[string]float64, bool) {
	for _, t := range s.Timelines {
		if t.Name == name {
			return t.Records, true
		}
	}
	return nil, false
}

// WriteJSON writes the snapshot as canonical indented JSON: instrument
// kinds in fixed order, instruments sorted by name, map keys sorted by
// encoding/json.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encode snapshot: %w", err)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	return s, nil
}
