package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsHandler serves the canonical JSON snapshot of reg (live
// values). reg may be nil (serves an empty snapshot). Exposed on its
// own so servers composing a larger mux (the serve daemon) can mount
// it next to their own endpoints.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			// Headers are gone; nothing useful left to do.
			return
		}
	})
}

// AddPprofHandlers mounts the net/http/pprof profile endpoints under
// /debug/pprof/ on mux.
func AddPprofHandlers(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugMux returns the introspection HTTP handler:
//
//	/metrics/json  — canonical JSON snapshot of reg (live values)
//	/healthz       — "ok\n" once the process is serving
//	/debug/pprof/* — net/http/pprof profiles
//
// reg may be nil (serves an empty snapshot). The mux is read-only: no
// endpoint mutates registry or simulation state.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics/json", MetricsHandler(reg))
	AddPprofHandlers(mux)
	return mux
}

// DebugServer is a running debug listener (see StartDebug).
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebug binds addr (host:port; ":0" picks a free port) and serves
// DebugMux(reg) in a background goroutine until Close.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // always ErrServerClosed after Close
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close gracefully shuts the server down (bounded wait, then hard
// close). Safe on nil.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return d.srv.Shutdown(ctx)
}
