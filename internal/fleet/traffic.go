package fleet

import "math"

// rng is a splitmix64 stream — the same mixing discipline
// internal/campaign uses for shard-seed derivation, inlined here so
// the tick path stays allocation- and interface-free.
type rng struct{ s uint64 }

func newRNG(seed int64) rng { return rng{s: uint64(seed)} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// hashKey is a stateless splitmix64 finalizer used for hash-affinity
// routing (deterministic, independent of the arrival stream).
func hashKey(key int32) uint64 {
	x := uint64(key) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// traffic generates the synthetic request stream: a deterministic load
// envelope (diurnal sinusoid, bursty square wave, or steady) with a
// stochastic fractional remainder, and a Zipf-skewed key mix sampled
// by binary search over precomputed cumulative weights. All state is
// preallocated; generating a tick's arrivals allocates nothing.
type traffic struct {
	cfg Traffic
	cum []float64 // cumulative key weights, cum[len-1] == 1
}

func newTraffic(cfg Traffic) *traffic {
	t := &traffic{cfg: cfg, cum: make([]float64, cfg.Keys)}
	sum := 0.0
	for k := 0; k < cfg.Keys; k++ {
		w := 1.0
		if cfg.ZipfS > 0 {
			w = math.Pow(float64(k+1), -cfg.ZipfS)
		}
		sum += w
		t.cum[k] = sum
	}
	for k := range t.cum {
		t.cum[k] /= sum
	}
	t.cum[len(t.cum)-1] = 1 // guard against rounding
	return t
}

// load returns the deterministic arrival-rate envelope at tick tk.
func (t *traffic) load(tk int64) float64 {
	switch t.cfg.Pattern {
	case PatternDiurnal:
		phase := 2 * math.Pi * float64(tk%int64(t.cfg.PeriodTicks)) / float64(t.cfg.PeriodTicks)
		return t.cfg.Load * (1 + t.cfg.PeakFactor*math.Sin(phase))
	case PatternBursty:
		period := int64(t.cfg.BurstOn + t.cfg.BurstOff)
		if tk%period < int64(t.cfg.BurstOn) {
			return t.cfg.Load * t.cfg.BurstFactor
		}
		return t.cfg.Load
	default: // PatternZipf: steady envelope, skew in the key mix
		return t.cfg.Load
	}
}

// arrivals returns the request count for tick tk: the integer part of
// the envelope plus a Bernoulli draw on the fractional remainder, so
// the expected rate matches the envelope exactly.
func (t *traffic) arrivals(tk int64, r *rng) int {
	rate := t.load(tk)
	n := int(rate)
	if r.float64() < rate-float64(n) {
		n++
	}
	return n
}

// sampleKey draws one request class from the key mix.
func (t *traffic) sampleKey(r *rng) int32 {
	u := r.float64()
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}
