package fleet

import (
	"fmt"

	"memlife/internal/telemetry"
)

// maxQueueGauges caps how many per-instance queue-depth gauges are
// registered — large fleets export the first few plus the fleet-wide
// total rather than thousands of instruments.
const maxQueueGauges = 16

// fleetTel holds the simulator's telemetry handles, resolved once at
// New from the global registry (all nil when telemetry is disabled;
// every Set below is then a no-op). Gauges reflect simulation state on
// the event clock, not wall time, so snapshots stay deterministic.
type fleetTel struct {
	live         *telemetry.Gauge // instances currently serving
	queueTotal   *telemetry.Gauge // fleet-wide backlog
	perQueue     []*telemetry.Gauge
	deaths       *telemetry.Gauge
	replacements *telemetry.Gauge
	retunes      *telemetry.Gauge
	remaps       *telemetry.Gauge
	dropped      *telemetry.Gauge
	served       *telemetry.Gauge
	p99Latency   *telemetry.Gauge // latency proxy (ticks to drain), p99
	p99Acc       *telemetry.Gauge // accuracy met by 99% of requests
}

func newFleetTel(instances int) *fleetTel {
	r := telemetry.Global()
	if r == nil {
		return &fleetTel{perQueue: make([]*telemetry.Gauge, 0)}
	}
	t := &fleetTel{
		live:         r.Gauge("fleet/live_instances"),
		queueTotal:   r.Gauge("fleet/queue_depth"),
		deaths:       r.Gauge("fleet/deaths"),
		replacements: r.Gauge("fleet/replacements"),
		retunes:      r.Gauge("fleet/retunes"),
		remaps:       r.Gauge("fleet/remaps"),
		dropped:      r.Gauge("fleet/dropped"),
		served:       r.Gauge("fleet/served"),
		p99Latency:   r.Gauge("fleet/p99_latency_proxy"),
		p99Acc:       r.Gauge("fleet/p99_accuracy"),
	}
	n := instances
	if n > maxQueueGauges {
		n = maxQueueGauges
	}
	t.perQueue = make([]*telemetry.Gauge, n)
	for i := range t.perQueue {
		t.perQueue[i] = r.Gauge(fmt.Sprintf("fleet/instance%02d/queue_depth", i))
	}
	return t
}

// observe publishes the per-tick fleet state.
func (t *fleetTel) observe(s *Sim) {
	live := 0
	var total int64
	for i := range s.insts {
		in := &s.insts[i]
		if in.state == stServing {
			live++
		}
		total += in.queue
		if i < len(t.perQueue) {
			t.perQueue[i].Set(float64(in.queue))
		}
	}
	t.live.Set(float64(live))
	t.queueTotal.Set(float64(total))
	t.deaths.Set(float64(s.deaths))
	t.replacements.Set(float64(s.replacements))
	t.retunes.Set(float64(s.retunes))
	t.remaps.Set(float64(s.remaps))
	t.dropped.Set(float64(s.dropped))
	t.served.Set(float64(s.servedTotal))
}

// observeQuantiles publishes the sketch-derived tail gauges (sampled
// at survival-curve resolution — the sketch walk is O(buckets)).
func (t *fleetTel) observeQuantiles(s *Sim) {
	if t.p99Latency == nil && t.p99Acc == nil {
		return
	}
	t.p99Latency.Set(s.latSketch.Quantile(0.99))
	t.p99Acc.Set(s.accSketch.Quantile(0.01))
}
