// Package fleet simulates a population of crossbar instances behind a
// load balancer under synthetic traffic — the systems layer that turns
// the per-device lifetime model into fleet-survival and
// p99-accuracy-under-load results (ROADMAP item 3, after the DNN-Life
// framing of aging mitigation as a fleet/energy problem).
//
// The simulator is event-driven and deterministic: a binary heap of
// (time, sequence) ordered events carries maintenance completions and
// a recurring traffic tick; all randomness comes from one splitmix64
// stream derived from the run seed (the same seeding discipline as
// internal/campaign). Given equal (Config, device, model, tempK,
// seed), two runs produce identical results whatever the host, worker
// count, or wall clock — the campaign engine's byte-identity guarantee
// extends through fleet shards unchanged.
//
// The aging loop closed on the event clock:
//
//	load -> inference count -> read-disturb drift -> retune ->
//	programming stress -> window shrink (aging.Model.Bounds) ->
//	costlier tuning -> remap -> ... -> usable levels < MinLevels ->
//	death -> replacement
package fleet

import (
	"fmt"
	"math"
)

// Balancer names the routing policies.
const (
	BalRoundRobin   = "round-robin"
	BalLeastAged    = "least-aged"
	BalHashAffinity = "hash-affinity"
)

// Traffic patterns.
const (
	PatternDiurnal = "diurnal"
	PatternBursty  = "bursty"
	PatternZipf    = "zipf"
)

// Config parameterizes one fleet simulation. The zero value is not
// runnable; start from Defaults (or a spec file) and call Normalized
// before Validate/New.
type Config struct {
	// Instances is the crossbar population size.
	Instances int `json:"instances"`
	// Ticks is the simulation horizon in event-clock ticks.
	Ticks int `json:"ticks"`
	// Balancer selects the routing policy: "round-robin",
	// "least-aged" (fill the lowest-stress instance first) or
	// "hash-affinity" (requests stick to hash(key) mod N).
	Balancer string `json:"balancer"`
	// SamplePoints bounds the survival-curve resolution (points are
	// taken every Ticks/SamplePoints ticks).
	SamplePoints int `json:"sample_points"`

	Traffic Traffic `json:"traffic"`
	Service Service `json:"service"`
	Wear    Wear    `json:"wear"`
	Replace Replace `json:"replace"`
}

// Traffic shapes the synthetic request stream.
type Traffic struct {
	// Pattern selects the load envelope: "diurnal" (sinusoid),
	// "bursty" (on/off square wave) or "zipf" (steady; the skew lives
	// in the key mix).
	Pattern string `json:"pattern"`
	// Load is the fleet-wide mean arrival rate in requests per tick.
	Load float64 `json:"load"`
	// PeakFactor is the diurnal sinusoid amplitude as a fraction of
	// Load (0..1).
	PeakFactor float64 `json:"peak_factor"`
	// PeriodTicks is the diurnal period.
	PeriodTicks int `json:"period_ticks"`
	// BurstFactor multiplies Load during the on-phase of the bursty
	// pattern (>= 1).
	BurstFactor float64 `json:"burst_factor"`
	// BurstOn/BurstOff are the on/off phase lengths in ticks.
	BurstOn  int `json:"burst_on"`
	BurstOff int `json:"burst_off"`
	// Keys is the number of request classes (e.g. dataset classes for
	// hot-key affinity).
	Keys int `json:"keys"`
	// ZipfS is the Zipf skew exponent of the key mix; 0 = uniform.
	ZipfS float64 `json:"zipf_s"`
}

// Service models one instance's serving and maintenance behavior.
type Service struct {
	// Capacity is the requests one healthy instance serves per tick.
	Capacity int `json:"capacity"`
	// QueueCap bounds the per-instance backlog; arrivals beyond it are
	// dropped.
	QueueCap int `json:"queue_cap"`
	// TargetAcc is the delivered-accuracy floor the fleet maintains.
	TargetAcc float64 `json:"target_acc"`
	// TuneMargin is the retune eagerness: maintenance starts when
	// delivered accuracy falls below TargetAcc + TuneMargin. 0 = lazy
	// (ride to the floor), larger = eager (more headroom, more wear).
	TuneMargin float64 `json:"tune_margin"`
	// BaseIters is the iterations a retune needs on a freshly mapped
	// window.
	BaseIters float64 `json:"base_iters"`
	// MaxIters is the per-retune iteration budget; beyond it the
	// instance remaps instead (the paper's lifetime criterion applied
	// as a maintenance policy).
	MaxIters float64 `json:"max_iters"`
	// CostExponent shapes how tuning cost grows as the usable window
	// shrinks relative to the last remap: iters = BaseIters *
	// (usableAtRemap/usable)^CostExponent.
	CostExponent float64 `json:"cost_exponent"`
	// ItersPerTick converts tuning iterations to downtime ticks.
	ItersPerTick float64 `json:"iters_per_tick"`
	// RemapTicks is the extra downtime of an aging-aware remap (on top
	// of the post-remap tune).
	RemapTicks int `json:"remap_ticks"`
	// MinLevels is the usable-level floor below which no remap helps:
	// the instance is dead (replaced if Replace.Enabled).
	MinLevels int `json:"min_levels"`
}

// Wear couples load to the aging physics.
type Wear struct {
	// BaseAcc is the delivered accuracy of a freshly tuned, unaged
	// instance.
	BaseAcc float64 `json:"base_acc"`
	// DriftPerApp is the accuracy lost per served inference to read
	// disturb, recovered by the next retune.
	DriftPerApp float64 `json:"drift_per_app"`
	// StressPerIter is the normalized programming stress added per
	// tuning iteration (the aging.Model stress unit).
	StressPerIter float64 `json:"stress_per_iter"`
	// MapStress is the stress of one full remap pass (every device
	// reprogrammed).
	MapStress float64 `json:"map_stress"`
	// LevelPenalty is the accuracy lost as the usable-level fraction
	// decays: postTuneAcc = BaseAcc - LevelPenalty*(1 - usable/levels).
	LevelPenalty float64 `json:"level_penalty"`
}

// Replace is the end-of-life policy.
type Replace struct {
	// Enabled swaps a fresh crossbar in for a dead one.
	Enabled bool `json:"enabled"`
	// Ticks is the swap lead time.
	Ticks int `json:"ticks"`
	// Cost is the unit cost per replacement (tradeoff metric only).
	Cost float64 `json:"cost"`
}

// Defaults returns a runnable configuration calibrated against the
// spec-layer default device (32-level TiOx) and accelerated aging
// model: instances die mid-horizon, so survival curves and the
// retune -> remap -> replace cascade are all exercised. keys sizes the
// request-class space (e.g. the fixture's class count).
func Defaults(keys int, fast bool) Config {
	c := Config{
		Instances:    48,
		Ticks:        4000,
		Balancer:     BalRoundRobin,
		SamplePoints: 64,
		Traffic: Traffic{
			Pattern:     PatternDiurnal,
			PeakFactor:  0.5,
			PeriodTicks: 200,
			BurstFactor: 4,
			BurstOn:     20,
			BurstOff:    80,
			Keys:        keys,
			ZipfS:       1.1,
		},
		Service: Service{
			Capacity:     100,
			QueueCap:     500,
			TargetAcc:    0.76,
			TuneMargin:   0.02,
			BaseIters:    8,
			MaxIters:     150,
			CostExponent: 2,
			ItersPerTick: 50,
			RemapTicks:   5,
			MinLevels:    4,
		},
		Wear: Wear{
			BaseAcc:       0.86,
			DriftPerApp:   1.5e-4,
			StressPerIter: 0.01,
			MapStress:     0.5,
			LevelPenalty:  0.08,
		},
		Replace: Replace{Enabled: true, Ticks: 20, Cost: 1},
	}
	c.Traffic.Load = 0.6 * float64(c.Service.Capacity*c.Instances)
	if fast {
		c.Instances = 12
		c.Ticks = 600
		// Compress lifetimes into the short horizon: faster wear and a
		// tighter iteration budget (the same compression the lifetime
		// layer's fast tier applies), so the full retune -> remap ->
		// die cascade still plays out.
		c.Wear.StressPerIter = 0.03
		c.Service.MaxIters = 60
		c.Traffic.Load = 0.6 * float64(c.Service.Capacity*c.Instances)
		c.Traffic.PeriodTicks = 100
	}
	return c
}

// Normalized fills zero-valued fields with their documented defaults
// ("zero means default"), so sparse spec-file fleet blocks resolve to
// a fully explicit, fixed-point form. Idempotent.
func (c Config) Normalized() Config {
	d := Defaults(16, false)
	if c.Instances == 0 {
		c.Instances = d.Instances
	}
	if c.Ticks == 0 {
		c.Ticks = d.Ticks
	}
	if c.Balancer == "" {
		c.Balancer = d.Balancer
	}
	if c.SamplePoints == 0 {
		c.SamplePoints = d.SamplePoints
	}
	if c.Traffic.Pattern == "" {
		c.Traffic.Pattern = d.Traffic.Pattern
	}
	if c.Traffic.Load == 0 {
		c.Traffic.Load = 0.6 * float64(nonZero(c.Service.Capacity, d.Service.Capacity)*c.Instances)
	}
	if c.Traffic.PeakFactor == 0 {
		c.Traffic.PeakFactor = d.Traffic.PeakFactor
	}
	if c.Traffic.PeriodTicks == 0 {
		c.Traffic.PeriodTicks = d.Traffic.PeriodTicks
	}
	if c.Traffic.BurstFactor == 0 {
		c.Traffic.BurstFactor = d.Traffic.BurstFactor
	}
	if c.Traffic.BurstOn == 0 {
		c.Traffic.BurstOn = d.Traffic.BurstOn
	}
	if c.Traffic.BurstOff == 0 {
		c.Traffic.BurstOff = d.Traffic.BurstOff
	}
	if c.Traffic.Keys == 0 {
		c.Traffic.Keys = d.Traffic.Keys
	}
	// ZipfS 0 is meaningful (uniform keys): left as-is.
	if c.Service.Capacity == 0 {
		c.Service.Capacity = d.Service.Capacity
	}
	if c.Service.QueueCap == 0 {
		c.Service.QueueCap = 5 * c.Service.Capacity
	}
	if c.Service.TargetAcc == 0 {
		c.Service.TargetAcc = d.Service.TargetAcc
	}
	// TuneMargin 0 is meaningful (lazy policy): left as-is.
	if c.Service.BaseIters == 0 {
		c.Service.BaseIters = d.Service.BaseIters
	}
	if c.Service.MaxIters == 0 {
		c.Service.MaxIters = d.Service.MaxIters
	}
	if c.Service.CostExponent == 0 {
		c.Service.CostExponent = d.Service.CostExponent
	}
	if c.Service.ItersPerTick == 0 {
		c.Service.ItersPerTick = d.Service.ItersPerTick
	}
	if c.Service.RemapTicks == 0 {
		c.Service.RemapTicks = d.Service.RemapTicks
	}
	if c.Service.MinLevels == 0 {
		c.Service.MinLevels = d.Service.MinLevels
	}
	if c.Wear.BaseAcc == 0 {
		c.Wear.BaseAcc = d.Wear.BaseAcc
	}
	if c.Wear.DriftPerApp == 0 {
		c.Wear.DriftPerApp = d.Wear.DriftPerApp
	}
	if c.Wear.StressPerIter == 0 {
		c.Wear.StressPerIter = d.Wear.StressPerIter
	}
	if c.Wear.MapStress == 0 {
		c.Wear.MapStress = d.Wear.MapStress
	}
	if c.Wear.LevelPenalty == 0 {
		c.Wear.LevelPenalty = d.Wear.LevelPenalty
	}
	if c.Replace.Ticks == 0 {
		c.Replace.Ticks = d.Replace.Ticks
	}
	if c.Replace.Cost == 0 {
		c.Replace.Cost = d.Replace.Cost
	}
	return c
}

func nonZero(v, d int) int {
	if v != 0 {
		return v
	}
	return d
}

// maxKeys bounds the precomputed key-weight table.
const maxKeys = 4096

// Validate reports every problem with a normalized configuration,
// using spec-style JSON field paths rooted at "fleet".
func (c Config) Validate() error {
	var errs []string
	bad := func(path, format string, args ...any) {
		errs = append(errs, "fleet."+path+": "+fmt.Sprintf(format, args...))
	}
	if c.Instances < 1 {
		bad("instances", "need at least 1, got %d", c.Instances)
	}
	if c.Ticks < 1 {
		bad("ticks", "need at least 1, got %d", c.Ticks)
	}
	switch c.Balancer {
	case BalRoundRobin, BalLeastAged, BalHashAffinity:
	default:
		bad("balancer", "unknown policy %q (want %s, %s or %s)", c.Balancer, BalRoundRobin, BalLeastAged, BalHashAffinity)
	}
	if c.SamplePoints < 1 {
		bad("sample_points", "need at least 1, got %d", c.SamplePoints)
	}
	switch c.Traffic.Pattern {
	case PatternDiurnal, PatternBursty, PatternZipf:
	default:
		bad("traffic.pattern", "unknown pattern %q (want %s, %s or %s)", c.Traffic.Pattern, PatternDiurnal, PatternBursty, PatternZipf)
	}
	if c.Traffic.Load <= 0 || math.IsNaN(c.Traffic.Load) {
		bad("traffic.load", "need a positive mean rate, got %g", c.Traffic.Load)
	}
	if c.Traffic.PeakFactor < 0 || c.Traffic.PeakFactor > 1 {
		bad("traffic.peak_factor", "need 0..1, got %g", c.Traffic.PeakFactor)
	}
	if c.Traffic.PeriodTicks < 2 {
		bad("traffic.period_ticks", "need at least 2, got %d", c.Traffic.PeriodTicks)
	}
	if c.Traffic.BurstFactor < 1 {
		bad("traffic.burst_factor", "need >= 1, got %g", c.Traffic.BurstFactor)
	}
	if c.Traffic.BurstOn < 1 || c.Traffic.BurstOff < 1 {
		bad("traffic.burst_on", "need positive on/off phases, got %d/%d", c.Traffic.BurstOn, c.Traffic.BurstOff)
	}
	if c.Traffic.Keys < 1 || c.Traffic.Keys > maxKeys {
		bad("traffic.keys", "need 1..%d, got %d", maxKeys, c.Traffic.Keys)
	}
	if c.Traffic.ZipfS < 0 {
		bad("traffic.zipf_s", "need >= 0, got %g", c.Traffic.ZipfS)
	}
	if c.Service.Capacity < 1 {
		bad("service.capacity", "need at least 1, got %d", c.Service.Capacity)
	}
	if c.Service.QueueCap < c.Service.Capacity {
		bad("service.queue_cap", "need >= capacity (%d), got %d", c.Service.Capacity, c.Service.QueueCap)
	}
	if c.Service.TargetAcc <= 0 || c.Service.TargetAcc >= 1 {
		bad("service.target_acc", "need (0,1), got %g", c.Service.TargetAcc)
	}
	if c.Service.TuneMargin < 0 {
		bad("service.tune_margin", "need >= 0, got %g", c.Service.TuneMargin)
	} else if c.Wear.BaseAcc > 0 && c.Service.TargetAcc+c.Service.TuneMargin >= c.Wear.BaseAcc {
		bad("service.tune_margin", "target_acc + tune_margin (%g) leaves a fresh instance no headroom below base_acc (%g)",
			c.Service.TargetAcc+c.Service.TuneMargin, c.Wear.BaseAcc)
	}
	if c.Service.BaseIters <= 0 {
		bad("service.base_iters", "need > 0, got %g", c.Service.BaseIters)
	}
	if c.Service.MaxIters < c.Service.BaseIters {
		bad("service.max_iters", "need >= base_iters (%g), got %g", c.Service.BaseIters, c.Service.MaxIters)
	}
	if c.Service.CostExponent <= 0 {
		bad("service.cost_exponent", "need > 0, got %g", c.Service.CostExponent)
	}
	if c.Service.ItersPerTick <= 0 {
		bad("service.iters_per_tick", "need > 0, got %g", c.Service.ItersPerTick)
	}
	if c.Service.RemapTicks < 1 {
		bad("service.remap_ticks", "need >= 1, got %d", c.Service.RemapTicks)
	}
	if c.Service.MinLevels < 2 {
		bad("service.min_levels", "need >= 2, got %d", c.Service.MinLevels)
	}
	if c.Wear.BaseAcc <= c.Service.TargetAcc || c.Wear.BaseAcc > 1 {
		bad("wear.base_acc", "need (target_acc, 1], got %g vs target %g", c.Wear.BaseAcc, c.Service.TargetAcc)
	}
	if c.Wear.DriftPerApp < 0 {
		bad("wear.drift_per_app", "need >= 0, got %g", c.Wear.DriftPerApp)
	}
	if c.Wear.StressPerIter < 0 {
		bad("wear.stress_per_iter", "need >= 0, got %g", c.Wear.StressPerIter)
	}
	if c.Wear.MapStress < 0 {
		bad("wear.map_stress", "need >= 0, got %g", c.Wear.MapStress)
	}
	if c.Wear.LevelPenalty < 0 {
		bad("wear.level_penalty", "need >= 0, got %g", c.Wear.LevelPenalty)
	}
	if c.Replace.Ticks < 1 {
		bad("replace.ticks", "need >= 1, got %d", c.Replace.Ticks)
	}
	if c.Replace.Cost < 0 {
		bad("replace.cost", "need >= 0, got %g", c.Replace.Cost)
	}
	if len(errs) == 0 {
		return nil
	}
	msg := errs[0]
	for _, e := range errs[1:] {
		msg += "\n" + e
	}
	return fmt.Errorf("%s", msg)
}
