package fleet

import (
	"context"
	"fmt"
	"math"

	"memlife/internal/aging"
	"memlife/internal/analysis"
	"memlife/internal/device"
)

// Event kinds. evDone events (maintenance/replacement completions) are
// scheduled at least one tick ahead, so at any time t every completion
// pops before the tick event — an instance is back online before that
// tick's arrivals route.
const (
	evTick uint8 = iota
	evDone
)

// event is one heap entry; value type, never heap-allocated
// individually.
type event struct {
	at   int64
	seq  uint64 // FIFO tie-break: (at, seq) totally orders the heap
	kind uint8
	inst int32
}

func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Instance lifecycle states.
const (
	stServing uint8 = iota
	stTuning
	stRemapping
	stReplacing
	stDead
)

// instance is one crossbar's aggregate state. The fleet layer tracks
// scalar aging state per instance (stress, usable window, drift)
// rather than a full crossbar — the per-device physics live in
// aging.Model/device.Params, evaluated exactly as the lifetime layer
// evaluates them.
type instance struct {
	state        uint8
	queue        int64 // backlog (requests)
	assigned     int64 // arrivals routed this tick
	stress       float64
	drift        float64 // recoverable accuracy deficit since last tune
	usable       int     // cached usable levels at current stress
	remapUsable  int     // usable levels at the last (re)map — tuning-cost baseline
	postTune     float64 // delivered accuracy right after the last tune
	acc          float64 // current delivered accuracy (postTune - drift)
	pendingIters float64 // tuning iterations of the in-flight maintenance
	alive        bool    // original cohort member not yet dead
	gen          int32   // replacement generation
}

// SurvivalPoint is one sample of the original cohort's survival curve.
type SurvivalPoint struct {
	Tick  int64   `json:"tick"`
	Alive float64 `json:"alive"` // fraction of the original cohort
}

// Result is one completed fleet simulation.
type Result struct {
	Instances int             `json:"instances"`
	Ticks     int             `json:"ticks"`
	Survival  []SurvivalPoint `json:"survival"`
	// Deaths counts original-cohort instances that aged out
	// (usable levels below the floor); FirstDeathTick is 0 when none.
	Deaths         int   `json:"deaths"`
	FirstDeathTick int64 `json:"first_death_tick"`
	// Replacements counts fresh crossbars swapped in (any generation).
	Replacements    int     `json:"replacements"`
	ReplacementCost float64 `json:"replacement_cost"`
	Served          int64   `json:"served"`
	Dropped         int64   `json:"dropped"`
	Retunes         int64   `json:"retunes"`
	Remaps          int64   `json:"remaps"`
	TuneIters       float64 `json:"tune_iters"`
	DowntimeTicks   int64   `json:"downtime_ticks"`
	// AccP99 is the delivered accuracy met or exceeded by 99% of
	// served requests (the 1st percentile of the accuracy
	// distribution); AccP50 the median.
	AccP50 float64 `json:"acc_p50"`
	AccP99 float64 `json:"acc_p99"`
	// LatencyP50/P99 summarize the latency proxy: backlog at arrival
	// in ticks-to-drain (queue/capacity).
	LatencyP50 float64 `json:"latency_p50"`
	LatencyP99 float64 `json:"latency_p99"`
	FinalAlive float64 `json:"final_alive"`
}

// Metrics flattens the result for campaign aggregation.
func (r Result) Metrics() map[string]float64 {
	return map[string]float64{
		"deaths":           float64(r.Deaths),
		"first_death_tick": float64(r.FirstDeathTick),
		"replacements":     float64(r.Replacements),
		"replacement_cost": r.ReplacementCost,
		"served":           float64(r.Served),
		"dropped":          float64(r.Dropped),
		"retunes":          float64(r.Retunes),
		"remaps":           float64(r.Remaps),
		"tune_iters":       r.TuneIters,
		"downtime_ticks":   float64(r.DowntimeTicks),
		"acc_p50":          r.AccP50,
		"acc_p99":          r.AccP99,
		"latency_p50":      r.LatencyP50,
		"latency_p99":      r.LatencyP99,
		"final_alive":      r.FinalAlive,
	}
}

// Sim is a running fleet simulation. Drive it with Tick (one event-
// clock tick per call) and harvest with Finish, or use Run. Steady-
// state ticking performs no heap allocation: the event heap, routing
// scratch, sketches and RNG are all preallocated at New.
type Sim struct {
	cfg   Config
	p     device.Params
	model aging.Model
	tempK float64
	rng   rng
	traf  *traffic
	tel   *fleetTel

	events []event // binary min-heap by (at, seq)
	seq    uint64
	clock  int64

	insts    []instance
	order    []int32 // least-aged fill order (scratch)
	lap      int     // fill pointer into order
	rrCursor int

	usableFresh int
	sampleEvery int64
	survival    []SurvivalPoint

	accSketch *analysis.Sketch
	latSketch *analysis.Sketch

	servedTotal  int64
	dropped      int64
	retunes      int64
	remaps       int64
	tuneIters    float64
	downtime     int64
	deaths       int
	firstDeath   int64
	replacements int
	cost         float64
}

// New validates the (normalized) configuration against the device and
// aging model and builds a simulator seeded with the splitmix64 stream
// of seed. The fresh device must have at least MinLevels usable
// levels, or every instance would be dead on arrival.
func New(cfg Config, p device.Params, m aging.Model, tempK float64, seed int64) (*Sim, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if tempK <= 0 {
		return nil, fmt.Errorf("fleet: non-positive temperature %g K", tempK)
	}
	s := &Sim{
		cfg:   cfg,
		p:     p,
		model: m,
		tempK: tempK,
		rng:   newRNG(seed),
		traf:  newTraffic(cfg.Traffic),
		tel:   newFleetTel(cfg.Instances),
	}
	s.usableFresh = s.usableLevels(0)
	if s.usableFresh < cfg.Service.MinLevels {
		return nil, fmt.Errorf("fleet: fresh device has %d usable levels, below service.min_levels %d",
			s.usableFresh, cfg.Service.MinLevels)
	}
	s.insts = make([]instance, cfg.Instances)
	for i := range s.insts {
		in := &s.insts[i]
		in.state = stServing
		in.usable = s.usableFresh
		in.remapUsable = s.usableFresh
		in.postTune = s.postTuneAcc(s.usableFresh)
		in.acc = in.postTune
		in.alive = true
	}
	s.order = make([]int32, 0, cfg.Instances)
	// Each instance carries at most one in-flight completion event,
	// plus the recurring tick event: a fixed-capacity heap.
	s.events = make([]event, 0, cfg.Instances+2)
	s.push(event{at: 1, kind: evTick})
	s.sampleEvery = int64(cfg.Ticks / cfg.SamplePoints)
	if s.sampleEvery < 1 {
		s.sampleEvery = 1
	}
	s.survival = make([]SurvivalPoint, 0, cfg.Ticks/int(s.sampleEvery)+2)
	s.accSketch = analysis.NewSketch()
	s.latSketch = analysis.NewSketch()
	return s, nil
}

// usableLevels evaluates the aged resistance window at the given
// stress and counts the surviving quantization levels.
func (s *Sim) usableLevels(stress float64) int {
	lo, hi := s.model.Bounds(s.p, stress, s.tempK)
	return s.p.UsableLevels(lo, hi)
}

// postTuneAcc is the delivered accuracy right after a tune at the
// given usable-level count: the fresh accuracy minus the aging floor.
func (s *Sim) postTuneAcc(usable int) float64 {
	frac := float64(usable) / float64(s.p.Levels)
	return s.cfg.Wear.BaseAcc - s.cfg.Wear.LevelPenalty*(1-frac)
}

// --- event heap (manual, allocation-free) ---

func (s *Sim) push(e event) {
	s.seq++
	e.seq = s.seq
	s.events = append(s.events, e)
	i := len(s.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.events[i].before(s.events[parent]) {
			break
		}
		s.events[i], s.events[parent] = s.events[parent], s.events[i]
		i = parent
	}
}

func (s *Sim) pop() event {
	top := s.events[0]
	last := len(s.events) - 1
	s.events[0] = s.events[last]
	s.events = s.events[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && s.events[l].before(s.events[smallest]) {
			smallest = l
		}
		if r < last && s.events[r].before(s.events[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s.events[i], s.events[smallest] = s.events[smallest], s.events[i]
		i = smallest
	}
	return top
}

// Tick advances the event clock through exactly one traffic tick,
// first delivering every completion event due at or before it.
func (s *Sim) Tick() {
	for {
		ev := s.pop()
		s.clock = ev.at
		if ev.kind == evTick {
			s.doTick()
			s.push(event{at: s.clock + 1, kind: evTick})
			return
		}
		s.complete(ev.inst)
	}
}

// Clock returns the current event-clock tick.
func (s *Sim) Clock() int64 { return s.clock }

// doTick runs one tick: route arrivals, sample the latency proxy,
// serve, accrue read-disturb drift, run health checks, publish
// telemetry, and sample the survival curve.
func (s *Sim) doTick() {
	qcap := int64(s.cfg.Service.QueueCap)
	cap64 := int64(s.cfg.Service.Capacity)
	for i := range s.insts {
		s.insts[i].assigned = 0
	}
	if s.cfg.Balancer == BalLeastAged {
		s.buildOrder()
	}
	n := s.traf.arrivals(s.clock, &s.rng)
	for r := 0; r < n; r++ {
		key := s.traf.sampleKey(&s.rng)
		idx := s.route(key, cap64, qcap)
		if idx < 0 {
			s.dropped++
			continue
		}
		in := &s.insts[idx]
		in.queue++
		in.assigned++
	}
	// Latency proxy: the backlog a tick's arrivals joined, in
	// ticks-to-drain, weighted by those arrivals.
	for i := range s.insts {
		in := &s.insts[i]
		if in.assigned > 0 {
			s.latSketch.AddN(float64(in.queue)/float64(cap64), in.assigned)
		}
	}
	// Serve: read-disturb drift accrues per inference served.
	for i := range s.insts {
		in := &s.insts[i]
		if in.state != stServing || in.queue == 0 {
			continue
		}
		served := in.queue
		if served > cap64 {
			served = cap64
		}
		in.queue -= served
		in.drift += s.cfg.Wear.DriftPerApp * float64(served)
		in.acc = in.postTune - in.drift
		s.servedTotal += served
		s.accSketch.AddN(in.acc, served)
	}
	// Health: below the maintenance threshold -> retune, remap, or
	// (window exhausted) die.
	thr := s.cfg.Service.TargetAcc + s.cfg.Service.TuneMargin
	for i := range s.insts {
		in := &s.insts[i]
		if in.state == stServing && in.acc < thr {
			s.startMaintenance(int32(i))
		}
	}
	s.tel.observe(s)
	if s.clock <= int64(s.cfg.Ticks) && s.clock%s.sampleEvery == 0 {
		s.recordSample()
		s.tel.observeQuantiles(s)
	}
}

// buildOrder fills s.order with the serving instances sorted by
// (stress, index) — the least-aged fill order — using an insertion
// sort over the preallocated scratch slice.
func (s *Sim) buildOrder() {
	s.order = s.order[:0]
	for i := range s.insts {
		if s.insts[i].state != stServing {
			continue
		}
		idx := int32(i)
		j := len(s.order)
		s.order = append(s.order, idx)
		for j > 0 {
			a, b := &s.insts[s.order[j-1]], &s.insts[idx]
			if a.stress < b.stress || (a.stress == b.stress && s.order[j-1] < idx) {
				break
			}
			s.order[j] = s.order[j-1]
			j--
		}
		s.order[j] = idx
	}
	s.lap = 0
}

// route picks the destination instance for one request, or -1 to drop
// it (no instance can take it).
func (s *Sim) route(key int32, cap64, qcap int64) int32 {
	switch s.cfg.Balancer {
	case BalLeastAged:
		for s.lap < len(s.order) {
			i := s.order[s.lap]
			in := &s.insts[i]
			if in.assigned < cap64 && in.queue < qcap {
				return i
			}
			s.lap++
		}
		// Every serving instance's tick capacity is claimed: spread
		// the overflow round-robin into the queues.
		return s.routeRR(qcap)
	case BalHashAffinity:
		n := len(s.insts)
		start := int(hashKey(key) % uint64(n))
		for probe := 0; probe < n; probe++ {
			i := (start + probe) % n
			in := &s.insts[i]
			if in.state == stServing && in.queue < qcap {
				return int32(i)
			}
		}
		return -1
	default: // BalRoundRobin
		return s.routeRR(qcap)
	}
}

func (s *Sim) routeRR(qcap int64) int32 {
	n := len(s.insts)
	for probe := 0; probe < n; probe++ {
		i := s.rrCursor % n
		s.rrCursor++
		in := &s.insts[i]
		if in.state == stServing && in.queue < qcap {
			return int32(i)
		}
	}
	return -1
}

// startMaintenance decides retune vs remap vs death for instance i and
// schedules the completion event. Tuning cost grows as the usable
// window shrinks relative to the last map:
// iters = BaseIters * (remapUsable/usable)^CostExponent.
func (s *Sim) startMaintenance(i int32) {
	in := &s.insts[i]
	svc := &s.cfg.Service
	if in.usable < svc.MinLevels {
		s.die(i)
		return
	}
	iters := svc.BaseIters * math.Pow(float64(in.remapUsable)/float64(in.usable), svc.CostExponent)
	var down int64
	if iters > svc.MaxIters {
		// Retuning inside the collapsed window would blow the
		// iteration budget: remap into the aged window (fresh
		// baseline), then tune there.
		in.state = stRemapping
		in.pendingIters = svc.BaseIters
		down = int64(svc.RemapTicks) + ticksFor(svc.BaseIters, svc.ItersPerTick)
		s.remaps++
		s.tuneIters += svc.BaseIters
	} else {
		in.state = stTuning
		in.pendingIters = iters
		down = ticksFor(iters, svc.ItersPerTick)
		s.retunes++
		s.tuneIters += iters
	}
	s.downtime += down
	s.push(event{at: s.clock + down, kind: evDone, inst: i})
}

// ticksFor converts tuning iterations to downtime ticks (minimum 1).
func ticksFor(iters, perTick float64) int64 {
	t := int64(math.Ceil(iters / perTick))
	if t < 1 {
		t = 1
	}
	return t
}

// die retires instance i: its backlog is dropped and — with
// replacement enabled — a fresh crossbar is scheduled in.
func (s *Sim) die(i int32) {
	in := &s.insts[i]
	if in.alive {
		in.alive = false
		s.deaths++
		if s.firstDeath == 0 {
			s.firstDeath = s.clock
		}
	}
	s.dropped += in.queue
	in.queue = 0
	if !s.cfg.Replace.Enabled {
		in.state = stDead
		return
	}
	in.state = stReplacing
	s.replacements++
	s.cost += s.cfg.Replace.Cost
	down := int64(s.cfg.Replace.Ticks)
	s.downtime += down
	s.push(event{at: s.clock + down, kind: evDone, inst: i})
}

// complete finishes instance i's in-flight maintenance: stress lands,
// the usable window is re-evaluated, drift clears, and the instance
// returns to serving.
func (s *Sim) complete(i int32) {
	in := &s.insts[i]
	w := &s.cfg.Wear
	switch in.state {
	case stTuning:
		in.stress += w.StressPerIter * in.pendingIters
		in.usable = s.usableLevels(in.stress)
	case stRemapping:
		in.stress += w.MapStress + w.StressPerIter*in.pendingIters
		in.usable = s.usableLevels(in.stress)
		in.remapUsable = in.usable
	case stReplacing:
		in.stress = 0
		in.usable = s.usableFresh
		in.remapUsable = s.usableFresh
		in.gen++
	default:
		return
	}
	in.pendingIters = 0
	in.drift = 0
	in.postTune = s.postTuneAcc(in.usable)
	in.acc = in.postTune
	in.state = stServing
}

// recordSample appends one survival-curve point.
func (s *Sim) recordSample() {
	alive := 0
	for i := range s.insts {
		if s.insts[i].alive {
			alive++
		}
	}
	s.survival = append(s.survival, SurvivalPoint{
		Tick:  s.clock,
		Alive: float64(alive) / float64(len(s.insts)),
	})
}

// Finish assembles the result after the configured horizon.
func (s *Sim) Finish() Result {
	if len(s.survival) == 0 || s.survival[len(s.survival)-1].Tick != s.clock {
		s.recordSample()
	}
	s.tel.observeQuantiles(s)
	alive := s.survival[len(s.survival)-1].Alive
	return Result{
		Instances:       s.cfg.Instances,
		Ticks:           s.cfg.Ticks,
		Survival:        s.survival,
		Deaths:          s.deaths,
		FirstDeathTick:  s.firstDeath,
		Replacements:    s.replacements,
		ReplacementCost: s.cost,
		Served:          s.servedTotal,
		Dropped:         s.dropped,
		Retunes:         s.retunes,
		Remaps:          s.remaps,
		TuneIters:       s.tuneIters,
		DowntimeTicks:   s.downtime,
		AccP50:          s.accSketch.Quantile(0.50),
		AccP99:          s.accSketch.Quantile(0.01),
		LatencyP50:      s.latSketch.Quantile(0.50),
		LatencyP99:      s.latSketch.Quantile(0.99),
		FinalAlive:      alive,
	}
}

// Run executes a full simulation: New + Ticks ticks + Finish, with a
// cancellation check every 256 ticks.
func Run(ctx context.Context, cfg Config, p device.Params, m aging.Model, tempK float64, seed int64) (Result, error) {
	s, err := New(cfg, p, m, tempK, seed)
	if err != nil {
		return Result{}, err
	}
	for t := 0; t < s.cfg.Ticks; t++ {
		if ctx != nil && t%256 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		s.Tick()
	}
	return s.Finish(), nil
}
