package fleet

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/device"
)

// testModel is the spec layer's accelerated default calibration.
func testModel() aging.Model {
	m := aging.DefaultModel()
	m.A, m.B = 8000, 1000
	return m
}

func testRun(t *testing.T, mutate func(*Config), seed int64) Result {
	t.Helper()
	cfg := Defaults(10, true)
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := Run(context.Background(), cfg, device.Params32(), testModel(), 300, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultsValidate(t *testing.T) {
	for _, fast := range []bool{true, false} {
		c := Defaults(10, fast).Normalized()
		if err := c.Validate(); err != nil {
			t.Errorf("Defaults(10, %v) invalid: %v", fast, err)
		}
	}
}

func TestNormalizedIdempotent(t *testing.T) {
	sparse := Config{Instances: 6, Ticks: 200}
	once := sparse.Normalized()
	twice := once.Normalized()
	if once != twice {
		t.Fatalf("Normalized is not idempotent:\nonce  %+v\ntwice %+v", once, twice)
	}
	if err := once.Validate(); err != nil {
		t.Fatalf("normalized sparse config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Instances = 0 }, "fleet.instances"},
		{func(c *Config) { c.Balancer = "random" }, "fleet.balancer"},
		{func(c *Config) { c.Traffic.Pattern = "steady" }, "fleet.traffic.pattern"},
		{func(c *Config) { c.Traffic.Load = -1 }, "fleet.traffic.load"},
		{func(c *Config) { c.Traffic.Keys = maxKeys + 1 }, "fleet.traffic.keys"},
		{func(c *Config) { c.Service.QueueCap = 1 }, "fleet.service.queue_cap"},
		{func(c *Config) { c.Service.TuneMargin = 0.5 }, "fleet.service.tune_margin"},
		{func(c *Config) { c.Wear.BaseAcc = 0.5 }, "fleet.wear.base_acc"},
	}
	for _, tc := range cases {
		c := Defaults(10, true)
		tc.mutate(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("want error mentioning %q, got %v", tc.want, err)
		}
	}
}

// TestClosedLoopDynamics: the default fast configuration must exercise
// the whole aging cascade — retunes, remaps, deaths, replacements —
// and keep the bookkeeping coherent.
func TestClosedLoopDynamics(t *testing.T) {
	r := testRun(t, nil, 42)
	if r.Served == 0 {
		t.Fatal("fleet served nothing")
	}
	if r.Retunes == 0 || r.Remaps == 0 {
		t.Errorf("cascade incomplete: retunes=%d remaps=%d", r.Retunes, r.Remaps)
	}
	if r.Deaths == 0 || r.FirstDeathTick == 0 {
		t.Errorf("no instance aged out in the fast horizon: deaths=%d first=%d", r.Deaths, r.FirstDeathTick)
	}
	if r.Replacements == 0 || r.ReplacementCost == 0 {
		t.Errorf("replacement policy never fired: %d / %g", r.Replacements, r.ReplacementCost)
	}
	if r.Deaths > r.Instances {
		t.Errorf("original-cohort deaths %d exceed cohort size %d", r.Deaths, r.Instances)
	}
	if r.AccP99 <= 0 || r.AccP99 > 1 || r.AccP50 < r.AccP99 {
		t.Errorf("accuracy quantiles incoherent: p50=%g p99=%g", r.AccP50, r.AccP99)
	}
	if r.LatencyP99 < r.LatencyP50 {
		t.Errorf("latency quantiles incoherent: p50=%g p99=%g", r.LatencyP50, r.LatencyP99)
	}
	// Survival must start at 1, never increase, and match the final
	// alive fraction.
	if len(r.Survival) < 2 {
		t.Fatalf("survival curve too short: %d points", len(r.Survival))
	}
	prev := 1.0
	for i, pt := range r.Survival {
		if pt.Alive > prev {
			t.Fatalf("survival increased at point %d: %v -> %v", i, prev, pt.Alive)
		}
		prev = pt.Alive
	}
	if got := r.Survival[len(r.Survival)-1].Alive; got != r.FinalAlive {
		t.Errorf("final survival point %v != FinalAlive %v", got, r.FinalAlive)
	}
}

// TestDeterminism: identical inputs must produce identical results —
// including the survival curve — and a different seed must not.
func TestDeterminism(t *testing.T) {
	a := testRun(t, nil, 7)
	b := testRun(t, nil, 7)
	if len(a.Survival) != len(b.Survival) {
		t.Fatal("survival curves differ in length for equal seeds")
	}
	for i := range a.Survival {
		if a.Survival[i] != b.Survival[i] {
			t.Fatalf("survival point %d differs: %+v vs %+v", i, a.Survival[i], b.Survival[i])
		}
	}
	a.Survival, b.Survival = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal seeds diverged:\n%+v\n%+v", a, b)
	}
	c := testRun(t, nil, 8)
	if c.Served == a.Served && c.Dropped == a.Dropped && c.FirstDeathTick == a.FirstDeathTick {
		t.Error("different seed produced an identical run (suspicious)")
	}
}

// TestBalancersMatter: routing policy must change fleet outcomes under
// a skewed key mix.
func TestBalancersMatter(t *testing.T) {
	zipf := func(bal string) func(*Config) {
		return func(c *Config) {
			c.Balancer = bal
			c.Traffic.Pattern = PatternZipf
		}
	}
	rr := testRun(t, zipf(BalRoundRobin), 42)
	ha := testRun(t, zipf(BalHashAffinity), 42)
	la := testRun(t, zipf(BalLeastAged), 42)
	if rr.Dropped == ha.Dropped && rr.Served == ha.Served {
		t.Error("hash-affinity behaved identically to round-robin under Zipf skew")
	}
	if rr.Dropped == la.Dropped && rr.Served == la.Served {
		t.Error("least-aged behaved identically to round-robin")
	}
}

// TestTrafficPatternsMatter: the load envelope must shape outcomes.
func TestTrafficPatternsMatter(t *testing.T) {
	pat := func(p string) func(*Config) {
		return func(c *Config) { c.Traffic.Pattern = p }
	}
	diurnal := testRun(t, pat(PatternDiurnal), 42)
	bursty := testRun(t, pat(PatternBursty), 42)
	if diurnal.Served == bursty.Served && diurnal.Dropped == bursty.Dropped {
		t.Error("bursty traffic behaved identically to diurnal")
	}
	if bursty.Served <= 0 {
		t.Error("bursty pattern served nothing")
	}
}

// TestNoReplacementFleetDecays: with replacement off, the fleet must
// decay to (near) zero live instances and never pay replacement cost.
func TestNoReplacementFleetDecays(t *testing.T) {
	r := testRun(t, func(c *Config) { c.Replace.Enabled = false }, 42)
	if r.Replacements != 0 || r.ReplacementCost != 0 {
		t.Errorf("replacement fired while disabled: %d / %g", r.Replacements, r.ReplacementCost)
	}
	if r.Deaths == 0 || r.FinalAlive >= 1 {
		t.Errorf("fleet did not decay: deaths=%d final_alive=%g", r.Deaths, r.FinalAlive)
	}
}

// TestEagerTuningTradesWearForAccuracy: a larger tune margin retunes
// earlier and more often.
func TestEagerTuningTradesWearForAccuracy(t *testing.T) {
	lazy := testRun(t, func(c *Config) { c.Service.TuneMargin = 0 }, 42)
	eager := testRun(t, func(c *Config) { c.Service.TuneMargin = 0.05 }, 42)
	if eager.Retunes <= lazy.Retunes {
		t.Errorf("eager policy did not retune more: eager=%d lazy=%d", eager.Retunes, lazy.Retunes)
	}
}

// TestRunRejectsInvalidConfig: New must refuse configurations the
// device can never satisfy.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := Defaults(10, true)
	cfg.Service.MinLevels = 64 // Params32 has 32 levels fresh
	if _, err := New(cfg, device.Params32(), testModel(), 300, 1); err == nil {
		t.Fatal("MinLevels above the fresh level count must be rejected")
	}
	cfg = Defaults(10, true)
	if _, err := New(cfg, device.Params32(), testModel(), -1, 1); err == nil {
		t.Fatal("non-positive temperature must be rejected")
	}
}

// TestCancellation: Run must honor context cancellation.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Defaults(10, false)
	if _, err := Run(ctx, cfg, device.Params32(), testModel(), 300, 1); err == nil {
		t.Fatal("cancelled context must abort the run")
	}
}

// TestTickSteadyStateZeroAlloc pins the event loop at zero heap
// allocations per tick — the property the fleet/tick bench kernel
// gates in CI. The heap, routing scratch, sketches and RNG are all
// preallocated at New.
func TestTickSteadyStateZeroAlloc(t *testing.T) {
	cfg := Defaults(10, true)
	cfg.Balancer = BalLeastAged // the policy with the most per-tick scratch work
	s, err := New(cfg, device.Params32(), testModel(), 300, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Tick() // warm past first-touch growth
	}
	allocs := testing.AllocsPerRun(200, func() { s.Tick() })
	if allocs != 0 {
		t.Fatalf("steady-state Tick allocates: %v allocs/op", allocs)
	}
}
