package tuning

import (
	"testing"

	"memlife/internal/aging"
	"memlife/internal/crossbar"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/mapping"
	"memlife/internal/nn"
	"memlife/internal/tensor"
	"memlife/internal/train"
)

// fixture returns a trained, freshly mapped network with train dataset
// and an eval batch.
func fixture(t *testing.T) (*crossbar.MappedNetwork, *dataset.Dataset, *tensor.Tensor, []int) {
	t.Helper()
	cfg := dataset.SynthConfig{Classes: 4, TrainN: 160, TestN: 60, C: 3, H: 8, W: 8, Noise: 0.15, Seed: 51}
	trainDS, testDS := dataset.MustGenerate(cfg)
	net, err := nn.NewMLP("m", []int{trainDS.SampleSize(), 20, 4}, tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Train(net, trainDS, testDS, train.Config{
		Epochs: 6, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	mn, err := crossbar.NewMappedNetwork(net, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mapping.Map(mn, mapping.Config{Policy: mapping.Fresh}, nil, nil); err != nil {
		t.Fatal(err)
	}
	b := trainDS.Batches(trainDS.Len(), nil)[0]
	return mn, trainDS, b.X, b.Y
}

func TestConfigValidation(t *testing.T) {
	good := Config{MaxIters: 150, TargetAcc: 0.9, BatchSize: 16}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{MaxIters: 0, TargetAcc: 0.9, BatchSize: 16},
		{MaxIters: 10, TargetAcc: 0, BatchSize: 16},
		{MaxIters: 10, TargetAcc: 1.5, BatchSize: 16},
		{MaxIters: 10, TargetAcc: 0.9, BatchSize: 0},
		{MaxIters: 10, TargetAcc: 0.9, BatchSize: 16, StepFrac: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: config %+v should be rejected", i, c)
		}
	}
}

func TestTuneConvergesImmediatelyWhenTargetMet(t *testing.T) {
	mn, ds, x, y := fixture(t)
	acc, err := mn.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(mn, ds, x, y, Config{MaxIters: 150, TargetAcc: acc - 0.01, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("already-good network must converge in 0 iterations, got %+v", res)
	}
	if res.Pulses != 0 {
		t.Fatal("zero-iteration tuning must not pulse devices")
	}
}

// TestTuneRecoversFromPerturbation is the core behaviour: drift the
// array, then verify tuning restores accuracy within budget and that the
// pulses are accounted as stress.
func TestTuneRecoversFromPerturbation(t *testing.T) {
	mn, ds, x, y := fixture(t)
	baseline, err := mn.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}

	mn.Drift(0.10, tensor.NewRNG(4))
	perturbed, err := mn.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if perturbed >= baseline {
		t.Skipf("drift did not hurt accuracy (%.3f -> %.3f); nothing to recover", baseline, perturbed)
	}

	res, err := Tune(mn, ds, x, y, Config{MaxIters: 150, TargetAcc: baseline - 0.02, BatchSize: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("tuning failed to recover: %+v", res)
	}
	if res.FinalAcc < perturbed {
		t.Fatalf("tuning made accuracy worse: %.3f -> %.3f", perturbed, res.FinalAcc)
	}
	if res.Pulses == 0 || res.Stress <= 0 {
		t.Fatalf("recovery must cost pulses and stress, got %+v", res)
	}
	if len(res.AccTrace) != res.Iterations+1 {
		t.Fatalf("AccTrace length %d, want iterations+1 = %d", len(res.AccTrace), res.Iterations+1)
	}
}

func TestTuneFailsOnImpossibleTarget(t *testing.T) {
	mn, ds, x, y := fixture(t)
	res, err := Tune(mn, ds, x, y, Config{MaxIters: 3, TargetAcc: 1.0, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && res.FinalAcc < 1.0 {
		t.Fatal("non-perfect accuracy cannot report convergence to 1.0")
	}
	if !res.Converged && res.Iterations != 3 {
		t.Fatalf("failed run must consume the whole budget, got %d", res.Iterations)
	}
}

func TestTuningAgesTheArray(t *testing.T) {
	mn, ds, x, y := fixture(t)
	stressBefore := mn.TotalStress()
	mn.Drift(0.3, tensor.NewRNG(5))
	res, err := Tune(mn, ds, x, y, Config{MaxIters: 10, TargetAcc: 1.0, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 0 && mn.TotalStress() <= stressBefore {
		t.Fatal("tuning pulses must age the array")
	}
	if res.Iterations == 0 {
		t.Fatal("heavy drift with a perfect target must force tuning work")
	}
}

func TestKthLargestAbs(t *testing.T) {
	// kthLargestAbs takes magnitudes and sorts its argument in place, so
	// each case gets a fresh slice.
	abs := func() []float64 { return []float64{5, 1, 3, 2, 4} }
	if got := kthLargestAbs(abs(), 1); got != 5 {
		t.Fatalf("k=1: got %g, want 5", got)
	}
	if got := kthLargestAbs(abs(), 3); got != 3 {
		t.Fatalf("k=3: got %g, want 3", got)
	}
	if got := kthLargestAbs(abs(), 10); got != 1 {
		t.Fatalf("k beyond length must clamp to min abs, got %g", got)
	}
}

func TestStepFracLimitsPulsedDevices(t *testing.T) {
	mnA, dsA, xA, yA := fixture(t)
	mnA.Drift(0.08, tensor.NewRNG(6))
	resA, err := Tune(mnA, dsA, xA, yA, Config{MaxIters: 5, TargetAcc: 0.999, BatchSize: 16, StepFrac: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mnB, dsB, xB, yB := fixture(t)
	mnB.Drift(0.08, tensor.NewRNG(6))
	resB, err := Tune(mnB, dsB, xB, yB, Config{MaxIters: 5, TargetAcc: 0.999, BatchSize: 16, StepFrac: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Pulses >= resB.Pulses {
		t.Fatalf("StepFrac 0.05 pulses (%d) must be below StepFrac 0.8 pulses (%d)", resA.Pulses, resB.Pulses)
	}
}
