package tuning

import (
	"fmt"
	"math"

	"memlife/internal/crossbar"
	"memlife/internal/dataset"
)

// Policy is the pulse-selection strategy of one tuning iteration: given
// the mapped network and a gradient batch, decide which devices to
// pulse (or how else to recover accuracy) and apply it. Implementations
// are stateless singletons — any run state lives in the arena or on the
// MappedNetwork (layer gains) — so one instance serves concurrent runs.
type Policy interface {
	// Name returns the policy label used in specs and reports.
	Name() string
	// Step performs one tuning iteration on mn using batch b, returning
	// the retry and stuck-skip counts of the pulses it applied.
	Step(mn *crossbar.MappedNetwork, b dataset.Batch, cfg Config, ar *arena) (retries, skipped int64, err error)
}

// PolicyNames lists the selectable tuning policies (the effective names;
// the empty string aliases "sign").
func PolicyNames() []string { return []string{"sign", "recalib", "minreprog"} }

// ParsePolicy resolves a policy label from a scenario spec or CLI flag.
// The empty string is the sign policy, so pre-policy configs resolve
// unchanged.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "sign":
		return signPolicy{}, nil
	case "recalib":
		return recalibPolicy{}, nil
	case "minreprog":
		return minreprogPolicy{}, nil
	default:
		return nil, fmt.Errorf("tuning: unknown policy %q (want sign, recalib, or minreprog)", s)
	}
}

// signPolicy is the paper's eq. (5) controller: pulse the devices with
// the globally largest gradient magnitudes one step in the -sign(grad)
// direction. It is the default and reproduces the historical tuning
// loop bit-for-bit.
type signPolicy struct{}

// Name implements Policy.
func (signPolicy) Name() string { return "sign" }

// Step implements Policy.
func (signPolicy) Step(mn *crossbar.MappedNetwork, b dataset.Batch, cfg Config, ar *arena) (int64, int64, error) {
	return step(mn, b, cfg.StepFrac, cfg.RetryBudget, ar)
}

// recalibPolicy is AIDX-style periodic scale recalibration (after
// arXiv 2009.00180): conductance state drift is largely a common-mode
// shrink of every device's effective weight, so instead of spending
// programming pulses (and aging) to push conductances back, the
// periphery re-fits one digital output gain per layer,
//
//	alpha_l = <W_eff, W_target> / <W_eff, W_eff>,
//
// the least-squares scale aligning the drifted effective weights with
// the mapping targets. While the gains are still moving the iteration
// is gain-only — zero pulses, zero aging; once scaling stalls (the
// residual error is not a common scale), it falls back to one sign-
// pulse step for the non-uniform remainder. Remapping resets the gains
// (mapping.Map calls ResetGains), so compensation restarts from the
// freshly programmed state.
type recalibPolicy struct{}

// Name implements Policy.
func (recalibPolicy) Name() string { return "recalib" }

// recalibStall is the relative gain change below which scaling is
// considered converged and the policy falls back to sign pulses.
const recalibStall = 1e-3

// recalibGainClamp bounds the per-layer gain so a degenerate readback
// (near-zero effective weights) cannot produce a runaway scale.
const recalibGainClamp = 8.0

// Step implements Policy.
func (recalibPolicy) Step(mn *crossbar.MappedNetwork, b dataset.Batch, cfg Config, ar *arena) (int64, int64, error) {
	if err := mn.Refresh(); err != nil {
		return 0, 0, err
	}
	maxRel := 0.0
	for _, l := range mn.Layers {
		// Param.W holds the gain-applied effective weights after
		// Refresh; with raw = W/gain, the least-squares scale is
		// alpha = <raw,T>/<raw,raw> = gain * <W,T>/<W,W>.
		wd, td := l.Param.W.Data(), l.Target.Data()
		num, den := 0.0, 0.0
		for i, v := range wd {
			num += v * td[i]
			den += v * v
		}
		if !(den > 0) || math.IsNaN(num) || math.IsInf(num, 0) {
			continue
		}
		gain := l.Gain * num / den
		if gain > recalibGainClamp {
			gain = recalibGainClamp
		} else if gain < 1/recalibGainClamp {
			gain = 1 / recalibGainClamp
		}
		rel := math.Abs(gain-l.Gain) / math.Max(math.Abs(l.Gain), 1e-12)
		if rel > maxRel {
			maxRel = rel
		}
		l.Gain = gain
	}
	if maxRel > recalibStall {
		// Scaling is still compensating: a gain-only iteration, no
		// pulses, no aging.
		return 0, 0, nil
	}
	return step(mn, b, cfg.StepFrac, cfg.RetryBudget, ar)
}

// minreprogPolicy is the weight-sorting / bit-stucking reprogramming
// minimizer (after arXiv 2410.21730): instead of following gradients,
// it reads the per-device weight error against the mapping target,
// sorts globally, and pulses only the StepFrac fraction with the
// largest errors — and of those, only the ones whose error exceeds half
// a tuning step (pulsing inside the dead-band would overshoot and
// invite a pulse war). Stuck devices are accepted as-is (bit-stucking)
// and transient failures are never retried: every avoided pulse is
// endurance kept.
type minreprogPolicy struct{}

// Name implements Policy.
func (minreprogPolicy) Name() string { return "minreprog" }

// Step implements Policy.
func (minreprogPolicy) Step(mn *crossbar.MappedNetwork, b dataset.Batch, cfg Config, ar *arena) (int64, int64, error) {
	if err := mn.Refresh(); err != nil {
		return 0, 0, err
	}
	total := 0
	for _, l := range mn.Layers {
		total += l.Param.W.Size()
	}
	abs := ar.abs[:0]
	for _, l := range mn.Layers {
		wd, td := l.Param.W.Data(), l.Target.Data()
		for i, v := range wd {
			e := td[i] - v
			if e < 0 {
				e = -e
			}
			abs = append(abs, e)
		}
	}
	ar.abs = abs
	k := int(float64(total) * cfg.StepFrac)
	if k < 1 {
		k = 1
	}
	thr := kthLargestAbs(abs, k)
	if thr == 0 {
		return 0, 0, nil // already on target everywhere
	}
	var skipped int64
	for _, l := range mn.Layers {
		// The dead-band is half a tuning pulse expressed in weight
		// units under the layer's current mapping ranges.
		cut := thr
		if dead := 0.5 * weightStep(l); dead > cut {
			cut = dead
		}
		wd, td := l.Param.W.Data(), l.Target.Data()
		cols := l.Crossbar.Cols
		steps := ar.steps[:0]
		for idx, v := range wd {
			e := td[idx] - v
			a := e
			if a < 0 {
				a = -a
			}
			if a < cut || a == 0 {
				continue
			}
			dir := +1
			if e < 0 {
				dir = -1
			}
			steps = append(steps, crossbar.Step{I: idx / cols, J: idx % cols, Dir: dir})
		}
		ar.steps = steps
		st := l.Crossbar.StepDevices(steps, 0) // bit-stucking: no retries
		skipped += int64(st.StuckSkipped)
	}
	return 0, skipped, nil
}

// weightStep converts one tuning-pulse conductance step into weight
// units under the layer's current mapping ranges (eq. (4) slope).
// Returns 0 before the first mapping or on degenerate ranges, which
// disables the dead-band.
func weightStep(l *crossbar.MappedLayer) float64 {
	wMin, wMax, ok := l.Crossbar.WeightRange()
	if !ok {
		return 0
	}
	rLo, rHi, ok := l.Crossbar.MapRange()
	if !ok {
		return 0
	}
	gSpan := 1/rLo - 1/rHi
	if !(gSpan > 0) || !(wMax > wMin) {
		return 0
	}
	return l.Crossbar.Params().TunePulseDeltaG() * (wMax - wMin) / gSpan
}
