package tuning

import (
	"testing"

	"memlife/internal/tensor"
)

// TestApplyPulsesZeroAlloc pins the arena contract of the tuning loop:
// once one iteration has sized the arena buffers, the
// gradient-to-pulse stage (magnitude gather, global threshold, batched
// StepDevices per layer) performs zero heap allocations. The forward/
// backward gradient estimation that precedes it owns its own buffers
// and is measured by the bench harness instead.
func TestApplyPulsesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	mn, _, _, _ := fixture(t)
	// Synthesize a gradient field; applyPulses only reads Grad.
	rng := tensor.NewRNG(17)
	for _, l := range mn.Layers {
		rng.FillNormal(l.Param.Grad, 0, 1)
	}
	var ar arena
	run := func() { applyPulses(mn, 0.25, 2, &ar) }
	run() // size the arena
	if allocs := testing.AllocsPerRun(30, run); allocs != 0 {
		t.Fatalf("gradient-to-pulse stage: %v allocs/op, want 0", allocs)
	}
}

// TestApplyPulsesMatchesStepOutcome re-checks that the arena-based
// stage produces the same retry/skip accounting whether the arena is
// fresh or reused (buffer reuse must not leak state across calls on
// identical inputs and identical device state).
func TestApplyPulsesMatchesStepOutcome(t *testing.T) {
	mnA, _, _, _ := fixture(t)
	mnB, _, _, _ := fixture(t)
	rng := tensor.NewRNG(23)
	for i, l := range mnA.Layers {
		rng.FillNormal(l.Param.Grad, 0, 1)
		mnB.Layers[i].Param.Grad.CopyFrom(l.Param.Grad)
	}
	fresh := &arena{}
	reused := &arena{}
	// Warm the reused arena on a throwaway network so its buffers carry
	// stale contents into the measured call.
	mnW, _, _, _ := fixture(t)
	for _, l := range mnW.Layers {
		rng.FillNormal(l.Param.Grad, 0, 1)
	}
	applyPulses(mnW, 0.25, 2, reused)

	rA, sA := applyPulses(mnA, 0.25, 2, fresh)
	rB, sB := applyPulses(mnB, 0.25, 2, reused)
	if rA != rB || sA != sB {
		t.Fatalf("arena reuse changed outcome: fresh (%d,%d), reused (%d,%d)", rA, sA, rB, sB)
	}
	for i, l := range mnA.Layers {
		cbA, cbB := l.Crossbar, mnB.Layers[i].Crossbar
		if cbA.TotalStress() != cbB.TotalStress() || cbA.TotalPulses() != cbB.TotalPulses() {
			t.Fatalf("layer %d: stress/pulses diverge between fresh and reused arenas", i)
		}
	}
}
