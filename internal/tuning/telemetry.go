package tuning

import "memlife/internal/telemetry"

// recordTuneTel publishes the outcome of one Tune invocation. Handles
// are resolved per call: a tuning run costs many forward passes, so the
// registry lookups are noise, and per-call resolution keeps the package
// free of install-order coupling with telemetry.SetGlobal.
func recordTuneTel(res Result, err error) {
	if telemetry.Global() == nil {
		return
	}
	if err != nil {
		telemetry.C("tuning/errors").Inc()
		return
	}
	telemetry.C("tuning/runs").Inc()
	telemetry.C("tuning/iterations_total").Add(int64(res.Iterations))
	telemetry.C("tuning/retries_total").Add(res.Retries)
	telemetry.C("tuning/stuck_skipped_total").Add(res.StuckSkipped)
	if !res.Converged {
		telemetry.C("tuning/convergence_failures").Inc()
	}
}
