// Package tuning implements online tuning of mapped crossbars (Section
// II-C): after hardware mapping, conductances are nudged with
// constant-amplitude programming pulses whose polarity follows the sign
// of the cost gradient (eq. (5)), until the network reaches its target
// classification accuracy or the iteration budget is exhausted. An
// exhausted budget marks the crossbar as failing — the paper's lifetime
// criterion (150 iterations in Section V).
//
// Every tuning pulse is a real programming operation: it accumulates
// stress on the device it touches and therefore ages the array. The
// feedback loop of Section III — clipping forces more tuning, more
// tuning forces more aging — emerges from this accounting.
package tuning

import (
	"fmt"
	"sort"

	"memlife/internal/crossbar"
	"memlife/internal/dataset"
	"memlife/internal/nn"
	"memlife/internal/telemetry"
	"memlife/internal/tensor"
)

// Config parameterizes one tuning run. The JSON tags are the schema of
// the "tuning" section of a scenario spec (internal/spec); TargetAcc
// and Seed are excluded because the lifetime driver injects them per
// deployment cycle.
type Config struct {
	// MaxIters is the iteration budget; the paper uses 150.
	MaxIters int `json:"max_iters"`
	// TargetAcc is the classification accuracy (on the evaluation
	// samples) at which tuning stops.
	TargetAcc float64 `json:"-"`
	// BatchSize is the minibatch size for gradient estimation.
	BatchSize int `json:"batch_size"`
	// StepFrac is the fraction of devices (those with the largest
	// gradient magnitudes, per layer) pulsed each iteration. Zero
	// means 0.25. Pulsing everything would both over-age the array and
	// overshoot; real tuning controllers prioritize the worst weights.
	StepFrac float64 `json:"step_frac"`
	// Patience stops a run early when the evaluation accuracy has not
	// improved for this many consecutive iterations. Pulsing a stuck
	// array only ages it further, so giving up early preserves the
	// remaining endurance for a re-mapping attempt. Zero means 10;
	// negative disables early stopping.
	Patience int `json:"patience"`
	// Policy selects the pulse-selection strategy of each tuning
	// iteration: "sign" (or empty, the default) is the paper's
	// gradient-sign step (eq. (5)); "recalib" is AIDX-style periodic
	// scale recalibration, which compensates uniform conductance drift
	// with per-layer digital output gains and falls back to sign pulses
	// only when scaling stalls; "minreprog" is the weight-sorting /
	// bit-stucking reprogramming minimizer, which pulses only the
	// devices with the largest weight errors and accepts stuck cells
	// as-is. See policy.go. The field is omitted from serialization
	// when empty, so pre-policy specs keep their fingerprints.
	Policy string `json:"policy,omitempty"`
	// RetryBudget caps the immediate retries of a tuning pulse that
	// silently failed to move its device (transient programming
	// failure). Every retry is a real pulse: it dissipates the same
	// programming power and accumulates the same stress as a
	// successful one, so retries trade endurance for convergence
	// speed. Permanently stuck devices are never retried — they are
	// skipped outright. Zero means 2; negative disables retries.
	RetryBudget int `json:"retry_budget"`
	// Seed drives batch shuffling.
	Seed int64 `json:"-"`
	// Workers is the forward-pass parallelism used for accuracy
	// evaluation (see nn.Network.SetForwardWorkers). Evaluation results
	// are bit-identical for every value, so this is a pure speed knob —
	// and therefore excluded from the scenario schema (it must never
	// change a spec fingerprint); <= 1 keeps evaluation serial.
	Workers int `json:"-"`
}

// Validate reports an error for degenerate configs.
func (c Config) Validate() error {
	switch {
	case c.MaxIters < 1:
		return fmt.Errorf("tuning: MaxIters must be >= 1, got %d", c.MaxIters)
	case c.TargetAcc <= 0 || c.TargetAcc > 1:
		return fmt.Errorf("tuning: TargetAcc must be in (0,1], got %g", c.TargetAcc)
	case c.BatchSize < 1:
		return fmt.Errorf("tuning: BatchSize must be >= 1, got %d", c.BatchSize)
	case c.StepFrac < 0 || c.StepFrac > 1:
		return fmt.Errorf("tuning: StepFrac must be in [0,1], got %g", c.StepFrac)
	}
	if _, err := ParsePolicy(c.Policy); err != nil {
		return err
	}
	return nil
}

// Normalized returns the config with every "zero means X" field
// resolved to its effective value: StepFrac 0 -> 0.25, Patience 0 ->
// 10 (negative -> effectively disabled), RetryBudget 0 -> 2 (negative
// -> no retries). Tune applies it on entry, so callers may pass either
// sparse or resolved configs; the resolved form is what scenario specs
// serialize (internal/spec.Defaults).
func (c Config) Normalized() Config {
	if c.StepFrac == 0 {
		c.StepFrac = 0.25
	}
	switch {
	case c.Patience == 0:
		c.Patience = 10
	case c.Patience < 0:
		c.Patience = 1 << 30 // effectively disabled
	}
	switch {
	case c.RetryBudget == 0:
		c.RetryBudget = 2
	case c.RetryBudget < 0:
		c.RetryBudget = 0
	}
	return c
}

// Result reports the outcome of one tuning run.
type Result struct {
	// Iterations is the number of tuning iterations performed before
	// reaching the target (or MaxIters on failure).
	Iterations int
	// Converged reports whether TargetAcc was reached within budget.
	Converged bool
	// FinalAcc is the accuracy at exit.
	FinalAcc float64
	// Pulses and Stress are the programming cost of the run.
	Pulses int64
	Stress float64
	// Retries counts extra pulses spent re-attempting transient
	// programming failures; their stress is included in Stress.
	Retries int64
	// StuckSkipped counts pulse requests dropped because their target
	// device is permanently stuck (no pulse was applied).
	StuckSkipped int64
	// AccTrace records accuracy before each iteration (and the final
	// accuracy as its last element).
	AccTrace []float64
}

// Tune runs the sign-based online tuning loop on mn. Gradient batches
// come from ds; convergence is judged on (evalX, evalY) — in the
// paper's flow both are training data.
//
// Every invocation emits one "tuning/tune" trace span and bumps the
// tuning/* instruments (see telemetry.go); with telemetry disabled the
// wrapper is a handful of nil checks.
func Tune(mn *crossbar.MappedNetwork, ds *dataset.Dataset, evalX *tensor.Tensor, evalY []int, cfg Config) (Result, error) {
	sp := telemetry.StartSpan("tuning/tune")
	res, err := tune(mn, ds, evalX, evalY, cfg)
	recordTuneTel(res, err)
	sp.End(telemetry.Attrs{
		"iterations": res.Iterations,
		"converged":  res.Converged,
		"final_acc":  res.FinalAcc,
		"pulses":     res.Pulses,
		"retries":    res.Retries,
	})
	return res, err
}

func tune(mn *crossbar.MappedNetwork, ds *dataset.Dataset, evalX *tensor.Tensor, evalY []int, cfg Config) (Result, error) {
	var res Result
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	pol, err := ParsePolicy(cfg.Policy)
	if err != nil {
		return res, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	pulsesBefore := mn.TotalPulses()
	stressBefore := mn.TotalStress()

	if cfg.Workers > 1 {
		prev := mn.Net.ForwardWorkers()
		mn.Net.SetForwardWorkers(cfg.Workers)
		defer mn.Net.SetForwardWorkers(prev)
	}

	batches := ds.Batches(cfg.BatchSize, rng)
	next := 0

	// One arena serves the whole run: after the first iteration sizes
	// its buffers, the gradient-to-pulse stage runs allocation-free.
	var ar arena

	bestAcc := -1.0
	sinceImprovement := 0
	iters := 0
	for it := 0; it < cfg.MaxIters; it++ {
		acc, err := mn.Accuracy(evalX, evalY)
		if err != nil {
			return res, err
		}
		res.AccTrace = append(res.AccTrace, acc)
		if acc >= cfg.TargetAcc {
			res.Converged = true
			res.FinalAcc = acc
			res.Iterations = it
			res.Pulses = mn.TotalPulses() - pulsesBefore
			res.Stress = mn.TotalStress() - stressBefore
			return res, nil
		}
		if acc > bestAcc+1e-9 {
			bestAcc = acc
			sinceImprovement = 0
		} else {
			sinceImprovement++
			if sinceImprovement >= cfg.Patience {
				iters = it
				break
			}
		}
		b := batches[next]
		next = (next + 1) % len(batches)
		retries, skipped, err := pol.Step(mn, b, cfg, &ar)
		if err != nil {
			return res, err
		}
		res.Retries += retries
		res.StuckSkipped += skipped
		iters = it + 1
	}
	finalAcc, err := mn.Accuracy(evalX, evalY)
	if err != nil {
		return res, err
	}
	res.FinalAcc = finalAcc
	res.AccTrace = append(res.AccTrace, res.FinalAcc)
	res.Converged = res.FinalAcc >= cfg.TargetAcc
	res.Iterations = iters
	res.Pulses = mn.TotalPulses() - pulsesBefore
	res.Stress = mn.TotalStress() - stressBefore
	return res, nil
}

// step performs one tuning iteration: estimate gradients on batch b
// through the effective-weight network, then pulse the devices with the
// globally largest gradient magnitudes one level in the -sign(grad)
// direction (eq. (5)). The threshold is shared across layers, so layers
// whose weights see larger gradients — convolutional kernels, whose
// gradients sum over all spatial positions — receive more pulses and
// age faster, reproducing the conv-vs-FC asymmetry of Fig. 11.
func step(mn *crossbar.MappedNetwork, b dataset.Batch, frac float64, retryBudget int, ar *arena) (retries, skipped int64, err error) {
	if err := mn.Refresh(); err != nil {
		return 0, 0, err
	}
	mn.Net.ZeroGrads()
	logits := mn.Net.Forward(b.X, true)
	_, dlogits := nn.SoftmaxCrossEntropy(logits, b.Y)
	mn.Net.Backward(dlogits)

	retries, skipped = applyPulses(mn, frac, retryBudget, ar)
	return retries, skipped, nil
}

// arena holds the reusable scratch of one tuning run: the
// absolute-gradient gather used for the global threshold and the
// per-layer pulse list handed to StepDevices. Buffers grow to steady
// size on the first iteration and are reused for the rest of the run
// (see DESIGN.md "Scratch arenas & buffer ownership").
type arena struct {
	abs   []float64
	steps []crossbar.Step
}

// applyPulses runs the gradient-to-pulse stage of one tuning iteration:
// gather gradient magnitudes, pick the global threshold, and pulse each
// layer's above-threshold devices through the batched StepDevices. With
// a warmed arena this stage performs zero heap allocations. The
// gradients in mn.Layers must be current (step computes them first).
func applyPulses(mn *crossbar.MappedNetwork, frac float64, retryBudget int, ar *arena) (retries, skipped int64) {
	total := 0
	for _, l := range mn.Layers {
		total += l.Param.Grad.Size()
	}
	abs := ar.abs[:0]
	for _, l := range mn.Layers {
		for _, v := range l.Param.Grad.Data() {
			if v < 0 {
				v = -v
			}
			abs = append(abs, v)
		}
	}
	ar.abs = abs
	k := int(float64(total) * frac)
	if k < 1 {
		k = 1
	}
	thr := kthLargestAbs(abs, k)
	if thr == 0 {
		return 0, 0 // gradient vanished; nothing to tune
	}
	for _, l := range mn.Layers {
		r, s := pulseLayer(l, thr, retryBudget, ar)
		retries += r
		skipped += s
	}
	return retries, skipped
}

// pulseLayer applies sign pulses to every device of the layer whose
// gradient magnitude reaches the global threshold, by building the
// layer's pulse list in the arena and applying it with one batched
// StepDevices call (one cache patch per moved cell, one telemetry
// flush). The per-device semantics are unchanged: permanently stuck
// devices are skipped — pulsing a dead cell burns endurance-neutral
// write energy for zero movement, so the controller spends its budget
// on cells that can still respond — and a pulse that fails transiently
// is retried up to retryBudget times; every attempt, failed or not,
// ages the device.
func pulseLayer(l *crossbar.MappedLayer, thr float64, retryBudget int, ar *arena) (retries, skipped int64) {
	g := l.Param.Grad.Data()
	cols := l.Crossbar.Cols
	steps := ar.steps[:0]
	for idx, gv := range g {
		a := gv
		if a < 0 {
			a = -a
		}
		if a < thr || a == 0 {
			continue
		}
		dir := -1
		if gv < 0 {
			dir = +1
		}
		steps = append(steps, crossbar.Step{I: idx / cols, J: idx % cols, Dir: dir})
	}
	ar.steps = steps
	st := l.Crossbar.StepDevices(steps, retryBudget)
	return int64(st.Retries), int64(st.StuckSkipped)
}

// kthLargestAbs returns the k-th largest value in abs (1-based),
// sorting abs in place; entries must already be absolute values.
func kthLargestAbs(abs []float64, k int) float64 {
	sort.Float64s(abs)
	idx := len(abs) - k
	if idx < 0 {
		idx = 0
	}
	return abs[idx]
}
