//go:build !race

package tuning

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race (instrumentation allocates).
const raceEnabled = false
