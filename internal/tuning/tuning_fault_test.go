package tuning

import (
	"testing"

	"memlife/internal/fault"
	"memlife/internal/tensor"
)

// TestRetriedPulsesAccumulateStress is the endurance accounting the
// fault model hinges on: when programming pulses fail transiently,
// tuning retries up to its budget and every attempt — failed or not —
// ages the array. Retries are never free.
func TestRetriedPulsesAccumulateStress(t *testing.T) {
	mn, ds, x, y := fixture(t)
	// 95% transient failure: nearly every pulse needs its retry chain.
	if err := mn.SetFaults(fault.Config{TransientProb: 0.95, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// Drift the array so there is real tuning work to do (the fixture
	// starts at its target accuracy).
	mn.Drift(0.15, tensor.NewRNG(4))
	stressBefore := mn.TotalStress()
	res, err := Tune(mn, ds, x, y, Config{
		MaxIters: 4, TargetAcc: 1.0, BatchSize: 16, Patience: -1, RetryBudget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("near-universal transient failure must trigger retries")
	}
	if got := mn.TotalStress() - stressBefore; got <= 0 {
		t.Fatalf("failed pulses and their retries must accumulate stress, got %g", got)
	}
	if res.Stress <= 0 {
		t.Fatalf("tuning result must account the retry stress, got %g", res.Stress)
	}
	// With a 95% failure rate and budget 3 almost every selected device
	// exhausts retries, so the retry count must dwarf the count of
	// devices that moved: the endurance bill of an unreliable write
	// path.
	if res.Retries < res.Pulses/2 {
		t.Fatalf("retries %d implausibly low for 95%% transient failure (%d pulse attempts)",
			res.Retries, res.Pulses)
	}
}

// TestNegativeRetryBudgetDisablesRetries: the budget knob must actually
// gate the retry loop.
func TestNegativeRetryBudgetDisablesRetries(t *testing.T) {
	mn, ds, x, y := fixture(t)
	if err := mn.SetFaults(fault.Config{TransientProb: 0.95, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	mn.Drift(0.15, tensor.NewRNG(4))
	res, err := Tune(mn, ds, x, y, Config{
		MaxIters: 3, TargetAcc: 1.0, BatchSize: 16, Patience: -1, RetryBudget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("RetryBudget<0 must disable retries, got %d", res.Retries)
	}
}

// TestStuckDevicesSkippedWithoutStress: permanently stuck devices are
// excluded from tuning entirely — no pulse, no retry, no added stress.
func TestStuckDevicesSkippedWithoutStress(t *testing.T) {
	mn, ds, x, y := fixture(t)
	if err := mn.SetFaults(fault.Config{StuckRate: 0.3, LRSFrac: 1.0, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	lrs, _ := mn.StuckCounts()
	if lrs == 0 {
		t.Fatal("fixture must have stuck devices at 30%")
	}
	type key struct{ layer, i, j int }
	stuckStress := map[key]float64{}
	for li, l := range mn.Layers {
		for i := 0; i < l.Crossbar.Rows; i++ {
			for j := 0; j < l.Crossbar.Cols; j++ {
				if l.Crossbar.IsStuck(i, j) {
					stuckStress[key{li, i, j}] = l.Crossbar.Device(i, j).Stress()
				}
			}
		}
	}
	mn.Drift(0.15, tensor.NewRNG(4))
	res, err := Tune(mn, ds, x, y, Config{
		MaxIters: 5, TargetAcc: 1.0, BatchSize: 16, Patience: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StuckSkipped == 0 {
		t.Fatal("tuning an array with stuck devices must skip them")
	}
	for k, s0 := range stuckStress {
		l := mn.Layers[k.layer]
		if got := l.Crossbar.Device(k.i, k.j).Stress(); got != s0 {
			t.Fatalf("stuck device (%d,%d) of layer %s gained stress %g during tuning",
				k.i, k.j, l.Name, got-s0)
		}
	}
}
