// Package device models a single programmable memristor as used in the
// paper's crossbars: a resistance programmable within a device range,
// quantized to a fixed number of levels that are uniform in resistance
// (Section II-B; 32 levels per [14], 64 per [15]), and a programming
// pulse model whose accumulated electrical stress drives the aging
// functions of eq. (6)/(7).
//
// The central physical coupling the paper exploits is represented
// explicitly: the stress contributed by a programming pulse is
// proportional to the power dissipated in the device (V_prog^2 * g), so
// devices programmed to small conductances — large resistances, the
// skewed-weight regime — age more slowly.
package device

import (
	"fmt"
	"math"
)

// Params describes one memristor technology.
type Params struct {
	// RminFresh and RmaxFresh bound the programmable resistance range
	// of a fresh device, in Ohms (RminFresh = LRS, RmaxFresh = HRS).
	RminFresh float64 `json:"rmin_fresh"`
	RmaxFresh float64 `json:"rmax_fresh"`
	// Levels is the number of quantization levels, spread uniformly
	// across the fresh resistance range.
	Levels int `json:"levels"`
	// Vprog is the programming pulse amplitude in Volts.
	Vprog float64 `json:"vprog"`
	// PulseWidth is the programming pulse duration in seconds.
	PulseWidth float64 `json:"pulse_width"`
	// Vread is the read voltage used during inference, in Volts.
	Vread float64 `json:"vread"`
	// UniformStress, when set, makes every programming pulse cost one
	// reference unit of stress regardless of the device's conductance.
	// This is an ablation switch: it removes the physical coupling
	// (stress ~ programming power) that lets skewed weights slow down
	// aging, isolating that mechanism's contribution.
	UniformStress bool `json:"uniform_stress"`
	// StressDerate scales every pulse's stress contribution; counter-
	// aging techniques that reduce the effective programming power
	// (shaped pulses [9], series resistors [11]) express their benefit
	// here.
	//
	// The zero value means 1 (no derating), so a plain
	// device.Params32() literal ages at the nominal rate:
	//
	//	p := device.Params32()      // StressDerate == 0 -> factor 1
	//	p.StressDerate = 0.5        // halve every pulse's stress
	//
	// Negative values are rejected by Validate; to disable derating,
	// leave the field zero (or set it to exactly 1).
	StressDerate float64 `json:"stress_derate"`
	// Model selects the pulse-response physics (see ModelSpec and the
	// Model interface). The zero value is the linear model and is
	// omitted from serialization, so specs written before the model zoo
	// keep their historical fingerprints.
	Model ModelSpec `json:"model,omitzero"`
	// Drift configures spontaneous conductance state drift (see
	// DriftSpec). The zero value disables it and is omitted from
	// serialization.
	Drift DriftSpec `json:"drift,omitzero"`
}

// stressDerate returns the effective derating factor.
func (p Params) stressDerate() float64 {
	if p.StressDerate == 0 {
		return 1
	}
	return p.StressDerate
}

// Validate reports an error for physically meaningless parameters.
func (p Params) Validate() error {
	switch {
	case p.RminFresh <= 0 || p.RmaxFresh <= p.RminFresh:
		return fmt.Errorf("device: need 0 < RminFresh < RmaxFresh, got %g/%g", p.RminFresh, p.RmaxFresh)
	case p.Levels < 2:
		return fmt.Errorf("device: need at least 2 levels, got %d", p.Levels)
	case p.Vprog <= 0 || p.PulseWidth <= 0:
		return fmt.Errorf("device: programming pulse must have positive amplitude and width, got %gV/%gs", p.Vprog, p.PulseWidth)
	case p.Vread <= 0 || p.Vread >= p.Vprog:
		return fmt.Errorf("device: read voltage must be in (0, Vprog), got %g", p.Vread)
	case p.StressDerate < 0:
		return fmt.Errorf("device: stress derating must be non-negative, got %g", p.StressDerate)
	}
	if err := p.Model.validate(); err != nil {
		return err
	}
	return p.Drift.validate()
}

// Params32 returns a 32-level TiOx-style device (after [14]): a 10 kOhm
// to 100 kOhm range with 2 V / 100 ns programming pulses.
func Params32() Params {
	return Params{RminFresh: 10e3, RmaxFresh: 100e3, Levels: 32, Vprog: 2.0, PulseWidth: 100e-9, Vread: 0.3}
}

// Params64 returns a 64-level device (after [15]) on the same range.
func Params64() Params {
	p := Params32()
	p.Levels = 64
	return p
}

// GminFresh returns the smallest fresh conductance (at RmaxFresh).
func (p Params) GminFresh() float64 { return 1 / p.RmaxFresh }

// GmaxFresh returns the largest fresh conductance (at RminFresh).
func (p Params) GmaxFresh() float64 { return 1 / p.RminFresh }

// LevelSpacing returns the resistance distance between adjacent levels.
func (p Params) LevelSpacing() float64 {
	return (p.RmaxFresh - p.RminFresh) / float64(p.Levels-1)
}

// LevelResistance returns the resistance of level i on the fresh grid.
// Level 0 is RminFresh; level Levels-1 is RmaxFresh.
func (p Params) LevelResistance(i int) float64 {
	if i < 0 || i >= p.Levels {
		panic(fmt.Sprintf("device: level %d out of range [0,%d)", i, p.Levels))
	}
	return p.RminFresh + float64(i)*p.LevelSpacing()
}

// LevelConductance returns the conductance of level i. Because levels
// are uniform in resistance, conductances cluster near GminFresh — the
// non-uniform grid of Fig. 3(c) that skewed weights exploit.
func (p Params) LevelConductance(i int) float64 { return 1 / p.LevelResistance(i) }

// NearestLevel returns the level index whose resistance is closest to r,
// clamped to the grid. It dispatches through the shared Grid LUT — the
// single home of the level-selection arithmetic (the direct formula
// lives in Grid.NearestLevel, fuzz-pinned against a reference
// implementation by FuzzQuantLUTMatchesDirect).
func (p Params) NearestLevel(r float64) int { return p.Grid().NearestLevel(r) }

// NearestLevelIn returns the level index closest to r among levels whose
// resistance lies within [lo, hi]. When no level falls inside the
// window it returns the level nearest to the window. This implements
// the clipping of Fig. 4: a target of Level 7 on a device aged down to
// three usable levels lands on Level 2. Dispatches through the Grid LUT
// (see NearestLevel).
func (p Params) NearestLevelIn(r, lo, hi float64) int { return p.Grid().NearestLevelIn(r, lo, hi) }

// UsableLevels counts the levels of the fresh grid that remain inside
// the aged range [lo, hi] (Fig. 4's level-count decay). Dispatches
// through the Grid LUT (see NearestLevel).
func (p Params) UsableLevels(lo, hi float64) int { return p.Grid().UsableLevels(lo, hi) }

// TunePulseDeltaG returns the conductance change of one online-tuning
// pulse. Tuning pulses are small constant-amplitude nudges (eq. (5))
// that move the analog conductance by a fraction of a level, unlike the
// mapping pulses that hop whole quantization levels.
func (p Params) TunePulseDeltaG() float64 {
	return (p.GmaxFresh() - p.GminFresh()) / float64(4*p.Levels)
}

// refPulseEnergy returns the energy of one programming pulse through a
// device at maximum fresh conductance. Stress is accounted in units of
// this reference energy so aging-model constants are dimensionless and
// technology-portable.
func (p Params) refPulseEnergy() float64 {
	return p.Vprog * p.Vprog * p.GmaxFresh() * p.PulseWidth
}

// PulseStress returns the normalized stress contributed by one
// programming pulse applied while the device sits at resistance r:
// (Vprog^2 / r * width) / refPulseEnergy = RminFresh / r. A pulse into
// a fully-resistive (skewed-regime) device costs RminFresh/RmaxFresh of
// a full-current pulse — the aging advantage of Section IV-A.
func (p Params) PulseStress(r float64) float64 {
	if r <= 0 {
		panic(fmt.Sprintf("device: non-positive resistance %g", r))
	}
	if p.UniformStress {
		// Conductance-independent ablation: every pulse costs the
		// stress of a pulse through the geometric-mean resistance, so
		// the total budget is comparable to the physical model while
		// the skewed-weight advantage is removed.
		return math.Sqrt(p.RminFresh/p.RmaxFresh) * p.stressDerate()
	}
	return (p.Vprog * p.Vprog / r * p.PulseWidth) / p.refPulseEnergy() * p.stressDerate()
}

// FaultKind classifies the permanent fault state of a device. Stuck-at
// faults are the dominant hard-failure mode of filamentary RRAM: the
// filament either fuses permanently (stuck-at-LRS, a short near the
// lowest resistance) or ruptures permanently (stuck-at-HRS, pinned at
// the highest resistance). A stuck device ignores programming pulses —
// but pulses applied to it still dissipate power and are still paid
// for by the periphery, so fault-unaware controllers waste both time
// and write energy on dead cells.
type FaultKind int

const (
	// FaultNone is a healthy, programmable device.
	FaultNone FaultKind = iota
	// FaultStuckLRS pins the device at its low-resistance state
	// (maximum conductance) — the worst case for column currents.
	FaultStuckLRS
	// FaultStuckHRS pins the device at its high-resistance state
	// (minimum conductance).
	FaultStuckHRS
)

// String names the fault kind for reports.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultStuckLRS:
		return "stuck-LRS"
	case FaultStuckHRS:
		return "stuck-HRS"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Device is one memristor instance: its current programmed resistance
// plus its irreversible programming history.
type Device struct {
	p Params
	// g is the shared quantization/pulse lookup table for p, resolved
	// once at construction (see Grid); its methods are bit-identical to
	// the Params ones.
	g *Grid
	// m is the shared pulse-response model for p (see Model), resolved
	// once at construction; equal to m.Grid()'s owner for the grid.
	m Model
	// noiseSeed keys the device's deterministic pulse-noise streams
	// (see SeedNoise); d2d is its fixed device-to-device draw and noisy
	// caches whether the model consults per-pulse draws at all, so the
	// default (variation-free) pulse path never derives noise.
	noiseSeed uint64
	d2d       float64
	noisy     bool
	// r is the current resistance in Ohms.
	r float64
	// stress is the accumulated normalized programming stress that
	// drives eq. (6)/(7). It never decreases.
	stress float64
	// agingFactor scales this device's stress accumulation, modelling
	// device-to-device endurance variability (process variation).
	// 1.0 is nominal.
	agingFactor float64
	// pulses counts programming pulses over the device lifetime.
	pulses int64
	// fault is the permanent fault state; a stuck device's resistance
	// is pinned and programming no longer moves it.
	fault FaultKind
}

// New returns a fresh device initialized to its highest resistance
// (lowest conductance) state.
func New(p Params) *Device {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	d := &Device{p: p, g: p.Grid(), m: p.ResolveModel(), r: p.RmaxFresh, agingFactor: 1}
	d.SeedNoise(0)
	return d
}

// Model returns the device's shared pulse-response model.
func (d *Device) Model() Model { return d.m }

// AgingFactor returns the device's endurance-variability factor.
func (d *Device) AgingFactor() float64 { return d.agingFactor }

// SetAgingFactor sets the device's endurance-variability factor: every
// pulse's stress is multiplied by f. Weak devices have f > 1.
func (d *Device) SetAgingFactor(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("device: aging factor must be positive, got %g", f))
	}
	d.agingFactor = f
}

// Params returns the device technology parameters.
func (d *Device) Params() Params { return d.p }

// Resistance returns the current programmed resistance in Ohms.
func (d *Device) Resistance() float64 { return d.r }

// Conductance returns the current conductance in Siemens.
func (d *Device) Conductance() float64 { return 1 / d.r }

// Stress returns the accumulated normalized programming stress.
func (d *Device) Stress() float64 { return d.stress }

// Pulses returns the lifetime programming pulse count.
func (d *Device) Pulses() int64 { return d.pulses }

// Fault returns the device's permanent fault state.
func (d *Device) Fault() FaultKind { return d.fault }

// Stuck reports whether the device is permanently stuck.
func (d *Device) Stuck() bool { return d.fault != FaultNone }

// SetFault pins the device into the given permanent fault state:
// stuck-at-LRS snaps the resistance to the fresh LRS (the fused
// filament is a low-resistance short regardless of the aged window),
// stuck-at-HRS to the fresh HRS. Setting FaultNone un-sticks the
// device (used by tests); the resistance keeps its pinned value.
func (d *Device) SetFault(k FaultKind) {
	d.fault = k
	switch k {
	case FaultStuckLRS:
		d.r = d.p.RminFresh
	case FaultStuckHRS:
		d.r = d.p.RmaxFresh
	}
}

// FailedPulse accounts one programming pulse that did not take — a
// transient programming failure, or a write attempt on a stuck device.
// The pulse still dissipates the programming power at the device's
// present state, so stress and the pulse count accumulate exactly as
// for a successful pulse; only the resistance stays put. Retried
// pulses are therefore never free. It returns the stress added.
func (d *Device) FailedPulse() float64 {
	s := d.m.PulseStress(d.r) * d.agingFactor
	d.stress += s
	d.pulses++
	return s
}

// Drift perturbs the resistance without programming (the recoverable
// read-disturb drift of [8], distinct from aging). The resistance stays
// within [lo, hi]. A stuck device does not drift: its filament state is
// locked.
func (d *Device) Drift(delta, lo, hi float64) {
	if d.Stuck() {
		return
	}
	d.r += delta
	if d.r < lo {
		d.r = lo
	}
	if d.r > hi {
		d.r = hi
	}
}

// AddStress injects raw programming stress without changing the
// device's state, scaled by the device's aging factor. It models prior
// life (burn-in) for experiments that must start from a pre-aged array.
func (d *Device) AddStress(s float64) {
	if s < 0 {
		panic(fmt.Sprintf("device: negative stress injection %g", s))
	}
	d.stress += s * d.agingFactor
}

// Pulse applies one online-tuning pulse: the conductance moves per the
// device's pulse-response model (for the linear model, by
// dir * TunePulseDeltaG), with the resistance clamped to the valid
// window [lo, hi]. The pulse costs stress whether or not the device
// could move (a pinned device still dissipates the programming power).
// It returns the stress added.
func (d *Device) Pulse(dir int, lo, hi float64) float64 {
	if dir == 0 {
		return 0
	}
	if d.Stuck() {
		return d.FailedPulse()
	}
	s := d.m.PulseStress(d.r) * d.agingFactor
	d.stress += s
	d.pulses++
	var c2c float64
	if d.noisy {
		c2c = d.c2cDraw()
	}
	g := d.m.StepG(1/d.r, dir, d.d2d, c2c)
	if g < 1/hi {
		g = 1 / hi
	}
	if g > 1/lo {
		g = 1 / lo
	}
	d.r = 1 / g
	return s
}

func sign(v int) int {
	if v > 0 {
		return 1
	}
	return -1
}

// ProgramResult reports what one Program call did.
type ProgramResult struct {
	// Achieved is the resistance actually programmed.
	Achieved float64
	// Pulses is the number of programming pulses applied.
	Pulses int
	// Stress is the normalized stress added by those pulses.
	Stress float64
	// Clipped reports whether the target fell outside [lo, hi].
	Clipped bool
	// Stuck reports that the device is permanently stuck: the write
	// attempt was detected as ineffective after one verify pulse and
	// Achieved is the pinned resistance, not the target.
	Stuck bool
}

// Program steps the device towards target resistance, constrained to
// the valid window [lo, hi] (the caller supplies the device's current
// aged bounds). The device walks the fresh level grid one pulse per
// level; each pulse adds stress proportional to the instantaneous
// programming power. Programming to the already-held level is free.
func (d *Device) Program(target, lo, hi float64) ProgramResult {
	if lo > hi {
		panic(fmt.Sprintf("device: program window inverted [%g, %g]", lo, hi))
	}
	res := ProgramResult{}
	if d.Stuck() {
		// The write-verify periphery applies one pulse, sees no
		// movement, and gives up; the attempt still costs its stress.
		// Fault-aware controllers avoid even this by skipping devices
		// their fault map marks as stuck.
		res.Stuck = true
		res.Achieved = d.r
		goalLvl := d.g.NearestLevelIn(target, lo, hi)
		if d.g.LevelResistance(goalLvl) != d.r {
			res.Stress = d.FailedPulse()
			res.Pulses = 1
		}
		return res
	}
	goal := target
	if goal < lo {
		goal, res.Clipped = lo, true
	} else if goal > hi {
		goal, res.Clipped = hi, true
	}
	goalLvl := d.g.NearestLevelIn(goal, lo, hi)
	goalR := d.g.LevelResistance(goalLvl)

	curLvl := d.g.NearestLevel(d.r)
	// Off-grid (drifted) resistance needs at least one corrective pulse
	// even when the nearest level equals the goal level.
	needsCorrection := math.Abs(d.r-goalR) > d.g.LevelSpacing()*0.01

	step := 1
	if goalLvl < curLvl {
		step = -1
	}
	for lvl := curLvl; lvl != goalLvl; lvl += step {
		// Pulse applied while the device sits at the current state.
		s := d.m.PulseStress(d.r) * d.agingFactor
		d.stress += s
		res.Stress += s
		res.Pulses++
		d.pulses++
		d.r = d.g.LevelResistance(lvl + step)
	}
	if res.Pulses == 0 && needsCorrection {
		s := d.m.PulseStress(d.r) * d.agingFactor
		d.stress += s
		res.Stress += s
		res.Pulses = 1
		d.pulses++
		d.r = goalR
	}
	if res.Pulses > 0 {
		d.r = goalR
	}
	res.Achieved = d.r
	return res
}
