package device

import "math"

// Deterministic per-device pulse noise.
//
// The stochastic models need two kinds of draws: one fixed
// device-to-device factor per device (parameter scatter) and one fresh
// cycle-to-cycle factor per pulse (switching noise). Both must be pure
// functions of (device noise seed, lifetime pulse counter) so that
// results are bit-identical for every evaluation worker count —
// evaluation parallelism only touches the read path, pulses are always
// applied serially, and counter-keyed hashing removes any dependence on
// shared-RNG call order entirely. The draws are plain arithmetic
// (splitmix64 + Box-Muller), so the pulse hot path stays allocation-
// free with stochastic models too.

// splitmix64 is the splitmix64 finalizer, the repo's standard stateless
// seed mixer (see internal/campaign, internal/fleet).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unitFromBits maps 64 random bits to the open interval (0, 1): the top
// 53 bits as a float in [0,1) plus half an ulp so the Box-Muller log
// never sees zero.
func unitFromBits(b uint64) float64 {
	return (float64(b>>11) + 0.5) / (1 << 53)
}

// normalFromSeed derives one standard-normal draw from a hashed seed
// via Box-Muller over two derived uniforms.
func normalFromSeed(h uint64) float64 {
	u1 := unitFromBits(h)
	u2 := unitFromBits(splitmix64(h))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// SeedNoise (re)derives the device's noise streams from seed: the
// per-pulse cycle-to-cycle stream key and, when the model has
// device-to-device variation, the device's fixed standard-normal draw.
// Crossbars seed every device from its (layer, index) position at
// construction, so the network-wide noise field is a pure function of
// the architecture. For models without variation this only stores the
// seed (draws are never consulted).
func (d *Device) SeedNoise(seed uint64) {
	d.noiseSeed = splitmix64(seed)
	dS, cS := d.m.Variation()
	d.noisy = cS > 0
	d.d2d = 0
	if dS > 0 {
		d.d2d = normalFromSeed(splitmix64(d.noiseSeed ^ 0xD2D0_5EED))
	}
}

// c2cDraw returns the standard-normal cycle-to-cycle draw of the
// device's next pulse: a pure function of the noise seed and the
// lifetime pulse counter.
func (d *Device) c2cDraw() float64 {
	return normalFromSeed(splitmix64(d.noiseSeed ^ uint64(d.pulses)*0x9E3779B97F4A7C15))
}
