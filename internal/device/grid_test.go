package device

import (
	"math"
	"testing"
)

// TestGridMatchesParams pins every Grid method against its direct
// Params counterpart on the shipped technologies.
func TestGridMatchesParams(t *testing.T) {
	for _, p := range []Params{Params32(), Params64(), {RminFresh: 5e3, RmaxFresh: 2e5, Levels: 7, Vprog: 1.5, PulseWidth: 50e-9, Vread: 0.2, StressDerate: 0.4}} {
		g := p.Grid()
		if g != p.Grid() {
			t.Fatal("grid must be cached per Params value")
		}
		if g.LevelSpacing() != p.LevelSpacing() {
			t.Fatalf("spacing %v != %v", g.LevelSpacing(), p.LevelSpacing())
		}
		if g.TunePulseDeltaG() != p.TunePulseDeltaG() {
			t.Fatalf("tune delta %v != %v", g.TunePulseDeltaG(), p.TunePulseDeltaG())
		}
		for i := 0; i < p.Levels; i++ {
			if g.LevelResistance(i) != p.LevelResistance(i) {
				t.Fatalf("level %d: %v != %v", i, g.LevelResistance(i), p.LevelResistance(i))
			}
		}
		for _, r := range []float64{p.RminFresh / 2, p.RminFresh, (p.RminFresh + p.RmaxFresh) / 2, p.RmaxFresh, p.RmaxFresh * 2} {
			if g.NearestLevel(r) != p.NearestLevel(r) {
				t.Fatalf("NearestLevel(%g): %d != %d", r, g.NearestLevel(r), p.NearestLevel(r))
			}
			if g.PulseStress(r) != p.PulseStress(r) {
				t.Fatalf("PulseStress(%g): %v != %v", r, g.PulseStress(r), p.PulseStress(r))
			}
		}
	}
}

// Reference implementations of the level-selection arithmetic: the
// exact direct formulas Params used before its quantization methods
// were consolidated onto the Grid LUT. They are kept here, test-local,
// so the fuzz below pins the one production implementation against an
// independent spelling instead of comparing it to itself.

func refNearestLevel(p Params, r float64) int {
	i := int(math.Round((r - p.RminFresh) / p.LevelSpacing()))
	if i < 0 {
		i = 0
	}
	if i >= p.Levels {
		i = p.Levels - 1
	}
	return i
}

func refWindowLevels(p Params, lo, hi float64) (int, int) {
	loLvl := int(math.Ceil((lo - p.RminFresh) / p.LevelSpacing()))
	hiLvl := int(math.Floor((hi - p.RminFresh) / p.LevelSpacing()))
	if loLvl < 0 {
		loLvl = 0
	}
	if hiLvl >= p.Levels {
		hiLvl = p.Levels - 1
	}
	return loLvl, hiLvl
}

func refNearestLevelIn(p Params, r, lo, hi float64) int {
	loLvl, hiLvl := refWindowLevels(p, lo, hi)
	if loLvl > hiLvl {
		// No level inside the aged window; use the nearest grid point
		// to the window midpoint.
		return refNearestLevel(p, (lo+hi)/2)
	}
	i := refNearestLevel(p, r)
	if i < loLvl {
		return loLvl
	}
	if i > hiLvl {
		return hiLvl
	}
	return i
}

func refUsableLevels(p Params, lo, hi float64) int {
	loLvl, hiLvl := refWindowLevels(p, lo, hi)
	if loLvl > hiLvl {
		return 0
	}
	return hiLvl - loLvl + 1
}

func refPulseStress(p Params, r float64) float64 {
	if p.UniformStress {
		return math.Sqrt(p.RminFresh/p.RmaxFresh) * p.stressDerate()
	}
	return (p.Vprog * p.Vprog / r * p.PulseWidth) / p.refPulseEnergy() * p.stressDerate()
}

// FuzzQuantLUTMatchesDirect is the LUT-path equivalence fuzz: over
// random technologies (level counts, ranges, derates, the uniform
// ablation) and random aged/faulted bounds states, the grid-based level
// selection and pulse-stress computation must be bit-identical to the
// direct reference formulas above — and the Params methods, which now
// dispatch through the Grid LUT (one source of truth), must agree with
// both. The seed corpus covers the shipped technologies, collapsed aged
// windows (no level inside the window), inverted-window midpoint
// fallbacks, and off-grid drifted resistances.
func FuzzQuantLUTMatchesDirect(f *testing.F) {
	f.Add(10e3, 100e3, 32, 55e3, 12e3, 90e3, 0.0, false)
	f.Add(10e3, 100e3, 64, 100e3, 500.0, 3.4e3, 1.0, false) // window below the grid
	f.Add(10e3, 100e3, 2, 10e3, 99e3, 99.5e3, 0.5, true)    // no level inside the window
	f.Add(5e3, 2e5, 7, 1.23e4, 5e3, 2e5, 0.25, false)       // coarse grid, off-grid r
	f.Add(1.0, 2.0, 1024, 1.5005, 1.2, 1.9, 0.0, false)     // dense grid
	f.Fuzz(func(t *testing.T, rmin, rmax float64, levels int, r, lo, hi float64, derate float64, uniform bool) {
		p := Params{
			RminFresh: rmin, RmaxFresh: rmax, Levels: levels,
			Vprog: 2.0, PulseWidth: 100e-9, Vread: 0.3,
			UniformStress: uniform, StressDerate: derate,
		}
		if p.Validate() != nil || levels > 1<<16 {
			t.Skip()
		}
		// Bounds states come from the aging model, which keeps lo
		// positive and hi >= lo; mirror that sanitization but keep the
		// values otherwise arbitrary.
		if !(lo > 0) || !(hi >= lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			t.Skip()
		}
		if !(r > 0) || math.IsInf(r, 0) {
			t.Skip()
		}
		g := p.Grid()
		if got, want := g.NearestLevel(r), refNearestLevel(p, r); got != want {
			t.Fatalf("NearestLevel(%g): grid %d, direct %d", r, got, want)
		}
		gotIn, wantIn := g.NearestLevelIn(r, lo, hi), refNearestLevelIn(p, r, lo, hi)
		if gotIn != wantIn {
			t.Fatalf("NearestLevelIn(%g, %g, %g): grid %d, direct %d", r, lo, hi, gotIn, wantIn)
		}
		if g.LevelResistance(gotIn) != p.LevelResistance(wantIn) {
			t.Fatalf("LevelResistance(%d): grid %v, direct %v", gotIn, g.LevelResistance(gotIn), p.LevelResistance(wantIn))
		}
		if got, want := g.UsableLevels(lo, hi), refUsableLevels(p, lo, hi); got != want {
			t.Fatalf("UsableLevels(%g, %g): grid %d, direct %d", lo, hi, got, want)
		}
		if got, want := g.PulseStress(r), refPulseStress(p, r); got != want {
			t.Fatalf("PulseStress(%g): grid %v, direct %v", r, got, want)
		}
		// The Params methods dispatch through the same LUT; pin the
		// delegation so the consolidated entry points can never diverge.
		if got, want := p.NearestLevel(r), g.NearestLevel(r); got != want {
			t.Fatalf("Params.NearestLevel(%g): %d, grid %d", r, got, want)
		}
		if got, want := p.NearestLevelIn(r, lo, hi), gotIn; got != want {
			t.Fatalf("Params.NearestLevelIn(%g, %g, %g): %d, grid %d", r, lo, hi, got, want)
		}
		if got, want := p.UsableLevels(lo, hi), g.UsableLevels(lo, hi); got != want {
			t.Fatalf("Params.UsableLevels(%g, %g): %d, grid %d", lo, hi, got, want)
		}
	})
}
