package device

import (
	"math"
	"testing"
)

// TestGridMatchesParams pins every Grid method against its direct
// Params counterpart on the shipped technologies.
func TestGridMatchesParams(t *testing.T) {
	for _, p := range []Params{Params32(), Params64(), {RminFresh: 5e3, RmaxFresh: 2e5, Levels: 7, Vprog: 1.5, PulseWidth: 50e-9, Vread: 0.2, StressDerate: 0.4}} {
		g := p.Grid()
		if g != p.Grid() {
			t.Fatal("grid must be cached per Params value")
		}
		if g.LevelSpacing() != p.LevelSpacing() {
			t.Fatalf("spacing %v != %v", g.LevelSpacing(), p.LevelSpacing())
		}
		if g.TunePulseDeltaG() != p.TunePulseDeltaG() {
			t.Fatalf("tune delta %v != %v", g.TunePulseDeltaG(), p.TunePulseDeltaG())
		}
		for i := 0; i < p.Levels; i++ {
			if g.LevelResistance(i) != p.LevelResistance(i) {
				t.Fatalf("level %d: %v != %v", i, g.LevelResistance(i), p.LevelResistance(i))
			}
		}
		for _, r := range []float64{p.RminFresh / 2, p.RminFresh, (p.RminFresh + p.RmaxFresh) / 2, p.RmaxFresh, p.RmaxFresh * 2} {
			if g.NearestLevel(r) != p.NearestLevel(r) {
				t.Fatalf("NearestLevel(%g): %d != %d", r, g.NearestLevel(r), p.NearestLevel(r))
			}
			if g.PulseStress(r) != p.PulseStress(r) {
				t.Fatalf("PulseStress(%g): %v != %v", r, g.PulseStress(r), p.PulseStress(r))
			}
		}
	}
}

// FuzzQuantLUTMatchesDirect is the LUT-path equivalence fuzz: over
// random technologies (level counts, ranges, derates, the uniform
// ablation) and random aged/faulted bounds states, the grid-based level
// selection and pulse-stress computation must be bit-identical to the
// direct Params computation. The seed corpus covers the shipped
// technologies, collapsed aged windows (no level inside the window),
// inverted-window midpoint fallbacks, and off-grid drifted resistances.
func FuzzQuantLUTMatchesDirect(f *testing.F) {
	f.Add(10e3, 100e3, 32, 55e3, 12e3, 90e3, 0.0, false)
	f.Add(10e3, 100e3, 64, 100e3, 500.0, 3.4e3, 1.0, false) // window below the grid
	f.Add(10e3, 100e3, 2, 10e3, 99e3, 99.5e3, 0.5, true)    // no level inside the window
	f.Add(5e3, 2e5, 7, 1.23e4, 5e3, 2e5, 0.25, false)       // coarse grid, off-grid r
	f.Add(1.0, 2.0, 1024, 1.5005, 1.2, 1.9, 0.0, false)     // dense grid
	f.Fuzz(func(t *testing.T, rmin, rmax float64, levels int, r, lo, hi float64, derate float64, uniform bool) {
		p := Params{
			RminFresh: rmin, RmaxFresh: rmax, Levels: levels,
			Vprog: 2.0, PulseWidth: 100e-9, Vread: 0.3,
			UniformStress: uniform, StressDerate: derate,
		}
		if p.Validate() != nil || levels > 1<<16 {
			t.Skip()
		}
		// Bounds states come from the aging model, which keeps lo
		// positive and hi >= lo; mirror that sanitization but keep the
		// values otherwise arbitrary.
		if !(lo > 0) || !(hi >= lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			t.Skip()
		}
		if !(r > 0) || math.IsInf(r, 0) {
			t.Skip()
		}
		g := p.Grid()
		if got, want := g.NearestLevel(r), p.NearestLevel(r); got != want {
			t.Fatalf("NearestLevel(%g): grid %d, direct %d", r, got, want)
		}
		gotIn, wantIn := g.NearestLevelIn(r, lo, hi), p.NearestLevelIn(r, lo, hi)
		if gotIn != wantIn {
			t.Fatalf("NearestLevelIn(%g, %g, %g): grid %d, direct %d", r, lo, hi, gotIn, wantIn)
		}
		if g.LevelResistance(gotIn) != p.LevelResistance(wantIn) {
			t.Fatalf("LevelResistance(%d): grid %v, direct %v", gotIn, g.LevelResistance(gotIn), p.LevelResistance(wantIn))
		}
		if got, want := g.UsableLevels(lo, hi), p.UsableLevels(lo, hi); got != want {
			t.Fatalf("UsableLevels(%g, %g): grid %d, direct %d", lo, hi, got, want)
		}
		if got, want := g.PulseStress(r), p.PulseStress(r); got != want {
			t.Fatalf("PulseStress(%g): grid %v, direct %v", r, got, want)
		}
	})
}
