package device

import (
	"fmt"
	"math"
	"sync"
)

// Grid is the precomputed quantization/level lookup table of one device
// technology: the level-resistance grid materialized once, plus every
// derived constant the programming hot loops recompute on the Params
// methods (level spacing, tuning-pulse delta, pulse-stress reference
// energy). Grids are cached process-wide per Params value — Params is a
// small comparable struct, and a simulation uses a handful of
// technologies across millions of devices — so every device of a
// crossbar shares one table.
//
// Every method is bit-identical to its Params counterpart: the table
// entries are computed by exactly the formula of LevelResistance, and
// the scalar constants are single precomputed values fed through the
// same arithmetic associations (FuzzQuantLUTMatchesDirect pins this
// over random technologies and inputs).
type Grid struct {
	p       Params
	spacing float64   // LevelSpacing()
	levelR  []float64 // levelR[i] = LevelResistance(i)

	tuneDeltaG float64 // TunePulseDeltaG()

	// Pulse-stress constants (see Params.PulseStress): the derated
	// uniform-stress cost and the constants of the physical form
	// ((vprogSq/r)*width)/refEnergy*derate, kept separate so the
	// association matches the Params method exactly.
	uniformStress float64
	vprogSq       float64
	width         float64
	refEnergy     float64
	derate        float64
}

// gridCache holds one Grid per Params value ever requested.
var gridCache sync.Map // Params -> *Grid

// Grid returns the shared lookup table for this technology, building it
// on first use. p must be valid (it panics on invalid Params, like New).
func (p Params) Grid() *Grid {
	if g, ok := gridCache.Load(p); ok {
		return g.(*Grid)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Grid{
		p:             p,
		spacing:       p.LevelSpacing(),
		levelR:        make([]float64, p.Levels),
		tuneDeltaG:    p.TunePulseDeltaG(),
		uniformStress: math.Sqrt(p.RminFresh/p.RmaxFresh) * p.stressDerate(),
		vprogSq:       p.Vprog * p.Vprog,
		width:         p.PulseWidth,
		refEnergy:     p.refPulseEnergy(),
		derate:        p.stressDerate(),
	}
	for i := range g.levelR {
		g.levelR[i] = p.RminFresh + float64(i)*g.spacing
	}
	actual, _ := gridCache.LoadOrStore(p, g)
	return actual.(*Grid)
}

// Params returns the technology the grid was built for.
func (g *Grid) Params() Params { return g.p }

// LevelSpacing returns the precomputed resistance distance between
// adjacent levels.
func (g *Grid) LevelSpacing() float64 { return g.spacing }

// LevelResistance returns levelR[i] from the table.
func (g *Grid) LevelResistance(i int) float64 {
	if i < 0 || i >= len(g.levelR) {
		panic(fmt.Sprintf("device: level %d out of range [0,%d)", i, len(g.levelR)))
	}
	return g.levelR[i]
}

// NearestLevel is Params.NearestLevel over the precomputed spacing.
func (g *Grid) NearestLevel(r float64) int {
	i := int(math.Round((r - g.p.RminFresh) / g.spacing))
	if i < 0 {
		i = 0
	}
	if i >= g.p.Levels {
		i = g.p.Levels - 1
	}
	return i
}

// WindowLevels returns the level-index window [loLvl, hiLvl] of the
// fresh grid inside the resistance window [lo, hi], clamped to the
// grid; ok is false when no level falls inside (loLvl > hiLvl). This is
// the per-window half of NearestLevelIn, exposed so matrix-scale
// callers with one shared window (quantization against a common mapping
// range) hoist it out of their element loops.
func (g *Grid) WindowLevels(lo, hi float64) (loLvl, hiLvl int, ok bool) {
	loLvl = int(math.Ceil((lo - g.p.RminFresh) / g.spacing))
	hiLvl = int(math.Floor((hi - g.p.RminFresh) / g.spacing))
	if loLvl < 0 {
		loLvl = 0
	}
	if hiLvl >= g.p.Levels {
		hiLvl = g.p.Levels - 1
	}
	return loLvl, hiLvl, loLvl <= hiLvl
}

// NearestLevelIn is Params.NearestLevelIn through the table.
func (g *Grid) NearestLevelIn(r, lo, hi float64) int {
	loLvl, hiLvl, ok := g.WindowLevels(lo, hi)
	if !ok {
		return g.NearestLevel((lo + hi) / 2)
	}
	i := g.NearestLevel(r)
	if i < loLvl {
		return loLvl
	}
	if i > hiLvl {
		return hiLvl
	}
	return i
}

// UsableLevels is Params.UsableLevels through the table.
func (g *Grid) UsableLevels(lo, hi float64) int {
	loLvl, hiLvl, ok := g.WindowLevels(lo, hi)
	if !ok {
		return 0
	}
	return hiLvl - loLvl + 1
}

// TunePulseDeltaG returns the precomputed tuning-pulse conductance step.
func (g *Grid) TunePulseDeltaG() float64 { return g.tuneDeltaG }

// PulseStress is Params.PulseStress over the precomputed constants,
// with the arithmetic association preserved.
func (g *Grid) PulseStress(r float64) float64 {
	if r <= 0 {
		panic(fmt.Sprintf("device: non-positive resistance %g", r))
	}
	if g.p.UniformStress {
		return g.uniformStress
	}
	return (g.vprogSq / r * g.width) / g.refEnergy * g.derate
}
