package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	if err := Params32().Validate(); err != nil {
		t.Fatalf("Params32 invalid: %v", err)
	}
	if err := Params64().Validate(); err != nil {
		t.Fatalf("Params64 invalid: %v", err)
	}
	bad := []Params{
		{RminFresh: 0, RmaxFresh: 1e5, Levels: 32, Vprog: 2, PulseWidth: 1e-7, Vread: 0.3},
		{RminFresh: 1e5, RmaxFresh: 1e4, Levels: 32, Vprog: 2, PulseWidth: 1e-7, Vread: 0.3},
		{RminFresh: 1e4, RmaxFresh: 1e5, Levels: 1, Vprog: 2, PulseWidth: 1e-7, Vread: 0.3},
		{RminFresh: 1e4, RmaxFresh: 1e5, Levels: 32, Vprog: 0, PulseWidth: 1e-7, Vread: 0.3},
		{RminFresh: 1e4, RmaxFresh: 1e5, Levels: 32, Vprog: 2, PulseWidth: 0, Vread: 0.3},
		{RminFresh: 1e4, RmaxFresh: 1e5, Levels: 32, Vprog: 2, PulseWidth: 1e-7, Vread: 3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: params %+v should be rejected", i, p)
		}
	}
}

func TestLevelGridEndpoints(t *testing.T) {
	p := Params32()
	if p.LevelResistance(0) != p.RminFresh {
		t.Fatalf("level 0 = %g, want RminFresh", p.LevelResistance(0))
	}
	if p.LevelResistance(p.Levels-1) != p.RmaxFresh {
		t.Fatalf("top level = %g, want RmaxFresh", p.LevelResistance(p.Levels-1))
	}
	spacing := p.LevelSpacing()
	if math.Abs(p.LevelResistance(1)-p.LevelResistance(0)-spacing) > 1e-9 {
		t.Fatal("levels must be uniform in resistance")
	}
}

func TestLevelConductancesDenseNearGmin(t *testing.T) {
	// The defining non-uniformity of Fig. 3(c): conductance gaps shrink
	// towards the high-resistance end.
	p := Params32()
	gapLow := p.LevelConductance(0) - p.LevelConductance(1)                    // near Gmax
	gapHigh := p.LevelConductance(p.Levels-2) - p.LevelConductance(p.Levels-1) // near Gmin
	if gapHigh >= gapLow {
		t.Fatalf("conductance grid must be denser near Gmin: gaps %g (low R) vs %g (high R)", gapLow, gapHigh)
	}
}

func TestNearestLevelRoundTrip(t *testing.T) {
	p := Params32()
	for i := 0; i < p.Levels; i++ {
		if p.NearestLevel(p.LevelResistance(i)) != i {
			t.Fatalf("NearestLevel(LevelResistance(%d)) != %d", i, i)
		}
	}
	if p.NearestLevel(0) != 0 {
		t.Fatal("below-range resistance must clamp to level 0")
	}
	if p.NearestLevel(1e9) != p.Levels-1 {
		t.Fatal("above-range resistance must clamp to top level")
	}
}

func TestNearestLevelInClipsToWindow(t *testing.T) {
	p := Params32()
	// Aged window keeps only the lowest 3 levels.
	lo, hi := p.RminFresh, p.LevelResistance(2)
	got := p.NearestLevelIn(p.RmaxFresh, lo, hi) // "program to Level 31"
	if got != 2 {
		t.Fatalf("clipped level = %d, want 2 (Fig. 4 behaviour)", got)
	}
	// A target inside the window is untouched.
	if p.NearestLevelIn(p.LevelResistance(1), lo, hi) != 1 {
		t.Fatal("in-window target must not be clipped")
	}
	// Empty window: nearest grid point to midpoint.
	mid := p.LevelResistance(5) + p.LevelSpacing()*0.3
	lvl := p.NearestLevelIn(p.RmaxFresh, mid, mid)
	if lvl != 5 && lvl != 6 {
		t.Fatalf("empty-window fallback level = %d", lvl)
	}
}

func TestUsableLevels(t *testing.T) {
	p := Params32()
	if got := p.UsableLevels(p.RminFresh, p.RmaxFresh); got != 32 {
		t.Fatalf("fresh usable levels = %d, want 32", got)
	}
	if got := p.UsableLevels(p.RminFresh, p.LevelResistance(2)); got != 3 {
		t.Fatalf("aged usable levels = %d, want 3", got)
	}
	if got := p.UsableLevels(p.RmaxFresh+1, p.RmaxFresh+2); got != 0 {
		t.Fatalf("out-of-grid window usable levels = %d, want 0", got)
	}
}

func TestPulseStressScalesWithConductance(t *testing.T) {
	p := Params32()
	// A pulse at RminFresh (max conductance) is the reference: 1.0.
	if math.Abs(p.PulseStress(p.RminFresh)-1) > 1e-12 {
		t.Fatalf("reference pulse stress = %g, want 1", p.PulseStress(p.RminFresh))
	}
	// A pulse at RmaxFresh costs Rmin/Rmax of that.
	want := p.RminFresh / p.RmaxFresh
	if math.Abs(p.PulseStress(p.RmaxFresh)-want) > 1e-12 {
		t.Fatalf("high-R pulse stress = %g, want %g", p.PulseStress(p.RmaxFresh), want)
	}
}

func TestUniformStressAblation(t *testing.T) {
	p := Params32()
	p.UniformStress = true
	want := math.Sqrt(p.RminFresh / p.RmaxFresh)
	for _, r := range []float64{p.RminFresh, (p.RminFresh + p.RmaxFresh) / 2, p.RmaxFresh} {
		if got := p.PulseStress(r); math.Abs(got-want) > 1e-12 {
			t.Fatalf("uniform stress at R=%g is %g, want conductance-independent %g", r, got, want)
		}
	}
}

func TestAddStressScalesWithAgingFactor(t *testing.T) {
	d := New(Params32())
	d.SetAgingFactor(2)
	d.AddStress(3)
	if d.Stress() != 6 {
		t.Fatalf("injected stress = %g, want 6 (scaled by aging factor)", d.Stress())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative stress injection")
		}
	}()
	d.AddStress(-1)
}

func TestPulseMovesConductanceByDelta(t *testing.T) {
	p := Params32()
	d := New(p)
	d.Program(p.LevelResistance(15), p.RminFresh, p.RmaxFresh)
	g0 := d.Conductance()
	s := d.Pulse(+1, p.RminFresh, p.RmaxFresh)
	if s <= 0 {
		t.Fatal("pulse must cost stress")
	}
	if math.Abs(d.Conductance()-g0-p.TunePulseDeltaG()) > 1e-12 {
		t.Fatalf("pulse moved g by %g, want %g", d.Conductance()-g0, p.TunePulseDeltaG())
	}
	d.Pulse(-1, p.RminFresh, p.RmaxFresh)
	if math.Abs(d.Conductance()-g0) > 1e-12 {
		t.Fatal("opposite pulses must cancel")
	}
	// Pinned at the window edge: pulse still costs stress, no movement.
	d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
	gEdge := d.Conductance()
	if s := d.Pulse(+1, p.RminFresh, p.RmaxFresh); s <= 0 {
		t.Fatal("pinned pulse still dissipates power")
	}
	if d.Conductance() != gEdge {
		t.Fatal("pinned device must not move past the window")
	}
	if d.Pulse(0, p.RminFresh, p.RmaxFresh) != 0 {
		t.Fatal("zero-direction pulse must be free")
	}
}

func TestNewDeviceStartsFreshAtHRS(t *testing.T) {
	d := New(Params32())
	if d.Resistance() != Params32().RmaxFresh {
		t.Fatalf("fresh device R = %g, want HRS %g", d.Resistance(), Params32().RmaxFresh)
	}
	if d.Stress() != 0 || d.Pulses() != 0 {
		t.Fatal("fresh device must have no history")
	}
	if math.Abs(d.Conductance()-1/d.Resistance()) > 1e-18 {
		t.Fatal("conductance must be 1/R")
	}
}

func TestProgramReachesTargetLevel(t *testing.T) {
	p := Params32()
	d := New(p)
	target := p.LevelResistance(10)
	res := d.Program(target, p.RminFresh, p.RmaxFresh)
	if res.Achieved != target {
		t.Fatalf("achieved %g, want %g", res.Achieved, target)
	}
	if res.Clipped {
		t.Fatal("in-range target must not be clipped")
	}
	if res.Pulses != p.Levels-1-10 {
		t.Fatalf("pulses = %d, want %d (one per level step)", res.Pulses, p.Levels-1-10)
	}
	if res.Stress <= 0 || d.Stress() != res.Stress {
		t.Fatalf("stress accounting wrong: res %g, device %g", res.Stress, d.Stress())
	}
}

func TestProgramSameLevelIsFree(t *testing.T) {
	p := Params32()
	d := New(p)
	res := d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
	if res.Pulses != 0 || res.Stress != 0 {
		t.Fatalf("programming the held level must be free, got %d pulses", res.Pulses)
	}
}

func TestProgramClipsToAgedWindow(t *testing.T) {
	p := Params32()
	d := New(p)
	d.Program(p.LevelResistance(0), p.RminFresh, p.RmaxFresh) // drive to LRS first
	agedHi := p.LevelResistance(5)
	res := d.Program(p.RmaxFresh, p.RminFresh, agedHi)
	if !res.Clipped {
		t.Fatal("target above aged window must report Clipped")
	}
	if res.Achieved != agedHi {
		t.Fatalf("clipped target achieved %g, want window top %g", res.Achieved, agedHi)
	}
}

func TestProgramStressMonotonicallyAccumulates(t *testing.T) {
	p := Params32()
	d := New(p)
	prev := 0.0
	targets := []int{0, 31, 0, 31, 15}
	for _, lvl := range targets {
		d.Program(p.LevelResistance(lvl), p.RminFresh, p.RmaxFresh)
		if d.Stress() < prev {
			t.Fatal("stress must never decrease (aging is irreversible)")
		}
		prev = d.Stress()
	}
	if prev == 0 {
		t.Fatal("programming across levels must accumulate stress")
	}
}

// TestLowConductanceProgrammingAgesLess is the package-level statement
// of the skewed-weight mechanism: cycling a device between
// high-resistance levels costs far less stress than cycling between
// low-resistance levels.
func TestLowConductanceProgrammingAgesLess(t *testing.T) {
	p := Params32()
	low := New(p)  // cycles in the high-R (low-g) half
	high := New(p) // cycles in the low-R (high-g) half
	for i := 0; i < 10; i++ {
		low.Program(p.LevelResistance(p.Levels-2), p.RminFresh, p.RmaxFresh)
		low.Program(p.LevelResistance(p.Levels-1), p.RminFresh, p.RmaxFresh)
		high.Program(p.LevelResistance(1), p.RminFresh, p.RmaxFresh)
		high.Program(p.LevelResistance(0), p.RminFresh, p.RmaxFresh)
	}
	if low.Stress()*3 > high.Stress() {
		t.Fatalf("high-R cycling stress %g must be well below low-R cycling stress %g", low.Stress(), high.Stress())
	}
}

func TestDriftStaysInWindowAndCorrectivePulse(t *testing.T) {
	p := Params32()
	d := New(p)
	d.Program(p.LevelResistance(10), p.RminFresh, p.RmaxFresh)
	d.Drift(1e12, p.RminFresh, p.RmaxFresh)
	if d.Resistance() != p.RmaxFresh {
		t.Fatalf("drift must clamp to window, got %g", d.Resistance())
	}
	d.Drift(-1e12, p.RminFresh, p.RmaxFresh)
	if d.Resistance() != p.RminFresh {
		t.Fatalf("drift must clamp to window, got %g", d.Resistance())
	}
	// Small drift off-grid then reprogram to the same level: needs
	// exactly one corrective pulse.
	d.Program(p.LevelResistance(10), p.RminFresh, p.RmaxFresh)
	d.Drift(p.LevelSpacing()*0.3, p.RminFresh, p.RmaxFresh)
	res := d.Program(p.LevelResistance(10), p.RminFresh, p.RmaxFresh)
	if res.Pulses != 1 {
		t.Fatalf("drift correction pulses = %d, want 1", res.Pulses)
	}
	if res.Achieved != p.LevelResistance(10) {
		t.Fatalf("drift correction achieved %g, want level 10", res.Achieved)
	}
}

func TestProgramInvertedWindowPanics(t *testing.T) {
	d := New(Params32())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inverted window")
		}
	}()
	d.Program(5e4, 9e4, 1e4)
}

// Property: after Program with any in-grid target and the fresh window,
// the achieved resistance is a grid level and lies within the window.
func TestProgramAlwaysLandsOnGridProperty(t *testing.T) {
	p := Params32()
	f := func(rawTarget float64, loLvl, hiLvl uint8) bool {
		lo := p.LevelResistance(int(loLvl) % p.Levels)
		hi := p.LevelResistance(int(hiLvl) % p.Levels)
		if lo > hi {
			lo, hi = hi, lo
		}
		target := p.RminFresh + math.Mod(math.Abs(rawTarget), p.RmaxFresh-p.RminFresh)
		d := New(p)
		res := d.Program(target, lo, hi)
		lvl := p.NearestLevel(res.Achieved)
		if math.Abs(p.LevelResistance(lvl)-res.Achieved) > 1e-6 {
			return false // not on grid
		}
		return res.Achieved >= lo-1e-6 && res.Achieved <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
