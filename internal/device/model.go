package device

import (
	"fmt"
	"math"
	"sync"
)

// Model kind labels, the values of ModelSpec.Kind. The empty string
// selects the linear model (the historical behavior), so specs written
// before the model zoo existed resolve — and fingerprint — unchanged.
const (
	ModelLinear    = "linear"
	ModelMMS       = "mms"
	ModelYacopcic  = "yacopcic"
	ModelDiffusive = "diffusive"
)

// ModelSpec is the "device.model" block of a scenario spec: which pulse-
// response physics the devices follow, plus the variation magnitudes of
// the stochastic models. The zero value (empty kind, no variation) is
// the linear model and is omitted from serialization entirely, so specs
// predating the model zoo keep their historical fingerprints.
type ModelSpec struct {
	// Kind names the pulse-response model: "linear" (or empty), "mms",
	// "yacopcic", or "diffusive".
	Kind string `json:"kind,omitempty"`
	// D2D is the device-to-device variation sigma: every device draws
	// one fixed standard-normal factor at array construction and scales
	// its pulse response by exp(D2D * draw). Zero disables it.
	D2D float64 `json:"d2d,omitempty"`
	// C2C is the cycle-to-cycle variation sigma: every pulse draws a
	// fresh deterministic standard-normal factor (a pure function of
	// the device's noise seed and its lifetime pulse counter, so draws
	// are identical for every evaluation worker count) and scales the
	// pulse response by exp(C2C * draw). Zero disables it.
	C2C float64 `json:"c2c,omitempty"`
}

// validate reports an error for unknown kinds or meaningless sigmas.
func (m ModelSpec) validate() error {
	switch m.Kind {
	case "", ModelLinear, ModelMMS, ModelYacopcic, ModelDiffusive:
	default:
		return fmt.Errorf("device: unknown model kind %q (want %q, %q, %q, or %q)",
			m.Kind, ModelLinear, ModelMMS, ModelYacopcic, ModelDiffusive)
	}
	if m.D2D < 0 || math.IsNaN(m.D2D) || math.IsInf(m.D2D, 0) {
		return fmt.Errorf("device: model d2d sigma must be a non-negative finite value, got %g", m.D2D)
	}
	if m.C2C < 0 || math.IsNaN(m.C2C) || math.IsInf(m.C2C, 0) {
		return fmt.Errorf("device: model c2c sigma must be a non-negative finite value, got %g", m.C2C)
	}
	return nil
}

// KindOrDefault returns the effective kind name ("" resolves to linear).
func (m ModelSpec) KindOrDefault() string {
	if m.Kind == "" {
		return ModelLinear
	}
	return m.Kind
}

// DriftSpec is the "device.drift" block of a scenario spec: a
// spontaneous conductance state-drift process, independent of
// programming. Conductance decays toward the device's minimum following
// the power law G(t) = Gmin + (G0-Gmin) * (t/t0)^-Nu — the retention
// behavior drift-compensation schemes like AIDX (arXiv 2009.00180)
// target with periodic scale recalibration instead of reprogramming.
// The zero value disables drift and is omitted from serialization, so
// old specs keep their fingerprints.
type DriftSpec struct {
	// Nu is the power-law drift exponent; zero disables state drift.
	Nu float64 `json:"nu,omitempty"`
}

// validate reports an error for meaningless exponents.
func (d DriftSpec) validate() error {
	if d.Nu < 0 || math.IsNaN(d.Nu) || math.IsInf(d.Nu, 0) {
		return fmt.Errorf("device: drift exponent nu must be a non-negative finite value, got %g", d.Nu)
	}
	return nil
}

// Enabled reports whether the spec describes an active drift process.
func (d DriftSpec) Enabled() bool { return d.Nu > 0 }

// DecayFactor returns the multiplicative decay of the conductance
// excursion (G - Gmin) over the interval [cycle, cycle+1] of the power
// law, with t measured in deployment cycles (t0 = 1): ((k+1)/k)^-Nu.
func (d DriftSpec) DecayFactor(cycle int) float64 {
	if !d.Enabled() || cycle < 1 {
		return 1
	}
	return math.Pow(float64(cycle+1)/float64(cycle), -d.Nu)
}

// Model is the device-physics contract behind every Device: how one
// tuning pulse moves the conductance, what conductance window the
// technology can hold, what aging stress a programming pulse costs, and
// which quantization grid the programming periphery snaps onto.
//
// Implementations are immutable and shared by every device of an array
// (one instance per Params value, cached like Grid); per-device
// mutable state stays inside Device, so a Model's methods are pure
// functions and allocation-free — the tuning hot loop dispatches
// through this interface millions of times per simulated cycle (the
// model/pulse bench kernel pins the whole path at 0 allocs/op).
type Model interface {
	// Name returns the model kind label ("linear", "mms", ...).
	Name() string
	// GBounds returns the conductance window [gMin, gMax] a fresh
	// device of this technology can hold.
	GBounds() (gMin, gMax float64)
	// StepG returns the conductance after one tuning pulse in
	// direction dir (> 0 raises conductance, < 0 lowers it) applied at
	// conductance g. d2d is the device's fixed device-to-device
	// standard-normal draw and c2c the pulse's cycle-to-cycle draw;
	// both are zero when the corresponding ModelSpec sigma is zero,
	// and deterministic models ignore them.
	StepG(g float64, dir int, d2d, c2c float64) float64
	// PulseStress returns the normalized aging stress one programming
	// pulse costs at resistance r (the eq. (6)/(7) input).
	PulseStress(r float64) float64
	// Grid returns the quantization grid the programming periphery
	// snaps mapping targets onto.
	Grid() *Grid
	// Variation returns the (d2d, c2c) sigmas of the model's spec, so
	// Device can skip noise derivation entirely when both are zero.
	Variation() (d2d, c2c float64)
}

// modelCache holds one Model per Params value ever requested, like
// gridCache (Params is small and comparable).
var modelCache sync.Map // Params -> Model

// ResolveModel returns the shared pulse-response model for this
// technology, building it on first use. p must be valid (it panics on
// invalid Params, like New and Grid).
func (p Params) ResolveModel() Model {
	if m, ok := modelCache.Load(p); ok {
		return m.(Model)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := p.Grid()
	var m Model
	switch p.Model.Kind {
	case "", ModelLinear:
		m = &LinearModel{g: g, spec: p.Model}
	case ModelMMS:
		m = newMMSModel(p, g)
	case ModelYacopcic:
		m = newYacopcicModel(p, g)
	case ModelDiffusive:
		m = newDiffusiveModel(p, g)
	default:
		panic(fmt.Sprintf("device: unknown model kind %q", p.Model.Kind))
	}
	actual, _ := modelCache.LoadOrStore(p, m)
	return actual.(Model)
}

// LinearModel is the paper's device: constant conductance steps of
// TunePulseDeltaG per tuning pulse (eq. (5)) and stress proportional to
// the dissipated programming power (Section II-B). Every method
// delegates to the shared Grid constants with the exact arithmetic
// associations of the historical Device code, so the default simulation
// path is bit-identical to the pre-zoo implementation (the PR-5 golden
// suite and PR-8 oracle suite pin this).
type LinearModel struct {
	g    *Grid
	spec ModelSpec
}

// Name implements Model.
func (m *LinearModel) Name() string { return ModelLinear }

// GBounds implements Model.
func (m *LinearModel) GBounds() (gMin, gMax float64) {
	return m.g.p.GminFresh(), m.g.p.GmaxFresh()
}

// StepG implements Model: a constant conductance nudge, scaled by the
// lognormal variation factor only when variation is configured (the
// default path performs exactly the historical g + sign*deltaG).
func (m *LinearModel) StepG(g float64, dir int, d2d, c2c float64) float64 {
	if d2d == 0 && c2c == 0 {
		return g + float64(sign(dir))*m.g.TunePulseDeltaG()
	}
	return g + float64(sign(dir))*m.g.TunePulseDeltaG()*variationScale(m.spec, d2d, c2c)
}

// PulseStress implements Model.
func (m *LinearModel) PulseStress(r float64) float64 { return m.g.PulseStress(r) }

// Grid implements Model.
func (m *LinearModel) Grid() *Grid { return m.g }

// Variation implements Model.
func (m *LinearModel) Variation() (float64, float64) { return m.spec.D2D, m.spec.C2C }

// variationScale is the shared lognormal pulse-magnitude factor of the
// stochastic paths: exp(sigmaD2D*zD2D + sigmaC2C*zC2C).
func variationScale(spec ModelSpec, d2d, c2c float64) float64 {
	e := spec.D2D*d2d + spec.C2C*c2c
	if e == 0 {
		return 1
	}
	return math.Exp(e)
}

// normState converts a conductance to the normalized state variable
// x in [0, 1] shared by the threshold models: x = 0 at gMin (HRS),
// x = 1 at gMax (LRS).
func normState(g, gMin, gMax float64) float64 {
	x := (g - gMin) / (gMax - gMin)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x
}

// stateG is the inverse of normState.
func stateG(x, gMin, gMax float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return gMin + x*(gMax-gMin)
}

// MMSModel is the metastable-switch memristor (SNIPPETS.md snippet 3,
// after Molter & Nugent): a two-state ensemble whose fraction x of
// on-state switches follows mean-field switching probabilities
//
//	P_on  = alpha / (1 + exp(-beta (u - Uon)))          (u = +Vprog)
//	P_off = alpha (1 - 1 / (1 + exp(-beta (u + Uoff)))) (u = -Vprog)
//	dx    = P_on (1 - x)   or   -P_off x
//
// with alpha = PulseWidth/tau and beta = q/kT. The conductance is the
// parallel combination W = x Gon + (1-x) Goff, i.e. x is exactly the
// normalized state over the technology's fresh window. tau is derived
// from the level count (tau = 2*Levels*PulseWidth) so a mid-range pulse
// moves about one tuning step — the different physics show up as
// state-proportional saturation (large steps mid-range, vanishing steps
// at the rails), not as a different overall tuning rate.
type MMSModel struct {
	g          *Grid
	spec       ModelSpec
	gMin, gMax float64
	pOn, pOff  float64 // the saturated switching probabilities at ±Vprog
}

func newMMSModel(p Params, g *Grid) *MMSModel {
	// Boltzmann slope at room temperature (the snippet's T = 298.5 K).
	const beta = 1.602176634e-19 / (1.380649e-23 * 298.5)
	const uOn, uOff = 0.27, 0.27
	alpha := 1 / float64(2*p.Levels) // PulseWidth / tau, tau = 2*Levels*PulseWidth
	return &MMSModel{
		g: g, spec: p.Model,
		gMin: p.GminFresh(), gMax: p.GmaxFresh(),
		pOn:  alpha / (1 + math.Exp(-beta*(p.Vprog-uOn))),
		pOff: alpha * (1 - 1/(1+math.Exp(-beta*(-p.Vprog+uOff)))),
	}
}

// Name implements Model.
func (m *MMSModel) Name() string { return ModelMMS }

// GBounds implements Model.
func (m *MMSModel) GBounds() (float64, float64) { return m.gMin, m.gMax }

// StepG implements Model: the mean-field metastable-switch update on
// the normalized state.
func (m *MMSModel) StepG(g float64, dir int, d2d, c2c float64) float64 {
	x := normState(g, m.gMin, m.gMax)
	var dx float64
	if sign(dir) > 0 {
		dx = m.pOn * (1 - x)
	} else {
		dx = -m.pOff * x
	}
	dx *= variationScale(m.spec, d2d, c2c)
	return stateG(x+dx, m.gMin, m.gMax)
}

// PulseStress implements Model: stress stays the dissipated programming
// power of the shared technology (Vprog^2 * g * width, normalized), a
// function of the operating point rather than the switching physics.
func (m *MMSModel) PulseStress(r float64) float64 { return m.g.PulseStress(r) }

// Grid implements Model.
func (m *MMSModel) Grid() *Grid { return m.g }

// Variation implements Model.
func (m *MMSModel) Variation() (float64, float64) { return m.spec.D2D, m.spec.C2C }

// YacopcicModel is the threshold voltage-controlled model (SNIPPETS.md
// snippet 3, after Yacopcic et al.): pulses below the programming
// thresholds Up/Un do nothing, above them the state moves by
//
//	dx = eta_p g(u) f_p(x)   (u = +Vprog)
//	dx = -eta_n g(u) f_n(x)  (u = -Vprog)
//
// with the exponential threshold drive g(u) = Ap (e^u - e^Up) and the
// asymmetric window functions
//
//	f_p(x) = e^{-alpha_p (x - xp)} wp(x), x >= xp (else 1), wp = (xp-x)/(1-xp) + 1
//	f_n(x) = e^{ alpha_n (x + xn - 1)} wn(x), x <= 1-xn (else 1), wn = x/(1-xn)
//
// The drive magnitudes are normalized so an unwindowed pulse moves
// 1/(2*Levels) of the state range, making lifetimes comparable across
// models; the Yacopcic character is the hard threshold plus the
// strongly asymmetric window decay (alpha_n > alpha_p) near the rails.
type YacopcicModel struct {
	g              *Grid
	spec           ModelSpec
	gMin, gMax     float64
	stepP, stepN   float64 // eta * g(±Vprog), normalized drive per pulse
	alphaP, alphaN float64
	xp, xn         float64
}

func newYacopcicModel(p Params, g *Grid) *YacopcicModel {
	// Snippet constants: Ap = An = 4000, Up = Un = 0.5 V, alpha_p = 1,
	// alpha_n = 5, xp = xn = 0.3.
	const ap, an = 4000.0, 4000.0
	const up, un = 0.5, 0.5
	m := &YacopcicModel{
		g: g, spec: p.Model,
		gMin: p.GminFresh(), gMax: p.GmaxFresh(),
		alphaP: 1, alphaN: 5,
		xp: 0.3, xn: 0.3,
	}
	norm := 1 / float64(2*p.Levels)
	// Threshold drive at the programming amplitude; a technology whose
	// Vprog sits below the threshold cannot tune at all (stepP = 0).
	driveP := 0.0
	if p.Vprog > up {
		driveP = ap * (math.Exp(p.Vprog) - math.Exp(up))
	}
	driveN := 0.0
	if p.Vprog > un {
		driveN = an * (math.Exp(p.Vprog) - math.Exp(un))
	}
	ref := ap * (math.Exp(p.Vprog) - math.Exp(up))
	if ref <= 0 {
		ref = 1
	}
	m.stepP = norm * driveP / ref
	m.stepN = norm * driveN / ref
	return m
}

// Name implements Model.
func (m *YacopcicModel) Name() string { return ModelYacopcic }

// GBounds implements Model.
func (m *YacopcicModel) GBounds() (float64, float64) { return m.gMin, m.gMax }

// StepG implements Model: the windowed threshold update.
func (m *YacopcicModel) StepG(g float64, dir int, d2d, c2c float64) float64 {
	x := normState(g, m.gMin, m.gMax)
	var dx float64
	if sign(dir) > 0 {
		f := 1.0
		if x >= m.xp {
			f = math.Exp(-m.alphaP*(x-m.xp)) * ((m.xp-x)/(1-m.xp) + 1)
		}
		dx = m.stepP * f
	} else {
		f := 1.0
		if x <= 1-m.xn {
			f = math.Exp(m.alphaN*(x+m.xn-1)) * (x / (1 - m.xn))
		}
		dx = -m.stepN * f
	}
	dx *= variationScale(m.spec, d2d, c2c)
	return stateG(x+dx, m.gMin, m.gMax)
}

// PulseStress implements Model (shared dissipated-power stress).
func (m *YacopcicModel) PulseStress(r float64) float64 { return m.g.PulseStress(r) }

// Grid implements Model.
func (m *YacopcicModel) Grid() *Grid { return m.g }

// Variation implements Model.
func (m *YacopcicModel) Variation() (float64, float64) { return m.spec.D2D, m.spec.C2C }

// DiffusiveModel is the stochastic diffusive memristor (SNIPPETS.md
// snippets 1-2): filament growth is a noisy process, so each pulse's
// conductance step carries a lognormal magnitude — a fixed per-device
// factor exp(D2D * z_dev) (device-to-device parameter scatter) times a
// fresh per-pulse factor exp(C2C * z_pulse) (cycle-to-cycle switching
// noise) — and the Ag filament spontaneously relaxes toward rupture: a
// small fraction lambda of the conductance excursion above gMin decays
// on every pulse, giving the model a built-in volatility floor on top
// of the scenario-level power-law state drift (DriftSpec).
type DiffusiveModel struct {
	g          *Grid
	spec       ModelSpec
	gMin, gMax float64
	step       float64
	lambda     float64
}

func newDiffusiveModel(p Params, g *Grid) *DiffusiveModel {
	return &DiffusiveModel{
		g: g, spec: p.Model,
		gMin: p.GminFresh(), gMax: p.GmaxFresh(),
		step:   g.TunePulseDeltaG(),
		lambda: 0.01,
	}
}

// Name implements Model.
func (m *DiffusiveModel) Name() string { return ModelDiffusive }

// GBounds implements Model.
func (m *DiffusiveModel) GBounds() (float64, float64) { return m.gMin, m.gMax }

// StepG implements Model: a lognormally scaled conductance nudge plus
// filament relaxation.
func (m *DiffusiveModel) StepG(g float64, dir int, d2d, c2c float64) float64 {
	next := g + float64(sign(dir))*m.step*variationScale(m.spec, d2d, c2c)
	// Spontaneous relaxation toward the ruptured (gMin) state.
	next = m.gMin + (next-m.gMin)*(1-m.lambda)
	if next < m.gMin {
		next = m.gMin
	}
	if next > m.gMax {
		next = m.gMax
	}
	return next
}

// PulseStress implements Model (shared dissipated-power stress).
func (m *DiffusiveModel) PulseStress(r float64) float64 { return m.g.PulseStress(r) }

// Grid implements Model.
func (m *DiffusiveModel) Grid() *Grid { return m.g }

// Variation implements Model.
func (m *DiffusiveModel) Variation() (float64, float64) { return m.spec.D2D, m.spec.C2C }
