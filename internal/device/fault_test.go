package device

import "testing"

func TestSetFaultPinsResistance(t *testing.T) {
	p := Params32()
	d := New(p)
	d.SetFault(FaultStuckLRS)
	if !d.Stuck() || d.Fault() != FaultStuckLRS {
		t.Fatalf("device must report its fault state, got %v", d.Fault())
	}
	if d.Resistance() != p.RminFresh {
		t.Fatalf("stuck-at-LRS must pin at RminFresh, got %g", d.Resistance())
	}
	d.SetFault(FaultStuckHRS)
	if d.Resistance() != p.RmaxFresh {
		t.Fatalf("stuck-at-HRS must pin at RmaxFresh, got %g", d.Resistance())
	}
	// Clearing the fault un-sticks without snapping the resistance.
	d.SetFault(FaultNone)
	if d.Stuck() {
		t.Fatal("FaultNone must un-stick the device")
	}
	if d.Resistance() != p.RmaxFresh {
		t.Fatal("clearing a fault must not move the resistance")
	}
}

func TestStuckDevicePulseFailsButAges(t *testing.T) {
	p := Params32()
	d := New(p)
	d.SetFault(FaultStuckLRS)
	r0, stress0, pulses0 := d.Resistance(), d.Stress(), d.Pulses()
	s := d.Pulse(+1, p.RminFresh, p.RmaxFresh)
	if s <= 0 {
		t.Fatalf("a pulse on a stuck device must still cost stress, got %g", s)
	}
	if d.Resistance() != r0 {
		t.Fatal("stuck device moved under a pulse")
	}
	if d.Stress() != stress0+s {
		t.Fatal("pulse stress not accumulated")
	}
	if d.Pulses() != pulses0+1 {
		t.Fatal("failed pulse must count towards the lifetime pulse total")
	}
}

func TestStuckDeviceDriftNoOp(t *testing.T) {
	p := Params32()
	d := New(p)
	d.SetFault(FaultStuckHRS)
	d.Drift(-500, p.RminFresh, p.RmaxFresh)
	if d.Resistance() != p.RmaxFresh {
		t.Fatal("a stuck filament must not drift")
	}
}

func TestProgramStuckDevice(t *testing.T) {
	p := Params32()
	d := New(p)
	d.SetFault(FaultStuckLRS)
	res := d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
	if !res.Stuck {
		t.Fatal("programming a stuck device must report Stuck")
	}
	if res.Achieved != p.RminFresh {
		t.Fatalf("Achieved must be the pinned resistance, got %g", res.Achieved)
	}
	if res.Pulses != 1 || res.Stress <= 0 {
		t.Fatalf("the write-verify attempt costs exactly one pulse of stress, got %+v", res)
	}
	// Asking for the pinned level is free: write-verify sees the target
	// already held and applies no pulse.
	res = d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
	if !res.Stuck || res.Pulses != 0 || res.Stress != 0 {
		t.Fatalf("programming a stuck device to its pinned level must be free, got %+v", res)
	}
}

// TestStressDerateZeroMeansNoDerating locks the zero-value contract of
// Params.StressDerate: the zero value behaves exactly like an explicit
// factor of 1.
func TestStressDerateZeroMeansNoDerating(t *testing.T) {
	base := Params32() // StressDerate == 0
	unit := Params32()
	unit.StressDerate = 1
	half := Params32()
	half.StressDerate = 0.5

	if got, want := base.PulseStress(base.RminFresh), unit.PulseStress(unit.RminFresh); got != want {
		t.Fatalf("zero StressDerate must equal factor 1: %g vs %g", got, want)
	}
	if got, want := half.PulseStress(half.RminFresh), 0.5*base.PulseStress(base.RminFresh); got != want {
		t.Fatalf("StressDerate=0.5 must halve pulse stress: %g vs %g", got, want)
	}
}

func TestStressDerateNegativeRejected(t *testing.T) {
	p := Params32()
	p.StressDerate = -0.1
	if err := p.Validate(); err == nil {
		t.Fatal("negative StressDerate must be rejected")
	}
}
