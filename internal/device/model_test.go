package device

import (
	"math"
	"testing"
)

// modelKinds enumerates every selectable pulse-response model, with
// variation sigmas turned on so the stochastic paths are exercised.
var modelKinds = []ModelSpec{
	{},
	{Kind: ModelLinear, D2D: 0.1, C2C: 0.05},
	{Kind: ModelMMS},
	{Kind: ModelMMS, D2D: 0.1, C2C: 0.05},
	{Kind: ModelYacopcic},
	{Kind: ModelYacopcic, D2D: 0.1, C2C: 0.05},
	{Kind: ModelDiffusive, D2D: 0.1, C2C: 0.05},
}

// testDraws is a small deterministic grid of (d2d, c2c) standard-normal
// values covering the +-3 sigma range.
var testDraws = []float64{-3, -1, -0.2, 0, 0.4, 1.5, 3}

// TestModelLinearDefaultBitIdentical pins the refactoring contract: the
// default (zero-spec) model must reproduce the historical arithmetic
// g + sign(dir)*TunePulseDeltaG exactly, bit for bit.
func TestModelLinearDefaultBitIdentical(t *testing.T) {
	for _, p := range []Params{Params32(), Params64()} {
		m := p.ResolveModel()
		g := p.Grid()
		for _, gv := range []float64{p.GminFresh(), (p.GminFresh() + p.GmaxFresh()) / 2, p.GmaxFresh(), 1.23e-5} {
			for _, dir := range []int{-3, -1, 1, 7} {
				want := gv + float64(sign(dir))*g.TunePulseDeltaG()
				if got := m.StepG(gv, dir, 0, 0); got != want {
					t.Fatalf("StepG(%g, %d) = %g, want the historical %g", gv, dir, got, want)
				}
			}
		}
		if s := m.PulseStress(p.RminFresh * 1.7); s != g.PulseStress(p.RminFresh*1.7) {
			t.Fatal("linear PulseStress must delegate to the grid")
		}
	}
}

// TestModelBounds: every model maps any in-window conductance to an
// in-window conductance, for every pulse direction and any +-3 sigma
// variation draw. The linear model is exempt at the model layer (the
// historical contract clamps in Device.Pulse against the *aged* bounds,
// which the model cannot know); every other model must self-clamp.
func TestModelBounds(t *testing.T) {
	for _, spec := range modelKinds {
		if spec.KindOrDefault() == ModelLinear {
			continue
		}
		p := Params32()
		p.Model = spec
		m := p.ResolveModel()
		gMin, gMax := m.GBounds()
		for _, x := range []float64{0, 1e-6, 0.2, 0.5, 0.8, 1 - 1e-6, 1} {
			g := gMin + x*(gMax-gMin)
			for _, dir := range []int{1, -1} {
				for _, zd := range testDraws {
					for _, zc := range testDraws {
						got := m.StepG(g, dir, zd, zc)
						if !(got >= gMin && got <= gMax) {
							t.Fatalf("%s: StepG(%g, %d, %g, %g) = %g escaped [%g, %g]",
								m.Name(), g, dir, zd, zc, got, gMin, gMax)
						}
					}
				}
			}
		}
	}
}

// TestModelMonotoneDirection: a positive pulse never yields a lower
// conductance than a negative pulse from the same state under the same
// draws, and — for models without spontaneous relaxation — a positive
// pulse never lowers the conductance and a negative one never raises
// it. The diffusive model's built-in relaxation makes its steps only
// relatively monotone (up >= down), which is exactly what the first
// assertion pins.
func TestModelMonotoneDirection(t *testing.T) {
	for _, spec := range modelKinds {
		p := Params32()
		p.Model = spec
		m := p.ResolveModel()
		gMin, gMax := m.GBounds()
		for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
			g := gMin + x*(gMax-gMin)
			for _, zd := range testDraws {
				for _, zc := range testDraws {
					up := m.StepG(g, 1, zd, zc)
					down := m.StepG(g, -1, zd, zc)
					if up < down {
						t.Fatalf("%s: up %g < down %g at g=%g (zd=%g zc=%g)", m.Name(), up, down, g, zd, zc)
					}
					if m.Name() == ModelDiffusive {
						continue // relaxation is allowed to dominate a pulse
					}
					if up < g || down > g {
						t.Fatalf("%s: direction not monotone at g=%g: up %g, down %g (zd=%g zc=%g)",
							m.Name(), g, up, down, zd, zc)
					}
				}
			}
		}
	}
}

// TestModelThresholdSaturation pins the qualitative physics that
// distinguish the nonlinear models from the linear one: their upward
// steps shrink near the LRS rail (state-dependent saturation), while
// the linear step is state-independent.
func TestModelThresholdSaturation(t *testing.T) {
	for _, kind := range []string{ModelMMS, ModelYacopcic} {
		p := Params32()
		p.Model = ModelSpec{Kind: kind}
		m := p.ResolveModel()
		gMin, gMax := m.GBounds()
		mid := gMin + 0.5*(gMax-gMin)
		hi := gMin + 0.95*(gMax-gMin)
		dMid := m.StepG(mid, 1, 0, 0) - mid
		dHi := m.StepG(hi, 1, 0, 0) - hi
		if !(dMid > 0) {
			t.Fatalf("%s: mid-range positive pulse must move the state, got %g", kind, dMid)
		}
		if !(dHi < dMid) {
			t.Fatalf("%s: step must saturate near the rail: mid %g, near-rail %g", kind, dMid, dHi)
		}
	}
}

// TestDeviceNoiseDeterminism: the per-pulse C2C draw is a pure function
// of the device's noise seed and lifetime pulse counter, so two devices
// seeded alike replay identical stochastic trajectories pulse for
// pulse, and reseeding resets the stream only together with the pulse
// counter (the counter keys the draw).
func TestDeviceNoiseDeterminism(t *testing.T) {
	p := Params32()
	p.Model = ModelSpec{Kind: ModelDiffusive, D2D: 0.1, C2C: 0.08}
	lo, hi := p.RminFresh, p.RmaxFresh
	dirs := []int{1, 1, -1, 1, -1, -1, 1, 1, 1, -1, 1, -1}

	trajectory := func(seed uint64) []float64 {
		d := New(p)
		d.SeedNoise(seed)
		out := make([]float64, 0, len(dirs))
		for _, dir := range dirs {
			d.Pulse(dir, lo, hi)
			out = append(out, d.Resistance())
		}
		return out
	}

	a, b := trajectory(42), trajectory(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pulse %d: identically seeded devices diverged: %g vs %g", i, a[i], b[i])
		}
	}
	c := trajectory(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different noise seeds produced identical stochastic trajectories")
	}
	// Sanity: the stochastic trajectory actually varies step to step
	// (the variation path is live, not collapsing to the linear step).
	varied := false
	for i := 2; i < len(a); i++ {
		d1 := math.Abs(a[i] - a[i-1])
		d2 := math.Abs(a[i-1] - a[i-2])
		if d1 > 0 && d2 > 0 && d1 != d2 {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("C2C variation produced constant step sizes")
	}
}

// TestModelCacheIdentity: models are shared per Params value, like
// grids, so the tuning hot loop never allocates per device.
func TestModelCacheIdentity(t *testing.T) {
	p := Params32()
	p.Model = ModelSpec{Kind: ModelYacopcic}
	if p.ResolveModel() != p.ResolveModel() {
		t.Fatal("ResolveModel must return the cached instance per Params value")
	}
	q := p
	q.Model.Kind = ModelMMS
	if p.ResolveModel() == q.ResolveModel() {
		t.Fatal("different model kinds must resolve to different models")
	}
}

// TestModelSpecValidation rejects unknown kinds and degenerate sigmas
// through Params.Validate (the spec-layer entry point).
func TestModelSpecValidation(t *testing.T) {
	bad := []Params{}
	for _, mut := range []func(*Params){
		func(p *Params) { p.Model.Kind = "memristor9000" },
		func(p *Params) { p.Model.D2D = -0.1 },
		func(p *Params) { p.Model.C2C = math.Inf(1) },
		func(p *Params) { p.Drift.Nu = -1 },
		func(p *Params) { p.Drift.Nu = math.NaN() },
	} {
		p := Params32()
		mut(&p)
		bad = append(bad, p)
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid model/drift spec accepted: %+v %+v", i, p.Model, p.Drift)
		}
	}
}

// TestDriftDecayFactor pins the power-law interval decay: factors are
// in (0,1] for enabled drift, 1 when disabled, and their running
// product over cycles 1..k telescopes to (k+1)^-Nu.
func TestDriftDecayFactor(t *testing.T) {
	var off DriftSpec
	if off.Enabled() || off.DecayFactor(5) != 1 {
		t.Fatal("zero drift spec must be disabled with factor 1")
	}
	d := DriftSpec{Nu: 0.1}
	prod := 1.0
	for c := 1; c <= 20; c++ {
		f := d.DecayFactor(c)
		if !(f > 0 && f < 1) {
			t.Fatalf("cycle %d: factor %g outside (0,1)", c, f)
		}
		prod *= f
	}
	want := math.Pow(21, -0.1)
	if math.Abs(prod-want) > 1e-12 {
		t.Fatalf("telescoped decay %g, want %g", prod, want)
	}
}
