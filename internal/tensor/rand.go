package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps a deterministic source of randomness used for weight
// initialization and synthetic data generation. All experiment code
// threads an *RNG explicitly so every run is reproducible from a seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a Gaussian sample with the given mean and stddev.
func (g *RNG) Normal(mean, std float64) float64 { return mean + std*g.r.NormFloat64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Split derives an independent child generator. Children created in the
// same order from the same parent are identical across runs.
func (g *RNG) Split() *RNG { return NewRNG(g.r.Int63()) }

// FillNormal fills t with Gaussian samples.
func (g *RNG) FillNormal(t *Tensor, mean, std float64) {
	for i := range t.data {
		t.data[i] = g.Normal(mean, std)
	}
}

// FillUniform fills t with uniform samples in [lo, hi).
func (g *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.data {
		t.data[i] = g.Uniform(lo, hi)
	}
}

// XavierInit fills t with Glorot-uniform samples for a layer with the
// given fan-in and fan-out. Suitable for tanh/sigmoid layers.
func (g *RNG) XavierInit(t *Tensor, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	g.FillUniform(t, -limit, limit)
}

// HeInit fills t with He-normal samples for the given fan-in. Suitable
// for ReLU layers.
func (g *RNG) HeInit(t *Tensor, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	g.FillNormal(t, 0, std)
}
