package tensor

import "fmt"

// checkSameSize panics unless a and b hold the same element count.
func checkSameSize(op string, a, b *Tensor) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// AddInto sets dst = a + b elementwise. All three must share a size;
// dst may alias a or b.
func AddInto(dst, a, b *Tensor) {
	checkSameSize("AddInto", a, b)
	checkSameSize("AddInto", dst, a)
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// SubInto sets dst = a - b elementwise.
func SubInto(dst, a, b *Tensor) {
	checkSameSize("SubInto", a, b)
	checkSameSize("SubInto", dst, a)
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// MulInto sets dst = a * b elementwise (Hadamard product).
func MulInto(dst, a, b *Tensor) {
	checkSameSize("MulInto", a, b)
	checkSameSize("MulInto", dst, a)
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// Scale multiplies every element of t by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScalar adds s to every element of t in place.
func (t *Tensor) AddScalar(s float64) {
	for i := range t.data {
		t.data[i] += s
	}
}

// Axpy performs t += alpha * x elementwise.
func (t *Tensor) Axpy(alpha float64, x *Tensor) {
	checkSameSize("Axpy", t, x)
	for i := range t.data {
		t.data[i] += alpha * x.data[i]
	}
}

// Clamp limits every element of t to the closed interval [lo, hi].
func (t *Tensor) Clamp(lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("tensor: Clamp bounds inverted [%g, %g]", lo, hi))
	}
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	checkSameSize("Dot", a, b)
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// RowSlice returns a view of row r of a rank-2 tensor as a rank-1 tensor
// sharing storage.
func (t *Tensor) RowSlice(r int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: RowSlice needs rank 2, got shape %v", t.shape))
	}
	cols := t.shape[1]
	return &Tensor{shape: []int{cols}, data: t.data[r*cols : (r+1)*cols]}
}

// SumRows returns a rank-1 tensor with the column sums of a rank-2
// tensor: out[j] = sum_i t[i,j].
func (t *Tensor) SumRows() *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRows needs rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols)
	for i := 0; i < rows; i++ {
		row := t.data[i*cols : (i+1)*cols]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// AddRowVector adds v to every row of a rank-2 tensor in place:
// t[i,j] += v[j].
func (t *Tensor) AddRowVector(v *Tensor) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: AddRowVector needs rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	if v.Size() != cols {
		panic(fmt.Sprintf("tensor: AddRowVector vector size %d != cols %d", v.Size(), cols))
	}
	for i := 0; i < rows; i++ {
		row := t.data[i*cols : (i+1)*cols]
		for j := range row {
			row[j] += v.data[j]
		}
	}
}

// Transpose returns a new rank-2 tensor that is the transpose of t.
func (t *Tensor) Transpose() *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out.data[j*rows+i] = t.data[i*cols+j]
		}
	}
	return out
}
