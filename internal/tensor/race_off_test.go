//go:build !race

package tensor

// raceEnabled is false in normal builds; see race_on_test.go.
const raceEnabled = false
