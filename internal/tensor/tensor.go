// Package tensor provides the dense float64 tensor type and the numeric
// kernels (matmul, im2col, elementwise ops, reductions) that the neural
// network and crossbar simulation layers are built on.
//
// Tensors are row-major and always own their backing slice. The package
// is deliberately small and allocation-conscious: the training loop and
// the crossbar simulator call these kernels millions of times.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float64 array of arbitrary rank.
// The zero value is an empty tensor of rank 0.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// A rank-0 tensor (no dimensions) holds a single element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is
// used directly (not copied); len(data) must equal the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutating it mutates
// the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a view of t with a new shape of equal volume. The
// backing data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	inferred := -1
	for i, d := range shape {
		if d == -1 {
			if inferred >= 0 {
				panic("tensor: at most one -1 dimension allowed in Reshape")
			}
			inferred = i
			continue
		}
		n *= d
	}
	out := append([]int(nil), shape...)
	if inferred >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		out[inferred] = len(t.data) / n
		n *= out[inferred]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v changes volume", t.shape, shape))
	}
	return &Tensor{shape: out, data: t.data}
}

// offset computes the flat index for the given multi-dimensional index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		mn, mx := t.MinMax()
		fmt.Fprintf(&b, "{n=%d min=%.4g max=%.4g mean=%.4g}", len(t.data), mn, mx, t.Mean())
	}
	return b.String()
}

// MinMax returns the smallest and largest elements. It panics on an
// empty tensor.
func (t *Tensor) MinMax() (min, max float64) {
	if len(t.data) == 0 {
		panic("tensor: MinMax of empty tensor")
	}
	min, max = t.data[0], t.data[0]
	for _, v := range t.data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Std returns the population standard deviation of the elements.
func (t *Tensor) Std() float64 {
	if len(t.data) == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.data {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(t.data)))
}

// AbsMax returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element. Ties resolve to
// the lowest index. It panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}
