package tensor

import (
	"math"
	"testing"
)

func TestConvGeomOutputDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-padding 5x5: out = %dx%d, want 32x32", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	if g2.OutH() != 2 || g2.OutW() != 2 {
		t.Fatalf("stride-2 pooling geometry: out = %dx%d, want 2x2", g2.OutH(), g2.OutW())
	}
}

func TestConvGeomValidate(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 0, KW: 2, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 0, StrideW: 1},
		{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1, PadH: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d: geometry %+v should be invalid", i, g)
		}
	}
	good := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

// TestIm2ColKnownPatch verifies the patch layout on a hand-computed 1x3x3
// input with a 2x2 kernel.
func TestIm2ColKnownPatch(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	in := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	cols := New(g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	Im2Col(cols, in, g)
	// First patch: rows (1,2),(4,5); last patch: (5,6),(8,9).
	want0 := []float64{1, 2, 4, 5}
	want3 := []float64{5, 6, 8, 9}
	for i, v := range want0 {
		if cols.At(0, i) != v {
			t.Fatalf("patch 0 = %v, want %v", cols.RowSlice(0).Data(), want0)
		}
	}
	for i, v := range want3 {
		if cols.At(3, i) != v {
			t.Fatalf("patch 3 = %v, want %v", cols.RowSlice(3).Data(), want3)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	cols := New(g.OutH()*g.OutW(), 9)
	Im2Col(cols, in, g)
	// Top-left output position: the 3x3 window centred at (0,0) has its
	// first row and first column in padding.
	row := cols.RowSlice(0).Data()
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i, v := range want {
		if row[i] != v {
			t.Fatalf("padded patch = %v, want %v", row, want)
		}
	}
}

func TestIm2ColMultiChannelOrder(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	in := FromSlice([]float64{
		1, 2, 3, 4, // channel 0
		5, 6, 7, 8, // channel 1
	}, 2, 2, 2)
	cols := New(1, 8)
	Im2Col(cols, in, g)
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for i, v := range want {
		if cols.Data()[i] != v {
			t.Fatalf("channel-major patch = %v, want %v", cols.Data(), want)
		}
	}
}

// TestCol2ImIsAdjointOfIm2Col verifies <Im2Col(x), y> == <x, Col2Im(y)>
// for random x, y — the defining property of the adjoint, which is
// exactly what backprop through a conv layer requires.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		g := ConvGeom{
			InC: 1 + rng.Intn(3), InH: 3 + rng.Intn(5), InW: 3 + rng.Intn(5),
			KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2), StrideW: 1 + rng.Intn(2),
			PadH: rng.Intn(2), PadW: rng.Intn(2),
		}
		if g.Validate() != nil {
			continue
		}
		x := New(g.InC, g.InH, g.InW)
		rng.FillNormal(x, 0, 1)
		rows := g.OutH() * g.OutW()
		patch := g.InC * g.KH * g.KW

		ax := New(rows, patch)
		Im2Col(ax, x, g)
		y := New(rows, patch)
		rng.FillNormal(y, 0, 1)
		aty := New(g.InC, g.InH, g.InW)
		Col2Im(aty, y, g)

		lhs := Dot(ax, y)
		rhs := Dot(x, aty)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("adjoint identity violated for %+v: %g vs %g", g, lhs, rhs)
		}
	}
}

// TestIm2ColConvolutionEquivalence performs a conv via im2col+matmul and
// checks it against a direct nested-loop convolution.
func TestIm2ColConvolutionEquivalence(t *testing.T) {
	rng := NewRNG(3)
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	outC := 4
	x := New(g.InC, g.InH, g.InW)
	w := New(g.InC*g.KH*g.KW, outC)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(w, 0, 1)

	cols := New(g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	Im2Col(cols, x, g)
	got := MatMul(cols, w) // [OutH*OutW, outC]

	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < g.OutH(); oy++ {
			for ox := 0; ox < g.OutW(); ox++ {
				s := 0.0
				for c := 0; c < g.InC; c++ {
					for ky := 0; ky < g.KH; ky++ {
						for kx := 0; kx < g.KW; kx++ {
							iy := oy*g.StrideH - g.PadH + ky
							ix := ox*g.StrideW - g.PadW + kx
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								continue
							}
							wIdx := (c*g.KH+ky)*g.KW + kx
							s += x.At(c, iy, ix) * w.At(wIdx, oc)
						}
					}
				}
				if math.Abs(got.At(oy*g.OutW()+ox, oc)-s) > 1e-9 {
					t.Fatalf("im2col conv disagrees with direct conv at oc=%d oy=%d ox=%d", oc, oy, ox)
				}
			}
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c1 := NewRNG(42).Split()
	c2 := NewRNG(42).Split()
	if c1.Float64() != c2.Float64() {
		t.Fatal("Split must be deterministic")
	}
}

func TestInitializerScales(t *testing.T) {
	rng := NewRNG(5)
	w := New(1000)
	rng.HeInit(w, 100)
	std := w.Std()
	want := math.Sqrt(2.0 / 100.0)
	if math.Abs(std-want) > 0.02 {
		t.Fatalf("He init std = %g, want ~%g", std, want)
	}
	rng.XavierInit(w, 50, 50)
	limit := math.Sqrt(6.0 / 100.0)
	mn, mx := w.MinMax()
	if mn < -limit || mx > limit {
		t.Fatalf("Xavier init out of [-%g, %g]: min=%g max=%g", limit, limit, mn, mx)
	}
}
