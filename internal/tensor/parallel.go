package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Deterministic intra-kernel parallelism.
//
// The evaluation hot loops (crossbar batch reads, dense/conv forward
// passes) are embarrassingly parallel over output rows: every row of
// dst = a @ b is produced by one independent dot-product sweep, with no
// cross-row reduction. Partitioning rows across goroutines therefore
// changes scheduling only, never arithmetic order — the output bytes
// are identical for every worker count, which is what lets campaign
// shards opt into parallel evaluation without breaking the engine's
// byte-identical-results guarantee (parallelism stays inside a shard;
// all reductions run in fixed order on the caller's goroutine).
//
// A process-wide token pool bounds the total number of extra kernel
// goroutines to GOMAXPROCS, so nested parallelism (campaign workers x
// eval workers) degrades gracefully to inline execution instead of
// oversubscribing the machine: chunk boundaries depend only on the
// shapes and the requested worker count, and a chunk that cannot get a
// token is simply computed by the caller.

// kernelTokens bounds concurrently running extra kernel goroutines.
var kernelTokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// ParallelRows partitions [0, m) into at most `workers` contiguous
// chunks and runs f on each, spawning a goroutine per extra chunk when
// a pool token is free and running inline otherwise. f must be safe to
// run concurrently on disjoint ranges; for bit-identical results the
// work on each index must be independent of the chunking (true for
// per-row or per-sample kernels).
func ParallelRows(m, workers int, f func(r0, r1 int)) {
	if workers > m {
		workers = m
	}
	if max := cap(kernelTokens); workers > max {
		workers = max
	}
	if workers <= 1 || m <= 1 {
		f(0, m)
		return
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for r0 := chunk; r0 < m; r0 += chunk {
		r1 := r0 + chunk
		if r1 > m {
			r1 = m
		}
		select {
		case kernelTokens <- struct{}{}:
			wg.Add(1)
			go func(r0, r1 int) {
				defer func() { <-kernelTokens; wg.Done() }()
				f(r0, r1)
			}(r0, r1)
		default:
			f(r0, r1)
		}
	}
	f(0, chunk) // the caller always computes the first chunk itself
	wg.Wait()
}

// MatMulWorkersInto computes dst = a @ b like MatMulInto, splitting the
// output rows over up to `workers` goroutines (bounded by GOMAXPROCS
// via the shared token pool). workers <= 1 is exactly MatMulInto. The
// result is bit-identical for every worker count.
func MatMulWorkersInto(dst, a, b *Tensor, workers int) {
	m := a.shape[0]
	n := b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulWorkersInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	if workers <= 1 {
		matMulRows(dst, a, b, 0, m)
		return
	}
	ParallelRows(m, workers, func(r0, r1 int) { matMulRows(dst, a, b, r0, r1) })
}
