package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling
// window applied to an input of shape [C, H, W].
type ConvGeom struct {
	InC, InH, InW int // input channels and spatial size
	KH, KW        int // kernel size
	StrideH       int
	StrideW       int
	PadH          int
	PadW          int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate reports an error when the geometry is degenerate.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv input dims must be positive, got C=%d H=%d W=%d", g.InC, g.InH, g.InW)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: conv kernel dims must be positive, got %dx%d", g.KH, g.KW)
	case g.StrideH <= 0 || g.StrideW <= 0:
		return fmt.Errorf("tensor: conv strides must be positive, got %dx%d", g.StrideH, g.StrideW)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("tensor: conv padding must be non-negative, got %dx%d", g.PadH, g.PadW)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv output is empty for geometry %+v", g)
	}
	return nil
}

// Im2Col expands a single image of shape [C,H,W] (flattened in input)
// into a patch matrix of shape [OutH*OutW, C*KH*KW], writing into dst.
// Each row of dst holds one receptive field in channel-major order, so
// a convolution becomes dst @ W with W shaped [C*KH*KW, OutC].
// Out-of-bounds (padding) positions contribute zeros.
func Im2Col(dst, input *Tensor, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	patch := g.InC * g.KH * g.KW
	if dst.Size() != outH*outW*patch {
		panic(fmt.Sprintf("tensor: Im2Col dst size %d, want %d", dst.Size(), outH*outW*patch))
	}
	if input.Size() != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input size %d, want %d", input.Size(), g.InC*g.InH*g.InW))
	}
	in := input.data
	out := dst.data
	row := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.StrideH - g.PadH
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.StrideW - g.PadW
			base := row * patch
			col := 0
			for c := 0; c < g.InC; c++ {
				cOff := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						for kx := 0; kx < g.KW; kx++ {
							out[base+col] = 0
							col++
						}
						continue
					}
					rOff := cOff + iy*g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= g.InW {
							out[base+col] = 0
						} else {
							out[base+col] = in[rOff+ix]
						}
						col++
					}
				}
			}
			row++
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatter-adds the patch matrix
// cols of shape [OutH*OutW, C*KH*KW] back into an image gradient of
// shape [C,H,W] in dst. dst is zeroed first.
func Col2Im(dst, cols *Tensor, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	patch := g.InC * g.KH * g.KW
	if cols.Size() != outH*outW*patch {
		panic(fmt.Sprintf("tensor: Col2Im cols size %d, want %d", cols.Size(), outH*outW*patch))
	}
	if dst.Size() != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im dst size %d, want %d", dst.Size(), g.InC*g.InH*g.InW))
	}
	dst.Zero()
	out := dst.data
	in := cols.data
	row := 0
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*g.StrideH - g.PadH
		for ox := 0; ox < outW; ox++ {
			ix0 := ox*g.StrideW - g.PadW
			base := row * patch
			col := 0
			for c := 0; c < g.InC; c++ {
				cOff := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						col += g.KW
						continue
					}
					rOff := cOff + iy*g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix >= 0 && ix < g.InW {
							out[rOff+ix] += in[base+col]
						}
						col++
					}
				}
			}
			row++
		}
	}
}
