package tensor

import (
	"fmt"
	"testing"
)

// matMulReference is the unblocked streaming kernel, kept verbatim as
// the oracle the dispatching matMulRows is proven against: ascending-p
// accumulation with the zero-input skip, exactly the arithmetic order
// the blocked kernel must preserve.
func matMulReference(dst, a, b *Tensor) {
	k, n := a.shape[1], b.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := dst.data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// TestMatMulBlockedBitIdentical drives shapes on both sides of the
// blocking threshold — including ragged tiles and sparse inputs that
// exercise the zero-skip — and requires the dispatching kernel to match
// the streaming oracle with == (no tolerance).
func TestMatMulBlockedBitIdentical(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{3, 5, 7},                                   // tiny, unblocked
		{32, 64, 64},                                // the bench shape, unblocked
		{4, matMulBlockK + 33, matMulBlockN + 17},   // ragged tiles, blocked
		{9, 3 * matMulBlockK, 2 * matMulBlockN},     // exact tiles, blocked
		{1, matMulBlockK * 4, matMulBlockN/2 + 111}, // tall-skinny, blocked
	}
	for _, s := range shapes {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			if blocked := s.k*s.n > matMulBlockMinFloats; !blocked && s.k > matMulBlockK {
				t.Logf("shape below threshold (k*n=%d)", s.k*s.n)
			}
			rng := NewRNG(int64(s.m*1000 + s.k*10 + s.n))
			a := New(s.m, s.k)
			b := New(s.k, s.n)
			rng.FillNormal(a, 0, 1)
			rng.FillNormal(b, 0, 1)
			// Sprinkle exact zeros so the skip path runs in both kernels.
			for i := 0; i < len(a.data); i += 7 {
				a.data[i] = 0
			}
			want := New(s.m, s.n)
			matMulReference(want, a, b)
			got := New(s.m, s.n)
			MatMulInto(got, a, b)
			for i, v := range want.data {
				if got.data[i] != v {
					t.Fatalf("element %d differs: %v vs %v", i, got.data[i], v)
				}
			}
			// The row-parallel entry must dispatch identically too.
			for _, workers := range []int{1, 2, 8} {
				gw := New(s.m, s.n)
				MatMulWorkersInto(gw, a, b, workers)
				for i, v := range want.data {
					if gw.data[i] != v {
						t.Fatalf("workers=%d element %d differs: %v vs %v", workers, i, gw.data[i], v)
					}
				}
			}
		})
	}
}

// TestMatVecIntoBitIdentical pins the Into variants against their
// allocating counterparts: MatVecInto against MatVec, and MatVecTInto
// against MatVec over an explicit transpose.
func TestMatVecIntoBitIdentical(t *testing.T) {
	for _, s := range []struct{ m, k int }{{1, 1}, {7, 5}, {64, 64}, {130, 257}} {
		rng := NewRNG(int64(s.m*100 + s.k))
		a := New(s.m, s.k)
		x := New(s.k)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(x, 0, 1)

		want := MatVec(a, x)
		got := New(s.m)
		got.Fill(42) // stale contents must be fully overwritten
		MatVecInto(got, a, x)
		for i, v := range want.data {
			if got.data[i] != v {
				t.Fatalf("[%d,%d] MatVecInto element %d differs: %v vs %v", s.m, s.k, i, got.data[i], v)
			}
		}

		xm := New(s.m)
		rng.FillNormal(xm, 0, 1)
		wantT := MatVec(a.Transpose(), xm)
		gotT := New(s.k)
		gotT.Fill(-42)
		MatVecTInto(gotT, a, xm)
		for i, v := range wantT.data {
			if gotT.data[i] != v {
				t.Fatalf("[%d,%d] MatVecTInto element %d differs: %v vs %v", s.m, s.k, i, gotT.data[i], v)
			}
		}
	}
}

// TestMatVecIntoZeroAlloc pins the Into kernels at zero allocations.
func TestMatVecIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting under the race detector")
	}
	a := New(64, 64)
	x := New(64)
	NewRNG(1).FillNormal(a, 0, 1)
	NewRNG(2).FillNormal(x, 0, 1)
	dst := New(64)
	if n := testing.AllocsPerRun(100, func() { MatVecInto(dst, a, x) }); n != 0 {
		t.Fatalf("MatVecInto allocates %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { MatVecTInto(dst, a, x) }); n != 0 {
		t.Fatalf("MatVecTInto allocates %v allocs/op, want 0", n)
	}
}
