package tensor

import "fmt"

// MatMul returns a @ b for rank-2 tensors a[m,k] and b[k,n].
// The kernel is written ikj-order so the inner loop streams both the
// output row and the b row sequentially, which keeps it cache-friendly
// without external BLAS.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a @ b, reusing dst's storage. dst must have
// shape [a.rows, b.cols] and must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	m, n := a.shape[0], b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	matMulRows(dst, a, b, 0, m)
}

// matMulRows computes rows [r0, r1) of dst = a @ b. Each output row is
// written exactly once and touched by exactly one caller, so disjoint
// row ranges may run concurrently and the result is bit-identical to a
// serial pass whatever the partitioning.
func matMulRows(dst, a, b *Tensor, r0, r1 int) {
	k, n := a.shape[1], b.shape[1]
	for i := r0; i < r1; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := dst.data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATInto computes dst = aᵀ @ b where a is [k,m] and b is [k,n],
// producing dst [m,n]. Used by dense/conv backward passes to avoid
// materialising explicit transposes.
func MatMulATInto(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATInto inner dimensions differ: %vᵀ @ %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulATInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulBTInto computes dst = a @ bᵀ where a is [m,k] and b is [n,k],
// producing dst [m,n].
func MatMulBTInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBTInto inner dimensions differ: %v @ %vᵀ", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulBTInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// MatVec returns a @ x for a rank-2 tensor a[m,k] and rank-1 x[k].
func MatVec(a, x *Tensor) *Tensor {
	if len(a.shape) != 2 || len(x.shape) != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs [m,k]@[k], got %v and %v", a.shape, x.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v @ %v", a.shape, x.shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for p, v := range row {
			s += v * x.data[p]
		}
		out.data[i] = s
	}
	return out
}
