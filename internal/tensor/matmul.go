package tensor

import "fmt"

// MatMul returns a @ b for rank-2 tensors a[m,k] and b[k,n].
// The kernel is written ikj-order so the inner loop streams both the
// output row and the b row sequentially, which keeps it cache-friendly
// without external BLAS.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v @ %v", a.shape, b.shape))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a @ b, reusing dst's storage. dst must have
// shape [a.rows, b.cols] and must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	m, n := a.shape[0], b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	matMulRows(dst, a, b, 0, m)
}

// Cache-blocking parameters for the tiled matmul kernel. A b-tile is
// blockK x blockN float64s (256 KiB), sized to stay resident in L2
// while every row of the chunk streams over it. Blocking only pays once
// b itself outgrows the cache, so small products keep the simple
// streaming kernel (and its exact per-op cost profile).
const (
	matMulBlockK = 128
	matMulBlockN = 256
	// matMulBlockMinFloats is the size of b (k*n elements) above which
	// matMulRows switches to the tiled kernel.
	matMulBlockMinFloats = matMulBlockK * matMulBlockN
)

// matMulRows computes rows [r0, r1) of dst = a @ b. Each output row is
// written exactly once and touched by exactly one caller, so disjoint
// row ranges may run concurrently and the result is bit-identical to a
// serial pass whatever the partitioning. Large products dispatch to the
// cache-blocked kernel; every output element accumulates its products
// in ascending p order with the same zero-input skip in both kernels,
// so the choice never changes the output bits.
func matMulRows(dst, a, b *Tensor, r0, r1 int) {
	k, n := a.shape[1], b.shape[1]
	if k*n > matMulBlockMinFloats {
		matMulRowsBlocked(dst, a, b, r0, r1)
		return
	}
	for i := r0; i < r1; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := dst.data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulRowsBlocked is the tiled variant of matMulRows: b is walked one
// blockK x blockN tile at a time so each tile is loaded from memory
// once and reused by every row of the chunk while it sits in cache.
// The p-tile loop is outermost and ascends, and within a tile p
// ascends, so each dst element still receives its partial products in
// exactly the order of the streaming kernel.
func matMulRowsBlocked(dst, a, b *Tensor, r0, r1 int) {
	k, n := a.shape[1], b.shape[1]
	for i := r0; i < r1; i++ {
		drow := dst.data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
	}
	for p0 := 0; p0 < k; p0 += matMulBlockK {
		p1 := p0 + matMulBlockK
		if p1 > k {
			p1 = k
		}
		for j0 := 0; j0 < n; j0 += matMulBlockN {
			j1 := j0 + matMulBlockN
			if j1 > n {
				j1 = n
			}
			for i := r0; i < r1; i++ {
				arow := a.data[i*k : (i+1)*k]
				drow := dst.data[i*n+j0 : i*n+j1]
				for p := p0; p < p1; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := b.data[p*n+j0 : p*n+j1]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulATInto computes dst = aᵀ @ b where a is [k,m] and b is [k,n],
// producing dst [m,n]. Used by dense/conv backward passes to avoid
// materialising explicit transposes.
func MatMulATInto(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATInto inner dimensions differ: %vᵀ @ %v", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulATInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulBTInto computes dst = a @ bᵀ where a is [m,k] and b is [n,k],
// producing dst [m,n].
func MatMulBTInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBTInto inner dimensions differ: %v @ %vᵀ", a.shape, b.shape))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulBTInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		drow := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// MatVec returns a @ x for a rank-2 tensor a[m,k] and rank-1 x[k].
func MatVec(a, x *Tensor) *Tensor {
	if len(a.shape) != 2 || len(x.shape) != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs [m,k]@[k], got %v and %v", a.shape, x.shape))
	}
	out := New(a.shape[0])
	MatVecInto(out, a, x)
	return out
}

// MatVecInto computes dst = a @ x for a[m,k] and x[k], reusing dst's
// storage (rank-1, length m). dst must not alias x. Bit-identical to
// MatVec.
func MatVecInto(dst, a, x *Tensor) {
	m, k := a.shape[0], a.shape[1]
	if x.Size() != k {
		panic(fmt.Sprintf("tensor: MatVecInto dimension mismatch %v @ %v", a.shape, x.shape))
	}
	if dst.Size() != m {
		panic(fmt.Sprintf("tensor: MatVecInto dst size %d, want %d", dst.Size(), m))
	}
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for p, v := range row {
			s += v * x.data[p]
		}
		dst.data[i] = s
	}
}

// MatVecTInto computes dst = aᵀ @ x for a[k,m] and x[k] without
// materializing the transpose: dst_j = sum_i a[i][j] * x_i, accumulated
// in ascending i like a MatVec over an explicit transpose, so the
// result is bit-identical to MatVec(a.Transpose(), x) while streaming
// a's rows sequentially. dst (rank-1, length m) must not alias x.
func MatVecTInto(dst, a, x *Tensor) {
	k, m := a.shape[0], a.shape[1]
	if x.Size() != k {
		panic(fmt.Sprintf("tensor: MatVecTInto dimension mismatch %vᵀ @ %v", a.shape, x.shape))
	}
	if dst.Size() != m {
		panic(fmt.Sprintf("tensor: MatVecTInto dst size %d, want %d", dst.Size(), m))
	}
	d := dst.data[:m]
	for j := range d {
		d[j] = 0
	}
	for i := 0; i < k; i++ {
		xi := x.data[i]
		row := a.data[i*m : (i+1)*m]
		for j, v := range row {
			d[j] += v * xi
		}
	}
}
