package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: transposing twice is the identity.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		m, n := 1+r.Intn(8), 1+r.Intn(8)
		x := New(m, n)
		r.FillNormal(x, 0, 1)
		y := x.Transpose().Transpose()
		for i, v := range x.Data() {
			if y.Data()[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp is idempotent and bounds the result.
func TestClampIdempotentProperty(t *testing.T) {
	f := func(seed int64, rawLo, rawHi float64) bool {
		lo := math.Mod(math.Abs(rawLo), 10) - 5
		hi := lo + math.Mod(math.Abs(rawHi), 10)
		r := NewRNG(seed)
		x := New(20)
		r.FillNormal(x, 0, 10)
		x.Clamp(lo, hi)
		once := append([]float64(nil), x.Data()...)
		x.Clamp(lo, hi)
		for i, v := range x.Data() {
			if v != once[i] || v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SumRows equals a manual column sum.
func TestSumRowsMatchesManual(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		m, n := 1+r.Intn(6), 1+r.Intn(6)
		x := New(m, n)
		r.FillNormal(x, 0, 1)
		s := x.SumRows()
		for j := 0; j < n; j++ {
			want := 0.0
			for i := 0; i < m; i++ {
				want += x.At(i, j)
			}
			if math.Abs(s.Data()[j]-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVec agrees with MatMul against a column matrix.
func TestMatVecMatchesMatMul(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		m, k := 1+r.Intn(6), 1+r.Intn(6)
		a := New(m, k)
		x := New(k)
		r.FillNormal(a, 0, 1)
		r.FillNormal(x, 0, 1)
		got := MatVec(a, x)
		want := MatMul(a, x.Reshape(k, 1))
		for i := 0; i < m; i++ {
			if math.Abs(got.Data()[i]-want.Data()[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and positive on self.
func TestDotProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(16)
		a, b := New(n), New(n)
		r.FillNormal(a, 0, 1)
		r.FillNormal(b, 0, 1)
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-12 {
			return false
		}
		return Dot(a, a) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdEdgeCases(t *testing.T) {
	empty := New(0)
	if empty.Mean() != 0 || empty.Std() != 0 || empty.AbsMax() != 0 {
		t.Fatal("empty tensor statistics must be zero")
	}
	single := FromSlice([]float64{7}, 1)
	if single.Mean() != 7 || single.Std() != 0 {
		t.Fatal("single-element statistics")
	}
}
