//go:build race

package tensor

// raceEnabled lets allocation-count assertions skip under the race
// detector, whose instrumentation allocates; the exercised code still
// runs race-checked through the other tests.
const raceEnabled = true
