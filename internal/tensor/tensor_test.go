package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 {
		t.Fatalf("rank = %d, want 3", x.Rank())
	}
	if x.Size() != 24 {
		t.Fatalf("size = %d, want 24", x.Size())
	}
	if x.Dim(1) != 3 {
		t.Fatalf("dim(1) = %d, want 3", x.Dim(1))
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewRankZero(t *testing.T) {
	x := New()
	if x.Size() != 1 {
		t.Fatalf("rank-0 tensor size = %d, want 1", x.Size())
	}
}

func TestNewNegativeDimensionPanics(t *testing.T) {
	defer expectPanic(t, "negative dimension")
	New(2, -1)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must not copy the slice")
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "size mismatch")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRowMajorLayout(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data()[5] != 7 {
		t.Fatalf("row-major offset of [1,2] should be 5; data=%v", x.Data())
	}
	if x.At(1, 2) != 7 {
		t.Fatal("At should read back Set value")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 3)
	defer expectPanic(t, "index out of range")
	x.At(2, 0)
}

func TestAtWrongRankPanics(t *testing.T) {
	x := New(2, 3)
	defer expectPanic(t, "wrong rank index")
	x.At(1)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	c := x.Clone()
	c.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
	if !x.SameShape(c) {
		t.Fatal("Clone must preserve shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must be a view")
	}
}

func TestReshapeInferredDimension(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Dim(1) != 12 {
		t.Fatalf("inferred dim = %d, want 12", y.Dim(1))
	}
}

func TestReshapeVolumeMismatchPanics(t *testing.T) {
	x := New(2, 3)
	defer expectPanic(t, "volume change")
	x.Reshape(4, 2)
}

func TestFillZeroApply(t *testing.T) {
	x := New(3)
	x.Fill(2)
	x.Apply(func(v float64) float64 { return v * v })
	for _, v := range x.Data() {
		if v != 4 {
			t.Fatalf("apply result = %v, want all 4", x.Data())
		}
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero must clear all elements")
	}
}

func TestMinMaxMeanStd(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 4)
	mn, mx := x.MinMax()
	if mn != 1 || mx != 4 {
		t.Fatalf("MinMax = %g,%g want 1,4", mn, mx)
	}
	if x.Mean() != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", x.Mean())
	}
	want := math.Sqrt(1.25)
	if math.Abs(x.Std()-want) > 1e-12 {
		t.Fatalf("Std = %g, want %g", x.Std(), want)
	}
}

func TestArgMaxFirstOfTies(t *testing.T) {
	x := FromSlice([]float64{0, 5, 5, 1}, 4)
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d, want first max index 1", x.ArgMax())
	}
}

func TestAbsMax(t *testing.T) {
	x := FromSlice([]float64{-7, 3, 2}, 3)
	if x.AbsMax() != 7 {
		t.Fatalf("AbsMax = %g, want 7", x.AbsMax())
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	dst := New(3)
	AddInto(dst, a, b)
	if dst.Data()[2] != 9 {
		t.Fatalf("AddInto = %v", dst.Data())
	}
	SubInto(dst, b, a)
	if dst.Data()[0] != 3 {
		t.Fatalf("SubInto = %v", dst.Data())
	}
	MulInto(dst, a, b)
	if dst.Data()[1] != 10 {
		t.Fatalf("MulInto = %v", dst.Data())
	}
}

func TestScaleAxpyClamp(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	x.Scale(2)
	y := FromSlice([]float64{1, 1, 1}, 3)
	x.Axpy(3, y) // 2,4,6 + 3 = 5,7,9
	if x.Data()[2] != 9 {
		t.Fatalf("Axpy result = %v", x.Data())
	}
	x.Clamp(6, 8)
	if x.Data()[0] != 6 || x.Data()[2] != 8 {
		t.Fatalf("Clamp result = %v", x.Data())
	}
}

func TestClampInvertedBoundsPanics(t *testing.T) {
	x := New(1)
	defer expectPanic(t, "inverted bounds")
	x.Clamp(2, 1)
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %g, want 32", Dot(a, b))
	}
}

func TestRowSliceSharesStorage(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.RowSlice(1)
	r.Set(42, 0)
	if x.At(1, 0) != 42 {
		t.Fatal("RowSlice must share storage")
	}
}

func TestSumRowsAndAddRowVector(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := x.SumRows()
	want := []float64{5, 7, 9}
	for i, v := range want {
		if s.Data()[i] != v {
			t.Fatalf("SumRows = %v, want %v", s.Data(), want)
		}
	}
	x.AddRowVector(FromSlice([]float64{10, 20, 30}, 3))
	if x.At(1, 2) != 36 {
		t.Fatalf("AddRowVector result = %v", x.Data())
	}
}

func TestTranspose(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose()
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("Transpose shape = %v", y.Shape())
	}
	if y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("Transpose values wrong: %v", y.Data())
	}
}

func TestMatMulKnownResult(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer expectPanic(t, "dimension mismatch")
	MatMul(New(2, 3), New(2, 2))
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float64{5, 6}, 2)
	y := MatVec(a, x)
	if y.Data()[0] != 17 || y.Data()[1] != 39 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

// TestMatMulTransposedVariantsAgree checks the AT/BT kernels against
// explicit transposes, property-style over random shapes.
func TestMatMulTransposedVariantsAgree(t *testing.T) {
	rng := NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		n := 1 + rng.Intn(6)
		a := New(m, k)
		b := New(k, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)

		want := MatMul(a, b)

		gotAT := New(m, n)
		MatMulATInto(gotAT, a.Transpose(), b)
		assertAllClose(t, gotAT.Data(), want.Data(), 1e-10, "MatMulATInto")

		gotBT := New(m, n)
		MatMulBTInto(gotBT, a, b.Transpose())
		assertAllClose(t, gotBT.Data(), want.Data(), 1e-10, "MatMulBTInto")
	}
}

// Property: matmul distributes over addition, A(B+C) = AB + AC.
func TestMatMulDistributesOverAddition(t *testing.T) {
	rng := NewRNG(2)
	f := func(seed int64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b, c := New(m, k), New(k, n), New(k, n)
		r.FillNormal(a, 0, 1)
		r.FillNormal(b, 0, 1)
		r.FillNormal(c, 0, 1)
		bc := New(k, n)
		AddInto(bc, b, c)
		left := MatMul(a, bc)
		ab, ac := MatMul(a, b), MatMul(a, c)
		right := New(m, n)
		AddInto(right, ab, ac)
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Values: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}

func assertAllClose(t *testing.T, got, want []float64, tol float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: element %d differs: %g vs %g", what, i, got[i], want[i])
		}
	}
}
