package nn

import (
	"fmt"
	"math"

	"memlife/internal/tensor"
)

// LeNetConfig describes a LeNet-5 instance (2 convolutional + 3
// fully-connected layers, as in Table I of the paper).
type LeNetConfig struct {
	InC, H, W int
	Classes   int
}

// Validate reports an error for shapes LeNet-5 cannot process.
func (c LeNetConfig) Validate() error {
	if c.InC < 1 || c.Classes < 2 {
		return fmt.Errorf("nn: lenet needs channels >= 1 and classes >= 2, got C=%d classes=%d", c.InC, c.Classes)
	}
	if c.H < 12 || c.W < 12 {
		return fmt.Errorf("nn: lenet needs at least 12x12 input, got %dx%d", c.H, c.W)
	}
	if c.H%4 != 0 || c.W%4 != 0 {
		return fmt.Errorf("nn: lenet input must be divisible by 4, got %dx%d", c.H, c.W)
	}
	return nil
}

// NewLeNet5 builds LeNet-5: conv5x5(6) - pool - conv5x5(16) - pool -
// fc120 - fc84 - fc(classes), with ReLU activations.
func NewLeNet5(cfg LeNetConfig, rng *tensor.RNG) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	conv1Geom := tensor.ConvGeom{InC: cfg.InC, InH: cfg.H, InW: cfg.W, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	pool1Geom := tensor.ConvGeom{InC: 6, InH: cfg.H, InW: cfg.W, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	h2, w2 := cfg.H/2, cfg.W/2
	conv2Geom := tensor.ConvGeom{InC: 6, InH: h2, InW: w2, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	pool2Geom := tensor.ConvGeom{InC: 16, InH: h2, InW: w2, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	flat := 16 * (h2 / 2) * (w2 / 2)

	net := NewNetwork("lenet5", cfg.InC*cfg.H*cfg.W,
		NewConv2D("conv1", conv1Geom, 6, rng),
		NewReLU(),
		NewMaxPool2D("pool1", pool1Geom),
		NewConv2D("conv2", conv2Geom, 16, rng),
		NewReLU(),
		NewMaxPool2D("pool2", pool2Geom),
		NewFlatten(),
		NewDense("fc1", flat, 120, rng),
		NewReLU(),
		NewDense("fc2", 120, 84, rng),
		NewReLU(),
		NewDense("fc3", 84, cfg.Classes, rng),
	)
	return net, nil
}

// VGGConfig describes a VGG-16 instance (13 convolutional + 3
// fully-connected layers, Table I of the paper). WidthMult scales the
// channel counts so the topology can run on CPU; 1.0 reproduces the
// published widths.
type VGGConfig struct {
	InC, H, W int
	Classes   int
	WidthMult float64
	FCWidth   int // width of the two hidden FC layers (paper: 4096)
}

// Validate reports an error for shapes VGG-16 cannot process.
func (c VGGConfig) Validate() error {
	if c.InC < 1 || c.Classes < 2 {
		return fmt.Errorf("nn: vgg needs channels >= 1 and classes >= 2, got C=%d classes=%d", c.InC, c.Classes)
	}
	if c.H%32 != 0 || c.W%32 != 0 || c.H < 32 || c.W < 32 {
		return fmt.Errorf("nn: vgg input must be a positive multiple of 32 (5 pooling stages), got %dx%d", c.H, c.W)
	}
	if c.WidthMult <= 0 {
		return fmt.Errorf("nn: vgg width multiplier must be positive, got %g", c.WidthMult)
	}
	if c.FCWidth < 1 {
		return fmt.Errorf("nn: vgg FC width must be >= 1, got %d", c.FCWidth)
	}
	return nil
}

// vggPlan lists the 13 conv widths and pool positions of VGG-16:
// 2x64 P 2x128 P 3x256 P 3x512 P 3x512 P.
var vggPlan = []struct {
	width int  // 0 marks a pooling stage
	pool  bool //
}{
	{64, false}, {64, false}, {0, true},
	{128, false}, {128, false}, {0, true},
	{256, false}, {256, false}, {256, false}, {0, true},
	{512, false}, {512, false}, {512, false}, {0, true},
	{512, false}, {512, false}, {512, false}, {0, true},
}

// NewVGG16 builds a VGG-16 with the given width multiplier.
func NewVGG16(cfg VGGConfig, rng *tensor.RNG) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scale := func(base int) int {
		w := int(math.Round(float64(base) * cfg.WidthMult))
		if w < 1 {
			w = 1
		}
		return w
	}
	var layers []Layer
	c, h, w := cfg.InC, cfg.H, cfg.W
	convIdx, poolIdx := 0, 0
	for _, stage := range vggPlan {
		if stage.pool {
			poolIdx++
			geom := tensor.ConvGeom{InC: c, InH: h, InW: w, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
			layers = append(layers, NewMaxPool2D(fmt.Sprintf("pool%d", poolIdx), geom))
			h, w = h/2, w/2
			continue
		}
		convIdx++
		outC := scale(stage.width)
		geom := tensor.ConvGeom{InC: c, InH: h, InW: w, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		layers = append(layers,
			NewConv2D(fmt.Sprintf("conv%d", convIdx), geom, outC, rng),
			NewReLU(),
		)
		c = outC
	}
	flat := c * h * w
	layers = append(layers,
		NewFlatten(),
		NewDense("fc1", flat, cfg.FCWidth, rng),
		NewReLU(),
		NewDense("fc2", cfg.FCWidth, cfg.FCWidth, rng),
		NewReLU(),
		NewDense("fc3", cfg.FCWidth, cfg.Classes, rng),
	)
	return NewNetwork("vgg16", cfg.InC*cfg.H*cfg.W, layers...), nil
}

// NewMLP builds a plain multi-layer perceptron with ReLU activations
// between the given layer widths. Used by small experiments and tests.
func NewMLP(name string, widths []int, rng *tensor.RNG) (*Network, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("nn: mlp needs at least input and output widths, got %v", widths)
	}
	var layers []Layer
	for i := 0; i < len(widths)-1; i++ {
		layers = append(layers, NewDense(fmt.Sprintf("fc%d", i+1), widths[i], widths[i+1], rng))
		if i < len(widths)-2 {
			layers = append(layers, NewReLU())
		}
	}
	return NewNetwork(name, widths[0], layers...), nil
}
