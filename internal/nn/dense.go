package nn

import (
	"fmt"

	"memlife/internal/tensor"
)

// Dense is a fully-connected layer computing y = x @ W + b for batch
// input x of shape [B, In]. Its weight matrix is what gets mapped onto a
// memristor crossbar: W[i][j] is the weight from input neuron i to
// output neuron j, matching the paper's g_ij orientation (Fig. 1).
type Dense struct {
	name    string
	In, Out int
	Weight  *Param
	Bias    *Param

	x       *tensor.Tensor // cached forward input
	workers int            // forward-pass parallelism (see Network.SetForwardWorkers)
}

// NewDense constructs a dense layer with He-initialized weights.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: dense dims must be positive, got %dx%d", in, out))
	}
	w := tensor.New(in, out)
	rng.HeInit(w, in)
	return &Dense{
		name: name, In: in, Out: out,
		Weight: newParam(name+".w", KindWeight, w),
		Bias:   newParam(name+".b", KindBias, tensor.New(out)),
	}
}

// Name implements Layer.
func (l *Dense) Name() string { return l.name }

// Params implements Layer.
func (l *Dense) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// OutputSize implements Layer.
func (l *Dense) OutputSize(in int) int {
	if in != l.In {
		panic(fmt.Sprintf("nn: dense %q expects input size %d, got %d", l.name, l.In, in))
	}
	return l.Out
}

// Forward implements Layer.
func (l *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: dense %q forward input width %d, want %d", l.name, x.Dim(1), l.In))
	}
	l.x = x
	out := tensor.New(x.Dim(0), l.Out)
	tensor.MatMulWorkersInto(out, x, l.Weight.W, l.workers)
	out.AddRowVector(l.Bias.W)
	return out
}

// Backward implements Layer.
func (l *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	// dW += xᵀ @ dout, db += column sums of dout, dx = dout @ Wᵀ.
	dW := tensor.New(l.In, l.Out)
	tensor.MatMulATInto(dW, l.x, dout)
	l.Weight.Grad.Axpy(1, dW)
	l.Bias.Grad.Axpy(1, dout.SumRows())

	dx := tensor.New(dout.Dim(0), l.In)
	tensor.MatMulBTInto(dx, dout, l.Weight.W)
	return dx
}
