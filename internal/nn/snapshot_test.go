package nn

import (
	"testing"

	"memlife/internal/tensor"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(21)
	net, err := NewMLP("m", []int{4, 6, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	snap := net.SnapshotParams()
	// Snapshot must be a deep copy.
	for _, p := range net.Params() {
		p.W.Fill(99)
	}
	if snap[0][0] == 99 {
		t.Fatal("snapshot must not alias live parameters")
	}
	net.RestoreParams(snap)
	for i, p := range net.Params() {
		for j, v := range p.W.Data() {
			if v != snap[i][j] {
				t.Fatal("restore must bring back snapshotted values")
			}
		}
	}
}

func TestRestoreParamsShapeMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(22)
	net, err := NewMLP("m", []int{4, 6, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	snap := net.SnapshotParams()

	t.Run("wrong tensor count", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		net.RestoreParams(snap[:1])
	})
	t.Run("wrong tensor size", func(t *testing.T) {
		bad := append([][]float64(nil), snap...)
		bad[0] = bad[0][:3]
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		net.RestoreParams(bad)
	})
}

func TestZeroGradsClearsEverything(t *testing.T) {
	rng := tensor.NewRNG(23)
	net, err := NewMLP("m", []int{4, 6, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Params() {
		p.Grad.Fill(1)
	}
	net.ZeroGrads()
	for _, p := range net.Params() {
		if p.Grad.AbsMax() != 0 {
			t.Fatalf("gradient of %s not cleared", p.Name)
		}
	}
}

func TestWeightParamsExcludeBiases(t *testing.T) {
	rng := tensor.NewRNG(24)
	net, err := NewMLP("m", []int{4, 6, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Params()) != 4 { // 2 weights + 2 biases
		t.Fatalf("params = %d, want 4", len(net.Params()))
	}
	for _, p := range net.WeightParams() {
		if p.Kind != KindWeight {
			t.Fatal("WeightParams must only return weights")
		}
	}
	if len(net.WeightParams()) != 2 {
		t.Fatalf("weight params = %d, want 2", len(net.WeightParams()))
	}
}
