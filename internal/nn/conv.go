package nn

import (
	"fmt"

	"memlife/internal/tensor"
)

// Conv2D is a 2-D convolution over channel-major (C,H,W) rows. The
// kernel is stored as a matrix of shape [InC*KH*KW, OutC] — the unrolled
// form that is mapped onto a crossbar, where each column is one output
// filter and each row one input of the dot-product engine.
type Conv2D struct {
	name string
	Geom tensor.ConvGeom
	OutC int

	Weight *Param
	Bias   *Param

	// Per-sample im2col patch matrices cached for the backward pass.
	cols []*tensor.Tensor

	workers int // forward-pass parallelism (see Network.SetForwardWorkers)
}

// NewConv2D constructs a convolution layer with He-initialized kernels.
func NewConv2D(name string, geom tensor.ConvGeom, outC int, rng *tensor.RNG) *Conv2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: conv %q: %v", name, err))
	}
	if outC <= 0 {
		panic(fmt.Sprintf("nn: conv %q needs positive output channels, got %d", name, outC))
	}
	patch := geom.InC * geom.KH * geom.KW
	w := tensor.New(patch, outC)
	rng.HeInit(w, patch)
	return &Conv2D{
		name: name, Geom: geom, OutC: outC,
		Weight: newParam(name+".w", KindWeight, w),
		Bias:   newParam(name+".b", KindBias, tensor.New(outC)),
	}
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.name }

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// InputSize returns the expected per-sample input width.
func (l *Conv2D) InputSize() int { return l.Geom.InC * l.Geom.InH * l.Geom.InW }

// OutputSize implements Layer.
func (l *Conv2D) OutputSize(in int) int {
	if in != l.InputSize() {
		panic(fmt.Sprintf("nn: conv %q expects input size %d, got %d", l.name, l.InputSize(), in))
	}
	return l.OutC * l.Geom.OutH() * l.Geom.OutW()
}

// Forward implements Layer. Each output row holds the channel-major
// (OutC, OutH, OutW) volume of one sample.
func (l *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b := x.Dim(0)
	if x.Dim(1) != l.InputSize() {
		panic(fmt.Sprintf("nn: conv %q forward input width %d, want %d", l.name, x.Dim(1), l.InputSize()))
	}
	outH, outW := l.Geom.OutH(), l.Geom.OutW()
	positions := outH * outW
	patch := l.Geom.InC * l.Geom.KH * l.Geom.KW

	out := tensor.New(b, l.OutC*positions)
	if cap(l.cols) < b {
		l.cols = make([]*tensor.Tensor, b)
	}
	l.cols = l.cols[:b]

	// Samples are independent, so chunking them over workers leaves the
	// output bit-identical for every worker count. Each chunk owns a
	// private position-major scratch buffer.
	tensor.ParallelRows(b, l.workers, func(s0, s1 int) {
		pos := tensor.New(positions, l.OutC)
		for s := s0; s < s1; s++ {
			if l.cols[s] == nil {
				l.cols[s] = tensor.New(positions, patch)
			}
			tensor.Im2Col(l.cols[s], x.RowSlice(s), l.Geom)
			tensor.MatMulInto(pos, l.cols[s], l.Weight.W)
			// Transpose position-major [positions, OutC] into the
			// channel-major output row, adding the per-channel bias.
			row := out.RowSlice(s).Data()
			pd := pos.Data()
			for p := 0; p < positions; p++ {
				for c := 0; c < l.OutC; c++ {
					row[c*positions+p] = pd[p*l.OutC+c] + l.Bias.W.Data()[c]
				}
			}
		}
	})
	return out
}

// Backward implements Layer.
func (l *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b := dout.Dim(0)
	outH, outW := l.Geom.OutH(), l.Geom.OutW()
	positions := outH * outW
	patch := l.Geom.InC * l.Geom.KH * l.Geom.KW

	dx := tensor.New(b, l.InputSize())
	dpos := tensor.New(positions, l.OutC)
	dW := tensor.New(patch, l.OutC)
	dcols := tensor.New(positions, patch)
	dimg := tensor.New(l.Geom.InC, l.Geom.InH, l.Geom.InW)

	for s := 0; s < b; s++ {
		// Channel-major gradient row -> position-major matrix,
		// accumulating the bias gradient on the way.
		row := dout.RowSlice(s).Data()
		dp := dpos.Data()
		for c := 0; c < l.OutC; c++ {
			gsum := 0.0
			for p := 0; p < positions; p++ {
				v := row[c*positions+p]
				dp[p*l.OutC+c] = v
				gsum += v
			}
			l.Bias.Grad.Data()[c] += gsum
		}
		// dW += colsᵀ @ dpos
		tensor.MatMulATInto(dW, l.cols[s], dpos)
		l.Weight.Grad.Axpy(1, dW)
		// dcols = dpos @ Wᵀ, scattered back to the input image.
		tensor.MatMulBTInto(dcols, dpos, l.Weight.W)
		tensor.Col2Im(dimg, dcols, l.Geom)
		copy(dx.RowSlice(s).Data(), dimg.Data())
	}
	return dx
}
