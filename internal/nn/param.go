// Package nn implements the neural-network substrate the paper trains
// and maps onto memristor crossbars: dense and convolutional layers,
// pooling, activations, softmax cross-entropy, and builders for the two
// evaluated topologies (LeNet-5 and VGG-16).
//
// All layers exchange rank-2 batch tensors of shape [B, D]; spatial
// layers interpret each row as a channel-major (C,H,W) volume. Backward
// passes implement exact analytic gradients (verified against finite
// differences in the tests), which the online-tuning simulator also uses
// as its gradient-sign oracle (paper eq. (5)).
package nn

import "memlife/internal/tensor"

// ParamKind distinguishes matrix weights (which are mapped onto
// crossbars and aged) from biases (implemented in peripheral circuitry).
type ParamKind int

const (
	// KindWeight marks a weight matrix mapped onto a crossbar.
	KindWeight ParamKind = iota
	// KindBias marks a bias vector kept in digital periphery.
	KindBias
)

// Param is one trainable tensor together with its gradient accumulator.
type Param struct {
	Name string
	Kind ParamKind
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// newParam allocates a parameter and its zeroed gradient.
func newParam(name string, kind ParamKind, w *tensor.Tensor) *Param {
	return &Param{Name: name, Kind: kind, W: w, Grad: tensor.New(w.Shape()...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }
