package nn

import (
	"fmt"
	"math"

	"memlife/internal/tensor"
)

// MaxPool2D applies channel-wise max pooling over (C,H,W) rows.
type MaxPool2D struct {
	name string
	Geom tensor.ConvGeom // KH/KW are the window, InC channels pooled independently

	argmax []int // flat input index chosen for each output element
	inSize int
}

// NewMaxPool2D constructs a max-pooling layer. geom.InC is the channel
// count; the window is geom.KH x geom.KW with the given strides.
func NewMaxPool2D(name string, geom tensor.ConvGeom) *MaxPool2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: maxpool %q: %v", name, err))
	}
	return &MaxPool2D{name: name, Geom: geom}
}

// Name implements Layer.
func (l *MaxPool2D) Name() string { return l.name }

// Params implements Layer.
func (l *MaxPool2D) Params() []*Param { return nil }

// InputSize returns the expected per-sample input width.
func (l *MaxPool2D) InputSize() int { return l.Geom.InC * l.Geom.InH * l.Geom.InW }

// OutputSize implements Layer.
func (l *MaxPool2D) OutputSize(in int) int {
	if in != l.InputSize() {
		panic(fmt.Sprintf("nn: maxpool %q expects input size %d, got %d", l.name, l.InputSize(), in))
	}
	return l.Geom.InC * l.Geom.OutH() * l.Geom.OutW()
}

// Forward implements Layer.
func (l *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b := x.Dim(0)
	g := l.Geom
	outH, outW := g.OutH(), g.OutW()
	outPerSample := g.InC * outH * outW
	l.inSize = x.Dim(1)

	out := tensor.New(b, outPerSample)
	if cap(l.argmax) < b*outPerSample {
		l.argmax = make([]int, b*outPerSample)
	}
	l.argmax = l.argmax[:b*outPerSample]

	for s := 0; s < b; s++ {
		in := x.RowSlice(s).Data()
		o := out.RowSlice(s).Data()
		oi := 0
		for c := 0; c < g.InC; c++ {
			cOff := c * g.InH * g.InW
			for oy := 0; oy < outH; oy++ {
				iy0 := oy*g.StrideH - g.PadH
				for ox := 0; ox < outW; ox++ {
					ix0 := ox*g.StrideW - g.PadW
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < g.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= g.InW {
								continue
							}
							idx := cOff + iy*g.InW + ix
							if in[idx] > best {
								best = in[idx]
								bestIdx = idx
							}
						}
					}
					o[oi] = best
					l.argmax[s*outPerSample+oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b := dout.Dim(0)
	outPerSample := dout.Dim(1)
	dx := tensor.New(b, l.inSize)
	for s := 0; s < b; s++ {
		do := dout.RowSlice(s).Data()
		di := dx.RowSlice(s).Data()
		for oi, g := range do {
			di[l.argmax[s*outPerSample+oi]] += g
		}
	}
	return dx
}

// AvgPool2D applies channel-wise average pooling over (C,H,W) rows.
type AvgPool2D struct {
	name string
	Geom tensor.ConvGeom

	inSize int
}

// NewAvgPool2D constructs an average-pooling layer.
func NewAvgPool2D(name string, geom tensor.ConvGeom) *AvgPool2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: avgpool %q: %v", name, err))
	}
	return &AvgPool2D{name: name, Geom: geom}
}

// Name implements Layer.
func (l *AvgPool2D) Name() string { return l.name }

// Params implements Layer.
func (l *AvgPool2D) Params() []*Param { return nil }

// InputSize returns the expected per-sample input width.
func (l *AvgPool2D) InputSize() int { return l.Geom.InC * l.Geom.InH * l.Geom.InW }

// OutputSize implements Layer.
func (l *AvgPool2D) OutputSize(in int) int {
	if in != l.InputSize() {
		panic(fmt.Sprintf("nn: avgpool %q expects input size %d, got %d", l.name, l.InputSize(), in))
	}
	return l.Geom.InC * l.Geom.OutH() * l.Geom.OutW()
}

// Forward implements Layer.
func (l *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b := x.Dim(0)
	g := l.Geom
	outH, outW := g.OutH(), g.OutW()
	l.inSize = x.Dim(1)
	out := tensor.New(b, g.InC*outH*outW)
	window := float64(g.KH * g.KW)

	for s := 0; s < b; s++ {
		in := x.RowSlice(s).Data()
		o := out.RowSlice(s).Data()
		oi := 0
		for c := 0; c < g.InC; c++ {
			cOff := c * g.InH * g.InW
			for oy := 0; oy < outH; oy++ {
				iy0 := oy*g.StrideH - g.PadH
				for ox := 0; ox < outW; ox++ {
					ix0 := ox*g.StrideW - g.PadW
					sum := 0.0
					for ky := 0; ky < g.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= g.InW {
								continue
							}
							sum += in[cOff+iy*g.InW+ix]
						}
					}
					o[oi] = sum / window
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *AvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b := dout.Dim(0)
	g := l.Geom
	outH, outW := g.OutH(), g.OutW()
	dx := tensor.New(b, l.inSize)
	window := float64(g.KH * g.KW)

	for s := 0; s < b; s++ {
		do := dout.RowSlice(s).Data()
		di := dx.RowSlice(s).Data()
		oi := 0
		for c := 0; c < g.InC; c++ {
			cOff := c * g.InH * g.InW
			for oy := 0; oy < outH; oy++ {
				iy0 := oy*g.StrideH - g.PadH
				for ox := 0; ox < outW; ox++ {
					ix0 := ox*g.StrideW - g.PadW
					grad := do[oi] / window
					for ky := 0; ky < g.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= g.InW {
								continue
							}
							di[cOff+iy*g.InW+ix] += grad
						}
					}
					oi++
				}
			}
		}
	}
	return dx
}
