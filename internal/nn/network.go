package nn

import (
	"fmt"

	"memlife/internal/tensor"
)

// Network is an ordered stack of layers with a softmax cross-entropy
// head. It owns the forward/backward plumbing used both for software
// training (Section II-A of the paper) and as the gradient oracle for
// online tuning (Section II-C).
type Network struct {
	Name      string
	InputSize int
	Layers    []Layer
}

// NewNetwork builds a network and shape-checks the layer stack against
// the declared input size.
func NewNetwork(name string, inputSize int, layers ...Layer) *Network {
	if inputSize <= 0 {
		panic(fmt.Sprintf("nn: network %q input size must be positive, got %d", name, inputSize))
	}
	size := inputSize
	for _, l := range layers {
		size = l.OutputSize(size) // panics with a specific message on mismatch
	}
	return &Network{Name: name, InputSize: inputSize, Layers: layers}
}

// OutputSize returns the per-sample logit width.
func (n *Network) OutputSize() int {
	size := n.InputSize
	for _, l := range n.Layers {
		size = l.OutputSize(size)
	}
	return size
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// WeightParams returns only the crossbar-mapped weight matrices.
func (n *Network) WeightParams() []*Param {
	var out []*Param
	for _, p := range n.Params() {
		if p.Kind == KindWeight {
			out = append(out, p)
		}
	}
	return out
}

// ZeroGrads clears every parameter gradient.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// SetForwardWorkers sets the per-layer forward-pass parallelism: each
// dense matmul and conv sample loop is split over up to n goroutines
// (bounded globally by GOMAXPROCS via tensor's kernel token pool).
// Results are bit-identical for every n, so evaluation can opt in
// without perturbing deterministic campaigns. n <= 1 restores serial
// execution.
func (n *Network) SetForwardWorkers(workers int) {
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Dense:
			t.workers = workers
		case *Conv2D:
			t.workers = workers
		}
	}
}

// ForwardWorkers reports the configured forward-pass parallelism (the
// maximum over layers; 0 when every layer is serial).
func (n *Network) ForwardWorkers() int {
	w := 0
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Dense:
			if t.workers > w {
				w = t.workers
			}
		case *Conv2D:
			if t.workers > w {
				w = t.workers
			}
		}
	}
	return w
}

// Forward runs the batch x through all layers and returns logits.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	for _, l := range n.Layers {
		out = l.Forward(out, train)
	}
	return out
}

// Backward propagates dlogits through all layers, accumulating parameter
// gradients, and returns the input gradient.
func (n *Network) Backward(dlogits *tensor.Tensor) *tensor.Tensor {
	d := dlogits
	for i := len(n.Layers) - 1; i >= 0; i-- {
		d = n.Layers[i].Backward(d)
	}
	return d
}

// Predict returns the argmax class for every sample in x.
func (n *Network) Predict(x *tensor.Tensor) []int {
	logits := n.Forward(x, false)
	b := logits.Dim(0)
	out := make([]int, b)
	for i := 0; i < b; i++ {
		out[i] = logits.RowSlice(i).ArgMax()
	}
	return out
}

// Accuracy returns the fraction of samples in x classified as y.
func (n *Network) Accuracy(x *tensor.Tensor, y []int) float64 {
	pred := n.Predict(x)
	if len(pred) != len(y) {
		panic(fmt.Sprintf("nn: accuracy label count %d != batch %d", len(y), len(pred)))
	}
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// SnapshotParams deep-copies every parameter tensor (weights and
// biases), so a trained state can be restored after hardware simulation
// overwrote the live weights.
func (n *Network) SnapshotParams() [][]float64 {
	var out [][]float64
	for _, p := range n.Params() {
		out = append(out, append([]float64(nil), p.W.Data()...))
	}
	return out
}

// RestoreParams writes a snapshot taken with SnapshotParams back into
// the network. The snapshot must come from a structurally identical
// network.
func (n *Network) RestoreParams(snap [][]float64) {
	params := n.Params()
	if len(snap) != len(params) {
		panic(fmt.Sprintf("nn: snapshot has %d tensors, network has %d", len(snap), len(params)))
	}
	for i, p := range params {
		if len(snap[i]) != p.W.Size() {
			panic(fmt.Sprintf("nn: snapshot tensor %d size %d, want %d", i, len(snap[i]), p.W.Size()))
		}
		copy(p.W.Data(), snap[i])
	}
}

// LayerKind classifies a weight-bearing layer for the conv-vs-FC aging
// analysis of Fig. 11.
type LayerKind int

const (
	// LayerConv marks a convolutional weight matrix.
	LayerConv LayerKind = iota
	// LayerFC marks a fully-connected weight matrix.
	LayerFC
)

// WeightLayer pairs a weight parameter with its host layer's kind.
type WeightLayer struct {
	Param *Param
	Kind  LayerKind
	Layer Layer
}

// WeightLayers returns the crossbar-mapped weight matrices with their
// layer kinds, in network order.
func (n *Network) WeightLayers() []WeightLayer {
	var out []WeightLayer
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv2D:
			out = append(out, WeightLayer{Param: t.Weight, Kind: LayerConv, Layer: l})
		case *Dense:
			out = append(out, WeightLayer{Param: t.Weight, Kind: LayerFC, Layer: l})
		}
	}
	return out
}
