package nn

import (
	"fmt"
	"math"

	"memlife/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [B, classes] against integer labels, and the gradient of that loss
// with respect to the logits. This is the C(W) term of the paper's cost
// function (eq. (1)); the regularization terms R(W) / R1+R2(W) are added
// by the train package.
func SoftmaxCrossEntropy(logits *tensor.Tensor, y []int) (loss float64, dlogits *tensor.Tensor) {
	b, classes := logits.Dim(0), logits.Dim(1)
	if len(y) != b {
		panic(fmt.Sprintf("nn: loss label count %d != batch %d", len(y), b))
	}
	dlogits = tensor.New(b, classes)
	invB := 1 / float64(b)
	for i := 0; i < b; i++ {
		row := logits.RowSlice(i).Data()
		drow := dlogits.RowSlice(i).Data()
		// Numerically stable softmax.
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - max)
			drow[j] = e
			sum += e
		}
		label := y[i]
		if label < 0 || label >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, classes))
		}
		for j := range drow {
			p := drow[j] / sum
			drow[j] = p * invB
			if j == label {
				drow[j] -= invB
				// -log p with a floor to avoid -Inf on confident misses.
				if p < 1e-300 {
					p = 1e-300
				}
				loss -= math.Log(p) * invB
			}
		}
	}
	return loss, dlogits
}

// Softmax returns the row-wise softmax of logits as a new tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := logits.Clone()
	b := out.Dim(0)
	for i := 0; i < b; i++ {
		row := out.RowSlice(i).Data()
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for j, v := range row {
			row[j] = math.Exp(v - max)
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}
