package nn

import (
	"math"

	"memlife/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward consumes and
// produces [B, D] batch tensors; Backward consumes the gradient with
// respect to the forward output and returns the gradient with respect to
// the forward input, accumulating parameter gradients along the way.
// Backward must be called after the Forward whose activations it needs.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dout *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	// OutputSize returns the per-sample output width given the
	// per-sample input width, so networks can be shape-checked at
	// construction time.
	OutputSize(inputSize int) int
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (l *ReLU) Name() string { return "relu" }

// Params implements Layer; activations are parameter-free.
func (l *ReLU) Params() []*Param { return nil }

// OutputSize implements Layer.
func (l *ReLU) OutputSize(in int) int { return in }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	if cap(l.mask) < len(d) {
		l.mask = make([]bool, len(d))
	}
	l.mask = l.mask[:len(d)]
	for i, v := range d {
		if v > 0 {
			l.mask[i] = true
		} else {
			l.mask[i] = false
			d[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := dout.Clone()
	d := dx.Data()
	for i := range d {
		if !l.mask[i] {
			d[i] = 0
		}
	}
	return dx
}

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (l *Tanh) Name() string { return "tanh" }

// Params implements Layer.
func (l *Tanh) Params() []*Param { return nil }

// OutputSize implements Layer.
func (l *Tanh) OutputSize(in int) int { return in }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out = x.Map(math.Tanh)
	return l.out
}

// Backward implements Layer.
func (l *Tanh) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := dout.Clone()
	o := l.out.Data()
	d := dx.Data()
	for i := range d {
		d[i] *= 1 - o[i]*o[i]
	}
	return dx
}

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (l *Sigmoid) Name() string { return "sigmoid" }

// Params implements Layer.
func (l *Sigmoid) Params() []*Param { return nil }

// OutputSize implements Layer.
func (l *Sigmoid) OutputSize(in int) int { return in }

// Forward implements Layer.
func (l *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.out = x.Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return l.out
}

// Backward implements Layer.
func (l *Sigmoid) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := dout.Clone()
	o := l.out.Data()
	d := dx.Data()
	for i := range d {
		d[i] *= o[i] * (1 - o[i])
	}
	return dx
}

// Flatten marks the transition from spatial to fully-connected layers.
// Because every layer already exchanges flat [B, D] tensors it is an
// identity at runtime, kept for architectural fidelity with the paper's
// network descriptions.
type Flatten struct{}

// NewFlatten returns a flatten marker layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (l *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// OutputSize implements Layer.
func (l *Flatten) OutputSize(in int) int { return in }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }

// Backward implements Layer.
func (l *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor { return dout }

// Dropout zeroes a fraction p of activations during training and scales
// the survivors by 1/(1-p) (inverted dropout), so inference needs no
// rescaling.
type Dropout struct {
	P    float64
	rng  *tensor.RNG
	keep []bool
}

// NewDropout returns a dropout layer with drop probability p in [0,1).
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (l *Dropout) Name() string { return "dropout" }

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// OutputSize implements Layer.
func (l *Dropout) OutputSize(in int) int { return in }

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.P == 0 {
		l.keep = nil
		return x
	}
	out := x.Clone()
	d := out.Data()
	if cap(l.keep) < len(d) {
		l.keep = make([]bool, len(d))
	}
	l.keep = l.keep[:len(d)]
	scale := 1 / (1 - l.P)
	for i := range d {
		if l.rng.Float64() < l.P {
			l.keep[i] = false
			d[i] = 0
		} else {
			l.keep[i] = true
			d[i] *= scale
		}
	}
	return out
}

// Backward implements Layer.
func (l *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.keep == nil {
		return dout
	}
	dx := dout.Clone()
	d := dx.Data()
	scale := 1 / (1 - l.P)
	for i := range d {
		if l.keep[i] {
			d[i] *= scale
		} else {
			d[i] = 0
		}
	}
	return dx
}
