package nn

import (
	"math"
	"testing"

	"memlife/internal/tensor"
)

// numericalGrad estimates d(loss)/d(theta[i]) by central differences,
// where loss is the softmax cross-entropy of net on (x, y).
func numericalGrad(net *Network, x *tensor.Tensor, y []int, theta *tensor.Tensor, i int) float64 {
	const eps = 1e-5
	orig := theta.Data()[i]
	theta.Data()[i] = orig + eps
	lp, _ := SoftmaxCrossEntropy(net.Forward(x, false), y)
	theta.Data()[i] = orig - eps
	lm, _ := SoftmaxCrossEntropy(net.Forward(x, false), y)
	theta.Data()[i] = orig
	return (lp - lm) / (2 * eps)
}

// checkGrads verifies every parameter gradient of net against finite
// differences on batch (x, y). Uses relative error with an absolute
// floor to tolerate tiny gradients.
func checkGrads(t *testing.T, net *Network, x *tensor.Tensor, y []int) {
	t.Helper()
	net.ZeroGrads()
	logits := net.Forward(x, false)
	_, dlogits := SoftmaxCrossEntropy(logits, y)
	net.Backward(dlogits)

	for _, p := range net.Params() {
		n := p.W.Size()
		stride := 1
		if n > 50 {
			stride = n / 50 // sample ~50 coordinates of big tensors
		}
		for i := 0; i < n; i += stride {
			got := p.Grad.Data()[i]
			want := numericalGrad(net, x, y, p.W, i)
			denom := math.Max(1e-6, math.Max(math.Abs(got), math.Abs(want)))
			if math.Abs(got-want)/denom > 1e-3 {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, i, got, want)
			}
		}
	}
}

func TestGradCheckDenseReLU(t *testing.T) {
	rng := tensor.NewRNG(11)
	net, err := NewMLP("m", []int{6, 5, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 6)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, net, x, []int{0, 1, 2, 1})
}

func TestGradCheckTanhSigmoid(t *testing.T) {
	rng := tensor.NewRNG(12)
	net := NewNetwork("acts", 4,
		NewDense("fc1", 4, 6, rng),
		NewTanh(),
		NewDense("fc2", 6, 5, rng),
		NewSigmoid(),
		NewDense("fc3", 5, 3, rng),
	)
	x := tensor.New(3, 4)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, net, x, []int{2, 0, 1})
}

func TestGradCheckConvPool(t *testing.T) {
	rng := tensor.NewRNG(13)
	convGeom := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	poolGeom := tensor.ConvGeom{InC: 3, InH: 6, InW: 6, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	net := NewNetwork("convnet", 2*6*6,
		NewConv2D("c1", convGeom, 3, rng),
		NewReLU(),
		NewMaxPool2D("p1", poolGeom),
		NewFlatten(),
		NewDense("fc", 3*3*3, 4, rng),
	)
	x := tensor.New(2, 2*6*6)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, net, x, []int{1, 3})
}

func TestGradCheckAvgPool(t *testing.T) {
	rng := tensor.NewRNG(14)
	convGeom := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	poolGeom := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	net := NewNetwork("avgnet", 16,
		NewConv2D("c1", convGeom, 2, rng),
		NewTanh(),
		NewAvgPool2D("p1", poolGeom),
		NewFlatten(),
		NewDense("fc", 8, 3, rng),
	)
	x := tensor.New(2, 16)
	rng.FillNormal(x, 0, 1)
	checkGrads(t, net, x, []int{0, 2})
}

func TestGradCheckInputGradient(t *testing.T) {
	rng := tensor.NewRNG(15)
	net, err := NewMLP("m", []int{5, 4, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 5)
	rng.FillNormal(x, 0, 1)
	y := []int{0, 2}

	net.ZeroGrads()
	_, dlogits := SoftmaxCrossEntropy(net.Forward(x, false), y)
	dx := net.Backward(dlogits)

	const eps = 1e-5
	for i := 0; i < x.Size(); i++ {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(net.Forward(x, false), y)
		x.Data()[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(net.Forward(x, false), y)
		x.Data()[i] = orig
		want := (lp - lm) / (2 * eps)
		got := dx.Data()[i]
		denom := math.Max(1e-6, math.Max(math.Abs(got), math.Abs(want)))
		if math.Abs(got-want)/denom > 1e-3 {
			t.Fatalf("input grad [%d]: analytic %g vs numeric %g", i, got, want)
		}
	}
}
