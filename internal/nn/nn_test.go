package nn

import (
	"math"
	"testing"

	"memlife/internal/tensor"
)

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 1, 4)
	out := l.Forward(x, true)
	want := []float64{0, 0, 2, 0}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("relu forward = %v, want %v", out.Data(), want)
		}
	}
	dout := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4)
	dx := l.Backward(dout)
	wantG := []float64{0, 0, 1, 0}
	for i, v := range wantG {
		if dx.Data()[i] != v {
			t.Fatalf("relu backward = %v, want %v", dx.Data(), wantG)
		}
	}
}

func TestTanhSigmoidRanges(t *testing.T) {
	x := tensor.FromSlice([]float64{-10, 0, 10}, 1, 3)
	th := NewTanh().Forward(x, false)
	if math.Abs(th.Data()[1]) > 1e-12 || th.Data()[0] > -0.999 || th.Data()[2] < 0.999 {
		t.Fatalf("tanh forward = %v", th.Data())
	}
	sg := NewSigmoid().Forward(x, false)
	if math.Abs(sg.Data()[1]-0.5) > 1e-12 || sg.Data()[0] > 0.001 || sg.Data()[2] < 0.999 {
		t.Fatalf("sigmoid forward = %v", sg.Data())
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewDense("fc", 2, 2, rng)
	l.Weight.W.CopyFrom(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	l.Bias.W.CopyFrom(tensor.FromSlice([]float64{10, 20}, 2))
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	out := l.Forward(x, false)
	// [1,1] @ [[1,2],[3,4]] + [10,20] = [14, 26]
	if out.Data()[0] != 14 || out.Data()[1] != 26 {
		t.Fatalf("dense forward = %v, want [14 26]", out.Data())
	}
}

func TestDenseBackwardAccumulatesGrads(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewDense("fc", 2, 1, rng)
	l.Weight.W.CopyFrom(tensor.FromSlice([]float64{1, 1}, 2, 1))
	x := tensor.FromSlice([]float64{2, 3}, 1, 2)
	l.Forward(x, true)
	dout := tensor.FromSlice([]float64{1}, 1, 1)
	l.Backward(dout)
	l.Backward(dout) // gradients accumulate across calls
	if l.Weight.Grad.Data()[0] != 4 || l.Weight.Grad.Data()[1] != 6 {
		t.Fatalf("accumulated dW = %v, want [4 6]", l.Weight.Grad.Data())
	}
	if l.Bias.Grad.Data()[0] != 2 {
		t.Fatalf("accumulated db = %v, want [2]", l.Bias.Grad.Data())
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	l := NewMaxPool2D("pool", g)
	x := tensor.FromSlice([]float64{1, 5, 3, 2}, 1, 4)
	out := l.Forward(x, true)
	if out.Dim(1) != 1 || out.Data()[0] != 5 {
		t.Fatalf("maxpool forward = %v, want [5]", out.Data())
	}
	dx := l.Backward(tensor.FromSlice([]float64{7}, 1, 1))
	want := []float64{0, 7, 0, 0}
	for i, v := range want {
		if dx.Data()[i] != v {
			t.Fatalf("maxpool backward = %v, want %v", dx.Data(), want)
		}
	}
}

func TestAvgPoolForwardBackward(t *testing.T) {
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	l := NewAvgPool2D("pool", g)
	x := tensor.FromSlice([]float64{1, 5, 3, 3}, 1, 4)
	out := l.Forward(x, true)
	if out.Data()[0] != 3 {
		t.Fatalf("avgpool forward = %v, want [3]", out.Data())
	}
	dx := l.Backward(tensor.FromSlice([]float64{4}, 1, 1))
	for _, v := range dx.Data() {
		if v != 1 {
			t.Fatalf("avgpool backward = %v, want all 1", dx.Data())
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewDropout(0.5, rng)
	x := tensor.New(1, 1000)
	x.Fill(1)
	evalOut := l.Forward(x, false)
	if evalOut.Sum() != 1000 {
		t.Fatal("dropout must be identity at eval time")
	}
	trainOut := l.Forward(x, true)
	zeros := 0
	for _, v := range trainOut.Data() {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("survivors must be scaled by 1/(1-p)=2, got %g", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d of 1000, want ~500", zeros)
	}
	// Backward mirrors the same mask.
	dout := tensor.New(1, 1000)
	dout.Fill(1)
	dx := l.Backward(dout)
	for i, v := range trainOut.Data() {
		if (v == 0) != (dx.Data()[i] == 0) {
			t.Fatal("dropout backward mask must match forward mask")
		}
	}
}

func TestConvForwardMatchesDirect(t *testing.T) {
	rng := tensor.NewRNG(9)
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	l := NewConv2D("c", g, 3, rng)
	x := tensor.New(2, g.InC*g.InH*g.InW)
	rng.FillNormal(x, 0, 1)
	out := l.Forward(x, false)

	for s := 0; s < 2; s++ {
		img := x.RowSlice(s)
		for oc := 0; oc < 3; oc++ {
			for oy := 0; oy < 4; oy++ {
				for ox := 0; ox < 4; ox++ {
					sum := l.Bias.W.Data()[oc]
					for c := 0; c < g.InC; c++ {
						for ky := 0; ky < 3; ky++ {
							for kx := 0; kx < 3; kx++ {
								iy, ix := oy-1+ky, ox-1+kx
								if iy < 0 || iy >= 4 || ix < 0 || ix >= 4 {
									continue
								}
								wIdx := (c*3+ky)*3 + kx
								sum += img.Data()[c*16+iy*4+ix] * l.Weight.W.At(wIdx, oc)
							}
						}
					}
					got := out.At(s, oc*16+oy*4+ox)
					if math.Abs(got-sum) > 1e-9 {
						t.Fatalf("conv forward mismatch at s=%d oc=%d (%d,%d): %g vs %g", s, oc, oy, ox, got, sum)
					}
				}
			}
		}
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	logits := tensor.New(2, 4) // all-zero logits -> uniform distribution
	loss, d := SoftmaxCrossEntropy(logits, []int{0, 3})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("uniform CE loss = %g, want ln4 = %g", loss, want)
	}
	// Gradient row 0: (1/4 - 1)/2 at label, 1/4/2 elsewhere.
	if math.Abs(d.At(0, 0)-(0.25-1)/2) > 1e-12 || math.Abs(d.At(0, 1)-0.125) > 1e-12 {
		t.Fatalf("CE gradient = %v", d.Data())
	}
	// Gradient rows must sum to zero.
	for i := 0; i < 2; i++ {
		if math.Abs(d.RowSlice(i).Sum()) > 1e-12 {
			t.Fatal("softmax CE gradient rows must sum to 0")
		}
	}
}

func TestSoftmaxCrossEntropyExtremeLogitsFinite(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, -1000}, 1, 2)
	loss, d := SoftmaxCrossEntropy(logits, []int{1})
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Fatalf("loss must stay finite on extreme logits, got %g", loss)
	}
	for _, v := range d.Data() {
		if math.IsNaN(v) {
			t.Fatal("gradient must stay finite on extreme logits")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(4)
	logits := tensor.New(5, 7)
	rng.FillNormal(logits, 0, 3)
	p := Softmax(logits)
	for i := 0; i < 5; i++ {
		if math.Abs(p.RowSlice(i).Sum()-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %g", i, p.RowSlice(i).Sum())
		}
		mn, _ := p.RowSlice(i).MinMax()
		if mn < 0 {
			t.Fatal("softmax must be non-negative")
		}
	}
}

func TestNetworkShapeCheckPanicsOnMismatch(t *testing.T) {
	rng := tensor.NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	NewNetwork("bad", 10,
		NewDense("fc1", 10, 5, rng),
		NewDense("fc2", 6, 2, rng), // 5 != 6
	)
}

func TestNetworkPredictAndAccuracy(t *testing.T) {
	rng := tensor.NewRNG(1)
	net, err := NewMLP("m", []int{2, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Identity-ish weights: class = argmax of input.
	p := net.Params()[0]
	p.W.CopyFrom(tensor.FromSlice([]float64{1, 0, 0, 1}, 2, 2))
	x := tensor.FromSlice([]float64{3, 1, 0, 5}, 2, 2)
	pred := net.Predict(x)
	if pred[0] != 0 || pred[1] != 1 {
		t.Fatalf("predict = %v, want [0 1]", pred)
	}
	if acc := net.Accuracy(x, []int{0, 0}); acc != 0.5 {
		t.Fatalf("accuracy = %g, want 0.5", acc)
	}
}

func TestWeightLayersKinds(t *testing.T) {
	rng := tensor.NewRNG(1)
	net, err := NewLeNet5(LeNetConfig{InC: 3, H: 16, W: 16, Classes: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	wl := net.WeightLayers()
	if len(wl) != 5 {
		t.Fatalf("LeNet-5 has %d weight layers, want 5 (2 conv + 3 fc)", len(wl))
	}
	wantKinds := []LayerKind{LayerConv, LayerConv, LayerFC, LayerFC, LayerFC}
	for i, w := range wl {
		if w.Kind != wantKinds[i] {
			t.Fatalf("weight layer %d kind = %v, want %v", i, w.Kind, wantKinds[i])
		}
	}
}

func TestLeNetForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	net, err := NewLeNet5(LeNetConfig{InC: 3, H: 16, W: 16, Classes: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3*16*16)
	rng.FillNormal(x, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(0) != 4 || out.Dim(1) != 10 {
		t.Fatalf("LeNet output shape = %v, want [4 10]", out.Shape())
	}
	if net.OutputSize() != 10 {
		t.Fatalf("OutputSize = %d, want 10", net.OutputSize())
	}
}

func TestVGG16StructureAndShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	net, err := NewVGG16(VGGConfig{InC: 3, H: 32, W: 32, Classes: 100, WidthMult: 0.0625, FCWidth: 32}, rng)
	if err != nil {
		t.Fatal(err)
	}
	wl := net.WeightLayers()
	if len(wl) != 16 {
		t.Fatalf("VGG-16 has %d weight layers, want 16 (13 conv + 3 fc)", len(wl))
	}
	convs, fcs := 0, 0
	for _, w := range wl {
		if w.Kind == LayerConv {
			convs++
		} else {
			fcs++
		}
	}
	if convs != 13 || fcs != 3 {
		t.Fatalf("VGG-16 layer mix = %d conv / %d fc, want 13/3", convs, fcs)
	}
	x := tensor.New(2, 3*32*32)
	rng.FillNormal(x, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(1) != 100 {
		t.Fatalf("VGG output width = %d, want 100", out.Dim(1))
	}
}

func TestBuilderConfigValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewLeNet5(LeNetConfig{InC: 3, H: 15, W: 16, Classes: 10}, rng); err == nil {
		t.Fatal("LeNet must reject non-divisible-by-4 sizes")
	}
	if _, err := NewLeNet5(LeNetConfig{InC: 3, H: 16, W: 16, Classes: 1}, rng); err == nil {
		t.Fatal("LeNet must reject < 2 classes")
	}
	if _, err := NewVGG16(VGGConfig{InC: 3, H: 16, W: 16, Classes: 10, WidthMult: 1, FCWidth: 16}, rng); err == nil {
		t.Fatal("VGG must reject sizes not divisible by 32")
	}
	if _, err := NewVGG16(VGGConfig{InC: 3, H: 32, W: 32, Classes: 10, WidthMult: 0, FCWidth: 16}, rng); err == nil {
		t.Fatal("VGG must reject zero width multiplier")
	}
	if _, err := NewMLP("m", []int{5}, rng); err == nil {
		t.Fatal("MLP must reject single-width spec")
	}
}
