package server

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"memlife/internal/retry"
)

// Store layout inside one store directory (see DESIGN.md "Service"):
//
//	LOCK                  flock single-writer guard
//	jobs.jsonl            durable job journal (append-only, fsync/record)
//	results/<key>.json    finished result documents (atomic rename)
//	work/<key>.ckpt.jsonl per-job campaign checkpoints (crash resume)
const (
	resultsDirName = "results"
	workDirName    = "work"
	queueFileName  = "jobs.jsonl"
)

// ErrNotFound reports a result key with no stored document.
var ErrNotFound = errors.New("server: result not found")

// storeRetry is the transient-I/O budget of store writes (same shape
// as the campaign journal's: short, capped, deterministically jittered).
var storeRetry = retry.Policy{
	MaxAttempts: 3,
	BaseDelay:   2 * time.Millisecond,
	MaxDelay:    20 * time.Millisecond,
	Jitter:      0.5,
	Seed:        2,
}

// store is the content-addressed result store: one immutable JSON
// document per job key (spec.JobFingerprint). Documents are written
// via temp-file + fsync + rename, so readers — and a crash at any
// instant — observe either the whole document or nothing; a duplicate
// Put of the same key is a no-op overwrite with identical bytes.
type store struct {
	dir string
}

// openStore prepares the directory tree of a store rooted at dir.
func openStore(dir string) (*store, error) {
	for _, d := range []string{dir, filepath.Join(dir, resultsDirName), filepath.Join(dir, workDirName)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("server: create store dir: %w", err)
		}
	}
	return &store{dir: dir}, nil
}

// validKey reports whether key is a well-formed job fingerprint
// (lowercase hex, optionally "-s<seeds>"), rejecting anything that
// could escape the results directory when spliced into a path.
func validKey(key string) bool {
	if len(key) == 0 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		default:
			return false
		}
	}
	return true
}

func (st *store) resultPath(key string) string {
	return filepath.Join(st.dir, resultsDirName, key+".json")
}

// ckptPath is the campaign checkpoint journal a running job writes.
func (st *store) ckptPath(key string) string {
	return filepath.Join(st.dir, workDirName, key+".ckpt.jsonl")
}

// queuePath is the durable job journal.
func (st *store) queuePath() string {
	return filepath.Join(st.dir, queueFileName)
}

// Get returns the stored result document for key, or ErrNotFound.
func (st *store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("server: invalid result key %q", key)
	}
	b, err := os.ReadFile(st.resultPath(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("server: read result %s: %w", key, err)
	}
	return b, nil
}

// Has reports whether key has a stored result.
func (st *store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(st.resultPath(key))
	return err == nil
}

// Put durably stores data under key: write to a temp file in the
// results directory, fsync, rename into place, fsync the directory.
// Transient failures are retried under storeRetry; the temp file is
// removed on every failure path, so a crashed or failed Put never
// leaves a partial document where Get could see it.
func (st *store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("server: invalid result key %q", key)
	}
	dir := filepath.Join(st.dir, resultsDirName)
	return storeRetry.Do(context.Background(), func() error {
		tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
		if err != nil {
			return err
		}
		name := tmp.Name()
		fail := func(err error) error {
			tmp.Close()
			os.Remove(name)
			return err
		}
		if _, err := tmp.Write(data); err != nil {
			return fail(err)
		}
		if err := tmp.Sync(); err != nil {
			return fail(err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(name)
			return err
		}
		if err := os.Rename(name, st.resultPath(key)); err != nil {
			os.Remove(name)
			return err
		}
		return syncDir(dir)
	})
}

// Keys lists the stored result keys, sorted.
func (st *store) Keys() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(st.dir, resultsDirName))
	if err != nil {
		return nil, fmt.Errorf("server: list results: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(keys)
	return keys, nil
}

// RemoveCkpt deletes a finished job's checkpoint journal (missing is
// fine: single-shard jobs may never have written one).
func (st *store) RemoveCkpt(key string) error {
	err := os.Remove(st.ckptPath(key))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("server: remove checkpoint %s: %w", key, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
