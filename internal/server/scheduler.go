package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"memlife/internal/retry"
)

// Runner executes one job and returns its result document (the bytes
// the store will serve). Runners must be deterministic functions of
// the job — the crash-safety contract "resumed result is byte-identical
// to an uninterrupted run" is only as strong as this property — and
// must return promptly once ctx is cancelled (a drain), leaving any
// partial progress in the job's checkpoint journal.
type Runner func(ctx context.Context, job Job) ([]byte, error)

// scheduler drives the worker pool: dequeue, execute under the retry
// budget, settle (store + journal). Drain is two-phase: first stop
// dequeuing and give in-flight jobs a grace period to finish, then
// cancel their contexts so they checkpoint and return.
type scheduler struct {
	q       *queue
	st      *store
	run     Runner
	workers int
	pol     retry.Policy
	tel     *serverTel
	log     io.Writer

	stop       chan struct{} // closed: workers exit once idle
	jobsCtx    context.Context
	cancelJobs context.CancelFunc
	wg         sync.WaitGroup
}

func newScheduler(q *queue, st *store, run Runner, workers int, pol retry.Policy, tel *serverTel, log io.Writer) *scheduler {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &scheduler{
		q: q, st: st, run: run, workers: workers, pol: pol, tel: tel, log: log,
		stop: make(chan struct{}), jobsCtx: ctx, cancelJobs: cancel,
	}
}

// Start launches the worker pool.
func (s *scheduler) Start() {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job, ok := s.q.Dequeue(s.stop)
				if !ok {
					return
				}
				s.tel.observeDepth(s.q)
				s.execute(job)
				s.tel.observeDepth(s.q)
			}
		}()
	}
}

// execute runs one dequeued job to a terminal state (or requeues it on
// drain). Settle order is store-then-journal: a crash between Put and
// MarkDone leaves the job queued with its result already stored, which
// the recovery fast path below turns into an instant MarkDone on the
// next boot — never a lost result, never a re-run of finished work.
func (s *scheduler) execute(job Job) {
	if s.st.Has(job.ID) {
		// Recovery fast path: result landed before a crash cut off the
		// terminal journal record.
		s.settleDone(job, 0)
		return
	}
	t0 := time.Now()
	attempt := 0
	var data []byte
	err := s.pol.Do(s.jobsCtx, func() error {
		attempt++
		s.q.NoteAttempt(job.ID)
		if attempt > 1 {
			s.tel.jobsRetried.Inc()
			s.logf("job %s: retrying (attempt %d/%d)", job.ID, attempt, s.pol.Attempts())
		}
		var rerr error
		data, rerr = s.run(s.jobsCtx, job)
		return rerr
	})
	if err != nil {
		if s.jobsCtx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Drain, not failure: the job's submit record is durable and
			// its checkpoint holds completed shards; requeue in memory so
			// status reads "queued", and let the next boot resume it.
			s.q.Requeue(job.ID)
			s.logf("job %s: drained to checkpoint", job.ID)
			return
		}
		s.settleFailed(job, err)
		return
	}
	if err := s.st.Put(job.ID, data); err != nil {
		s.settleFailed(job, fmt.Errorf("storing result: %w", err))
		return
	}
	s.settleDone(job, time.Since(t0))
}

func (s *scheduler) settleDone(job Job, elapsed time.Duration) {
	if err := s.q.MarkDone(job.ID); err != nil {
		// The result is stored; only the journal record is missing. The
		// recovery fast path repairs this on the next boot.
		s.logf("job %s: result stored but journal append failed: %v", job.ID, err)
	}
	if err := s.st.RemoveCkpt(job.ID); err != nil {
		s.logf("job %s: %v", job.ID, err)
	}
	s.tel.jobsDone.Inc()
	if elapsed > 0 {
		s.tel.jobNs.Observe(float64(elapsed))
	}
	s.logf("job %s: done", job.ID)
}

func (s *scheduler) settleFailed(job Job, cause error) {
	if err := s.q.MarkFailed(job.ID, cause.Error()); err != nil {
		s.logf("job %s: failure journal append failed: %v", job.ID, err)
	}
	s.tel.jobsFailed.Inc()
	s.logf("job %s: failed: %v", job.ID, cause)
}

// Drain stops the pool gracefully: no new dequeues, in-flight jobs get
// up to grace to finish, then their contexts are cancelled (they
// checkpoint and requeue). Returns once every worker has exited.
func (s *scheduler) Drain(grace time.Duration) {
	close(s.stop)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
	s.cancelJobs()
	<-done
}

func (s *scheduler) logf(format string, args ...any) {
	if s.log != nil {
		fmt.Fprintf(s.log, "memlife serve: "+format+"\n", args...)
	}
}
