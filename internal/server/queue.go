package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"memlife/internal/campaign"
)

// JobState is the lifecycle state of a submitted job.
//
// The durable state machine (journal ops in parentheses):
//
//	          (submit)            (done)
//	queued ───────────► running ─────────► done
//	  ▲                    │   (failed)
//	  │   crash / drain    ├─────────────► failed ──(submit)──► queued
//	  └────────────────────┘
//
// Only submit/done/failed transitions are journaled; "running" is
// in-memory, so a crash reverts every in-flight job to queued and the
// next boot re-runs it (resuming its campaign checkpoint).
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one accepted unit of work: a resolved scenario spec plus its
// Monte Carlo sample size, identified by the content-addressed key
// spec.JobFingerprint(seeds).
type Job struct {
	// ID is the job's content-addressed key (and its result store key).
	ID string `json:"id"`
	// Spec is the canonical resolved scenario spec.
	Spec json.RawMessage `json:"spec"`
	// Seeds is the Monte Carlo sample size (>= 1).
	Seeds int `json:"seeds"`
	// State is the current lifecycle state.
	State JobState `json:"state"`
	// Error holds the terminal failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Attempts counts execution attempts (including retries).
	Attempts int `json:"attempts,omitempty"`
}

// queueRecord is one line of the job journal.
type queueRecord struct {
	Op    string          `json:"op"` // "submit", "done" or "failed"
	ID    string          `json:"id"`
	Seeds int             `json:"seeds,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	Error string          `json:"error,omitempty"`
}

// errQueueFull rejects a submit when the bounded queue is at capacity;
// the API layer translates it into 429 + Retry-After.
var errQueueFull = errors.New("server: job queue is full")

// queue is the durable bounded job queue. Accepted jobs are journaled
// (write + fsync) *before* Submit returns, so an ACKed job survives a
// SIGKILL at any point; terminal transitions (done/failed) are
// journaled the same way. Opening a queue replays the journal: jobs
// with a submit but no terminal record — including jobs that were
// mid-run when the process died — come back as queued.
type queue struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	pending []string // FIFO of queued job ids
	cap     int
	f       *os.File
	notify  chan struct{}
}

// openQueue replays the journal at path and opens it for appending.
// A torn final line (killed mid-append) is discarded: the submit it
// recorded was never ACKed, the terminal transition it recorded will
// simply re-run its job.
func openQueue(path string, capacity int) (*queue, error) {
	q := &queue{
		jobs:   make(map[string]*Job),
		cap:    capacity,
		notify: make(chan struct{}, 1),
	}
	err := campaign.ScanJournal(path, func(line int, raw []byte) error {
		var rec queueRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("server: job journal %s line %d: %w", path, line, err)
		}
		return q.replay(rec, path, line)
	})
	if err != nil && !errors.Is(err, campaign.ErrTornTail) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open job journal: %w", err)
	}
	q.f = f
	return q, nil
}

// replay applies one journal record to the in-memory state, in journal
// order: submit enqueues (or re-enqueues a terminal job), done/failed
// settle. Unknown ops and terminal records for unknown jobs are
// corruption — the journal is written only by this package.
func (q *queue) replay(rec queueRecord, path string, line int) error {
	switch rec.Op {
	case "submit":
		if !validKey(rec.ID) || rec.Seeds < 1 || len(rec.Spec) == 0 {
			return fmt.Errorf("server: job journal %s line %d: malformed submit record", path, line)
		}
		j, ok := q.jobs[rec.ID]
		if ok && (j.State == JobQueued || j.State == JobRunning) {
			return nil // duplicate submit of a live job: no-op
		}
		q.jobs[rec.ID] = &Job{ID: rec.ID, Spec: rec.Spec, Seeds: rec.Seeds, State: JobQueued}
		q.pending = append(q.pending, rec.ID)
		return nil
	case "done", "failed":
		j, ok := q.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("server: job journal %s line %d: %s for unknown job %s", path, line, rec.Op, rec.ID)
		}
		q.unqueue(rec.ID)
		if rec.Op == "done" {
			j.State = JobDone
			j.Error = ""
		} else {
			j.State = JobFailed
			j.Error = rec.Error
		}
		return nil
	default:
		return fmt.Errorf("server: job journal %s line %d: unknown op %q", path, line, rec.Op)
	}
}

// unqueue removes id from the pending FIFO (no-op when absent).
func (q *queue) unqueue(id string) {
	for i, p := range q.pending {
		if p == id {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return
		}
	}
}

// journal appends one record durably; callers hold q.mu.
func (q *queue) journal(rec queueRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: journal job %s: %w", rec.ID, err)
	}
	if err := campaign.AppendJournalLine(q.f, append(b, '\n')); err != nil {
		return fmt.Errorf("server: journal job %s: %w", rec.ID, err)
	}
	return nil
}

// Submit accepts (or dedupes) a job. The returned snapshot reflects
// the job after the call; created reports whether a new queue entry
// was made (false: the submission deduped onto a live or settled job).
// New entries are journaled and fsynced before Submit returns — the
// durable-before-ACK contract.
func (q *queue) Submit(id string, spec json.RawMessage, seeds int) (job Job, created bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok {
		switch j.State {
		case JobQueued, JobRunning, JobDone:
			// Live or already served: dedupe, nothing to journal.
			return *j, false, nil
		case JobFailed:
			// Terminal failure: an explicit resubmit re-queues it.
		}
	}
	if q.liveCount() >= q.cap {
		return Job{}, false, errQueueFull
	}
	rec := queueRecord{Op: "submit", ID: id, Seeds: seeds, Spec: spec}
	if err := q.journal(rec); err != nil {
		return Job{}, false, err
	}
	j := &Job{ID: id, Spec: spec, Seeds: seeds, State: JobQueued}
	q.jobs[id] = j
	q.pending = append(q.pending, id)
	q.wake()
	return *j, true, nil
}

// liveCount is the number of jobs consuming queue capacity; callers
// hold q.mu.
func (q *queue) liveCount() int {
	n := 0
	for _, j := range q.jobs {
		if j.State == JobQueued || j.State == JobRunning {
			n++
		}
	}
	return n
}

func (q *queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Dequeue pops the oldest queued job and marks it running, blocking
// until one is available or stop closes. ok=false means the queue is
// stopping. A closed stop wins over pending work — a draining worker
// must not pick up the very job it just requeued.
func (q *queue) Dequeue(stop <-chan struct{}) (Job, bool) {
	for {
		select {
		case <-stop:
			return Job{}, false
		default:
		}
		q.mu.Lock()
		if len(q.pending) > 0 {
			id := q.pending[0]
			q.pending = q.pending[1:]
			j := q.jobs[id]
			j.State = JobRunning
			job := *j
			q.mu.Unlock()
			return job, true
		}
		q.mu.Unlock()
		select {
		case <-q.notify:
		case <-stop:
			return Job{}, false
		}
	}
}

// MarkDone settles a job as done, journaling the transition durably.
func (q *queue) MarkDone(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.journal(queueRecord{Op: "done", ID: id}); err != nil {
		return err
	}
	if j, ok := q.jobs[id]; ok {
		j.State = JobDone
		j.Error = ""
	}
	return nil
}

// MarkFailed settles a job as failed (retry budget exhausted),
// journaling the transition durably.
func (q *queue) MarkFailed(id, msg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.journal(queueRecord{Op: "failed", ID: id, Error: msg}); err != nil {
		return err
	}
	if j, ok := q.jobs[id]; ok {
		j.State = JobFailed
		j.Error = msg
	}
	return nil
}

// Requeue puts a drained in-flight job back at the head of the queue,
// in memory only: its submit record is already durable, so after a
// restart it would be queued anyway — this mirrors that state without
// another journal write.
func (q *queue) Requeue(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok || j.State != JobRunning {
		return
	}
	j.State = JobQueued
	q.pending = append([]string{id}, q.pending...)
	q.wake()
}

// NoteAttempt bumps a job's execution-attempt counter (display
// bookkeeping; never journaled).
func (q *queue) NoteAttempt(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok {
		j.Attempts++
	}
}

// Get returns a snapshot of one job.
func (q *queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every known job, unordered.
func (q *queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, *j)
	}
	return out
}

// Depth returns (queued, running) counts for telemetry.
func (q *queue) Depth() (queued, running int) {
	queued, running, _, _ = q.CountsByState()
	return
}

// CountsByState returns how many known jobs sit in each lifecycle
// state. Unlike the server/jobs_done and server/jobs_failed event
// counters, these reflect the current job table — including terminal
// states replayed from the journal at startup.
func (q *queue) CountsByState() (queued, running, done, failed int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, j := range q.jobs {
		switch j.State {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		case JobDone:
			done++
		case JobFailed:
			failed++
		}
	}
	return
}

// Close closes the journal file.
func (q *queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.f.Close()
}
