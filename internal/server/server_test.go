package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memlife/internal/campaign"
	"memlife/internal/retry"
)

// fastRetry keeps scheduler retries out of test wall-clock.
var fastRetry = retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: 0, Seed: 1}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Retry == (retry.Policy{}) {
		cfg.Retry = fastRetry
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Drain() })
	return srv
}

// instantRunner settles every job immediately with a valid result doc.
func instantRunner(calls *atomic.Int32) Runner {
	return func(_ context.Context, job Job) ([]byte, error) {
		if calls != nil {
			calls.Add(1)
		}
		return marshalResultDoc(ResultDoc{ID: job.ID, Seeds: job.Seeds, Spec: job.Spec, Result: json.RawMessage(`{"ok":true}`)})
	}
}

// stuckRunner blocks every job until release closes (or the job context
// is cancelled), signalling each start on started.
func stuckRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, job Job) ([]byte, error) {
		select {
		case started <- job.ID:
		default:
		}
		select {
		case <-release:
			return marshalResultDoc(ResultDoc{ID: job.ID, Seeds: job.Seeds, Spec: job.Spec, Result: json.RawMessage(`{"ok":true}`)})
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func submit(t *testing.T, addr, body string, seeds int) (int, jobEnvelope, http.Header) {
	t.Helper()
	url := fmt.Sprintf("http://%s/v1/jobs?seeds=%d", addr, seeds)
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var env jobEnvelope
	if resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode, env, resp.Header
}

func waitState(t *testing.T, addr, id string, want JobState) jobEnvelope {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s", addr, id))
		if err != nil {
			t.Fatal(err)
		}
		var env jobEnvelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err == nil && env.State == string(want) {
			return env
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (last: %+v)", id, want, env)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetchResult(t *testing.T, addr, id string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/results/%s", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result %s = %d", id, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertNoTempFiles walks a store directory asserting no in-progress
// write artifacts survived.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("partial file left behind: %s", path)
		}
		return nil
	})
}

func TestServerSubmitToDoneAndCacheHit(t *testing.T) {
	var calls atomic.Int32
	srv := startServer(t, Config{Dir: t.TempDir(), Runner: instantRunner(&calls)})

	code, env, _ := submit(t, srv.Addr(), `{}`, 1)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	if env.Cached {
		t.Fatal("first submit must not be a cache hit")
	}
	done := waitState(t, srv.Addr(), env.ID, JobDone)
	if done.ResultURL == "" {
		t.Fatal("done job must advertise a result URL")
	}
	var doc ResultDoc
	if err := json.Unmarshal(fetchResult(t, srv.Addr(), env.ID), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != env.ID {
		t.Fatalf("result doc id = %q, want %q", doc.ID, env.ID)
	}

	// An identical submission is served from the store: 200, cached,
	// and the runner is never invoked again.
	code, env2, _ := submit(t, srv.Addr(), `{}`, 1)
	if code != http.StatusOK || !env2.Cached {
		t.Fatalf("duplicate submit = %d cached=%v, want 200 cached", code, env2.Cached)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner ran %d times, want 1 (duplicate must not re-simulate)", got)
	}
}

func TestServerDedupesLiveDuplicate(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	srv := startServer(t, Config{Dir: t.TempDir(), Runner: stuckRunner(started, release)})

	code, env, _ := submit(t, srv.Addr(), `{}`, 1)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	<-started
	// Same spec while in flight: dedupes onto the live job, no new entry.
	code, env2, _ := submit(t, srv.Addr(), `{}`, 1)
	if code != http.StatusAccepted || env2.ID != env.ID || env2.Cached {
		t.Fatalf("live duplicate = %d id=%s cached=%v, want 202 dedupe onto %s", code, env2.ID, env2.Cached, env.ID)
	}
	close(release)
	waitState(t, srv.Addr(), env.ID, JobDone)
}

func TestServerBackpressure429(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	srv := startServer(t, Config{Dir: t.TempDir(), QueueCap: 1, JobWorkers: 1, Runner: stuckRunner(started, release)})

	code, env, _ := submit(t, srv.Addr(), `{}`, 1)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	<-started
	// The single capacity slot is occupied by the running job: a
	// *different* job must be pushed back with 429 + Retry-After.
	code, _, hdr := submit(t, srv.Addr(), `{}`, 2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit over capacity = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After hint")
	}
	// Draining the queue frees the slot.
	close(release)
	waitState(t, srv.Addr(), env.ID, JobDone)
	if code, _, _ := submit(t, srv.Addr(), `{}`, 2); code != http.StatusAccepted {
		t.Fatalf("submit after drain = %d, want 202", code)
	}
}

func TestServerRejectsInvalidSubmissions(t *testing.T) {
	srv := startServer(t, Config{Dir: t.TempDir(), Runner: instantRunner(nil)})
	post := func(url, body string) int {
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	base := "http://" + srv.Addr()
	if code := post(base+"/v1/jobs", `{"fixture":"no-such-fixture"}`); code != http.StatusBadRequest {
		t.Errorf("invalid spec = %d, want 400", code)
	}
	if code := post(base+"/v1/jobs?seeds=0", `{}`); code != http.StatusBadRequest {
		t.Errorf("seeds=0 = %d, want 400", code)
	}
	if code := post(base+"/v1/jobs?seeds=banana", `{}`); code != http.StatusBadRequest {
		t.Errorf("seeds=banana = %d, want 400", code)
	}
	if code := post(base+"/v1/jobs", `{"run":`); code != http.StatusBadRequest {
		t.Errorf("truncated JSON = %d, want 400", code)
	}
	resp, err := http.Get(base + "/v1/jobs/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestServerRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	flaky := func(_ context.Context, job Job) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, fmt.Errorf("transient I/O hiccup")
		}
		return marshalResultDoc(ResultDoc{ID: job.ID, Seeds: job.Seeds, Spec: job.Spec, Result: json.RawMessage(`{"ok":true}`)})
	}
	srv := startServer(t, Config{Dir: t.TempDir(), Runner: flaky})
	_, env, _ := submit(t, srv.Addr(), `{}`, 1)
	done := waitState(t, srv.Addr(), env.ID, JobDone)
	if done.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two retries then success)", done.Attempts)
	}
}

func TestServerPermanentFailureSkipsRetries(t *testing.T) {
	var calls atomic.Int32
	broken := func(context.Context, Job) ([]byte, error) {
		calls.Add(1)
		return nil, retry.Permanent(fmt.Errorf("spec cannot run"))
	}
	srv := startServer(t, Config{Dir: t.TempDir(), Runner: broken})
	_, env, _ := submit(t, srv.Addr(), `{}`, 1)
	failed := waitState(t, srv.Addr(), env.ID, JobFailed)
	if calls.Load() != 1 {
		t.Fatalf("permanent failure ran %d times, want 1", calls.Load())
	}
	if !strings.Contains(failed.Error, "spec cannot run") {
		t.Fatalf("failed job error = %q, want the cause", failed.Error)
	}
	// An explicit resubmit of a failed job re-queues it.
	code, env2, _ := submit(t, srv.Addr(), `{}`, 1)
	if code != http.StatusAccepted || env2.Cached {
		t.Fatalf("resubmit of failed job = %d cached=%v, want 202 fresh attempt", code, env2.Cached)
	}
}

func TestServerRetryBudgetExhaustionFails(t *testing.T) {
	always := func(context.Context, Job) ([]byte, error) {
		return nil, fmt.Errorf("still broken")
	}
	srv := startServer(t, Config{Dir: t.TempDir(), Runner: always})
	_, env, _ := submit(t, srv.Addr(), `{}`, 1)
	failed := waitState(t, srv.Addr(), env.ID, JobFailed)
	if failed.Attempts != fastRetry.MaxAttempts {
		t.Fatalf("attempts = %d, want the full budget %d", failed.Attempts, fastRetry.MaxAttempts)
	}
}

// TestServerDrainRequeuesInFlight: a drain that outlives its grace
// cancels in-flight jobs; they checkpoint, requeue, and the store holds
// no partial files. A fresh daemon over the same directory finishes the
// work untouched by hands.
func TestServerDrainRequeuesInFlight(t *testing.T) {
	dir := t.TempDir()
	started := make(chan string, 1)
	release := make(chan struct{}) // never closed: the job can only end by cancellation
	srv := startServer(t, Config{Dir: dir, DrainGrace: 20 * time.Millisecond, Runner: stuckRunner(started, release)})

	_, env, _ := submit(t, srv.Addr(), `{}`, 1)
	<-started
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	assertNoTempFiles(t, dir)
	if j, ok := srv.queue.Get(env.ID); !ok || j.State != JobQueued {
		t.Fatalf("drained in-flight job = %+v, want queued", j)
	}

	// Takeover: the lock is free, the journal replays, the job runs.
	srv2 := startServer(t, Config{Dir: dir, Runner: instantRunner(nil)})
	waitState(t, srv2.Addr(), env.ID, JobDone)
}

func TestServerHealthzFlipsWhileDraining(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Addr: "127.0.0.1:0", Runner: instantRunner(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.releaseAll()
	h := srv.handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz while serving = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}
	close(srv.draining)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz while draining = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
}

func TestServerSecondDaemonOnSameStoreFailsFast(t *testing.T) {
	dir := t.TempDir()
	srv := startServer(t, Config{Dir: dir, Runner: instantRunner(nil)})
	if _, err := New(Config{Dir: dir, Addr: "127.0.0.1:0", Runner: instantRunner(nil)}); err == nil {
		t.Fatal("second daemon on a locked store must fail")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("second daemon error = %v, want the lock explanation", err)
	}
	srv.Drain()
	srv2, err := New(Config{Dir: dir, Addr: "127.0.0.1:0", Runner: instantRunner(nil)})
	if err != nil {
		t.Fatalf("daemon after drain must acquire the lock: %v", err)
	}
	srv2.releaseAll()
}

// campaignRunner is a cheap production-shaped Runner: it runs the job
// as a real checkpointed campaign (like scenarioRunner) but with a stub
// per-shard metric that is a pure function of the derived seed. resolve
// supplies the shard body so tests can gate individual shards.
func campaignRunner(dir string, resolve campaign.Resolver) Runner {
	return func(ctx context.Context, job Job) ([]byte, error) {
		cs := campaign.Spec{Experiments: []string{"stub"}, Seeds: job.Seeds, BaseSeed: 7, ConfigHash: job.ID}
		cfg := campaign.Config{
			Workers:        1,
			Resolve:        resolve,
			CheckpointPath: filepath.Join(dir, workDirName, job.ID+".ckpt.jsonl"),
			Resume:         true,
		}
		res, err := campaign.Run(ctx, cs, cfg)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return marshalResultDoc(ResultDoc{
			ID:     job.ID,
			Seeds:  job.Seeds,
			Spec:   job.Spec,
			Result: json.RawMessage(bytes.TrimRight(buf.Bytes(), "\n")),
		})
	}
}

// stubShards returns a Resolver whose shard metrics depend only on the
// derived seed, counting executions in ran. When gateAfter >= 0, every
// execution past that count blocks until cancellation — pinning a shard
// in flight so a drain interrupts the campaign mid-way.
func stubShards(ran *atomic.Int32, gateAfter int32, blocked chan<- struct{}) campaign.Resolver {
	var once sync.Once
	return func(string) (campaign.RunnerFunc, bool) {
		return func(ctx context.Context, sh campaign.Shard, _ io.Writer) (campaign.Metrics, error) {
			if gateAfter >= 0 && ran.Load() >= gateAfter {
				once.Do(func() {
					if blocked != nil {
						close(blocked)
					}
				})
				<-ctx.Done()
				return nil, ctx.Err()
			}
			ran.Add(1)
			return campaign.Metrics{"value": float64(sh.Seed%10007) / 7}, nil
		}, true
	}
}

// TestServerCrashResumeByteIdentical is the headline durability proof:
// a job interrupted mid-campaign (2 of 4 shards done, checkpoint tail
// torn as if killed mid-append) resumes on the next boot and produces a
// result byte-identical to a never-interrupted run — without re-running
// the completed shards.
func TestServerCrashResumeByteIdentical(t *testing.T) {
	const seeds = 4
	specBody := `{}`

	// Reference: uninterrupted run.
	dirA := t.TempDir()
	var ranA atomic.Int32
	srvA := startServer(t, Config{Dir: dirA, Runner: campaignRunner(dirA, stubShards(&ranA, -1, nil))})
	_, envA, _ := submit(t, srvA.Addr(), specBody, seeds)
	waitState(t, srvA.Addr(), envA.ID, JobDone)
	want := fetchResult(t, srvA.Addr(), envA.ID)
	if ranA.Load() != seeds {
		t.Fatalf("reference run executed %d shards, want %d", ranA.Load(), seeds)
	}
	srvA.Drain()

	// Interrupted run: 2 shards complete, the 3rd pins in flight, then
	// the daemon drains (grace expired → jobs cancelled to checkpoint).
	dirB := t.TempDir()
	var ranB atomic.Int32
	blocked := make(chan struct{})
	srvB := startServer(t, Config{Dir: dirB, DrainGrace: 10 * time.Millisecond,
		Runner: campaignRunner(dirB, stubShards(&ranB, 2, blocked))})
	_, envB, _ := submit(t, srvB.Addr(), specBody, seeds)
	if envB.ID != envA.ID {
		t.Fatalf("same spec produced different job ids: %s vs %s", envB.ID, envA.ID)
	}
	<-blocked
	if err := srvB.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := ranB.Load(); got != 2 {
		t.Fatalf("interrupted run completed %d shards, want 2", got)
	}
	assertNoTempFiles(t, dirB)

	// Sharpen the crash: tear the checkpoint tail as a SIGKILL
	// mid-append would.
	ckpt := filepath.Join(dirB, workDirName, envB.ID+".ckpt.jsonl")
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("the interrupted run must have left a checkpoint: %v", err)
	}
	if _, err := f.WriteString(`{"index":3,"metr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The wounded store still passes doctor (torn tail is a warning).
	var report bytes.Buffer
	if ok, err := Doctor(dirB, &report); err != nil || !ok {
		t.Fatalf("doctor on drained store: ok=%v err=%v\n%s", ok, err, report.String())
	}
	if !strings.Contains(report.String(), "torn final line") {
		t.Fatalf("doctor must call out the torn checkpoint tail:\n%s", report.String())
	}

	// Reboot: the journal replays the job as queued, the campaign
	// resumes its checkpoint, and only the 2 missing shards execute.
	var ranB2 atomic.Int32
	srvB2 := startServer(t, Config{Dir: dirB, Runner: campaignRunner(dirB, stubShards(&ranB2, -1, nil))})
	waitState(t, srvB2.Addr(), envB.ID, JobDone)
	got := fetchResult(t, srvB2.Addr(), envB.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
	if n := ranB2.Load(); n != 2 {
		t.Fatalf("resumed run executed %d shards, want 2 (checkpointed shards must not re-run)", n)
	}
}
