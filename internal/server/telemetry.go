package server

import "memlife/internal/telemetry"

// serverTel holds the daemon's telemetry handles, resolved once from
// the global registry (all-nil when telemetry is disabled — every
// method below is then a no-op). All of it is service observability;
// nothing feeds back into job results.
type serverTel struct {
	jobsSubmitted *telemetry.Counter // accepted (journaled) submissions
	jobsDeduped   *telemetry.Counter // submissions joined onto a live job
	jobsDone      *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsRetried   *telemetry.Counter // execution retries after transient failures
	jobsRejected  *telemetry.Counter // 429 backpressure rejections
	cacheHits     *telemetry.Counter // submissions served from the result store
	cacheMisses   *telemetry.Counter // submissions that had to run
	queueDepth    *telemetry.Gauge
	runningJobs   *telemetry.Gauge
	stateDone     *telemetry.Gauge // jobs currently terminal-done in the job table
	stateFailed   *telemetry.Gauge // jobs currently terminal-failed in the job table
	jobNs         *telemetry.Histogram // per-job wall time (success only)
	drainNs       *telemetry.Gauge     // duration of the last graceful drain
}

func newServerTel() *serverTel {
	r := telemetry.Global()
	if r == nil {
		return &serverTel{}
	}
	return &serverTel{
		jobsSubmitted: r.Counter("server/jobs_submitted"),
		jobsDeduped:   r.Counter("server/jobs_deduped"),
		jobsDone:      r.Counter("server/jobs_done"),
		jobsFailed:    r.Counter("server/jobs_failed"),
		jobsRetried:   r.Counter("server/jobs_retried"),
		jobsRejected:  r.Counter("server/jobs_rejected"),
		cacheHits:     r.Counter("server/cache_hits"),
		cacheMisses:   r.Counter("server/cache_misses"),
		queueDepth:    r.Gauge("server/queue_depth"),
		runningJobs:   r.Gauge("server/running_jobs"),
		stateDone:     r.Gauge("server/jobs_state_done"),
		stateFailed:   r.Gauge("server/jobs_state_failed"),
		jobNs:         r.Histogram("server/job_ns", telemetry.NsBounds()),
		drainNs:       r.Gauge("server/drain_ns"),
	}
}

// observeDepth publishes the queue's current per-state gauges.
func (t *serverTel) observeDepth(q *queue) {
	queued, running, done, failed := q.CountsByState()
	t.queueDepth.Set(float64(queued))
	t.runningJobs.Set(float64(running))
	t.stateDone.Set(float64(done))
	t.stateFailed.Set(float64(failed))
}
