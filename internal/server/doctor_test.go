package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedHealthyStore builds a store with one settled job the way the
// daemon would have left it.
func seedHealthyStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := openQueue(st.queuePath(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, _, err := q.Submit("aaaa1111", []byte(`{}`), 1); err != nil {
		t.Fatal(err)
	}
	doc, err := marshalResultDoc(ResultDoc{ID: "aaaa1111", Seeds: 1, Spec: []byte(`{}`), Result: []byte(`{"ok":true}`)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("aaaa1111", doc); err != nil {
		t.Fatal(err)
	}
	if err := q.MarkDone("aaaa1111"); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runDoctorTest(t *testing.T, dir string) (bool, string) {
	t.Helper()
	var buf bytes.Buffer
	ok, err := Doctor(dir, &buf)
	if err != nil {
		t.Fatalf("doctor: %v", err)
	}
	return ok, buf.String()
}

func TestDoctorHealthyStore(t *testing.T) {
	ok, out := runDoctorTest(t, seedHealthyStore(t))
	if !ok {
		t.Fatalf("healthy store must pass:\n%s", out)
	}
	if !strings.Contains(out, "is healthy") {
		t.Fatalf("missing summary line:\n%s", out)
	}
}

func TestDoctorMissingDir(t *testing.T) {
	if _, err := Doctor(filepath.Join(t.TempDir(), "nope"), &bytes.Buffer{}); err == nil {
		t.Fatal("doctor on a missing directory must error")
	}
}

func TestDoctorFlagsMislabeledResult(t *testing.T) {
	dir := seedHealthyStore(t)
	// Overwrite the stored doc with one claiming a different identity —
	// a violated content-addressing invariant.
	doc, _ := marshalResultDoc(ResultDoc{ID: "bbbb2222", Seeds: 1, Spec: []byte(`{}`), Result: []byte(`{}`)})
	if err := os.WriteFile(filepath.Join(dir, resultsDirName, "aaaa1111.json"), doc, 0o644); err != nil {
		t.Fatal(err)
	}
	ok, out := runDoctorTest(t, dir)
	if ok || !strings.Contains(out, "mislabeled") {
		t.Fatalf("mislabeled result must FAIL (ok=%v):\n%s", ok, out)
	}
}

func TestDoctorFlagsUndecodableResult(t *testing.T) {
	dir := seedHealthyStore(t)
	if err := os.WriteFile(filepath.Join(dir, resultsDirName, "aaaa1111.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, out := runDoctorTest(t, dir); ok || !strings.Contains(out, "undecodable") {
		t.Fatalf("undecodable result must FAIL (ok=%v):\n%s", ok, out)
	}
}

func TestDoctorFlagsInteriorJournalCorruption(t *testing.T) {
	dir := seedHealthyStore(t)
	body, err := os.ReadFile(filepath.Join(dir, queueFileName))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte("corrupt-line\n"), body...)
	if err := os.WriteFile(filepath.Join(dir, queueFileName), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, out := runDoctorTest(t, dir); ok || !strings.Contains(out, "FAIL  job journal") {
		t.Fatalf("interior journal corruption must FAIL (ok=%v):\n%s", ok, out)
	}
}

func TestDoctorWarnsOnTornJournalTail(t *testing.T) {
	dir := seedHealthyStore(t)
	f, err := os.OpenFile(filepath.Join(dir, queueFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ok, out := runDoctorTest(t, dir)
	if !ok {
		t.Fatalf("a torn final line is a crash artifact, not corruption:\n%s", out)
	}
	if !strings.Contains(out, "torn final line") {
		t.Fatalf("torn tail must be called out:\n%s", out)
	}
}

func TestDoctorFlagsDoneJobWithoutResult(t *testing.T) {
	dir := seedHealthyStore(t)
	if err := os.Remove(filepath.Join(dir, resultsDirName, "aaaa1111.json")); err != nil {
		t.Fatal(err)
	}
	if ok, out := runDoctorTest(t, dir); ok || !strings.Contains(out, "no stored result") {
		t.Fatalf("done job without a result must FAIL (ok=%v):\n%s", ok, out)
	}
}

func TestDoctorWarnsOnCrashLeftovers(t *testing.T) {
	dir := seedHealthyStore(t)
	// A stray temp file from an interrupted atomic write...
	if err := os.WriteFile(filepath.Join(dir, resultsDirName, ".cccc3333.tmp42"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// ...and a checkpoint for a job the journal has already settled.
	if err := os.WriteFile(filepath.Join(dir, workDirName, "aaaa1111.ckpt.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ok, out := runDoctorTest(t, dir)
	if !ok {
		t.Fatalf("crash leftovers are warnings, not failures:\n%s", out)
	}
	for _, want := range []string{"stray temp file", "settled"} {
		if !strings.Contains(out, want) {
			t.Errorf("doctor output missing %q:\n%s", want, out)
		}
	}
}

func TestDoctorWarnsWhileDaemonHoldsLock(t *testing.T) {
	dir := seedHealthyStore(t)
	l, err := acquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	ok, out := runDoctorTest(t, dir)
	if !ok {
		t.Fatalf("a held lock means a live daemon, not a problem:\n%s", out)
	}
	if !strings.Contains(out, "locked by a running process") {
		t.Fatalf("doctor must note the live lock:\n%s", out)
	}
}
