package server

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStorePutGetRoundTrip(t *testing.T) {
	st, err := openStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "deadbeef01234567"
	if st.Has(key) {
		t.Fatal("fresh store must not have the key")
	}
	if _, err := st.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on missing key: %v, want ErrNotFound", err)
	}
	data := []byte(`{"id":"deadbeef01234567"}` + "\n")
	if err := st.Put(key, data); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v, want [%s]", keys, key)
	}
}

func TestStorePutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Put("abc123", []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(filepath.Join(dir, resultsDirName))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s after successful Put", e.Name())
		}
	}
}

func TestStoreRejectsPathEscapingKeys(t *testing.T) {
	st, err := openStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../evil", "a/b", "UPPER", "x.json", strings.Repeat("a", 65)} {
		if err := st.Put(key, []byte("{}")); err == nil {
			t.Fatalf("Put(%q) must be rejected", key)
		}
		if _, err := st.Get(key); err == nil {
			t.Fatalf("Get(%q) must be rejected", key)
		}
		if st.Has(key) {
			t.Fatalf("Has(%q) must be false", key)
		}
	}
	for _, key := range []string{"abc123", "deadbeef-s5"} {
		if !validKey(key) {
			t.Fatalf("validKey(%q) must be true", key)
		}
	}
}

func TestLockSingleWriter(t *testing.T) {
	dir := t.TempDir()
	l1, err := acquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	// flock conflicts across open file descriptions, even in-process.
	if _, err := acquireLock(dir); err == nil {
		t.Fatal("second acquire must fail while the first holds the lock")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("second acquire error must say who holds it, got: %v", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := acquireLock(dir)
	if err != nil {
		t.Fatalf("lock must be re-acquirable after release: %v", err)
	}
	l2.Release()
}
