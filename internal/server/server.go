// Package server is the "lifetime as a service" daemon behind
// `memlife serve`: a long-running HTTP/JSON service that accepts
// scenario specs, runs them through the campaign engine on a worker
// pool, and serves results from a content-addressed store keyed by the
// spec fingerprint — so duplicate submissions are instant cache hits
// and a crash at any instant loses no accepted job.
//
// Durability contract (proven by the crash tests and `memlife doctor`):
//
//   - a job is journaled (write + fsync) before its submission is
//     ACKed; SIGKILL after the ACK never loses it;
//   - in-flight progress lives in a per-job campaign checkpoint; a
//     restarted daemon resumes it and produces a result byte-identical
//     to an uninterrupted run;
//   - results are written temp-then-rename; readers and crashes see a
//     whole document or nothing;
//   - one flock'd writer per store directory — a second daemon (or a
//     concurrent CLI resume pointed at the store) fails fast.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"memlife/internal/retry"
)

// Config parameterizes one daemon.
type Config struct {
	// Dir is the store directory (journal, results, checkpoints, lock).
	Dir string
	// Addr is the listen address (host:port; ":0" picks a free port).
	Addr string
	// JobWorkers bounds concurrently running jobs; <= 0 means 1.
	JobWorkers int
	// ShardWorkers bounds the campaign worker pool inside each job;
	// <= 0 means GOMAXPROCS (see campaign.Config.Workers).
	ShardWorkers int
	// EvalWorkers is the forward-pass parallelism inside each shard
	// evaluation (bit-identical results; <= 0 stays serial).
	EvalWorkers int
	// QueueCap bounds queued+running jobs; submissions beyond it get
	// 429 + Retry-After. <= 0 means 64.
	QueueCap int
	// Retry is the per-job execution retry budget; a zero policy means
	// the default (3 attempts, 500ms..30s capped backoff, 50% jitter).
	Retry retry.Policy
	// RetryAfter is the backpressure hint returned with 429; <= 0
	// means 2s.
	RetryAfter time.Duration
	// DrainGrace is how long Drain waits for in-flight jobs before
	// cancelling them to their checkpoints; <= 0 means 5s.
	DrainGrace time.Duration
	// Log receives service progress lines; nil silences them.
	Log io.Writer
	// Runner overrides the job runner (tests); nil means the production
	// scenario-campaign runner.
	Runner Runner
}

func (c Config) withDefaults() Config {
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Retry == (retry.Policy{}) {
		c.Retry = retry.Policy{
			MaxAttempts: 3,
			BaseDelay:   500 * time.Millisecond,
			MaxDelay:    30 * time.Second,
			Jitter:      0.5,
			Seed:        1,
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	return c
}

// Server is one running daemon over one locked store directory.
type Server struct {
	cfg   Config
	lock  *dirLock
	store *store
	queue *queue
	sched *scheduler
	tel   *serverTel

	httpSrv  *http.Server
	ln       net.Listener
	draining chan struct{} // closed when drain starts (healthz flips)
}

// New opens the store (creating it if needed), takes the single-writer
// lock, replays the job journal, and binds the listen address. Nothing
// runs until Start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	st, err := openStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	lock, err := acquireLock(cfg.Dir)
	if err != nil {
		return nil, err
	}
	q, err := openQueue(st.queuePath(), cfg.QueueCap)
	if err != nil {
		lock.Release()
		return nil, err
	}
	tel := newServerTel()
	run := cfg.Runner
	if run == nil {
		run = scenarioRunner(st, cfg.ShardWorkers, cfg.EvalWorkers, cfg.Log)
	}
	s := &Server{
		cfg:      cfg,
		lock:     lock,
		store:    st,
		queue:    q,
		tel:      tel,
		sched:    newScheduler(q, st, run, cfg.JobWorkers, cfg.Retry, tel, cfg.Log),
		draining: make(chan struct{}),
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.releaseAll()
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.handler(), ReadHeaderTimeout: 5 * time.Second}
	tel.observeDepth(q)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Start launches the scheduler workers and the HTTP listener.
func (s *Server) Start() {
	s.sched.Start()
	go s.httpSrv.Serve(s.ln) //nolint:errcheck // always ErrServerClosed after Drain
	s.logf("serving on http://%s (store %s, %d job worker(s), queue cap %d)",
		s.Addr(), s.cfg.Dir, s.cfg.JobWorkers, s.cfg.QueueCap)
}

// Run serves until ctx is cancelled, then drains and returns the drain
// error — the whole graceful lifecycle in one call.
func (s *Server) Run(ctx context.Context) error {
	s.Start()
	<-ctx.Done()
	return s.Drain()
}

// Drain is the graceful shutdown: stop accepting HTTP traffic, give
// in-flight jobs the configured grace to finish, cancel the rest to
// their checkpoints, journal everything, release the lock. After Drain
// the store contains no partial files and a fresh daemon (or doctor)
// can take over immediately.
func (s *Server) Drain() error {
	t0 := time.Now()
	select {
	case <-s.draining:
		return nil // already drained
	default:
	}
	close(s.draining)
	s.logf("draining: stopping intake, waiting up to %s for in-flight jobs", s.cfg.DrainGrace)

	httpCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.httpSrv.Shutdown(httpCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		err = nil // slow clients are not a drain failure
	}
	s.sched.Drain(s.cfg.DrainGrace)
	if cerr := s.queue.Close(); err == nil {
		err = cerr
	}
	if lerr := s.lock.Release(); err == nil {
		err = lerr
	}
	s.tel.drainNs.Set(float64(time.Since(t0)))
	s.logf("drained in %s", time.Since(t0).Round(time.Millisecond))
	return err
}

// releaseAll tears down a partially constructed server (New failures).
func (s *Server) releaseAll() {
	if s.queue != nil {
		s.queue.Close()
	}
	s.lock.Release()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "memlife serve: "+format+"\n", args...)
	}
}
