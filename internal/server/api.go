package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"memlife/internal/spec"
	"memlife/internal/telemetry"
)

// maxSpecBytes bounds a submitted scenario document.
const maxSpecBytes = 4 << 20

// maxSeeds bounds a job's Monte Carlo sample size.
const maxSeeds = 4096

// jobEnvelope is the API's job representation.
type jobEnvelope struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Seeds int    `json:"seeds"`
	// Cached is true when a submission was served straight from the
	// content-addressed store without enqueueing anything.
	Cached   bool   `json:"cached,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// ResultURL points at the stored result document once the job is
	// done.
	ResultURL string `json:"result_url,omitempty"`
}

func envelope(j Job, cached bool) jobEnvelope {
	e := jobEnvelope{
		ID:       j.ID,
		State:    string(j.State),
		Seeds:    j.Seeds,
		Cached:   cached,
		Attempts: j.Attempts,
		Error:    j.Error,
	}
	if j.State == JobDone {
		e.ResultURL = "/v1/results/" + j.ID
	}
	return e
}

// handler builds the daemon's HTTP API:
//
//	POST /v1/jobs          submit a scenario spec (?seeds=N); 200 cache
//	                       hit, 202 accepted, 400 invalid, 429 full
//	GET  /v1/jobs          list known jobs
//	GET  /v1/jobs/{id}     one job's status
//	GET  /v1/results/{id}  stored result document
//	GET  /healthz          "ok" (serving) / 503 "draining"
//	GET  /metrics/json     live telemetry snapshot
//	     /debug/pprof/*    profiles
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/results/{id}", s.handleGetResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		select {
		case <-s.draining:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	mux.Handle("GET /metrics/json", telemetry.MetricsHandler(telemetry.Global()))
	telemetry.AddPprofHandlers(mux)
	return mux
}

// handleSubmit is the intake path: resolve and validate the submitted
// spec, key it, serve a store hit instantly, otherwise journal-then-ACK
// (202) or push back (429 + Retry-After).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		apiError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	if len(raw) > maxSpecBytes {
		apiError(w, http.StatusRequestEntityTooLarge, "scenario document exceeds 4MiB")
		return
	}
	seeds := 1
	if v := r.URL.Query().Get("seeds"); v != "" {
		seeds, err = strconv.Atoi(v)
		if err != nil || seeds < 1 || seeds > maxSeeds {
			apiError(w, http.StatusBadRequest, fmt.Sprintf("seeds must be an integer in [1,%d]", maxSeeds))
			return
		}
	}
	resolved, err := spec.ResolveBytes(raw, spec.Overrides{})
	if err != nil {
		apiError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := resolved.JobFingerprint(seeds)
	if err != nil {
		apiError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if s.store.Has(key) {
		s.tel.cacheHits.Inc()
		writeJSON(w, http.StatusOK, envelope(Job{ID: key, Seeds: seeds, State: JobDone}, true))
		return
	}
	s.tel.cacheMisses.Inc()
	canonical, err := resolved.Canonical()
	if err != nil {
		apiError(w, http.StatusInternalServerError, err.Error())
		return
	}
	job, created, err := s.queue.Submit(key, canonical, seeds)
	if err != nil {
		if err == errQueueFull {
			s.tel.jobsRejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
			apiError(w, http.StatusTooManyRequests, "job queue is full; retry later")
			return
		}
		apiError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if created {
		s.tel.jobsSubmitted.Inc()
		s.tel.observeDepth(s.queue)
		s.logf("job %s: accepted (%d seed(s))", key, seeds)
	} else {
		s.tel.jobsDeduped.Inc()
	}
	w.Header().Set("Location", "/v1/jobs/"+key)
	status := http.StatusAccepted
	if job.State == JobDone {
		status = http.StatusOK
	}
	writeJSON(w, status, envelope(job, false))
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.queue.Jobs()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	out := make([]jobEnvelope, len(jobs))
	for i, j := range jobs {
		out[i] = envelope(j, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.queue.Get(id)
	if !ok {
		// The queue only remembers jobs seen by this journal; a result
		// can still exist from an earlier store generation.
		if s.store.Has(id) {
			writeJSON(w, http.StatusOK, envelope(Job{ID: id, State: JobDone}, true))
			return
		}
		apiError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, envelope(job, false))
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, err := s.store.Get(id)
	if err != nil {
		apiError(w, http.StatusNotFound, fmt.Sprintf("no result for %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are gone on failure
}

func apiError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
