package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"memlife/internal/campaign"
)

// Doctor is the `memlife doctor` self-check: it audits a store
// directory — lock health, job-journal integrity, result-store
// integrity, checkpoint tails — entirely read-only, and writes a
// line-per-check report to w. It returns ok=false when it found
// corruption a daemon could not safely serve from (interior journal
// corruption, undecodable or mislabeled result documents); warnings
// (torn tails, stray temp files, orphan checkpoints) are expected
// crash leftovers the daemon recovers from by itself and do not fail
// the check.
func Doctor(dir string, w io.Writer) (ok bool, err error) {
	ok = true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Fprintf(w, "FAIL  "+format+"\n", args...)
	}
	warn := func(format string, args ...any) {
		fmt.Fprintf(w, "warn  "+format+"\n", args...)
	}
	pass := func(format string, args ...any) {
		fmt.Fprintf(w, "ok    "+format+"\n", args...)
	}

	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return false, fmt.Errorf("server: store %s is not a directory", dir)
	}
	st := &store{dir: dir}

	// Lock health: a held lock means a live daemon (flock dies with its
	// process, so there are no stale locks to detect).
	if lock, lerr := acquireLock(dir); lerr != nil {
		if strings.Contains(lerr.Error(), "locked by another process") {
			warn("store is locked by a running process; auditing read-only alongside it")
		} else {
			fail("lock: %v", lerr)
		}
	} else {
		lock.Release()
		pass("lock is free and acquirable")
	}

	// Job journal: replay it exactly the way the daemon would.
	states := map[JobState]int{}
	jobs := map[string]JobState{}
	q := &queue{jobs: make(map[string]*Job)}
	jpath := st.queuePath()
	jerr := campaign.ScanJournal(jpath, func(line int, raw []byte) error {
		var rec queueRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("job journal line %d: %w", line, err)
		}
		return q.replay(rec, jpath, line)
	})
	switch {
	case jerr == nil:
	case errors.Is(jerr, campaign.ErrTornTail):
		warn("job journal has a torn final line (killed mid-append); the daemon will discard it")
	default:
		fail("job journal: %v", jerr)
	}
	for id, j := range q.jobs {
		states[j.State]++
		jobs[id] = j.State
	}
	pass("job journal replays: %d queued, %d done, %d failed",
		states[JobQueued], states[JobDone], states[JobFailed])

	// Device-physics surface: which device models, state-drift settings
	// and tuning policies the journaled jobs were computed under. Specs
	// are content-addressed, so results from different physics never
	// collide — this line just makes the mix visible to the operator.
	modelCounts := map[string]int{}
	drifted, policied := 0, 0
	for _, j := range q.jobs {
		var sp struct {
			Device struct {
				Model struct {
					Kind string `json:"kind"`
				} `json:"model"`
				Drift struct {
					Nu float64 `json:"nu"`
				} `json:"drift"`
			} `json:"device"`
			Lifetime struct {
				Tuning struct {
					Policy string `json:"policy"`
				} `json:"tuning"`
			} `json:"lifetime"`
		}
		if len(j.Spec) == 0 || json.Unmarshal(j.Spec, &sp) != nil {
			continue
		}
		kind := sp.Device.Model.Kind
		if kind == "" {
			kind = "linear"
		}
		modelCounts[kind]++
		if sp.Device.Drift.Nu != 0 {
			drifted++
		}
		if p := sp.Lifetime.Tuning.Policy; p != "" && p != "sign" {
			policied++
		}
	}
	if len(modelCounts) > 0 {
		kinds := make([]string, 0, len(modelCounts))
		for k := range modelCounts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s x%d", k, modelCounts[k]))
		}
		pass("device models across jobs: %s (%d with state drift, %d with drift-adaptive tuning policy)",
			strings.Join(parts, ", "), drifted, policied)
	}

	// Result store: every document must decode and carry the id its
	// filename claims — the content-addressing invariant.
	keys, kerr := st.Keys()
	if kerr != nil {
		return false, kerr
	}
	bad := 0
	for _, key := range keys {
		if !validKey(key) {
			fail("result %q: invalid store key", key)
			bad++
			continue
		}
		b, gerr := st.Get(key)
		if gerr != nil {
			fail("result %s: %v", key, gerr)
			bad++
			continue
		}
		var doc ResultDoc
		if derr := json.Unmarshal(b, &doc); derr != nil {
			fail("result %s: undecodable document: %v", key, derr)
			bad++
			continue
		}
		if doc.ID != key {
			fail("result %s: document claims id %q (store is mislabeled)", key, doc.ID)
			bad++
		}
	}
	if bad == 0 {
		pass("result store: %d document(s), all decode and match their keys", len(keys))
	}
	if tmp := strayTempFiles(filepath.Join(dir, resultsDirName)); len(tmp) > 0 {
		warn("result store has %d stray temp file(s) from an interrupted write (harmless): %s",
			len(tmp), strings.Join(tmp, ", "))
	}

	// Checkpoint journals: tails must be clean or torn-final-line only;
	// checkpoints for settled or unknown jobs are crash leftovers.
	ents, derr := os.ReadDir(filepath.Join(dir, workDirName))
	if derr != nil && !errors.Is(derr, os.ErrNotExist) {
		return false, fmt.Errorf("server: list checkpoints: %w", derr)
	}
	ckpts := 0
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt.jsonl") {
			continue
		}
		ckpts++
		key := strings.TrimSuffix(name, ".ckpt.jsonl")
		cerr := campaign.ScanJournal(filepath.Join(dir, workDirName, name), func(int, []byte) error { return nil })
		switch {
		case cerr == nil:
		case errors.Is(cerr, campaign.ErrTornTail):
			warn("checkpoint %s has a torn final line; the torn shard re-runs on resume", key)
		default:
			fail("checkpoint %s: %v", key, cerr)
		}
		if state, known := jobs[key]; !known {
			warn("checkpoint %s belongs to no journaled job (stale; safe to delete)", key)
		} else if state != JobQueued && state != JobRunning {
			warn("checkpoint %s belongs to a settled (%s) job (stale; safe to delete)", key, state)
		}
	}
	pass("checkpoints: %d journal(s) scanned", ckpts)

	// Cross-check: a done job should have its result on disk.
	missing := 0
	for id, state := range jobs {
		if state == JobDone && !st.Has(id) {
			fail("job %s is journaled done but has no stored result", id)
			missing++
		}
	}
	if missing == 0 && states[JobDone] > 0 {
		pass("every done job has its result document")
	}

	if ok {
		fmt.Fprintf(w, "doctor: store %s is healthy\n", dir)
	} else {
		fmt.Fprintf(w, "doctor: store %s has problems (see FAIL lines)\n", dir)
	}
	return ok, nil
}

// strayTempFiles lists leftover temp files from interrupted atomic
// writes (dot-prefixed, ".tmp" infix).
func strayTempFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ".") && strings.Contains(e.Name(), ".tmp") {
			out = append(out, e.Name())
		}
	}
	return out
}
