package server

import (
	"testing"

	"memlife/internal/telemetry"
)

func gaugeValue(t *testing.T, s telemetry.Snapshot, name string) float64 {
	t.Helper()
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %q missing from snapshot", name)
	return 0
}

// TestObserveDepthPublishesPerStateGauges: the daemon's depth gauges
// must cover every lifecycle state of the job table — queued, running,
// done, failed — so /metrics/json exposes the full queue composition.
func TestObserveDepthPublishesPerStateGauges(t *testing.T) {
	r := telemetry.NewRegistry()
	telemetry.SetGlobal(r)
	t.Cleanup(func() { telemetry.SetGlobal(nil) })

	q, err := openQueue(testQueuePath(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	mustSubmit(t, q, "aaaa0001") // stays queued
	mustSubmit(t, q, "aaaa0002") // -> running
	mustSubmit(t, q, "aaaa0003") // -> done
	mustSubmit(t, q, "aaaa0004") // -> failed
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		if _, ok := q.Dequeue(stop); !ok {
			t.Fatal("dequeue starved")
		}
	}
	// Dequeue order is FIFO: 0001..0003 are now running; leave 0001
	// running and finish the other two. 0004 never dequeues.
	if err := q.MarkDone("aaaa0002"); err != nil {
		t.Fatal(err)
	}
	if err := q.MarkFailed("aaaa0003", "boom"); err != nil {
		t.Fatal(err)
	}

	tel := newServerTel()
	tel.observeDepth(q)
	snap := r.Snapshot()
	if got := gaugeValue(t, snap, "server/queue_depth"); got != 1 {
		t.Errorf("queue_depth = %v, want 1", got)
	}
	if got := gaugeValue(t, snap, "server/running_jobs"); got != 1 {
		t.Errorf("running_jobs = %v, want 1", got)
	}
	if got := gaugeValue(t, snap, "server/jobs_state_done"); got != 1 {
		t.Errorf("jobs_state_done = %v, want 1", got)
	}
	if got := gaugeValue(t, snap, "server/jobs_state_failed"); got != 1 {
		t.Errorf("jobs_state_failed = %v, want 1", got)
	}
}
