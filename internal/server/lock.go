package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// lockFileName is the flock guard at the root of a store directory.
const lockFileName = "LOCK"

// dirLock is an exclusive advisory lock on a store directory. Exactly
// one process — daemon or doctor-with-repair or CLI resume — may hold
// it; a second opener fails fast instead of corrupting the journal and
// result files the first is writing. The lock is a kernel flock, so it
// dies with the process: a SIGKILLed daemon leaves no stale lock to
// clean up (the LOCK file remains but is re-acquirable).
type dirLock struct {
	f *os.File
}

// acquireLock takes the exclusive lock of dir, failing fast (no
// blocking) when another process holds it. The holder's pid is written
// into the lock file purely as a diagnostic for the error message and
// `memlife doctor`.
func acquireLock(dir string) (*dirLock, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		holder := lockHolder(f)
		f.Close()
		if err == syscall.EWOULDBLOCK {
			return nil, fmt.Errorf("server: store %s is locked by another process%s — a daemon or resume is already writing it; stop it or use a different -store", dir, holder)
		}
		return nil, fmt.Errorf("server: lock store %s: %w", dir, err)
	}
	// Record our pid for diagnostics. Failure to write it is harmless:
	// the flock, not the content, is the guard.
	if err := f.Truncate(0); err == nil {
		_, _ = f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
		_ = f.Sync()
	}
	return &dirLock{f: f}, nil
}

// lockHolder reads the pid a live holder recorded, for error messages.
func lockHolder(f *os.File) string {
	buf := make([]byte, 32)
	n, err := f.ReadAt(buf, 0)
	if n == 0 || (err != nil && n <= 0) {
		return ""
	}
	pid := strings.TrimSpace(string(buf[:n]))
	if pid == "" {
		return ""
	}
	return fmt.Sprintf(" (pid %s)", pid)
}

// Release drops the lock. Safe on nil.
func (l *dirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
