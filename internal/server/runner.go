package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"memlife/internal/campaign"
	"memlife/internal/experiments"
	"memlife/internal/retry"
	"memlife/internal/spec"
)

// ResultDoc is the stored result document: the job identity, the
// resolved spec it ran, and the campaign result (canonical JSON, so
// the whole document is byte-deterministic — no timestamps, no
// scheduling artifacts). `memlife doctor` verifies the embedded id
// against the store filename.
type ResultDoc struct {
	ID     string          `json:"id"`
	Seeds  int             `json:"seeds"`
	Spec   json.RawMessage `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// scenarioRunner is the production Runner: one job = one campaign of
// the submitted spec across its seed count, checkpointed into the
// store's work directory. Resume is always on — after a crash the same
// checkpoint picks up completed shards, and the campaign engine's
// byte-identical aggregation guarantees the resumed result equals an
// uninterrupted run's. Duplicate fixtures across concurrent jobs share
// trained bundles through the experiments singleflight cache.
func scenarioRunner(st *store, shardWorkers, evalWorkers int, log io.Writer) Runner {
	return func(ctx context.Context, job Job) ([]byte, error) {
		s, err := spec.ResolveBytes(job.Spec, spec.Overrides{})
		if err != nil {
			// A spec that no longer resolves cannot succeed on retry.
			return nil, retry.Permanent(err)
		}
		s.Run.Workers = evalWorkers
		cs := campaign.Spec{
			Experiments: []string{experiments.ScenarioExperiment},
			Seeds:       job.Seeds,
			BaseSeed:    s.Run.Seed,
			Fast:        s.Run.Fast,
			ConfigHash:  job.ID,
		}
		cfg := campaign.Config{
			Workers:        shardWorkers,
			Resolve:        experiments.ScenarioResolver(s),
			CheckpointPath: st.ckptPath(job.ID),
			Resume:         true,
			Log:            log,
		}
		res, err := campaign.Run(ctx, cs, cfg)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("server: encode campaign result: %w", err)
		}
		return marshalResultDoc(ResultDoc{
			ID:     job.ID,
			Seeds:  job.Seeds,
			Spec:   job.Spec,
			Result: json.RawMessage(bytes.TrimRight(buf.Bytes(), "\n")),
		})
	}
}

// marshalResultDoc encodes a result document with a trailing newline.
func marshalResultDoc(doc ResultDoc) ([]byte, error) {
	b, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("server: encode result doc: %w", err)
	}
	return append(b, '\n'), nil
}
