package server

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memlife/internal/campaign"
)

func testQueuePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), queueFileName)
}

func mustSubmit(t *testing.T, q *queue, id string) Job {
	t.Helper()
	job, created, err := q.Submit(id, []byte(`{}`), 1)
	if err != nil {
		t.Fatalf("Submit(%s): %v", id, err)
	}
	if !created {
		t.Fatalf("Submit(%s): expected a new entry", id)
	}
	return job
}

// TestQueueJournalBeforeACK is the durable-before-ACK contract: by the
// time Submit returns, the submit record is already on disk — a
// SIGKILL immediately after the ACK loses nothing.
func TestQueueJournalBeforeACK(t *testing.T) {
	path := testQueuePath(t)
	q, err := openQueue(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "aaaa1111")
	// Deliberately no Close: read the journal as a post-SIGKILL reboot
	// would find it.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("journal must exist before Submit returns: %v", err)
	}
	if !strings.Contains(string(b), `"op":"submit"`) || !strings.Contains(string(b), "aaaa1111") {
		t.Fatalf("journal missing the submit record: %q", b)
	}
	q2, err := openQueue(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if j, ok := q2.Get("aaaa1111"); !ok || j.State != JobQueued {
		t.Fatalf("replayed job = %+v, want queued", j)
	}
}

func TestQueueDedupeAndResubmitFailed(t *testing.T) {
	q, err := openQueue(testQueuePath(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "aaaa1111")
	if _, created, err := q.Submit("aaaa1111", []byte(`{}`), 1); err != nil || created {
		t.Fatalf("duplicate submit of a queued job: created=%v err=%v, want dedupe", created, err)
	}
	if err := q.MarkFailed("aaaa1111", "boom"); err != nil {
		t.Fatal(err)
	}
	job, created, err := q.Submit("aaaa1111", []byte(`{}`), 1)
	if err != nil || !created {
		t.Fatalf("resubmit of a failed job: created=%v err=%v, want re-queue", created, err)
	}
	if job.State != JobQueued {
		t.Fatalf("resubmitted job state = %s, want queued", job.State)
	}
}

func TestQueueCapacityRejects(t *testing.T) {
	q, err := openQueue(testQueuePath(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "aaaa1111")
	mustSubmit(t, q, "bbbb2222")
	if _, _, err := q.Submit("cccc3333", []byte(`{}`), 1); !errors.Is(err, errQueueFull) {
		t.Fatalf("submit over capacity: %v, want errQueueFull", err)
	}
	// Settling a job frees its slot.
	if err := q.MarkDone("aaaa1111"); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "cccc3333")
}

// TestQueueReplayTerminalStates proves crash recovery semantics: done
// and failed survive a reboot; a job that was mid-run (submit only, no
// terminal record) comes back queued and will re-run.
func TestQueueReplayTerminalStates(t *testing.T) {
	path := testQueuePath(t)
	q, err := openQueue(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "aaaa1111")
	mustSubmit(t, q, "bbbb2222")
	mustSubmit(t, q, "cccc3333")
	if err := q.MarkDone("aaaa1111"); err != nil {
		t.Fatal(err)
	}
	if err := q.MarkFailed("bbbb2222", "exhausted"); err != nil {
		t.Fatal(err)
	}
	// cccc3333 stays queued; simulate it having been dequeued too —
	// "running" is never journaled, so on disk it looks identical.
	if _, ok := q.Dequeue(nil); !ok {
		t.Fatal("dequeue failed")
	}
	q.Close()

	q2, err := openQueue(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	want := map[string]JobState{"aaaa1111": JobDone, "bbbb2222": JobFailed, "cccc3333": JobQueued}
	for id, state := range want {
		j, ok := q2.Get(id)
		if !ok || j.State != state {
			t.Errorf("replayed %s = %+v, want state %s", id, j, state)
		}
	}
	if j, _ := q2.Get("bbbb2222"); j.Error != "exhausted" {
		t.Errorf("failed job error = %q, want preserved message", j.Error)
	}
	if job, ok := q2.Dequeue(nil); !ok || job.ID != "cccc3333" {
		t.Errorf("Dequeue after replay = %+v, want the interrupted job", job)
	}
}

// TestQueueTornTailTolerated: a SIGKILL mid-append leaves a torn final
// line; the reboot discards it and keeps everything before it.
func TestQueueTornTailTolerated(t *testing.T) {
	path := testQueuePath(t)
	q, err := openQueue(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "aaaa1111")
	q.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"aaaa`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q2, err := openQueue(path, 8)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	defer q2.Close()
	if j, ok := q2.Get("aaaa1111"); !ok || j.State != JobQueued {
		t.Fatalf("job after torn tail = %+v, want queued (torn done discarded)", j)
	}
}

// TestQueueInteriorCorruptionFatal: a malformed line *before* the end
// cannot come from a crash — refuse to serve from it.
func TestQueueInteriorCorruptionFatal(t *testing.T) {
	path := testQueuePath(t)
	body := `{"op":"submit","id":"aaaa1111","seeds":1,"spec":{}}` + "\n" +
		`{"op":"done","id":"aa` + "\n" +
		`{"op":"submit","id":"bbbb2222","seeds":1,"spec":{}}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openQueue(path, 8); err == nil {
		t.Fatal("interior corruption must refuse to open")
	} else if errors.Is(err, campaign.ErrTornTail) {
		t.Fatalf("interior corruption must not be classified as a torn tail: %v", err)
	}
}

func TestQueueUnknownOpFatal(t *testing.T) {
	path := testQueuePath(t)
	body := `{"op":"explode","id":"aaaa1111"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openQueue(path, 8); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op must refuse to open, got: %v", err)
	}
}

func TestQueueRequeuePreservesFIFOHead(t *testing.T) {
	q, err := openQueue(testQueuePath(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "aaaa1111")
	mustSubmit(t, q, "bbbb2222")
	job, _ := q.Dequeue(nil)
	if job.ID != "aaaa1111" {
		t.Fatalf("Dequeue = %s, want FIFO head", job.ID)
	}
	q.Requeue("aaaa1111")
	if j, _ := q.Get("aaaa1111"); j.State != JobQueued {
		t.Fatalf("requeued job state = %s, want queued", j.State)
	}
	if job, _ := q.Dequeue(nil); job.ID != "aaaa1111" {
		t.Fatalf("requeued job must come back first, got %s", job.ID)
	}
}
