// Package train implements software training as described in Section
// II-A of the paper: SGD with backpropagation, the standard L2
// regularizer of eq. (1)/(2), and the proposed two-segment skewed
// regularizer of eq. (8)-(10) that concentrates weights towards small
// values so that the mapped memristor conductances are small (large
// resistances, small programming currents, less aging).
package train

import (
	"fmt"
	"math"

	"memlife/internal/nn"
)

// Regularizer adds a penalty term R(W) to the training cost and its
// gradient to the weight gradients. Only matrix weights (KindWeight)
// are regularized; biases live in digital periphery and are exempt,
// matching the usual practice and the paper's W_i notation.
type Regularizer interface {
	Name() string
	// Penalty returns the value of R(W) over the given parameters.
	Penalty(params []*nn.Param) float64
	// AddGrad accumulates dR/dW into each parameter's gradient.
	AddGrad(params []*nn.Param)
}

// Scaler is implemented by regularizers whose strength can be scaled,
// enabling the trainer's warmup ramp (Config.RegWarmup): applying the
// full two-segment penalty from the first batch can herd all weights to
// the reference point before cross-entropy establishes a useful
// representation, collapsing training.
type Scaler interface {
	// Scaled returns a copy of the regularizer with all penalty
	// strengths multiplied by f (0 <= f <= 1 during warmup).
	Scaled(f float64) Regularizer
}

// None is the no-regularization baseline.
type None struct{}

// Name implements Regularizer.
func (None) Name() string { return "none" }

// Penalty implements Regularizer.
func (None) Penalty([]*nn.Param) float64 { return 0 }

// AddGrad implements Regularizer.
func (None) AddGrad([]*nn.Param) {}

// Scaled implements Scaler.
func (n None) Scaled(float64) Regularizer { return n }

// L2 is the standard weight-decay term of eq. (2): R(W) = lambda *
// sum_i ||W_i||^2. This is the "traditional training" configuration
// (the T of the T+T scenario).
type L2 struct {
	Lambda float64
}

// Name implements Regularizer.
func (l L2) Name() string { return "l2" }

// Penalty implements Regularizer.
func (l L2) Penalty(params []*nn.Param) float64 {
	s := 0.0
	for _, p := range params {
		if p.Kind != nn.KindWeight {
			continue
		}
		for _, w := range p.W.Data() {
			s += w * w
		}
	}
	return l.Lambda * s
}

// AddGrad implements Regularizer.
func (l L2) AddGrad(params []*nn.Param) {
	for _, p := range params {
		if p.Kind != nn.KindWeight {
			continue
		}
		g := p.Grad.Data()
		for i, w := range p.W.Data() {
			g[i] += 2 * l.Lambda * w
		}
	}
}

// Scaled implements Scaler.
func (l L2) Scaled(f float64) Regularizer { return L2{Lambda: l.Lambda * f} }

// Skewed is the paper's two-segment regularizer (eq. (8)-(10)):
//
//	R1(W) = sum_i lambda1 * ||W_i - beta_i||^2   for W_i <  beta_i
//	R2(W) = sum_i lambda2 * ||W_i - beta_i||^2   for W_i >= beta_i
//
// beta_i is the per-layer reference weight around which weights are
// concentrated; lambda1 >= lambda2 penalizes the left side harder. In
// the paper beta_i is a constant multiple of the standard deviation
// sigma_i of the conventionally trained layer (Table II). For the
// usual mean-zero weight distributions the constant is negative
// (beta_i at the distribution's left edge, e.g. -0.5 * sigma_i): the
// strong lambda1 penalty then acts as a wall below beta while the weak
// lambda2 drags mass down towards it, yielding the left-concentrated
// skewed distribution of Fig. 6(a) — most weights land near the weight
// minimum, map to small conductances under eq. (4), and therefore draw
// small programming currents.
type Skewed struct {
	Lambda1 float64
	Lambda2 float64
	// Betas maps parameter names to their reference weight beta_i.
	// Parameters without an entry fall back to DefaultBeta.
	Betas       map[string]float64
	DefaultBeta float64
}

// NewSkewed constructs the skewed regularizer with explicit per-layer
// reference weights.
func NewSkewed(lambda1, lambda2 float64, betas map[string]float64) (*Skewed, error) {
	if lambda1 < 0 || lambda2 < 0 {
		return nil, fmt.Errorf("train: skewed penalties must be non-negative, got %g/%g", lambda1, lambda2)
	}
	if lambda1 < lambda2 {
		return nil, fmt.Errorf("train: skewed regularizer needs lambda1 >= lambda2 (left side penalized harder), got %g < %g", lambda1, lambda2)
	}
	return &Skewed{Lambda1: lambda1, Lambda2: lambda2, Betas: betas}, nil
}

// Name implements Regularizer.
func (s *Skewed) Name() string { return "skewed" }

// beta returns the reference weight for parameter p.
func (s *Skewed) beta(p *nn.Param) float64 {
	if b, ok := s.Betas[p.Name]; ok {
		return b
	}
	return s.DefaultBeta
}

// Penalty implements Regularizer.
func (s *Skewed) Penalty(params []*nn.Param) float64 {
	total := 0.0
	for _, p := range params {
		if p.Kind != nn.KindWeight {
			continue
		}
		b := s.beta(p)
		for _, w := range p.W.Data() {
			d := w - b
			if w < b {
				total += s.Lambda1 * d * d
			} else {
				total += s.Lambda2 * d * d
			}
		}
	}
	return total
}

// AddGrad implements Regularizer.
func (s *Skewed) AddGrad(params []*nn.Param) {
	for _, p := range params {
		if p.Kind != nn.KindWeight {
			continue
		}
		b := s.beta(p)
		g := p.Grad.Data()
		for i, w := range p.W.Data() {
			d := w - b
			if w < b {
				g[i] += 2 * s.Lambda1 * d
			} else {
				g[i] += 2 * s.Lambda2 * d
			}
		}
	}
}

// Scaled implements Scaler.
func (s *Skewed) Scaled(f float64) Regularizer {
	return &Skewed{
		Lambda1: s.Lambda1 * f, Lambda2: s.Lambda2 * f,
		Betas: s.Betas, DefaultBeta: s.DefaultBeta,
	}
}

// PenaltyAt evaluates the pointwise penalty of a single weight value —
// used to plot the regularizer shape of Fig. 7.
func (s *Skewed) PenaltyAt(w, beta float64) float64 {
	d := w - beta
	if w < beta {
		return s.Lambda1 * d * d
	}
	return s.Lambda2 * d * d
}

// BetasFromNetwork derives per-layer reference weights beta_i =
// factor * sigma_i from the current weight distributions of net, as the
// paper does from the conventionally trained network (Table II: "the
// reference weights were set to the standard deviation sigma_i
// multiplied by a constant value").
func BetasFromNetwork(net *nn.Network, factor float64) map[string]float64 {
	betas := make(map[string]float64)
	for _, p := range net.WeightParams() {
		betas[p.Name] = factor * p.W.Std()
	}
	return betas
}

// SkewnessOf measures the sample skewness of a weight slice; negative
// values mean a left tail (mass concentrated on the right), which is
// the signature of the distribution the skewed regularizer produces in
// resistance space. Returns 0 for fewer than 3 values or zero variance.
func SkewnessOf(w []float64) float64 {
	n := float64(len(w))
	if n < 3 {
		return 0
	}
	mean := 0.0
	for _, v := range w {
		mean += v
	}
	mean /= n
	m2, m3 := 0.0, 0.0
	for _, v := range w {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
