package train

import (
	"fmt"
	"io"

	"memlife/internal/dataset"
	"memlife/internal/nn"
	"memlife/internal/tensor"
)

// Config parameterizes a training run.
type Config struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	LRDecay   float64 // per-epoch multiplicative decay; 1 disables
	Reg       Regularizer
	Seed      int64
	GradClip  float64 // clip each gradient tensor's absolute values; 0 disables
	// RegWarmup linearly ramps the regularizer strength from 0 to full
	// over the first RegWarmup epochs (requires the regularizer to
	// implement Scaler). 0 disables the ramp.
	RegWarmup int
	Log       io.Writer // optional progress log
}

// Validate reports an error for degenerate configs.
func (c Config) Validate() error {
	switch {
	case c.Epochs < 1:
		return fmt.Errorf("train: epochs must be >= 1, got %d", c.Epochs)
	case c.BatchSize < 1:
		return fmt.Errorf("train: batch size must be >= 1, got %d", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("train: learning rate must be positive, got %g", c.LR)
	case c.LRDecay < 0 || c.LRDecay > 1:
		return fmt.Errorf("train: LR decay must be in [0,1], got %g", c.LRDecay)
	case c.GradClip < 0:
		return fmt.Errorf("train: gradient clip must be non-negative, got %g", c.GradClip)
	case c.RegWarmup < 0:
		return fmt.Errorf("train: RegWarmup must be non-negative, got %d", c.RegWarmup)
	}
	return nil
}

// Result summarizes a training run.
type Result struct {
	EpochLoss     []float64 // mean total cost (C + R) per epoch
	EpochTestAcc  []float64 // test accuracy after each epoch
	FinalTestAcc  float64
	FinalTrainAcc float64
}

// Train runs SGD training of net on trainDS, evaluating on testDS after
// each epoch. The regularizer defaults to None.
func Train(net *nn.Network, trainDS, testDS *dataset.Dataset, cfg Config) (Result, error) {
	var res Result
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	reg := cfg.Reg
	if reg == nil {
		reg = None{}
	}
	opt, err := NewSGD(cfg.LR, cfg.Momentum)
	if err != nil {
		return res, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	params := net.Params()

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochReg := reg
		if cfg.RegWarmup > 0 {
			if sc, ok := reg.(Scaler); ok {
				f := float64(epoch+1) / float64(cfg.RegWarmup)
				if f > 1 {
					f = 1
				}
				epochReg = sc.Scaled(f)
			}
		}
		batches := trainDS.Batches(cfg.BatchSize, rng)
		epochLoss := 0.0
		for _, b := range batches {
			net.ZeroGrads()
			logits := net.Forward(b.X, true)
			loss, dlogits := nn.SoftmaxCrossEntropy(logits, b.Y)
			net.Backward(dlogits)
			epochReg.AddGrad(params)
			if cfg.GradClip > 0 {
				for _, p := range params {
					p.Grad.Clamp(-cfg.GradClip, cfg.GradClip)
				}
			}
			opt.Step(params)
			epochLoss += loss + epochReg.Penalty(params)
		}
		epochLoss /= float64(len(batches))
		res.EpochLoss = append(res.EpochLoss, epochLoss)

		acc := Evaluate(net, testDS, cfg.BatchSize)
		res.EpochTestAcc = append(res.EpochTestAcc, acc)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d  loss %.4f  test acc %.4f\n", epoch+1, epochLoss, acc)
		}
		if cfg.LRDecay > 0 && cfg.LRDecay < 1 {
			opt.SetLR(opt.LR * cfg.LRDecay)
		}
	}
	res.FinalTestAcc = Evaluate(net, testDS, cfg.BatchSize)
	res.FinalTrainAcc = Evaluate(net, trainDS, cfg.BatchSize)
	return res, nil
}

// Evaluate returns net's accuracy over ds, evaluated in batches.
func Evaluate(net *nn.Network, ds *dataset.Dataset, batchSize int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for _, b := range ds.Batches(batchSize, nil) {
		pred := net.Predict(b.X)
		for i, p := range pred {
			if p == b.Y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}
