package train

import (
	"fmt"

	"memlife/internal/nn"
	"memlife/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum,
// implementing the weight update of eq. (3): W <- W - LR * dCost/dW.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*nn.Param]*tensor.Tensor
}

// NewSGD constructs an optimizer. momentum 0 gives plain SGD.
func NewSGD(lr, momentum float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("train: learning rate must be positive, got %g", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("train: momentum must be in [0,1), got %g", momentum)
	}
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*nn.Param]*tensor.Tensor)}, nil
}

// Step applies one update to every parameter from its accumulated
// gradient. Gradients are not cleared; call net.ZeroGrads() before the
// next backward pass.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			p.W.Axpy(-s.LR, p.Grad)
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			s.velocity[p] = v
		}
		// v <- mu*v - lr*g ; w <- w + v
		v.Scale(s.Momentum)
		v.Axpy(-s.LR, p.Grad)
		p.W.Axpy(1, v)
	}
}

// SetLR changes the learning rate (used by per-epoch decay schedules).
func (s *SGD) SetLR(lr float64) { s.LR = lr }
