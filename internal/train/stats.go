package train

import (
	"fmt"

	"memlife/internal/nn"
)

// LayerStats summarizes the weight distribution of one layer — the raw
// material of the distribution figures (Fig. 3a, 6a, 9) and of the
// beta_i = c * sigma_i parameter choice (Table II).
type LayerStats struct {
	Name     string
	Kind     nn.LayerKind
	Count    int
	Mean     float64
	Std      float64
	Min, Max float64
	Skewness float64
}

// NetworkStats returns per-layer weight statistics in network order.
func NetworkStats(net *nn.Network) []LayerStats {
	var out []LayerStats
	for _, wl := range net.WeightLayers() {
		w := wl.Param.W
		mn, mx := w.MinMax()
		out = append(out, LayerStats{
			Name:     wl.Param.Name,
			Kind:     wl.Kind,
			Count:    w.Size(),
			Mean:     w.Mean(),
			Std:      w.Std(),
			Min:      mn,
			Max:      mx,
			Skewness: SkewnessOf(w.Data()),
		})
	}
	return out
}

// GatherWeights concatenates all crossbar-mapped weights of net into one
// slice, for whole-network histograms.
func GatherWeights(net *nn.Network) []float64 {
	var out []float64
	for _, p := range net.WeightParams() {
		out = append(out, p.W.Data()...)
	}
	return out
}

// String renders the stats as one table row.
func (s LayerStats) String() string {
	kind := "fc"
	if s.Kind == nn.LayerConv {
		kind = "conv"
	}
	return fmt.Sprintf("%-10s %-4s n=%-7d mean=%+.4f std=%.4f min=%+.4f max=%+.4f skew=%+.3f",
		s.Name, kind, s.Count, s.Mean, s.Std, s.Min, s.Max, s.Skewness)
}
