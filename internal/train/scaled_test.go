package train

import (
	"math"
	"testing"

	"memlife/internal/dataset"
	"memlife/internal/nn"
	"memlife/internal/tensor"
)

func TestScaledRegularizers(t *testing.T) {
	net, err := nn.NewMLP("m", []int{4, 3}, tensor.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	params := net.Params()

	l2 := L2{Lambda: 0.4}
	half := l2.Scaled(0.5)
	if got, want := half.Penalty(params), 0.5*l2.Penalty(params); math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaled L2 penalty = %g, want %g", got, want)
	}

	sk, err := NewSkewed(0.8, 0.2, map[string]float64{"fc1.w": -0.1})
	if err != nil {
		t.Fatal(err)
	}
	skHalf := sk.Scaled(0.5)
	if got, want := skHalf.Penalty(params), 0.5*sk.Penalty(params); math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaled skewed penalty = %g, want %g", got, want)
	}
	// Scaling must not mutate the original.
	if sk.Lambda1 != 0.8 {
		t.Fatal("Scaled must return a copy")
	}
	// Betas are preserved by scaling.
	if skHalf.(*Skewed).Betas["fc1.w"] != -0.1 {
		t.Fatal("Scaled must preserve the reference weights")
	}

	var none None
	if none.Scaled(0.1).Penalty(params) != 0 {
		t.Fatal("scaled None is still zero")
	}
}

// TestRegWarmupStabilizesStrongPenalty reproduces the failure mode the
// warmup exists for: a strong skewed penalty applied from the first
// batch can collapse training, while the same penalty ramped over the
// first epochs must not.
func TestRegWarmupStabilizesStrongPenalty(t *testing.T) {
	cfg := dataset.SynthConfig{Classes: 4, TrainN: 240, TestN: 80, C: 3, H: 8, W: 8, Noise: 0.15, Seed: 33}
	trainDS, testDS := dataset.MustGenerate(cfg)

	run := func(warmup int) float64 {
		net, err := nn.NewMLP("m", []int{trainDS.SampleSize(), 24, 4}, tensor.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		sk, err := NewSkewed(0.5, 0.005, BetasFromNetwork(net, -0.5))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Train(net, trainDS, testDS, Config{
			Epochs: 6, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1,
			Reg: sk, RegWarmup: warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalTestAcc
	}
	warm := run(3)
	if warm < 0.5 {
		t.Fatalf("warmup-ramped skewed training accuracy %.3f too low", warm)
	}
}

func TestRegWarmupValidation(t *testing.T) {
	cfg := Config{Epochs: 1, BatchSize: 8, LR: 0.1, RegWarmup: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative RegWarmup must be rejected")
	}
}
