package train

import (
	"math"
	"testing"

	"memlife/internal/dataset"
	"memlife/internal/nn"
	"memlife/internal/tensor"
)

func tinyNet(t *testing.T, seed int64) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP("tiny", []int{4, 6, 3}, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestL2PenaltyValue(t *testing.T) {
	net := tinyNet(t, 1)
	for _, p := range net.WeightParams() {
		p.W.Fill(2)
	}
	l2 := L2{Lambda: 0.5}
	n := 0
	for _, p := range net.WeightParams() {
		n += p.W.Size()
	}
	want := 0.5 * 4 * float64(n)
	if got := l2.Penalty(net.Params()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("L2 penalty = %g, want %g", got, want)
	}
}

func TestL2SkipsBiases(t *testing.T) {
	net := tinyNet(t, 1)
	for _, p := range net.Params() {
		p.W.Fill(1)
	}
	l2 := L2{Lambda: 1}
	net.ZeroGrads()
	l2.AddGrad(net.Params())
	for _, p := range net.Params() {
		if p.Kind == nn.KindBias {
			if p.Grad.AbsMax() != 0 {
				t.Fatalf("bias %s must not be regularized", p.Name)
			}
		} else if p.Grad.AbsMax() == 0 {
			t.Fatalf("weight %s must be regularized", p.Name)
		}
	}
}

// TestRegularizerGradMatchesPenalty numerically differentiates both
// regularizers' Penalty and compares with AddGrad.
func TestRegularizerGradMatchesPenalty(t *testing.T) {
	skew, err := NewSkewed(0.3, 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	skew.DefaultBeta = 0.1
	regs := []Regularizer{L2{Lambda: 0.2}, skew}
	for _, reg := range regs {
		net := tinyNet(t, 2)
		params := net.Params()
		net.ZeroGrads()
		reg.AddGrad(params)
		const eps = 1e-6
		for _, p := range params {
			for i := 0; i < p.W.Size(); i += 3 {
				orig := p.W.Data()[i]
				p.W.Data()[i] = orig + eps
				up := reg.Penalty(params)
				p.W.Data()[i] = orig - eps
				dn := reg.Penalty(params)
				p.W.Data()[i] = orig
				want := (up - dn) / (2 * eps)
				got := p.Grad.Data()[i]
				if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
					t.Fatalf("%s: %s[%d] grad %g vs numeric %g", reg.Name(), p.Name, i, got, want)
				}
			}
		}
	}
}

func TestSkewedPenaltyPiecewise(t *testing.T) {
	s, err := NewSkewed(10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	beta := 0.5
	// Left of beta: strong penalty.
	if got := s.PenaltyAt(0, beta); math.Abs(got-10*0.25) > 1e-12 {
		t.Fatalf("left penalty = %g, want 2.5", got)
	}
	// Right of beta: weak penalty.
	if got := s.PenaltyAt(1, beta); math.Abs(got-1*0.25) > 1e-12 {
		t.Fatalf("right penalty = %g, want 0.25", got)
	}
	// At beta: zero.
	if got := s.PenaltyAt(beta, beta); got != 0 {
		t.Fatalf("penalty at beta = %g, want 0", got)
	}
	// Asymmetry: equidistant points cost 10x more on the left.
	if s.PenaltyAt(beta-0.2, beta) <= s.PenaltyAt(beta+0.2, beta) {
		t.Fatal("left side must be penalized harder than right side")
	}
}

func TestNewSkewedValidation(t *testing.T) {
	if _, err := NewSkewed(1, 2, nil); err == nil {
		t.Fatal("lambda1 < lambda2 must be rejected")
	}
	if _, err := NewSkewed(-1, -2, nil); err == nil {
		t.Fatal("negative penalties must be rejected")
	}
	if _, err := NewSkewed(2, 2, nil); err != nil {
		t.Fatalf("lambda1 == lambda2 is the paper's VGG setting and must be accepted: %v", err)
	}
}

func TestBetasFromNetwork(t *testing.T) {
	net := tinyNet(t, 3)
	betas := BetasFromNetwork(net, 2.0)
	if len(betas) != 2 {
		t.Fatalf("got %d betas, want 2 weight layers", len(betas))
	}
	for _, p := range net.WeightParams() {
		want := 2.0 * p.W.Std()
		if math.Abs(betas[p.Name]-want) > 1e-12 {
			t.Fatalf("beta[%s] = %g, want %g", p.Name, betas[p.Name], want)
		}
	}
}

func TestSkewnessOf(t *testing.T) {
	if SkewnessOf([]float64{1, 1}) != 0 {
		t.Fatal("skewness of tiny samples must be 0")
	}
	if SkewnessOf([]float64{5, 5, 5, 5}) != 0 {
		t.Fatal("skewness of constant sample must be 0")
	}
	// Right-tailed sample has positive skewness.
	right := []float64{0, 0, 0, 0, 0, 0, 0, 0, 10}
	if SkewnessOf(right) <= 0 {
		t.Fatalf("right-tailed skewness = %g, want > 0", SkewnessOf(right))
	}
	left := []float64{0, 10, 10, 10, 10, 10, 10, 10, 10}
	if SkewnessOf(left) >= 0 {
		t.Fatalf("left-tailed skewness = %g, want < 0", SkewnessOf(left))
	}
}

func TestSGDPlainStep(t *testing.T) {
	net := tinyNet(t, 4)
	p := net.WeightParams()[0]
	p.W.Fill(1)
	p.Grad.Fill(0.5)
	opt, err := NewSGD(0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt.Step([]*nn.Param{p})
	if math.Abs(p.W.Data()[0]-0.95) > 1e-12 {
		t.Fatalf("SGD step result = %g, want 0.95", p.W.Data()[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	net := tinyNet(t, 5)
	p := net.WeightParams()[0]
	p.W.Fill(0)
	opt, err := NewSGD(0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	p.Grad.Fill(1)
	opt.Step([]*nn.Param{p}) // v = -0.1, w = -0.1
	opt.Step([]*nn.Param{p}) // v = -0.19, w = -0.29
	if math.Abs(p.W.Data()[0]-(-0.29)) > 1e-12 {
		t.Fatalf("momentum result = %g, want -0.29", p.W.Data()[0])
	}
}

func TestNewSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0); err == nil {
		t.Fatal("zero LR must be rejected")
	}
	if _, err := NewSGD(0.1, 1); err == nil {
		t.Fatal("momentum 1 must be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Epochs: 1, BatchSize: 8, LR: 0.1, LRDecay: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Epochs: 0, BatchSize: 8, LR: 0.1},
		{Epochs: 1, BatchSize: 0, LR: 0.1},
		{Epochs: 1, BatchSize: 8, LR: 0},
		{Epochs: 1, BatchSize: 8, LR: 0.1, LRDecay: 2},
		{Epochs: 1, BatchSize: 8, LR: 0.1, GradClip: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}

// TestTrainingLearnsSyntheticTask is the package's end-to-end check: a
// small MLP must reach well-above-chance accuracy on the synthetic
// dataset within a few epochs.
func TestTrainingLearnsSyntheticTask(t *testing.T) {
	cfg := dataset.SynthConfig{Classes: 4, TrainN: 240, TestN: 80, C: 3, H: 8, W: 8, Noise: 0.15, Seed: 21}
	trainDS, testDS := dataset.MustGenerate(cfg)
	net, err := nn.NewMLP("m", []int{trainDS.SampleSize(), 32, 4}, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(net, trainDS, testDS, Config{
		Epochs: 8, BatchSize: 16, LR: 0.02, Momentum: 0.9, LRDecay: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc < 0.7 {
		t.Fatalf("final test accuracy %.3f < 0.7; training not learning", res.FinalTestAcc)
	}
	if len(res.EpochLoss) != 8 || len(res.EpochTestAcc) != 8 {
		t.Fatalf("history lengths %d/%d, want 8/8", len(res.EpochLoss), len(res.EpochTestAcc))
	}
	if res.EpochLoss[7] >= res.EpochLoss[0] {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", res.EpochLoss[0], res.EpochLoss[7])
	}
}

// relConductancePosition measures where the weight mass sits within
// each layer's [wMin, wMax] window — exactly the relative conductance
// position under the linear-in-g mapping of eq. (4). Conventional
// training sits near 0.5; skewed training must push it down (small
// conductances, Section IV-A).
func relConductancePosition(net *nn.Network) float64 {
	total, n := 0.0, 0
	for _, wp := range net.WeightParams() {
		mn, mx := wp.W.MinMax()
		if mx <= mn {
			continue
		}
		for _, w := range wp.W.Data() {
			total += (w - mn) / (mx - mn)
			n++
		}
	}
	return total / float64(n)
}

// TestSkewedTrainingShiftsDistribution trains the same net with L2 and
// with the skewed regularizer and verifies the skewed run concentrates
// the weight mass near the bottom of the weight range (low relative
// conductance), which is the aging mechanism of Section IV-A.
func TestSkewedTrainingShiftsDistribution(t *testing.T) {
	cfg := dataset.SynthConfig{Classes: 4, TrainN: 240, TestN: 80, C: 3, H: 8, W: 8, Noise: 0.15, Seed: 22}
	trainDS, testDS := dataset.MustGenerate(cfg)

	runWith := func(reg Regularizer, warmup int) (*nn.Network, Result) {
		net, err := nn.NewMLP("m", []int{trainDS.SampleSize(), 24, 4}, tensor.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Train(net, trainDS, testDS, Config{
			Epochs: 6, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1, Reg: reg, RegWarmup: warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net, res
	}

	l2Net, l2Res := runWith(L2{Lambda: 1e-4}, 0)

	betas := BetasFromNetwork(l2Net, -0.5) // wall at the left edge of the distribution
	skew, err := NewSkewed(0.5, 0.005, betas)
	if err != nil {
		t.Fatal(err)
	}
	skNet, skRes := runWith(skew, 2)

	l2Pos := relConductancePosition(l2Net)
	skPos := relConductancePosition(skNet)
	if skPos >= l2Pos-0.05 {
		t.Fatalf("skewed training must push mass to low conductance: L2 position %.3f, skewed %.3f", l2Pos, skPos)
	}
	// The skewed distribution has a right tail: positive skewness.
	if SkewnessOf(GatherWeights(skNet)) <= SkewnessOf(GatherWeights(l2Net)) {
		t.Fatal("skewed training must increase weight skewness (right tail)")
	}
	// Accuracy must stay usable (paper: slight drop for LeNet is fine).
	if skRes.FinalTestAcc < l2Res.FinalTestAcc-0.15 {
		t.Fatalf("skewed training lost too much accuracy: %.3f vs %.3f", skRes.FinalTestAcc, l2Res.FinalTestAcc)
	}
}

func TestNetworkStatsAndGatherWeights(t *testing.T) {
	net := tinyNet(t, 8)
	stats := NetworkStats(net)
	if len(stats) != 2 {
		t.Fatalf("stats count = %d, want 2", len(stats))
	}
	total := 0
	for _, s := range stats {
		total += s.Count
		if s.Std <= 0 {
			t.Fatalf("layer %s std = %g, want > 0 after init", s.Name, s.Std)
		}
		if s.String() == "" {
			t.Fatal("stats row must render")
		}
	}
	if got := len(GatherWeights(net)); got != total {
		t.Fatalf("GatherWeights length %d, want %d", got, total)
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	net := tinyNet(t, 9)
	empty := &dataset.Dataset{Images: tensor.New(0, 4), NumClasses: 3, C: 1, H: 2, W: 2}
	if Evaluate(net, empty, 4) != 0 {
		t.Fatal("empty dataset accuracy must be 0")
	}
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
