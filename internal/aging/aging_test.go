package aging

import (
	"math"
	"testing"
	"testing/quick"

	"memlife/internal/device"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{A: 0, B: 0, Ea: 0.6, M: 0.8, TrefK: 300},
		{A: 100, B: 200, Ea: 0.6, M: 0.8, TrefK: 300}, // B >= A
		{A: 100, B: 10, Ea: 0, M: 0.8, TrefK: 300},
		{A: 100, B: 10, Ea: 0.6, M: 0, TrefK: 300},
		{A: 100, B: 10, Ea: 0.6, M: 1.5, TrefK: 300},
		{A: 100, B: 10, Ea: 0.6, M: 0.8, TrefK: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: model %+v should be rejected", i, m)
		}
	}
}

func TestAccelNormalizedAtReference(t *testing.T) {
	m := DefaultModel()
	if math.Abs(m.Accel(m.TrefK)-1) > 1e-12 {
		t.Fatalf("Accel(Tref) = %g, want 1", m.Accel(m.TrefK))
	}
	if m.Accel(350) <= 1 {
		t.Fatal("higher temperature must accelerate aging")
	}
	if m.Accel(250) >= 1 {
		t.Fatal("lower temperature must decelerate aging")
	}
	// Arrhenius ratio check: ln(accel) linear in 1/T.
	lnA := math.Log(m.Accel(350))
	want := m.Ea / BoltzmannEV * (1/300.0 - 1/350.0)
	if math.Abs(lnA-want) > 1e-9 {
		t.Fatalf("Arrhenius form violated: ln(accel)=%g, want %g", lnA, want)
	}
}

func TestZeroStressNoAging(t *testing.T) {
	m := DefaultModel()
	p := device.Params32()
	lo, hi := m.Bounds(p, 0, 300)
	if lo != p.RminFresh || hi != p.RmaxFresh {
		t.Fatalf("fresh bounds = [%g, %g], want [%g, %g]", lo, hi, p.RminFresh, p.RmaxFresh)
	}
}

func TestBothBoundsDecrease(t *testing.T) {
	// Fig. 4: both the upper and the lower bound decrease with t.
	m := DefaultModel()
	p := device.Params32()
	lo, hi := m.Bounds(p, 50, 300)
	if hi >= p.RmaxFresh {
		t.Fatal("upper bound must decrease with stress")
	}
	if lo >= p.RminFresh {
		t.Fatal("lower bound must decrease with stress")
	}
	if hi-lo >= p.RmaxFresh-p.RminFresh {
		t.Fatal("range must shrink (A > B)")
	}
}

func TestUsableLevelCountDecays(t *testing.T) {
	// The level-count decay of Fig. 4 (8 levels fresh, 3 after aging),
	// scaled to the 32-level device.
	m := DefaultModel()
	p := device.Params32()
	prev := p.Levels
	for _, stress := range []float64{0, 5, 20, 80, 320} {
		lo, hi := m.Bounds(p, stress, 300)
		n := p.UsableLevels(lo, hi)
		if n > prev {
			t.Fatalf("usable levels increased with stress: %d -> %d at stress %g", prev, n, stress)
		}
		prev = n
	}
	if prev >= p.Levels {
		t.Fatal("heavy stress must remove levels")
	}
	// A fully worn device slides below the fresh grid entirely: zero
	// usable levels is the end-of-life state.
	lo, hi := m.Bounds(p, 1e6, 300)
	if p.UsableLevels(lo, hi) != 0 {
		t.Fatal("extreme stress must leave no usable levels")
	}
}

func TestLossesMonotoneInStressAndTemperature(t *testing.T) {
	m := DefaultModel()
	f := func(s1, s2 float64) bool {
		a := math.Abs(s1)
		b := math.Abs(s2)
		if a > b {
			a, b = b, a
		}
		return m.UpperLoss(a, 300) <= m.UpperLoss(b, 300) &&
			m.LowerLoss(a, 300) <= m.LowerLoss(b, 300)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if m.UpperLoss(10, 350) <= m.UpperLoss(10, 300) {
		t.Fatal("hotter devices must lose more range")
	}
}

func TestUpperAgesFasterThanLower(t *testing.T) {
	m := DefaultModel()
	for _, s := range []float64{1, 10, 100} {
		if m.UpperLoss(s, 300) <= m.LowerLoss(s, 300) {
			t.Fatalf("at stress %g upper loss %g must exceed lower loss %g", s, m.UpperLoss(s, 300), m.LowerLoss(s, 300))
		}
	}
}

func TestWindowNeverInverts(t *testing.T) {
	m := DefaultModel()
	p := device.Params32()
	for _, s := range []float64{1e3, 1e6, 1e9} {
		lo, hi := m.Bounds(p, s, 400)
		if hi < lo {
			t.Fatalf("window inverted at stress %g: [%g, %g]", s, lo, hi)
		}
		if hi-lo < p.LevelSpacing()*0.999 {
			t.Fatalf("window floor violated at stress %g: width %g", s, hi-lo)
		}
	}
}

func TestStressForUpperLossInverts(t *testing.T) {
	m := DefaultModel()
	for _, loss := range []float64{100, 5e3, 4e4} {
		s := m.StressForUpperLoss(loss, 300)
		back := m.UpperLoss(s, 300)
		if math.Abs(back-loss) > 1e-6*loss {
			t.Fatalf("inversion failed: loss %g -> stress %g -> loss %g", loss, s, back)
		}
	}
	if m.StressForUpperLoss(0, 300) != 0 {
		t.Fatal("zero loss needs zero stress")
	}
}

func TestCalibrationHalfRangeAt100Pulses(t *testing.T) {
	// DESIGN.md calibration: ~half of the Params32 range gone after
	// ~100 reference pulses at 300 K.
	m := DefaultModel()
	p := device.Params32()
	loss := m.UpperLoss(100, 300)
	halfRange := (p.RmaxFresh - p.RminFresh) / 2
	if loss < 0.5*halfRange || loss > 2*halfRange {
		t.Fatalf("calibration drifted: loss at 100 pulses = %g, want within 2x of %g", loss, halfRange)
	}
}

func TestNegativeStressPanics(t *testing.T) {
	m := DefaultModel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative stress")
		}
	}()
	m.UpperLoss(-1, 300)
}
