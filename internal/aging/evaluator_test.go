package aging

import (
	"math"
	"testing"

	"memlife/internal/device"
)

// TestEvaluatorBitIdentical sweeps stress, temperature, and model
// variations and requires Evaluator.Bounds to equal Model.Bounds with
// == — the precomputation must not change a single bit.
func TestEvaluatorBitIdentical(t *testing.T) {
	models := []Model{
		DefaultModel(),
		{A: 3000, B: 10, Ea: 0.9, M: 0.3, TrefK: 320},
		{A: 1, B: 0, Ea: 0.1, M: 1, TrefK: 300},
	}
	params := []device.Params{device.Params32(), device.Params64()}
	temps := []float64{250, 300, 300.5, 350, 400}
	stresses := []float64{0, 1e-12, 0.01, 0.5, 1, 3.7, 100, 1e6}
	for _, m := range models {
		for _, p := range params {
			for _, tK := range temps {
				e := m.Evaluator(p, tK)
				for _, s := range stresses {
					wantLo, wantHi := m.Bounds(p, s, tK)
					gotLo, gotHi := e.Bounds(s)
					if gotLo != wantLo || gotHi != wantHi {
						t.Fatalf("model %+v p.Levels=%d tK=%g stress=%g: evaluator [%v,%v], model [%v,%v]",
							m, p.Levels, tK, s, gotLo, gotHi, wantLo, wantHi)
					}
				}
			}
		}
	}
}

// TestEvaluatorPanicsLikeModel pins the shared input contract.
func TestEvaluatorPanicsLikeModel(t *testing.T) {
	e := DefaultModel().Evaluator(device.Params32(), 300)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("negative stress", func() { e.Bounds(-1) })
	mustPanic("non-positive temperature", func() { DefaultModel().Evaluator(device.Params32(), 0) })
	mustPanic("NaN guard parity", func() { DefaultModel().Bounds(device.Params32(), -math.SmallestNonzeroFloat64, 300) })
}
