// Package aging implements the paper's aging model for memristor
// resistance ranges (Section III, eq. (6)/(7)):
//
//	R_aged,max = R_fresh,max - f(T, t)
//	R_aged,min = R_fresh,min - g(T, t)
//
// where t is the accumulated programming history and T the operating
// temperature. Both aging functions are Arrhenius-accelerated power
// laws, the standard quantitative endurance-failure form for
// filamentary RRAM ([17], [18]): loss = A * exp(Ea/k * (1/Tref - 1/T))
// * t^M. The upper bound degrades faster than the lower bound
// (A > B), so the usable range shrinks from the top — the common
// scenario of Fig. 4 where level count decays from 8 to 3.
//
// The history variable t is the normalized programming stress
// accumulated by device.Device: each pulse contributes energy
// proportional to the programming power V^2*g, so low-conductance
// (skewed-weight) operation slows this clock down.
package aging

import (
	"fmt"
	"math"

	"memlife/internal/device"
)

// BoltzmannEV is the Boltzmann constant in eV/K.
const BoltzmannEV = 8.617333262e-5

// Model holds the aging-function parameters. The defaults returned by
// DefaultModel stand in for the measurement-extracted constants the
// paper references; see DESIGN.md for the calibration rationale.
type Model struct {
	// A scales the upper-bound loss f(T,t) in Ohms per stress^M.
	A float64 `json:"a"`
	// B scales the lower-bound loss g(T,t) in Ohms per stress^M.
	// B < A so the range shrinks as it slides down.
	B float64 `json:"b"`
	// Ea is the activation energy in eV.
	Ea float64 `json:"ea"`
	// M is the sub-linear stress exponent of the power law.
	M float64 `json:"m"`
	// TrefK is the reference temperature (K) at which acceleration is 1.
	TrefK float64 `json:"tref_k"`
}

// DefaultModel returns the calibration used throughout the experiments:
// roughly half of a Params32 device range is lost after ~100 reference
// (full-current) programming pulses at 300 K.
func DefaultModel() Model {
	return Model{A: 1200, B: 200, Ea: 0.6, M: 0.8, TrefK: 300}
}

// Validate reports an error for non-physical parameters.
func (m Model) Validate() error {
	switch {
	case m.A <= 0 || m.B < 0:
		return fmt.Errorf("aging: need A > 0 and B >= 0, got A=%g B=%g", m.A, m.B)
	case m.B >= m.A:
		return fmt.Errorf("aging: upper bound must age faster than lower (A > B), got A=%g B=%g", m.A, m.B)
	case m.Ea <= 0:
		return fmt.Errorf("aging: activation energy must be positive, got %g", m.Ea)
	case m.M <= 0 || m.M > 1:
		return fmt.Errorf("aging: stress exponent must be in (0,1], got %g", m.M)
	case m.TrefK <= 0:
		return fmt.Errorf("aging: reference temperature must be positive, got %g", m.TrefK)
	}
	return nil
}

// Accel returns the Arrhenius acceleration factor at temperature tK,
// normalized to 1 at TrefK. Higher temperatures age faster.
func (m Model) Accel(tK float64) float64 {
	if tK <= 0 {
		panic(fmt.Sprintf("aging: non-positive temperature %g K", tK))
	}
	return math.Exp(m.Ea / BoltzmannEV * (1/m.TrefK - 1/tK))
}

// UpperLoss returns f(T,t): the Ohms lost from the upper resistance
// bound after the given normalized stress at temperature tK.
func (m Model) UpperLoss(stress, tK float64) float64 {
	if stress < 0 {
		panic(fmt.Sprintf("aging: negative stress %g", stress))
	}
	if stress == 0 {
		return 0
	}
	return m.A * m.Accel(tK) * math.Pow(stress, m.M)
}

// LowerLoss returns g(T,t): the Ohms lost from the lower resistance
// bound.
func (m Model) LowerLoss(stress, tK float64) float64 {
	if stress < 0 {
		panic(fmt.Sprintf("aging: negative stress %g", stress))
	}
	if stress == 0 {
		return 0
	}
	return m.B * m.Accel(tK) * math.Pow(stress, m.M)
}

// Bounds returns the aged resistance window [lo, hi] of a device with
// the given technology parameters and accumulated stress (eq. (6)/(7)).
// Two physical floors apply: the lower bound never drops below a small
// positive fraction of the fresh LRS (a resistor cannot reach zero or
// negative resistance — a fully worn device pins near a short), and the
// window never collapses below one level spacing, so a dead device
// holds one state rather than inverting.
func (m Model) Bounds(p device.Params, stress, tK float64) (lo, hi float64) {
	hi = p.RmaxFresh - m.UpperLoss(stress, tK)
	lo = p.RminFresh - m.LowerLoss(stress, tK)
	if floor := 0.05 * p.RminFresh; lo < floor {
		lo = floor
	}
	if floor := p.LevelSpacing(); hi < lo+floor {
		hi = lo + floor
	}
	return lo, hi
}

// Evaluator is a Model bound to one technology and temperature with
// every stress-independent term precomputed: the Arrhenius acceleration
// (one exp), the fresh bounds, and the floors. Bounds then costs one
// math.Pow per distinct stress value instead of one exp plus two pows —
// the dominant cost of per-device aged-bounds evaluation in mapping and
// drift loops. The arithmetic association matches Model.UpperLoss /
// Model.LowerLoss / Model.Bounds exactly ((A*accel)*pow, Go's
// left-to-right evaluation of A*accel*pow), so Evaluator.Bounds is
// bit-identical to Model.Bounds for every input.
type Evaluator struct {
	aAccel, bAccel float64 // A*Accel(tK), B*Accel(tK)
	m              float64
	rmaxFresh      float64
	rminFresh      float64
	loFloor        float64 // 0.05 * RminFresh
	spacing        float64 // one level spacing, the minimum window width
}

// Evaluator precomputes the stress-independent parts of Bounds for the
// given technology and temperature. It panics on non-positive tK, like
// Accel.
func (m Model) Evaluator(p device.Params, tK float64) Evaluator {
	accel := m.Accel(tK)
	return Evaluator{
		aAccel:    m.A * accel,
		bAccel:    m.B * accel,
		m:         m.M,
		rmaxFresh: p.RmaxFresh,
		rminFresh: p.RminFresh,
		loFloor:   0.05 * p.RminFresh,
		spacing:   p.LevelSpacing(),
	}
}

// Bounds returns the aged window [lo, hi] for the given accumulated
// stress — bit-identical to Model.Bounds(p, stress, tK) at the
// evaluator's technology and temperature.
func (e Evaluator) Bounds(stress float64) (lo, hi float64) {
	if stress < 0 {
		panic(fmt.Sprintf("aging: negative stress %g", stress))
	}
	hi = e.rmaxFresh
	lo = e.rminFresh
	if stress != 0 {
		pw := math.Pow(stress, e.m)
		hi -= e.aAccel * pw
		lo -= e.bAccel * pw
	}
	if lo < e.loFloor {
		lo = e.loFloor
	}
	if hi < lo+e.spacing {
		hi = lo + e.spacing
	}
	return lo, hi
}

// StressForUpperLoss inverts f: the stress after which the upper bound
// has lost the given Ohms at temperature tK. Useful for computing
// expected lifetimes analytically in tests and benches.
func (m Model) StressForUpperLoss(loss, tK float64) float64 {
	if loss <= 0 {
		return 0
	}
	return math.Pow(loss/(m.A*m.Accel(tK)), 1/m.M)
}
