package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/fleet"
	"memlife/internal/spec"
)

// FleetArm is one configuration point of the fleet-survival study: a
// named mutation of the base fleet config.
type FleetArm struct {
	Name   string
	Mutate func(*fleet.Config)
}

// fleetArms enumerates the study grid: every balancer under every
// traffic pattern, the tuning-policy pair (lazy vs eager retuning),
// the no-replacement ablation, and a load sweep around the default
// operating point. All arms run at the same seed, so comparisons use
// common random numbers.
func fleetArms() []FleetArm {
	var arms []FleetArm
	for _, bal := range []string{fleet.BalRoundRobin, fleet.BalLeastAged, fleet.BalHashAffinity} {
		for _, pat := range []string{fleet.PatternDiurnal, fleet.PatternBursty, fleet.PatternZipf} {
			bal, pat := bal, pat
			arms = append(arms, FleetArm{
				Name: bal + "/" + pat,
				Mutate: func(c *fleet.Config) {
					c.Balancer = bal
					c.Traffic.Pattern = pat
				},
			})
		}
	}
	arms = append(arms,
		FleetArm{"rr/diurnal/lazy", func(c *fleet.Config) { c.Service.TuneMargin = 0 }},
		FleetArm{"rr/diurnal/eager", func(c *fleet.Config) { c.Service.TuneMargin = 0.05 }},
		FleetArm{"rr/diurnal/no-replace", func(c *fleet.Config) { c.Replace.Enabled = false }},
		FleetArm{"rr/diurnal/load-0.5x", func(c *fleet.Config) { c.Traffic.Load *= 0.5 }},
		FleetArm{"rr/diurnal/load-1.5x", func(c *fleet.Config) { c.Traffic.Load *= 1.5 }},
	)
	return arms
}

// FleetArmResult pairs an arm name with its completed simulation.
type FleetArmResult struct {
	Name string
	fleet.Result
}

// FleetSurvival runs the full arm grid of the fleet study against the
// spec-default device and aging physics. Unlike the lifetime
// experiments it needs no trained bundle: the fleet simulator models
// delivered accuracy through the usable-level headroom of each
// crossbar, not a concrete network.
func FleetSurvival(opt Options) ([]FleetArmResult, error) {
	s := spec.Defaults(spec.FixtureLeNet, opt.Fast)
	if opt.Seed != 0 {
		s.Run.Seed = opt.Seed
	}
	base := spec.DefaultFleet(s)
	var out []FleetArmResult
	for _, arm := range fleetArms() {
		if err := opt.Err(); err != nil {
			return nil, err
		}
		cfg := base
		arm.Mutate(&cfg)
		res, err := fleet.Run(opt.Context(), cfg, s.Device, s.Aging, s.TempK, s.Run.Seed)
		if err != nil {
			return nil, fmt.Errorf("fleet arm %s: %w", arm.Name, err)
		}
		out = append(out, FleetArmResult{Name: arm.Name, Result: res})
	}
	return out, nil
}

// fleetSurvivalMetrics flattens every arm's result into campaign
// metrics under its slug — e.g. "least-aged/zipf" contributes
// "least-aged-zipf/final_alive", "least-aged-zipf/acc_p99", ...
func fleetSurvivalMetrics(opt Options) (map[string]float64, error) {
	arms, err := FleetSurvival(opt)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64, len(arms)*15)
	for _, a := range arms {
		k := metricSlug(a.Name)
		for name, v := range a.Metrics() {
			m[k+"/"+name] = v
		}
	}
	return m, nil
}

// renderSurvival prints one arm's survival curve, downsampled to at
// most eight points.
func renderSurvival(w io.Writer, name string, pts []fleet.SurvivalPoint) {
	step := 1
	if len(pts) > 8 {
		step = (len(pts) + 7) / 8
	}
	fmt.Fprintf(w, "  %-24s", name)
	for i := 0; i < len(pts); i += step {
		fmt.Fprintf(w, " %4.2f@%-6d", pts[i].Alive, pts[i].Tick)
	}
	last := pts[len(pts)-1]
	if (len(pts)-1)%step != 0 {
		fmt.Fprintf(w, " %4.2f@%-6d", last.Alive, last.Tick)
	}
	fmt.Fprintln(w)
}

func init() {
	register(Experiment{
		ID:    "fleet-survival",
		Title: "Extension: fleet survival under traffic — balancers, tuning policy, replacement cost",
		Run: func(w io.Writer, opt Options) error {
			arms, err := FleetSurvival(opt)
			if err != nil {
				return err
			}
			var cells [][]string
			for _, a := range arms {
				first := "-"
				if a.FirstDeathTick > 0 {
					first = fmt.Sprintf("%d", a.FirstDeathTick)
				}
				cells = append(cells, []string{
					a.Name,
					fmt.Sprintf("%.2f", a.FinalAlive),
					fmt.Sprintf("%d", a.Deaths),
					first,
					fmt.Sprintf("%d", a.Served),
					fmt.Sprintf("%d", a.Dropped),
					fmt.Sprintf("%.3f", a.AccP99),
					fmt.Sprintf("%.2f", a.LatencyP99),
					fmt.Sprintf("%d", a.Retunes),
					fmt.Sprintf("%d", a.Remaps),
					fmt.Sprintf("%.1f", a.ReplacementCost),
				})
			}
			fmt.Fprintln(w, "Extension — fleet survival under synthetic traffic")
			fmt.Fprint(w, analysis.Table(
				[]string{"arm", "alive", "deaths", "1st death", "served", "dropped", "acc p99", "lat p99", "retunes", "remaps", "repl cost"},
				cells))
			fmt.Fprintln(w, "survival curves (alive fraction @ tick):")
			for _, a := range arms {
				switch a.Name {
				case "round-robin/diurnal", "least-aged/diurnal", "hash-affinity/zipf", "rr/diurnal/no-replace":
					renderSurvival(w, a.Name, a.Survival)
				}
			}
			fmt.Fprintln(w, "reading: hash-affinity concentrates wear on hot instances (earlier first death); least-aged")
			fmt.Fprintln(w, "spreads it; eager retuning buys tail accuracy with extra tuning wear; without replacement")
			fmt.Fprintln(w, "the fleet decays monotonically and the load sweep moves the drop/latency tail.")
			return nil
		},
		Metrics: fleetSurvivalMetrics,
	})
}
