package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/lifetime"
)

// Fig10Result holds the tuning-iteration trends of Fig. 10 for one
// network: iterations per cycle against cumulative applications, for
// the baseline and the full framework.
type Fig10Result struct {
	Network string
	TT      analysis.Series
	STAT    analysis.Series
	// LifeTT and LifeSTAT are the measured lifetimes in applications.
	LifeTT, LifeSTAT int64
}

// fig10For runs the two scenarios whose divergence Fig. 10 shows.
func fig10For(b *Bundle, opt Options) (Fig10Result, error) {
	out := Fig10Result{Network: b.Name}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return out, err
	}

	run := func(sc lifetime.Scenario, series *analysis.Series) (int64, error) {
		s := b.Spec
		s.Scenario = sc.String()
		res, err := runSpec(b, s, opt, target)
		if err != nil {
			return 0, err
		}
		for _, rec := range res.Records {
			series.AddPoint(float64(rec.Apps), float64(rec.TuneIters))
		}
		return res.Lifetime, nil
	}
	out.TT.Name = "T+T"
	out.STAT.Name = "ST+AT"
	if out.LifeTT, err = run(lifetime.TT, &out.TT); err != nil {
		return out, err
	}
	if out.LifeSTAT, err = run(lifetime.STAT, &out.STAT); err != nil {
		return out, err
	}
	return out, nil
}

// Fig10 reproduces Fig. 10 on the LeNet-5 test case (the VGG case is
// produced by the CLI in full mode via Fig10VGG).
func Fig10(opt Options) (Fig10Result, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return Fig10Result{}, err
	}
	return fig10For(b, opt)
}

// Fig10VGG reproduces Fig. 10 on the VGG-16 test case.
func Fig10VGG(opt Options) (Fig10Result, error) {
	b, err := VGGBundle(opt)
	if err != nil {
		return Fig10Result{}, err
	}
	return fig10For(b, opt)
}

// Fig11Result holds the layer-kind aging curves of Fig. 11: the mean
// aged upper resistance bound of convolutional vs fully-connected
// layers over the application stream.
type Fig11Result struct {
	Network string
	Conv    analysis.Series
	FC      analysis.Series
}

// Fig11 reproduces Fig. 11 on the LeNet-5 test case under the T+T
// scenario (aging is fastest there, making the asymmetry clearest).
func Fig11(opt Options) (Fig11Result, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return Fig11Result{}, err
	}
	out := Fig11Result{Network: b.Name}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return out, err
	}
	s := b.Spec
	s.Scenario = lifetime.TT.String()
	res, err := runSpec(b, s, opt, target)
	if err != nil {
		return out, err
	}
	out.Conv.Name = "conv layers"
	out.FC.Name = "fully-connected layers"
	for _, rec := range res.Records {
		out.Conv.AddPoint(float64(rec.Apps), rec.ConvUpper)
		out.FC.AddPoint(float64(rec.Apps), rec.FCUpper)
	}
	return out, nil
}

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Fig. 10: online-tuning iterations vs applications (T+T vs ST+AT)",
		Run: func(w io.Writer, opt Options) error {
			r, err := Fig10(opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Fig. 10 — %s (x = cumulative applications, y = tuning iterations)\n", r.Network)
			fmt.Fprint(w, r.TT.Render())
			fmt.Fprint(w, r.STAT.Render())
			fmt.Fprintf(w, "lifetimes: T+T=%d apps, ST+AT=%d apps\n", r.LifeTT, r.LifeSTAT)
			return nil
		},
	})
	register(Experiment{
		ID:    "fig10vgg",
		Title: "Fig. 10 (VGG-16 case): online-tuning iterations vs applications",
		Run: func(w io.Writer, opt Options) error {
			r, err := Fig10VGG(opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Fig. 10 — %s (x = cumulative applications, y = tuning iterations)\n", r.Network)
			fmt.Fprint(w, r.TT.Render())
			fmt.Fprint(w, r.STAT.Render())
			fmt.Fprintf(w, "lifetimes: T+T=%d apps, ST+AT=%d apps\n", r.LifeTT, r.LifeSTAT)
			return nil
		},
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Fig. 11: aging of conv vs fully-connected layers",
		Run: func(w io.Writer, opt Options) error {
			r, err := Fig11(opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Fig. 11 — %s mean aged upper resistance bound by layer kind\n", r.Network)
			fmt.Fprint(w, r.Conv.Render())
			fmt.Fprint(w, r.FC.Render())
			return nil
		},
	})
}
