package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/fault"
	"memlife/internal/lifetime"
)

// faultSweepRates are the stuck-device rates the sweep evaluates.
var faultSweepRates = []float64{0, 0.01, 0.05}

// FaultSweepFaults returns the fault-injection config of the sweep at
// one stuck rate. The sweep treats the rate as a single process-corner
// severity axis: arrays with more stuck cells also suffer
// proportionally more transient write failures and read-noise bursts,
// so every fault channel scales together and rate 0 is a genuinely
// clean array (the Table I baseline). The structural draws are nested
// (a device stuck at 1% is also stuck at 5% under the same seed), so
// moving along the axis only ever adds defects.
func FaultSweepFaults(rate float64, seed int64) fault.Config {
	return fault.Config{
		StuckRate: rate,
		// All stuck devices fuse at LRS: the max-conductance polarity,
		// whose parasitic column current dominates the accuracy damage
		// (a stuck-HRS cell merely loses one weight).
		LRSFrac: 1.0,
		// Transient write failures scale steeply with the defect rate
		// (a worse process corner degrades write margin array-wide), so
		// retries burn systematically more endurance at every step of
		// the sweep.
		TransientProb: 4 * rate,
		// Wear-out hazard calibrated against the measured stress
		// distribution: by end of life a T+T array's median device has
		// accumulated ~6-7 units of stress and its 98th percentile
		// ~11-17, so a mean capacity of 40 makes the heavily stressed
		// tail wear out in service while lightly stressed (skewed)
		// arrays barely lose devices — the aging-correlated hazard.
		HazardScale:   40,
		ReadBurstProb: rate / 2,
		Seed:          seed,
	}
}

// FaultSweepPoint is one (stuck rate, scenario, tolerance arm) result.
type FaultSweepPoint struct {
	Rate     float64
	Scenario lifetime.Scenario
	// Aware reports whether fault-aware remapping was enabled; the
	// false arm at the highest rate is the ablation.
	Aware    bool
	Lifetime int64
	Censored bool
	FinalAcc float64
	// DegradedAt is the first cycle of degraded (below-target) service;
	// 0 when the array never degraded.
	DegradedAt int
	// Stuck is the stuck-device count at the end of the run.
	Stuck int
}

// FaultSweep measures lifetime and delivered accuracy versus the
// stuck-device rate for the three scenarios of Table I, with
// fault-tolerant operation enabled (retry budget, stuck-skip, fault-
// aware remapping, graceful degradation to a 50% accuracy floor). At
// the highest rate it adds one ablation arm with fault-aware remapping
// disabled, quantifying what the tolerance mechanisms buy.
func FaultSweep(opt Options) ([]FaultSweepPoint, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	// The clean-array target of Table I sits a hair under the fresh
	// hardware accuracy; on a defective array that tightness turns every
	// small fault deficit into a tuning/remap death spiral. The sweep
	// therefore serves at a relaxed service-level target (90% of the
	// clean target, expressed as the spec's run.target_scale), leaving
	// the tolerance mechanisms an operating band in which defect density
	// — not target tightness — sets the lifetime.
	base := b.Spec
	base.Run.TargetScale = 0.9
	target, err := specTarget(b, base)
	if err != nil {
		return nil, err
	}

	type arm struct {
		rate  float64
		sc    lifetime.Scenario
		aware bool
	}
	var arms []arm
	for _, rate := range faultSweepRates {
		arms = append(arms,
			arm{rate, lifetime.TT, true},
			arm{rate, lifetime.STT, true},
			arm{rate, lifetime.STAT, true},
		)
	}
	ablRate := faultSweepRates[len(faultSweepRates)-1]
	arms = append(arms, arm{ablRate, lifetime.STAT, false})

	var points []FaultSweepPoint
	for _, a := range arms {
		s := base
		s.Scenario = a.sc.String()
		s.Lifetime.Faults = FaultSweepFaults(a.rate, s.Run.Seed)
		s.Lifetime.Mapping.FaultAware = a.aware
		s.Lifetime.DegradedAccFrac = 0.5
		res, err := runSpec(b, s, opt, target)
		if err != nil {
			return nil, fmt.Errorf("experiments: fault-sweep rate=%g %s: %w", a.rate, a.sc, err)
		}
		stuck := 0
		if n := len(res.Records); n > 0 {
			stuck = res.Records[n-1].Stuck
		}
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "fault-sweep: rate=%g %s aware=%v lifetime=%d acc=%.3f degradedAt=%d stuck=%d\n",
				a.rate, a.sc, a.aware, res.Lifetime, res.FinalAcc, res.DegradedAtCycle, stuck)
		}
		points = append(points, FaultSweepPoint{
			Rate:       a.rate,
			Scenario:   a.sc,
			Aware:      a.aware,
			Lifetime:   res.Lifetime,
			Censored:   !res.Failed,
			FinalAcc:   res.FinalAcc,
			DegradedAt: res.DegradedAtCycle,
			Stuck:      stuck,
		})
	}
	return points, nil
}

func renderFaultSweep(w io.Writer, points []FaultSweepPoint) {
	var cells [][]string
	for _, p := range points {
		life := fmt.Sprintf("%d", p.Lifetime)
		if p.Censored {
			life = ">=" + life
		}
		degraded := "-"
		if p.DegradedAt > 0 {
			degraded = fmt.Sprintf("cycle %d", p.DegradedAt)
		}
		remap := "fault-aware"
		if !p.Aware {
			remap = "plain (ablation)"
		}
		cells = append(cells, []string{
			fmt.Sprintf("%.0f%%", p.Rate*100),
			p.Scenario.String(),
			remap,
			life,
			fmt.Sprintf("%.3f", p.FinalAcc),
			degraded,
			fmt.Sprintf("%d", p.Stuck),
		})
	}
	fmt.Fprintln(w, "Fault sweep — lifetime and delivered accuracy vs stuck-device rate")
	fmt.Fprint(w, analysis.Table(
		[]string{"stuck", "scenario", "remapping", "lifetime", "final acc", "degraded", "stuck devices"},
		cells))
	fmt.Fprintln(w, "tolerance: pulse-retry budget + stuck-skip tuning + fault-aware remap + graceful degradation (0.5x accuracy floor)")
}

func init() {
	register(Experiment{
		ID:      "fault-sweep",
		Title:   "Fault sweep: lifetime vs stuck-device rate under fault-tolerant operation",
		Metrics: faultSweepMetrics,
		Run: func(w io.Writer, opt Options) error {
			points, err := FaultSweep(opt)
			if err != nil {
				return err
			}
			renderFaultSweep(w, points)
			return nil
		},
	})
}
