package experiments

import (
	"fmt"
	"strings"

	"memlife/internal/lifetime"
)

// This file adapts experiment drivers to the campaign engine: each
// converter runs the driver once and flattens its result rows into the
// flat metric map the campaign aggregates over seeds. Keys must be
// stable across seeds (no values inside keys that vary per run) so
// per-metric statistics group correctly.

// metricSlug derives a short, stable key fragment from a display name:
// lowercase, with runs of non-alphanumeric characters collapsed to
// single dashes ("LeNet-5 (MNIST)" -> "lenet-5-mnist"). The whole name
// participates — including any parenthesised qualifier — because
// distinct display names must map to distinct keys: the old slug
// stripped the qualifier and silently merged "MLP (MNIST)" and "MLP
// (CIFAR)" into one aggregated statistic. Dots survive (width
// qualifiers like "(x0.25)" use them); names without a qualifier keep
// their historical slugs ("LeNet-5" -> "lenet-5").
func metricSlug(name string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.':
			if dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = false
			b.WriteRune(r)
		default:
			dash = true
		}
	}
	return b.String()
}

// scenarioSlug flattens a lifetime scenario name into a key fragment:
// "ST+AT" -> "stat".
func scenarioSlug(sc lifetime.Scenario) string {
	return strings.ToLower(strings.ReplaceAll(sc.String(), "+", ""))
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// table1Metrics flattens Table I into per-network metrics.
func table1Metrics(opt Options) (map[string]float64, error) {
	rows, err := Table1(opt)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64)
	for _, r := range rows {
		k := metricSlug(r.Network)
		m[k+"/acc_normal"] = r.AccNormal
		m[k+"/acc_skewed"] = r.AccSkewed
		m[k+"/life_tt"] = float64(r.LifeTT)
		m[k+"/life_stt"] = float64(r.LifeSTT)
		m[k+"/life_stat"] = float64(r.LifeSTAT)
		m[k+"/ratio_stt"] = r.RatioSTT
		m[k+"/ratio_stat"] = r.RatioSTAT
		m[k+"/censored"] = boolMetric(r.CensoredTT || r.CensoredSTT || r.CensoredSTAT)
	}
	return m, nil
}

// faultSweepMetrics flattens the fault sweep into per-arm metrics. The
// stuck-rate axis is part of the key (the rates are a fixed grid, not
// per-seed values), so each (rate, scenario, arm) lifetime aggregates
// into its own distribution.
func faultSweepMetrics(opt Options) (map[string]float64, error) {
	points, err := FaultSweep(opt)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64)
	for _, pt := range points {
		k := fmt.Sprintf("r%g/%s", pt.Rate*100, scenarioSlug(pt.Scenario))
		if !pt.Aware {
			k += "-noremap"
		}
		m[k+"/life"] = float64(pt.Lifetime)
		m[k+"/final_acc"] = pt.FinalAcc
		m[k+"/stuck"] = float64(pt.Stuck)
		m[k+"/degraded_at"] = float64(pt.DegradedAt)
	}
	return m, nil
}

// fig4Metrics summarises the single-device aging trajectory. It is
// deterministic (no RNG), which makes it the cheap vehicle for campaign
// plumbing tests: every seed must produce identical metrics.
func fig4Metrics(opt Options) (map[string]float64, error) {
	pts, err := Fig4(opt)
	if err != nil {
		return nil, err
	}
	first, last := pts[0], pts[len(pts)-1]
	return map[string]float64{
		"levels_fresh": float64(first.UsableLevels),
		"levels_final": float64(last.UsableLevels),
		"upper_final":  last.UpperBound,
		"lower_final":  last.LowerBound,
		"points":       float64(len(pts)),
	}, nil
}
