package experiments

import (
	"fmt"
	"io"

	"memlife/internal/aging"
	"memlife/internal/analysis"
	"memlife/internal/crossbar"
	"memlife/internal/device"
	"memlife/internal/nn"
)

// DifferentialRow compares one mapping scheme on one trained network.
type DifferentialRow struct {
	Network string
	Weights string // "conventional" or "skewed"
	Scheme  string // "single (eq. 4)" or "differential pair"
	// Devices is the number of memristors used per weight matrix cell.
	Devices int
	// MeanRelConductance is the aging-relevant current statistic.
	MeanRelConductance float64
	// MapStress is the total normalized stress of the initial mapping.
	MapStress float64
}

// Differential is an extension experiment beyond the paper: it compares
// the paper's single-device range mapping (eq. (4)) against the
// common differential-pair scheme, for both conventionally and
// skew-trained LeNet weights. Differential pairs buy low currents for
// quasi-normal weights with 2x devices and subtracting read-out; the
// paper's skewed training reaches a similar operating point with no
// extra hardware.
func Differential(opt Options) ([]DifferentialRow, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	p := DeviceParams()
	m := AgingModel()

	var rows []DifferentialRow
	err = b.Exclusive(func() error { // reads live weights; lock out lifetime sims
		return differentialRows(b, p, m, &rows)
	})
	return rows, err
}

func differentialRows(b *Bundle, p device.Params, m aging.Model, rows *[]DifferentialRow) error {
	for _, variant := range []struct {
		name string
		net  *nn.Network
	}{{"conventional", b.Normal}, {"skewed", b.Skewed}} {
		for _, wl := range variant.net.WeightLayers()[:1] { // fc-scale stats from the first conv layer
			w := wl.Param.W

			single, err := crossbar.New(w.Dim(0), w.Dim(1), p, m, TempK)
			if err != nil {
				return err
			}
			single.MapWeights(w, p.RminFresh, p.RmaxFresh)
			gMin, gMax := p.GminFresh(), p.GmaxFresh()
			rel, n := 0.0, 0
			for i := 0; i < single.Rows; i++ {
				for j := 0; j < single.Cols; j++ {
					rel += (single.Device(i, j).Conductance() - gMin) / (gMax - gMin)
					n++
				}
			}
			*rows = append(*rows, DifferentialRow{
				Network: b.Name, Weights: variant.name, Scheme: "single (eq. 4)",
				Devices:            1,
				MeanRelConductance: rel / float64(n),
				MapStress:          single.TotalStress(),
			})

			diff, err := crossbar.NewDifferential(w.Dim(0), w.Dim(1), p, m, TempK)
			if err != nil {
				return err
			}
			diff.MapWeights(w)
			*rows = append(*rows, DifferentialRow{
				Network: b.Name, Weights: variant.name, Scheme: "differential pair",
				Devices:            2,
				MeanRelConductance: diff.MeanRelConductance(),
				MapStress:          diff.TotalStress(),
			})
		}
	}
	return nil
}

func init() {
	register(Experiment{
		ID:    "differential",
		Title: "Extension: single-device (eq. 4) vs differential-pair mapping",
		Run: func(w io.Writer, opt Options) error {
			rows, err := Differential(opt)
			if err != nil {
				return err
			}
			var cells [][]string
			for _, r := range rows {
				cells = append(cells, []string{
					r.Network, r.Weights, r.Scheme,
					fmt.Sprintf("%d", r.Devices),
					fmt.Sprintf("%.3f", r.MeanRelConductance),
					fmt.Sprintf("%.1f", r.MapStress),
				})
			}
			fmt.Fprintln(w, "Extension — mapping-scheme comparison (conv1 of LeNet-5)")
			fmt.Fprint(w, analysis.Table(
				[]string{"network", "weights", "scheme", "devices/weight", "mean rel g", "map stress"}, cells))
			fmt.Fprintln(w, "reading: differential pairs reach low currents with 2x hardware; skewed training reaches them with 1x")
			return nil
		},
	})
}
