package experiments

import (
	"bytes"
	"strings"
	"testing"

	"memlife/internal/analysis"
	"memlife/internal/lifetime"
	"memlife/internal/train"
)

var testOpt = Options{Fast: true, Seed: 1}

func TestRegistryCompleteness(t *testing.T) {
	// Every table and figure of the paper's evaluation must have a
	// registered driver (DESIGN.md section 4).
	want := []string{
		"table1", "table2",
		"fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig10vgg", "fig11",
		"ablation-stress", "ablation-tracing", "ablation-levels", "ablation-policy",
		"related-work", "differential", "temperature", "fault-sweep",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want at least %d", len(All()), len(want))
	}
	for _, e := range All() {
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q must have a title and a runner", e.ID)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("no-such-experiment"); ok {
		t.Fatal("unknown ids must not resolve")
	}
}

func TestLeNetBundleCachedAndTrained(t *testing.T) {
	b1, err := LeNetBundle(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if b1.NormalAcc < 0.5 {
		t.Fatalf("conventional LeNet accuracy %.3f too low; fixture broken", b1.NormalAcc)
	}
	if b1.SkewedAcc < b1.NormalAcc-0.2 {
		t.Fatalf("skewed LeNet accuracy %.3f collapsed vs %.3f", b1.SkewedAcc, b1.NormalAcc)
	}
	b2, err := LeNetBundle(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("bundles must be cached per (fast, seed)")
	}
}

// TestFig3VsFig6Mechanism asserts the paper's central distribution
// claim: skewed training moves the weight mass to low conductances.
func TestFig3VsFig6Mechanism(t *testing.T) {
	d3, err := Fig3(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	d6, err := Fig6(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if d6.MeanRelConductance >= d3.MeanRelConductance-0.1 {
		t.Fatalf("skewed mean relative conductance %.3f must sit well below conventional %.3f",
			d6.MeanRelConductance, d3.MeanRelConductance)
	}
	if d6.WeightSkewness <= d3.WeightSkewness {
		t.Fatalf("skewed weight skewness %.3f must exceed conventional %.3f",
			d6.WeightSkewness, d3.WeightSkewness)
	}
	if d6.HighResistanceMass <= d3.HighResistanceMass {
		t.Fatal("skewed training must put more devices at high resistance")
	}
	// The two weight distributions are far apart in KS distance.
	b, err := LeNetBundle(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	ks := analysis.KSStatistic(train.GatherWeights(b.Normal), train.GatherWeights(b.Skewed))
	if ks < 0.2 {
		t.Fatalf("KS distance between conventional and skewed weights = %.3f, want a clear shift", ks)
	}
}

func TestFig4LevelDecay(t *testing.T) {
	pts, err := Fig4(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].UsableLevels != DeviceParams().Levels {
		t.Fatalf("fresh device must expose all %d levels", DeviceParams().Levels)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].UpperBound > pts[i-1].UpperBound {
			t.Fatal("upper bound must decrease with stress")
		}
		if pts[i].UsableLevels > pts[i-1].UsableLevels {
			t.Fatal("usable levels must not recover")
		}
	}
	if pts[len(pts)-1].UsableLevels >= pts[0].UsableLevels/2 {
		t.Fatal("sweep must reach substantial level loss")
	}
}

func TestFig7PenaltyShape(t *testing.T) {
	r, err := Fig7(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lambda1 < r.Lambda2 {
		t.Fatal("lambda1 must dominate lambda2 for LeNet")
	}
	// The penalty is asymmetric around beta: strictly higher at
	// beta - d than at beta + d.
	left := r.Beta - 0.1
	right := r.Beta + 0.1
	var leftPen, rightPen float64
	for i, x := range r.Penalty.X {
		if x <= left {
			leftPen = r.Penalty.Y[i]
		}
		if x <= right {
			rightPen = r.Penalty.Y[i]
		}
	}
	if leftPen <= rightPen {
		t.Fatalf("penalty left of beta (%.4g) must exceed right (%.4g)", leftPen, rightPen)
	}
}

func TestFig8SelectionBelowFresh(t *testing.T) {
	r, err := Fig8(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Candidates) < 2 {
		t.Fatalf("uneven aging must produce multiple candidates, got %d", len(r.Candidates))
	}
	if r.ChosenRHi >= r.FreshRHi {
		t.Fatal("aged layer selection must sit below the fresh bound")
	}
}

func TestTable2RowsStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 trains the VGG bundle; skipped in -short")
	}
	rows, err := Table2(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// 5 LeNet weight layers + 16 VGG weight layers.
	if len(rows) != 21 {
		t.Fatalf("Table II rows = %d, want 21", len(rows))
	}
	for _, r := range rows {
		if r.Sigma <= 0 {
			t.Fatalf("layer %s sigma must be positive", r.Layer)
		}
		if r.Beta >= 0 {
			t.Fatalf("layer %s beta must sit at the left edge (negative), got %g", r.Layer, r.Beta)
		}
	}
}

// TestTable1BundleOrdering runs the headline comparison at a reduced
// budget and checks the scenario ordering the paper reports.
func TestTable1BundleOrdering(t *testing.T) {
	b, err := LeNetBundle(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lifetime.DefaultConfig()
	cfg.TargetAcc = target
	cfg.AppsPerCycle = 1000
	cfg.MaxCycles = 25
	cfg.Tuning.MaxIters = 25
	cfg.EvalN = 48
	row, err := Table1BundleWithConfig(b, testOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.LifeSTT < row.LifeTT {
		t.Fatalf("ST+T lifetime %d must be >= T+T %d", row.LifeSTT, row.LifeTT)
	}
	if row.LifeSTAT < row.LifeTT {
		t.Fatalf("ST+AT lifetime %d must be >= T+T %d", row.LifeSTAT, row.LifeTT)
	}
}

func TestFig10SeriesShape(t *testing.T) {
	r, err := Fig10(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TT.X) == 0 || len(r.STAT.X) == 0 {
		t.Fatal("both scenario series must have points")
	}
	if r.LifeSTAT < r.LifeTT {
		t.Fatalf("ST+AT lifetime %d must be >= T+T %d", r.LifeSTAT, r.LifeTT)
	}
}

func TestFig11ConvAgesFaster(t *testing.T) {
	r, err := Fig11(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Conv.Y) == 0 {
		t.Fatal("conv series must have points")
	}
	last := len(r.Conv.Y) - 1
	if r.Conv.Y[last] >= r.FC.Y[last] {
		t.Fatalf("conv layers must age faster: conv upper %.0f vs fc %.0f", r.Conv.Y[last], r.FC.Y[last])
	}
}

func TestAblationStressModelKillsSkewAdvantage(t *testing.T) {
	rows, err := AblationStressModel(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("stress ablation rows = %d, want 4", len(rows))
	}
	byKey := map[string]int64{}
	for _, r := range rows {
		byKey[r.Variant+"/"+r.Scenario] = r.Lifetime
	}
	// With power-proportional stress ST+T beats T+T; with uniform
	// stress the advantage must shrink (ratio closer to 1).
	powered := float64(byKey["power-proportional stress/ST+T"]) / float64(max64(1, byKey["power-proportional stress/T+T"]))
	uniform := float64(byKey["uniform per-pulse stress/ST+T"]) / float64(max64(1, byKey["uniform per-pulse stress/T+T"]))
	if powered <= uniform {
		t.Fatalf("removing the power coupling must shrink the skew advantage: %0.2f vs %0.2f", powered, uniform)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestRunnersProduceOutput executes the cheap registered experiments
// end-to-end through their Run functions.
func TestRunnersProduceOutput(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig6", "fig7", "fig8"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf, testOpt); err != nil {
			t.Fatalf("%s failed: %v", id, err)
		}
		if !strings.Contains(buf.String(), "Fig.") {
			t.Fatalf("%s produced no figure output:\n%s", id, buf.String())
		}
	}
}
