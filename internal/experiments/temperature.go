package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/lifetime"
)

// TemperatureRow is one operating point of the temperature sweep.
type TemperatureRow struct {
	TempK    float64
	Accel    float64 // Arrhenius acceleration factor vs 300 K
	Scenario string
	Lifetime int64
	Censored bool
}

// TemperatureSweep is an extension beyond the paper's evaluation: the
// aging functions of eq. (6)/(7) are Arrhenius-accelerated, so the
// operating temperature directly scales the aging clock. The sweep
// measures T+T and ST+T lifetimes across operating temperatures and
// checks that the skewed-training advantage survives thermal
// acceleration (both scenarios share the Arrhenius factor).
func TemperatureSweep(opt Options) ([]TemperatureRow, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	// The target is derived once at the base operating point (300 K) so
	// all temperatures serve the same accuracy contract.
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return nil, err
	}
	m := b.Spec.Aging
	temps := []float64{294, 300, 306}
	var rows []TemperatureRow
	for _, tK := range temps {
		for _, sc := range []lifetime.Scenario{lifetime.TT, lifetime.STT} {
			s := b.Spec
			s.Scenario = sc.String()
			s.TempK = tK
			res, err := runSpec(b, s, opt, target)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TemperatureRow{
				TempK: tK, Accel: m.Accel(tK), Scenario: sc.String(),
				Lifetime: res.Lifetime, Censored: !res.Failed,
			})
		}
	}
	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "temperature",
		Title: "Extension: lifetime vs operating temperature (Arrhenius sweep)",
		Run: func(w io.Writer, opt Options) error {
			rows, err := TemperatureSweep(opt)
			if err != nil {
				return err
			}
			var cells [][]string
			for _, r := range rows {
				life := fmt.Sprintf("%d", r.Lifetime)
				if r.Censored {
					life = ">=" + life
				}
				cells = append(cells, []string{
					fmt.Sprintf("%.0f", r.TempK),
					fmt.Sprintf("%.2fx", r.Accel),
					r.Scenario,
					life,
				})
			}
			fmt.Fprintln(w, "Extension — lifetime vs operating temperature (LeNet-5)")
			fmt.Fprint(w, analysis.Table([]string{"T (K)", "aging accel", "scenario", "lifetime (apps)"}, cells))
			fmt.Fprintln(w, "reading: heat shortens every lifetime; the ST advantage persists because both scenarios share the Arrhenius factor")
			return nil
		},
	})
}
