package experiments

import (
	"fmt"
	"sync"

	"memlife/internal/aging"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/lifetime"
	"memlife/internal/nn"
	"memlife/internal/spec"
	"memlife/internal/tensor"
	"memlife/internal/train"
)

// bundleCache memoizes trained bundles per fixture fingerprint with
// per-key singleflight: the map mutex is held only for entry lookup,
// and each entry trains under its own sync.Once — so concurrent shards
// needing *different* fixtures train in parallel, while shards racing
// for the *same* fixture train it exactly once and share the result.
// The key is spec.FixtureFingerprint — a canonical hash of everything
// that shapes training (fixture name, skew constants, fast flag, seed)
// — so two configurations that differ in any fixture parameter can
// never share a cached bundle. Consumers that mutate the cached
// networks (the lifetime simulations overwrite live weights) do so
// under Bundle.Exclusive, snapshotting and restoring around their use,
// as all drivers do.
var bundleCache = struct {
	sync.Mutex
	m map[string]*bundleEntry
}{m: make(map[string]*bundleEntry)}

type bundleEntry struct {
	once sync.Once
	b    *Bundle
	err  error
}

func cachedBundle(s spec.Spec, opt Options, build func(spec.Spec, Options) (*Bundle, error)) (*Bundle, error) {
	key, err := s.FixtureFingerprint()
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	bundleCache.Lock()
	e, ok := bundleCache.m[key]
	if !ok {
		e = &bundleEntry{}
		bundleCache.m[key] = e
	}
	bundleCache.Unlock()
	e.once.Do(func() {
		if err := opt.Err(); err != nil {
			e.err = err
			return
		}
		e.b, e.err = build(s, opt)
	})
	if e.err != nil {
		// Failed builds (including cancelled ones) are not cached: drop
		// the entry so a later call can retry.
		bundleCache.Lock()
		if bundleCache.m[key] == e {
			delete(bundleCache.m, key)
		}
		bundleCache.Unlock()
	}
	return e.b, e.err
}

// SkewParams are the skewed-training constants of Table II; the type
// lives in internal/spec (the "fixture.skew" section of a scenario
// spec) and is aliased here for the drivers.
type SkewParams = spec.SkewParams

// LeNetSkewParams returns the LeNet-5 setting of Table II.
func LeNetSkewParams() SkewParams { return spec.LeNetSkew() }

// VGGSkewParams returns the VGG-16 setting of Table II.
func VGGSkewParams() SkewParams { return spec.VGGSkew() }

// Bundle holds one network/dataset test case of Table I, trained both
// conventionally (L2) and with the skewed regularizer.
type Bundle struct {
	Name        string
	DatasetName string
	TrainDS     *dataset.Dataset
	TestDS      *dataset.Dataset
	Normal      *nn.Network
	NormalAcc   float64
	Skewed      *nn.Network
	SkewedAcc   float64
	Skew        SkewParams
	// Spec is the resolved scenario spec the bundle was built from;
	// drivers derive their lifetime runs from it (base spec + a small
	// transform per experiment arm).
	Spec spec.Spec

	// mu serializes access to the live networks. Bundles are shared by
	// every experiment of a (fast, seed) configuration, and both the
	// lifetime simulations (which overwrite live weights and restore a
	// snapshot afterwards) and the distribution readers touch the same
	// parameter tensors — unguarded concurrent use would race.
	mu sync.Mutex
}

// Exclusive runs f while holding the bundle's network lock. Every
// driver window that mounts, mutates, or reads the cached networks
// runs under it, which is what makes experiments safe to execute
// concurrently (campaign shards, parallel -all) while keeping their
// output identical to a sequential run. The lock is not reentrant: do
// not nest Exclusive calls.
func (b *Bundle) Exclusive(f func() error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return f()
}

// BaseSpec returns the resolved spec a named experiment starts from:
// the package defaults for the fixture at the options' scale, with the
// run seed and evaluation workers injected. Every registered
// experiment is this base plus a small transform.
func BaseSpec(fixture string, opt Options) spec.Spec {
	s := spec.Defaults(fixture, opt.Fast)
	s.Run.Seed = opt.Seed
	s.Run.Workers = opt.Workers
	return s
}

// DeviceParams returns the memristor technology used by all experiments.
func DeviceParams() device.Params { return spec.Defaults(spec.FixtureLeNet, false).Device }

// AgingModel returns the aging calibration used by all experiments (see
// spec.Defaults for the acceleration rationale).
func AgingModel() aging.Model { return spec.Defaults(spec.FixtureLeNet, false).Aging }

// TempK is the operating temperature of all experiments; it matches the
// temp_k default of spec.Defaults.
const TempK = 300.0

// BundleForSpec builds (or returns the cached) trained bundle for the
// spec's fixture section.
func BundleForSpec(s spec.Spec, opt Options) (*Bundle, error) {
	switch s.Fixture.Name {
	case spec.FixtureLeNet:
		return cachedBundle(s, opt, buildLeNetBundle)
	case spec.FixtureVGG:
		return cachedBundle(s, opt, buildVGGBundle)
	default:
		return nil, fmt.Errorf("experiments: unknown fixture %q", s.Fixture.Name)
	}
}

// LeNetBundle builds (or returns the cached) LeNet-5 / SynthCIFAR10
// test case.
func LeNetBundle(opt Options) (*Bundle, error) {
	return BundleForSpec(BaseSpec(spec.FixtureLeNet, opt), opt)
}

func buildLeNetBundle(s spec.Spec, opt Options) (*Bundle, error) {
	seed := s.Run.Seed
	dsCfg := dataset.SynthConfig{Classes: 10, TrainN: 800, TestN: 200, C: 3, H: 16, W: 16, Noise: 0.5, Seed: seed}
	netCfg := nn.LeNetConfig{InC: 3, H: 16, W: 16, Classes: 10}
	trainCfg := train.Config{Epochs: 10, BatchSize: 32, LR: 0.02, Momentum: 0.9, LRDecay: 0.95, Seed: seed, Log: opt.Log}
	if s.Run.Fast {
		dsCfg.TrainN, dsCfg.TestN = 240, 80
		dsCfg.H, dsCfg.W = 12, 12
		netCfg.H, netCfg.W = 12, 12
		trainCfg.Epochs = 8
	}
	trainDS, testDS, err := dataset.Generate(dsCfg)
	if err != nil {
		return nil, err
	}
	build := func(rngSeed int64) (*nn.Network, error) { return nn.NewLeNet5(netCfg, tensor.NewRNG(rngSeed)) }
	return makeBundle("LeNet-5", "SynthCIFAR10", trainDS, testDS, build, trainCfg, s, opt)
}

// VGGBundle builds (or returns the cached) VGG-16 / SynthCIFAR100 test
// case. Full mode uses a width-reduced VGG-16 on a 50-class dataset so
// CPU training stays in the minutes range; fast mode shrinks further
// (see DESIGN.md).
func VGGBundle(opt Options) (*Bundle, error) {
	return BundleForSpec(BaseSpec(spec.FixtureVGG, opt), opt)
}

func buildVGGBundle(s spec.Spec, opt Options) (*Bundle, error) {
	seed := s.Run.Seed
	dsCfg := dataset.SynthConfig{Classes: 50, TrainN: 1500, TestN: 300, C: 3, H: 32, W: 32, Noise: 0.35, Seed: seed + 100}
	netCfg := nn.VGGConfig{InC: 3, H: 32, W: 32, Classes: 50, WidthMult: 0.125, FCWidth: 64}
	trainCfg := train.Config{Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, LRDecay: 0.95, GradClip: 1.0, Seed: seed, Log: opt.Log}
	if s.Run.Fast {
		dsCfg.Classes, dsCfg.TrainN, dsCfg.TestN = 10, 400, 80
		dsCfg.Noise = 0.3
		netCfg.Classes = 10
		trainCfg.Epochs = 6
	}
	trainDS, testDS, err := dataset.Generate(dsCfg)
	if err != nil {
		return nil, err
	}
	build := func(rngSeed int64) (*nn.Network, error) { return nn.NewVGG16(netCfg, tensor.NewRNG(rngSeed)) }
	name := "VGG-16"
	if netCfg.WidthMult != 1 {
		name = fmt.Sprintf("VGG-16(x%g)", netCfg.WidthMult)
	}
	return makeBundle(name, "SynthCIFAR100", trainDS, testDS, build, trainCfg, s, opt)
}

// makeBundle trains the network twice from the same initialization:
// once with L2 (the "traditional" weights) and once with the skewed
// regularizer seeded from the L2 run's per-layer sigmas (Table II).
func makeBundle(name, dsName string, trainDS, testDS *dataset.Dataset,
	build func(int64) (*nn.Network, error), cfg train.Config, s spec.Spec, opt Options) (*Bundle, error) {

	skew := s.Fixture.Skew
	normal, err := build(s.Run.Seed + 7)
	if err != nil {
		return nil, err
	}
	l2cfg := cfg
	l2cfg.Reg = train.L2{Lambda: 1e-4}
	normalRes, err := train.Train(normal, trainDS, testDS, l2cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s normal training: %w", name, err)
	}

	if err := opt.Err(); err != nil {
		return nil, err
	}
	betas := train.BetasFromNetwork(normal, skew.BetaFactor)
	reg, err := train.NewSkewed(skew.Lambda1, skew.Lambda2, betas)
	if err != nil {
		return nil, err
	}
	skewed, err := build(s.Run.Seed + 7) // identical initialization
	if err != nil {
		return nil, err
	}
	skCfg := cfg
	skCfg.Reg = reg
	skCfg.RegWarmup = cfg.Epochs / 3
	skewedRes, err := train.Train(skewed, trainDS, testDS, skCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s skewed training: %w", name, err)
	}

	return &Bundle{
		Name:        name,
		DatasetName: dsName,
		TrainDS:     trainDS,
		TestDS:      testDS,
		Normal:      normal,
		NormalAcc:   normalRes.FinalTestAcc,
		Skewed:      skewed,
		SkewedAcc:   skewedRes.FinalTestAcc,
		Skew:        skew,
		Spec:        s,
	}, nil
}

// runSpec executes the lifetime simulation one resolved spec describes,
// using the bundle's trained networks: the scenario picks the weights
// (T+T serves the conventionally trained network, ST+* the skewed one)
// and the spec supplies device, aging, temperature and the full
// lifetime budget. It runs under the bundle's network lock, leaving the
// weights untouched.
func runSpec(b *Bundle, s spec.Spec, opt Options, target float64) (lifetime.Result, error) {
	sc, err := s.ScenarioKind()
	if err != nil {
		return lifetime.Result{}, fmt.Errorf("experiments: %w", err)
	}
	net := b.Normal
	if sc != lifetime.TT {
		net = b.Skewed
	}
	cfg := s.LifetimeConfig(target)
	var res lifetime.Result
	err = b.Exclusive(func() error {
		snap := net.SnapshotParams()
		defer net.RestoreParams(snap)
		var err error
		res, err = lifetime.RunCtx(opt.Context(), net, b.TrainDS, sc, s.Device, s.Aging, s.TempK, cfg)
		return err
	})
	return res, err
}

// ScenarioTarget picks one target accuracy per bundle, achievable by
// both the normal and the skewed variant right after a fresh mapping
// (minus a small margin), mirroring the paper's per-network target.
func ScenarioTarget(b *Bundle, opt Options) (float64, error) { return specTarget(b, b.Spec) }

// specTarget resolves the spec's effective tuning target: an explicit
// lifetime.target_acc wins; otherwise the target is auto-derived as
// min(fresh-mapped accuracy of both trained variants) - target_margin,
// scaled by target_scale.
func specTarget(b *Bundle, s spec.Spec) (float64, error) {
	if s.Lifetime.TargetAcc > 0 {
		return s.Lifetime.TargetAcc, nil
	}
	margin := s.Run.TargetMargin
	evalN := s.Lifetime.EvalN
	var tn, ts float64
	err := b.Exclusive(func() error {
		// SuggestTarget maps the network (overwriting live weights
		// before restoring its snapshot), so it needs the lock.
		var err error
		tn, err = lifetime.SuggestTarget(b.Normal, b.TrainDS, s.Device, s.Aging, s.TempK, evalN, margin)
		if err != nil {
			return err
		}
		ts, err = lifetime.SuggestTarget(b.Skewed, b.TrainDS, s.Device, s.Aging, s.TempK, evalN, margin)
		return err
	})
	if err != nil {
		return 0, err
	}
	if ts < tn {
		tn = ts
	}
	return tn * s.Run.TargetScale, nil
}
