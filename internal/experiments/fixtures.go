package experiments

import (
	"fmt"
	"sync"

	"memlife/internal/aging"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/lifetime"
	"memlife/internal/nn"
	"memlife/internal/tensor"
	"memlife/internal/train"
)

// bundleCache memoizes trained bundles per (kind, fast, seed) with
// per-key singleflight: the map mutex is held only for entry lookup,
// and each entry trains under its own sync.Once — so concurrent shards
// needing *different* fixtures train in parallel, while shards racing
// for the *same* fixture train it exactly once and share the result.
// Consumers that mutate the cached networks (the lifetime simulations
// overwrite live weights) do so under Bundle.Exclusive, snapshotting
// and restoring around their use, as all drivers do.
var bundleCache = struct {
	sync.Mutex
	m map[string]*bundleEntry
}{m: make(map[string]*bundleEntry)}

type bundleEntry struct {
	once sync.Once
	b    *Bundle
	err  error
}

func cachedBundle(kind string, opt Options, build func(Options) (*Bundle, error)) (*Bundle, error) {
	key := fmt.Sprintf("%s|fast=%v|seed=%d", kind, opt.Fast, opt.Seed)
	bundleCache.Lock()
	e, ok := bundleCache.m[key]
	if !ok {
		e = &bundleEntry{}
		bundleCache.m[key] = e
	}
	bundleCache.Unlock()
	e.once.Do(func() {
		if err := opt.Err(); err != nil {
			e.err = err
			return
		}
		e.b, e.err = build(opt)
	})
	if e.err != nil {
		// Failed builds (including cancelled ones) are not cached: drop
		// the entry so a later call can retry.
		bundleCache.Lock()
		if bundleCache.m[key] == e {
			delete(bundleCache.m, key)
		}
		bundleCache.Unlock()
	}
	return e.b, e.err
}

// SkewParams are the skewed-training constants of Table II: the
// reference weight beta_i = BetaFactor * sigma_i of each layer, and the
// two segment penalties.
type SkewParams struct {
	BetaFactor float64
	Lambda1    float64
	Lambda2    float64
}

// LeNetSkewParams returns the LeNet-5 setting: lambda1 >> lambda2, as in
// the paper's Table II. The reference weight sits at the left edge of
// the conventional distribution (beta_i = -0.5 * sigma_i): the strong
// lambda1 penalty forms a wall below beta while the weak lambda2 drags
// the mass down towards it, producing the left-concentrated skewed
// distribution of Fig. 6(a) whose weights map to small conductances.
func LeNetSkewParams() SkewParams { return SkewParams{BetaFactor: -0.5, Lambda1: 0.5, Lambda2: 0.005} }

// VGGSkewParams returns the VGG-16 setting: the paper sets lambda1 ==
// lambda2 for VGG-16 because its depth makes accuracy more sensitive to
// the asymmetric penalty.
func VGGSkewParams() SkewParams { return SkewParams{BetaFactor: -0.5, Lambda1: 0.01, Lambda2: 0.01} }

// Bundle holds one network/dataset test case of Table I, trained both
// conventionally (L2) and with the skewed regularizer.
type Bundle struct {
	Name        string
	DatasetName string
	TrainDS     *dataset.Dataset
	TestDS      *dataset.Dataset
	Normal      *nn.Network
	NormalAcc   float64
	Skewed      *nn.Network
	SkewedAcc   float64
	Skew        SkewParams

	// mu serializes access to the live networks. Bundles are shared by
	// every experiment of a (fast, seed) configuration, and both the
	// lifetime simulations (which overwrite live weights and restore a
	// snapshot afterwards) and the distribution readers touch the same
	// parameter tensors — unguarded concurrent use would race.
	mu sync.Mutex
}

// Exclusive runs f while holding the bundle's network lock. Every
// driver window that mounts, mutates, or reads the cached networks
// runs under it, which is what makes experiments safe to execute
// concurrently (campaign shards, parallel -all) while keeping their
// output identical to a sequential run. The lock is not reentrant: do
// not nest Exclusive calls.
func (b *Bundle) Exclusive(f func() error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return f()
}

// DeviceParams returns the memristor technology used by all experiments.
func DeviceParams() device.Params { return device.Params32() }

// AgingModel returns the aging calibration used by all experiments. It
// accelerates the default device-physics calibration so crossbars fail
// within tens of simulated deployment cycles instead of thousands —
// the same timeline compression the paper applies when it simulates
// 4x10^7 applications against a 150-iteration tuning budget. Relative
// lifetimes between scenarios, the quantity Table I reports, are
// unaffected by the common scale factor.
func AgingModel() aging.Model {
	m := aging.DefaultModel()
	m.A = 8000
	m.B = 1000
	return m
}

// TempK is the operating temperature of all experiments.
const TempK = 300.0

// LeNetBundle builds (or returns the cached) LeNet-5 / SynthCIFAR10
// test case.
func LeNetBundle(opt Options) (*Bundle, error) {
	return cachedBundle("lenet", opt, buildLeNetBundle)
}

func buildLeNetBundle(opt Options) (*Bundle, error) {
	dsCfg := dataset.SynthConfig{Classes: 10, TrainN: 800, TestN: 200, C: 3, H: 16, W: 16, Noise: 0.5, Seed: opt.Seed}
	netCfg := nn.LeNetConfig{InC: 3, H: 16, W: 16, Classes: 10}
	trainCfg := train.Config{Epochs: 10, BatchSize: 32, LR: 0.02, Momentum: 0.9, LRDecay: 0.95, Seed: opt.Seed, Log: opt.Log}
	if opt.Fast {
		dsCfg.TrainN, dsCfg.TestN = 240, 80
		dsCfg.H, dsCfg.W = 12, 12
		netCfg.H, netCfg.W = 12, 12
		trainCfg.Epochs = 8
	}
	trainDS, testDS, err := dataset.Generate(dsCfg)
	if err != nil {
		return nil, err
	}
	build := func(rngSeed int64) (*nn.Network, error) { return nn.NewLeNet5(netCfg, tensor.NewRNG(rngSeed)) }
	return makeBundle("LeNet-5", "SynthCIFAR10", trainDS, testDS, build, LeNetSkewParams(), trainCfg, opt)
}

// VGGBundle builds (or returns the cached) VGG-16 / SynthCIFAR100 test
// case. Full mode uses a width-reduced VGG-16 on a 50-class dataset so
// CPU training stays in the minutes range; fast mode shrinks further
// (see DESIGN.md).
func VGGBundle(opt Options) (*Bundle, error) {
	return cachedBundle("vgg", opt, buildVGGBundle)
}

func buildVGGBundle(opt Options) (*Bundle, error) {
	dsCfg := dataset.SynthConfig{Classes: 50, TrainN: 1500, TestN: 300, C: 3, H: 32, W: 32, Noise: 0.35, Seed: opt.Seed + 100}
	netCfg := nn.VGGConfig{InC: 3, H: 32, W: 32, Classes: 50, WidthMult: 0.125, FCWidth: 64}
	trainCfg := train.Config{Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, LRDecay: 0.95, GradClip: 1.0, Seed: opt.Seed, Log: opt.Log}
	if opt.Fast {
		dsCfg.Classes, dsCfg.TrainN, dsCfg.TestN = 10, 400, 80
		dsCfg.Noise = 0.3
		netCfg.Classes = 10
		trainCfg.Epochs = 6
	}
	trainDS, testDS, err := dataset.Generate(dsCfg)
	if err != nil {
		return nil, err
	}
	build := func(rngSeed int64) (*nn.Network, error) { return nn.NewVGG16(netCfg, tensor.NewRNG(rngSeed)) }
	name := "VGG-16"
	if netCfg.WidthMult != 1 {
		name = fmt.Sprintf("VGG-16(x%g)", netCfg.WidthMult)
	}
	return makeBundle(name, "SynthCIFAR100", trainDS, testDS, build, VGGSkewParams(), trainCfg, opt)
}

// makeBundle trains the network twice from the same initialization:
// once with L2 (the "traditional" weights) and once with the skewed
// regularizer seeded from the L2 run's per-layer sigmas (Table II).
func makeBundle(name, dsName string, trainDS, testDS *dataset.Dataset,
	build func(int64) (*nn.Network, error), skew SkewParams, cfg train.Config, opt Options) (*Bundle, error) {

	normal, err := build(opt.Seed + 7)
	if err != nil {
		return nil, err
	}
	l2cfg := cfg
	l2cfg.Reg = train.L2{Lambda: 1e-4}
	normalRes, err := train.Train(normal, trainDS, testDS, l2cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s normal training: %w", name, err)
	}

	if err := opt.Err(); err != nil {
		return nil, err
	}
	betas := train.BetasFromNetwork(normal, skew.BetaFactor)
	reg, err := train.NewSkewed(skew.Lambda1, skew.Lambda2, betas)
	if err != nil {
		return nil, err
	}
	skewed, err := build(opt.Seed + 7) // identical initialization
	if err != nil {
		return nil, err
	}
	skCfg := cfg
	skCfg.Reg = reg
	skCfg.RegWarmup = cfg.Epochs / 3
	skewedRes, err := train.Train(skewed, trainDS, testDS, skCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s skewed training: %w", name, err)
	}

	return &Bundle{
		Name:        name,
		DatasetName: dsName,
		TrainDS:     trainDS,
		TestDS:      testDS,
		Normal:      normal,
		NormalAcc:   normalRes.FinalTestAcc,
		Skewed:      skewed,
		SkewedAcc:   skewedRes.FinalTestAcc,
		Skew:        skew,
	}, nil
}

// lifetimeConfig returns the lifetime-simulation budget for experiments.
func lifetimeConfig(opt Options, target float64) lifetime.Config {
	cfg := lifetime.DefaultConfig()
	cfg.TargetAcc = target
	cfg.Seed = opt.Seed
	cfg.Workers = opt.Workers
	cfg.AppsPerCycle = 1_000_000
	cfg.MaxCycles = 150
	if opt.Fast {
		cfg.MaxCycles = 60
		cfg.TuneCap = 40
		cfg.EvalN = 64
	}
	return cfg
}

// ScenarioTarget picks one target accuracy per bundle, achievable by
// both the normal and the skewed variant right after a fresh mapping
// (minus a small margin), mirroring the paper's per-network target.
func ScenarioTarget(b *Bundle, opt Options) (float64, error) { return scenarioTarget(b, opt) }

func scenarioTarget(b *Bundle, opt Options) (float64, error) {
	const margin = 0.02
	evalN := 96
	if opt.Fast {
		evalN = 64
	}
	var tn, ts float64
	err := b.Exclusive(func() error {
		// SuggestTarget maps the network (overwriting live weights
		// before restoring its snapshot), so it needs the lock.
		var err error
		tn, err = lifetime.SuggestTarget(b.Normal, b.TrainDS, DeviceParams(), AgingModel(), TempK, evalN, margin)
		if err != nil {
			return err
		}
		ts, err = lifetime.SuggestTarget(b.Skewed, b.TrainDS, DeviceParams(), AgingModel(), TempK, evalN, margin)
		return err
	})
	if err != nil {
		return 0, err
	}
	if ts < tn {
		return ts, nil
	}
	return tn, nil
}
