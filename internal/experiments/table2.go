package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/train"
)

// Table2Row reports the skewed-training constants of one network
// (Table II of the paper): beta_i = BetaFactor * sigma_i per layer plus
// the two segment penalties.
type Table2Row struct {
	Network    string
	Layer      string
	Sigma      float64 // sigma_i of the conventionally trained layer
	Beta       float64 // reference weight actually used
	Lambda1    float64
	Lambda2    float64
	SkewedMean float64 // resulting mean weight after skewed training
	SkewedSkew float64 // resulting sample skewness
}

// Table2 reproduces Table II: the constants per network and the
// per-layer reference weights they induce, along with the resulting
// skewed distributions.
func Table2(opt Options) ([]Table2Row, error) {
	var rows []Table2Row
	for _, mk := range []func(Options) (*Bundle, error){LeNetBundle, VGGBundle} {
		b, err := mk(opt)
		if err != nil {
			return nil, err
		}
		var normalStats, skewedStats []train.LayerStats
		b.Exclusive(func() error { // reads race with concurrent lifetime sims
			normalStats = train.NetworkStats(b.Normal)
			skewedStats = train.NetworkStats(b.Skewed)
			return nil
		})
		for i, ns := range normalStats {
			rows = append(rows, Table2Row{
				Network:    b.Name,
				Layer:      ns.Name,
				Sigma:      ns.Std,
				Beta:       b.Skew.BetaFactor * ns.Std,
				Lambda1:    b.Skew.Lambda1,
				Lambda2:    b.Skew.Lambda2,
				SkewedMean: skewedStats[i].Mean,
				SkewedSkew: skewedStats[i].Skewness,
			})
		}
	}
	return rows, nil
}

func renderTable2(w io.Writer, rows []Table2Row) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Network, r.Layer,
			fmt.Sprintf("%.4f", r.Sigma),
			fmt.Sprintf("%.4f", r.Beta),
			fmt.Sprintf("%g", r.Lambda1),
			fmt.Sprintf("%g", r.Lambda2),
			fmt.Sprintf("%+.4f", r.SkewedMean),
			fmt.Sprintf("%+.3f", r.SkewedSkew),
		})
	}
	fmt.Fprintln(w, "Table II — skewed-training constants (beta_i = c * sigma_i) and resulting distributions")
	fmt.Fprint(w, analysis.Table(
		[]string{"network", "layer", "sigma_i", "beta_i", "lambda1", "lambda2", "skew mean", "skewness"},
		cells))
	fmt.Fprintln(w, "paper reference: LeNet-5 uses lambda1 >> lambda2; VGG-16 uses lambda1 == lambda2")
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table II: skewed-training parameters per network",
		Run: func(w io.Writer, opt Options) error {
			rows, err := Table2(opt)
			if err != nil {
				return err
			}
			renderTable2(w, rows)
			return nil
		},
	})
}
