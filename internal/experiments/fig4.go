package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/telemetry"
)

// Fig4Point is one sample of the aged-range trajectory of Fig. 4.
type Fig4Point struct {
	Stress       float64
	UpperBound   float64
	LowerBound   float64
	UsableLevels int
}

// Fig4 reproduces Fig. 4: the resistance range of a single device as a
// function of accumulated programming stress, and the resulting decay
// of the usable level count (the paper's sketch shows 8 fresh levels
// decaying to 3; our device has 32).
func Fig4(opt Options) ([]Fig4Point, error) {
	p := DeviceParams()
	m := AgingModel()
	var out []Fig4Point
	points := 25
	if opt.Fast {
		points = 10
	}
	// Geometric stress sweep from fresh to heavily worn.
	tl := telemetry.T("fig4/timeline")
	stress := 0.0
	step := 1.0
	for i := 0; i < points; i++ {
		lo, hi := m.Bounds(p, stress, TempK)
		n := p.UsableLevels(lo, hi)
		out = append(out, Fig4Point{
			Stress:       stress,
			UpperBound:   hi,
			LowerBound:   lo,
			UsableLevels: n,
		})
		tl.Append(map[string]float64{
			"stress":        stress,
			"upper_bound":   hi,
			"lower_bound":   lo,
			"usable_levels": float64(n),
		})
		stress += step
		step *= 1.5
	}
	return out, nil
}

func init() {
	register(Experiment{
		ID:      "fig4",
		Title:   "Fig. 4: aged resistance range and usable levels vs programming stress",
		Metrics: fig4Metrics,
		Run: func(w io.Writer, opt Options) error {
			pts, err := Fig4(opt)
			if err != nil {
				return err
			}
			var cells [][]string
			for _, pt := range pts {
				cells = append(cells, []string{
					fmt.Sprintf("%.3g", pt.Stress),
					fmt.Sprintf("%.0f", pt.LowerBound),
					fmt.Sprintf("%.0f", pt.UpperBound),
					fmt.Sprintf("%d", pt.UsableLevels),
				})
			}
			fmt.Fprintln(w, "Fig. 4 — aging of one device (stress in reference-pulse units)")
			fmt.Fprint(w, analysis.Table(
				[]string{"stress", "R_aged_min", "R_aged_max", "usable levels"},
				cells))
			fmt.Fprintln(w, "paper reference: both bounds decrease with t; level count decays (8 -> 3 in the sketch)")
			return nil
		},
	})
}
