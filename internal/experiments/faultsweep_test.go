package experiments

import (
	"testing"

	"memlife/internal/crossbar"
	"memlife/internal/device"
	"memlife/internal/fault"
	"memlife/internal/lifetime"
)

// TestFaultSweepFaultMapsDeterministic: the same seed must reproduce
// the exact same fault population on a freshly mapped network, and the
// populations must be nested across rates (a device stuck at 1% is
// stuck at 5%), which is what makes the sweep monotone by construction.
func TestFaultSweepFaultMapsDeterministic(t *testing.T) {
	b, err := LeNetBundle(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	build := func(rate float64) *crossbar.MappedNetwork {
		mn, err := crossbar.NewMappedNetwork(b.Normal, DeviceParams(), AgingModel(), TempK)
		if err != nil {
			t.Fatal(err)
		}
		if err := mn.SetFaults(FaultSweepFaults(rate, testOpt.Seed)); err != nil {
			t.Fatal(err)
		}
		return mn
	}
	a, c := build(0.05), build(0.05)
	low := build(0.01)
	for li := range a.Layers {
		ma, mc := a.Layers[li].Crossbar.FaultMap(), c.Layers[li].Crossbar.FaultMap()
		ml := low.Layers[li].Crossbar.FaultMap()
		for i := range ma {
			if ma[i] != mc[i] {
				t.Fatalf("layer %d device %d: fault maps differ across identically seeded runs", li, i)
			}
			if ml[i] != device.FaultNone && ma[i] == device.FaultNone {
				t.Fatalf("layer %d device %d: stuck at 1%% but healthy at 5%% — sets not nested", li, i)
			}
		}
	}
	lrs, hrs := a.StuckCounts()
	if lrs == 0 || hrs != 0 {
		t.Fatalf("sweep config pins all stuck devices at LRS, got lrs=%d hrs=%d", lrs, hrs)
	}
}

// TestFaultSweepLifetimeDeterministic: two runs of the same fault-sweep
// arm under the same seed must agree cycle for cycle — the acceptance
// guarantee that every reported lifetime is reproducible.
func TestFaultSweepLifetimeDeterministic(t *testing.T) {
	b, err := LeNetBundle(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		t.Fatal(err)
	}
	target *= 0.9

	cases := []struct {
		name  string
		rate  float64
		sc    lifetime.Scenario
		aware bool
	}{
		{"clean ST+T", 0, lifetime.STT, true},
		{"5% ST+AT", 0.05, lifetime.STAT, true},
		{"5% ST+AT ablation", 0.05, lifetime.STAT, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() lifetime.Result {
				net := b.Normal
				if tc.sc != lifetime.TT {
					net = b.Skewed
				}
				cfg := b.Spec.LifetimeConfig(target)
				cfg.MaxCycles = 5
				cfg.Faults = FaultSweepFaults(tc.rate, testOpt.Seed)
				cfg.Mapping.FaultAware = tc.aware
				cfg.DegradedAccFrac = 0.5
				snap := net.SnapshotParams()
				res, err := lifetime.Run(net, b.TrainDS, tc.sc, DeviceParams(), AgingModel(), TempK, cfg)
				net.RestoreParams(snap)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			r1, r2 := run(), run()
			if r1.Lifetime != r2.Lifetime || r1.Failed != r2.Failed || r1.DegradedAtCycle != r2.DegradedAtCycle {
				t.Fatalf("runs diverge: (%d,%v,%d) vs (%d,%v,%d)",
					r1.Lifetime, r1.Failed, r1.DegradedAtCycle,
					r2.Lifetime, r2.Failed, r2.DegradedAtCycle)
			}
			if len(r1.Records) != len(r2.Records) {
				t.Fatalf("record counts diverge: %d vs %d", len(r1.Records), len(r2.Records))
			}
			for i := range r1.Records {
				a, b := r1.Records[i], r2.Records[i]
				if a.Acc != b.Acc || a.TuneIters != b.TuneIters || a.Stuck != b.Stuck ||
					a.Retries != b.Retries || a.Remapped != b.Remapped || a.Degraded != b.Degraded {
					t.Fatalf("cycle %d diverges:\n%+v\n%+v", a.Cycle, a, b)
				}
			}
		})
	}
}

// TestFaultSweepFaultsShape pins the severity axis: all channels scale
// with the rate and the clean point injects no defects at all (only the
// always-on wear-out hazard).
func TestFaultSweepFaultsShape(t *testing.T) {
	clean := FaultSweepFaults(0, 1)
	if clean.StuckRate != 0 || clean.TransientProb != 0 || clean.ReadBurstProb != 0 {
		t.Fatalf("rate 0 must inject no defects, got %+v", clean)
	}
	if clean.HazardScale <= 0 || !clean.Enabled() {
		t.Fatal("the wear-out hazard must stay active at rate 0")
	}
	lo, hi := FaultSweepFaults(0.01, 1), FaultSweepFaults(0.05, 1)
	if !(lo.StuckRate < hi.StuckRate && lo.TransientProb < hi.TransientProb && lo.ReadBurstProb < hi.ReadBurstProb) {
		t.Fatal("all fault channels must scale with the rate")
	}
	if lo.HazardScale != hi.HazardScale {
		t.Fatal("the wear-out hazard is rate-independent (it tracks stress, not the process corner)")
	}
	for _, c := range []fault.Config{clean, lo, hi} {
		if err := c.Validate(); err != nil {
			t.Fatalf("sweep config must validate: %v", err)
		}
	}
}
