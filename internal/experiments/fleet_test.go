package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"memlife/internal/campaign"
	"memlife/internal/spec"
)

// TestFleetSurvivalRuns: the full arm grid must execute in fast mode
// and report the study's headline dynamics.
func TestFleetSurvivalRuns(t *testing.T) {
	arms, err := FleetSurvival(Options{Fast: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) < 12 {
		t.Fatalf("arm grid too small: %d", len(arms))
	}
	byName := map[string]FleetArmResult{}
	for _, a := range arms {
		if a.Served == 0 {
			t.Errorf("arm %s served nothing", a.Name)
		}
		byName[a.Name] = a
	}
	nr, ok := byName["rr/diurnal/no-replace"]
	if !ok {
		t.Fatal("no-replace arm missing")
	}
	if nr.Replacements != 0 || nr.ReplacementCost != 0 {
		t.Errorf("no-replace arm paid replacement cost: %+v", nr.Result)
	}
	lazy, eager := byName["rr/diurnal/lazy"], byName["rr/diurnal/eager"]
	if eager.Retunes <= lazy.Retunes {
		t.Errorf("eager policy must retune more: eager=%d lazy=%d", eager.Retunes, lazy.Retunes)
	}
}

// TestFleetSurvivalRender: the table driver must produce the arms and
// survival-curve section.
func TestFleetSurvivalRender(t *testing.T) {
	e, ok := ByID("fleet-survival")
	if !ok {
		t.Fatal("fleet-survival not registered")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, Options{Fast: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"round-robin/diurnal", "hash-affinity/zipf", "survival curves", "repl cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

// TestFleetCampaignDeterministicAcrossWorkers: a fleet-survival
// campaign must serialize byte-identically whatever the worker count —
// the acceptance contract of the fleet subsystem.
func TestFleetCampaignDeterministicAcrossWorkers(t *testing.T) {
	cspec := campaign.Spec{Experiments: []string{"fleet-survival"}, Seeds: 3, BaseSeed: 11, Fast: true}
	var ref []byte
	for _, workers := range []int{1, 2} {
		res, err := campaign.Run(context.Background(), cspec, campaign.Config{
			Workers: workers, Resolve: CampaignResolver(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("fleet-survival campaign output differs at %d workers", workers)
		}
	}
	if len(ref) == 0 {
		t.Fatal("campaign produced no output")
	}
}

// TestFleetScenarioPath: a spec with a fleet block must run the fleet
// simulator through both scenario entry points, deterministically.
func TestFleetScenarioPath(t *testing.T) {
	s, err := spec.ResolveBytes([]byte(`{
		"version": 1,
		"name": "fleet-test",
		"run": {"fast": true, "seed": 5},
		"fleet": {"instances": 6, "ticks": 200}
	}`), spec.Overrides{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := RunScenario(&buf, s, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fleet-test (fleet)", "6 instances, 200 ticks", "final alive fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet scenario output missing %q:\n%s", want, out)
		}
	}

	m1, err := ScenarioMetrics(s, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ScenarioMetrics(s, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m1["served"] == 0 {
		t.Error("fleet scenario metrics served nothing")
	}
	for k, v := range m1 {
		if m2[k] != v {
			t.Errorf("fleet scenario metrics nondeterministic at %q: %v vs %v", k, v, m2[k])
		}
	}
	if _, ok := m1["final_alive"]; !ok {
		t.Error("fleet scenario metrics missing final_alive")
	}
}
