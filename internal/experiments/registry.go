// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section V), plus ablation studies of the design
// choices called out in DESIGN.md. Each driver regenerates the rows or
// series the paper reports, printed as plain text; EXPERIMENTS.md
// records paper-vs-measured for each.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Options controls experiment scale.
type Options struct {
	// Fast shrinks networks, datasets and budgets so an experiment
	// finishes in seconds (used by tests and benches). Full mode
	// reproduces the reported numbers.
	Fast bool
	// Seed makes runs reproducible.
	Seed int64
	// Log receives training/simulation progress; nil silences it.
	// When experiments run concurrently (campaign shards, parallel
	// -all), pass per-shard views of a campaign.SyncWriter so lines
	// never interleave.
	Log io.Writer
	// Ctx carries cancellation for long runs; nil means Background.
	// Drivers check it between heavy stages and thread it into the
	// lifetime simulations.
	Ctx context.Context
	// Workers is the per-evaluation forward-pass parallelism threaded
	// into the lifetime simulations (see lifetime.Config.Workers).
	// Results are bit-identical for every value; <= 1 stays serial.
	Workers int
}

// Context returns the options' context, never nil.
func (o Options) Context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Err reports the context's cancellation state (nil when no context).
func (o Options) Err() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// DefaultOptions returns full-scale options with seed 1.
func DefaultOptions() Options { return Options{Seed: 1} }

// Experiment is one runnable reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, opt Options) error
	// Metrics, when non-nil, runs the experiment and reduces it to
	// scalar metrics — the hook that makes the experiment campaign-
	// runnable (multi-seed aggregation with confidence intervals).
	Metrics func(opt Options) (map[string]float64, error)
	// Meta marks experiments that orchestrate other experiments (the
	// campaign drivers); -all skips them so no experiment runs twice.
	Meta bool
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
