package experiments

import (
	"context"
	"io"

	"memlife/internal/campaign"
)

// CampaignResolver adapts the experiment registry to the campaign
// engine: every experiment with a Metrics hook becomes shard-runnable.
// The indirection keeps the dependency arrow pointing one way —
// campaign never imports experiments.
func CampaignResolver() campaign.Resolver {
	return func(id string) (campaign.RunnerFunc, bool) {
		e, ok := ByID(id)
		if !ok || e.Metrics == nil {
			return nil, false
		}
		metrics := e.Metrics
		return func(ctx context.Context, s campaign.Shard, log io.Writer) (campaign.Metrics, error) {
			m, err := metrics(Options{Fast: s.Fast, Seed: s.Seed, Log: log, Ctx: ctx})
			return campaign.Metrics(m), err
		}, true
	}
}

// CampaignLifetimeSeeds is the seed count of the campaign-lifetime
// experiment per mode (full mode buys tighter confidence intervals).
func CampaignLifetimeSeeds(fast bool) int {
	if fast {
		return 3
	}
	return 5
}

// CampaignLifetime reruns the Table I lifetime comparison and the fault
// sweep across N seeds through the campaign engine and reports
// per-metric mean/stddev/95% CI — the multi-seed robustness check the
// single-seed tables cannot give.
func CampaignLifetime(opt Options) (*campaign.Result, error) {
	spec := campaign.Spec{
		Experiments: []string{"table1", "fault-sweep"},
		Seeds:       CampaignLifetimeSeeds(opt.Fast),
		BaseSeed:    opt.Seed,
		Fast:        opt.Fast,
	}
	cfg := campaign.Config{
		Resolve: CampaignResolver(),
		Log:     opt.Log,
	}
	if opt.Log != nil {
		cfg.Reporter = campaign.NewLogReporter(opt.Log)
	}
	return campaign.Run(opt.Context(), spec, cfg)
}

func init() {
	register(Experiment{
		ID:    "campaign-lifetime",
		Title: "Campaign: Table I + fault sweep across seeds (mean/std/95% CI)",
		Meta:  true,
		Run: func(w io.Writer, opt Options) error {
			res, err := CampaignLifetime(opt)
			if err != nil {
				return err
			}
			res.RenderText(w)
			return nil
		},
	})
}
