package experiments

import (
	"fmt"
	"io"
	"math"

	"memlife/internal/analysis"
	"memlife/internal/counteraging"
	"memlife/internal/device"
	"memlife/internal/lifetime"
)

// RelatedWorkRow is one technique of the related-work comparison.
type RelatedWorkRow struct {
	Technique string
	Scenario  string
	Lifetime  int64
	Censored  bool
	// Cost names the overhead the technique pays (the paper's argument
	// is that the proposed framework pays none).
	Cost string
}

// RelatedWork compares the prior-art counter-aging techniques of the
// paper's related-work section ([9] shaped pulses, [11] series
// resistor) against the paper's framework (ST+T, ST+AT), all on the
// LeNet-5 case. The row-swapping technique of [12] is exercised by the
// counteraging package's own tests; it changes the mapping plumbing
// rather than the device physics, so it does not fit the same lifetime
// harness.
func RelatedWork(opt Options) ([]RelatedWorkRow, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return nil, err
	}

	base := b.Spec.Device
	// Series resistor: the derating depends on the instantaneous device
	// resistance; a representative static factor is taken at the
	// geometric-mean resistance of the range.
	rs := counteraging.SeriesResistorParams{Params: base, Rs: 10e3}
	seriesParams := base
	seriesParams.StressDerate = rs.StressDerating(math.Sqrt(base.RminFresh * base.RmaxFresh))

	runs := []struct {
		row RelatedWorkRow
		p   device.Params
		sc  lifetime.Scenario
	}{
		{RelatedWorkRow{Technique: "none (baseline)", Scenario: "T+T", Cost: "-"}, base, lifetime.TT},
		{RelatedWorkRow{Technique: "triangular pulses [9]", Scenario: "T+T", Cost: "3x programming time"},
			counteraging.ApplyPulseShape(base, counteraging.PulseTriangular), lifetime.TT},
		{RelatedWorkRow{Technique: "sinusoidal pulses [9]", Scenario: "T+T", Cost: "2x programming time"},
			counteraging.ApplyPulseShape(base, counteraging.PulseSinusoidal), lifetime.TT},
		{RelatedWorkRow{Technique: "series resistor [11]", Scenario: "T+T", Cost: "1 resistor per cell"}, seriesParams, lifetime.TT},
		{RelatedWorkRow{Technique: "skewed training (this work)", Scenario: "ST+T", Cost: "none"}, base, lifetime.STT},
		{RelatedWorkRow{Technique: "skewed + aging-aware (this work)", Scenario: "ST+AT", Cost: "none"}, base, lifetime.STAT},
	}

	var rows []RelatedWorkRow
	for _, r := range runs {
		s := b.Spec
		s.Scenario = r.sc.String()
		s.Device = r.p
		res, err := runSpec(b, s, opt, target)
		if err != nil {
			return nil, err
		}
		row := r.row
		row.Lifetime = res.Lifetime
		row.Censored = !res.Failed
		rows = append(rows, row)
	}
	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "related-work",
		Title: "Related work: prior counter-aging techniques vs the proposed framework",
		Run: func(w io.Writer, opt Options) error {
			rows, err := RelatedWork(opt)
			if err != nil {
				return err
			}
			var cells [][]string
			for _, r := range rows {
				life := fmt.Sprintf("%d", r.Lifetime)
				if r.Censored {
					life = ">=" + life
				}
				cells = append(cells, []string{r.Technique, r.Scenario, life, r.Cost})
			}
			fmt.Fprintln(w, "Related-work comparison (LeNet-5 case)")
			fmt.Fprint(w, analysis.Table([]string{"technique", "scenario", "lifetime (apps)", "overhead"}, cells))
			return nil
		},
	})
}
