package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenHeavy marks the experiments whose golden check runs full
// lifetime simulations (minutes each at fast scale). They are skipped
// unless MEMLIFE_GOLDEN_ALL=1, keeping the default test suite's runtime
// bounded while the complete sweep stays one env var away:
//
//	MEMLIFE_GOLDEN_ALL=1 go test -run TestGoldenEquivalence ./internal/experiments/
var goldenHeavy = map[string]bool{
	"table1":            true,
	"fault-sweep":       true,
	"fig10":             true,
	"fig10vgg":          true,
	"fig11":             true,
	"temperature":       true,
	"related-work":      true,
	"ablation-stress":   true,
	"ablation-tracing":  true,
	"ablation-levels":   true,
	"ablation-policy":   true,
	"crossmodel-table1": true,
}

// TestGoldenEquivalence is the spec-refactor acceptance gate: every
// registered experiment, driven through the unified scenario-spec path,
// must produce byte-identical output to the pre-refactor drivers. The
// goldens in testdata/golden were captured with
//
//	memlife -all -fast -seed 1 -out testdata/golden
//
// at the last commit before the spec layer landed; the -out files hold
// exactly each experiment's Run bytes (the "=== id ===" headers go only
// to stdout). Any byte drift here means a resolved default or an
// execution order changed — intentional changes must re-capture the
// goldens the same way and say so in the commit.
func TestGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden equivalence trains both bundles; skipped in -short")
	}
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden files found")
	}
	all := os.Getenv("MEMLIFE_GOLDEN_ALL") == "1"
	covered := 0
	for _, path := range files {
		id := strings.TrimSuffix(filepath.Base(path), ".txt")
		t.Run(id, func(t *testing.T) {
			if goldenHeavy[id] && !all {
				t.Skipf("%s runs full lifetime simulations; set MEMLIFE_GOLDEN_ALL=1 to include it", id)
			}
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("golden file for unregistered experiment %q", id)
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, testOpt); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output of %s drifted from the pre-refactor golden (len %d vs %d)\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.Len(), len(want), clip(buf.String()), clip(string(want)))
			}
		})
		covered++
	}
	// Every non-meta registered experiment must have a golden — a new
	// experiment without one silently escapes the equivalence gate.
	for _, e := range All() {
		if e.Meta {
			continue
		}
		if _, err := os.Stat(filepath.Join("testdata", "golden", e.ID+".txt")); err != nil {
			t.Errorf("experiment %q has no golden file; capture one with: memlife -run %s -fast -seed 1 -out testdata/golden", e.ID, e.ID)
		}
	}
}

func clip(s string) string {
	const max = 2000
	if len(s) > max {
		return s[:max] + "\n... (clipped)"
	}
	return s
}
