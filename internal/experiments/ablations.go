package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/device"
	"memlife/internal/lifetime"
	"memlife/internal/mapping"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Variant  string
	Scenario string
	Lifetime int64
	Censored bool
}

// AblationStressModel compares the power-proportional stress model (the
// mechanism that lets skewed weights slow aging) against uniform
// per-pulse stress. Under uniform stress the ST+T advantage over T+T
// should shrink to the quantization benefit alone.
func AblationStressModel(opt Options) ([]AblationRow, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return nil, err
	}

	var rows []AblationRow
	for _, variant := range []struct {
		name    string
		uniform bool
	}{
		{"power-proportional stress", false},
		{"uniform per-pulse stress", true},
	} {
		for _, sc := range []lifetime.Scenario{lifetime.TT, lifetime.STT} {
			s := b.Spec
			s.Scenario = sc.String()
			s.Device.UniformStress = variant.uniform
			res, err := runSpec(b, s, opt, target)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Variant: variant.name, Scenario: sc.String(),
				Lifetime: res.Lifetime, Censored: !res.Failed,
			})
		}
	}
	return rows, nil
}

// AblationTracingDensity sweeps the representative-tracing stride of
// Section IV-B: 1 (trace everything), 3 (the paper's 1-of-9), 5
// (1-of-25). The arrays start from a burn-in (pre-aged) state so the
// initial aging-aware mapping actually depends on the traced estimates;
// sparser tracing estimates the common range from fewer devices.
func AblationTracingDensity(opt Options) ([]AblationRow, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, stride := range []int{1, 3, 5} {
		s := b.Spec
		s.Scenario = lifetime.STAT.String()
		s.Lifetime.TraceStride = stride
		s.Lifetime.BurnInStress = 3
		res, err := runSpec(b, s, opt, target)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("trace 1-of-%d (stride %d)", stride*stride, stride), Scenario: "ST+AT",
			Lifetime: res.Lifetime, Censored: !res.Failed,
		})
	}
	return rows, nil
}

// AblationLevels compares the 32-level device of [14] against the
// 64-level device of [15]. More levels quantize more accurately but
// each level step is smaller, so aged ranges lose levels faster.
func AblationLevels(opt Options) ([]AblationRow, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, variant := range []struct {
		name string
		p    device.Params
	}{
		{"32 levels [14]", device.Params32()},
		{"64 levels [15]", device.Params64()},
	} {
		s := b.Spec
		s.Scenario = lifetime.STAT.String()
		s.Device = variant.p
		res, err := runSpec(b, s, opt, target)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: variant.name, Scenario: "ST+AT",
			Lifetime: res.Lifetime, Censored: !res.Failed,
		})
	}
	return rows, nil
}

// AblationRangePolicy compares the iterative accuracy-driven selection
// of Section IV-B against the simpler worst-case, mean-bound and fresh
// policies, all under skewed weights. The arrays start from a burn-in
// (pre-aged) state: on a fresh array every policy selects the same
// (fresh) range and the comparison would be vacuous.
func AblationRangePolicy(opt Options) ([]AblationRow, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, pol := range []mapping.PolicyKind{mapping.AgingAware, mapping.WorstCase, mapping.MeanBound, mapping.Fresh} {
		s := b.Spec
		s.Scenario = lifetime.STAT.String()
		s.Policy = pol.String()
		s.Lifetime.BurnInStress = 3
		res, err := runSpec(b, s, opt, target)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: pol.String(), Scenario: "ST+<policy>",
			Lifetime: res.Lifetime, Censored: !res.Failed,
		})
	}
	return rows, nil
}

func renderAblation(w io.Writer, title string, rows []AblationRow) {
	var cells [][]string
	for _, r := range rows {
		life := fmt.Sprintf("%d", r.Lifetime)
		if r.Censored {
			life = ">=" + life
		}
		cells = append(cells, []string{r.Variant, r.Scenario, life})
	}
	fmt.Fprintln(w, title)
	fmt.Fprint(w, analysis.Table([]string{"variant", "scenario", "lifetime (apps)"}, cells))
}

func init() {
	register(Experiment{
		ID:    "ablation-stress",
		Title: "Ablation: power-proportional vs uniform per-pulse aging stress",
		Run: func(w io.Writer, opt Options) error {
			rows, err := AblationStressModel(opt)
			if err != nil {
				return err
			}
			renderAblation(w, "Ablation — stress model", rows)
			return nil
		},
	})
	register(Experiment{
		ID:    "ablation-tracing",
		Title: "Ablation: representative-tracing density (1-of-1/9/25)",
		Run: func(w io.Writer, opt Options) error {
			rows, err := AblationTracingDensity(opt)
			if err != nil {
				return err
			}
			renderAblation(w, "Ablation — tracing density", rows)
			return nil
		},
	})
	register(Experiment{
		ID:    "ablation-levels",
		Title: "Ablation: 32-level vs 64-level devices",
		Run: func(w io.Writer, opt Options) error {
			rows, err := AblationLevels(opt)
			if err != nil {
				return err
			}
			renderAblation(w, "Ablation — quantization levels", rows)
			return nil
		},
	})
	register(Experiment{
		ID:    "ablation-policy",
		Title: "Ablation: aged-range selection policy",
		Run: func(w io.Writer, opt Options) error {
			rows, err := AblationRangePolicy(opt)
			if err != nil {
				return err
			}
			renderAblation(w, "Ablation — range-selection policy", rows)
			return nil
		},
	})
}
