package experiments

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"memlife/internal/campaign"
)

func TestByIDHit(t *testing.T) {
	e, ok := ByID("fig4")
	if !ok {
		t.Fatal("fig4 must be registered")
	}
	if e.ID != "fig4" || e.Run == nil {
		t.Fatalf("ByID returned a malformed experiment: %+v", e)
	}
}

func TestAllSortedByID(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("registry is empty")
	}
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("All() must be sorted by ID, got %v", ids)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a duplicate ID must panic")
		}
	}()
	register(Experiment{ID: "fig4", Title: "dup", Run: nil})
}

func TestMetaExperimentsAreMarked(t *testing.T) {
	e, ok := ByID("campaign-lifetime")
	if !ok {
		t.Fatal("campaign-lifetime must be registered")
	}
	if !e.Meta {
		t.Fatal("campaign-lifetime must be Meta so -all does not rerun everything")
	}
}

// TestBundleCacheSingleflight hammers the fixture cache from many
// goroutines: every caller must get the same bundle pointer and the
// build must happen exactly once (run with -race to catch locking
// regressions in the per-key singleflight).
func TestBundleCacheSingleflight(t *testing.T) {
	opt := Options{Fast: true, Seed: 424241} // unique seed: cold cache entry
	const callers = 16
	bundles := make([]*Bundle, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := LeNetBundle(opt)
			if err != nil {
				t.Error(err)
				return
			}
			bundles[i] = b
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if bundles[i] != bundles[0] {
			t.Fatal("concurrent callers must share one cached bundle")
		}
	}
}

// TestBundleCacheRetriesAfterCancellation: a build aborted by a
// cancelled context must not poison the cache — the next caller with a
// live context gets a real bundle.
func TestBundleCacheRetriesAfterCancellation(t *testing.T) {
	opt := Options{Fast: true, Seed: 424242}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt.Ctx = ctx
	if _, err := LeNetBundle(opt); err == nil {
		t.Fatal("cancelled build must fail")
	}
	opt.Ctx = nil
	if _, err := LeNetBundle(opt); err != nil {
		t.Fatalf("cache poisoned by cancelled build: %v", err)
	}
}

func TestMetricSlug(t *testing.T) {
	cases := map[string]string{
		"LeNet-5":           "lenet-5", // no qualifier: historical slug preserved
		"LeNet-5 (MNIST)":   "lenet-5-mnist",
		"VGG-16 (CIFAR-10)": "vgg-16-cifar-10",
		"VGG-16(x0.25)":     "vgg-16-x0.25",
		"Some Net":          "some-net",
		" Padded (x) ":      "padded-x",
	}
	for in, want := range cases {
		if got := metricSlug(in); got != want {
			t.Errorf("metricSlug(%q) = %q, want %q", in, got, want)
		}
	}
	// The regression that motivated the rewrite: display names differing
	// only inside the parenthesised qualifier must not merge into one
	// aggregation key.
	if metricSlug("MLP (MNIST)") == metricSlug("MLP (CIFAR)") {
		t.Fatal("qualifier-only differences must produce distinct slugs")
	}
}

// TestFig4MetricsDeterministic: fig4 is the campaign plumbing vehicle;
// its metrics must not depend on the seed.
func TestFig4MetricsDeterministic(t *testing.T) {
	a, err := fig4Metrics(Options{Fast: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fig4Metrics(Options{Fast: true, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fig4 metrics vary with seed: %v vs %v", a, b)
	}
	if a["levels_fresh"] <= a["levels_final"] {
		t.Fatalf("aging must shrink the usable level count: %v", a)
	}
}

// TestCampaignResolver checks the registry adapter: experiments with a
// Metrics hook resolve, others do not, and the runner threads the
// shard seed and log through Options.
func TestCampaignResolver(t *testing.T) {
	resolve := CampaignResolver()
	if _, ok := resolve("fig3"); ok {
		t.Fatal("fig3 has no Metrics hook and must not resolve")
	}
	if _, ok := resolve("no-such"); ok {
		t.Fatal("unknown experiments must not resolve")
	}
	run, ok := resolve("fig4")
	if !ok {
		t.Fatal("fig4 must resolve")
	}
	m, err := run(context.Background(), campaign.Shard{Experiment: "fig4", Seed: 7, Fast: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m["points"] != 10 {
		t.Fatalf("fast fig4 must report 10 points, got %v", m["points"])
	}
}

// TestConcurrentExperimentsSharedLog runs cheap experiments that all
// read the shared LeNet bundle in parallel, each writing through a
// per-shard view of one SyncWriter — the campaign pool's exact wiring.
// With -race this is the thread-safety test for both Options.Log
// multiplexing and the bundle's Exclusive locking.
func TestConcurrentExperimentsSharedLog(t *testing.T) {
	var buf bytes.Buffer
	sw := campaign.NewSyncWriter(&buf)
	ids := []string{"fig3", "fig4", "fig6", "fig7", "fig8", "table2", "differential"}
	var wg sync.WaitGroup
	for i, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			view := sw.Shard(campaign.Shard{Experiment: e.ID, SeedIndex: 0}.Label())
			defer view.Close()
			opt := Options{Fast: true, Seed: 1, Log: view}
			if err := e.Run(view, opt); err != nil {
				t.Errorf("%s: %v", e.ID, err)
			}
		}(i, e)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "[") || !strings.Contains(line, "#0] ") {
			t.Fatalf("log line lost its shard prefix: %q", line)
		}
	}
}
