package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/crossbar"
	"memlife/internal/device"
	"memlife/internal/nn"
	"memlife/internal/train"
)

// quantizedResistances maps every weight of net onto the fresh level
// grid (eq. (4) + quantization, per layer) and returns the programmed
// resistances — the data behind Fig. 3(b) and Fig. 6(b).
func quantizedResistances(net *nn.Network, p device.Params) []float64 {
	var out []float64
	for _, wp := range net.WeightParams() {
		wMin, wMax := wp.W.MinMax()
		for _, w := range wp.W.Data() {
			target := crossbar.TargetResistance(w, wMin, wMax, p.RminFresh, p.RmaxFresh)
			lvl := p.NearestLevel(target)
			out = append(out, p.LevelResistance(lvl))
		}
	}
	return out
}

// DistributionResult bundles the three histograms of Fig. 3 / Fig. 6.
type DistributionResult struct {
	Network string
	Skewed  bool
	// WeightHist is the trained weight distribution (Fig. 3a / 6a).
	WeightHist analysis.Histogram
	// ResistanceHist is the post-mapping, quantized resistance
	// distribution (Fig. 3b / 6b).
	ResistanceHist analysis.Histogram
	// ConductanceHist is the same data in conductance (Fig. 3c).
	ConductanceHist analysis.Histogram
	// WeightSkewness quantifies the weight distribution's asymmetry.
	WeightSkewness float64
	// HighResistanceMass is the fraction of devices programmed above
	// the middle of the resistance range.
	HighResistanceMass float64
	// MeanRelConductance is the mean of (g - gMin)/(gMax - gMin) over
	// all programmed devices — the aging-relevant quantity, since a
	// programming pulse's stress is proportional to conductance.
	// Conventional training sits near 0.5; skewed training pushes it
	// towards 0 (Section IV-A).
	MeanRelConductance float64
}

// distributions computes the Fig. 3 (normal) or Fig. 6 (skewed)
// histograms for a trained network.
func distributions(net *nn.Network, name string, skewed bool) DistributionResult {
	p := DeviceParams()
	weights := train.GatherWeights(net)
	res := quantizedResistances(net, p)
	cond := make([]float64, len(res))
	for i, r := range res {
		cond[i] = 1 / r
	}
	rMid := (p.RminFresh + p.RmaxFresh) / 2
	relCond := 0.0
	for _, g := range cond {
		relCond += (g - p.GminFresh()) / (p.GmaxFresh() - p.GminFresh())
	}
	relCond /= float64(len(cond))
	resHist := analysis.NewHistogramRange(res, p.RminFresh, p.RmaxFresh, 16)
	return DistributionResult{
		MeanRelConductance: relCond,
		Network:            name,
		Skewed:             skewed,
		WeightHist:         analysis.NewHistogram(weights, 16),
		ResistanceHist:     resHist,
		ConductanceHist:    analysis.NewHistogramRange(cond, p.GminFresh(), p.GmaxFresh(), 16),
		WeightSkewness:     train.SkewnessOf(weights),
		HighResistanceMass: 1 - resHist.MassBelow(rMid),
	}
}

// Fig3 reproduces Fig. 3: distributions after conventional training.
func Fig3(opt Options) (DistributionResult, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return DistributionResult{}, err
	}
	var out DistributionResult
	b.Exclusive(func() error { // reads race with concurrent lifetime sims
		out = distributions(b.Normal, b.Name, false)
		return nil
	})
	return out, nil
}

// Fig6 reproduces Fig. 6: distributions after skewed training.
func Fig6(opt Options) (DistributionResult, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return DistributionResult{}, err
	}
	var out DistributionResult
	b.Exclusive(func() error {
		out = distributions(b.Skewed, b.Name, true)
		return nil
	})
	return out, nil
}

func renderDistributions(w io.Writer, fig string, d DistributionResult) {
	kind := "conventional (L2)"
	if d.Skewed {
		kind = "skewed"
	}
	fmt.Fprintf(w, "%s — %s, %s training\n", fig, d.Network, kind)
	fmt.Fprintf(w, "weight skewness: %+.3f   high-resistance mass: %.3f   mean relative conductance: %.3f\n",
		d.WeightSkewness, d.HighResistanceMass, d.MeanRelConductance)
	fmt.Fprintln(w, "(a) trained weight distribution:")
	fmt.Fprint(w, d.WeightHist.Render(40))
	fmt.Fprintln(w, "(b) quantized resistance distribution (Ohm):")
	fmt.Fprint(w, d.ResistanceHist.Render(40))
	fmt.Fprintln(w, "(c) quantized conductance distribution (S):")
	fmt.Fprint(w, d.ConductanceHist.Render(40))
}

// Fig7Result samples the two-segment regularizer of eq. (8)-(10)
// against the trained weight distribution (Fig. 7).
type Fig7Result struct {
	Beta       float64
	Lambda1    float64
	Lambda2    float64
	Penalty    analysis.Series // pointwise penalty over the weight range
	WeightHist analysis.Histogram
}

// Fig7 reproduces Fig. 7 for the first LeNet layer.
func Fig7(opt Options) (Fig7Result, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return Fig7Result{}, err
	}
	var (
		beta       float64
		wMin, wMax float64
		weightHist analysis.Histogram
	)
	b.Exclusive(func() error {
		stats := train.NetworkStats(b.Normal)
		beta = b.Skew.BetaFactor * stats[0].Std
		wp := b.Normal.WeightParams()[0]
		wMin, wMax = wp.W.MinMax()
		weightHist = analysis.NewHistogram(wp.W.Data(), 16)
		return nil
	})
	reg, err := train.NewSkewed(b.Skew.Lambda1, b.Skew.Lambda2, nil)
	if err != nil {
		return Fig7Result{}, err
	}
	out := Fig7Result{
		Beta: beta, Lambda1: b.Skew.Lambda1, Lambda2: b.Skew.Lambda2,
		WeightHist: weightHist,
	}
	out.Penalty.Name = "two-segment penalty R1/R2"
	const samples = 41
	for i := 0; i < samples; i++ {
		x := wMin + (wMax-wMin)*float64(i)/float64(samples-1)
		out.Penalty.AddPoint(x, reg.PenaltyAt(x, beta))
	}
	return out, nil
}

// Fig9Result is the skewed weight histogram of the third layer of
// VGG-16 (Fig. 9).
type Fig9Result struct {
	Network  string
	Layer    string
	Hist     analysis.Histogram
	Mean     float64
	Skewness float64
}

// Fig9 reproduces Fig. 9.
func Fig9(opt Options) (Fig9Result, error) {
	b, err := VGGBundle(opt)
	if err != nil {
		return Fig9Result{}, err
	}
	var out Fig9Result
	b.Exclusive(func() error {
		layers := b.Skewed.WeightLayers()
		third := layers[2] // conv3, the paper's example layer
		w := third.Param.W.Data()
		out = Fig9Result{
			Network:  b.Name,
			Layer:    third.Param.Name,
			Hist:     analysis.NewHistogram(w, 16),
			Mean:     third.Param.W.Mean(),
			Skewness: train.SkewnessOf(w),
		}
		return nil
	})
	return out, nil
}

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Fig. 3: weight/resistance/conductance distributions, conventional training",
		Run: func(w io.Writer, opt Options) error {
			d, err := Fig3(opt)
			if err != nil {
				return err
			}
			renderDistributions(w, "Fig. 3", d)
			return nil
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Fig. 6: weight/resistance distributions, skewed training",
		Run: func(w io.Writer, opt Options) error {
			d, err := Fig6(opt)
			if err != nil {
				return err
			}
			renderDistributions(w, "Fig. 6", d)
			return nil
		},
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Fig. 7: two-segment regularization penalty vs trained weights",
		Run: func(w io.Writer, opt Options) error {
			r, err := Fig7(opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Fig. 7 — beta=%.4f lambda1=%g lambda2=%g\n", r.Beta, r.Lambda1, r.Lambda2)
			fmt.Fprint(w, r.Penalty.Render())
			fmt.Fprintln(w, "trained weight distribution:")
			fmt.Fprint(w, r.WeightHist.Render(40))
			return nil
		},
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Fig. 9: skewed weight distribution of VGG-16 layer 3",
		Run: func(w io.Writer, opt Options) error {
			r, err := Fig9(opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Fig. 9 — %s %s: mean=%+.4f skewness=%+.3f\n", r.Network, r.Layer, r.Mean, r.Skewness)
			fmt.Fprint(w, r.Hist.Render(40))
			return nil
		},
	})
}
