package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/crossbar"
	"memlife/internal/mapping"
	"memlife/internal/tensor"
)

// Fig8Result records one iterative range selection on an aged layer:
// every candidate upper bound with its evaluated accuracy, plus the
// winner (the data behind Fig. 8).
type Fig8Result struct {
	Layer      string
	Candidates []mapping.CandidateScore
	ChosenRHi  float64
	FreshRHi   float64
}

// Fig8 ages the first LeNet conv layer unevenly (so traced devices
// disagree about the aged bound), then runs the aging-aware iterative
// selection and reports the candidate scores.
func Fig8(opt Options) (Fig8Result, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return Fig8Result{}, err
	}
	var out Fig8Result
	err = b.Exclusive(func() error {
		// Mapping refreshes the live network weights; restore the
		// trained state afterwards so the shared bundle stays pristine.
		snap := b.Skewed.SnapshotParams()
		defer b.Skewed.RestoreParams(snap)
		mn, err := crossbar.NewMappedNetwork(b.Skewed, DeviceParams(), AgingModel(), TempK)
		if err != nil {
			return err
		}
		// Age layer 0 with spatially varying intensity: device (i,j)
		// gets cycled proportionally to its row index, like the
		// M1/M2/M3 sketch of Fig. 8 where traced devices have degraded
		// by different amounts.
		cb := mn.Layers[0].Crossbar
		p := cb.Params()
		rng := tensor.NewRNG(opt.Seed)
		for i := 0; i < cb.Rows; i++ {
			cycles := 1 + (3*i)/cb.Rows + rng.Intn(2)
			for j := 0; j < cb.Cols; j++ {
				d := cb.Device(i, j)
				for k := 0; k < cycles; k++ {
					d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
					d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
				}
			}
		}
		evalDS := b.TrainDS.Subset(96)
		eb := evalDS.Batches(evalDS.Len(), nil)[0]
		res, err := mapping.Map(mn, mapping.Config{Policy: mapping.AgingAware}, eb.X, eb.Y)
		if err != nil {
			return err
		}
		sel := res.Selections[0]
		out = Fig8Result{
			Layer:      sel.Layer,
			Candidates: sel.Candidates,
			ChosenRHi:  sel.RHi,
			FreshRHi:   p.RmaxFresh,
		}
		return nil
	})
	return out, err
}

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Fig. 8: iterative common-range selection on an unevenly aged layer",
		Run: func(w io.Writer, opt Options) error {
			r, err := Fig8(opt)
			if err != nil {
				return err
			}
			var cells [][]string
			for _, c := range r.Candidates {
				marker := ""
				if c.RHi == r.ChosenRHi {
					marker = "<== selected"
				}
				cells = append(cells, []string{
					fmt.Sprintf("%.0f", c.RHi),
					fmt.Sprintf("%.3f", c.Accuracy),
					marker,
				})
			}
			fmt.Fprintf(w, "Fig. 8 — candidate aged upper bounds for layer %s (fresh bound %.0f)\n", r.Layer, r.FreshRHi)
			fmt.Fprint(w, analysis.Table([]string{"candidate R_aged_max", "accuracy", ""}, cells))
			return nil
		},
	})
}
