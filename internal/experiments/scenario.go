package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"memlife/internal/campaign"
	"memlife/internal/fleet"
	"memlife/internal/spec"
)

// ConfigFingerprint hashes the resolved base specs every registered
// experiment derives from at the given scale (both fixtures, default
// seed). Campaigns pin it into their checkpoint fingerprint so a
// journal can only be resumed under the configuration that wrote it —
// if any default a spec serializes changes, the fingerprint changes and
// stale checkpoints fail loudly.
func ConfigFingerprint(fast bool) (string, error) {
	var parts []string
	for _, fixture := range []string{spec.FixtureLeNet, spec.FixtureVGG} {
		fp, err := spec.Defaults(fixture, fast).Fingerprint()
		if err != nil {
			return "", fmt.Errorf("experiments: config fingerprint: %w", err)
		}
		parts = append(parts, fp)
	}
	sum := sha256.Sum256([]byte(strings.Join(parts, "|")))
	return hex.EncodeToString(sum[:8]), nil
}

// ScenarioExperiment is the experiment name under which an ad-hoc
// scenario spec runs through the campaign engine (see ScenarioResolver).
const ScenarioExperiment = "scenario"

// ScenarioMetrics runs the resolved spec's lifetime study once at the
// options' seed and reduces it to scalar campaign metrics — the serve
// daemon's unit of work. The seed override (opt.Seed) replaces the
// spec's run.seed, so campaign shards of the same spec draw distinct,
// deterministic seed streams exactly like registered experiments do.
func ScenarioMetrics(s spec.Spec, opt Options) (map[string]float64, error) {
	s.Run.Seed = opt.Seed
	s.Run.Workers = opt.Workers
	opt.Fast = s.Run.Fast

	// A fleet block switches the unit of work: the spec describes a
	// population of crossbars under traffic, not a single lifetime
	// study, and needs no trained bundle.
	if s.Fleet != nil {
		res, err := fleet.Run(opt.Context(), *s.Fleet, s.Device, s.Aging, s.TempK, s.Run.Seed)
		if err != nil {
			return nil, err
		}
		return res.Metrics(), nil
	}

	b, err := BundleForSpec(s, opt)
	if err != nil {
		return nil, err
	}
	target, err := specTarget(b, s)
	if err != nil {
		return nil, err
	}
	res, err := runSpec(b, s, opt, target)
	if err != nil {
		return nil, err
	}
	failed := 0.0
	if res.Failed {
		failed = 1
	}
	return map[string]float64{
		"lifetime_apps": float64(res.Lifetime),
		"final_acc":     res.FinalAcc,
		"cycles":        float64(len(res.Records)),
		"failed":        failed,
		"target_acc":    target,
	}, nil
}

// ScenarioResolver adapts one resolved scenario spec to the campaign
// engine: the single experiment name ScenarioExperiment maps to a
// runner that executes the spec at the shard's derived seed. This is
// what lets the serve daemon reuse the campaign machinery — bounded
// workers, fsynced checkpoints, byte-identical aggregation, crash-safe
// resume — for arbitrary submitted specs that have no registry entry.
func ScenarioResolver(s spec.Spec) campaign.Resolver {
	return func(id string) (campaign.RunnerFunc, bool) {
		if id != ScenarioExperiment {
			return nil, false
		}
		return func(ctx context.Context, sh campaign.Shard, log io.Writer) (campaign.Metrics, error) {
			m, err := ScenarioMetrics(s, Options{Seed: sh.Seed, Log: log, Ctx: ctx, Workers: s.Run.Workers})
			return campaign.Metrics(m), err
		}, true
	}
}

// RunScenario executes one resolved scenario spec end to end: build (or
// fetch) the trained bundle its fixture section describes, derive the
// effective tuning target, run the lifetime simulation, and write a
// plain-text summary. This is the CLI's -scenario path; the options
// carry only run plumbing (context, log) — fast mode, seed and workers
// come from the spec itself.
func RunScenario(w io.Writer, s spec.Spec, opt Options) error {
	opt.Fast = s.Run.Fast
	opt.Seed = s.Run.Seed
	opt.Workers = s.Run.Workers

	fp, err := s.Fingerprint()
	if err != nil {
		return err
	}
	if s.Fleet != nil {
		return runFleetScenario(w, s, fp, opt)
	}
	b, err := BundleForSpec(s, opt)
	if err != nil {
		return err
	}
	target, err := specTarget(b, s)
	if err != nil {
		return err
	}
	res, err := runSpec(b, s, opt, target)
	if err != nil {
		return err
	}

	name := s.Name
	if name == "" {
		name = "(unnamed scenario)"
	}
	fmt.Fprintf(w, "scenario: %s\n", name)
	fmt.Fprintf(w, "fingerprint: %s\n", fp)
	fmt.Fprintf(w, "fixture: %s (%s / %s)  scenario: %s", s.Fixture.Name, b.Name, b.DatasetName, s.Scenario)
	if s.Policy != "" {
		fmt.Fprintf(w, "  policy: %s", s.Policy)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "software accuracy: normal=%.3f skewed=%.3f  target=%.3f\n", b.NormalAcc, b.SkewedAcc, target)
	fmt.Fprintf(w, "lifetime: %d applications over %d cycles", res.Lifetime, len(res.Records))
	if res.Failed {
		fmt.Fprint(w, " (failed)")
	} else {
		fmt.Fprint(w, " (censored: simulation budget reached)")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "final accuracy: %.3f\n", res.FinalAcc)
	if res.DegradedAtCycle > 0 {
		fmt.Fprintf(w, "degraded service from cycle %d\n", res.DegradedAtCycle)
	}
	return nil
}

// runFleetScenario is the -scenario path for specs carrying a fleet
// block: run the fleet simulation the block describes and summarize.
func runFleetScenario(w io.Writer, s spec.Spec, fp string, opt Options) error {
	res, err := fleet.Run(opt.Context(), *s.Fleet, s.Device, s.Aging, s.TempK, s.Run.Seed)
	if err != nil {
		return err
	}
	name := s.Name
	if name == "" {
		name = "(unnamed scenario)"
	}
	fmt.Fprintf(w, "scenario: %s (fleet)\n", name)
	fmt.Fprintf(w, "fingerprint: %s\n", fp)
	fmt.Fprintf(w, "fleet: %d instances, %d ticks, balancer=%s, traffic=%s\n",
		s.Fleet.Instances, s.Fleet.Ticks, s.Fleet.Balancer, s.Fleet.Traffic.Pattern)
	fmt.Fprintf(w, "served: %d  dropped: %d  retunes: %d  remaps: %d\n",
		res.Served, res.Dropped, res.Retunes, res.Remaps)
	fmt.Fprintf(w, "deaths: %d", res.Deaths)
	if res.FirstDeathTick > 0 {
		fmt.Fprintf(w, " (first at tick %d)", res.FirstDeathTick)
	}
	fmt.Fprintf(w, "  replacements: %d (cost %.1f)\n", res.Replacements, res.ReplacementCost)
	fmt.Fprintf(w, "accuracy p50/p99: %.3f / %.3f  latency proxy p50/p99: %.2f / %.2f\n",
		res.AccP50, res.AccP99, res.LatencyP50, res.LatencyP99)
	fmt.Fprintf(w, "final alive fraction: %.2f\n", res.FinalAlive)
	return nil
}
