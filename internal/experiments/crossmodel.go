package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/device"
)

// crossModelArms enumerates the device-physics models the cross-model
// table sweeps. The linear model is the paper's abstraction and the
// Table I baseline; the threshold models (MMS, Yacopcic) have state-
// dependent pulse responses that compress near the conductance rails;
// the diffusive model adds lognormal device-to-device and cycle-to-
// cycle variation plus spontaneous relaxation. Sigmas are moderate
// literature-typical values, not fitted constants.
var crossModelArms = []struct {
	label string
	model device.ModelSpec
}{
	{"linear", device.ModelSpec{}},
	{"mms", device.ModelSpec{Kind: device.ModelMMS}},
	{"yacopcic", device.ModelSpec{Kind: device.ModelYacopcic}},
	{"diffusive", device.ModelSpec{Kind: device.ModelDiffusive, D2D: 0.05, C2C: 0.02}},
}

// crossModelPolicies are the tuning policy arms: the paper's gradient-
// sign controller, AIDX-style scale recalibration, and the weight-
// sorting reprogramming minimizer.
var crossModelPolicies = []string{"sign", "recalib", "minreprog"}

// CrossModelPoint is one (device model, tuning policy) cell of the
// cross-model table.
type CrossModelPoint struct {
	Model    string
	Policy   string
	Lifetime int64
	Censored bool
	FinalAcc float64
	// DegradedAt is the first cycle of degraded (below-target) service;
	// 0 when the array never degraded.
	DegradedAt int
	// MeanIters is the mean per-cycle tuning iteration count — the
	// programming-effort (and therefore aging-rate) proxy that
	// separates the policies.
	MeanIters float64
}

// CrossModelTable1 reruns the Table I flagship scenario (ST+AT,
// LeNet-5) across the device-model zoo and the drift-adaptive tuning
// policies: 4 models x 3 policies under the moderate point of the fault
// sweep (1% stuck, fault-aware remapping, graceful degradation) with
// power-law conductance state drift enabled. It asks the robustness
// question behind the whole zoo: do the paper's lifetime conclusions
// survive when the idealized linear pulse response is replaced by
// nonlinear and stochastic device physics, and how much lifetime do the
// drift-adaptive policies buy on each?
func CrossModelTable1(opt Options) ([]CrossModelPoint, error) {
	b, err := LeNetBundle(opt)
	if err != nil {
		return nil, err
	}
	// Same serving posture as the fault sweep: a relaxed service-level
	// target so model physics, not target tightness, sets the lifetime.
	base := b.Spec
	base.Run.TargetScale = 0.9
	target, err := specTarget(b, base)
	if err != nil {
		return nil, err
	}

	var points []CrossModelPoint
	for _, m := range crossModelArms {
		for _, pol := range crossModelPolicies {
			s := base
			s.Device.Model = m.model
			// Power-law state relaxation toward Gmin, one interval per
			// deployment cycle — the disturbance the recalib policy is
			// built to absorb.
			s.Device.Drift = device.DriftSpec{Nu: 0.05}
			s.Lifetime.Tuning.Policy = pol
			s.Lifetime.Faults = FaultSweepFaults(0.01, s.Run.Seed)
			s.Lifetime.Mapping.FaultAware = true
			s.Lifetime.DegradedAccFrac = 0.5
			res, err := runSpec(b, s, opt, target)
			if err != nil {
				return nil, fmt.Errorf("experiments: crossmodel %s/%s: %w", m.label, pol, err)
			}
			iters := 0.0
			for _, rec := range res.Records {
				iters += float64(rec.TuneIters)
			}
			if n := len(res.Records); n > 0 {
				iters /= float64(n)
			}
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "crossmodel: model=%s policy=%s lifetime=%d acc=%.3f degradedAt=%d meanIters=%.1f\n",
					m.label, pol, res.Lifetime, res.FinalAcc, res.DegradedAtCycle, iters)
			}
			points = append(points, CrossModelPoint{
				Model:      m.label,
				Policy:     pol,
				Lifetime:   res.Lifetime,
				Censored:   !res.Failed,
				FinalAcc:   res.FinalAcc,
				DegradedAt: res.DegradedAtCycle,
				MeanIters:  iters,
			})
		}
	}
	return points, nil
}

func renderCrossModel(w io.Writer, points []CrossModelPoint) {
	var cells [][]string
	for _, p := range points {
		life := fmt.Sprintf("%d", p.Lifetime)
		if p.Censored {
			life = ">=" + life
		}
		degraded := "-"
		if p.DegradedAt > 0 {
			degraded = fmt.Sprintf("cycle %d", p.DegradedAt)
		}
		cells = append(cells, []string{
			p.Model,
			p.Policy,
			life,
			fmt.Sprintf("%.3f", p.FinalAcc),
			degraded,
			fmt.Sprintf("%.1f", p.MeanIters),
		})
	}
	fmt.Fprintln(w, "Cross-model Table I — lifetime vs device model and tuning policy (ST+AT, 1% stuck, state drift nu=0.05)")
	fmt.Fprint(w, analysis.Table(
		[]string{"model", "policy", "lifetime", "final acc", "degraded", "mean iters"},
		cells))
	fmt.Fprintln(w, "models: linear (paper) | mms, yacopcic (threshold/nonlinear) | diffusive (D2D=0.05, C2C=0.02 lognormal)")
	fmt.Fprintln(w, "policies: sign (eq. 5) | recalib (per-layer digital gain refit) | minreprog (weight-sorted pulses, bit-stucking)")
}

// crossModelMetrics flattens the cross-model table into per-cell
// metrics; the (model, policy) grid is fixed, so each cell aggregates
// into its own distribution across campaign seeds.
func crossModelMetrics(opt Options) (map[string]float64, error) {
	points, err := CrossModelTable1(opt)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64)
	for _, pt := range points {
		k := pt.Model + "/" + pt.Policy
		m[k+"/life"] = float64(pt.Lifetime)
		m[k+"/final_acc"] = pt.FinalAcc
		m[k+"/degraded_at"] = float64(pt.DegradedAt)
		m[k+"/mean_iters"] = pt.MeanIters
	}
	return m, nil
}

func init() {
	register(Experiment{
		ID:      "crossmodel-table1",
		Title:   "Cross-model Table I: lifetime vs device-physics model and tuning policy",
		Metrics: crossModelMetrics,
		Run: func(w io.Writer, opt Options) error {
			points, err := CrossModelTable1(opt)
			if err != nil {
				return err
			}
			renderCrossModel(w, points)
			return nil
		},
	})
}
