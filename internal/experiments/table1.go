package experiments

import (
	"fmt"
	"io"

	"memlife/internal/analysis"
	"memlife/internal/lifetime"
	"memlife/internal/nn"
)

// Table1Row is one network/dataset row of the paper's Table I.
type Table1Row struct {
	Network   string
	Dataset   string
	AccNormal float64 // software accuracy, traditional training
	AccSkewed float64 // software accuracy, skewed training
	LifeTT    int64   // lifetime in applications, T+T
	LifeSTT   int64   // ST+T
	LifeSTAT  int64   // ST+AT
	RatioSTT  float64 // LifeSTT / LifeTT (paper: 6x / 7x)
	RatioSTAT float64 // LifeSTAT / LifeTT (paper: 8x / 11x)
	// Censored marks lifetimes that hit the simulation budget without
	// failing (a lower bound, not an exact lifetime).
	CensoredTT, CensoredSTT, CensoredSTAT bool
}

// Table1Bundle runs the three scenarios of Table I for one bundle with
// the standard experiment budget: the bundle's base spec, transformed
// only in its scenario field per run.
func Table1Bundle(b *Bundle, opt Options) (Table1Row, error) {
	target, err := specTarget(b, b.Spec)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1BundleWithConfig(b, opt, b.Spec.LifetimeConfig(target))
}

// Table1BundleWithConfig runs the three scenarios of Table I for one
// bundle under an explicit lifetime budget (used by the benches, which
// need shorter simulations).
func Table1BundleWithConfig(b *Bundle, opt Options, cfg lifetime.Config) (Table1Row, error) {
	row := Table1Row{
		Network: b.Name, Dataset: b.DatasetName,
		AccNormal: b.NormalAcc, AccSkewed: b.SkewedAcc,
	}

	type scenarioRun struct {
		sc  lifetime.Scenario
		net *nn.Network
	}
	runs := []scenarioRun{
		{lifetime.TT, b.Normal},
		{lifetime.STT, b.Skewed},
		{lifetime.STAT, b.Skewed},
	}
	for _, r := range runs {
		var res lifetime.Result
		err := b.Exclusive(func() error {
			snap := r.net.SnapshotParams()
			defer r.net.RestoreParams(snap)
			var err error
			res, err = lifetime.RunCtx(opt.Context(), r.net, b.TrainDS, r.sc, b.Spec.Device, b.Spec.Aging, b.Spec.TempK, cfg)
			return err
		})
		if err != nil {
			return row, fmt.Errorf("experiments: table1 %s %s: %w", b.Name, r.sc, err)
		}
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "table1: %s %s lifetime=%d apps failed=%v cycles=%d\n",
				b.Name, r.sc, res.Lifetime, res.Failed, len(res.Records))
		}
		switch r.sc {
		case lifetime.TT:
			row.LifeTT, row.CensoredTT = res.Lifetime, !res.Failed
		case lifetime.STT:
			row.LifeSTT, row.CensoredSTT = res.Lifetime, !res.Failed
		case lifetime.STAT:
			row.LifeSTAT, row.CensoredSTAT = res.Lifetime, !res.Failed
		}
	}
	if row.LifeTT > 0 {
		row.RatioSTT = float64(row.LifeSTT) / float64(row.LifeTT)
		row.RatioSTAT = float64(row.LifeSTAT) / float64(row.LifeTT)
	}
	return row, nil
}

// Table1 reproduces Table I across both test cases.
func Table1(opt Options) ([]Table1Row, error) {
	var rows []Table1Row
	for _, mk := range []func(Options) (*Bundle, error){LeNetBundle, VGGBundle} {
		b, err := mk(opt)
		if err != nil {
			return nil, err
		}
		row, err := Table1Bundle(b, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func renderTable1(w io.Writer, rows []Table1Row) {
	var cells [][]string
	mark := func(v int64, censored bool) string {
		if censored {
			return fmt.Sprintf(">=%d", v)
		}
		return fmt.Sprintf("%d", v)
	}
	for _, r := range rows {
		cells = append(cells, []string{
			r.Network, r.Dataset,
			fmt.Sprintf("%.3f", r.AccNormal),
			fmt.Sprintf("%.3f", r.AccSkewed),
			mark(r.LifeTT, r.CensoredTT),
			mark(r.LifeSTT, r.CensoredSTT),
			mark(r.LifeSTAT, r.CensoredSTAT),
			fmt.Sprintf("%.1fx", r.RatioSTT),
			fmt.Sprintf("%.1fx", r.RatioSTAT),
		})
	}
	fmt.Fprintln(w, "Table I — accuracy and lifetime comparison (lifetimes in applications)")
	fmt.Fprint(w, analysis.Table(
		[]string{"network", "dataset", "acc(T)", "acc(ST)", "T+T", "ST+T", "ST+AT", "ST+T/T+T", "ST+AT/T+T"},
		cells))
	fmt.Fprintln(w, "paper reference: lifetime gains 6x (LeNet ST+T), 7x (VGG ST+T), 8x (LeNet ST+AT), 11x (VGG ST+AT)")
}

func init() {
	register(Experiment{
		ID:      "table1",
		Title:   "Table I: accuracy and lifetime (T+T vs ST+T vs ST+AT)",
		Metrics: table1Metrics,
		Run: func(w io.Writer, opt Options) error {
			rows, err := Table1(opt)
			if err != nil {
				return err
			}
			renderTable1(w, rows)
			return nil
		},
	})
}
