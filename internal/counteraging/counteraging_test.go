package counteraging

import (
	"math"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/crossbar"
	"memlife/internal/device"
	"memlife/internal/tensor"
)

func TestPulseShapeFactors(t *testing.T) {
	if PulseDC.EnergyFactor() != 1 || PulseDC.SlowdownFactor() != 1 {
		t.Fatal("DC pulse must be the unit reference")
	}
	if math.Abs(PulseTriangular.EnergyFactor()-1.0/3) > 1e-12 {
		t.Fatalf("triangular energy factor = %g, want 1/3", PulseTriangular.EnergyFactor())
	}
	if PulseTriangular.SlowdownFactor() != 3 {
		t.Fatalf("triangular slowdown = %d, want 3", PulseTriangular.SlowdownFactor())
	}
	if math.Abs(PulseSinusoidal.EnergyFactor()-0.5) > 1e-12 {
		t.Fatalf("sinusoidal energy factor = %g, want 1/2", PulseSinusoidal.EnergyFactor())
	}
	if PulseDC.String() != "dc" || PulseTriangular.String() != "triangular" {
		t.Fatal("shape names")
	}
}

// TestApplyPulseShapeReducesStress checks the net effect on device
// stress: a shaped pulse train delivering the same dose costs less
// normalized stress than the DC pulse, because stress scales with the
// instantaneous power while the dose scales with energy.
func TestApplyPulseShapeReducesStress(t *testing.T) {
	base := device.Params32()
	for _, shape := range []PulseShape{PulseTriangular, PulseSinusoidal} {
		shaped := ApplyPulseShape(base, shape)
		if err := shaped.Validate(); err != nil {
			t.Fatalf("%v params invalid: %v", shape, err)
		}
		// Same level walk on both devices.
		dBase := device.New(base)
		dShaped := device.New(shaped)
		dBase.Program(base.RminFresh, base.RminFresh, base.RmaxFresh)
		dShaped.Program(shaped.RminFresh, shaped.RminFresh, shaped.RmaxFresh)
		if dShaped.Stress() >= dBase.Stress() {
			t.Fatalf("%v pulses must stress less: %g vs %g", shape, dShaped.Stress(), dBase.Stress())
		}
	}
}

func TestSeriesResistorDerating(t *testing.T) {
	p := SeriesResistorParams{Params: device.Params32(), Rs: 10e3}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// At R = Rs the divider halves the voltage: stress derated 4x.
	if got := p.StressDerating(10e3); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("derating at R=Rs = %g, want 0.25", got)
	}
	// The divider protects low-R (high current) states most.
	if p.StressDerating(10e3) >= p.StressDerating(100e3) {
		t.Fatal("derating must weaken as device resistance grows")
	}
	// No resistor, no derating.
	none := SeriesResistorParams{Params: device.Params32(), Rs: 0}
	if none.StressDerating(5e4) != 1 {
		t.Fatal("Rs=0 must not derate")
	}
	bad := SeriesResistorParams{Params: device.Params32(), Rs: -1}
	if bad.Validate() == nil {
		t.Fatal("negative Rs must be rejected")
	}
}

func TestSeriesResistorDeratingPanicsOnBadR(t *testing.T) {
	p := SeriesResistorParams{Params: device.Params32(), Rs: 1e3}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.StressDerating(0)
}

func newTestArray(t *testing.T, rows, cols int) *crossbar.Crossbar {
	t.Helper()
	cb, err := crossbar.New(rows, cols, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	return cb
}

func TestRowSwapperIdentityStart(t *testing.T) {
	s, err := NewRowSwapper(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.Perm {
		if p != i {
			t.Fatal("swapper must start as identity")
		}
	}
	inv := s.LogicalVMMOrder()
	for i, p := range inv {
		if p != i {
			t.Fatal("identity inverse must be identity")
		}
	}
}

func TestRowSwapperRebalances(t *testing.T) {
	cb := newTestArray(t, 4, 3)
	p := cb.Params()
	// Stress physical row 0 heavily.
	for k := 0; k < 20; k++ {
		for j := 0; j < 3; j++ {
			cb.Device(0, j).Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
			cb.Device(0, j).Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
		}
	}
	// Logical row 2 has the highest programming demand.
	weights := [][]float64{
		{0.1, 0.1, 0.1},
		{0.2, 0.2, 0.2},
		{0.0, 0.9, 0.9},
		{0.3, 0.3, 0.3},
	}
	s, err := NewRowSwapper(4)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := s.Rebalance(cb, weights)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("uneven stress must trigger reassignment")
	}
	if s.Perm[2] == 0 {
		t.Fatal("the most demanding logical row must avoid the most stressed physical row")
	}
	// Round trip: permuting then reading back in logical order
	// recovers every logical row exactly once.
	phys := s.PermuteRows(weights)
	seen := map[int]bool{}
	for physRow, logical := range s.LogicalVMMOrder() {
		if seen[logical] {
			t.Fatal("permutation must be a bijection")
		}
		seen[logical] = true
		for j := range weights[logical] {
			if phys[physRow][j] != weights[logical][j] {
				t.Fatal("PermuteRows must place logical rows at their physical slots")
			}
		}
	}
}

// TestRowSwappingEqualizesWear runs the [12] baseline end-to-end on a
// small array: with periodic rebalancing, the stress spread across
// physical rows stays tighter than without.
func TestRowSwappingEqualizesWear(t *testing.T) {
	run := func(swap bool) float64 {
		cb := newTestArray(t, 6, 4)
		p := cb.Params()
		rng := tensor.NewRNG(5)
		// Logical weights with very uneven row demand.
		weights := make([][]float64, 6)
		for i := range weights {
			weights[i] = make([]float64, 4)
			for j := range weights[i] {
				weights[i][j] = rng.Float64() * float64(i) / 5.0
			}
		}
		s, err := NewRowSwapper(6)
		if err != nil {
			t.Fatal(err)
		}
		for epoch := 0; epoch < 8; epoch++ {
			if swap {
				if _, err := s.Rebalance(cb, weights); err != nil {
					t.Fatal(err)
				}
			}
			phys := s.PermuteRows(weights)
			flat := tensor.New(6, 4)
			for i := range phys {
				for j, v := range phys[i] {
					flat.Set(v, i, j)
				}
			}
			cb.MapWeights(flat, p.RminFresh, p.RmaxFresh)
			// Exercise the rows: cycle every device once.
			for i := 0; i < 6; i++ {
				for j := 0; j < 4; j++ {
					cb.StepDevice(i, j, +1)
					cb.StepDevice(i, j, -1)
				}
			}
		}
		stress := rowStress(cb)
		min, max := stress[0], stress[0]
		for _, v := range stress[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max - min
	}
	spreadSwap := run(true)
	spreadFixed := run(false)
	if spreadSwap >= spreadFixed {
		t.Fatalf("row swapping must tighten the wear spread: %g vs %g", spreadSwap, spreadFixed)
	}
}

func TestRowSwapperValidation(t *testing.T) {
	if _, err := NewRowSwapper(0); err == nil {
		t.Fatal("expected error for zero rows")
	}
	s, err := NewRowSwapper(3)
	if err != nil {
		t.Fatal(err)
	}
	cb := newTestArray(t, 3, 2)
	if _, err := s.Rebalance(cb, [][]float64{{0, 0}}); err == nil {
		t.Fatal("expected error for logical/physical row mismatch")
	}
}
