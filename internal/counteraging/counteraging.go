// Package counteraging implements the prior-art counter-aging
// techniques the paper's related-work section discusses, as baselines
// for the proposed framework:
//
//   - Pulse shaping ([9]): triangular or sinusoidal programming pulses
//     whose average power is lower than the DC pulse of the same
//     amplitude, reducing per-pulse stress at the cost of slower
//     programming.
//   - Series resistor ([11]): a resistor in series with each memristor
//     suppresses the voltage (and current) across the device during
//     programming; the divider weakens as the device resistance grows.
//   - Row swapping ([12]): periodically remap logical matrix rows onto
//     the physical crossbar rows so lightly-aged rows take over for
//     heavily-aged ones, equalizing wear across the array.
//
// The paper's point is that these techniques either cost extra hardware
// (series resistors), programming time (pulse shaping) or system
// complexity (swapping), while the proposed software/hardware
// co-optimization costs nothing; this package makes that comparison
// quantitative.
package counteraging

import (
	"fmt"
	"math"
	"sort"

	"memlife/internal/crossbar"
	"memlife/internal/device"
)

// PulseShape selects the programming pulse waveform of [9].
type PulseShape int

const (
	// PulseDC is the conventional rectangular pulse (factor 1).
	PulseDC PulseShape = iota
	// PulseTriangular ramps linearly up and down; its mean squared
	// voltage is 1/3 of the DC pulse.
	PulseTriangular
	// PulseSinusoidal follows a half-sine; its mean squared voltage is
	// 1/2 of the DC pulse.
	PulseSinusoidal
)

// String names the shape.
func (s PulseShape) String() string {
	switch s {
	case PulseDC:
		return "dc"
	case PulseTriangular:
		return "triangular"
	case PulseSinusoidal:
		return "sinusoidal"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// EnergyFactor returns the pulse's mean V^2 relative to a DC pulse of
// the same amplitude: 1 for DC, 1/3 for triangular (mean of t^2 over a
// symmetric ramp), 1/2 for half-sine (mean of sin^2).
func (s PulseShape) EnergyFactor() float64 {
	switch s {
	case PulseTriangular:
		return 1.0 / 3.0
	case PulseSinusoidal:
		return 0.5
	default:
		return 1
	}
}

// SlowdownFactor returns how many shaped pulses replace one DC pulse to
// deliver the same programming dose: the inverse of the energy factor,
// rounded up. Pulse shaping trades programming time for stress.
func (s PulseShape) SlowdownFactor() int {
	return int(math.Ceil(1 / s.EnergyFactor()))
}

// ApplyPulseShape derates the device's per-pulse stress by the shape's
// energy factor and stretches the pulse width by the slowdown factor,
// returning the modified parameters. One shaped (longer) pulse still
// moves the device one level, so the stress per programmed level drops
// to EnergyFactor of the DC case — the "lower average voltage causes
// less aging" observation of [9] — at the cost of SlowdownFactor more
// programming time.
func ApplyPulseShape(p device.Params, s PulseShape) device.Params {
	out := p
	base := p.StressDerate
	if base == 0 {
		base = 1
	}
	out.StressDerate = base * s.EnergyFactor()
	out.PulseWidth = p.PulseWidth * float64(s.SlowdownFactor())
	return out
}

// SeriesResistorParams models [11]: a fixed resistor Rs in series with
// every cell. During programming the device sees only the divided
// voltage V * R/(R+Rs), so the power dissipated in the device is
// V^2 * R / (R+Rs)^2 instead of V^2 / R... relative to the undivided
// pulse the stress is derated by (R/(R+Rs))^2. The divider is most
// protective exactly where aging is worst — at low device resistance —
// at the cost of one resistor per cell and a reduced programming
// voltage budget.
type SeriesResistorParams struct {
	device.Params
	// Rs is the series resistance in Ohms.
	Rs float64
}

// Validate reports an error for non-physical configurations.
func (p SeriesResistorParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.Rs < 0 {
		return fmt.Errorf("counteraging: series resistance must be non-negative, got %g", p.Rs)
	}
	return nil
}

// StressDerating returns the factor (R/(R+Rs))^2 by which the series
// resistor reduces the programming stress of a device currently at
// resistance r.
func (p SeriesResistorParams) StressDerating(r float64) float64 {
	if r <= 0 {
		panic(fmt.Sprintf("counteraging: non-positive resistance %g", r))
	}
	f := r / (r + p.Rs)
	return f * f
}

// RowSwapper implements the structured row-remapping of [12]: logical
// weight-matrix rows are assigned to physical crossbar rows so the
// most-stressed physical rows carry the least-demanding logical rows.
// Swapping costs a full reprogram of the swapped rows, so it is applied
// periodically rather than continuously.
type RowSwapper struct {
	// Perm maps logical row -> physical row.
	Perm []int
}

// NewRowSwapper returns the identity assignment for rows rows.
func NewRowSwapper(rows int) (*RowSwapper, error) {
	if rows < 1 {
		return nil, fmt.Errorf("counteraging: need at least one row, got %d", rows)
	}
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}
	return &RowSwapper{Perm: perm}, nil
}

// rowStress returns the summed device stress of each physical row.
func rowStress(cb *crossbar.Crossbar) []float64 {
	out := make([]float64, cb.Rows)
	for i := 0; i < cb.Rows; i++ {
		for j := 0; j < cb.Cols; j++ {
			out[i] += cb.Device(i, j).Stress()
		}
	}
	return out
}

// rowDemand estimates how much programming a logical row attracts: the
// summed distance of its weights from the weight minimum (rows holding
// large conductances are programmed with more current).
func rowDemand(w [][]float64) []float64 {
	out := make([]float64, len(w))
	for i, row := range w {
		min := math.Inf(1)
		for _, v := range row {
			if v < min {
				min = v
			}
		}
		for _, v := range row {
			out[i] += v - min
		}
	}
	return out
}

// Rebalance reassigns logical rows to physical rows: the logical row
// with the highest programming demand goes to the physical row with the
// lowest accumulated stress, and so on. It returns the number of
// logical rows whose physical assignment changed.
func (s *RowSwapper) Rebalance(cb *crossbar.Crossbar, weights [][]float64) (int, error) {
	if len(weights) != len(s.Perm) {
		return 0, fmt.Errorf("counteraging: %d logical rows vs permutation of %d", len(weights), len(s.Perm))
	}
	stress := rowStress(cb)
	demand := rowDemand(weights)

	physByStress := make([]int, cb.Rows)
	for i := range physByStress {
		physByStress[i] = i
	}
	sort.Slice(physByStress, func(a, b int) bool {
		return stress[physByStress[a]] < stress[physByStress[b]]
	})
	logByDemand := make([]int, len(weights))
	for i := range logByDemand {
		logByDemand[i] = i
	}
	sort.Slice(logByDemand, func(a, b int) bool {
		return demand[logByDemand[a]] > demand[logByDemand[b]]
	})

	changed := 0
	newPerm := make([]int, len(s.Perm))
	for k, logical := range logByDemand {
		phys := physByStress[k]
		newPerm[logical] = phys
		if s.Perm[logical] != phys {
			changed++
		}
	}
	s.Perm = newPerm
	return changed, nil
}

// PermuteRows returns weights reordered so row i of the result is the
// logical row assigned to physical row i — the matrix to hand to
// Crossbar.MapWeights after a Rebalance.
func (s *RowSwapper) PermuteRows(weights [][]float64) [][]float64 {
	out := make([][]float64, len(weights))
	for logical, phys := range s.Perm {
		out[phys] = weights[logical]
	}
	return out
}

// LogicalVMMOrder returns, for each physical row index, the logical row
// it carries (the inverse permutation), which the read-out periphery
// uses to route inputs.
func (s *RowSwapper) LogicalVMMOrder() []int {
	inv := make([]int, len(s.Perm))
	for logical, phys := range s.Perm {
		inv[phys] = logical
	}
	return inv
}
