package crossbar

import (
	"fmt"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/fault"
	"memlife/internal/nn"
	"memlife/internal/tensor"
)

// MappedLayer binds one weight matrix of a network to its crossbar.
type MappedLayer struct {
	Name     string
	Kind     nn.LayerKind
	Crossbar *Crossbar
	// Param is the live network parameter; Refresh overwrites its
	// weights with the crossbar's effective values so inference runs
	// through the simulated hardware.
	Param *nn.Param
	// Target holds the software-trained weights, the source of every
	// (re)mapping.
	Target *tensor.Tensor
	// Gain is the layer's digital output-scaling factor: Refresh
	// multiplies the effective weights by it before inference. It is
	// the knob of AIDX-style scale recalibration (tuning policy
	// "recalib"), which compensates uniform conductance drift in the
	// periphery instead of reprogramming devices. 1 (the initial and
	// post-remap value) applies no scaling and costs nothing.
	Gain float64
}

// MappedNetwork is a neural network deployed onto memristor crossbars:
// one crossbar per conv/FC weight matrix, with biases kept in digital
// periphery (the trained bias values remain in the host network).
type MappedNetwork struct {
	Net    *nn.Network
	Layers []*MappedLayer
}

// NewMappedNetwork builds a crossbar for every weight layer of the
// trained network. The network's current weights become the mapping
// targets.
func NewMappedNetwork(net *nn.Network, p device.Params, m aging.Model, tempK float64) (*MappedNetwork, error) {
	mn := &MappedNetwork{Net: net}
	for _, wl := range net.WeightLayers() {
		rows, cols := wl.Param.W.Dim(0), wl.Param.W.Dim(1)
		cb, err := New(rows, cols, p, m, tempK)
		if err != nil {
			return nil, fmt.Errorf("crossbar: layer %s: %w", wl.Param.Name, err)
		}
		// Decorrelate the per-device noise draws across layers (a pure
		// no-op for models without variation).
		cb.SeedDeviceNoise(uint64(len(mn.Layers)+1) << 32)
		mn.Layers = append(mn.Layers, &MappedLayer{
			Name:     wl.Param.Name,
			Kind:     wl.Kind,
			Crossbar: cb,
			Param:    wl.Param,
			Target:   wl.Param.W.Clone(),
			Gain:     1,
		})
	}
	return mn, nil
}

// SetTargets replaces the mapping targets with the current weights of
// the host network (e.g. after retraining in software).
func (m *MappedNetwork) SetTargets() {
	for _, l := range m.Layers {
		l.Target = l.Param.W.Clone()
	}
}

// RestoreSoftwareWeights writes the trained target weights back into the
// host network, undoing any Refresh. Useful for comparing software and
// hardware accuracy on the same network object.
func (m *MappedNetwork) RestoreSoftwareWeights() {
	for _, l := range m.Layers {
		l.Param.W.CopyFrom(l.Target)
	}
}

// MapLayer programs layer i's targets with the common range [rLo, rHi].
func (m *MappedNetwork) MapLayer(i int, rLo, rHi float64) MapStats {
	l := m.Layers[i]
	return l.Crossbar.MapWeights(l.Target, rLo, rHi)
}

// MapLayerFaultAware programs layer i's targets with stuck devices
// skipped and compensated (Crossbar.MapWeightsFaultAware).
func (m *MappedNetwork) MapLayerFaultAware(i int, rLo, rHi float64) MapStats {
	l := m.Layers[i]
	return l.Crossbar.MapWeightsFaultAware(l.Target, rLo, rHi)
}

// SetFaults builds one fault injector per crossbar from cfg and
// attaches it, applying initial stuck faults. Each layer derives an
// independent deterministic stream from cfg.Seed and its index, so the
// network-wide fault map is a pure function of cfg.
func (m *MappedNetwork) SetFaults(cfg fault.Config) error {
	for i, l := range m.Layers {
		n := l.Crossbar.Rows * l.Crossbar.Cols
		inj, err := fault.NewInjector(cfg, n, int64(i)*1_000_003)
		if err != nil {
			return fmt.Errorf("crossbar: layer %s faults: %w", l.Name, err)
		}
		if err := l.Crossbar.SetFaultInjector(inj); err != nil {
			return fmt.Errorf("crossbar: layer %s faults: %w", l.Name, err)
		}
	}
	return nil
}

// AdvanceFaults applies the wear-out hazard on every crossbar,
// returning the number of newly stuck devices network-wide.
func (m *MappedNetwork) AdvanceFaults() int {
	newly := 0
	for _, l := range m.Layers {
		newly += l.Crossbar.AdvanceFaults()
	}
	return newly
}

// StuckCounts tallies permanently stuck devices network-wide.
func (m *MappedNetwork) StuckCounts() (lrs, hrs int) {
	for _, l := range m.Layers {
		a, b := l.Crossbar.StuckCounts()
		lrs += a
		hrs += b
	}
	return lrs, hrs
}

// DeviceCount returns the total number of devices across all crossbars.
func (m *MappedNetwork) DeviceCount() int {
	n := 0
	for _, l := range m.Layers {
		n += l.Crossbar.Rows * l.Crossbar.Cols
	}
	return n
}

// MapStatsTotal aggregates per-layer mapping stats.
type MapStatsTotal struct {
	Pulses  int
	Stress  float64
	Clipped int
	Stuck   int
	Skipped int
}

// MapAllFresh maps every layer using the fresh device range — the
// baseline mapping that ignores aging (the T+T / ST+T scenarios).
func (m *MappedNetwork) MapAllFresh() MapStatsTotal {
	var total MapStatsTotal
	for i, l := range m.Layers {
		p := l.Crossbar.Params()
		s := m.MapLayer(i, p.RminFresh, p.RmaxFresh)
		total.Pulses += s.Pulses
		total.Stress += s.Stress
		total.Clipped += s.Clipped
	}
	return total
}

// Refresh loads every crossbar's effective weights into the host
// network, so subsequent Forward calls simulate hardware inference.
// With warm read caches this is one memcpy per layer. It returns an
// error (crossbar.ErrNotMapped wrapped per layer) if any crossbar has
// not been programmed yet.
func (m *MappedNetwork) Refresh() error {
	for _, l := range m.Layers {
		if err := l.Crossbar.ReadWeightsInto(l.Param.W); err != nil {
			return fmt.Errorf("crossbar: refresh layer %s: %w", l.Name, err)
		}
		if l.Gain != 1 && l.Gain != 0 {
			// Digital output scaling (recalibration policy); skipped
			// entirely at the default gain so the hot path is untouched.
			wd := l.Param.W.Data()
			for i := range wd {
				wd[i] *= l.Gain
			}
		}
	}
	return nil
}

// ResetGains restores every layer's digital scaling to 1 — remapping
// reprograms the devices to their targets, so any drift compensation
// the gains were carrying is stale.
func (m *MappedNetwork) ResetGains() {
	for _, l := range m.Layers {
		l.Gain = 1
	}
}

// StateDrift applies one interval of spontaneous conductance state
// drift to every crossbar (see Crossbar.StateDrift).
func (m *MappedNetwork) StateDrift(factor float64) {
	for _, l := range m.Layers {
		l.Crossbar.StateDrift(factor)
	}
}

// Accuracy refreshes the effective weights and classifies the batch.
func (m *MappedNetwork) Accuracy(x *tensor.Tensor, y []int) (float64, error) {
	if err := m.Refresh(); err != nil {
		return 0, err
	}
	return m.Net.Accuracy(x, y), nil
}

// RandomizeAging assigns lognormal endurance-variability factors to
// every device of every crossbar.
func (m *MappedNetwork) RandomizeAging(sigma float64, rng *tensor.RNG) {
	for _, l := range m.Layers {
		l.Crossbar.RandomizeAging(sigma, rng)
	}
}

// AddStress injects burn-in stress into every device of every crossbar.
func (m *MappedNetwork) AddStress(s float64) {
	for _, l := range m.Layers {
		l.Crossbar.AddStress(s)
	}
}

// SetTraceStride changes the tracing density on every crossbar.
func (m *MappedNetwork) SetTraceStride(stride int) {
	for _, l := range m.Layers {
		l.Crossbar.SetTraceStride(stride)
	}
}

// Drift perturbs every device of every crossbar (read-disturb drift).
func (m *MappedNetwork) Drift(sigma float64, rng *tensor.RNG) {
	for _, l := range m.Layers {
		l.Crossbar.Drift(sigma, rng)
	}
}

// TotalPulses sums programming pulses across all crossbars.
func (m *MappedNetwork) TotalPulses() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.Crossbar.TotalPulses()
	}
	return n
}

// TotalStress sums accumulated stress across all crossbars.
func (m *MappedNetwork) TotalStress() float64 {
	s := 0.0
	for _, l := range m.Layers {
		s += l.Crossbar.TotalStress()
	}
	return s
}

// MeanUpperBoundByKind averages the aged upper resistance bound over all
// devices of conv layers and FC layers separately — the two curves of
// Fig. 11.
func (m *MappedNetwork) MeanUpperBoundByKind() (conv, fc float64) {
	convSum, convN, fcSum, fcN := 0.0, 0, 0.0, 0
	for _, l := range m.Layers {
		mean := l.Crossbar.MeanAgedUpperBound()
		n := l.Crossbar.Rows * l.Crossbar.Cols
		if l.Kind == nn.LayerConv {
			convSum += mean * float64(n)
			convN += n
		} else {
			fcSum += mean * float64(n)
			fcN += n
		}
	}
	if convN > 0 {
		conv = convSum / float64(convN)
	}
	if fcN > 0 {
		fc = fcSum / float64(fcN)
	}
	return conv, fc
}
