package crossbar

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/tensor"
)

func newTestCrossbar(t *testing.T, rows, cols int) *Crossbar {
	t.Helper()
	cb, err := New(rows, cols, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	return cb
}

func TestNewValidation(t *testing.T) {
	p := device.Params32()
	m := aging.DefaultModel()
	if _, err := New(0, 4, p, m, 300); err == nil {
		t.Fatal("zero rows must be rejected")
	}
	if _, err := New(4, 4, device.Params{}, m, 300); err == nil {
		t.Fatal("invalid device params must be rejected")
	}
	if _, err := New(4, 4, p, aging.Model{}, 300); err == nil {
		t.Fatal("invalid aging model must be rejected")
	}
	if _, err := New(4, 4, p, m, -1); err == nil {
		t.Fatal("negative temperature must be rejected")
	}
}

func TestTargetResistanceEndpoints(t *testing.T) {
	// eq. (4): wMin -> gMin (rHi), wMax -> gMax (rLo).
	rLo, rHi := 1e4, 1e5
	if got := TargetResistance(-1, -1, 1, rLo, rHi); math.Abs(got-rHi) > 1e-9 {
		t.Fatalf("wMin target = %g, want rHi %g", got, rHi)
	}
	if got := TargetResistance(1, -1, 1, rLo, rHi); math.Abs(got-rLo) > 1e-9 {
		t.Fatalf("wMax target = %g, want rLo %g", got, rLo)
	}
	// Midpoint weight maps to mid conductance, NOT mid resistance.
	mid := TargetResistance(0, -1, 1, rLo, rHi)
	gMid := (1/rLo + 1/rHi) / 2
	if math.Abs(1/mid-gMid) > 1e-12 {
		t.Fatalf("mid weight conductance = %g, want %g", 1/mid, gMid)
	}
}

func TestTargetResistanceDegenerateRange(t *testing.T) {
	if got := TargetResistance(0.5, 0.5, 0.5, 1e4, 1e5); got != 1e5 {
		t.Fatalf("degenerate weight range must map to gMin (rHi), got %g", got)
	}
}

// Property: EffectiveWeight inverts TargetResistance exactly over the
// mapping range.
func TestEffectiveWeightInvertsMapping(t *testing.T) {
	f := func(raw float64) bool {
		w := math.Mod(math.Abs(raw), 2) - 1 // [-1, 1)
		r := TargetResistance(w, -1, 1, 1e4, 1e5)
		back := EffectiveWeight(r, -1, 1, 1e4, 1e5)
		return math.Abs(back-w) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMapWeightsQuantizesOntoGrid(t *testing.T) {
	cb := newTestCrossbar(t, 4, 4)
	p := cb.Params()
	rng := tensor.NewRNG(1)
	w := tensor.New(4, 4)
	rng.FillNormal(w, 0, 1)
	stats := cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	if stats.Pulses == 0 {
		t.Fatal("fresh mapping must program devices")
	}
	if stats.Clipped != 0 {
		t.Fatal("fresh mapping must not clip")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r := cb.Device(i, j).Resistance()
			lvl := p.NearestLevel(r)
			if math.Abs(p.LevelResistance(lvl)-r) > 1e-6 {
				t.Fatalf("device (%d,%d) resistance %g not on level grid", i, j, r)
			}
		}
	}
}

func TestEffectiveWeightsWithinQuantizationError(t *testing.T) {
	cb := newTestCrossbar(t, 6, 5)
	p := cb.Params()
	rng := tensor.NewRNG(2)
	w := tensor.New(6, 5)
	rng.FillNormal(w, 0, 0.5)
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	eff := mustEff(t, cb)

	wMin, wMax := w.MinMax()
	// Worst-case quantization error in weight units: one conductance
	// gap, which is largest at the low-resistance end.
	gGapMax := p.LevelConductance(0) - p.LevelConductance(1)
	errMax := gGapMax / (p.GmaxFresh() - p.GminFresh()) * (wMax - wMin)
	for i, v := range w.Data() {
		if math.Abs(eff.Data()[i]-v) > errMax {
			t.Fatalf("effective weight %d error %g exceeds worst-case quantization %g",
				i, math.Abs(eff.Data()[i]-v), errMax)
		}
	}
}

func TestVMMMatchesEffectiveWeights(t *testing.T) {
	cb := newTestCrossbar(t, 3, 2)
	p := cb.Params()
	w := tensor.FromSlice([]float64{0.1, -0.2, 0.3, 0.05, -0.4, 0.2}, 3, 2)
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	x := tensor.FromSlice([]float64{1, 2, 3}, 3)
	out := mustVMM(t, cb, x)
	eff := mustEff(t, cb)
	for j := 0; j < 2; j++ {
		want := 0.0
		for i := 0; i < 3; i++ {
			want += x.Data()[i] * eff.At(i, j)
		}
		if math.Abs(out.Data()[j]-want) > 1e-12 {
			t.Fatalf("VMM column %d = %g, want %g", j, out.Data()[j], want)
		}
	}
}

func TestMapWeightsClipsOnAgedDevices(t *testing.T) {
	cb := newTestCrossbar(t, 2, 2)
	p := cb.Params()
	// Age device (0,0) moderately: a few full-range cycles shave the
	// top levels off while keeping the window inside the fresh grid.
	d := cb.Device(0, 0)
	for k := 0; k < 3; k++ {
		d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
		d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
	}
	_, hi := cb.AgedBounds(0, 0)
	if hi >= p.RmaxFresh {
		t.Fatal("cycling must shrink the upper bound")
	}
	if hi <= p.RminFresh {
		t.Fatalf("test setup over-aged the device: upper bound %g below the grid", hi)
	}
	// Map a weight that wants the top of the resistance range onto the
	// aged device (weight wMin -> rHi).
	w := tensor.FromSlice([]float64{-1, 1, 0.5, 0.2}, 2, 2)
	stats := cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	if stats.Clipped == 0 {
		t.Fatal("mapping onto the aged device must clip")
	}
	if got := cb.Device(0, 0).Resistance(); got > hi+1e-6 {
		t.Fatalf("aged device programmed to %g beyond its bound %g", got, hi)
	}
}

func TestStepDeviceDirection(t *testing.T) {
	cb := newTestCrossbar(t, 3, 1)
	p := cb.Params()
	// Device (1,0) carries the mid weight and lands mid-grid, away from
	// the range endpoints where aging pins movement.
	w := tensor.FromSlice([]float64{-1, 0, 1}, 3, 1)
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	r0 := cb.Device(1, 0).Resistance()
	if s, applied := cb.StepDevice(1, 0, +1); s <= 0 || !applied { // weight up -> resistance down
		t.Fatal("mid-grid step must cost stress and apply")
	}
	r1 := cb.Device(1, 0).Resistance()
	if r1 >= r0 {
		t.Fatalf("positive step must lower resistance: %g -> %g", r0, r1)
	}
	cb.StepDevice(1, 0, -1)
	r2 := cb.Device(1, 0).Resistance()
	if r2 <= r1 {
		t.Fatalf("negative step must raise resistance: %g -> %g", r1, r2)
	}
	if s, applied := cb.StepDevice(1, 0, 0); s != 0 || applied {
		t.Fatal("zero step must be free")
	}
}

func TestStepDevicePinsAtGridEnds(t *testing.T) {
	cb := newTestCrossbar(t, 1, 1)
	p := cb.Params()
	w := tensor.FromSlice([]float64{1}, 1, 1) // maps near rLo already
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	for k := 0; k < p.Levels+5; k++ {
		cb.StepDevice(0, 0, +1)
	}
	if cb.Device(0, 0).Resistance() < p.RminFresh {
		t.Fatal("stepping past the grid must pin at RminFresh")
	}
}

func TestDriftStaysInWindow(t *testing.T) {
	cb := newTestCrossbar(t, 4, 4)
	p := cb.Params()
	rng := tensor.NewRNG(5)
	w := tensor.New(4, 4)
	rng.FillNormal(w, 0, 1)
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	cb.Drift(0.08, rng)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			lo, hi := cb.AgedBounds(i, j)
			r := cb.Device(i, j).Resistance()
			if r < lo-1e-9 || r > hi+1e-9 {
				t.Fatalf("drifted device (%d,%d) at %g outside [%g, %g]", i, j, r, lo, hi)
			}
		}
	}
}

func TestTracedIndicesOneOfNine(t *testing.T) {
	cb := newTestCrossbar(t, 9, 9)
	idx := cb.TracedIndices()
	if len(idx) != 9 {
		t.Fatalf("9x9 array traces %d devices, want 9 (1 of 9)", len(idx))
	}
	for _, ij := range idx {
		if ij[0]%3 != 1 || ij[1]%3 != 1 {
			t.Fatalf("traced device %v is not a 3x3 block center", ij)
		}
	}
	// Tiny arrays still trace something.
	tiny := newTestCrossbar(t, 1, 1)
	if len(tiny.TracedIndices()) != 1 {
		t.Fatal("1x1 array must trace its single device")
	}
}

func TestTracedBoundsSortedAndFresh(t *testing.T) {
	cb := newTestCrossbar(t, 9, 9)
	p := cb.Params()
	ubs := cb.TracedUpperBounds()
	for i, v := range ubs {
		if v != p.RmaxFresh {
			t.Fatalf("fresh traced upper bound %d = %g, want %g", i, v, p.RmaxFresh)
		}
	}
	lbs := cb.TracedLowerBounds()
	for i := 1; i < len(lbs); i++ {
		if lbs[i] < lbs[i-1] {
			t.Fatal("traced bounds must be sorted ascending")
		}
	}
}

func TestQuantizeWeightsDoesNotProgram(t *testing.T) {
	cb := newTestCrossbar(t, 4, 4)
	p := cb.Params()
	rng := tensor.NewRNG(6)
	w := tensor.New(4, 4)
	rng.FillNormal(w, 0, 1)
	q := cb.QuantizeWeights(w, p.RminFresh, p.RmaxFresh)
	if cb.TotalPulses() != 0 {
		t.Fatal("QuantizeWeights must not touch hardware")
	}
	if q.SameShape(w) == false {
		t.Fatal("quantized weights must keep the input shape")
	}
	// Quantization onto a narrower range loses more information.
	narrow := cb.QuantizeWeights(w, p.RminFresh, p.LevelResistance(4))
	errWide, errNarrow := 0.0, 0.0
	for i, v := range w.Data() {
		errWide += math.Abs(q.Data()[i] - v)
		errNarrow += math.Abs(narrow.Data()[i] - v)
	}
	if errNarrow <= errWide {
		t.Fatalf("narrow-range quantization error %g must exceed full-range %g", errNarrow, errWide)
	}
}

func TestUsableLevelStatsFresh(t *testing.T) {
	cb := newTestCrossbar(t, 3, 3)
	min, mean := cb.UsableLevelStats()
	if min != 32 || mean != 32 {
		t.Fatalf("fresh usable stats = %d/%g, want 32/32", min, mean)
	}
}

func TestReadBeforeMapReturnsErrNotMapped(t *testing.T) {
	cb := newTestCrossbar(t, 2, 2)
	if _, err := cb.EffectiveWeights(); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("EffectiveWeights before mapping: err = %v, want ErrNotMapped", err)
	}
	if _, err := cb.VMM(tensor.New(2)); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("VMM before mapping: err = %v, want ErrNotMapped", err)
	}
	if _, err := cb.VMMBatch(tensor.New(3, 2), 0); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("VMMBatch before mapping: err = %v, want ErrNotMapped", err)
	}
	if err := cb.ReadWeightsInto(tensor.New(2, 2)); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("ReadWeightsInto before mapping: err = %v, want ErrNotMapped", err)
	}
	if _, err := cb.EffectiveWeightsNaive(); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("EffectiveWeightsNaive before mapping: err = %v, want ErrNotMapped", err)
	}
}

func TestVMMSizeMismatchReturnsError(t *testing.T) {
	cb := newTestCrossbar(t, 3, 2)
	p := cb.Params()
	w := tensor.New(3, 2)
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	if _, err := cb.VMM(tensor.New(4)); err == nil {
		t.Fatal("VMM with wrong input size must return an error")
	}
	if _, err := cb.VMMBatch(tensor.New(5, 4), 0); err == nil {
		t.Fatal("VMMBatch with wrong input width must return an error")
	}
}
