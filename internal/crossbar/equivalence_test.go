package crossbar

import (
	"fmt"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/fault"
	"memlife/internal/tensor"
)

// The golden equivalence suite: the cached read path (EffectiveWeights,
// VMM, VMMBatch, ReadWeightsInto) must be BIT-identical to the naive
// per-device oracle (EffectiveWeightsNaive, VMMNaive) after every kind
// of mutation the simulation performs. Two identically constructed
// arrays are driven through the same seeded operation sequence; one is
// read through the cache, the other through the oracle, and every
// readback is compared with == (no tolerance). Because reads consume
// fault-injector draws (the per-readback burst decision), both arrays
// are read exactly once per comparison point so their RNG streams stay
// in lockstep.

// equivPair drives two identical crossbars through identical mutations.
type equivPair struct {
	cached *Crossbar // read via the cached path
	naive  *Crossbar // read via the *Naive oracle
	// Per-array drift RNGs with identical seeds, so both arrays see the
	// same drift while each consumes its own stream.
	rngC, rngN *tensor.RNG
}

func newEquivPair(t *testing.T, rows, cols int, faults bool, seed int64) *equivPair {
	t.Helper()
	build := func() *Crossbar {
		cb, err := New(rows, cols, device.Params32(), aging.DefaultModel(), 300)
		if err != nil {
			t.Fatal(err)
		}
		if faults {
			cfg := fault.Config{
				StuckRate:     0.03,
				TransientProb: 0.05,
				HazardScale:   40,
				ReadBurstProb: 0.25,
				Seed:          seed,
			}
			inj, err := fault.NewInjector(cfg, rows*cols, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := cb.SetFaultInjector(inj); err != nil {
				t.Fatal(err)
			}
		}
		return cb
	}
	p := &equivPair{
		cached: build(),
		naive:  build(),
		rngC:   tensor.NewRNG(seed + 77),
		rngN:   tensor.NewRNG(seed + 77),
	}
	return p
}

// check reads both arrays once through their respective paths and
// fails on any bit difference. x drives the VMM comparison.
func (p *equivPair) check(t *testing.T, step string, x *tensor.Tensor) {
	t.Helper()
	eff, err := p.cached.EffectiveWeights()
	if err != nil {
		t.Fatalf("%s: cached EffectiveWeights: %v", step, err)
	}
	effN, err := p.naive.EffectiveWeightsNaive()
	if err != nil {
		t.Fatalf("%s: naive EffectiveWeights: %v", step, err)
	}
	for i, v := range effN.Data() {
		if eff.Data()[i] != v {
			t.Fatalf("%s: effective weight %d differs: cached %v, naive %v", step, i, eff.Data()[i], v)
		}
	}
	out, err := p.cached.VMM(x)
	if err != nil {
		t.Fatalf("%s: cached VMM: %v", step, err)
	}
	outN, err := p.naive.VMMNaive(x)
	if err != nil {
		t.Fatalf("%s: naive VMM: %v", step, err)
	}
	for j, v := range outN.Data() {
		if out.Data()[j] != v {
			t.Fatalf("%s: VMM output %d differs: cached %v, naive %v", step, j, out.Data()[j], v)
		}
	}
}

// scenario selects the remapping range policy, mirroring the paper's
// three configurations: TT / ST+T remap onto the fresh range, ST+AT
// onto a narrowed (aging-aware style) range.
type equivScenario struct {
	name    string
	remapHi float64 // fraction of the fresh range width kept on remap
}

func TestEquivalenceCachedVsNaive(t *testing.T) {
	scenarios := []equivScenario{
		{name: "TT", remapHi: 1.0},
		{name: "ST+T", remapHi: 1.0},
		{name: "ST+AT", remapHi: 0.8},
	}
	for _, sc := range scenarios {
		for _, faults := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/faults=%v", sc.name, faults), func(t *testing.T) {
				const rows, cols = 9, 7
				seed := int64(101)
				p := newEquivPair(t, rows, cols, faults, seed)
				params := p.cached.Params()
				ops := tensor.NewRNG(seed)

				w := tensor.New(rows, cols)
				ops.FillNormal(w, 0, 0.5)
				if sc.name != "TT" {
					// Skewed-training style: shift the weight mass like the
					// ST scenarios do, so the mapped conductances sit low.
					for i, v := range w.Data() {
						w.Data()[i] = v*0.5 - 0.3
					}
				}
				rLo, rHi := params.RminFresh, params.RmaxFresh
				remapHi := rLo + sc.remapHi*(rHi-rLo)

				x := tensor.New(rows)
				ops.FillNormal(x, 0, 1)

				p.cached.MapWeights(w, rLo, rHi)
				p.naive.MapWeights(w, rLo, rHi)
				p.check(t, "after initial map", x)

				for step := 0; step < 30; step++ {
					label := fmt.Sprintf("step %d", step)
					switch op := ops.Intn(6); op {
					case 0: // tuning pulse burst: the patch path
						for k := 0; k < 12; k++ {
							i, j := ops.Intn(rows), ops.Intn(cols)
							dir := 1
							if ops.Float64() < 0.5 {
								dir = -1
							}
							p.cached.StepDevice(i, j, dir)
							p.naive.StepDevice(i, j, dir)
						}
						label += " (pulses)"
					case 1: // read-disturb drift: whole-cache invalidation
						p.cached.Drift(0.05, p.rngC)
						p.naive.Drift(0.05, p.rngN)
						label += " (drift)"
					case 2: // remap under the scenario's range policy
						p.cached.MapWeights(w, rLo, remapHi)
						p.naive.MapWeights(w, rLo, remapHi)
						label += " (remap)"
					case 3: // burn-in stress: moves every aged window
						p.cached.AddStress(3)
						p.naive.AddStress(3)
						label += " (stress)"
					case 4: // wear-out transitions: the stuck-cell patch path
						nc := p.cached.AdvanceFaults()
						nn := p.naive.AdvanceFaults()
						if nc != nn {
							t.Fatalf("%s: AdvanceFaults diverged: %d vs %d", label, nc, nn)
						}
						label += " (faults)"
					case 5: // fault-aware remap (plain remap when faults off)
						if faults {
							p.cached.MapWeightsFaultAware(w, rLo, remapHi)
							p.naive.MapWeightsFaultAware(w, rLo, remapHi)
							label += " (fault-aware remap)"
						} else {
							p.cached.MapWeights(w, rLo, rHi)
							p.naive.MapWeights(w, rLo, rHi)
							label += " (remap fresh)"
						}
					}
					p.check(t, label, x)
				}
			})
		}
	}
}

// TestEquivalenceVMMBatch pins the batch semantics: VMMBatch is ONE
// readback (at most one burst draw) for the whole batch, equal to a
// single naive readback multiplied through, for every worker count.
func TestEquivalenceVMMBatch(t *testing.T) {
	for _, faults := range []bool{false, true} {
		for _, workers := range []int{0, 1, 3, 16} {
			t.Run(fmt.Sprintf("faults=%v/workers=%d", faults, workers), func(t *testing.T) {
				const rows, cols, batch = 11, 6, 17
				p := newEquivPair(t, rows, cols, faults, 202)
				params := p.cached.Params()
				ops := tensor.NewRNG(5)

				w := tensor.New(rows, cols)
				ops.FillNormal(w, 0, 0.4)
				p.cached.MapWeights(w, params.RminFresh, params.RmaxFresh)
				p.naive.MapWeights(w, params.RminFresh, params.RmaxFresh)

				xb := tensor.New(batch, rows)
				ops.FillNormal(xb, 0, 1)

				for rep := 0; rep < 8; rep++ {
					// Interleave mutations so warm and cold caches are hit.
					if rep%2 == 1 {
						p.cached.Drift(0.03, p.rngC)
						p.naive.Drift(0.03, p.rngN)
					}
					out, err := p.cached.VMMBatch(xb, workers)
					if err != nil {
						t.Fatal(err)
					}
					effN, err := p.naive.EffectiveWeightsNaive() // one readback, like the batch
					if err != nil {
						t.Fatal(err)
					}
					want := tensor.MatMul(xb, effN)
					for i, v := range want.Data() {
						if out.Data()[i] != v {
							t.Fatalf("rep %d: batch output %d differs: %v vs %v", rep, i, out.Data()[i], v)
						}
					}
				}
			})
		}
	}
}

// TestEquivalenceReadWeightsInto pins the allocation-free readback used
// by MappedNetwork.Refresh against EffectiveWeights.
func TestEquivalenceReadWeightsInto(t *testing.T) {
	const rows, cols = 5, 8
	p := newEquivPair(t, rows, cols, false, 303)
	params := p.cached.Params()
	w := tensor.New(rows, cols)
	tensor.NewRNG(9).FillNormal(w, 0, 0.5)
	p.cached.MapWeights(w, params.RminFresh, params.RmaxFresh)
	p.naive.MapWeights(w, params.RminFresh, params.RmaxFresh)

	dst := tensor.New(rows, cols)
	if err := p.cached.ReadWeightsInto(dst); err != nil {
		t.Fatal(err)
	}
	effN, err := p.naive.EffectiveWeightsNaive()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range effN.Data() {
		if dst.Data()[i] != v {
			t.Fatalf("readback %d differs: %v vs %v", i, dst.Data()[i], v)
		}
	}
}

// TestDeviceEscapeHatchInvalidates pins the conservative contract of
// the public Device accessor: mutating a device through it must be
// visible on the next cached read.
func TestDeviceEscapeHatchInvalidates(t *testing.T) {
	cb := newTestCrossbar(t, 4, 4)
	p := cb.Params()
	w := tensor.New(4, 4)
	tensor.NewRNG(3).FillNormal(w, 0, 0.5)
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	before := mustEff(t, cb).Clone() // warm the cache

	d := cb.Device(1, 2)
	for k := 0; k < 3; k++ {
		d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
		d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
	}
	after := mustEff(t, cb)
	if after.At(1, 2) == before.At(1, 2) {
		t.Fatal("cached read must reflect device state mutated through the Device escape hatch")
	}
}
