package crossbar

import (
	"math"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/nn"
	"memlife/internal/tensor"
	"memlife/internal/train"
)

// trainedSmallNet returns a small trained MLP plus its datasets.
func trainedSmallNet(t *testing.T) (*nn.Network, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.SynthConfig{Classes: 4, TrainN: 160, TestN: 60, C: 3, H: 8, W: 8, Noise: 0.15, Seed: 31}
	trainDS, testDS := dataset.MustGenerate(cfg)
	net, err := nn.NewMLP("m", []int{trainDS.SampleSize(), 20, 4}, tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	_, err = train.Train(net, trainDS, testDS, train.Config{
		Epochs: 5, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, trainDS, testDS
}

func newMapped(t *testing.T, net *nn.Network) *MappedNetwork {
	t.Helper()
	mn, err := NewMappedNetwork(net, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	return mn
}

func TestMappedNetworkLayerStructure(t *testing.T) {
	net, _, _ := trainedSmallNet(t)
	mn := newMapped(t, net)
	if len(mn.Layers) != 2 {
		t.Fatalf("mapped layers = %d, want 2", len(mn.Layers))
	}
	for _, l := range mn.Layers {
		if l.Crossbar.Rows != l.Param.W.Dim(0) || l.Crossbar.Cols != l.Param.W.Dim(1) {
			t.Fatalf("crossbar %s dims %dx%d do not match weights %v",
				l.Name, l.Crossbar.Rows, l.Crossbar.Cols, l.Param.W.Shape())
		}
		// Targets are snapshots, not aliases.
		l.Param.W.Set(123, 0, 0)
		if l.Target.At(0, 0) == 123 {
			t.Fatal("targets must be cloned from trained weights")
		}
		l.Param.W.CopyFrom(l.Target)
	}
}

// TestHardwareAccuracyCloseToSoftware is the headline integration check
// of Section II-B/C: mapping + quantization must cost only a small
// accuracy drop on a fresh array.
func TestHardwareAccuracyCloseToSoftware(t *testing.T) {
	net, _, testDS := trainedSmallNet(t)
	softAcc := train.Evaluate(net, testDS, 32)

	mn := newMapped(t, net)
	mn.MapAllFresh()
	batches := testDS.Batches(testDS.Len(), nil)
	hwAcc := mustAcc(t, mn, batches[0].X, batches[0].Y)

	if hwAcc < softAcc-0.15 {
		t.Fatalf("fresh-hardware accuracy %.3f dropped too far below software %.3f", hwAcc, softAcc)
	}
}

func TestRefreshLoadsEffectiveWeights(t *testing.T) {
	net, _, _ := trainedSmallNet(t)
	mn := newMapped(t, net)
	mn.MapAllFresh()
	mustRefresh(t, mn)
	for _, l := range mn.Layers {
		diff := 0.0
		eff := mustEff(t, l.Crossbar)
		for i, v := range l.Param.W.Data() {
			diff += math.Abs(v - eff.Data()[i])
		}
		if diff != 0 {
			t.Fatalf("layer %s params differ from effective weights after Refresh", l.Name)
		}
	}
}

func TestRestoreSoftwareWeights(t *testing.T) {
	net, _, _ := trainedSmallNet(t)
	mn := newMapped(t, net)
	orig := mn.Layers[0].Target.Clone()
	mn.MapAllFresh()
	mustRefresh(t, mn)
	mn.RestoreSoftwareWeights()
	for i, v := range mn.Layers[0].Param.W.Data() {
		if v != orig.Data()[i] {
			t.Fatal("RestoreSoftwareWeights must bring back trained values")
		}
	}
}

func TestSetTargetsPicksUpRetraining(t *testing.T) {
	net, _, _ := trainedSmallNet(t)
	mn := newMapped(t, net)
	mn.Layers[0].Param.W.Fill(0.42)
	mn.SetTargets()
	if mn.Layers[0].Target.At(0, 0) != 0.42 {
		t.Fatal("SetTargets must snapshot current network weights")
	}
}

func TestMapAllFreshAccounting(t *testing.T) {
	net, _, _ := trainedSmallNet(t)
	mn := newMapped(t, net)
	stats := mn.MapAllFresh()
	if stats.Pulses <= 0 || stats.Clipped != 0 {
		t.Fatalf("fresh map stats = %+v, want pulses > 0 and no clipping", stats)
	}
	if mn.TotalPulses() != int64(stats.Pulses) {
		t.Fatalf("pulse accounting mismatch: %d vs %d", mn.TotalPulses(), stats.Pulses)
	}
	if mn.TotalStress() <= 0 {
		t.Fatal("mapping must accumulate stress")
	}
}

func TestMeanUpperBoundByKind(t *testing.T) {
	rng := tensor.NewRNG(7)
	net, err := nn.NewLeNet5(nn.LeNetConfig{InC: 3, H: 16, W: 16, Classes: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mn := newMapped(t, net)
	conv, fc := mn.MeanUpperBoundByKind()
	p := device.Params32()
	if conv != p.RmaxFresh || fc != p.RmaxFresh {
		t.Fatalf("fresh bounds by kind = %g/%g, want both %g", conv, fc, p.RmaxFresh)
	}
	// Age only the first conv crossbar and check the conv average drops.
	cb := mn.Layers[0].Crossbar
	for k := 0; k < 50; k++ {
		cb.Device(0, 0).Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
		cb.Device(0, 0).Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
	}
	conv2, fc2 := mn.MeanUpperBoundByKind()
	if conv2 >= conv {
		t.Fatal("conv average upper bound must drop after conv-layer aging")
	}
	if fc2 != fc {
		t.Fatal("fc average must be untouched by conv-layer aging")
	}
}

func TestMappedNetworkDrift(t *testing.T) {
	net, _, _ := trainedSmallNet(t)
	mn := newMapped(t, net)
	mn.MapAllFresh()
	before := mustEff(t, mn.Layers[0].Crossbar).Clone()
	mn.Drift(0.08, tensor.NewRNG(9))
	after := mustEff(t, mn.Layers[0].Crossbar)
	same := true
	for i, v := range before.Data() {
		if after.Data()[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("drift must perturb effective weights")
	}
	if mn.TotalPulses() != int64(0)+mn.TotalPulses() {
		t.Fatal("sanity")
	}
}
