package crossbar

import (
	"testing"

	"memlife/internal/telemetry"
	"memlife/internal/tensor"
)

// withRegistry installs a fresh global registry for the test and
// removes it afterwards.
func withRegistry(t *testing.T) *telemetry.Registry {
	t.Helper()
	r := telemetry.NewRegistry()
	telemetry.SetGlobal(r)
	t.Cleanup(func() { telemetry.SetGlobal(nil) })
	return r
}

// testWeights returns a deterministic [rows, cols] weight matrix.
func testWeights(rows, cols int, seed int64) *tensor.Tensor {
	w := tensor.New(rows, cols)
	rng := tensor.NewRNG(seed)
	for i := range w.Data() {
		w.Data()[i] = rng.Normal(0, 0.5)
	}
	return w
}

func TestTelemetryCacheAndInvalidationCounters(t *testing.T) {
	reg := withRegistry(t)
	cb := newTestCrossbar(t, 6, 5)
	w := testWeights(6, 5, 3)
	cb.MapWeights(w, cb.params.RminFresh, cb.params.RmaxFresh)

	x := tensor.New(6)
	for i := 0; i < 6; i++ {
		x.Data()[i] = float64(i)
	}
	for k := 0; k < 3; k++ {
		if _, err := cb.VMM(x); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	count := func(name string) int64 {
		t.Helper()
		v, ok := snap.Counter(name)
		if !ok {
			t.Fatalf("counter %q not in snapshot", name)
		}
		return v
	}
	if got := count("crossbar/cache_misses"); got != 1 {
		t.Fatalf("cache_misses = %d, want 1 (first read builds)", got)
	}
	if got := count("crossbar/cache_hits"); got != 2 {
		t.Fatalf("cache_hits = %d, want 2", got)
	}
	if got := count("crossbar/invalidations/map"); got != 1 {
		t.Fatalf("invalidations/map = %d, want 1", got)
	}
	if got := count("device/pulses_total"); got <= 0 {
		t.Fatalf("pulses_total = %d, want > 0 (mapping programs devices)", got)
	}

	// Each invalidation cause bumps its own counter.
	rng := tensor.NewRNG(1)
	cb.Drift(0.01, rng)
	cb.AddStress(0.5)
	cb.RandomizeAging(0.1, rng)
	if err := cb.SetTempK(310); err != nil {
		t.Fatal(err)
	}
	cb.Device(0, 0)
	snap = reg.Snapshot()
	for _, name := range []string{
		"crossbar/invalidations/drift",
		"crossbar/invalidations/stress",
		"crossbar/invalidations/aging",
		"crossbar/invalidations/tempk",
		"crossbar/invalidations/device_escape",
	} {
		if v, ok := snap.Counter(name); !ok || v != 1 {
			t.Fatalf("%s = %d (present %v), want 1", name, v, ok)
		}
	}
}

func TestTelemetryUsableLevelGauges(t *testing.T) {
	reg := withRegistry(t)
	cb := newTestCrossbar(t, 4, 4)
	w := testWeights(4, 4, 7)
	cb.MapWeights(w, cb.params.RminFresh, cb.params.RmaxFresh)

	var mean, min float64
	for _, g := range reg.Snapshot().Gauges {
		switch g.Name {
		case "device/usable_levels_mean":
			mean = g.Value
		case "device/usable_levels_min":
			min = g.Value
		}
	}
	// The gauges capture the windows the mapping clamped against, i.e.
	// the state at mapping entry; the programming pulses themselves then
	// add stress, so a post-map recount can only be equal or lower.
	postMin, postMean := cb.UsableLevelStats()
	if mean <= 0 || min <= 0 || min > mean {
		t.Fatalf("usable gauges implausible: mean %g, min %g", mean, min)
	}
	if postMean > mean || float64(postMin) > min {
		t.Fatalf("post-map usable levels (mean %g, min %d) exceed at-map gauges (mean %g, min %g)",
			postMean, postMin, mean, min)
	}
}

// TestTelemetryDoesNotPerturbResults drives two identical crossbars —
// one with telemetry installed, one without — through map, drift, tune
// pulses and reads, and requires bit-identical outputs: instruments
// observe the simulation, never steer it.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	drive := func() []float64 {
		cb := newTestCrossbar(t, 6, 5)
		w := testWeights(6, 5, 11)
		cb.MapWeights(w, cb.params.RminFresh, cb.params.RmaxFresh)
		rng := tensor.NewRNG(42)
		cb.Drift(0.02, rng)
		cb.StepDevice(1, 2, +1)
		cb.StepDevice(3, 4, -1)
		x := tensor.New(6)
		for i := range x.Data() {
			x.Data()[i] = float64(i) - 2.5
		}
		out, err := cb.VMM(x)
		if err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), out.Data()...)
	}

	telemetry.SetGlobal(nil)
	plain := drive()
	telemetry.SetGlobal(telemetry.NewRegistry())
	defer telemetry.SetGlobal(nil)
	instrumented := drive()

	if len(plain) != len(instrumented) {
		t.Fatalf("output sizes differ: %d vs %d", len(plain), len(instrumented))
	}
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("output %d differs with telemetry on: %g vs %g", i, plain[i], instrumented[i])
		}
	}
}
