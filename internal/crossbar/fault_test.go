package crossbar

import (
	"math"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/fault"
	"memlife/internal/tensor"
)

func newFaultArray(t *testing.T, rows, cols int, cfg fault.Config) *Crossbar {
	t.Helper()
	cb, err := New(rows, cols, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(cfg, rows*cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.SetFaultInjector(inj); err != nil {
		t.Fatal(err)
	}
	return cb
}

func TestSetFaultInjectorSizeMismatch(t *testing.T) {
	cb, err := New(4, 4, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(fault.Config{StuckRate: 0.1}, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.SetFaultInjector(inj); err == nil {
		t.Fatal("injector of the wrong size must be rejected")
	}
}

func TestInitialFaultsApplied(t *testing.T) {
	cfg := fault.Config{StuckRate: 0.3, LRSFrac: 1.0, Seed: 3}
	cb := newFaultArray(t, 20, 20, cfg)
	lrs, hrs := cb.StuckCounts()
	if lrs == 0 {
		t.Fatal("a 30% stuck rate must produce stuck devices")
	}
	if hrs != 0 {
		t.Fatalf("LRSFrac=1 must produce no HRS faults, got %d", hrs)
	}
	p := cb.Params()
	seen := 0
	for i := 0; i < cb.Rows; i++ {
		for j := 0; j < cb.Cols; j++ {
			if !cb.IsStuck(i, j) {
				continue
			}
			seen++
			if r := cb.Device(i, j).Resistance(); r != p.RminFresh {
				t.Fatalf("stuck-at-LRS device (%d,%d) must pin at RminFresh, got %g", i, j, r)
			}
		}
	}
	if seen != lrs {
		t.Fatalf("IsStuck count %d disagrees with StuckCounts %d", seen, lrs)
	}
	// FaultMap agrees with the per-device view.
	m := cb.FaultMap()
	for idx, k := range m {
		if (k != device.FaultNone) != cb.IsStuck(idx/cb.Cols, idx%cb.Cols) {
			t.Fatalf("FaultMap entry %d disagrees with IsStuck", idx)
		}
	}
}

// TestStuckDeviceIgnoresProgramming locks the permanence of hard
// faults: pulses and drift leave a stuck device's resistance pinned,
// while failed pulses still accumulate stress (no free writes).
func TestStuckDeviceIgnoresProgramming(t *testing.T) {
	cfg := fault.Config{StuckRate: 0.5, LRSFrac: 1.0, Seed: 1}
	cb := newFaultArray(t, 10, 10, cfg)
	var si, sj int
	found := false
	for i := 0; i < cb.Rows && !found; i++ {
		for j := 0; j < cb.Cols && !found; j++ {
			if cb.IsStuck(i, j) {
				si, sj = i, j
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no stuck device at 50% rate")
	}
	d := cb.Device(si, sj)
	r0 := d.Resistance()
	stress0 := d.Stress()
	if s, applied := cb.StepDevice(si, sj, +1); applied || s <= 0 {
		t.Fatalf("pulsing a stuck device must fail but still stress it (applied=%v stress=%g)", applied, s)
	}
	if d.Resistance() != r0 {
		t.Fatal("stuck device moved under a pulse")
	}
	if d.Stress() <= stress0 {
		t.Fatal("failed pulse must accumulate stress")
	}
	cb.Drift(0.2, tensor.NewRNG(9))
	if d.Resistance() != r0 {
		t.Fatal("stuck device moved under drift")
	}
}

// TestFaultAwareMappingCompensates: with stuck devices present, the
// fault-aware mapping must realize the column currents (what a VMM
// output actually sees) with lower error than the plain mapping, waste
// no writes on stuck cells, and degrade to identical behavior on a
// clean array. Elementwise RMSE is allowed to be slightly worse — the
// compensation deliberately perturbs healthy weights to fix the column
// sums.
func TestFaultAwareMappingCompensates(t *testing.T) {
	rng := tensor.NewRNG(5)
	w := tensor.New(24, 16)
	for i := range w.Data() {
		w.Data()[i] = rng.Normal(0, 0.3)
	}
	pts, err := FaultCampaign(w, device.Params32(), aging.DefaultModel(), 300,
		fault.Config{LRSFrac: 0.5, Seed: 2}, []float64{0, 0.05, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("campaign points = %d, want 3", len(pts))
	}
	clean := pts[0]
	if clean.StuckLRS+clean.StuckHRS != 0 {
		t.Fatal("rate 0 must have no stuck devices")
	}
	if math.Abs(clean.PlainRMSE-clean.AwareRMSE) > 1e-12 ||
		math.Abs(clean.PlainColErr-clean.AwareColErr) > 1e-12 {
		t.Fatalf("on a clean array both mappings must agree: plain %g/%g vs aware %g/%g",
			clean.PlainRMSE, clean.PlainColErr, clean.AwareRMSE, clean.AwareColErr)
	}
	for _, pt := range pts[1:] {
		if pt.StuckLRS+pt.StuckHRS == 0 {
			t.Fatalf("rate %g produced no stuck devices", pt.StuckRate)
		}
		if pt.AwareColErr >= pt.PlainColErr {
			t.Fatalf("rate %g: fault-aware column error %g must beat plain %g",
				pt.StuckRate, pt.AwareColErr, pt.PlainColErr)
		}
		if pt.PlainStuckWrites == 0 {
			t.Fatalf("rate %g: plain mapping must have wasted writes on stuck cells", pt.StuckRate)
		}
	}
	// Uncompensated column error grows with defect density.
	if pts[2].PlainColErr <= clean.PlainColErr {
		t.Fatalf("plain column error must grow with faults: %g vs clean %g",
			pts[2].PlainColErr, clean.PlainColErr)
	}
}

func TestTracedUpperBoundsHealthyExcludesStuck(t *testing.T) {
	cfg := fault.Config{StuckRate: 0.4, LRSFrac: 1.0, Seed: 6}
	cb := newFaultArray(t, 12, 12, cfg)
	all := cb.TracedUpperBounds()
	healthy := cb.TracedUpperBoundsHealthy()
	if len(healthy) >= len(all) {
		t.Fatalf("healthy bounds (%d) must be fewer than all traced bounds (%d)", len(healthy), len(all))
	}
	if len(healthy) == 0 {
		t.Fatal("some traced devices must remain healthy at 40%")
	}
	for i := 1; i < len(healthy); i++ {
		if healthy[i] < healthy[i-1] {
			t.Fatal("healthy bounds must be sorted")
		}
	}
}

// TestAdvanceFaultsWearOut drives the hazard end-to-end: stressing the
// array pushes devices over their capacity, AdvanceFaults converts them
// to permanent faults, and the conversion is monotone.
func TestAdvanceFaultsWearOut(t *testing.T) {
	cfg := fault.Config{HazardScale: 3, HazardSpread: 0.3, Seed: 4}
	cb := newFaultArray(t, 10, 10, cfg)
	if n := cb.AdvanceFaults(); n != 0 {
		t.Fatalf("fresh array must have no wear-out faults, got %d", n)
	}
	cb.AddStress(2.0)
	first := cb.AdvanceFaults()
	cb.AddStress(6.0)
	second := cb.AdvanceFaults()
	if first+second == 0 {
		t.Fatal("heavy stress must wear out devices")
	}
	lrs, hrs := cb.StuckCounts()
	if lrs+hrs != first+second {
		t.Fatalf("stuck census %d disagrees with AdvanceFaults total %d", lrs+hrs, first+second)
	}
	if n := cb.AdvanceFaults(); n != 0 {
		t.Fatalf("without new stress no further devices may fail, got %d", n)
	}
}

func TestSetTempKRejectsNonPositive(t *testing.T) {
	cb, err := New(3, 3, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.SetTempK(0); err == nil {
		t.Fatal("zero temperature must be rejected")
	}
	if err := cb.SetTempK(-10); err == nil {
		t.Fatal("negative temperature must be rejected")
	}
	if err := cb.SetTempK(350); err != nil {
		t.Fatalf("valid temperature rejected: %v", err)
	}
	if cb.TempK() != 350 {
		t.Fatalf("temperature not applied: %g", cb.TempK())
	}
}
