package crossbar

import (
	"math"
	"testing"
	"testing/quick"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/tensor"
)

// Property: the crossbar's VMM is linear in its input — the defining
// property of the analog dot-product engine (Fig. 1): currents sum.
func TestVMMLinearity(t *testing.T) {
	cb, err := New(6, 4, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(11)
	w := tensor.New(6, 4)
	rng.FillNormal(w, 0, 0.5)
	p := cb.Params()
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)

	f := func(seed int64, rawA, rawB float64) bool {
		r := tensor.NewRNG(seed)
		a := math.Mod(rawA, 3)
		b := math.Mod(rawB, 3)
		x, y := tensor.New(6), tensor.New(6)
		r.FillNormal(x, 0, 1)
		r.FillNormal(y, 0, 1)

		// a*x + b*y through the crossbar...
		mix := tensor.New(6)
		mix.Axpy(a, x)
		mix.Axpy(b, y)
		got := mustVMM(t, cb, mix)

		// ...must equal a*VMM(x) + b*VMM(y).
		want := tensor.New(4)
		want.Axpy(a, mustVMM(t, cb, x))
		want.Axpy(b, mustVMM(t, cb, y))
		for i := range got.Data() {
			if math.Abs(got.Data()[i]-want.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantizing twice with the same range is idempotent.
func TestQuantizeWeightsIdempotent(t *testing.T) {
	cb, err := New(8, 8, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	p := cb.Params()
	rng := tensor.NewRNG(13)
	w := tensor.New(8, 8)
	rng.FillNormal(w, 0, 1)
	q1 := cb.QuantizeWeights(w, p.RminFresh, p.RmaxFresh)
	q2 := cb.QuantizeWeights(q1, p.RminFresh, p.RmaxFresh)
	for i := range q1.Data() {
		if math.Abs(q1.Data()[i]-q2.Data()[i]) > 1e-9 {
			t.Fatalf("quantization not idempotent at %d: %g vs %g", i, q1.Data()[i], q2.Data()[i])
		}
	}
}

// Property: tuning pulses move the effective weight monotonically in
// the commanded direction until pinned.
func TestStepDeviceMonotone(t *testing.T) {
	cb, err := New(3, 1, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	p := cb.Params()
	w := tensor.FromSlice([]float64{-1, 0, 1}, 3, 1)
	cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	prev := cb.Device(1, 0).Conductance()
	for k := 0; k < 10; k++ {
		cb.StepDevice(1, 0, +1)
		g := cb.Device(1, 0).Conductance()
		if g < prev-1e-15 {
			t.Fatalf("positive pulses must not decrease conductance: %g -> %g", prev, g)
		}
		prev = g
	}
	for k := 0; k < 10; k++ {
		cb.StepDevice(1, 0, -1)
		g := cb.Device(1, 0).Conductance()
		if g > prev+1e-15 {
			t.Fatalf("negative pulses must not increase conductance: %g -> %g", prev, g)
		}
		prev = g
	}
}

// Failure injection: a crossbar whose devices are all worn out must
// still map (pinned) and read back finite effective weights.
func TestMapOnDeadArray(t *testing.T) {
	cb, err := New(4, 4, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	p := cb.Params()
	// Exhaust every device.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			d := cb.Device(i, j)
			for k := 0; k < 200; k++ {
				lo, hi := cb.AgedBounds(i, j)
				d.Program(p.RminFresh, lo, hi)
				lo, hi = cb.AgedBounds(i, j)
				d.Program(p.RmaxFresh, lo, hi)
			}
		}
	}
	minLvl, _ := cb.UsableLevelStats()
	if minLvl > 1 {
		t.Skipf("array not sufficiently dead (min usable levels %d)", minLvl)
	}
	rng := tensor.NewRNG(17)
	w := tensor.New(4, 4)
	rng.FillNormal(w, 0, 1)
	stats := cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
	if stats.Clipped == 0 {
		t.Fatal("mapping a dead array must clip")
	}
	eff := mustEff(t, cb)
	for _, v := range eff.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("effective weights must stay finite on a dead array")
		}
	}
}

// Property: trace stride 1 traces every device.
func TestTraceStrideOne(t *testing.T) {
	cb, err := New(5, 7, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetTraceStride(1)
	if got := len(cb.TracedIndices()); got != 35 {
		t.Fatalf("stride-1 tracing covers %d devices, want 35", got)
	}
	cb.SetTraceStride(5)
	for _, ij := range cb.TracedIndices() {
		if ij[0]%5 != 2 || ij[1]%5 != 2 {
			t.Fatalf("stride-5 traced device %v is not a block center", ij)
		}
	}
}

func TestSetTraceStrideInvalidPanics(t *testing.T) {
	cb, err := New(2, 2, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for stride 0")
		}
	}()
	cb.SetTraceStride(0)
}

func TestRandomizeAgingSpreadsFactors(t *testing.T) {
	cb, err := New(10, 10, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	cb.RandomizeAging(0.4, tensor.NewRNG(3))
	distinct := map[float64]bool{}
	for i := 0; i < 10; i++ {
		f := cb.Device(i, i).AgingFactor()
		if f <= 0 {
			t.Fatal("aging factors must be positive")
		}
		distinct[f] = true
	}
	if len(distinct) < 5 {
		t.Fatal("variability must spread aging factors")
	}
}
