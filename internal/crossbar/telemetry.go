package crossbar

import (
	"memlife/internal/device"
	"memlife/internal/telemetry"
)

// crossbarTel holds the crossbar's telemetry handles, resolved once at
// construction from the global registry. With telemetry disabled every
// handle is nil and each instrumented site costs one branch — the
// nil-sink fast path benchmarked by the telemetry kernel of
// internal/bench. All handles are process-wide instruments: multiple
// crossbars (and campaign workers) aggregate into the same counters.
//
// Naming (see DESIGN.md "Telemetry"): device/* aggregates per-device
// events observed by the crossbar (the device layer itself stays
// handle-free — with millions of device instances, per-object handles
// would dominate memory); crossbar/* covers the cached read path.
// Instruments recording wall-clock time end in _ns and are excluded
// from determinism comparisons.
type crossbarTel struct {
	// Cached read path.
	cacheHits   *telemetry.Counter // reads served by a valid cache
	cacheMisses *telemetry.Counter // reads that (re)built the cache

	// Cache invalidations by cause.
	invalMap    *telemetry.Counter
	invalDrift  *telemetry.Counter
	invalStress *telemetry.Counter
	invalAging  *telemetry.Counter
	invalTemp   *telemetry.Counter
	invalFaults *telemetry.Counter
	invalDevice *telemetry.Counter

	// Read kernel latencies (wall clock).
	vmmNs      *telemetry.Histogram
	vmmBatchNs *telemetry.Histogram

	// Device wear, aggregated over the devices this crossbar drives.
	pulses *telemetry.Counter // programming pulses applied (incl. failed)
	stress *telemetry.Gauge   // accumulated normalized stress (monotone)

	// Remaining range at the most recent (re)mapping: usable fresh-grid
	// levels inside the aged windows the mapping clamped against
	// (observed at mapping entry, before its own pulses added stress),
	// mean and min over the programmed devices.
	usableMean *telemetry.Gauge
	usableMin  *telemetry.Gauge
}

// newCrossbarTel resolves the handle set from the global registry
// (all-nil when telemetry is disabled).
func newCrossbarTel() crossbarTel {
	r := telemetry.Global()
	if r == nil {
		return crossbarTel{}
	}
	return crossbarTel{
		cacheHits:   r.Counter("crossbar/cache_hits"),
		cacheMisses: r.Counter("crossbar/cache_misses"),
		invalMap:    r.Counter("crossbar/invalidations/map"),
		invalDrift:  r.Counter("crossbar/invalidations/drift"),
		invalStress: r.Counter("crossbar/invalidations/stress"),
		invalAging:  r.Counter("crossbar/invalidations/aging"),
		invalTemp:   r.Counter("crossbar/invalidations/tempk"),
		invalFaults: r.Counter("crossbar/invalidations/faults"),
		invalDevice: r.Counter("crossbar/invalidations/device_escape"),
		vmmNs:       r.Histogram("crossbar/vmm_ns", telemetry.NsBounds()),
		vmmBatchNs:  r.Histogram("crossbar/vmmbatch_ns", telemetry.NsBounds()),
		pulses:      r.Counter("device/pulses_total"),
		stress:      r.Gauge("device/stress_total"),
		usableMean:  r.Gauge("device/usable_levels_mean"),
		usableMin:   r.Gauge("device/usable_levels_min"),
	}
}

// usableAccum accumulates usable-level statistics during a mapping loop
// (the loop already computes every device's aged bounds, so observing
// costs one UsableLevels call and two integer ops per device). Inactive
// (track=false) when telemetry is disabled — observe is then a no-op.
type usableAccum struct {
	track bool
	total int64
	min   int
	n     int64
}

func (u *usableAccum) observe(p device.Params, lo, hi float64) {
	if !u.track {
		return
	}
	n := p.UsableLevels(lo, hi)
	if u.n == 0 || n < u.min {
		u.min = n
	}
	u.total += int64(n)
	u.n++
}

// recordMapTel publishes the cost and remaining-range statistics of one
// (re)mapping pass. Stuck devices skipped by the fault-aware mapping
// are not observed by usable, so the gauges describe the programmable
// population.
func (c *Crossbar) recordMapTel(stats MapStats, usable usableAccum) {
	c.tel.pulses.Add(int64(stats.Pulses))
	c.tel.stress.Add(stats.Stress)
	if usable.track && usable.n > 0 {
		c.tel.usableMean.Set(float64(usable.total) / float64(usable.n))
		c.tel.usableMin.Set(float64(usable.min))
	}
}
