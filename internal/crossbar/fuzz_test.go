package crossbar

import (
	"math"
	"testing"

	"memlife/internal/tensor"
)

// FuzzTargetEffectiveRoundTrip checks the eq. (4) pair: for any valid
// mapping ranges, EffectiveWeight(TargetResistance(w)) must return w
// (up to floating-point error), and both directions must stay finite.
// The seeded corpus covers the fresh range, narrow aged ranges, and
// degenerate weight windows.
func FuzzTargetEffectiveRoundTrip(f *testing.F) {
	f.Add(0.3, -1.0, 1.0, 1e3, 1e4)
	f.Add(-0.5, -0.5, 0.5, 500.0, 20_000.0)
	f.Add(0.0, 0.0, 0.0, 1e3, 1e4) // degenerate weight window
	f.Add(1.0, 1.0, 1.0001, 1e3, 1e4)
	f.Add(-3.0, -1.0, 1.0, 900.0, 1_000.0) // w outside the window, narrow range
	f.Fuzz(func(t *testing.T, w, wMin, wMax, rLo, rHi float64) {
		// Constrain to the domain the simulation guarantees: positive,
		// ordered resistance ranges and finite weight windows.
		if !(rLo > 0) || !(rHi > rLo) || rHi > 1e12 {
			t.Skip()
		}
		for _, v := range []float64{w, wMin, wMax} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		r := TargetResistance(w, wMin, wMax, rLo, rHi)
		if math.IsNaN(r) || r <= 0 {
			t.Fatalf("TargetResistance(%g, [%g,%g], [%g,%g]) = %g, want positive finite", w, wMin, wMax, rLo, rHi, r)
		}
		// The clamping contract: the target never leaves the selected
		// range (allow 1 ulp of slack from the conductance inversion).
		if r < rLo*(1-1e-12) || r > rHi*(1+1e-12) {
			t.Fatalf("TargetResistance(%g, [%g,%g], [%g,%g]) = %g escapes [rLo, rHi]", w, wMin, wMax, rLo, rHi, r)
		}
		got := EffectiveWeight(r, wMin, wMax, rLo, rHi)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("EffectiveWeight round trip gave %g", got)
		}
		gMin, gMax := 1/rHi, 1/rLo
		if wMax <= wMin || gMax <= gMin {
			// Degenerate window (either axis): reads back wMin by contract.
			if got != wMin {
				t.Fatalf("degenerate window must read back wMin=%g, got %g", wMin, got)
			}
			return
		}
		// Out-of-window weights clamp to the nearest representable edge;
		// in-window weights must round-trip up to float error. The error
		// budget scales with the conditioning of the conductance map: a
		// relative rounding error in g is amplified by gMax/(gMax-gMin)
		// when converted back to weight units (nearly-degenerate
		// resistance ranges legitimately lose all precision).
		want := w
		if want < wMin {
			want = wMin
		} else if want > wMax {
			want = wMax
		}
		tol := 1e-9*(1+math.Abs(want)) + 1e-12*gMax/(gMax-gMin)*(wMax-wMin)
		if math.Abs(got-want) > tol {
			t.Fatalf("round trip drifted: w=%g -> r=%g -> %g (want %g, err %g > tol %g)", w, r, got, want, math.Abs(got-want), tol)
		}
	})
}

// FuzzCacheInvalidation drives a cached and a naive array through a
// fuzz-chosen operation sequence and requires bit-identical readbacks
// after every operation — the fuzz twin of TestEquivalenceCachedVsNaive,
// free to discover operation interleavings the table misses.
func FuzzCacheInvalidation(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(42), []byte{2, 0, 0, 1, 2, 4, 4, 0})
	f.Add(int64(7), []byte{5, 5, 1, 3, 0, 2})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		const rows, cols = 6, 5
		p := newEquivPair(t, rows, cols, true, seed)
		params := p.cached.Params()
		ops := tensor.NewRNG(seed)

		w := tensor.New(rows, cols)
		ops.FillNormal(w, 0, 0.5)
		x := tensor.New(rows)
		ops.FillNormal(x, 0, 1)
		rLo, rHi := params.RminFresh, params.RmaxFresh

		p.cached.MapWeights(w, rLo, rHi)
		p.naive.MapWeights(w, rLo, rHi)

		for step, op := range script {
			switch op % 6 {
			case 0:
				i, j := ops.Intn(rows), ops.Intn(cols)
				dir := 1
				if op&0x80 != 0 {
					dir = -1
				}
				p.cached.StepDevice(i, j, dir)
				p.naive.StepDevice(i, j, dir)
			case 1:
				p.cached.Drift(0.04, p.rngC)
				p.naive.Drift(0.04, p.rngN)
			case 2:
				p.cached.MapWeights(w, rLo, rHi)
				p.naive.MapWeights(w, rLo, rHi)
			case 3:
				p.cached.AddStress(2)
				p.naive.AddStress(2)
			case 4:
				p.cached.AdvanceFaults()
				p.naive.AdvanceFaults()
			case 5:
				p.cached.MapWeightsFaultAware(w, rLo, rHi)
				p.naive.MapWeightsFaultAware(w, rLo, rHi)
			}
			eff, err := p.cached.EffectiveWeights()
			if err != nil {
				t.Fatalf("step %d: cached read: %v", step, err)
			}
			effN, err := p.naive.EffectiveWeightsNaive()
			if err != nil {
				t.Fatalf("step %d: naive read: %v", step, err)
			}
			for i, v := range effN.Data() {
				if eff.Data()[i] != v {
					t.Fatalf("step %d (op %d): cell %d differs: cached %v, naive %v", step, op%6, i, eff.Data()[i], v)
				}
			}
			out, err := p.cached.VMM(x)
			if err != nil {
				t.Fatalf("step %d: cached VMM: %v", step, err)
			}
			outN, err := p.naive.VMMNaive(x)
			if err != nil {
				t.Fatalf("step %d: naive VMM: %v", step, err)
			}
			for j, v := range outN.Data() {
				if out.Data()[j] != v {
					t.Fatalf("step %d: VMM output %d differs: %v vs %v", step, j, out.Data()[j], v)
				}
			}
		}
	})
}
