// Package crossbar simulates memristor crossbar arrays implementing the
// vector-matrix multiplications of a neural network (Fig. 1 of the
// paper), including weight-to-conductance mapping (eq. (4)),
// quantization onto the level grid, per-device aging state, and the
// 1-of-9 representative tracing of Section IV-B.
package crossbar

import (
	"fmt"
	"math"
	"sort"
	"time"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/fault"
	"memlife/internal/tensor"
)

// Crossbar is one rows x cols array of memristors implementing a weight
// matrix W[rows][cols]: g_ij carries the weight from input i to output
// j, and a column sums its devices' currents (I_j = sum_i V_i * g_ij).
type Crossbar struct {
	Rows, Cols int

	params device.Params
	model  aging.Model
	tempK  float64

	devices []*device.Device

	// inj, when non-nil, injects device faults: it decides transient
	// programming failures on the pulse path and read-noise bursts on
	// the readback path, and supplies the wear-out hazard consulted by
	// AdvanceFaults. See internal/fault.
	inj *fault.Injector

	// traceStride is the spacing of the representative traced devices
	// (Section IV-B traces the center of every traceStride x
	// traceStride block; the paper's value is 3, i.e. 1 of 9).
	traceStride int

	// Mapping state of the most recent MapWeights call (eq. (4)).
	wMin, wMax float64
	rLo, rHi   float64
	mapped     bool

	// Cached read path (see cache.go): the materialized effective
	// weight matrix, its transpose (row j = array column j, streamed by
	// VMM), and whether they are current.
	eff, effT *tensor.Tensor
	effValid  bool

	// tel is the telemetry handle set (see telemetry.go); all-nil when
	// telemetry is disabled, making every instrumented site a no-op.
	tel crossbarTel

	// grid is the shared device-technology lookup table (level grid and
	// derived constants) the mapping/quantization hot paths read from.
	grid *device.Grid

	// devModel is the shared pulse-response model of the technology
	// (device.Model); the default is the linear model.
	devModel device.Model

	// Aged-bounds memo (see hot.go): per-device cached [lo, hi] window
	// keyed by the exact stress it was computed at; bGen invalidates all
	// entries at once (temperature changes), bEvalOK tracks whether
	// bEval matches the current temperature.
	bEval   aging.Evaluator
	bEvalOK bool
	bGen    uint32
	bStress []float64
	bLo     []float64
	bHi     []float64
	bSeen   []uint32

	// noisy is the crossbar-owned scratch burst-affected VMM reads
	// materialize into (see hot.go).
	noisy *tensor.Tensor
}

// New constructs a fresh crossbar.
func New(rows, cols int, p device.Params, m aging.Model, tempK float64) (*Crossbar, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("crossbar: dimensions must be positive, got %dx%d", rows, cols)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if tempK <= 0 {
		return nil, fmt.Errorf("crossbar: temperature must be positive, got %g K", tempK)
	}
	cb := &Crossbar{
		Rows: rows, Cols: cols,
		params: p, model: m, tempK: tempK,
		devices:     make([]*device.Device, rows*cols),
		traceStride: 3,
		tel:         newCrossbarTel(),
		grid:        p.Grid(),
		devModel:    p.ResolveModel(),
		bGen:        1, // bSeen zero-values must read as "never computed"
	}
	for i := range cb.devices {
		cb.devices[i] = device.New(p)
		cb.devices[i].SeedNoise(uint64(i))
	}
	return cb, nil
}

// DeviceModel returns the shared pulse-response model of the array's
// technology.
func (c *Crossbar) DeviceModel() device.Model { return c.devModel }

// SeedDeviceNoise re-derives every device's deterministic noise streams
// from base + its row-major index. MappedNetwork seeds each layer's
// crossbar with a distinct base so device-to-device draws decorrelate
// across layers; for models without variation the draws are never
// consulted and reseeding is behavior-free.
func (c *Crossbar) SeedDeviceNoise(base uint64) {
	for i, d := range c.devices {
		d.SeedNoise(base + uint64(i))
	}
}

// Params returns the device technology parameters.
func (c *Crossbar) Params() device.Params { return c.params }

// Model returns the aging model.
func (c *Crossbar) Model() aging.Model { return c.model }

// TempK returns the operating temperature.
func (c *Crossbar) TempK() float64 { return c.tempK }

// SetTempK changes the operating temperature (K). It returns an error
// for non-positive temperatures and leaves the crossbar unchanged.
// Conservatively invalidates the read cache (temperature moves the
// aged windows future operations clamp against).
func (c *Crossbar) SetTempK(t float64) error {
	if t <= 0 {
		return fmt.Errorf("crossbar: temperature must be positive, got %g", t)
	}
	c.tempK = t
	// Temperature moves every aged window: rebuild the bounds evaluator
	// and expire every memo entry in O(1) via the generation counter.
	c.bEvalOK = false
	c.bGen++
	c.tel.invalTemp.Inc()
	c.invalidate()
	return nil
}

// at returns the device at row i, column j without touching the read
// cache — the accessor every internal (invalidation-aware) path uses.
func (c *Crossbar) at(i, j int) *device.Device {
	return c.devices[i*c.Cols+j]
}

// Device returns the device at row i, column j. The returned handle
// can mutate device state behind the crossbar's back, so this escape
// hatch conservatively invalidates the cached read path; simulation
// code on the hot path uses the crossbar's own methods instead.
func (c *Crossbar) Device(i, j int) *device.Device {
	c.tel.invalDevice.Inc()
	c.invalidate()
	return c.devices[i*c.Cols+j]
}

// AgedBounds returns the true aged resistance window of device (i, j)
// per eq. (6)/(7), from its actual accumulated stress. Served through
// the per-device memo (see hot.go), bit-identical to the direct
// model.Bounds computation.
func (c *Crossbar) AgedBounds(i, j int) (lo, hi float64) {
	return c.agedBoundsIdx(i*c.Cols + j)
}

// MapRange returns the common resistance range [rLo, rHi] used by the
// last MapWeights call. ok is false before any mapping.
func (c *Crossbar) MapRange() (rLo, rHi float64, ok bool) {
	return c.rLo, c.rHi, c.mapped
}

// WeightRange returns the [wMin, wMax] window of the last mapping.
func (c *Crossbar) WeightRange() (wMin, wMax float64, ok bool) {
	return c.wMin, c.wMax, c.mapped
}

// TargetResistance converts weight w to its target resistance under
// eq. (4) with the mapping ranges [wMin,wMax] -> [gMin,gMax], where
// gMin = 1/rHi and gMax = 1/rLo. Degenerate weight ranges map to gMin.
// Weights outside [wMin, wMax] (possible through fault-compensation
// offsets) clamp to the range edge: the periphery cannot program a
// conductance outside the selected range, and without the clamp a far
// outlier would extrapolate to a non-physical negative conductance.
// The result is therefore always in [rLo, rHi].
func TargetResistance(w, wMin, wMax, rLo, rHi float64) float64 {
	gMin, gMax := 1/rHi, 1/rLo
	if wMax <= wMin {
		return rHi
	}
	g := (gMax-gMin)/(wMax-wMin)*(w-wMin) + gMin
	if g < gMin {
		g = gMin
	} else if g > gMax {
		g = gMax
	}
	return 1 / g
}

// EffectiveWeight inverts eq. (4): the weight actually realized by a
// device programmed to resistance r under the given mapping ranges.
func EffectiveWeight(r, wMin, wMax, rLo, rHi float64) float64 {
	gMin, gMax := 1/rHi, 1/rLo
	if gMax <= gMin {
		return wMin
	}
	g := 1 / r
	return (g-gMin)/(gMax-gMin)*(wMax-wMin) + wMin
}

// MapStats reports the cost of one MapWeights call.
type MapStats struct {
	Pulses  int
	Stress  float64
	Clipped int // devices whose target fell outside their aged window
	Stuck   int // write attempts that hit a permanently stuck device
	Skipped int // stuck devices excluded up front (fault-aware mapping)
}

// MapWeights programs the trained weight matrix w (shape [Rows, Cols])
// into the array using the common resistance range [rLo, rHi] (eq. (4)).
// Each device is programmed within its own true aged window, so targets
// beyond a worn device's reach are clipped (Fig. 4) and counted.
func (c *Crossbar) MapWeights(w *tensor.Tensor, rLo, rHi float64) MapStats {
	if w.Dim(0) != c.Rows || w.Dim(1) != c.Cols {
		panic(fmt.Sprintf("crossbar: weight shape %v, want [%d %d]", w.Shape(), c.Rows, c.Cols))
	}
	if rLo <= 0 || rHi <= rLo {
		panic(fmt.Sprintf("crossbar: invalid mapping range [%g, %g]", rLo, rHi))
	}
	wMin, wMax := w.MinMax()
	c.wMin, c.wMax = wMin, wMax
	c.rLo, c.rHi = rLo, rHi
	c.mapped = true
	c.tel.invalMap.Inc()
	c.invalidate() // ranges and (potentially) every device changed

	var stats MapStats
	usable := usableAccum{track: c.tel.usableMean != nil}
	conv := newMapConv(wMin, wMax, rLo, rHi)
	wd := w.Data()
	// Devices are row-major like w's backing slice, so the flat walk
	// visits (i, j) pairs in exactly the order of the nested loops.
	for idx, d := range c.devices {
		target := conv.target(wd[idx])
		lo, hi := c.agedBoundsIdx(idx)
		usable.observe(c.params, lo, hi)
		res := d.Program(target, lo, hi)
		stats.Pulses += res.Pulses
		stats.Stress += res.Stress
		if res.Clipped {
			stats.Clipped++
		}
		if res.Stuck {
			stats.Stuck++
		}
	}
	c.recordMapTel(stats, usable)
	return stats
}

// EffectiveWeights reads back the weight matrix the array actually
// implements, given its programmed resistances and the current mapping
// ranges. Stuck devices read at their pinned resistance, so the
// returned matrix is the fault-aware truth of what the hardware
// computes. When a fault injector is attached, an occasional read-noise
// burst perturbs the whole readback multiplicatively without touching
// device state (or the read cache). Returns ErrNotMapped before the
// first MapWeights. The returned tensor is the caller's to mutate; the
// allocation-free variant is ReadWeightsInto.
func (c *Crossbar) EffectiveWeights() (*tensor.Tensor, error) {
	out := tensor.New(c.Rows, c.Cols)
	if err := c.readInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// VMM computes the analog vector-matrix product the array performs for
// one input vector x of length Rows: out_j = sum_i x_i * w_ij with the
// *effective* (programmed, quantized, aged) weights, served from the
// cached matrix (bit-identical to VMMNaive). It returns an error on an
// input size mismatch or before the first MapWeights.
func (c *Crossbar) VMM(x *tensor.Tensor) (*tensor.Tensor, error) {
	if c.tel.vmmNs != nil {
		defer func(t0 time.Time) { c.tel.vmmNs.Observe(float64(time.Since(t0))) }(time.Now())
	}
	if x.Size() != c.Rows {
		return nil, fmt.Errorf("crossbar: VMM input size %d, want %d", x.Size(), c.Rows)
	}
	if !c.mapped {
		return nil, ErrNotMapped
	}
	out := tensor.New(c.Cols)
	c.vmmCore(out, x)
	return out, nil
}

// VMMBatch evaluates the array against a whole input batch x (shape
// [B, Rows]) in one matrix-matrix product over a single materialized
// readback: out[b][j] = sum_i x[b][i] * w_ij. The batch counts as ONE
// readback — at most one read-noise burst is drawn for all B samples,
// matching a pipelined analog read that latches the array state once.
// workers > 1 opts into the deterministic row-parallel kernel (output
// bits are identical for every worker count).
func (c *Crossbar) VMMBatch(x *tensor.Tensor, workers int) (*tensor.Tensor, error) {
	if c.tel.vmmBatchNs != nil {
		defer func(t0 time.Time) { c.tel.vmmBatchNs.Observe(float64(time.Since(t0))) }(time.Now())
	}
	if x.Rank() != 2 || x.Dim(1) != c.Rows {
		return nil, fmt.Errorf("crossbar: VMMBatch input shape %v, want [B %d]", x.Shape(), c.Rows)
	}
	if !c.mapped {
		return nil, ErrNotMapped
	}
	out := tensor.New(x.Dim(0), c.Cols)
	c.vmmBatchCore(out, x, workers)
	return out, nil
}

// StepDevice applies one online-tuning pulse to device (i, j): dir > 0
// increases the effective weight (conductance up, resistance down),
// dir < 0 decreases it. Tuning pulses move the analog conductance by a
// small fixed increment (device.Params.TunePulseDeltaG), bounded by the
// device's aged window intersected with the fresh grid (the periphery
// cannot program beyond the fresh range).
//
// It returns the stress added and whether the pulse actually took:
// applied is false when the device is permanently stuck or when the
// attached fault injector made the pulse fail transiently. A failed
// pulse still costs its full stress — retries are never free.
func (c *Crossbar) StepDevice(i, j, dir int) (stress float64, applied bool) {
	if dir == 0 {
		return 0, false
	}
	d := c.at(i, j)
	if d.Stuck() {
		s := d.FailedPulse()
		c.tel.pulses.Inc()
		c.tel.stress.Add(s)
		return s, false
	}
	if c.inj != nil && c.inj.PulseFails() {
		s := d.FailedPulse()
		c.tel.pulses.Inc()
		c.tel.stress.Add(s)
		return s, false
	}
	lo, hi := c.AgedBounds(i, j)
	if lo < c.params.RminFresh {
		lo = c.params.RminFresh
	}
	if hi < lo {
		hi = lo
	}
	stress = d.Pulse(dir, lo, hi)
	c.tel.pulses.Inc()
	c.tel.stress.Add(stress)
	// A pulse that took moved exactly this cell: patch the cached read
	// path instead of invalidating it (failed pulses leave the
	// resistance — and therefore the cache — untouched).
	c.patch(i, j)
	return stress, true
}

// RandomizeAging assigns every device a lognormal endurance-variability
// factor exp(N(0, sigma)), modelling device-to-device process variation
// in aging rates. Call once on a fresh array.
func (c *Crossbar) RandomizeAging(sigma float64, rng *tensor.RNG) {
	if sigma < 0 {
		panic(fmt.Sprintf("crossbar: negative aging variability %g", sigma))
	}
	for _, d := range c.devices {
		d.SetAgingFactor(math.Exp(rng.Normal(0, sigma)))
	}
	c.tel.invalAging.Inc()
	c.invalidate()
}

// AddStress injects burn-in stress into every device (scaled by each
// device's aging factor), modelling an array that has already lived
// part of its life.
func (c *Crossbar) AddStress(s float64) {
	for _, d := range c.devices {
		d.AddStress(s)
	}
	c.tel.invalStress.Inc()
	c.invalidate()
}

// Drift perturbs every device's resistance by Gaussian noise whose
// standard deviation is *relative* to the device's current resistance
// (sigma = 0.05 means 5% of R), clamped to its aged window.
// Proportional drift is the physical form of read disturb — every
// device's state moves by the same relative amount wherever it sits in
// the range. This recoverable drift ([8]) is what makes periodic
// re-tuning necessary in the first place.
func (c *Crossbar) Drift(sigma float64, rng *tensor.RNG) {
	if sigma < 0 {
		panic(fmt.Sprintf("crossbar: negative drift sigma %g", sigma))
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			d := c.at(i, j)
			lo, hi := c.AgedBounds(i, j)
			d.Drift(rng.Normal(0, sigma*d.Resistance()), lo, hi)
		}
	}
	c.tel.invalDrift.Inc()
	c.invalidate() // every healthy device may have moved
}

// StateDrift applies one interval of spontaneous conductance state
// drift (device.DriftSpec): every healthy device's conductance
// excursion above the model's minimum decays by the multiplicative
// factor — G <- gMin + (G - gMin) * factor — clamped to the device's
// aged window like recoverable read-disturb drift. Unlike Drift this is
// fully deterministic (the power law needs no randomness), and unlike
// aging it moves state, not bounds: it is the retention loss that
// scale-recalibration policies compensate without reprogramming.
// A factor of 1 (or outside (0, 1]) is a no-op.
func (c *Crossbar) StateDrift(factor float64) {
	if !(factor > 0 && factor < 1) {
		return
	}
	gMin, _ := c.devModel.GBounds()
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			d := c.at(i, j)
			if d.Stuck() {
				continue
			}
			g := gMin + (1/d.Resistance()-gMin)*factor
			if !(g > 0) {
				continue
			}
			lo, hi := c.AgedBounds(i, j)
			d.Drift(1/g-d.Resistance(), lo, hi)
		}
	}
	c.tel.invalDrift.Inc()
	c.invalidate() // every healthy device may have moved
}

// TotalStress sums the accumulated stress over all devices.
func (c *Crossbar) TotalStress() float64 {
	s := 0.0
	for _, d := range c.devices {
		s += d.Stress()
	}
	return s
}

// TotalPulses sums the lifetime pulse counts over all devices.
func (c *Crossbar) TotalPulses() int64 {
	var n int64
	for _, d := range c.devices {
		n += d.Pulses()
	}
	return n
}

// MeanAgedUpperBound averages the true aged upper resistance bound over
// all devices — the quantity plotted per layer type in Fig. 11.
func (c *Crossbar) MeanAgedUpperBound() float64 {
	s := 0.0
	for idx := range c.devices {
		_, hi := c.agedBoundsIdx(idx)
		s += hi
	}
	return s / float64(len(c.devices))
}

// SetTraceStride changes the tracing density: the center of every
// stride x stride block is traced. Stride 1 traces every device
// (maximum bookkeeping); larger strides trade estimation accuracy for
// cost. The paper uses 3.
func (c *Crossbar) SetTraceStride(stride int) {
	if stride < 1 {
		panic(fmt.Sprintf("crossbar: trace stride must be >= 1, got %d", stride))
	}
	c.traceStride = stride
}

// TracedIndices returns the representative devices whose programming
// history the mapping hardware traces: the center of every 3x3 block
// ("every one out of nine memristors", Section IV-B). Arrays smaller
// than the block size trace device (0, 0).
func (c *Crossbar) TracedIndices() [][2]int {
	var out [][2]int
	start := c.traceStride / 2
	for i := start; i < c.Rows; i += c.traceStride {
		for j := start; j < c.Cols; j += c.traceStride {
			out = append(out, [2]int{i, j})
		}
	}
	if len(out) == 0 {
		out = append(out, [2]int{0, 0})
	}
	return out
}

// TracedUpperBounds returns the estimated aged upper resistance bounds
// of the traced devices (eq. (6) applied to their traced histories),
// sorted ascending. These are the candidate common-range bounds of the
// iterative selection in Fig. 8.
func (c *Crossbar) TracedUpperBounds() []float64 {
	idx := c.TracedIndices()
	out := make([]float64, 0, len(idx))
	for _, ij := range idx {
		_, hi := c.AgedBounds(ij[0], ij[1])
		out = append(out, hi)
	}
	sort.Float64s(out)
	return out
}

// TracedLowerBounds returns the estimated aged lower bounds of the
// traced devices, sorted ascending.
func (c *Crossbar) TracedLowerBounds() []float64 {
	idx := c.TracedIndices()
	out := make([]float64, 0, len(idx))
	for _, ij := range idx {
		lo, _ := c.AgedBounds(ij[0], ij[1])
		out = append(out, lo)
	}
	sort.Float64s(out)
	return out
}

// QuantizeWeights returns the hypothetical effective weights of mapping
// w onto the level grid restricted to the common range [rLo, rHi],
// assuming every device can reach its target (no per-device aging
// clipping). This is the software-side simulation the aging-aware range
// selection uses to score candidate ranges *before* committing any
// programming pulses.
func (c *Crossbar) QuantizeWeights(w *tensor.Tensor, rLo, rHi float64) *tensor.Tensor {
	out := tensor.New(w.Shape()...)
	c.QuantizeWeightsInto(out, w, rLo, rHi)
	return out
}

// UsableLevelStats summarizes the usable-level distribution across the
// array (min/mean over devices), after aging.
func (c *Crossbar) UsableLevelStats() (min int, mean float64) {
	min = math.MaxInt32
	total := 0
	for idx := range c.devices {
		lo, hi := c.agedBoundsIdx(idx)
		n := c.grid.UsableLevels(lo, hi)
		if n < min {
			min = n
		}
		total += n
	}
	return min, float64(total) / float64(c.Rows*c.Cols)
}
