package crossbar

import (
	"testing"

	"memlife/internal/tensor"
)

// effReader is satisfied by both Crossbar and DifferentialCrossbar.
type effReader interface {
	EffectiveWeights() (*tensor.Tensor, error)
	VMM(x *tensor.Tensor) (*tensor.Tensor, error)
}

// mustEff reads the effective weights, failing the test on error.
func mustEff(t testing.TB, cb effReader) *tensor.Tensor {
	t.Helper()
	eff, err := cb.EffectiveWeights()
	if err != nil {
		t.Fatalf("EffectiveWeights: %v", err)
	}
	return eff
}

// mustVMM computes the vector-matrix product, failing the test on error.
func mustVMM(t testing.TB, cb effReader, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := cb.VMM(x)
	if err != nil {
		t.Fatalf("VMM: %v", err)
	}
	return out
}

// mustAcc evaluates the mapped network, failing the test on error.
func mustAcc(t testing.TB, mn *MappedNetwork, x *tensor.Tensor, y []int) float64 {
	t.Helper()
	acc, err := mn.Accuracy(x, y)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	return acc
}

// mustRefresh refreshes the mapped network, failing the test on error.
func mustRefresh(t testing.TB, mn *MappedNetwork) {
	t.Helper()
	if err := mn.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
}
