package crossbar

import (
	"fmt"
	"time"

	"memlife/internal/tensor"
)

// The zero-allocation hot path.
//
// Steady-state simulation spends almost all of its time in four loops:
// programming (MapWeights), tuning pulses (StepDevice bursts), readback
// (ReadWeightsInto), and evaluation (VMM/VMMBatch). This file holds the
// machinery that makes those loops allocation-free and cheap without
// changing a single output bit:
//
//   - an aged-bounds memo: eq. (6)/(7) is a pure function of a device's
//     accumulated stress (given params, model, temperature), so each
//     device's window is cached keyed by the exact stress value it was
//     computed at, over an aging.Evaluator that hoists the Arrhenius
//     exp out of the loop. Stress only changes through the crossbar's
//     own pulse accounting (and the Device escape hatch, which the
//     stress-value key detects), so entries self-invalidate by
//     comparison; SetTempK bumps a generation instead.
//   - mapConv: the eq. (4) weight<->resistance affine transform with
//     its range constants precomputed once per mapping pass, in the
//     exact association of TargetResistance/EffectiveWeight.
//   - ...Into variants of the read kernels writing into caller-owned
//     buffers (see DESIGN.md "Scratch arenas & buffer ownership").
//   - StepDevices: a batched StepDevice that applies a whole pulse list
//     (with per-step transient-failure retries) in one call, patching
//     the cache per moved cell and flushing telemetry once.

// agedBoundsIdx returns the aged window of device idx (row-major)
// through the memo. Bit-identical to model.Bounds(params, stress,
// tempK) for every call.
func (c *Crossbar) agedBoundsIdx(idx int) (lo, hi float64) {
	if !c.bEvalOK {
		c.bEval = c.model.Evaluator(c.params, c.tempK)
		c.bEvalOK = true
		if c.bStress == nil {
			n := len(c.devices)
			c.bStress = make([]float64, n)
			c.bLo = make([]float64, n)
			c.bHi = make([]float64, n)
			c.bSeen = make([]uint32, n)
		}
	}
	s := c.devices[idx].Stress()
	if c.bSeen[idx] == c.bGen && c.bStress[idx] == s {
		return c.bLo[idx], c.bHi[idx]
	}
	lo, hi = c.bEval.Bounds(s)
	c.bStress[idx], c.bLo[idx], c.bHi[idx] = s, lo, hi
	c.bSeen[idx] = c.bGen
	return lo, hi
}

// mapConv is eq. (4) with the range constants of one mapping pass
// precomputed. target and eff reproduce TargetResistance and
// EffectiveWeight bit-for-bit: the hoisted subexpressions are exactly
// the ones Go's left-to-right evaluation computes first in the package
// functions.
type mapConv struct {
	wMin, wMax float64
	gMin, gMax float64
	rHi        float64
	scale      float64 // (gMax-gMin)/(wMax-wMin)
	gSpan      float64 // gMax - gMin
	wSpan      float64 // wMax - wMin
	degenerate bool    // wMax <= wMin (or gMax <= gMin for eff)
}

func newMapConv(wMin, wMax, rLo, rHi float64) mapConv {
	m := mapConv{
		wMin: wMin, wMax: wMax,
		gMin: 1 / rHi, gMax: 1 / rLo,
		rHi:        rHi,
		degenerate: wMax <= wMin,
	}
	m.gSpan = m.gMax - m.gMin
	m.wSpan = m.wMax - m.wMin
	if !m.degenerate {
		m.scale = (m.gMax - m.gMin) / (m.wMax - m.wMin)
	}
	return m
}

// target is TargetResistance(w, wMin, wMax, rLo, rHi).
func (m mapConv) target(w float64) float64 {
	if m.degenerate {
		return m.rHi
	}
	g := m.scale*(w-m.wMin) + m.gMin
	if g < m.gMin {
		g = m.gMin
	} else if g > m.gMax {
		g = m.gMax
	}
	return 1 / g
}

// eff is EffectiveWeight(r, wMin, wMax, rLo, rHi).
func (m mapConv) eff(r float64) float64 {
	if m.gMax <= m.gMin {
		return m.wMin
	}
	g := 1 / r
	return (g-m.gMin)/m.gSpan*m.wSpan + m.wMin
}

// noisyScratch returns the crossbar-owned buffer burst-affected reads
// are materialized into. Owned by the crossbar and overwritten by the
// next burst read; never escapes.
func (c *Crossbar) noisyScratch() *tensor.Tensor {
	if c.noisy == nil {
		c.noisy = tensor.New(c.Rows, c.Cols)
	}
	return c.noisy
}

// VMMInto computes the analog vector-matrix product like VMM, writing
// into the caller-owned dst (rank-1, length Cols; must not alias x).
// With a warm cache and no burst this is allocation-free. Bit-identical
// to VMM.
func (c *Crossbar) VMMInto(dst, x *tensor.Tensor) error {
	if c.tel.vmmNs != nil {
		defer func(t0 time.Time) { c.tel.vmmNs.Observe(float64(time.Since(t0))) }(time.Now())
	}
	if x.Size() != c.Rows {
		return fmt.Errorf("crossbar: VMM input size %d, want %d", x.Size(), c.Rows)
	}
	if dst.Size() != c.Cols {
		return fmt.Errorf("crossbar: VMM output size %d, want %d", dst.Size(), c.Cols)
	}
	if !c.mapped {
		return ErrNotMapped
	}
	c.vmmCore(dst, x)
	return nil
}

// vmmCore is the shared compute of VMM and VMMInto; the caller has
// validated sizes and mapping state.
func (c *Crossbar) vmmCore(dst, x *tensor.Tensor) {
	if burst, sigma := c.readBurst(); burst {
		// A burst-affected read bypasses the cache entirely; bursts are
		// rare and reuse the crossbar-owned scratch.
		noisy := c.noisyScratch()
		c.noisyInto(noisy, sigma)
		tensor.MatVecTInto(dst, noisy, x)
		return
	}
	c.ensure()
	tensor.MatVecInto(dst, c.effT, x)
}

// VMMBatchInto evaluates a whole input batch like VMMBatch, writing
// into the caller-owned dst (shape [B, Cols]; must not alias x). With a
// warm cache, no burst, and workers <= 1 this is allocation-free
// (worker goroutines cost their scheduling). Bit-identical to VMMBatch
// for every worker count.
func (c *Crossbar) VMMBatchInto(dst, x *tensor.Tensor, workers int) error {
	if c.tel.vmmBatchNs != nil {
		defer func(t0 time.Time) { c.tel.vmmBatchNs.Observe(float64(time.Since(t0))) }(time.Now())
	}
	if x.Rank() != 2 || x.Dim(1) != c.Rows {
		return fmt.Errorf("crossbar: VMMBatch input shape %v, want [B %d]", x.Shape(), c.Rows)
	}
	if dst.Rank() != 2 || dst.Dim(0) != x.Dim(0) || dst.Dim(1) != c.Cols {
		return fmt.Errorf("crossbar: VMMBatch output shape %v, want [%d %d]", dst.Shape(), x.Dim(0), c.Cols)
	}
	if !c.mapped {
		return ErrNotMapped
	}
	c.vmmBatchCore(dst, x, workers)
	return nil
}

// vmmBatchCore is the shared compute of VMMBatch and VMMBatchInto; the
// caller has validated shapes and mapping state.
func (c *Crossbar) vmmBatchCore(dst, x *tensor.Tensor, workers int) {
	if burst, sigma := c.readBurst(); burst {
		noisy := c.noisyScratch()
		c.noisyInto(noisy, sigma)
		tensor.MatMulWorkersInto(dst, x, noisy, workers)
		return
	}
	c.ensure()
	tensor.MatMulWorkersInto(dst, x, c.eff, workers)
}

// Step addresses one tuning pulse of a batch: device (I, J) pulsed in
// direction Dir (see StepDevice). Steps with Dir == 0 are skipped.
type Step struct {
	I, J, Dir int
}

// StepStats reports what one StepDevices call did.
type StepStats struct {
	// Pulses counts programming pulses applied, including failed ones;
	// Stress is their accumulated cost.
	Pulses int
	Stress float64
	// Applied counts steps whose pulse eventually took.
	Applied int
	// Retries counts extra pulses spent re-attempting transient
	// failures (their stress is included in Stress).
	Retries int
	// StuckSkipped counts steps dropped because their device is
	// permanently stuck (no pulse applied).
	StuckSkipped int
}

// StepDevices applies a whole list of tuning pulses in one call: for
// each step the device is skipped if permanently stuck, otherwise
// pulsed with up to retryBudget immediate retries of transient
// programming failures. Per-step semantics, fault-injector draw order,
// device stress, and cache patching are exactly those of the
// equivalent IsStuck + StepDevice retry loop (the tuning controller's
// former inner loop); telemetry is flushed once per call instead of
// once per pulse, with identical totals. Allocation-free.
func (c *Crossbar) StepDevices(steps []Step, retryBudget int) StepStats {
	var st StepStats
	if retryBudget < 0 {
		retryBudget = 0
	}
	for _, sp := range steps {
		if sp.Dir == 0 {
			continue
		}
		d := c.at(sp.I, sp.J)
		if d.Stuck() {
			st.StuckSkipped++
			continue
		}
		applied := false
		for attempt := 0; ; attempt++ {
			if c.inj != nil && c.inj.PulseFails() {
				st.Stress += d.FailedPulse()
				st.Pulses++
			} else {
				lo, hi := c.agedBoundsIdx(sp.I*c.Cols + sp.J)
				if lo < c.params.RminFresh {
					lo = c.params.RminFresh
				}
				if hi < lo {
					hi = lo
				}
				st.Stress += d.Pulse(sp.Dir, lo, hi)
				st.Pulses++
				c.patch(sp.I, sp.J)
				applied = true
			}
			if applied || attempt >= retryBudget {
				break
			}
			st.Retries++
		}
		if applied {
			st.Applied++
		}
	}
	c.tel.pulses.Add(int64(st.Pulses))
	c.tel.stress.Add(st.Stress)
	return st
}

// QuantizeWeightsInto is the allocation-free QuantizeWeights: dst (same
// volume as w) receives the hypothetical effective weights of mapping w
// onto the level grid restricted to [rLo, rHi]. The level window and
// the eq. (4) constants are hoisted out of the element loop (they
// depend only on the ranges), and level resistances come from the
// device grid LUT; every element is bit-identical to the direct
// per-element computation.
func (c *Crossbar) QuantizeWeightsInto(dst, w *tensor.Tensor, rLo, rHi float64) {
	if dst.Size() != w.Size() {
		panic(fmt.Sprintf("crossbar: quantize into size %d, want %d", dst.Size(), w.Size()))
	}
	wMin, wMax := w.MinMax()
	conv := newMapConv(wMin, wMax, rLo, rHi)
	g := c.grid
	loLvl, hiLvl, ok := g.WindowLevels(rLo, rHi)
	fallback := 0
	if !ok {
		// No level inside the window: every target collapses onto the
		// grid point nearest the window midpoint (NearestLevelIn's
		// fallback, hoisted — it does not depend on the element).
		fallback = g.NearestLevel((rLo + rHi) / 2)
	}
	dd, wd := dst.Data(), w.Data()
	for i, v := range wd {
		lvl := fallback
		if ok {
			lvl = g.NearestLevel(conv.target(v))
			if lvl < loLvl {
				lvl = loLvl
			} else if lvl > hiLvl {
				lvl = hiLvl
			}
		}
		dd[i] = conv.eff(g.LevelResistance(lvl))
	}
}
