package crossbar

import (
	"errors"
	"math"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/tensor"
)

func newDiff(t *testing.T, rows, cols int) *DifferentialCrossbar {
	t.Helper()
	d, err := NewDifferential(rows, cols, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDifferentialRoundTrip(t *testing.T) {
	d := newDiff(t, 4, 3)
	rng := tensor.NewRNG(1)
	w := tensor.New(4, 3)
	rng.FillNormal(w, 0, 0.5)
	stats := d.MapWeights(w)
	if stats.Clipped != 0 {
		t.Fatal("fresh differential mapping must not clip")
	}
	eff := mustEff(t, d)
	// Quantization error bound: one conductance gap at the dense end,
	// converted to weight units via the scale.
	p := device.Params32()
	gGapMax := p.LevelConductance(0) - p.LevelConductance(1)
	errMax := gGapMax / (p.GmaxFresh() - p.GminFresh()) * w.AbsMax()
	for i, v := range w.Data() {
		if math.Abs(eff.Data()[i]-v) > errMax {
			t.Fatalf("weight %d error %g exceeds quantization bound %g", i, math.Abs(eff.Data()[i]-v), errMax)
		}
	}
}

func TestDifferentialSignSplit(t *testing.T) {
	d := newDiff(t, 2, 1)
	w := tensor.FromSlice([]float64{0.8, -0.8}, 2, 1)
	d.MapWeights(w)
	p := device.Params32()
	// Positive weight: Pos device high conductance, Neg at gMin.
	if d.Pos.Device(0, 0).Conductance() <= d.Neg.Device(0, 0).Conductance() {
		t.Fatal("positive weight must live on the Pos device")
	}
	if math.Abs(d.Neg.Device(0, 0).Conductance()-p.GminFresh()) > 1e-9 {
		t.Fatal("positive weight's Neg device must rest at gMin")
	}
	// Negative weight: mirrored.
	if d.Neg.Device(1, 0).Conductance() <= d.Pos.Device(1, 0).Conductance() {
		t.Fatal("negative weight must live on the Neg device")
	}
}

func TestDifferentialZeroWeightsRestAtGmin(t *testing.T) {
	d := newDiff(t, 3, 3)
	w := tensor.New(3, 3) // all zero
	d.MapWeights(w)
	if rel := d.MeanRelConductance(); rel > 1e-9 {
		t.Fatalf("zero weights must leave all devices at gMin, got rel conductance %g", rel)
	}
	eff := mustEff(t, d)
	for _, v := range eff.Data() {
		if v != 0 {
			t.Fatalf("zero weights must read back zero, got %v", eff.Data())
		}
	}
}

func TestDifferentialVMMMatchesEffective(t *testing.T) {
	d := newDiff(t, 3, 2)
	w := tensor.FromSlice([]float64{0.3, -0.2, 0.1, 0.5, -0.4, 0.0}, 3, 2)
	d.MapWeights(w)
	x := tensor.FromSlice([]float64{1, -2, 3}, 3)
	out := mustVMM(t, d, x)
	eff := mustEff(t, d)
	for j := 0; j < 2; j++ {
		want := 0.0
		for i := 0; i < 3; i++ {
			want += x.Data()[i] * eff.At(i, j)
		}
		if math.Abs(out.Data()[j]-want) > 1e-12 {
			t.Fatalf("differential VMM column %d = %g, want %g", j, out.Data()[j], want)
		}
	}
}

// TestDifferentialDrawsLessCurrentThanSingle quantifies the comparison
// the "differential" experiment reports: for a quasi-normal weight
// matrix, differential mapping leaves the device population at much
// lower mean conductance than the paper's single-device mapping.
func TestDifferentialDrawsLessCurrentThanSingle(t *testing.T) {
	rng := tensor.NewRNG(3)
	w := tensor.New(8, 8)
	rng.FillNormal(w, 0, 0.3)

	diff := newDiff(t, 8, 8)
	diff.MapWeights(w)

	single := newTestCrossbar(t, 8, 8)
	p := single.Params()
	single.MapWeights(w, p.RminFresh, p.RmaxFresh)
	gMin, gMax := p.GminFresh(), p.GmaxFresh()
	singleRel, n := 0.0, 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			singleRel += (single.Device(i, j).Conductance() - gMin) / (gMax - gMin)
			n++
		}
	}
	singleRel /= float64(n)

	if diff.MeanRelConductance() >= singleRel {
		t.Fatalf("differential mapping must sit at lower conductance: %.3f vs single %.3f",
			diff.MeanRelConductance(), singleRel)
	}
}

func TestDifferentialStressAccounting(t *testing.T) {
	d := newDiff(t, 4, 4)
	rng := tensor.NewRNG(5)
	w := tensor.New(4, 4)
	rng.FillNormal(w, 0, 0.5)
	stats := d.MapWeights(w)
	if stats.Pulses == 0 {
		t.Fatal("mapping must pulse devices")
	}
	if int64(stats.Pulses) != d.TotalPulses() {
		t.Fatalf("pulse accounting: %d vs %d", stats.Pulses, d.TotalPulses())
	}
	if math.Abs(stats.Stress-d.TotalStress()) > 1e-9 {
		t.Fatalf("stress accounting: %g vs %g", stats.Stress, d.TotalStress())
	}
	d.Drift(0.05, rng)
	eff := mustEff(t, d)
	for _, v := range eff.Data() {
		if math.IsNaN(v) {
			t.Fatal("drifted differential weights must stay finite")
		}
	}
}

func TestDifferentialBeforeMapReturnsError(t *testing.T) {
	d := newDiff(t, 2, 2)
	if _, err := d.EffectiveWeights(); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("EffectiveWeights before mapping: err = %v, want ErrNotMapped", err)
	}
	if _, err := d.VMM(tensor.New(2)); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("VMM before mapping: err = %v, want ErrNotMapped", err)
	}
}
