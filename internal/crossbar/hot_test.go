package crossbar

import (
	"fmt"
	"testing"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/fault"
	"memlife/internal/tensor"
)

// Oracle-equivalence and allocation tests for the zero-alloc hot path
// (hot.go): the ...Into kernels against the naive oracles, the
// flat-walk mapping against a per-cell reimplementation of the original
// algorithm, and StepDevices against the sequential StepDevice retry
// loop — all compared with == across fault, aging, and temperature
// configurations.

// TestVMMIntoMatchesOracle drives a cached/naive pair through the
// mutation script and compares VMMInto (into a reused destination)
// against VMMNaive at every step, across temperatures and aging.
func TestVMMIntoMatchesOracle(t *testing.T) {
	for _, faults := range []bool{false, true} {
		t.Run(fmt.Sprintf("faults=%v", faults), func(t *testing.T) {
			const rows, cols = 9, 7
			p := newEquivPair(t, rows, cols, faults, 404)
			params := p.cached.Params()
			ops := tensor.NewRNG(404)

			w := tensor.New(rows, cols)
			ops.FillNormal(w, 0, 0.5)
			x := tensor.New(rows)
			ops.FillNormal(x, 0, 1)
			dst := tensor.New(cols)

			p.cached.MapWeights(w, params.RminFresh, params.RmaxFresh)
			p.naive.MapWeights(w, params.RminFresh, params.RmaxFresh)

			check := func(step string) {
				t.Helper()
				if err := p.cached.VMMInto(dst, x); err != nil {
					t.Fatalf("%s: VMMInto: %v", step, err)
				}
				want, err := p.naive.VMMNaive(x)
				if err != nil {
					t.Fatalf("%s: VMMNaive: %v", step, err)
				}
				for j, v := range want.Data() {
					if dst.Data()[j] != v {
						t.Fatalf("%s: output %d differs: into %v, naive %v", step, j, dst.Data()[j], v)
					}
				}
			}
			check("after map")

			for step := 0; step < 20; step++ {
				label := fmt.Sprintf("step %d", step)
				switch ops.Intn(5) {
				case 0:
					for k := 0; k < 8; k++ {
						i, j := ops.Intn(rows), ops.Intn(cols)
						dir := 1
						if ops.Float64() < 0.5 {
							dir = -1
						}
						p.cached.StepDevice(i, j, dir)
						p.naive.StepDevice(i, j, dir)
					}
				case 1:
					p.cached.Drift(0.05, p.rngC)
					p.naive.Drift(0.05, p.rngN)
				case 2:
					p.cached.AddStress(3)
					p.naive.AddStress(3)
				case 3: // temperature excursion: memo generation bump
					tK := 300 + 25*float64(ops.Intn(5))
					if err := p.cached.SetTempK(tK); err != nil {
						t.Fatal(err)
					}
					if err := p.naive.SetTempK(tK); err != nil {
						t.Fatal(err)
					}
				case 4:
					p.cached.MapWeights(w, params.RminFresh, params.RmaxFresh)
					p.naive.MapWeights(w, params.RminFresh, params.RmaxFresh)
				}
				check(label)
			}
		})
	}
}

// TestVMMBatchIntoMatchesOracle pins VMMBatchInto (reused destination)
// against a single naive readback multiplied through, for worker counts
// 1, 2, and 8.
func TestVMMBatchIntoMatchesOracle(t *testing.T) {
	for _, faults := range []bool{false, true} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("faults=%v/workers=%d", faults, workers), func(t *testing.T) {
				const rows, cols, batch = 11, 6, 17
				p := newEquivPair(t, rows, cols, faults, 505)
				params := p.cached.Params()
				ops := tensor.NewRNG(6)

				w := tensor.New(rows, cols)
				ops.FillNormal(w, 0, 0.4)
				p.cached.MapWeights(w, params.RminFresh, params.RmaxFresh)
				p.naive.MapWeights(w, params.RminFresh, params.RmaxFresh)

				xb := tensor.New(batch, rows)
				ops.FillNormal(xb, 0, 1)
				dst := tensor.New(batch, cols)

				for rep := 0; rep < 8; rep++ {
					if rep%2 == 1 {
						p.cached.Drift(0.03, p.rngC)
						p.naive.Drift(0.03, p.rngN)
					}
					if err := p.cached.VMMBatchInto(dst, xb, workers); err != nil {
						t.Fatal(err)
					}
					effN, err := p.naive.EffectiveWeightsNaive()
					if err != nil {
						t.Fatal(err)
					}
					want := tensor.MatMul(xb, effN)
					for i, v := range want.Data() {
						if dst.Data()[i] != v {
							t.Fatalf("rep %d: batch output %d differs: %v vs %v", rep, i, dst.Data()[i], v)
						}
					}
				}
			})
		}
	}
}

// oracleMapWeights reprograms cb with the original per-cell MapWeights
// algorithm through the public API: per-element TargetResistance, fresh
// model.Bounds from the device's actual stress, Device.Program.
func oracleMapWeights(cb *Crossbar, w *tensor.Tensor, rLo, rHi float64) MapStats {
	wMin, wMax := w.MinMax()
	var stats MapStats
	for i := 0; i < cb.Rows; i++ {
		for j := 0; j < cb.Cols; j++ {
			target := TargetResistance(w.At(i, j), wMin, wMax, rLo, rHi)
			d := cb.Device(i, j)
			lo, hi := cb.Model().Bounds(cb.Params(), d.Stress(), cb.TempK())
			res := d.Program(target, lo, hi)
			stats.Pulses += res.Pulses
			stats.Stress += res.Stress
			if res.Clipped {
				stats.Clipped++
			}
			if res.Stuck {
				stats.Stuck++
			}
		}
	}
	return stats
}

// oracleMapWeightsFaultAware is the per-cell reimplementation of
// MapWeightsFaultAware: per-column stuck-error compensation, stuck
// devices skipped.
func oracleMapWeightsFaultAware(cb *Crossbar, w *tensor.Tensor, rLo, rHi float64) MapStats {
	wMin, wMax := w.MinMax()
	comp := make([]float64, cb.Cols)
	for j := 0; j < cb.Cols; j++ {
		errSum := 0.0
		healthy := 0
		for i := 0; i < cb.Rows; i++ {
			d := cb.Device(i, j)
			if d.Stuck() {
				errSum += EffectiveWeight(d.Resistance(), wMin, wMax, rLo, rHi) - w.At(i, j)
			} else {
				healthy++
			}
		}
		if healthy > 0 {
			comp[j] = -errSum / float64(healthy)
		}
	}
	var stats MapStats
	for i := 0; i < cb.Rows; i++ {
		for j := 0; j < cb.Cols; j++ {
			d := cb.Device(i, j)
			if d.Stuck() {
				stats.Skipped++
				continue
			}
			target := TargetResistance(w.At(i, j)+comp[j], wMin, wMax, rLo, rHi)
			lo, hi := cb.Model().Bounds(cb.Params(), d.Stress(), cb.TempK())
			res := d.Program(target, lo, hi)
			stats.Pulses += res.Pulses
			stats.Stress += res.Stress
			if res.Clipped {
				stats.Clipped++
			}
		}
	}
	return stats
}

// TestMapWeightsMatchesDirectOracle programs twin arrays — one through
// the LUT/memo hot path, one through the per-cell oracle — across fresh,
// aged, hot, and faulted configurations (two mapping passes each, so
// the memo serves both cold and warm entries), and requires identical
// MapStats and identical per-device resistance and stress.
func TestMapWeightsMatchesDirectOracle(t *testing.T) {
	cases := []struct {
		name   string
		aged   bool
		tempK  float64
		faults bool
		aware  bool
	}{
		{name: "fresh"},
		{name: "aged", aged: true},
		{name: "hot", tempK: 350},
		{name: "aged-hot", aged: true, tempK: 350},
		{name: "faulted", faults: true},
		{name: "fault-aware", faults: true, aware: true},
		{name: "fault-aware-aged-hot", faults: true, aware: true, aged: true, tempK: 350},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const rows, cols = 9, 7
			build := func() *Crossbar {
				cb, err := New(rows, cols, device.Params32(), aging.DefaultModel(), 300)
				if err != nil {
					t.Fatal(err)
				}
				if tc.faults {
					inj, err := fault.NewInjector(fault.Config{StuckRate: 0.08, Seed: 31}, rows*cols, 0)
					if err != nil {
						t.Fatal(err)
					}
					if err := cb.SetFaultInjector(inj); err != nil {
						t.Fatal(err)
					}
				}
				return cb
			}
			hot, oracle := build(), build()
			if tc.aged {
				hot.RandomizeAging(0.3, tensor.NewRNG(8))
				oracle.RandomizeAging(0.3, tensor.NewRNG(8))
				hot.AddStress(5)
				oracle.AddStress(5)
			}
			if tc.tempK != 0 {
				if err := hot.SetTempK(tc.tempK); err != nil {
					t.Fatal(err)
				}
				if err := oracle.SetTempK(tc.tempK); err != nil {
					t.Fatal(err)
				}
			}
			w := tensor.New(rows, cols)
			tensor.NewRNG(12).FillNormal(w, 0, 0.5)
			params := hot.Params()

			compare := func(pass string, gotStats, wantStats MapStats) {
				t.Helper()
				if gotStats != wantStats {
					t.Fatalf("%s: MapStats differ: hot %+v, oracle %+v", pass, gotStats, wantStats)
				}
				for i := 0; i < rows; i++ {
					for j := 0; j < cols; j++ {
						dh, do := hot.Device(i, j), oracle.Device(i, j)
						if dh.Resistance() != do.Resistance() {
							t.Fatalf("%s: device (%d,%d) resistance: hot %v, oracle %v", pass, i, j, dh.Resistance(), do.Resistance())
						}
						if dh.Stress() != do.Stress() {
							t.Fatalf("%s: device (%d,%d) stress: hot %v, oracle %v", pass, i, j, dh.Stress(), do.Stress())
						}
					}
				}
			}

			rLo, rHi := params.RminFresh, params.RmaxFresh
			narrowHi := rLo + 0.8*(rHi-rLo)
			passes := []struct {
				name string
				hi   float64
			}{{"full-range", rHi}, {"narrow-range", narrowHi}}
			for _, ps := range passes {
				pass, hi := ps.name, ps.hi
				var gotStats, wantStats MapStats
				if tc.aware {
					gotStats = hot.MapWeightsFaultAware(w, rLo, hi)
					wantStats = oracleMapWeightsFaultAware(oracle, w, rLo, hi)
				} else {
					gotStats = hot.MapWeights(w, rLo, hi)
					wantStats = oracleMapWeights(oracle, w, rLo, hi)
				}
				compare(pass, gotStats, wantStats)
			}
		})
	}
}

// TestQuantizeWeightsIntoMatchesDirect pins the hoisted LUT quantization
// against the direct per-element formula, including a window so narrow
// no level falls inside it (the midpoint fallback).
func TestQuantizeWeightsIntoMatchesDirect(t *testing.T) {
	const rows, cols = 6, 11
	cb := newTestCrossbar(t, rows, cols)
	p := cb.Params()
	w := tensor.New(rows, cols)
	tensor.NewRNG(3).FillNormal(w, 0, 0.7)

	spacing := p.LevelSpacing()
	ranges := [][2]float64{
		{p.RminFresh, p.RmaxFresh},
		{p.RminFresh, p.RminFresh + 0.6*(p.RmaxFresh-p.RminFresh)},
		{p.RminFresh + 2.5*spacing, p.RmaxFresh - 3.5*spacing},
		// No grid point inside: strictly between two adjacent levels.
		{p.RminFresh + 5.3*spacing, p.RminFresh + 5.7*spacing},
	}
	dst := tensor.New(rows, cols)
	for _, rr := range ranges {
		rLo, rHi := rr[0], rr[1]
		cb.QuantizeWeightsInto(dst, w, rLo, rHi)
		wMin, wMax := w.MinMax()
		for i, v := range w.Data() {
			target := TargetResistance(v, wMin, wMax, rLo, rHi)
			lvl := p.NearestLevelIn(target, rLo, rHi)
			want := EffectiveWeight(p.LevelResistance(lvl), wMin, wMax, rLo, rHi)
			if dst.Data()[i] != want {
				t.Fatalf("range [%g,%g], element %d: got %v, want %v", rLo, rHi, i, dst.Data()[i], want)
			}
		}
		// The allocating wrapper returns the same values.
		out := cb.QuantizeWeights(w, rLo, rHi)
		for i, v := range out.Data() {
			if dst.Data()[i] != v {
				t.Fatalf("range [%g,%g]: wrapper diverges at %d", rLo, rHi, i)
			}
		}
	}
}

// TestStepDevicesMatchesStepDeviceLoop applies the same pulse list to
// twin faulted arrays — one through the batched StepDevices, one
// through the sequential IsStuck + StepDevice retry loop the tuning
// controller used to run — and requires identical device state, stats,
// and injector draw consumption.
func TestStepDevicesMatchesStepDeviceLoop(t *testing.T) {
	for _, retryBudget := range []int{0, 2} {
		t.Run(fmt.Sprintf("retries=%d", retryBudget), func(t *testing.T) {
			const rows, cols = 8, 9
			p := newEquivPair(t, rows, cols, true, 606)
			params := p.cached.Params()
			w := tensor.New(rows, cols)
			tensor.NewRNG(4).FillNormal(w, 0, 0.5)
			p.cached.MapWeights(w, params.RminFresh, params.RmaxFresh)
			p.naive.MapWeights(w, params.RminFresh, params.RmaxFresh)

			ops := tensor.NewRNG(7)
			steps := make([]Step, 0, 64)
			for k := 0; k < 64; k++ {
				dir := 1
				if ops.Float64() < 0.5 {
					dir = -1
				}
				steps = append(steps, Step{I: ops.Intn(rows), J: ops.Intn(cols), Dir: dir})
			}

			st := p.cached.StepDevices(steps, retryBudget)

			var want StepStats
			for _, sp := range steps {
				if p.naive.IsStuck(sp.I, sp.J) {
					want.StuckSkipped++
					continue
				}
				s, applied := p.naive.StepDevice(sp.I, sp.J, sp.Dir)
				want.Stress += s
				want.Pulses++
				for attempt := 0; !applied && attempt < retryBudget; attempt++ {
					want.Retries++
					s, applied = p.naive.StepDevice(sp.I, sp.J, sp.Dir)
					want.Stress += s
					want.Pulses++
				}
				if applied {
					want.Applied++
				}
			}
			if st != want {
				t.Fatalf("StepStats differ: batched %+v, sequential %+v", st, want)
			}
			// Device state and remaining injector streams must agree: one
			// readback each through their respective paths.
			x := tensor.New(rows)
			tensor.NewRNG(11).FillNormal(x, 0, 1)
			out, err := p.cached.VMM(x)
			if err != nil {
				t.Fatal(err)
			}
			outN, err := p.naive.VMMNaive(x)
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range outN.Data() {
				if out.Data()[j] != v {
					t.Fatalf("post-step VMM output %d differs: %v vs %v", j, out.Data()[j], v)
				}
			}
		})
	}
}

// TestHotPathZeroAlloc pins the steady-state allocation contract of
// every ...Into kernel plus MapWeights and StepDevices: after one
// warming call, zero heap allocations per operation. Skipped under the
// race detector (instrumentation allocates).
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	const rows, cols, batch = 16, 12, 8
	cb := newTestCrossbar(t, rows, cols)
	params := cb.Params()
	w := tensor.New(rows, cols)
	tensor.NewRNG(5).FillNormal(w, 0, 0.5)
	cb.MapWeights(w, params.RminFresh, params.RmaxFresh)

	x := tensor.New(rows)
	tensor.NewRNG(6).FillNormal(x, 0, 1)
	xb := tensor.New(batch, rows)
	tensor.NewRNG(7).FillNormal(xb, 0, 1)
	dst := tensor.New(cols)
	dstB := tensor.New(batch, cols)
	dstW := tensor.New(rows, cols)
	steps := []Step{{I: 1, J: 2, Dir: 1}, {I: 3, J: 4, Dir: -1}, {I: 5, J: 1, Dir: 1}}

	assertZero := func(name string, f func()) {
		t.Helper()
		f() // warm scratch buffers, memo, and cache
		if allocs := testing.AllocsPerRun(50, f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
	assertZero("VMMInto", func() {
		if err := cb.VMMInto(dst, x); err != nil {
			t.Fatal(err)
		}
	})
	assertZero("VMMBatchInto/serial", func() {
		if err := cb.VMMBatchInto(dstB, xb, 0); err != nil {
			t.Fatal(err)
		}
	})
	assertZero("ReadWeightsInto", func() {
		if err := cb.ReadWeightsInto(dstW); err != nil {
			t.Fatal(err)
		}
	})
	assertZero("StepDevices", func() { cb.StepDevices(steps, 2) })
	assertZero("MapWeights", func() { cb.MapWeights(w, params.RminFresh, params.RmaxFresh) })
	assertZero("QuantizeWeightsInto", func() { cb.QuantizeWeightsInto(dstW, w, params.RminFresh, params.RmaxFresh) })

	// The burst read path reuses the crossbar-owned noisy scratch: with
	// an always-bursting injector, still zero allocations once warm.
	inj, err := fault.NewInjector(fault.Config{ReadBurstProb: 0.99, ReadBurstSigma: 0.05, Seed: 9}, rows*cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.SetFaultInjector(inj); err != nil {
		t.Fatal(err)
	}
	assertZero("VMMInto/burst", func() {
		if err := cb.VMMInto(dst, x); err != nil {
			t.Fatal(err)
		}
	})
}
