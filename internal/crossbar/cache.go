package crossbar

import (
	"errors"
	"fmt"

	"memlife/internal/tensor"
)

// ErrNotMapped is returned by the read path (EffectiveWeights, VMM and
// friends) when the array has never been programmed with MapWeights:
// there is no mapping range, so resistances cannot be interpreted as
// weights.
var ErrNotMapped = errors.New("crossbar: read before MapWeights")

// The cached read path.
//
// Every read of the array (EffectiveWeights, ReadWeightsInto, VMM,
// VMMBatch) is served from a materialized effective-weight matrix that
// is computed once and then kept current incrementally:
//
//   - StepDevice patches the single cell it moved (cache and transpose).
//   - AdvanceFaults patches the cells of newly stuck devices.
//   - MapWeights / MapWeightsFaultAware / SetFaultInjector / Drift /
//     AddStress / RandomizeAging / SetTempK / the public Device accessor
//     invalidate the whole cache; the next read rebuilds it.
//   - Read-burst noise (fault injection) is applied per read without
//     touching the cache: a burst-affected read recomputes noisy values
//     from device state directly, and the clean cache survives.
//
// Cell values are EffectiveWeight(r, ...) — a pure function of the
// device resistance and the mapping ranges — so a patched cache is
// bit-identical to a full recompute; TestEquivalence* and
// FuzzCacheInvalidation in this package prove it against the naive
// oracle (EffectiveWeightsNaive / VMMNaive).

// invalidate drops the materialized matrix; the next read rebuilds it.
func (c *Crossbar) invalidate() { c.effValid = false }

// ensure (re)builds the effective-weight matrix and its transpose. The
// transpose is kept column-major-for-MatVec: row j of effT is column j
// of the array, so VMM streams it sequentially.
func (c *Crossbar) ensure() {
	if c.effValid {
		c.tel.cacheHits.Inc()
		return
	}
	c.tel.cacheMisses.Inc()
	if c.eff == nil {
		c.eff = tensor.New(c.Rows, c.Cols)
		c.effT = tensor.New(c.Cols, c.Rows)
	}
	ed, td := c.eff.Data(), c.effT.Data()
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			w := EffectiveWeight(c.at(i, j).Resistance(), c.wMin, c.wMax, c.rLo, c.rHi)
			ed[i*c.Cols+j] = w
			td[j*c.Rows+i] = w
		}
	}
	c.effValid = true
}

// patch refreshes the cached value of cell (i, j) after its device
// moved (tuning pulse) or stuck (wear-out). A no-op while the cache is
// invalid or the array unmapped — the next ensure recomputes anyway.
func (c *Crossbar) patch(i, j int) {
	if !c.effValid || !c.mapped {
		return
	}
	w := EffectiveWeight(c.at(i, j).Resistance(), c.wMin, c.wMax, c.rLo, c.rHi)
	c.eff.Data()[i*c.Cols+j] = w
	c.effT.Data()[j*c.Rows+i] = w
}

// noisyInto writes a burst-affected readback into dst: every device's
// resistance is perturbed by a fresh multiplicative noise draw before
// conversion. The cache is neither consulted nor modified, and the
// per-device draw order matches the naive oracle exactly.
func (c *Crossbar) noisyInto(dst *tensor.Tensor, sigma float64) {
	d := dst.Data()
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			r := c.at(i, j).Resistance()
			r *= c.inj.ReadNoise(sigma)
			d[i*c.Cols+j] = EffectiveWeight(r, c.wMin, c.wMax, c.rLo, c.rHi)
		}
	}
}

// readInto writes one readback of the array into dst (size Rows*Cols,
// row-major): the cached effective weights, or — when the attached
// fault injector fires a read-noise burst — freshly computed noisy
// values that leave the cache untouched.
func (c *Crossbar) readInto(dst *tensor.Tensor) error {
	if !c.mapped {
		return ErrNotMapped
	}
	if dst.Size() != c.Rows*c.Cols {
		return fmt.Errorf("crossbar: readback into size %d, want %d", dst.Size(), c.Rows*c.Cols)
	}
	if burst, sigma := c.readBurst(); burst {
		c.noisyInto(dst, sigma)
		return nil
	}
	c.ensure()
	copy(dst.Data(), c.eff.Data())
	return nil
}

// readBurst draws one readback-event decision from the injector.
func (c *Crossbar) readBurst() (bool, float64) {
	if c.inj == nil {
		return false, 0
	}
	return c.inj.ReadBurst()
}

// ReadWeightsInto copies one readback of the effective weight matrix
// into dst without allocating (dst must hold Rows*Cols elements). This
// is the hot path of MappedNetwork.Refresh: with a warm cache it is a
// single memcpy instead of a per-device conductance inversion.
func (c *Crossbar) ReadWeightsInto(dst *tensor.Tensor) error {
	return c.readInto(dst)
}

// EffectiveWeightsNaive recomputes the effective weight matrix from
// per-device resistance state on every call — the original,
// cache-free read path, kept as the reference oracle for the
// equivalence test suite and the benchmark harness. It consumes the
// same read-burst draws as the cached path, so two identically driven
// arrays stay in lockstep whichever path reads them.
func (c *Crossbar) EffectiveWeightsNaive() (*tensor.Tensor, error) {
	if !c.mapped {
		return nil, ErrNotMapped
	}
	burst, sigma := c.readBurst()
	out := tensor.New(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			r := c.at(i, j).Resistance()
			if burst {
				r *= c.inj.ReadNoise(sigma)
			}
			out.Set(EffectiveWeight(r, c.wMin, c.wMax, c.rLo, c.rHi), i, j)
		}
	}
	return out, nil
}

// VMMNaive computes the vector-matrix product through the naive read
// path (full matrix recompute plus transpose per call) — the reference
// oracle VMM is proven bit-identical against.
func (c *Crossbar) VMMNaive(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Size() != c.Rows {
		return nil, fmt.Errorf("crossbar: VMM input size %d, want %d", x.Size(), c.Rows)
	}
	eff, err := c.EffectiveWeightsNaive()
	if err != nil {
		return nil, err
	}
	return tensor.MatVec(eff.Transpose(), x), nil
}
