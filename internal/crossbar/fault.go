package crossbar

import (
	"fmt"
	"math"
	"sort"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/fault"
	"memlife/internal/tensor"
)

// SetFaultInjector attaches a fault injector to the array and applies
// its initial (manufacturing-defect) stuck faults to the devices. The
// injector must have been built for exactly Rows*Cols devices. Pass a
// nil injector to detach fault injection (existing stuck devices stay
// stuck — hard faults are permanent).
func (c *Crossbar) SetFaultInjector(inj *fault.Injector) error {
	if inj != nil && inj.N() != c.Rows*c.Cols {
		return fmt.Errorf("crossbar: injector built for %d devices, array has %d", inj.N(), c.Rows*c.Cols)
	}
	c.inj = inj
	c.tel.invalFaults.Inc()
	c.invalidate() // initial stuck faults pin device resistances
	if inj == nil {
		return nil
	}
	for idx, d := range c.devices {
		if k := inj.InitialFault(idx); k != device.FaultNone {
			d.SetFault(k)
		}
	}
	return nil
}

// FaultInjector returns the attached injector (nil when fault
// injection is off).
func (c *Crossbar) FaultInjector() *fault.Injector { return c.inj }

// IsStuck reports whether device (i, j) is permanently stuck.
func (c *Crossbar) IsStuck(i, j int) bool { return c.at(i, j).Stuck() }

// FaultMap returns a row-major snapshot of every device's fault state —
// the map a fault-aware controller maintains from write-verify
// feedback.
func (c *Crossbar) FaultMap() []device.FaultKind {
	out := make([]device.FaultKind, len(c.devices))
	for i, d := range c.devices {
		out[i] = d.Fault()
	}
	return out
}

// StuckCounts tallies the permanently stuck devices by polarity.
func (c *Crossbar) StuckCounts() (lrs, hrs int) {
	for _, d := range c.devices {
		switch d.Fault() {
		case device.FaultStuckLRS:
			lrs++
		case device.FaultStuckHRS:
			hrs++
		}
	}
	return lrs, hrs
}

// AdvanceFaults applies the aging-correlated wear-out hazard: every
// healthy device whose accumulated stress has crossed its drawn
// capacity becomes permanently stuck (heavily stressed devices fail
// first). It returns the number of newly stuck devices. A no-op
// without an injector or with wear-out disabled.
func (c *Crossbar) AdvanceFaults() int {
	if c.inj == nil {
		return 0
	}
	newly := 0
	for idx, d := range c.devices {
		if d.Stuck() {
			continue
		}
		if k := c.inj.WearOutFault(idx, d.Stress()); k != device.FaultNone {
			d.SetFault(k)
			// Sticking pins the resistance: patch exactly this cell of
			// the cached read path.
			c.patch(idx/c.Cols, idx%c.Cols)
			newly++
		}
	}
	return newly
}

// TracedUpperBoundsHealthy returns the estimated aged upper resistance
// bounds of the traced devices that are not stuck, sorted ascending —
// the candidate set the fault-aware range selection draws from: a
// stuck device's "bound" says nothing about the programmable range of
// its healthy neighbors. Falls back to all traced bounds when every
// traced device is stuck (the selection must still produce a range).
func (c *Crossbar) TracedUpperBoundsHealthy() []float64 {
	idx := c.TracedIndices()
	out := make([]float64, 0, len(idx))
	for _, ij := range idx {
		if c.IsStuck(ij[0], ij[1]) {
			continue
		}
		_, hi := c.AgedBounds(ij[0], ij[1])
		out = append(out, hi)
	}
	if len(out) == 0 {
		return c.TracedUpperBounds()
	}
	sort.Float64s(out)
	return out
}

// MapWeightsFaultAware programs the weight matrix like MapWeights but
// tolerates the array's stuck devices instead of fighting them:
//
//   - Stuck devices are skipped outright — no write pulses are wasted
//     on cells the fault map knows cannot move.
//   - Each column's stuck-device current error is compensated by the
//     column's healthy devices: a stuck cell contributes a fixed
//     effective weight, so the difference between that contribution
//     and the cell's intended weight is spread evenly over the
//     healthy cells of the same column (column currents sum, so the
//     correction is exact for uniform inputs and first-order for the
//     rest).
//
// Without any stuck devices it behaves exactly like MapWeights.
func (c *Crossbar) MapWeightsFaultAware(w *tensor.Tensor, rLo, rHi float64) MapStats {
	if w.Dim(0) != c.Rows || w.Dim(1) != c.Cols {
		panic(fmt.Sprintf("crossbar: weight shape %v, want [%d %d]", w.Shape(), c.Rows, c.Cols))
	}
	if rLo <= 0 || rHi <= rLo {
		panic(fmt.Sprintf("crossbar: invalid mapping range [%g, %g]", rLo, rHi))
	}
	wMin, wMax := w.MinMax()
	c.wMin, c.wMax = wMin, wMax
	c.rLo, c.rHi = rLo, rHi
	c.mapped = true
	c.tel.invalMap.Inc()
	c.invalidate() // ranges and (potentially) every healthy device changed

	conv := newMapConv(wMin, wMax, rLo, rHi)
	wd := w.Data()

	// Per-column compensation offsets for the healthy devices.
	comp := make([]float64, c.Cols)
	for j := 0; j < c.Cols; j++ {
		errSum := 0.0
		healthy := 0
		for i := 0; i < c.Rows; i++ {
			d := c.at(i, j)
			if d.Stuck() {
				errSum += conv.eff(d.Resistance()) - wd[i*c.Cols+j]
			} else {
				healthy++
			}
		}
		if healthy > 0 {
			comp[j] = -errSum / float64(healthy)
		}
	}

	var stats MapStats
	usable := usableAccum{track: c.tel.usableMean != nil}
	for idx, d := range c.devices {
		if d.Stuck() {
			stats.Skipped++
			continue
		}
		target := conv.target(wd[idx] + comp[idx%c.Cols])
		lo, hi := c.agedBoundsIdx(idx)
		usable.observe(c.params, lo, hi)
		res := d.Program(target, lo, hi)
		stats.Pulses += res.Pulses
		stats.Stress += res.Stress
		if res.Clipped {
			stats.Clipped++
		}
	}
	c.recordMapTel(stats, usable)
	return stats
}

// CampaignPoint is one stuck-rate operating point of a FaultCampaign:
// the realized fault population and the weight-representation error of
// a plain (fault-unaware) mapping versus the fault-aware mapping of
// the same matrix under the same faults.
type CampaignPoint struct {
	StuckRate          float64
	StuckLRS, StuckHRS int
	// PlainRMSE / AwareRMSE are the root-mean-square differences
	// between the target weights and the effective weights realized by
	// MapWeights / MapWeightsFaultAware. Note that column-current
	// compensation deliberately perturbs healthy weights, so the aware
	// elementwise RMSE can sit slightly ABOVE the plain one — that is
	// the cost side of the trade.
	PlainRMSE, AwareRMSE float64
	// PlainColErr / AwareColErr are the root-mean-square per-column
	// current errors (the column sums of effective minus target
	// weights — exactly what a VMM output sees under uniform inputs,
	// and what the compensation targets). This is the benefit side:
	// AwareColErr should sit well below PlainColErr once devices
	// stick.
	PlainColErr, AwareColErr float64
	// PlainStuckWrites counts write attempts the fault-unaware mapping
	// wasted on stuck devices.
	PlainStuckWrites int
}

// FaultCampaign sweeps stuck-device rates over fresh arrays carrying
// the weight matrix w: for each rate it injects the (nested,
// deterministic) stuck population, maps w once fault-unaware and once
// fault-aware onto identically faulted arrays, and reports the fault
// census plus both weight-representation errors. Read bursts are
// disabled during the campaign readback so the numbers measure mapping
// quality, not read noise.
func FaultCampaign(w *tensor.Tensor, p device.Params, m aging.Model, tempK float64, cfg fault.Config, rates []float64) ([]CampaignPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rows, cols := w.Dim(0), w.Dim(1)
	out := make([]CampaignPoint, 0, len(rates))
	for _, rate := range rates {
		pointCfg := cfg
		pointCfg.StuckRate = rate
		pointCfg.ReadBurstProb = 0
		pointCfg.TransientProb = 0

		rmse := func(aware bool) (float64, float64, CampaignPoint, error) {
			cb, err := New(rows, cols, p, m, tempK)
			if err != nil {
				return 0, 0, CampaignPoint{}, err
			}
			inj, err := fault.NewInjector(pointCfg, rows*cols, 0)
			if err != nil {
				return 0, 0, CampaignPoint{}, err
			}
			if err := cb.SetFaultInjector(inj); err != nil {
				return 0, 0, CampaignPoint{}, err
			}
			var stats MapStats
			if aware {
				stats = cb.MapWeightsFaultAware(w, p.RminFresh, p.RmaxFresh)
			} else {
				stats = cb.MapWeights(w, p.RminFresh, p.RmaxFresh)
			}
			eff, err := cb.EffectiveWeights()
			if err != nil {
				return 0, 0, CampaignPoint{}, err
			}
			sum := 0.0
			colErr := make([]float64, cols)
			for i, v := range eff.Data() {
				d := v - w.Data()[i]
				sum += d * d
				colErr[i%cols] += d
			}
			colSum := 0.0
			for _, e := range colErr {
				colSum += e * e
			}
			pt := CampaignPoint{StuckRate: rate, PlainStuckWrites: stats.Stuck}
			pt.StuckLRS, pt.StuckHRS = cb.StuckCounts()
			elemRMSE := math.Sqrt(sum / float64(len(eff.Data())))
			colRMSE := math.Sqrt(colSum / float64(cols))
			return elemRMSE, colRMSE, pt, nil
		}

		plain, plainCol, pt, err := rmse(false)
		if err != nil {
			return nil, err
		}
		awareRMSE, awareCol, _, err := rmse(true)
		if err != nil {
			return nil, err
		}
		pt.PlainRMSE, pt.AwareRMSE = plain, awareRMSE
		pt.PlainColErr, pt.AwareColErr = plainCol, awareCol
		out = append(out, pt)
	}
	return out, nil
}
