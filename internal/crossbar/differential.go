package crossbar

import (
	"fmt"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/tensor"
)

// DifferentialCrossbar implements the two-devices-per-weight mapping
// used by several crossbar systems as an alternative to the paper's
// single-device range mapping (eq. (4)): a weight w is realized as the
// difference of two conductances, w = (gPos - gNeg) * scale, with the
// column periphery subtracting the two partial currents.
//
// Differential mapping represents zero weights with both devices at
// minimum conductance, so quasi-normal weight distributions naturally
// draw small programming currents — at the price of twice the devices
// and a subtracting read-out. It is included as a comparison point for
// the paper's zero-hardware-cost approach (see the "differential"
// experiment).
type DifferentialCrossbar struct {
	Pos *Crossbar
	Neg *Crossbar

	// scale converts conductance difference to weight value.
	scale  float64
	mapped bool
}

// NewDifferential builds a differential array of rows x cols weight
// cells (2*rows*cols devices).
func NewDifferential(rows, cols int, p device.Params, m aging.Model, tempK float64) (*DifferentialCrossbar, error) {
	pos, err := New(rows, cols, p, m, tempK)
	if err != nil {
		return nil, err
	}
	neg, err := New(rows, cols, p, m, tempK)
	if err != nil {
		return nil, err
	}
	return &DifferentialCrossbar{Pos: pos, Neg: neg}, nil
}

// MapWeights programs w into the pair: positive weights raise the Pos
// device above gMin, negative weights raise the Neg device, and the
// magnitude scale is set by the largest |w| across the matrix. Both
// devices of a cell are programmed within their own aged windows.
func (d *DifferentialCrossbar) MapWeights(w *tensor.Tensor) MapStats {
	if w.Dim(0) != d.Pos.Rows || w.Dim(1) != d.Pos.Cols {
		panic(fmt.Sprintf("crossbar: differential weight shape %v, want [%d %d]", w.Shape(), d.Pos.Rows, d.Pos.Cols))
	}
	p := d.Pos.Params()
	gMin, gMax := p.GminFresh(), p.GmaxFresh()
	absMax := w.AbsMax()
	if absMax == 0 {
		absMax = 1
	}
	d.scale = absMax / (gMax - gMin)
	d.mapped = true
	// Record mapping state on both halves so EffectiveWeights-style
	// readback has the ranges it needs. Each half maps magnitude
	// [0, absMax] onto the full conductance range.
	var stats MapStats
	for i := 0; i < d.Pos.Rows; i++ {
		for j := 0; j < d.Pos.Cols; j++ {
			v := w.At(i, j)
			posMag, negMag := 0.0, 0.0
			if v >= 0 {
				posMag = v
			} else {
				negMag = -v
			}
			for _, half := range []struct {
				cb  *Crossbar
				mag float64
			}{{d.Pos, posMag}, {d.Neg, negMag}} {
				g := gMin + half.mag/absMax*(gMax-gMin)
				target := 1 / g
				lo, hi := half.cb.AgedBounds(i, j)
				res := half.cb.Device(i, j).Program(target, lo, hi)
				stats.Pulses += res.Pulses
				stats.Stress += res.Stress
				if res.Clipped {
					stats.Clipped++
				}
			}
		}
	}
	return stats
}

// EffectiveWeights reads back the weights the pair implements. It
// returns ErrNotMapped before the first MapWeights.
func (d *DifferentialCrossbar) EffectiveWeights() (*tensor.Tensor, error) {
	if !d.mapped {
		return nil, ErrNotMapped
	}
	out := tensor.New(d.Pos.Rows, d.Pos.Cols)
	for i := 0; i < d.Pos.Rows; i++ {
		for j := 0; j < d.Pos.Cols; j++ {
			gp := d.Pos.at(i, j).Conductance()
			gn := d.Neg.at(i, j).Conductance()
			out.Set((gp-gn)*d.scale, i, j)
		}
	}
	return out, nil
}

// VMM computes the differential analog product: the Pos column currents
// minus the Neg column currents, scaled back to weight units. It
// returns an error on an input size mismatch or before MapWeights.
func (d *DifferentialCrossbar) VMM(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Size() != d.Pos.Rows {
		return nil, fmt.Errorf("crossbar: differential VMM input size %d, want %d", x.Size(), d.Pos.Rows)
	}
	eff, err := d.EffectiveWeights()
	if err != nil {
		return nil, err
	}
	return tensor.MatVec(eff.Transpose(), x), nil
}

// TotalStress sums the accumulated stress over both halves.
func (d *DifferentialCrossbar) TotalStress() float64 {
	return d.Pos.TotalStress() + d.Neg.TotalStress()
}

// TotalPulses sums the pulse counts over both halves.
func (d *DifferentialCrossbar) TotalPulses() int64 {
	return d.Pos.TotalPulses() + d.Neg.TotalPulses()
}

// MeanRelConductance reports where the pair's devices sit in the
// conductance range on average — the aging-relevant statistic compared
// against single-device mapping in the "differential" experiment.
func (d *DifferentialCrossbar) MeanRelConductance() float64 {
	p := d.Pos.Params()
	gMin, gMax := p.GminFresh(), p.GmaxFresh()
	total, n := 0.0, 0
	for _, cb := range []*Crossbar{d.Pos, d.Neg} {
		for i := 0; i < cb.Rows; i++ {
			for j := 0; j < cb.Cols; j++ {
				total += (cb.at(i, j).Conductance() - gMin) / (gMax - gMin)
				n++
			}
		}
	}
	return total / float64(n)
}

// Drift applies relative read-disturb drift to both halves.
func (d *DifferentialCrossbar) Drift(sigma float64, rng *tensor.RNG) {
	d.Pos.Drift(sigma, rng)
	d.Neg.Drift(sigma, rng)
}
