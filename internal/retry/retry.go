// Package retry is the one shared retry helper of the repo: capped
// exponential backoff with deterministic seeded jitter, aware of
// context cancellation and of permanent (non-retryable) errors.
//
// Determinism matters here for the same reason it matters everywhere
// else in the simulator: two runs of the same configuration must make
// the same decisions. The jitter stream is a pure function of
// (Policy.Seed, attempt), derived with the same splitmix64 mix the
// campaign engine uses for shard seeds — no global RNG, no wall clock.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy describes one retry budget. The zero policy performs exactly
// one attempt with no backoff, so an unconfigured policy degrades to
// "just call the function".
type Policy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 1 mean 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized away
	// (0..1): the effective delay is delay * (1 - Jitter*u) with
	// u in [0,1) drawn deterministically from Seed and the attempt
	// number. 0 disables jitter.
	Jitter float64
	// Seed roots the deterministic jitter stream. Two policies with the
	// same seed produce identical delay sequences.
	Seed int64
}

// Attempts returns the effective attempt budget (>= 1).
func (p Policy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff to sleep after failed attempt number
// attempt (0-based: Delay(0) precedes the first retry). It is a pure
// function of the policy, so schedulers can pre-compute or report it
// (e.g. as a Retry-After hint) without consuming randomness.
func (p Policy) Delay(attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		u := unit(p.Seed, attempt)
		d = time.Duration(float64(d) * (1 - j*u))
	}
	return d
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately instead of burning the
// remaining attempts. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs fn under the policy: attempt, and on failure back off
// (Delay) and attempt again until the budget is spent, fn succeeds,
// fn returns a Permanent error, or ctx is cancelled. The returned
// error is the last attempt's (unwrapped from its Permanent marker),
// or the context error when cancellation cut the loop short.
func (p Policy) Do(ctx context.Context, fn func() error) error {
	attempts := p.Attempts()
	var last error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = fn()
		if last == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(last, &pe) {
			return pe.err
		}
		if errors.Is(last, context.Canceled) || errors.Is(last, context.DeadlineExceeded) {
			return last
		}
		if i == attempts-1 {
			break
		}
		if err := sleep(ctx, p.Delay(i)); err != nil {
			return fmt.Errorf("%w (last attempt: %v)", err, last)
		}
	}
	return last
}

// sleep waits d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// unit returns a deterministic value in [0,1) for (seed, n) using a
// splitmix64 mix — the same generator family the campaign engine uses
// for shard seeds, chosen for well-separated streams at neighboring n.
func unit(seed int64, n int) float64 {
	x := uint64(seed) + (uint64(n)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
