package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	errBoom := errors.New("boom")
	err := Policy{}.Do(context.Background(), func() error { calls++; return errBoom })
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	calls := 0
	errBoom := errors.New("boom")
	p := Policy{MaxAttempts: 4, BaseDelay: time.Microsecond}
	err := p.Do(context.Background(), func() error { calls++; return errBoom })
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	errBad := errors.New("bad spec")
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	err := p.Do(context.Background(), func() error { calls++; return Permanent(errBad) })
	if !errors.Is(err, errBad) {
		t.Fatalf("err = %v, want %v", err, errBad)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if IsPermanent(err) {
		t.Fatal("Do should unwrap the Permanent marker")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
	if !IsPermanent(Permanent(errBad)) {
		t.Fatal("IsPermanent(Permanent(err)) must be true")
	}
}

func TestContextCancelCutsLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 100, BaseDelay: time.Hour}
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func() error { calls++; return errors.New("transient") })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled during first backoff)", calls)
	}
}

func TestContextErrorFromFnNotRetried(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	err := p.Do(context.Background(), func() error { calls++; return context.Canceled })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancellation is not transient)", calls)
	}
}

func TestDelayDoublesAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 45, 45}
	for i, w := range want {
		if got := p.Delay(i); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if got := (Policy{}).Delay(3); got != 0 {
		t.Fatalf("zero-policy Delay = %v, want 0", got)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	a := Policy{BaseDelay: time.Second, MaxDelay: time.Second, Jitter: 0.5, Seed: 42}
	b := Policy{BaseDelay: time.Second, MaxDelay: time.Second, Jitter: 0.5, Seed: 42}
	c := Policy{BaseDelay: time.Second, MaxDelay: time.Second, Jitter: 0.5, Seed: 43}
	diff := false
	for i := 0; i < 16; i++ {
		da, db, dc := a.Delay(i), b.Delay(i), c.Delay(i)
		if da != db {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, da, db)
		}
		if da > time.Second || da < time.Second/2 {
			t.Fatalf("Delay(%d) = %v outside [500ms, 1s] for jitter 0.5", i, da)
		}
		if da != dc {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter streams")
	}
}
