package analysis

import (
	"math"
	"testing"
)

func TestKSIdenticalSamplesNearZero(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(a, a); d > 1e-12 {
		t.Fatalf("KS of identical samples = %g, want 0", d)
	}
}

func TestKSDisjointSamplesIsOne(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("KS of disjoint samples = %g, want 1", d)
	}
}

func TestKSSymmetric(t *testing.T) {
	a := []float64{1, 3, 5, 7}
	b := []float64{2, 3, 8}
	if KSStatistic(a, b) != KSStatistic(b, a) {
		t.Fatal("KS must be symmetric")
	}
}

func TestKSKnownValue(t *testing.T) {
	// a: CDF steps at 1,2; b: CDF steps at 2,3. Max gap is 0.5 at x in
	// [1,2).
	a := []float64{1, 2}
	b := []float64{2, 3}
	if d := KSStatistic(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %g, want 0.5", d)
	}
}

func TestKSShiftSensitivity(t *testing.T) {
	// A shifted copy of the same distribution scores higher the larger
	// the shift.
	base := make([]float64, 100)
	small := make([]float64, 100)
	large := make([]float64, 100)
	for i := range base {
		v := float64(i) / 100
		base[i] = v
		small[i] = v + 0.05
		large[i] = v + 0.5
	}
	if KSStatistic(base, small) >= KSStatistic(base, large) {
		t.Fatal("larger shifts must score larger KS")
	}
}

func TestKSEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sample")
		}
	}()
	KSStatistic(nil, []float64{1})
}
