package analysis

import "math"

// MeanCI holds the mean of a sample together with its dispersion and
// the 95% confidence half-width of the mean — the aggregate the
// multi-seed campaign runs report per metric.
type MeanCI struct {
	N    int
	Mean float64
	// Std is the sample standard deviation (n-1 denominator); 0 for a
	// single observation.
	Std float64
	// CI95 is the half-width of the two-sided 95% confidence interval
	// of the mean (Student-t); 0 for a single observation.
	CI95 float64
}

// MeanCI95 computes the sample mean, sample standard deviation and the
// 95% confidence half-width of the mean. It panics on empty input; a
// single observation yields Std = CI95 = 0.
//
// It is a thin wrapper over the Online streaming accumulator: buffered
// and streaming aggregation share one implementation, so their results
// are bit-identical by construction (see Online).
func MeanCI95(data []float64) MeanCI {
	if len(data) == 0 {
		panic("analysis: MeanCI95 of empty data")
	}
	var o Online
	for _, v := range data {
		o.Add(v)
	}
	return o.MeanCI()
}

// tCrit95 returns the two-sided 95% critical value of the Student-t
// distribution with df degrees of freedom (table for small df, the
// normal limit beyond it).
func tCrit95(df int) float64 {
	// Standard two-sided 0.05 critical values, df = 1..30.
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df < 1:
		return math.NaN()
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
