package analysis

import (
	"math"
	"testing"
)

func TestMeanCI95(t *testing.T) {
	// 0..4: mean 2, sample std sqrt(2.5), df=4 -> t=2.776.
	got := MeanCI95([]float64{0, 1, 2, 3, 4})
	if got.N != 5 || got.Mean != 2 {
		t.Fatalf("N/mean wrong: %+v", got)
	}
	wantStd := math.Sqrt(2.5)
	if math.Abs(got.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %g, want %g", got.Std, wantStd)
	}
	wantCI := 2.776 * wantStd / math.Sqrt(5)
	if math.Abs(got.CI95-wantCI) > 1e-9 {
		t.Fatalf("ci95 = %g, want %g", got.CI95, wantCI)
	}
}

func TestMeanCI95SingleObservation(t *testing.T) {
	got := MeanCI95([]float64{7})
	if got.N != 1 || got.Mean != 7 || got.Std != 0 || got.CI95 != 0 {
		t.Fatalf("single observation must have zero spread: %+v", got)
	}
}

func TestMeanCI95PanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MeanCI95 must panic on empty data")
		}
	}()
	MeanCI95(nil)
}

func TestTCritMonotone(t *testing.T) {
	// Critical values shrink towards the normal 1.96 limit.
	prev := math.Inf(1)
	for _, df := range []int{1, 2, 5, 10, 30, 40, 60, 120, 1000} {
		c := tCrit95(df)
		if c > prev {
			t.Fatalf("tCrit95 not non-increasing at df=%d: %g > %g", df, c, prev)
		}
		prev = c
	}
	if got := tCrit95(1000); got != 1.960 {
		t.Fatalf("large-df critical value = %g, want 1.960", got)
	}
	if !math.IsNaN(tCrit95(0)) {
		t.Fatal("df<1 must be NaN")
	}
}
