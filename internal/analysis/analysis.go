// Package analysis provides the histogram, series and table tooling the
// experiment drivers use to reproduce the paper's figures as printable
// data (weight/resistance/conductance distributions, tuning-iteration
// trends, aging curves).
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram bins data into the given number of equal-width bins over
// [min(data), max(data)]. It panics on empty data or bins < 1.
func NewHistogram(data []float64, bins int) Histogram {
	if len(data) == 0 {
		panic("analysis: histogram of empty data")
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return NewHistogramRange(data, lo, hi, bins)
}

// NewHistogramRange bins data over [lo, hi]; values outside the range
// are clamped into the edge bins. hi may equal lo (single-bin spike).
func NewHistogramRange(data []float64, lo, hi float64, bins int) Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("analysis: bins must be >= 1, got %d", bins))
	}
	if hi < lo {
		panic(fmt.Sprintf("analysis: histogram range inverted [%g, %g]", lo, hi))
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, v := range data {
		var idx int
		if width > 0 {
			idx = int((v - lo) / width)
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h.Counts[idx]++
		h.N++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Fractions returns each bin's share of the total count.
func (h Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}

// ModeBin returns the index of the fullest bin (first of ties).
func (h Histogram) ModeBin() int {
	best, bi := -1, 0
	for i, c := range h.Counts {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

// MassBelow returns the fraction of samples in bins whose center is
// below x.
func (h Histogram) MassBelow(x float64) float64 {
	if h.N == 0 {
		return 0
	}
	total := 0
	for i, c := range h.Counts {
		if h.BinCenter(i) < x {
			total += c
		}
	}
	return float64(total) / float64(h.N)
}

// Render draws the histogram as ASCII bars, one row per bin.
func (h Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "%12.5g | %s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Series is one named data series (a figure curve).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// AddPoint appends one (x, y) sample.
func (s *Series) AddPoint(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Render prints the series as aligned x/y rows.
func (s Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, "%14.6g %14.6g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Median, Max   float64
	P05, P25, P75, P95 float64
}

// Summarize computes order statistics. It panics on empty input.
func Summarize(data []float64) Summary {
	if len(data) == 0 {
		panic("analysis: summarize empty data")
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	s := Summary{N: len(sorted), Min: sorted[0], Max: sorted[len(sorted)-1]}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	varSum := 0.0
	for _, v := range sorted {
		d := v - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(len(sorted)))
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted data by
// linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("analysis: quantile of empty data")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Table renders rows with aligned columns for experiment reports.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
