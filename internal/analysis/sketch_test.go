package analysis

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile mirrors Sketch.Quantile's rank convention on a sorted
// copy of the sample: index ceil(q*n)-1, clamped.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestSketchErrorBound asserts the advertised guarantee: for values in
// the sketch's range, every quantile estimate is within
// SketchRelError of the exact order statistic, across distributions
// with very different shapes.
func TestSketchErrorBound(t *testing.T) {
	bound := SketchRelError() + 1e-12
	qs := []float64{0.01, 0.1, 0.5, 0.9, 0.99, 1}
	gens := map[string]func(*rand.Rand) float64{
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 3) },
		"uniform":   func(r *rand.Rand) float64 { return 1 + 99*r.Float64() },
		"signed":    func(r *rand.Rand) float64 { return r.NormFloat64() * 1e3 },
		"heavytail": func(r *rand.Rand) float64 { return math.Pow(r.Float64()+1e-6, -2) },
	}
	for name, gen := range gens {
		rng := rand.New(rand.NewSource(11))
		s := NewSketch()
		data := make([]float64, 20000)
		for i := range data {
			data[i] = gen(rng)
			s.Add(data[i])
		}
		sort.Float64s(data)
		for _, q := range qs {
			exact := exactQuantile(data, q)
			got := s.Quantile(q)
			relErr := math.Abs(got-exact) / math.Abs(exact)
			if math.Abs(exact) < sketchMinAbs {
				relErr = math.Abs(got - exact)
			}
			if relErr > bound {
				t.Errorf("%s q=%v: estimate %v vs exact %v (rel err %.4f > bound %.4f)",
					name, q, got, exact, relErr, bound)
			}
		}
	}
}

// TestSketchOrderIndependent: integer-count state means feeding the
// same multiset in any order yields identical quantiles.
func TestSketchOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	a, b := NewSketch(), NewSketch()
	for _, v := range data {
		a.Add(v)
	}
	for i := len(data) - 1; i >= 0; i-- {
		b.Add(data[i])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%v: order-dependent quantile: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestSketchZeroAndEmpty(t *testing.T) {
	s := NewSketch()
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty sketch quantile: got %v, want 0", got)
	}
	s.Add(0)
	s.Add(1e-300) // below range: exact zero bucket
	if got := s.Quantile(1); got != 0 {
		t.Fatalf("zero-bucket quantile: got %v, want 0", got)
	}
	if s.N() != 2 {
		t.Fatalf("N: got %d, want 2", s.N())
	}
}

func TestSketchAddNMatchesRepeatedAdd(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	a.AddN(7.5, 1000)
	for i := 0; i < 1000; i++ {
		b.Add(7.5)
	}
	if a.N() != b.N() || a.Quantile(0.5) != b.Quantile(0.5) {
		t.Fatalf("AddN diverges from repeated Add: n %d vs %d", a.N(), b.N())
	}
	a.AddN(1, -5) // ignored
	a.AddN(math.NaN(), 3)
	if a.N() != 1000 {
		t.Fatalf("negative/NaN AddN must be ignored; n=%d", a.N())
	}
}

// TestSketchAddZeroAlloc pins the hot path at zero allocations — the
// property the campaign streaming aggregator's memory bound rests on.
func TestSketchAddZeroAlloc(t *testing.T) {
	s := NewSketch()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(3.7)
		s.AddN(-12.5, 7)
	})
	if allocs != 0 {
		t.Fatalf("Sketch.Add allocates: %v allocs/op", allocs)
	}
}
