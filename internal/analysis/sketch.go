package analysis

import "math"

// Quantile-sketch geometry. Buckets are geometric with ratio
// sketchGamma over |v| in [sketchMinAbs, sketchMaxAbs), mirrored for
// negative values, plus one exact bucket for |v| < sketchMinAbs
// (reported as 0). Reporting the geometric midpoint of a bucket bounds
// the relative error of any in-range quantile estimate by
// sqrt(sketchGamma) - 1 (≈ 2.47%).
const (
	sketchGamma  = 1.05
	sketchMinAbs = 1e-12
	sketchMaxAbs = 1e15
)

var (
	sketchLnGamma = math.Log(sketchGamma)
	// sketchBuckets covers [minAbs, maxAbs): ceil(ln(max/min)/ln(gamma)).
	sketchBuckets = int(math.Ceil(math.Log(sketchMaxAbs/sketchMinAbs) / sketchLnGamma))
)

// SketchRelError is the guaranteed relative error bound of Quantile for
// values with |v| in [1e-12, 1e15).
func SketchRelError() float64 { return math.Sqrt(sketchGamma) - 1 }

// Sketch is a fixed-bucket streaming quantile sketch: geometric
// (HDR-histogram style) buckets with integer counts. Memory is
// O(buckets) — independent of the number of observations — and because
// the state is integer counts, merged or reordered feeds produce
// identical quantiles: the sketch is deterministic by construction.
//
// The zero value is not ready for use; call NewSketch.
type Sketch struct {
	pos  []int64 // counts for v >= sketchMinAbs
	neg  []int64 // counts for v <= -sketchMinAbs
	zero int64   // |v| < sketchMinAbs
	n    int64
}

// NewSketch returns an empty sketch (~2 x 1300 buckets of int64).
func NewSketch() *Sketch {
	return &Sketch{
		pos: make([]int64, sketchBuckets),
		neg: make([]int64, sketchBuckets),
	}
}

// bucketIdx maps |v| >= sketchMinAbs to its bucket, clamping
// out-of-range magnitudes to the extreme buckets.
func bucketIdx(abs float64) int {
	i := int(math.Floor(math.Log(abs/sketchMinAbs) / sketchLnGamma))
	if i < 0 {
		return 0
	}
	if i >= sketchBuckets {
		return sketchBuckets - 1
	}
	return i
}

// bucketMid returns the geometric midpoint of bucket i.
func bucketMid(i int) float64 {
	return sketchMinAbs * math.Pow(sketchGamma, float64(i)+0.5)
}

// Add records one observation. NaN is ignored.
func (s *Sketch) Add(v float64) { s.AddN(v, 1) }

// AddN records count observations of value v in O(1); count <= 0 and
// NaN are ignored.
func (s *Sketch) AddN(v float64, count int64) {
	if count <= 0 || math.IsNaN(v) {
		return
	}
	s.n += count
	switch {
	case v >= sketchMinAbs:
		s.pos[bucketIdx(v)] += count
	case v <= -sketchMinAbs:
		s.neg[bucketIdx(-v)] += count
	default:
		s.zero += count
	}
}

// N returns the number of observations recorded.
func (s *Sketch) N() int64 { return s.n }

// Quantile estimates the q-quantile (q in [0, 1]) using the same rank
// convention as sorting the sample and indexing ceil(q*n)-1 (clamped):
// the estimate lands in the same bucket as that order statistic, so
// its relative error is bounded by SketchRelError. Returns 0 for an
// empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	// Walk the value axis in ascending order: negatives from most
	// negative (largest magnitude) down, then zero, then positives.
	var cum int64
	for i := sketchBuckets - 1; i >= 0; i-- {
		if c := s.neg[i]; c > 0 {
			cum += c
			if cum >= rank {
				return -bucketMid(i)
			}
		}
	}
	cum += s.zero
	if cum >= rank {
		return 0
	}
	for i := 0; i < sketchBuckets; i++ {
		if c := s.pos[i]; c > 0 {
			cum += c
			if cum >= rank {
				return bucketMid(i)
			}
		}
	}
	// Unreachable: cum == n >= rank by the time the walk finishes.
	return bucketMid(sketchBuckets - 1)
}
