package analysis

import (
	"math"
	"math/rand"
	"testing"
)

// ulpDiff returns the distance in representable float64 steps between
// a and b (0 means bit-identical).
func ulpDiff(a, b float64) uint64 {
	ia, ib := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	// Map to a monotone integer line (two's-complement trick for the
	// sign bit) so adjacent floats differ by 1.
	if ia < 0 {
		ia = math.MinInt64 - ia
	}
	if ib < 0 {
		ib = math.MinInt64 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// TestOnlineMatchesBufferedWithinOneULP is the streaming-equivalence
// contract of the issue: the online mean/CI95 must match the buffered
// analysis.MeanCI95 to within 1 ulp on randomized inputs. Because
// MeanCI95 is implemented on the Online accumulator, the match is in
// fact exact (0 ulps) — asserted field by field.
func TestOnlineMatchesBufferedWithinOneULP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{1, 2, 3, 7, 64, 1000, 4096}
	scales := []float64{1, 1e-9, 1e9}
	for trial := 0; trial < 200; trial++ {
		n := sizes[trial%len(sizes)]
		scale := scales[trial%len(scales)]
		data := make([]float64, n)
		for i := range data {
			// Mix signs and magnitudes, with occasional offsets that
			// stress catastrophic cancellation in naive variance.
			data[i] = (rng.NormFloat64() + 100*float64(trial%3)) * scale
		}
		var o Online
		for _, v := range data {
			o.Add(v)
		}
		buf := MeanCI95(data)
		str := o.MeanCI()
		if buf.N != str.N {
			t.Fatalf("trial %d: N mismatch: buffered %d streaming %d", trial, buf.N, str.N)
		}
		for _, c := range []struct {
			name     string
			buf, str float64
		}{
			{"mean", buf.Mean, str.Mean},
			{"std", buf.Std, str.Std},
			{"ci95", buf.CI95, str.CI95},
		} {
			if d := ulpDiff(c.buf, c.str); d > 1 {
				t.Errorf("trial %d (n=%d): %s differs by %d ulps: buffered %v streaming %v",
					trial, n, c.name, d, c.buf, c.str)
			}
		}
	}
}

func TestOnlineMinMax(t *testing.T) {
	var o Online
	for _, v := range []float64{3, -1, 4, -1, 5} {
		o.Add(v)
	}
	if o.N() != 5 || o.Min() != -1 || o.Max() != 5 {
		t.Fatalf("got n=%d min=%v max=%v, want 5/-1/5", o.N(), o.Min(), o.Max())
	}
}

func TestOnlineSingleObservation(t *testing.T) {
	var o Online
	o.Add(42)
	ci := o.MeanCI()
	if ci.N != 1 || ci.Mean != 42 || ci.Std != 0 || ci.CI95 != 0 {
		t.Fatalf("single observation: got %+v", ci)
	}
}

func TestOnlineEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MeanCI of an empty accumulator must panic")
		}
	}()
	var o Online
	o.MeanCI()
}
