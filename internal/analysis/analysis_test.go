package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasicBinning(t *testing.T) {
	h := NewHistogramRange([]float64{0, 0.1, 0.9, 1.0}, 0, 1, 2)
	if h.N != 4 {
		t.Fatalf("N = %d, want 4", h.N)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 2 {
		t.Fatalf("counts = %v, want [2 2]", h.Counts)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogramRange([]float64{-5, 0.5, 99}, 0, 1, 4)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("outliers must land in edge bins: %v", h.Counts)
	}
}

func TestHistogramAutoRange(t *testing.T) {
	h := NewHistogram([]float64{2, 4, 6}, 2)
	if h.Lo != 2 || h.Hi != 6 {
		t.Fatalf("auto range = [%g, %g], want [2, 6]", h.Lo, h.Hi)
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	h := NewHistogramRange([]float64{3, 3, 3}, 3, 3, 4)
	if h.Counts[0] != 3 {
		t.Fatalf("all-equal data must land in bin 0: %v", h.Counts)
	}
}

func TestHistogramEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty data")
		}
	}()
	NewHistogram(nil, 4)
}

func TestBinCenterAndFractions(t *testing.T) {
	h := NewHistogramRange([]float64{0.25, 0.25, 0.75}, 0, 1, 2)
	if h.BinCenter(0) != 0.25 || h.BinCenter(1) != 0.75 {
		t.Fatalf("bin centers = %g, %g", h.BinCenter(0), h.BinCenter(1))
	}
	f := h.Fractions()
	if math.Abs(f[0]-2.0/3) > 1e-12 || math.Abs(f[1]-1.0/3) > 1e-12 {
		t.Fatalf("fractions = %v", f)
	}
}

func TestModeBinAndMassBelow(t *testing.T) {
	h := NewHistogramRange([]float64{0.1, 0.1, 0.1, 0.9}, 0, 1, 2)
	if h.ModeBin() != 0 {
		t.Fatalf("mode bin = %d, want 0", h.ModeBin())
	}
	if got := h.MassBelow(0.5); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("mass below 0.5 = %g, want 0.75", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogramRange([]float64{0.1, 0.9, 0.9}, 0, 1, 2)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Fatal("render must draw bars")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatal("render must emit one row per bin")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "iters"
	s.AddPoint(1, 10)
	s.AddPoint(2, 20)
	if len(s.X) != 2 || s.Y[1] != 20 {
		t.Fatalf("series = %+v", s)
	}
	out := s.Render()
	if !strings.Contains(out, "# iters") || !strings.Contains(out, "20") {
		t.Fatalf("render output missing content:\n%s", out)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt(2)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %g, want %g", s.Std, want)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Fatalf("quartiles = %g/%g, want 2/4", s.P25, s.P75)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Fatalf("median of [0,10] = %g, want 5", got)
	}
	if Quantile(sorted, 0) != 0 || Quantile(sorted, 1) != 10 {
		t.Fatal("extreme quantiles must return extremes")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Fatal("single-element quantile")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "acc"}, [][]string{
		{"T+T", "0.81"},
		{"ST+AT", "0.80"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table must have header, separator and 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "acc") {
		t.Fatalf("header malformed: %q", lines[0])
	}
	if !strings.Contains(lines[3], "ST+AT") {
		t.Fatalf("row content missing: %q", lines[3])
	}
}
