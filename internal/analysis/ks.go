package analysis

import "sort"

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum vertical distance between the empirical CDFs of a and b, in
// [0, 1]. The experiments use it to quantify how far skewed training
// moves the weight/resistance distributions from their conventional
// shapes (Fig. 3 vs Fig. 6). Panics on empty inputs.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("analysis: KS statistic of empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	maxD := 0.0
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		// Advance past every sample equal to the smaller current
		// value on BOTH sides, so ties move the two CDFs together.
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		d := float64(i)/float64(len(as)) - float64(j)/float64(len(bs))
		if d < 0 {
			d = -d
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}
