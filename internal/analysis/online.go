package analysis

import "math"

// Online is a constant-memory streaming accumulator for the same
// statistics MeanCI95 computes from a buffered sample: mean, sample
// standard deviation, 95% confidence half-width, and the observed
// range.
//
// The mean is a plain running sum divided by n — the exact summation
// MeanCI95 performs — and the dispersion is Welford's online M2
// recurrence. MeanCI95 itself is implemented on top of Online, so
// feeding the same values in the same order through either path yields
// bit-identical results: this is what lets the campaign engine's
// streaming aggregation replace the buffered one without changing a
// single output byte.
//
// The zero value is an empty accumulator, ready for Add.
type Online struct {
	n    int
	sum  float64 // running sum; mean = sum/n, matching two-pass order
	mean float64 // Welford running mean (drives m2 only)
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(v float64) {
	o.n++
	o.sum += v
	d := v - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (v - o.mean)
	if o.n == 1 {
		o.min, o.max = v, v
		return
	}
	if v < o.min {
		o.min = v
	}
	if v > o.max {
		o.max = v
	}
}

// N returns the number of observations folded in so far.
func (o *Online) N() int { return o.n }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 { return o.max }

// MeanCI returns the accumulated statistics. It panics when no
// observation has been added; a single observation yields
// Std = CI95 = 0, mirroring MeanCI95.
func (o *Online) MeanCI() MeanCI {
	if o.n == 0 {
		panic("analysis: MeanCI of empty Online accumulator")
	}
	out := MeanCI{N: o.n, Mean: o.sum / float64(o.n)}
	if o.n < 2 {
		return out
	}
	out.Std = math.Sqrt(o.m2 / float64(o.n-1))
	out.CI95 = tCrit95(o.n-1) * out.Std / math.Sqrt(float64(o.n))
	return out
}
