package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Direct unit tests for the checkpoint journal, complementing the
// engine-level resume tests in campaign_test.go: these pin the exact
// tolerance rules of loadCheckpoint (missing file, blank lines, torn
// tail vs interior corruption, foreign fingerprints) and the append
// discipline of the journal writer.

func writeRecords(t *testing.T, path string, recs ...checkpointRecord) {
	t.Helper()
	var b []byte
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, line...)
		b = append(b, '\n')
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func testRecord(fp string, idx int) checkpointRecord {
	return checkpointRecord{
		Fingerprint: fp,
		Index:       idx,
		Experiment:  "alpha",
		SeedIndex:   idx,
		Seed:        ShardSeed(42, idx),
		Metrics:     Metrics{"value": float64(idx)},
		ElapsedMS:   5,
	}
}

func TestLoadCheckpointMissingFileIsEmpty(t *testing.T) {
	done, err := loadCheckpoint(filepath.Join(t.TempDir(), "absent.jsonl"), "fp")
	if err != nil {
		t.Fatalf("missing checkpoint must read as empty, got %v", err)
	}
	if len(done) != 0 {
		t.Fatalf("missing checkpoint must yield no shards, got %d", len(done))
	}
}

func TestLoadCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeRecords(t, path, testRecord("fp", 0), testRecord("fp", 3))
	done, err := loadCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("want 2 shards, got %d", len(done))
	}
	sr, ok := done[3]
	if !ok {
		t.Fatal("shard 3 missing from restored map")
	}
	if sr.Shard.Experiment != "alpha" || sr.Shard.SeedIndex != 3 || sr.Shard.Seed != ShardSeed(42, 3) {
		t.Fatalf("restored shard identity corrupted: %+v", sr.Shard)
	}
	if sr.Metrics["value"] != 3 {
		t.Fatalf("restored metrics corrupted: %+v", sr.Metrics)
	}
}

func TestLoadCheckpointSkipsBlankLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	line, err := json.Marshal(testRecord("fp", 1))
	if err != nil {
		t.Fatal(err)
	}
	content := "\n" + string(line) + "\n\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	done, err := loadCheckpoint(path, "fp")
	if err != nil {
		t.Fatalf("blank lines must be skipped, got %v", err)
	}
	if len(done) != 1 {
		t.Fatalf("want 1 shard, got %d", len(done))
	}
}

// TestLoadCheckpointTornTailTolerated: a malformed FINAL line is the
// signature of a process killed mid-append; the preceding records must
// survive and the torn shard simply re-runs.
func TestLoadCheckpointTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeRecords(t, path, testRecord("fp", 0), testRecord("fp", 1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fingerprint":"fp","index":2,"metr`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	done, err := loadCheckpoint(path, "fp")
	if err != nil {
		t.Fatalf("torn final line must be tolerated, got %v", err)
	}
	if len(done) != 2 {
		t.Fatalf("want the 2 whole records, got %d", len(done))
	}
	if _, ok := done[2]; ok {
		t.Fatal("the torn record must not be restored")
	}
}

// TestLoadCheckpointInteriorCorruptionFatal: a malformed line FOLLOWED
// by a valid one cannot be a torn append — the file is corrupt and
// resuming from it silently would drop completed work.
func TestLoadCheckpointInteriorCorruptionFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	line0, err := json.Marshal(testRecord("fp", 0))
	if err != nil {
		t.Fatal(err)
	}
	line2, err := json.Marshal(testRecord("fp", 2))
	if err != nil {
		t.Fatal(err)
	}
	content := string(line0) + "\n{corrupt}\n" + string(line2) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path, "fp"); err == nil {
		t.Fatal("interior corruption must be an error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error must name the corrupt line, got %v", err)
	}
}

// TestLoadCheckpointForeignFingerprintFatal: any record from another
// spec poisons the journal, even when earlier records match.
func TestLoadCheckpointForeignFingerprintFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeRecords(t, path, testRecord("fp", 0), testRecord("other", 1))
	if _, err := loadCheckpoint(path, "fp"); err == nil {
		t.Fatal("foreign fingerprint must be an error")
	} else if !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("error must explain the mismatch, got %v", err)
	}
}

// TestJournalAppendDurable: every append lands as one whole JSON line
// readable back through loadCheckpoint — without Close — because each
// record is written and synced before append returns (a killed process
// loses at most the record being written).
func TestJournalAppendDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 3; i++ {
		if err := j.append(testRecord("fp", i)); err != nil {
			t.Fatal(err)
		}
		// Read back through a fresh descriptor while the journal is
		// still open, as a resuming process would after a kill.
		done, err := loadCheckpoint(path, "fp")
		if err != nil {
			t.Fatal(err)
		}
		if len(done) != i+1 {
			t.Fatalf("after %d appends: restored %d shards", i+1, len(done))
		}
	}
}

// TestJournalAppendReopensForAppend: resuming opens the same file; new
// records must extend, not truncate, the survivors.
func TestJournalAppendReopensForAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(testRecord("fp", 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.append(testRecord("fp", 1)); err != nil {
		t.Fatal(err)
	}
	done, err := loadCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("reopened journal must append, got %d shards", len(done))
	}
}

// TestJournalConcurrentAppends: workers journal completions from their
// own goroutines; under contention every line must still parse and no
// record may be lost (run with -race to check the locking too).
func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.append(testRecord("fp", i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	done, err := loadCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != n {
		t.Fatalf("want %d journaled shards, got %d", n, len(done))
	}
	for i := 0; i < n; i++ {
		if _, ok := done[i]; !ok {
			t.Fatalf("shard %d lost under contention", i)
		}
	}
}
