package campaign

import (
	"bytes"
	"io"
	"sync"
)

// SyncWriter serializes line-oriented output from concurrent shards
// onto one underlying writer. Each shard obtains its own view with
// Shard(prefix); views buffer partial writes and emit only complete
// lines, each written atomically under the shared mutex with the
// shard's prefix — so parallel shards never interleave mid-line.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w for shared use by concurrent shard views.
func NewSyncWriter(w io.Writer) *SyncWriter {
	return &SyncWriter{w: w}
}

// Shard returns a line-buffered writer view for one shard. The view
// itself is not concurrency-safe — it belongs to a single shard's
// goroutine — but any number of views may write concurrently. Close
// flushes a trailing partial line (newline-terminated).
func (s *SyncWriter) Shard(prefix string) io.WriteCloser {
	return &lineWriter{parent: s, prefix: "[" + prefix + "] "}
}

func (s *SyncWriter) writeLine(prefix string, line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := io.WriteString(s.w, prefix); err != nil {
		return err
	}
	_, err := s.w.Write(line)
	return err
}

type lineWriter struct {
	parent *SyncWriter
	prefix string
	buf    bytes.Buffer
}

func (l *lineWriter) Write(p []byte) (int, error) {
	l.buf.Write(p)
	for {
		b := l.buf.Bytes()
		nl := bytes.IndexByte(b, '\n')
		if nl < 0 {
			return len(p), nil
		}
		line := make([]byte, nl+1)
		copy(line, b[:nl+1])
		l.buf.Next(nl + 1)
		if err := l.parent.writeLine(l.prefix, line); err != nil {
			return len(p), err
		}
	}
}

// Close flushes any buffered partial line, terminating it with a
// newline so the shared output stays line-structured.
func (l *lineWriter) Close() error {
	if l.buf.Len() == 0 {
		return nil
	}
	line := append(l.buf.Bytes(), '\n')
	l.buf.Reset()
	return l.parent.writeLine(l.prefix, line)
}
