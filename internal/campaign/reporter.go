package campaign

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Reporter receives campaign progress events. Implementations must be
// safe for concurrent use: shard events arrive from worker goroutines.
// Reporters exist for display only — nothing they observe (timings,
// worker ids, completion order) feeds back into campaign results.
type Reporter interface {
	// CampaignStarted fires once: total shards in the spec, how many
	// were restored from the checkpoint, and the worker count.
	CampaignStarted(total, resumed, workers int)
	// ShardStarted fires when a worker picks up a shard.
	ShardStarted(worker int, s Shard)
	// ShardDone fires when a shard completes: its wall time, overall
	// progress, and the ETA estimated from completed-shard throughput
	// (zero until the first completion).
	ShardDone(worker int, s Shard, elapsed time.Duration, done, total int, eta time.Duration)
	// CampaignDone fires once after the last shard.
	CampaignDone(elapsed time.Duration)
}

type nopReporter struct{}

func (nopReporter) CampaignStarted(int, int, int)                                {}
func (nopReporter) ShardStarted(int, Shard)                                      {}
func (nopReporter) ShardDone(int, Shard, time.Duration, int, int, time.Duration) {}
func (nopReporter) CampaignDone(time.Duration)                                   {}

// NopReporter returns a reporter that discards every event.
func NopReporter() Reporter { return nopReporter{} }

// logReporter renders events as one-line progress messages, tracking
// per-worker state so every line shows what the pool is doing.
type logReporter struct {
	mu      sync.Mutex
	w       io.Writer
	start   time.Time
	working map[int]string // worker -> shard label
}

// NewLogReporter returns a Reporter that writes one-line progress
// events (shards done, ETA, per-worker state) to w.
func NewLogReporter(w io.Writer) Reporter {
	return &logReporter{w: w, working: make(map[int]string)}
}

func (r *logReporter) CampaignStarted(total, resumed, workers int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.start = time.Now()
	fmt.Fprintf(r.w, "campaign: %d shards (%d from checkpoint), %d workers\n", total, resumed, workers)
}

func (r *logReporter) ShardStarted(worker int, s Shard) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.working[worker] = s.Label()
	fmt.Fprintf(r.w, "campaign: w%d -> %s (seed %d)\n", worker, s.Label(), s.Seed)
}

func (r *logReporter) ShardDone(worker int, s Shard, elapsed time.Duration, done, total int, eta time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.working, worker)
	line := fmt.Sprintf("campaign: %d/%d done (%s in %s", done, total, s.Label(), elapsed.Round(time.Millisecond))
	switch {
	case eta > 0 && done < total:
		line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	case done < total:
		// Zero-completed-shards window (e.g. every finished shard so
		// far came from the checkpoint): no throughput sample exists
		// yet, so say so instead of printing a meaningless value.
		line += ", eta estimating..."
	}
	line += ")"
	// With telemetry enabled, surface the live crossbar read-cache hit
	// rate from the global registry — a cheap health signal for the
	// cached read path while the campaign runs.
	if rate, ok := liveCacheHitRate(); ok {
		line += fmt.Sprintf(" cache %.1f%%", rate*100)
	}
	if len(r.working) > 0 {
		ids := make([]int, 0, len(r.working))
		for w := range r.working {
			ids = append(ids, w)
		}
		sort.Ints(ids)
		line += " busy:"
		for _, w := range ids {
			line += fmt.Sprintf(" w%d=%s", w, r.working[w])
		}
	}
	fmt.Fprintln(r.w, line)
}

func (r *logReporter) CampaignDone(elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.w, "campaign: finished in %s\n", elapsed.Round(time.Millisecond))
}
