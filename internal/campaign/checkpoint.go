package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"time"

	"memlife/internal/telemetry"
)

// checkpointRecord is one line of the JSONL checkpoint journal: a
// completed shard with its metrics. The fingerprint ties the record to
// the spec that produced it; ElapsedMS is bookkeeping only and never
// enters the aggregated result (which must be byte-identical across
// runs and resumes).
type checkpointRecord struct {
	Fingerprint string  `json:"fingerprint"`
	Index       int     `json:"index"`
	Experiment  string  `json:"experiment"`
	SeedIndex   int     `json:"seed_index"`
	Seed        int64   `json:"seed"`
	Metrics     Metrics `json:"metrics"`
	ElapsedMS   int64   `json:"elapsed_ms"`
}

// loadCheckpoint reads a journal and returns the completed shards of
// the campaign identified by fingerprint, keyed by shard index. A
// missing file is an empty journal. Records from other campaigns are
// an error (the journal belongs to a different spec); a malformed
// final line is tolerated (a killed run may have died mid-append), a
// malformed interior line is corruption and an error.
func loadCheckpoint(path, fingerprint string) (map[int]ShardResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return map[int]ShardResult{}, nil
		}
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	defer f.Close()

	done := make(map[int]ShardResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// The malformed line was not the last one: corruption.
			return nil, pendingErr
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("campaign: checkpoint %s line %d: %w", path, line, err)
			continue
		}
		if rec.Fingerprint != fingerprint {
			return nil, fmt.Errorf("campaign: checkpoint %s line %d belongs to a different campaign (fingerprint %s, want %s) — delete it or point -checkpoint elsewhere",
				path, line, rec.Fingerprint, fingerprint)
		}
		done[rec.Index] = ShardResult{
			Shard: Shard{
				Index:      rec.Index,
				Experiment: rec.Experiment,
				SeedIndex:  rec.SeedIndex,
				Seed:       rec.Seed,
			},
			Metrics: rec.Metrics,
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	// A trailing malformed line is a torn final append from a killed
	// run: that shard simply re-runs.
	return done, nil
}

// journal appends completed-shard records to the checkpoint file,
// serialized across workers and synced per record so a killed process
// loses at most the shard it was mid-writing.
type journal struct {
	mu sync.Mutex
	f  *os.File
	// fsyncNs, when non-nil, observes the wall time of each append
	// (write + fsync) — the per-record durability cost.
	fsyncNs *telemetry.Histogram
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint journal: %w", err)
	}
	return &journal{f: f}, nil
}

func (j *journal) append(rec checkpointRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: journal shard %d: %w", rec.Index, err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fsyncNs != nil {
		defer func(t0 time.Time) { j.fsyncNs.Observe(float64(time.Since(t0))) }(time.Now())
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("campaign: journal shard %d: %w", rec.Index, err)
	}
	return j.f.Sync()
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
