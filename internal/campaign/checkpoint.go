package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"time"

	"memlife/internal/retry"
	"memlife/internal/telemetry"
)

// checkpointRecord is one line of the JSONL checkpoint journal: a
// completed shard with its metrics. The fingerprint ties the record to
// the spec that produced it; ElapsedMS is bookkeeping only and never
// enters the aggregated result (which must be byte-identical across
// runs and resumes).
type checkpointRecord struct {
	Fingerprint string  `json:"fingerprint"`
	Index       int     `json:"index"`
	Experiment  string  `json:"experiment"`
	SeedIndex   int     `json:"seed_index"`
	Seed        int64   `json:"seed"`
	Metrics     Metrics `json:"metrics"`
	ElapsedMS   int64   `json:"elapsed_ms"`
}

// ErrTornTail reports that a journal's final line was not valid JSON —
// the signature of a process killed mid-append. ScanJournal returns it
// alongside the successfully scanned prefix; callers that replay
// journals (checkpoint resume, the server's job queue) treat it as "the
// last append simply didn't happen".
var ErrTornTail = errors.New("torn final journal line")

// ScanJournal streams a JSONL journal, invoking fn for every
// syntactically valid line (1-based line numbers; empty lines are
// skipped). Its recovery contract is shared by every journal in the
// repo:
//
//   - a missing file is an empty journal (nil error, no calls);
//   - a malformed *final* line is a torn tail from a killed process:
//     the valid prefix is delivered and the scan returns ErrTornTail,
//     which replaying callers may ignore;
//   - a malformed *interior* line is corruption and aborts with an
//     error identifying the line;
//   - an fn error aborts the scan immediately and is returned as-is.
func ScanJournal(path string, fn func(line int, raw []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("open journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tornLine := 0 // last malformed line seen; interior if any line follows
	line := 0
	for sc.Scan() {
		line++
		if tornLine != 0 {
			// The malformed line was not the last one: corruption.
			return fmt.Errorf("journal %s line %d: invalid JSON before end of file (corrupt journal)", path, tornLine)
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if !json.Valid(raw) {
			tornLine = line
			continue
		}
		if err := fn(line, raw); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read journal %s: %w", path, err)
	}
	if tornLine != 0 {
		return fmt.Errorf("journal %s line %d: %w", path, tornLine, ErrTornTail)
	}
	return nil
}

// loadCheckpoint reads a journal and returns the completed shards of
// the campaign identified by fingerprint, keyed by shard index. A
// missing file is an empty journal. Records from other campaigns are
// an error (the journal belongs to a different spec); a malformed
// final line is tolerated (a killed run may have died mid-append), a
// malformed interior line is corruption and an error.
func loadCheckpoint(path, fingerprint string) (map[int]ShardResult, error) {
	done := make(map[int]ShardResult)
	err := ScanJournal(path, func(line int, raw []byte) error {
		var rec checkpointRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("campaign: checkpoint %s line %d: %w", path, line, err)
		}
		if rec.Fingerprint != fingerprint {
			return fmt.Errorf("campaign: checkpoint %s line %d belongs to a different campaign (fingerprint %s, want %s) — delete it or point -checkpoint elsewhere",
				path, line, rec.Fingerprint, fingerprint)
		}
		done[rec.Index] = ShardResult{
			Shard: Shard{
				Index:      rec.Index,
				Experiment: rec.Experiment,
				SeedIndex:  rec.SeedIndex,
				Seed:       rec.Seed,
			},
			Metrics: rec.Metrics,
		}
		return nil
	})
	if err != nil {
		// A trailing malformed line is a torn final append from a killed
		// run: that shard simply re-runs.
		if errors.Is(err, ErrTornTail) {
			return done, nil
		}
		return nil, err
	}
	return done, nil
}

// journalRetry is the transient-I/O budget of every checkpoint append:
// short, capped, and deterministic (the jitter stream is seeded by the
// policy, not the clock).
var journalRetry = retry.Policy{
	MaxAttempts: 3,
	BaseDelay:   2 * time.Millisecond,
	MaxDelay:    20 * time.Millisecond,
	Jitter:      0.5,
	Seed:        1,
}

// journal appends completed-shard records to the checkpoint file,
// serialized across workers and synced per record so a killed process
// loses at most the shard it was mid-writing.
type journal struct {
	mu sync.Mutex
	f  *os.File
	// fsyncNs, when non-nil, observes the wall time of each append
	// (write + fsync) — the per-record durability cost.
	fsyncNs *telemetry.Histogram
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint journal: %w", err)
	}
	return &journal{f: f}, nil
}

func (j *journal) append(rec checkpointRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: journal shard %d: %w", rec.Index, err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fsyncNs != nil {
		defer func(t0 time.Time) { j.fsyncNs.Observe(float64(time.Since(t0))) }(time.Now())
	}
	if err := AppendJournalLine(j.f, b); err != nil {
		return fmt.Errorf("campaign: journal shard %d: %w", rec.Index, err)
	}
	return nil
}

// AppendJournalLine writes one newline-terminated record and fsyncs
// it, retrying transient failures under a short capped-backoff budget.
// A failed write may have landed a partial line, which a later
// successful append would turn into *interior* corruption —
// unrecoverable by the ScanJournal torn-tail rule — so each retry
// first truncates the file back to the length it had before the
// attempt, restoring the append-only invariant that the journal is a
// sequence of whole lines plus at most one torn tail. Shared by the
// checkpoint journal and the serve daemon's job journal; callers
// serialize concurrent appends themselves.
func AppendJournalLine(f *os.File, b []byte) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	start := st.Size()
	return journalRetry.Do(context.Background(), func() error {
		if _, err := f.Write(b); err != nil {
			if terr := f.Truncate(start); terr != nil {
				// Can't roll back the partial write: give up now rather
				// than risk interior corruption on the next attempt.
				return retry.Permanent(fmt.Errorf("%v (rollback failed: %w)", err, terr))
			}
			return err
		}
		return f.Sync()
	})
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
