package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"memlife/internal/analysis"
)

// Aggregate is the cross-seed statistics of one metric of one
// experiment: mean, sample standard deviation, and the 95% confidence
// half-width of the mean (Student-t), plus the observed range.
type Aggregate struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	N          int     `json:"n"`
	Mean       float64 `json:"mean"`
	Std        float64 `json:"std"`
	CI95       float64 `json:"ci95"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	// Quantiles is the sketch summary of the metric's distribution,
	// present only for streaming campaigns (Config.Stream): the
	// buffered path keeps its historical byte-exact output.
	Quantiles *Quantiles `json:"quantiles,omitempty"`
}

// Quantiles summarizes a metric's distribution from the streaming
// quantile sketch. Estimates carry the sketch's relative error bound
// (analysis.SketchRelError, ≈ 2.5%).
type Quantiles struct {
	P01 float64 `json:"p01"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// aggregate reduces shard metrics to per-(experiment, metric)
// statistics. Shards must already be in index order; samples are
// accumulated in that order so floating-point results are identical
// across schedules.
func aggregate(shards []ShardResult) []Aggregate {
	type key struct{ exp, metric string }
	samples := map[key][]float64{}
	for _, s := range shards {
		names := make([]string, 0, len(s.Metrics))
		for name := range s.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			k := key{s.Experiment, name}
			samples[k] = append(samples[k], s.Metrics[name])
		}
	}
	keys := make([]key, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].exp != keys[j].exp {
			return keys[i].exp < keys[j].exp
		}
		return keys[i].metric < keys[j].metric
	})
	out := make([]Aggregate, 0, len(keys))
	for _, k := range keys {
		data := samples[k]
		ci := analysis.MeanCI95(data)
		min, max := data[0], data[0]
		for _, v := range data[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		out = append(out, Aggregate{
			Experiment: k.exp,
			Metric:     k.metric,
			N:          ci.N,
			Mean:       ci.Mean,
			Std:        ci.Std,
			CI95:       ci.CI95,
			Min:        min,
			Max:        max,
		})
	}
	return out
}

// WriteJSON writes the canonical JSON form of the result: indented,
// deterministic (map keys sorted by encoding/json, shards by index,
// aggregates by name), newline-terminated.
func (r *Result) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal result: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RenderText prints the aggregate table in the experiments' plain-text
// style: one row per (experiment, metric) with mean ± 95% CI.
func (r *Result) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Campaign — %d experiment(s) x %d seed(s), base seed %d\n",
		len(r.Spec.Experiments), r.Spec.Seeds, r.Spec.BaseSeed)
	var cells [][]string
	for _, a := range r.Aggregates {
		cells = append(cells, []string{
			a.Experiment, a.Metric,
			fmt.Sprintf("%d", a.N),
			fmt.Sprintf("%.6g", a.Mean),
			fmt.Sprintf("%.6g", a.CI95),
			fmt.Sprintf("%.6g", a.Std),
			fmt.Sprintf("%.6g", a.Min),
			fmt.Sprintf("%.6g", a.Max),
		})
	}
	fmt.Fprint(w, analysis.Table(
		[]string{"experiment", "metric", "n", "mean", "ci95", "std", "min", "max"},
		cells))
}
