package campaign

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func shardFor(idx int, exp string, seedIdx int) Shard {
	return Shard{Index: idx, Experiment: exp, SeedIndex: seedIdx, Seed: ShardSeed(42, idx)}
}

// TestLogReporterLifecycle drives the log reporter through a small
// campaign and pins the rendered lines: start banner, per-worker
// pickup, progress with ETA while shards remain, ETA suppressed on the
// final shard, and the busy-worker list sorted by worker id.
func TestLogReporterLifecycle(t *testing.T) {
	var buf bytes.Buffer
	r := NewLogReporter(&buf)

	sA := shardFor(0, "alpha", 0)
	sB := shardFor(1, "alpha", 1)
	sC := shardFor(2, "beta", 0)

	r.CampaignStarted(3, 1, 2)
	r.ShardStarted(1, sB)
	r.ShardStarted(0, sA)
	r.ShardDone(1, sB, 120*time.Millisecond, 1, 3, 5*time.Second)
	r.ShardStarted(1, sC)
	r.ShardDone(0, sA, 90*time.Millisecond, 2, 3, 2*time.Second)
	r.ShardDone(1, sC, 80*time.Millisecond, 3, 3, time.Second)
	r.CampaignDone(300 * time.Millisecond)

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("want 8 lines, got %d:\n%s", len(lines), buf.String())
	}
	if want := "campaign: 3 shards (1 from checkpoint), 2 workers"; lines[0] != want {
		t.Fatalf("start line = %q, want %q", lines[0], want)
	}
	if !strings.Contains(lines[1], "w1 -> alpha#1") || !strings.Contains(lines[1], "seed ") {
		t.Fatalf("pickup line = %q, want worker, label, and seed", lines[1])
	}

	// First completion: progress, elapsed, ETA, and the still-busy w0.
	done1 := lines[3]
	if !strings.Contains(done1, "1/3 done (alpha#1 in 120ms") {
		t.Fatalf("first done line = %q, want progress and elapsed", done1)
	}
	if !strings.Contains(done1, "eta 5s") {
		t.Fatalf("first done line = %q, want eta while shards remain", done1)
	}
	if !strings.Contains(done1, "busy: w0=alpha#0") {
		t.Fatalf("first done line = %q, want busy list with w0", done1)
	}
	if strings.Contains(done1, "w1=") {
		t.Fatalf("first done line = %q: finished worker must leave the busy list", done1)
	}

	// Final completion: pool empty, ETA suppressed (done == total).
	doneLast := lines[6]
	if !strings.Contains(doneLast, "3/3 done") {
		t.Fatalf("final done line = %q, want 3/3", doneLast)
	}
	if strings.Contains(doneLast, ", eta ") {
		t.Fatalf("final done line = %q: eta must be suppressed once done == total", doneLast)
	}
	if strings.Contains(doneLast, "busy:") {
		t.Fatalf("final done line = %q: busy list must be absent when the pool is idle", doneLast)
	}
	if want := "campaign: finished in 300ms"; lines[7] != want {
		t.Fatalf("finish line = %q, want %q", lines[7], want)
	}
}

// TestLogReporterZeroETAEstimating: before the first completion feeds
// the throughput estimate, ShardDone receives eta == 0 and must report
// "eta estimating..." — never a bogus "eta 0s".
func TestLogReporterZeroETAEstimating(t *testing.T) {
	var buf bytes.Buffer
	r := NewLogReporter(&buf)
	r.CampaignStarted(2, 0, 1)
	r.ShardDone(0, shardFor(0, "alpha", 0), 50*time.Millisecond, 1, 2, 0)
	out := buf.String()
	if !strings.Contains(out, "eta estimating...") {
		t.Fatalf("zero eta with work remaining must print the estimating marker, got:\n%s", out)
	}
	if strings.Contains(out, "eta 0s") {
		t.Fatalf("zero eta must never render as a duration, got:\n%s", out)
	}
}

// TestLogReporterZeroETAFinalShard: when the campaign is finished
// (done == total) there is nothing left to estimate — neither an eta
// nor the estimating marker may appear.
func TestLogReporterZeroETAFinalShard(t *testing.T) {
	var buf bytes.Buffer
	r := NewLogReporter(&buf)
	r.CampaignStarted(1, 0, 1)
	r.ShardDone(0, shardFor(0, "alpha", 0), 50*time.Millisecond, 1, 1, 0)
	if out := buf.String(); strings.Contains(out, "eta") {
		t.Fatalf("final shard must not print any eta, got:\n%s", out)
	}
}

// TestLogReporterBusyListSorted: the busy suffix must list workers in
// ascending id order regardless of pickup order, so logs are stable
// and diffable.
func TestLogReporterBusyListSorted(t *testing.T) {
	var buf bytes.Buffer
	r := NewLogReporter(&buf)
	r.CampaignStarted(5, 0, 4)
	r.ShardStarted(3, shardFor(3, "beta", 1))
	r.ShardStarted(0, shardFor(0, "alpha", 0))
	r.ShardStarted(2, shardFor(2, "beta", 0))
	buf.Reset()
	r.ShardDone(2, shardFor(2, "beta", 0), time.Millisecond, 1, 5, 0)
	line := buf.String()
	i0 := strings.Index(line, "w0=alpha#0")
	i3 := strings.Index(line, "w3=beta#1")
	if i0 < 0 || i3 < 0 || i0 > i3 {
		t.Fatalf("busy list must be sorted by worker id, got %q", line)
	}
}

// TestLogReporterConcurrentEvents hammers one reporter from many
// goroutines; run under -race this pins the documented requirement
// that reporters tolerate concurrent shard events, and afterwards
// every emitted line must be whole (exactly one "campaign:" prefix).
func TestLogReporterConcurrentEvents(t *testing.T) {
	var buf bytes.Buffer
	r := NewLogReporter(&buf)
	r.CampaignStarted(64, 0, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				s := shardFor(w*8+i, "alpha", w*8+i)
				r.ShardStarted(w, s)
				r.ShardDone(w, s, time.Millisecond, w*8+i+1, 64, time.Second)
			}
		}(w)
	}
	wg.Wait()
	r.CampaignDone(time.Second)
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.Count(line, "campaign:") != 1 || !strings.HasPrefix(line, "campaign:") {
			t.Fatalf("line %d mangled under contention: %q", i, line)
		}
	}
}

// TestNopReporterIsInert: the default reporter must accept every event
// without side effects (it is wired in whenever Config.Reporter is nil).
func TestNopReporterIsInert(t *testing.T) {
	r := NopReporter()
	r.CampaignStarted(1, 0, 1)
	r.ShardStarted(0, shardFor(0, "alpha", 0))
	r.ShardDone(0, shardFor(0, "alpha", 0), time.Second, 1, 1, 0)
	r.CampaignDone(time.Second)
}
