// Package campaign turns single-seed experiment runs into multi-seed
// Monte Carlo campaigns. A campaign spec (experiments x seed range) is
// expanded into independent shards; a bounded worker pool executes the
// shards with per-shard RNG seeds derived deterministically from
// (base seed, shard index), so the aggregated result is bit-identical
// regardless of worker count or completion order. Completed shards are
// journaled to a JSONL checkpoint so an interrupted campaign resumes
// without repeating work, and per-metric mean / stddev / 95% CI are
// aggregated with internal/analysis.
//
// The package is deliberately ignorant of what an "experiment" is: the
// engine resolves experiment names to RunnerFuncs through a Resolver
// supplied by the caller (cmd/memlife adapts the experiment registry),
// which keeps the dependency direction campaign -> analysis only.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// Spec declares a campaign: every experiment is run once per seed in
// the seed range, each run being one independent shard.
type Spec struct {
	// Experiments are the experiment names, run in the given order.
	Experiments []string `json:"experiments"`
	// Seeds is the number of seeds per experiment (the Monte Carlo
	// sample size).
	Seeds int `json:"seeds"`
	// BaseSeed is the root of every per-shard seed derivation.
	BaseSeed int64 `json:"base_seed"`
	// Fast selects the experiments' reduced-budget mode.
	Fast bool `json:"fast"`
	// ConfigHash is the resolved scenario-spec fingerprint the
	// campaign's experiments derive from (see internal/spec); cmd/memlife
	// fills it from experiments.ConfigFingerprint. It participates in
	// Fingerprint, so a checkpoint journal written under one resolved
	// configuration can never be resumed under another — even when the
	// experiment list, seeds and flags all match. Empty (e.g. in older
	// journals) means "unpinned" and keeps the historical fingerprint.
	ConfigHash string `json:"config_hash,omitempty"`
}

// Validate reports an error for degenerate specs.
func (s Spec) Validate() error {
	if len(s.Experiments) == 0 {
		return fmt.Errorf("campaign: spec has no experiments")
	}
	seen := make(map[string]bool, len(s.Experiments))
	for _, e := range s.Experiments {
		if e == "" {
			return fmt.Errorf("campaign: empty experiment name")
		}
		if seen[e] {
			return fmt.Errorf("campaign: duplicate experiment %q", e)
		}
		seen[e] = true
	}
	if s.Seeds < 1 {
		return fmt.Errorf("campaign: Seeds must be >= 1, got %d", s.Seeds)
	}
	return nil
}

// Fingerprint returns a short stable hash of the spec. Checkpoint
// records carry it so a journal can only resume the campaign that
// wrote it.
func (s Spec) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil { // a Spec of plain scalars cannot fail to marshal
		panic(fmt.Sprintf("campaign: fingerprint: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Shard is one independent unit of campaign work: one experiment at
// one derived seed.
type Shard struct {
	// Index is the shard's position in the expanded campaign; it is
	// the sole input (besides the base seed) of the seed derivation.
	Index int `json:"index"`
	// Experiment names the experiment this shard runs.
	Experiment string `json:"experiment"`
	// SeedIndex is the shard's position within its experiment's seed
	// range (0 <= SeedIndex < Spec.Seeds).
	SeedIndex int `json:"seed_index"`
	// Seed is the derived per-shard RNG seed.
	Seed int64 `json:"seed"`
	// Fast mirrors Spec.Fast so runners need no access to the spec.
	Fast bool `json:"-"`
}

// Label returns the shard's display name, e.g. "table1#2".
func (s Shard) Label() string {
	return fmt.Sprintf("%s#%d", s.Experiment, s.SeedIndex)
}

// Shards expands the spec into its shard list: experiments in spec
// order, seeds in range order. The expansion is a pure function of the
// spec, so every run of the same spec sees identical shards.
func (s Spec) Shards() []Shard {
	out := make([]Shard, 0, len(s.Experiments)*s.Seeds)
	for _, exp := range s.Experiments {
		for i := 0; i < s.Seeds; i++ {
			idx := len(out)
			out = append(out, Shard{
				Index:      idx,
				Experiment: exp,
				SeedIndex:  i,
				Seed:       ShardSeed(s.BaseSeed, idx),
				Fast:       s.Fast,
			})
		}
	}
	return out
}

// ShardSeed derives the RNG seed of shard index from the campaign's
// base seed with a splitmix64 mix: well-separated streams for
// neighboring indices, deterministic across runs, platforms and worker
// schedules. The result is kept non-negative so derived seeds read
// naturally in logs and checkpoints.
func ShardSeed(base int64, index int) int64 {
	x := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x &^ (1 << 63))
}

// Metrics is one shard's scalar results, keyed by metric name.
type Metrics map[string]float64

// RunnerFunc executes one shard and returns its metrics. Runners must
// derive all randomness from shard.Seed (never from global state or
// time) for campaign results to be schedule-independent, and should
// return promptly once ctx is cancelled. log receives the shard's
// progress output; it is always non-nil (possibly io.Discard) and safe
// for use from the shard's goroutine only.
type RunnerFunc func(ctx context.Context, shard Shard, log io.Writer) (Metrics, error)

// Resolver maps an experiment name to its runner; ok=false means the
// name is unknown or the experiment cannot produce campaign metrics.
type Resolver func(experiment string) (RunnerFunc, bool)
