package campaign

import (
	"sort"

	"memlife/internal/analysis"
)

// Streaming aggregation: the constant-memory alternative to buffering
// every ShardResult. A streamAgg folds each completed shard into
// per-(experiment, metric) Online accumulators and quantile sketches —
// O(metrics x buckets) memory however many seeds the campaign runs.
//
// Determinism contract: callers must feed shards in index order (the
// engine's reorder window guarantees this), and analysis.MeanCI95 is
// implemented on analysis.Online, so the aggregates are bit-identical
// to the buffered path's — the output bytes do not depend on which
// path produced them, the worker count, or the completion order.

type streamKey struct{ exp, metric string }

type streamStat struct {
	online analysis.Online
	sketch *analysis.Sketch
}

type streamAgg struct {
	stats map[streamKey]*streamStat
}

func newStreamAgg() *streamAgg {
	return &streamAgg{stats: make(map[streamKey]*streamStat)}
}

// add folds one shard's metrics in. Map iteration order is irrelevant:
// each metric name feeds its own accumulator exactly once per shard,
// so every per-key sequence is ordered by shard index alone. Steady
// state (every key seen) allocates nothing.
func (a *streamAgg) add(exp string, m Metrics) {
	for name, v := range m {
		k := streamKey{exp, name}
		st, ok := a.stats[k]
		if !ok {
			st = &streamStat{sketch: analysis.NewSketch()}
			a.stats[k] = st
		}
		st.online.Add(v)
		st.sketch.Add(v)
	}
}

// aggregates renders the canonical aggregate list, ordered by
// (experiment, metric) exactly like the buffered path, with the
// sketch's quantile summary attached.
func (a *streamAgg) aggregates() []Aggregate {
	keys := make([]streamKey, 0, len(a.stats))
	for k := range a.stats {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].exp != keys[j].exp {
			return keys[i].exp < keys[j].exp
		}
		return keys[i].metric < keys[j].metric
	})
	out := make([]Aggregate, 0, len(keys))
	for _, k := range keys {
		st := a.stats[k]
		ci := st.online.MeanCI()
		out = append(out, Aggregate{
			Experiment: k.exp,
			Metric:     k.metric,
			N:          ci.N,
			Mean:       ci.Mean,
			Std:        ci.Std,
			CI95:       ci.CI95,
			Min:        st.online.Min(),
			Max:        st.online.Max(),
			Quantiles: &Quantiles{
				P01: st.sketch.Quantile(0.01),
				P50: st.sketch.Quantile(0.50),
				P90: st.sketch.Quantile(0.90),
				P99: st.sketch.Quantile(0.99),
			},
		})
	}
	return out
}
