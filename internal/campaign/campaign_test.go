package campaign

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeResolver returns a resolver whose runners compute seed-derived
// metrics with some floating-point work (so schedule-dependent
// summation would be caught) and jittered durations (so completion
// order differs from shard order under parallelism).
func fakeResolver(calls *atomic.Int64) Resolver {
	return func(exp string) (RunnerFunc, bool) {
		if strings.HasPrefix(exp, "bad") {
			return nil, false
		}
		return func(ctx context.Context, s Shard, log io.Writer) (Metrics, error) {
			if calls != nil {
				calls.Add(1)
			}
			// Deterministic seed-dependent jitter: later shards may
			// finish before earlier ones.
			time.Sleep(time.Duration(s.Seed%7) * time.Millisecond)
			fmt.Fprintf(log, "shard %s working\n", s.Label())
			v := float64(s.Seed%1000) / 7.0
			return Metrics{
				"value":   v,
				"sqrt":    math.Sqrt(v + 1),
				"seedmod": float64(s.Seed % 13),
			}, nil
		}, true
	}
}

func mustJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testSpec() Spec {
	return Spec{Experiments: []string{"alpha", "beta"}, Seeds: 6, BaseSeed: 42}
}

func TestShardSeedDerivation(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := ShardSeed(42, i)
		if s < 0 {
			t.Fatalf("ShardSeed(42, %d) = %d, want non-negative", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ShardSeed collision: indices %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Fatal("different base seeds must derive different shard seeds")
	}
	if ShardSeed(7, 3) != ShardSeed(7, 3) {
		t.Fatal("derivation must be deterministic")
	}
}

func TestSpecShardsExpansion(t *testing.T) {
	spec := testSpec()
	shards := spec.Shards()
	if len(shards) != 12 {
		t.Fatalf("got %d shards, want 12", len(shards))
	}
	for i, s := range shards {
		if s.Index != i {
			t.Fatalf("shard %d has index %d", i, s.Index)
		}
		if s.Seed != ShardSeed(spec.BaseSeed, i) {
			t.Fatalf("shard %d seed not derived from (base, index)", i)
		}
	}
	if shards[0].Experiment != "alpha" || shards[6].Experiment != "beta" {
		t.Fatalf("experiments not expanded in spec order: %+v", shards)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []Spec{
		{Seeds: 1},
		{Experiments: []string{"a"}, Seeds: 0},
		{Experiments: []string{"a", "a"}, Seeds: 1},
		{Experiments: []string{""}, Seeds: 1},
	}
	for _, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Fatalf("spec %+v must not validate", spec)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestDeterministicAcrossWorkers is the engine's core guarantee: the
// same spec produces byte-identical JSON for any worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	var ref []byte
	for _, workers := range []int{1, 3, 8, 16} {
		res, err := Run(context.Background(), spec, Config{
			Workers: workers,
			Resolve: fakeResolver(nil),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := mustJSON(t, res)
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d JSON differs from workers=1:\n%s\n--- vs ---\n%s", workers, ref, got)
		}
	}
}

func TestAggregates(t *testing.T) {
	res, err := Run(context.Background(), Spec{Experiments: []string{"alpha"}, Seeds: 5, BaseSeed: 9}, Config{
		Workers: 2,
		Resolve: func(string) (RunnerFunc, bool) {
			return func(ctx context.Context, s Shard, log io.Writer) (Metrics, error) {
				return Metrics{"m": float64(s.SeedIndex)}, nil // 0,1,2,3,4
			}, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregates) != 1 {
		t.Fatalf("got %d aggregates, want 1", len(res.Aggregates))
	}
	a := res.Aggregates[0]
	if a.Experiment != "alpha" || a.Metric != "m" || a.N != 5 {
		t.Fatalf("aggregate identity wrong: %+v", a)
	}
	if a.Mean != 2 || a.Min != 0 || a.Max != 4 {
		t.Fatalf("mean/min/max wrong: %+v", a)
	}
	wantStd := math.Sqrt(2.5) // sample std of 0..4
	if math.Abs(a.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %g, want %g", a.Std, wantStd)
	}
	wantCI := 2.776 * wantStd / math.Sqrt(5)
	if math.Abs(a.CI95-wantCI) > 1e-9 {
		t.Fatalf("ci95 = %g, want %g", a.CI95, wantCI)
	}
}

// TestResumeMatchesUninterrupted kills a campaign partway (a runner
// that fails after K shards), resumes it, and requires the final JSON
// to be byte-identical to an uninterrupted run — and the journaled
// shards to not re-run.
func TestResumeMatchesUninterrupted(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.jsonl")

	full, err := Run(context.Background(), spec, Config{Workers: 4, Resolve: fakeResolver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, full)

	// First attempt: fail after 5 successful shards.
	var calls atomic.Int64
	failing := func(exp string) (RunnerFunc, bool) {
		inner, ok := fakeResolver(&calls)(exp)
		if !ok {
			return nil, false
		}
		return func(ctx context.Context, s Shard, log io.Writer) (Metrics, error) {
			if calls.Load() >= 5 {
				return nil, fmt.Errorf("injected failure")
			}
			return inner(ctx, s, log)
		}, true
	}
	if _, err := Run(context.Background(), spec, Config{
		Workers: 1, Resolve: failing, CheckpointPath: ckpt,
	}); err == nil {
		t.Fatal("interrupted run must report the injected failure")
	}

	// Resume: only the missing shards may run.
	var resumedCalls atomic.Int64
	res, err := Run(context.Background(), spec, Config{
		Workers: 4, Resolve: fakeResolver(&resumedCalls), CheckpointPath: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, res); !bytes.Equal(want, got) {
		t.Fatalf("resumed JSON differs from uninterrupted run:\n%s\n--- vs ---\n%s", want, got)
	}
	if res.Resumed == 0 {
		t.Fatal("resumed run must report restored shards")
	}
	if int(resumedCalls.Load())+res.Resumed != len(spec.Shards()) {
		t.Fatalf("resume re-ran journaled shards: %d calls + %d resumed != %d",
			resumedCalls.Load(), res.Resumed, len(spec.Shards()))
	}
}

// TestResumeToleratesTornTail simulates a kill mid-append: a truncated
// final journal line must be ignored, not fatal.
func TestResumeToleratesTornTail(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.jsonl")
	if _, err := Run(context.Background(), spec, Config{
		Workers: 2, Resolve: fakeResolver(nil), CheckpointPath: ckpt,
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, b[:len(b)-10], 0o644); err != nil { // tear the tail
		t.Fatal(err)
	}
	res, err := Run(context.Background(), spec, Config{
		Workers: 2, Resolve: fakeResolver(nil), CheckpointPath: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	full, err := Run(context.Background(), spec, Config{Workers: 1, Resolve: fakeResolver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, full), mustJSON(t, res)) {
		t.Fatal("torn-tail resume result differs from clean run")
	}
}

// TestResumeRejectsForeignCheckpoint: a journal written by a different
// spec must not silently contaminate a campaign.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.jsonl")
	specA := testSpec()
	if _, err := Run(context.Background(), specA, Config{
		Workers: 2, Resolve: fakeResolver(nil), CheckpointPath: ckpt,
	}); err != nil {
		t.Fatal(err)
	}
	specB := specA
	specB.BaseSeed = 43
	if _, err := Run(context.Background(), specB, Config{
		Workers: 2, Resolve: fakeResolver(nil), CheckpointPath: ckpt, Resume: true,
	}); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("foreign checkpoint must be rejected, got err=%v", err)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	res := func(string) (RunnerFunc, bool) {
		return func(ctx context.Context, s Shard, log io.Writer) (Metrics, error) {
			started <- struct{}{}
			select {
			case <-release:
				return Metrics{"v": 1}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}, true
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, testSpec(), Config{Workers: 2, Resolve: res})
		done <- err
	}()
	<-started
	cancel()
	close(release)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled campaign must return an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled campaign did not return")
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	spec := Spec{Experiments: []string{"bad-one"}, Seeds: 2, BaseSeed: 1}
	if _, err := Run(context.Background(), spec, Config{Workers: 1, Resolve: fakeResolver(nil)}); err == nil {
		t.Fatal("unresolvable experiment must be rejected before any shard runs")
	}
}

// TestShardLogsArePrefixedAndWhole: concurrent shard logs must come
// out line-atomic with the shard's prefix.
func TestShardLogsArePrefixedAndWhole(t *testing.T) {
	var buf bytes.Buffer
	mux := NewSyncWriter(&buf)
	const shards, lines = 16, 50
	doneCh := make(chan struct{}, shards)
	for i := 0; i < shards; i++ {
		go func(id int) {
			w := mux.Shard(fmt.Sprintf("s%02d", id))
			for j := 0; j < lines; j++ {
				// Write in fragments to exercise the line buffering.
				fmt.Fprintf(w, "shard %02d ", id)
				fmt.Fprintf(w, "line %02d", j)
				io.WriteString(w, " end\n")
			}
			w.(io.Closer).Close()
			doneCh <- struct{}{}
		}(i)
	}
	for i := 0; i < shards; i++ {
		<-doneCh
	}
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(got) != shards*lines {
		t.Fatalf("got %d lines, want %d", len(got), shards*lines)
	}
	for _, line := range got {
		var sid, s2, l int
		if _, err := fmt.Sscanf(line, "[s%02d] shard %02d line %02d end", &sid, &s2, &l); err != nil {
			t.Fatalf("malformed multiplexed line %q: %v", line, err)
		}
		if sid != s2 {
			t.Fatalf("line %q carries the wrong prefix", line)
		}
	}
}

func TestSyncWriterFlushesPartialLineOnClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewSyncWriter(&buf).Shard("x")
	io.WriteString(w, "no newline")
	w.Close()
	if got := buf.String(); got != "[x] no newline\n" {
		t.Fatalf("got %q", got)
	}
}
