package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Direct contention tests for SyncWriter, complementing the
// engine-level TestShardLogsArePrefixedAndWhole: here the fragment
// boundaries are adversarial (every line arrives byte-by-byte from
// many goroutines at once), which the engine path never exercises.

// TestSyncWriterLineAtomicityUnderContention: each of 8 views writes
// its lines one BYTE per Write call while the others do the same; the
// shared output must still consist only of whole, correctly prefixed
// lines, with nothing lost and per-view order preserved.
func TestSyncWriterLineAtomicityUnderContention(t *testing.T) {
	var out bytes.Buffer
	sw := NewSyncWriter(&out)
	const views, lines = 8, 25
	var wg sync.WaitGroup
	for v := 0; v < views; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			w := sw.Shard(fmt.Sprintf("v%d", v))
			defer w.Close()
			for i := 0; i < lines; i++ {
				msg := fmt.Sprintf("view %d line %d\n", v, i)
				for k := 0; k < len(msg); k++ { // worst-case fragmentation
					if _, err := w.Write([]byte{msg[k]}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(v)
	}
	wg.Wait()

	got := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(got) != views*lines {
		t.Fatalf("want %d whole lines, got %d", views*lines, len(got))
	}
	next := make([]int, views) // per-view order check
	for _, line := range got {
		var v, i int
		if _, err := fmt.Sscanf(line, "[v%d] view %d line %d", &v, &v, &i); err != nil {
			t.Fatalf("mangled line %q: %v", line, err)
		}
		if !strings.HasPrefix(line, fmt.Sprintf("[v%d] view %d line %d", v, v, i)) {
			t.Fatalf("prefix/body mismatch in %q", line)
		}
		if i != next[v] {
			t.Fatalf("view %d lines reordered: got %d, want %d", v, i, next[v])
		}
		next[v]++
	}
}

// TestSyncWriterBatchedWritesSplitIntoLines: one Write carrying several
// embedded newlines must emit each line separately prefixed, and hold
// back the trailing partial until more bytes (or Close) arrive.
func TestSyncWriterBatchedWritesSplitIntoLines(t *testing.T) {
	var out bytes.Buffer
	w := NewSyncWriter(&out).Shard("s")
	if _, err := w.Write([]byte("one\ntwo\nthr")); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "[s] one\n[s] two\n"; got != want {
		t.Fatalf("after batched write: got %q, want %q", got, want)
	}
	if _, err := w.Write([]byte("ee\n")); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "[s] one\n[s] two\n[s] three\n"; got != want {
		t.Fatalf("after completing the line: got %q, want %q", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "[s] one\n[s] two\n[s] three\n"; got != want {
		t.Fatalf("Close with empty buffer must write nothing: got %q, want %q", got, want)
	}
}
