package campaign

import "memlife/internal/telemetry"

// campaignTel holds the engine's telemetry handles, resolved once per
// Run from the global registry (all-nil when telemetry is disabled).
// Everything here is scheduling observability — durations, pool
// utilization, fsync cost — and never feeds back into results, which
// stay byte-identical across worker counts with telemetry on or off.
type campaignTel struct {
	shardsDone    *telemetry.Counter
	shardsResumed *telemetry.Counter
	busyWorkers   *telemetry.Gauge
	shardNs       *telemetry.Histogram // per-shard wall time
	fsyncNs       *telemetry.Histogram // checkpoint append+fsync wall time
}

func newCampaignTel() campaignTel {
	r := telemetry.Global()
	if r == nil {
		return campaignTel{}
	}
	return campaignTel{
		shardsDone:    r.Counter("campaign/shards_done"),
		shardsResumed: r.Counter("campaign/shards_resumed"),
		busyWorkers:   r.Gauge("campaign/busy_workers"),
		shardNs:       r.Histogram("campaign/shard_ns", telemetry.NsBounds()),
		fsyncNs:       r.Histogram("campaign/checkpoint_fsync_ns", telemetry.NsBounds()),
	}
}

// liveCacheHitRate reads the crossbar read-cache hit rate from the live
// global registry — the reporter upgrade: progress lines show how well
// the cached read path is doing while the campaign runs. ok is false
// when telemetry is off or no reads have happened yet.
func liveCacheHitRate() (float64, bool) {
	r := telemetry.Global()
	if r == nil {
		return 0, false
	}
	hits := r.Counter("crossbar/cache_hits").Value()
	misses := r.Counter("crossbar/cache_misses").Value()
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}
