package campaign

import (
	"context"
	"math"
	"path/filepath"
	"testing"
)

// TestStreamMatchesBufferedBitwise: streaming aggregation must produce
// the same mean/std/ci95/min/max bits as the buffered path — the
// equivalence the shared analysis.Online implementation guarantees.
func TestStreamMatchesBufferedBitwise(t *testing.T) {
	spec := Spec{Experiments: []string{"alpha", "beta"}, Seeds: 40, BaseSeed: 42}
	buffered, err := Run(context.Background(), spec, Config{Workers: 4, Resolve: fakeResolver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Run(context.Background(), spec, Config{Workers: 4, Resolve: fakeResolver(nil), Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed.Shards) != 0 {
		t.Fatalf("streaming result must not buffer shards, got %d", len(streamed.Shards))
	}
	if len(streamed.Aggregates) != len(buffered.Aggregates) {
		t.Fatalf("aggregate count: streaming %d vs buffered %d", len(streamed.Aggregates), len(buffered.Aggregates))
	}
	for i, b := range buffered.Aggregates {
		s := streamed.Aggregates[i]
		if s.Experiment != b.Experiment || s.Metric != b.Metric || s.N != b.N {
			t.Fatalf("aggregate %d identity mismatch: %+v vs %+v", i, s, b)
		}
		for _, c := range []struct {
			name string
			s, b float64
		}{
			{"mean", s.Mean, b.Mean}, {"std", s.Std, b.Std}, {"ci95", s.CI95, b.CI95},
			{"min", s.Min, b.Min}, {"max", s.Max, b.Max},
		} {
			if math.Float64bits(c.s) != math.Float64bits(c.b) {
				t.Errorf("%s/%s %s: streaming %v != buffered %v", b.Experiment, b.Metric, c.name, c.s, c.b)
			}
		}
		if s.Quantiles == nil {
			t.Errorf("%s/%s: streaming aggregate missing quantiles", b.Experiment, b.Metric)
		}
		if b.Quantiles != nil {
			t.Errorf("%s/%s: buffered aggregate must not carry quantiles", b.Experiment, b.Metric)
		}
	}
}

// TestStreamDeterministicAcrossWorkers: the streaming JSON must be
// byte-identical whatever the worker count — the same canonical-output
// guarantee the buffered engine makes.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{Experiments: []string{"alpha", "beta"}, Seeds: 24, BaseSeed: 7}
	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		res, err := Run(context.Background(), spec, Config{Workers: workers, Resolve: fakeResolver(nil), Stream: true})
		if err != nil {
			t.Fatal(err)
		}
		b := mustJSON(t, res)
		if ref == nil {
			ref = b
		} else if string(ref) != string(b) {
			t.Fatalf("streaming output differs at %d workers", workers)
		}
	}
}

// TestStreamWindowBoundsMemory: the reorder window must cap how many
// completed shards wait un-drained — O(window), not O(seeds).
func TestStreamWindowBoundsMemory(t *testing.T) {
	const workers = 4
	window := 4 * workers
	if window < 16 {
		window = 16
	}
	maxPending := 0
	spec := Spec{Experiments: []string{"alpha"}, Seeds: 200, BaseSeed: 3}
	_, err := Run(context.Background(), spec, Config{
		Workers: workers,
		Resolve: fakeResolver(nil),
		Stream:  true,
		testPending: func(n int) {
			if n > maxPending {
				maxPending = n
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxPending == 0 {
		t.Fatal("test hook never observed the reorder window")
	}
	if maxPending > window {
		t.Fatalf("reorder window held %d shards, bound is %d", maxPending, window)
	}
}

// TestStreamAggSteadyStateZeroAlloc is the allocs-bounded memory test
// of the acceptance criteria: once every (experiment, metric) key
// exists, folding in further shards allocates nothing, so aggregation
// memory is O(metrics x buckets) — independent of the seed count.
func TestStreamAggSteadyStateZeroAlloc(t *testing.T) {
	agg := newStreamAgg()
	m := Metrics{"value": 1.5, "sqrt": 2.5, "seedmod": 3.5}
	agg.add("alpha", m) // create the keys
	allocs := testing.AllocsPerRun(1000, func() {
		agg.add("alpha", m)
	})
	if allocs != 0 {
		t.Fatalf("streaming aggregation allocates per shard: %v allocs/op", allocs)
	}
}

// TestStreamResumeMatchesUninterrupted: a streaming run resumed from a
// checkpoint must emit the same bytes as an uninterrupted streaming
// run — resumed shards drain through the same in-order fold.
func TestStreamResumeMatchesUninterrupted(t *testing.T) {
	spec := Spec{Experiments: []string{"alpha", "beta"}, Seeds: 10, BaseSeed: 19}
	full, err := Run(context.Background(), spec, Config{Workers: 2, Resolve: fakeResolver(nil), Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	// First pass journals everything (buffered mode writes the same
	// checkpoint records); second pass resumes it in streaming mode.
	if _, err := Run(context.Background(), spec, Config{Workers: 2, Resolve: fakeResolver(nil), CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(context.Background(), spec, Config{
		Workers: 2, Resolve: fakeResolver(nil), Stream: true,
		CheckpointPath: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != len(spec.Shards()) {
		t.Fatalf("expected a fully resumed run, got %d/%d", resumed.Resumed, len(spec.Shards()))
	}
	if string(mustJSON(t, full)) != string(mustJSON(t, resumed)) {
		t.Fatal("resumed streaming output differs from uninterrupted run")
	}
}
