package campaign

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"memlife/internal/telemetry"
)

// Config parameterizes one campaign execution (everything about *how*
// to run; the Spec says *what* to run).
type Config struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. Worker
	// count affects wall-clock only, never results.
	Workers int
	// Resolve maps experiment names to runners.
	Resolve Resolver
	// CheckpointPath is the JSONL journal of completed shards; empty
	// disables checkpointing (and Resume).
	CheckpointPath string
	// Resume loads previously journaled shards of the same spec from
	// CheckpointPath instead of re-running them.
	Resume bool
	// Reporter receives progress events; nil means no reporting.
	Reporter Reporter
	// Log receives the shards' experiment logs, multiplexed line-by-
	// line with shard prefixes; nil silences them.
	Log io.Writer
	// Stream selects constant-memory aggregation: completed shards are
	// folded into per-metric streaming accumulators (online mean/CI +
	// quantile sketches) through a bounded reorder window instead of
	// being buffered, so memory is O(window + metrics x buckets)
	// rather than O(seeds). The Result then has empty Shards and its
	// Aggregates carry Quantiles; mean/std/ci95/min/max are
	// bit-identical to the buffered path (see stream.go).
	Stream bool

	// testPending, when set, observes the reorder window's occupancy
	// after each fresh completion (test instrumentation for the memory
	// bound).
	testPending func(n int)
}

// ShardResult is one completed shard with its metrics.
type ShardResult struct {
	Shard
	Metrics Metrics `json:"metrics"`
}

// Result is a completed campaign. Its JSON form is canonical: shards
// ordered by index, aggregates ordered by (experiment, metric), and no
// timing or scheduling information — the same spec produces the same
// bytes whatever the worker count, completion order, or resume
// history. Streaming campaigns (Config.Stream) keep the same
// guarantee with Shards empty and per-metric Quantiles attached.
type Result struct {
	Fingerprint string        `json:"fingerprint"`
	Spec        Spec          `json:"spec"`
	Shards      []ShardResult `json:"shards"`
	Aggregates  []Aggregate   `json:"aggregates"`
	// Resumed counts shards restored from the checkpoint rather than
	// executed; display bookkeeping, deliberately absent from JSON.
	Resumed int `json:"-"`
	// Elapsed is this execution's wall time; also absent from JSON.
	Elapsed time.Duration `json:"-"`
}

// Run executes the campaign. Shards run on a bounded worker pool; each
// completed shard is journaled immediately, so cancelling (ctx) or
// killing the process loses at most in-flight shards, and a later Run
// with Config.Resume picks up where this one stopped. The first shard
// error cancels the remaining work and is returned.
//
// Each execution emits one "campaign/run" trace span and feeds the
// campaign/* instruments (shard durations, busy workers, checkpoint
// fsync latency — see telemetry.go).
func Run(ctx context.Context, spec Spec, cfg Config) (*Result, error) {
	sp := telemetry.StartSpan("campaign/run")
	out, err := run(ctx, spec, cfg)
	attrs := telemetry.Attrs{"ok": err == nil}
	if out != nil {
		attrs["shards"] = len(out.Shards)
		attrs["resumed"] = out.Resumed
	}
	sp.End(attrs)
	return out, err
}

func run(ctx context.Context, spec Spec, cfg Config) (*Result, error) {
	start := time.Now()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Resolve == nil {
		return nil, fmt.Errorf("campaign: Config.Resolve is required")
	}
	runners := make(map[string]RunnerFunc, len(spec.Experiments))
	for _, exp := range spec.Experiments {
		r, ok := cfg.Resolve(exp)
		if !ok {
			return nil, fmt.Errorf("campaign: experiment %q is unknown or has no campaign metrics", exp)
		}
		runners[exp] = r
	}
	rep := cfg.Reporter
	if rep == nil {
		rep = NopReporter()
	}
	tel := newCampaignTel()

	fp := spec.Fingerprint()
	shards := spec.Shards()
	done := map[int]ShardResult{}
	if cfg.Resume {
		if cfg.CheckpointPath == "" {
			return nil, fmt.Errorf("campaign: Resume requires CheckpointPath")
		}
		var err error
		done, err = loadCheckpoint(cfg.CheckpointPath, fp)
		if err != nil {
			return nil, err
		}
	}
	tel.shardsResumed.Add(int64(len(done)))
	var jnl *journal
	if cfg.CheckpointPath != "" {
		var err error
		jnl, err = openJournal(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		jnl.fsyncNs = tel.fsyncNs
		defer jnl.Close()
	}

	var pending []Shard
	for _, s := range shards {
		if _, ok := done[s.Index]; !ok {
			pending = append(pending, s)
		}
	}

	// Streaming state: completed shards park in pendingDone until the
	// drain pointer (next) reaches their index, then fold into agg in
	// strict index order — the same summation order as the buffered
	// path, whatever the completion order. The room channel bounds how
	// far dispatch may run ahead of the drain pointer, capping
	// pendingDone at the window size. (Resumed shards are preloaded
	// and drained immediately; loadCheckpoint already held them in
	// memory, so they don't change the bound's character.)
	var (
		agg         *streamAgg
		pendingDone map[int]ShardResult
		next        int
		room        chan struct{}
	)
	drainLocked := func() error {
		for {
			r, ok := pendingDone[next]
			if !ok {
				return nil
			}
			s := shards[next]
			if r.Experiment != s.Experiment || r.Seed != s.Seed {
				return fmt.Errorf("campaign: checkpoint shard %d is %s seed %d, spec says %s seed %d",
					next, r.Experiment, r.Seed, s.Experiment, s.Seed)
			}
			delete(pendingDone, next)
			agg.add(r.Experiment, r.Metrics)
			if _, resumed := done[next]; !resumed && room != nil {
				<-room // release the window token taken at dispatch (never blocks)
			}
			next++
		}
	}
	if cfg.Stream {
		agg = newStreamAgg()
		pendingDone = make(map[int]ShardResult, len(done))
		for idx, r := range done {
			pendingDone[idx] = r
		}
		if err := drainLocked(); err != nil {
			return nil, err
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}
	if cfg.Stream {
		window := 4 * workers
		if window < 16 {
			window = 16
		}
		room = make(chan struct{}, window)
	}
	rep.CampaignStarted(len(shards), len(done), workers)

	var logMux *SyncWriter
	if cfg.Log != nil {
		logMux = NewSyncWriter(cfg.Log)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex // guards results, firstErr, completed
		results   = make([]ShardResult, 0, len(pending))
		firstErr  error
		completed = len(done)
		total     = len(shards)
		wg        sync.WaitGroup
	)
	jobs := make(chan Shard)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for s := range jobs {
				if runCtx.Err() != nil {
					return
				}
				rep.ShardStarted(worker, s)
				tel.busyWorkers.Add(1)
				var shardLog io.Writer = io.Discard
				var closer io.Closer
				if logMux != nil {
					lw := logMux.Shard(s.Label())
					shardLog, closer = lw, lw
				}
				t0 := time.Now()
				m, err := runners[s.Experiment](runCtx, s, shardLog)
				if closer != nil {
					closer.Close()
				}
				tel.busyWorkers.Add(-1)
				if err != nil {
					fail(fmt.Errorf("campaign: shard %s (seed %d): %w", s.Label(), s.Seed, err))
					return
				}
				elapsed := time.Since(t0)
				tel.shardNs.Observe(float64(elapsed))
				tel.shardsDone.Inc()
				if jnl != nil {
					err := jnl.append(checkpointRecord{
						Fingerprint: fp,
						Index:       s.Index,
						Experiment:  s.Experiment,
						SeedIndex:   s.SeedIndex,
						Seed:        s.Seed,
						Metrics:     m,
						ElapsedMS:   elapsed.Milliseconds(),
					})
					if err != nil {
						fail(err)
						return
					}
				}
				mu.Lock()
				if cfg.Stream {
					pendingDone[s.Index] = ShardResult{Shard: s, Metrics: m}
					if cfg.testPending != nil {
						cfg.testPending(len(pendingDone))
					}
					if err := drainLocked(); err != nil {
						mu.Unlock()
						fail(err)
						return
					}
				} else {
					results = append(results, ShardResult{Shard: s, Metrics: m})
				}
				completed++
				doneN := completed
				mu.Unlock()
				var eta time.Duration
				if ran := doneN - len(done); ran > 0 {
					eta = time.Since(start) / time.Duration(ran) * time.Duration(total-doneN)
				}
				rep.ShardDone(worker, s, elapsed, doneN, total, eta)
			}
		}(w)
	}
feed:
	for _, s := range pending {
		if room != nil {
			// Take a window token before dispatch; the drain returns it
			// once this shard folds into the aggregator in index order.
			select {
			case room <- struct{}{}:
			case <-runCtx.Done():
				break feed
			}
		}
		select {
		case jobs <- s:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign: interrupted (completed shards are checkpointed): %w", err)
	}

	if cfg.Stream {
		// Streaming: every shard was folded in index order as it
		// completed; all that remains is to render the accumulators.
		if next != len(shards) {
			return nil, fmt.Errorf("campaign: shard %d missing after run (corrupt checkpoint?)", next)
		}
		out := &Result{
			Fingerprint: fp,
			Spec:        spec,
			Shards:      []ShardResult{},
			Aggregates:  agg.aggregates(),
			Resumed:     len(shards) - len(pending),
			Elapsed:     time.Since(start),
		}
		rep.CampaignDone(out.Elapsed)
		return out, nil
	}

	// Assemble the canonical result: journaled + fresh shards in index
	// order. Aggregation consumes them in this order, so float
	// summation order — and therefore the output bytes — are schedule-
	// independent.
	for _, r := range results {
		done[r.Index] = r
	}
	out := &Result{
		Fingerprint: fp,
		Spec:        spec,
		Shards:      make([]ShardResult, 0, len(shards)),
		Resumed:     len(shards) - len(pending),
		Elapsed:     time.Since(start),
	}
	for _, s := range shards {
		r, ok := done[s.Index]
		if !ok {
			return nil, fmt.Errorf("campaign: shard %d missing after run (corrupt checkpoint?)", s.Index)
		}
		if r.Experiment != s.Experiment || r.Seed != s.Seed {
			return nil, fmt.Errorf("campaign: checkpoint shard %d is %s seed %d, spec says %s seed %d",
				s.Index, r.Experiment, r.Seed, s.Experiment, s.Seed)
		}
		r.Fast = s.Fast
		out.Shards = append(out.Shards, r)
	}
	out.Aggregates = aggregate(out.Shards)
	rep.CampaignDone(out.Elapsed)
	return out, nil
}
