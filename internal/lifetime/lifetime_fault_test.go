package lifetime

import (
	"testing"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/fault"
)

// TestGracefulDegradationEngages forces stage 3 of the degradation
// ladder: an unreachable target with an achievable floor must flip the
// run into degraded service instead of killing it, record when that
// happened, and keep serving applications at the floor.
func TestGracefulDegradationEngages(t *testing.T) {
	net, ds := fixture(t, false)
	cfg := testConfig(0.999) // unreachable on the defective array below
	cfg.MaxCycles = 4
	cfg.Tuning.MaxIters = 15
	cfg.DegradedAccFrac = 0.5 // floor ~0.5, comfortably achievable
	cfg.Mapping.FaultAware = true
	// 30% stuck-at-LRS: compensation holds the accuracy in the 0.8s —
	// well above the floor, well below the target.
	cfg.Faults = fault.Config{StuckRate: 0.3, LRSFrac: 1.0, Seed: 3}

	res, err := Run(net, ds, TT, device.Params32(), aging.DefaultModel(), 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedAtCycle != 1 {
		t.Fatalf("degradation must engage in cycle 1, got %d", res.DegradedAtCycle)
	}
	if res.Failed || res.Lifetime != int64(cfg.MaxCycles)*cfg.AppsPerCycle {
		t.Fatalf("a degraded array must keep serving at the floor: failed=%v lifetime=%d",
			res.Failed, res.Lifetime)
	}
	if len(res.Records) != cfg.MaxCycles {
		t.Fatalf("got %d records, want %d", len(res.Records), cfg.MaxCycles)
	}
	for _, rec := range res.Records {
		if !rec.Degraded {
			t.Fatalf("cycle %d after degradation must be marked Degraded", rec.Cycle)
		}
		if rec.Acc < cfg.TargetAcc*cfg.DegradedAccFrac {
			t.Fatalf("cycle %d served below the floor: %g", rec.Cycle, rec.Acc)
		}
	}
	if res.FinalAcc != res.Records[len(res.Records)-1].Acc {
		t.Fatal("FinalAcc must be the last served accuracy")
	}
	apps, acc := res.AccuracyCurve()
	if len(apps) != len(res.Records) || len(acc) != len(res.Records) {
		t.Fatal("accuracy curve must have one point per record")
	}
}

// TestZeroDegradedFracPreservesHardFailure: the zero value keeps the
// paper's original criterion — any miss of TargetAcc is fatal.
func TestZeroDegradedFracPreservesHardFailure(t *testing.T) {
	net, ds := fixture(t, false)
	cfg := testConfig(0.999)
	cfg.MaxCycles = 4
	cfg.Tuning.MaxIters = 15
	cfg.Mapping.FaultAware = true
	cfg.Faults = fault.Config{StuckRate: 0.3, LRSFrac: 1.0, Seed: 3}
	// DegradedAccFrac left at zero.

	res, err := Run(net, ds, TT, device.Params32(), aging.DefaultModel(), 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Lifetime != 0 {
		t.Fatalf("missing an undegradable target must fail in cycle 1: failed=%v lifetime=%d",
			res.Failed, res.Lifetime)
	}
	if res.DegradedAtCycle != 0 {
		t.Fatal("no degradation stage may engage when DegradedAccFrac is zero")
	}
}

func TestFaultConfigValidation(t *testing.T) {
	cfg := testConfig(0.6)
	cfg.DegradedAccFrac = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("DegradedAccFrac = 1 must be rejected (it would make degradation a no-op)")
	}
	cfg = testConfig(0.6)
	cfg.DegradedAccFrac = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative DegradedAccFrac must be rejected")
	}
	cfg = testConfig(0.6)
	cfg.Faults = fault.Config{StuckRate: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid fault config must propagate out of lifetime validation")
	}
}

// TestFaultsThreadedThroughRun: a lifetime run with injected stuck
// devices must report them in its cycle records.
func TestFaultsThreadedThroughRun(t *testing.T) {
	net, ds := fixture(t, false)
	cfg := testConfig(0.55)
	cfg.MaxCycles = 2
	cfg.Tuning.MaxIters = 15
	cfg.DegradedAccFrac = 0.5
	cfg.Mapping.FaultAware = true
	cfg.Faults = fault.Config{StuckRate: 0.02, LRSFrac: 1.0, Seed: 3}

	res, err := Run(net, ds, TT, device.Params32(), aging.DefaultModel(), 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("run produced no records")
	}
	for _, rec := range res.Records {
		if rec.Stuck == 0 {
			t.Fatalf("cycle %d must report the injected stuck devices", rec.Cycle)
		}
	}
}
