package lifetime

import (
	"testing"

	"memlife/internal/device"
	"memlife/internal/fault"
)

// TestModelWorkersEquivalence extends the Workers contract to the
// device-model zoo: evaluation parallelism must stay a pure speed knob
// when the devices are nonlinear or stochastic and a drift-adaptive
// tuning policy is active. The stochastic models draw their C2C noise
// from counter-based per-device streams (never from a shared RNG), so
// runs at 1, 2 and 8 workers must agree record by record, bit by bit.
func TestModelWorkersEquivalence(t *testing.T) {
	net, trainDS := fixture(t, false)
	snap := net.SnapshotParams()

	cases := []struct {
		name   string
		model  device.ModelSpec
		drift  device.DriftSpec
		policy string
	}{
		{"mms-sign", device.ModelSpec{Kind: device.ModelMMS}, device.DriftSpec{}, ""},
		{"yacopcic-recalib", device.ModelSpec{Kind: device.ModelYacopcic}, device.DriftSpec{Nu: 0.05}, "recalib"},
		{"diffusive-minreprog", device.ModelSpec{Kind: device.ModelDiffusive, D2D: 0.1, C2C: 0.05}, device.DriftSpec{Nu: 0.05}, "minreprog"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := device.Params32()
			p.Model = tc.model
			p.Drift = tc.drift

			cfg := testConfig(0.6)
			cfg.MaxCycles = 5
			cfg.Tuning.Policy = tc.policy
			cfg.Faults = fault.Config{StuckRate: 0.01, TransientProb: 0.02, Seed: 9}
			cfg.Mapping.FaultAware = true

			run := func(workers int) Result {
				t.Helper()
				net.RestoreParams(snap)
				c := cfg
				c.Tuning.Workers = workers
				res, err := Run(net, trainDS, STAT, p, fastAging(), 300, c)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res
			}

			want := run(1)
			for _, workers := range []int{2, 8} {
				got := run(workers)
				if got.Lifetime != want.Lifetime || got.Failed != want.Failed ||
					got.DegradedAtCycle != want.DegradedAtCycle || got.FinalAcc != want.FinalAcc {
					t.Fatalf("workers=%d: result diverged: got {lifetime %d failed %v degraded@%d acc %v}, want {lifetime %d failed %v degraded@%d acc %v}",
						workers, got.Lifetime, got.Failed, got.DegradedAtCycle, got.FinalAcc,
						want.Lifetime, want.Failed, want.DegradedAtCycle, want.FinalAcc)
				}
				if len(got.Records) != len(want.Records) {
					t.Fatalf("workers=%d: %d records, want %d", workers, len(got.Records), len(want.Records))
				}
				for i := range want.Records {
					if got.Records[i] != want.Records[i] {
						t.Fatalf("workers=%d: cycle %d record diverged:\ngot  %+v\nwant %+v",
							workers, i+1, got.Records[i], want.Records[i])
					}
				}
			}
		})
	}
}
