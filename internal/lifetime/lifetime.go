// Package lifetime simulates the full deployment life of a
// memristor-mapped network and measures how many applications it can
// process before online tuning stops converging — the paper's lifetime
// metric (Section V).
//
// The simulation follows the paper's work flow (Fig. 5): the trained
// weights are mapped once at deployment; the crossbar then serves
// blocks of applications, accumulating recoverable read-disturb drift
// that per-application online tuning repairs. Tuning pulses age the
// devices irreversibly, so the iteration count per cycle creeps up as
// levels disappear. When tuning alone can no longer reach the target,
// the trained weights are re-mapped under the scenario's policy — the
// event where aging-aware range selection acts — and tuning retries.
// When even that fails within the iteration cap (paper: 150), the
// crossbar is dead and the lifetime is the number of applications
// served up to that point.
//
// The three scenarios of Table I differ in two inputs:
//
//	T+T   — conventionally trained weights, fresh-range mapping
//	ST+T  — skewed-trained weights,          fresh-range mapping
//	ST+AT — skewed-trained weights,          aging-aware mapping
//
// The trained network supplies the first axis (the caller passes a
// conventionally or skewed-trained network); Scenario selects the
// mapping policy for the second.
package lifetime

import (
	"context"
	"fmt"

	"memlife/internal/aging"
	"memlife/internal/crossbar"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/fault"
	"memlife/internal/mapping"
	"memlife/internal/nn"
	"memlife/internal/telemetry"
	"memlife/internal/tensor"
	"memlife/internal/tuning"
)

// Scenario names the three evaluated configurations of Table I.
type Scenario int

const (
	// TT is traditional weight training plus online tuning.
	TT Scenario = iota
	// STT is skewed weight training plus online tuning.
	STT
	// STAT is skewed weight training with aging-aware mapping plus
	// online tuning.
	STAT
)

// String implements fmt.Stringer with the paper's labels.
func (s Scenario) String() string {
	switch s {
	case TT:
		return "T+T"
	case STT:
		return "ST+T"
	case STAT:
		return "ST+AT"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// ParseScenario is the inverse of Scenario.String; it is how scenario
// files and CLI flags name the Table I configurations.
func ParseScenario(s string) (Scenario, error) {
	switch s {
	case "T+T":
		return TT, nil
	case "ST+T":
		return STT, nil
	case "ST+AT":
		return STAT, nil
	default:
		return 0, fmt.Errorf("lifetime: unknown scenario %q (want T+T, ST+T, or ST+AT)", s)
	}
}

// MappingPolicy returns the hardware-mapping policy the scenario uses.
func (s Scenario) MappingPolicy() mapping.PolicyKind {
	if s == STAT {
		return mapping.AgingAware
	}
	return mapping.Fresh
}

// Config parameterizes a lifetime simulation. The JSON tags are the
// schema of the "lifetime" section of a scenario spec (internal/spec):
// the tuning, mapping, and fault sub-configs nest as JSON objects,
// while runtime-injected knobs (Seed, PolicyOverride, and the tuning
// target/seed the driver derives per cycle) are excluded.
type Config struct {
	// AppsPerCycle is the number of applications served per deployment
	// cycle (the granularity of the Fig. 10 x-axis).
	AppsPerCycle int64 `json:"apps_per_cycle"`
	// MaxCycles bounds the simulation.
	MaxCycles int `json:"max_cycles"`
	// TargetAcc is the accuracy online tuning must restore each cycle.
	// In a scenario file, 0 means "derive from the fresh-mapped
	// accuracy" (see internal/spec and SuggestTarget); by the time the
	// simulation runs it must be positive.
	TargetAcc float64 `json:"target_acc"`
	// DriftSigma is the read-disturb drift per cycle, relative to each
	// device's resistance (0.05 = 5%).
	DriftSigma float64 `json:"drift_sigma"`
	// EvalN is the number of training samples used to judge accuracy
	// and score aging-aware range candidates.
	EvalN int `json:"eval_n"`
	// Seed drives drift and batch shuffling.
	Seed int64 `json:"-"`
	// TraceStride overrides the representative-tracing density (the
	// paper's 1-of-9 corresponds to 3). Zero keeps the default.
	TraceStride int `json:"trace_stride"`
	// AgingVariability is the sigma of the lognormal device-to-device
	// endurance variation. Zero means identical devices.
	AgingVariability float64 `json:"aging_variability"`
	// BurnInStress injects this much prior-life stress into every
	// device before the simulation starts, so runs can begin from a
	// pre-aged array (where mapping-policy differences are visible).
	// Zero starts from a fresh array.
	BurnInStress float64 `json:"burn_in_stress"`
	// RemapIterFrac triggers a re-mapping when a cycle's tuning took at
	// least this fraction of the Tuning.MaxIters budget: tuning has
	// become expensive, so the controller re-deploys the trained
	// weights under the scenario's mapping policy. Zero means 0.5.
	RemapIterFrac float64 `json:"remap_iter_frac"`
	// PolicyOverride, when non-nil, replaces the scenario's mapping
	// policy — used by the range-policy ablation.
	PolicyOverride *mapping.PolicyKind `json:"-"`
	// DegradedAccFrac enables graceful degradation: when even a
	// rescue remap cannot reach TargetAcc but the accuracy still
	// reaches DegradedAccFrac*TargetAcc, the array keeps serving at
	// that reduced floor instead of dying — a partially faulty array
	// has a measured, not assumed, end of life. Zero disables
	// degradation (any miss of TargetAcc is fatal, the paper's
	// original criterion); the fault experiments use 0.9.
	DegradedAccFrac float64 `json:"degraded_acc_frac"`
	// Tuning parameterizes the per-cycle online tuning runs. Its
	// MaxIters is the paper's 150-iteration lifetime criterion; its
	// TargetAcc and Seed fields are ignored — the driver injects the
	// effective target (graceful degradation lowers it) and a per-cycle
	// seed.
	Tuning tuning.Config `json:"tuning"`
	// Mapping parameterizes every (re)mapping pass. Its Policy field is
	// ignored — the scenario (or PolicyOverride) decides the policy.
	// Mapping.FaultAware makes every (re)mapping tolerate stuck
	// devices: range selection consults only healthy traced devices and
	// programming skips/compensates stuck cells. Disabling it while
	// faults are injected is the ablation arm of the fault-sweep
	// experiment.
	Mapping mapping.Config `json:"mapping"`
	// Faults configures device-fault injection (stuck-at devices,
	// transient programming failures, read-noise bursts); the zero
	// value runs the clean-room simulation with no faults. See
	// internal/fault.
	Faults fault.Config `json:"faults"`
}

// Validate reports an error for degenerate configs.
func (c Config) Validate() error {
	switch {
	case c.AppsPerCycle < 1:
		return fmt.Errorf("lifetime: AppsPerCycle must be >= 1, got %d", c.AppsPerCycle)
	case c.MaxCycles < 1:
		return fmt.Errorf("lifetime: MaxCycles must be >= 1, got %d", c.MaxCycles)
	case c.Tuning.MaxIters < 1:
		return fmt.Errorf("lifetime: Tuning.MaxIters must be >= 1, got %d", c.Tuning.MaxIters)
	case c.TargetAcc <= 0 || c.TargetAcc > 1:
		return fmt.Errorf("lifetime: TargetAcc must be in (0,1], got %g", c.TargetAcc)
	case c.DriftSigma < 0:
		return fmt.Errorf("lifetime: DriftSigma must be non-negative, got %g", c.DriftSigma)
	case c.Tuning.BatchSize < 1:
		return fmt.Errorf("lifetime: Tuning.BatchSize must be >= 1, got %d", c.Tuning.BatchSize)
	case c.EvalN < 1:
		return fmt.Errorf("lifetime: EvalN must be >= 1, got %d", c.EvalN)
	case c.TraceStride < 0:
		return fmt.Errorf("lifetime: TraceStride must be non-negative, got %d", c.TraceStride)
	case c.AgingVariability < 0:
		return fmt.Errorf("lifetime: AgingVariability must be non-negative, got %g", c.AgingVariability)
	case c.RemapIterFrac < 0 || c.RemapIterFrac > 1:
		return fmt.Errorf("lifetime: RemapIterFrac must be in [0,1], got %g", c.RemapIterFrac)
	case c.BurnInStress < 0:
		return fmt.Errorf("lifetime: BurnInStress must be non-negative, got %g", c.BurnInStress)
	case c.DegradedAccFrac < 0 || c.DegradedAccFrac >= 1:
		return fmt.Errorf("lifetime: DegradedAccFrac must be in [0,1), got %g", c.DegradedAccFrac)
	}
	return c.Faults.Validate()
}

// Normalized returns the config with every "zero means X" field
// resolved, recursively through the tuning, mapping, and fault
// sub-configs: RemapIterFrac 0 -> 0.5 plus the sub-configs' own
// normalizations. RunCtx applies it on entry; scenario specs serialize
// the resolved form (internal/spec.Defaults).
func (c Config) Normalized() Config {
	if c.RemapIterFrac == 0 {
		c.RemapIterFrac = 0.5
	}
	c.Tuning = c.Tuning.Normalized()
	c.Mapping = c.Mapping.Normalized()
	c.Faults = c.Faults.Normalized()
	return c
}

// DefaultConfig returns the configuration used by the Table I / Fig. 10
// experiments.
func DefaultConfig() Config {
	return Config{
		AppsPerCycle:     1_000_000,
		MaxCycles:        200,
		TargetAcc:        0.75,
		DriftSigma:       0.05,
		EvalN:            96,
		Seed:             1,
		AgingVariability: 0.2,
		RemapIterFrac:    0.12,
		Tuning: tuning.Config{
			MaxIters:  150,
			BatchSize: 32,
			StepFrac:  0.25,
		},
	}
}

// CycleRecord captures the state after one deployment cycle.
type CycleRecord struct {
	Cycle     int
	Apps      int64 // cumulative applications served after this cycle
	TuneIters int
	Converged bool
	Acc       float64
	// Remapped reports whether this cycle needed a rescue remapping
	// (tuning alone could not reach the target).
	Remapped bool
	// MapClipped counts devices whose mapping target was out of reach
	// during this cycle's remapping (0 when no remap happened).
	MapClipped int
	// ConvUpper and FCUpper are the mean aged upper resistance bounds
	// by layer kind (Fig. 11).
	ConvUpper, FCUpper float64
	// Stuck is the number of permanently stuck devices network-wide
	// at the end of this cycle (initial defects plus wear-out).
	Stuck int
	// Retries counts tuning pulses re-attempted after transient
	// programming failures this cycle (their stress is real).
	Retries int64
	// Degraded marks a cycle served below TargetAcc but at or above
	// the graceful-degradation floor.
	Degraded bool
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario Scenario
	Records  []CycleRecord
	// Lifetime is the number of applications served before failure
	// (or before the simulation was cut off at MaxCycles).
	Lifetime int64
	// Failed reports whether the array actually failed; false means
	// the lifetime value is right-censored at MaxCycles.
	Failed bool
	// DegradedAtCycle is the first cycle that entered degraded
	// operation (served below TargetAcc but at or above the reduced
	// floor); 0 when the array never degraded.
	DegradedAtCycle int
	// FinalAcc is the evaluation accuracy at the end of the run — the
	// accuracy floor a partially faulty array actually delivered.
	FinalAcc float64
}

// AccuracyCurve returns the accuracy-vs-applications trajectory of the
// run: one point per served cycle (cumulative applications, accuracy
// after tuning). Together with Lifetime this is the graceful-
// degradation view: instead of a single death point, the curve shows
// how far and how fast a faulty array's delivered accuracy sagged.
func (r Result) AccuracyCurve() (apps []int64, acc []float64) {
	apps = make([]int64, len(r.Records))
	acc = make([]float64, len(r.Records))
	for i, rec := range r.Records {
		apps[i] = rec.Apps
		acc[i] = rec.Acc
	}
	return apps, acc
}

// Run simulates the deployment life of net under the scenario. The
// network's current weights are the mapping targets; trainDS supplies
// tuning batches and the evaluation subset.
func Run(net *nn.Network, trainDS *dataset.Dataset, sc Scenario, p device.Params, model aging.Model, tempK float64, cfg Config) (Result, error) {
	return RunCtx(context.Background(), net, trainDS, sc, p, model, tempK, cfg)
}

// RunCtx is Run with cancellation: the simulation checks ctx before
// the initial mapping and at every deployment cycle, returning
// ctx.Err() (wrapped) as soon as the context is cancelled or times
// out. A cancelled run's partial Result is not meaningful.
//
// Every run emits one "lifetime/run" trace span and, per deployment
// cycle, one record on the "lifetime/timeline" instrument plus a
// "lifetime/cycle" trace event (see telemetry.go). Telemetry never
// feeds back into the simulation: results are bit-identical with it on
// or off.
func RunCtx(ctx context.Context, net *nn.Network, trainDS *dataset.Dataset, sc Scenario, p device.Params, model aging.Model, tempK float64, cfg Config) (Result, error) {
	sp := telemetry.StartSpan("lifetime/run")
	res, err := runCtx(ctx, net, trainDS, sc, p, model, tempK, cfg)
	recordRunTel(res, err)
	sp.End(telemetry.Attrs{
		"scenario": res.Scenario.String(),
		"lifetime": res.Lifetime,
		"failed":   res.Failed,
		"cycles":   len(res.Records),
	})
	return res, err
}

func runCtx(ctx context.Context, net *nn.Network, trainDS *dataset.Dataset, sc Scenario, p device.Params, model aging.Model, tempK float64, cfg Config) (Result, error) {
	res := Result{Scenario: sc}
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("lifetime: %w", err)
	}
	mn, err := crossbar.NewMappedNetwork(net, p, model, tempK)
	if err != nil {
		return res, err
	}
	if cfg.TraceStride > 0 {
		mn.SetTraceStride(cfg.TraceStride)
	}
	evalDS := trainDS.Subset(cfg.EvalN)
	evalBatch := evalDS.Batches(evalDS.Len(), nil)[0]
	rng := tensor.NewRNG(cfg.Seed)
	if cfg.AgingVariability > 0 {
		mn.RandomizeAging(cfg.AgingVariability, rng.Split())
	}
	if cfg.BurnInStress > 0 {
		mn.AddStress(cfg.BurnInStress)
	}
	if cfg.Faults.Enabled() {
		if err := mn.SetFaults(cfg.Faults); err != nil {
			return res, fmt.Errorf("lifetime: %w", err)
		}
	}

	policy := sc.MappingPolicy()
	if cfg.PolicyOverride != nil {
		policy = *cfg.PolicyOverride
	}
	mapCfg := cfg.Mapping
	mapCfg.Policy = policy

	// Initial deployment: one mapping pass (Fig. 5 work flow).
	if _, err := mapping.Map(mn, mapCfg, evalBatch.X, evalBatch.Y); err != nil {
		return res, fmt.Errorf("lifetime: initial mapping: %w", err)
	}

	tune := func(cycle int, target float64) (tuning.Result, error) {
		tc := cfg.Tuning
		tc.TargetAcc = target
		tc.Seed = cfg.Seed + int64(cycle)
		return tuning.Tune(mn, trainDS, evalBatch.X, evalBatch.Y, tc)
	}

	// Graceful degradation: effTarget starts at TargetAcc; when even a
	// rescue remap cannot restore it but the accuracy holds the floor,
	// the array keeps serving with effTarget lowered to the floor.
	effTarget := cfg.TargetAcc
	floor := cfg.TargetAcc * cfg.DegradedAccFrac

	var apps int64
	for cycle := 1; cycle <= cfg.MaxCycles; cycle++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("lifetime: cycle %d: %w", cycle, err)
		}
		// Applications run: read-disturb drift accumulates, then the
		// per-application online tuning restores the target accuracy
		// (Section II-C). Stage 1: retune.
		mn.Drift(cfg.DriftSigma, rng)
		if p.Drift.Enabled() {
			// Spontaneous conductance state drift (power-law relaxation
			// toward Gmin); one interval per deployment cycle.
			mn.StateDrift(p.Drift.DecayFactor(cycle))
		}
		tuneRes, err := tune(cycle, effTarget)
		if err != nil {
			return res, fmt.Errorf("lifetime: cycle %d: %w", cycle, err)
		}
		rec := CycleRecord{
			Cycle:     cycle,
			TuneIters: tuneRes.Iterations,
			Converged: tuneRes.Converged,
			Acc:       tuneRes.FinalAcc,
			Retries:   tuneRes.Retries,
		}
		if !tuneRes.Converged || float64(tuneRes.Iterations) >= cfg.RemapIterFrac*float64(cfg.Tuning.MaxIters) {
			// Stage 2: tuning is failing or has become expensive —
			// remap the trained weights (under the scenario's policy,
			// fault-aware when configured) and retry tuning.
			rec.Remapped = true
			mapRes, err := mapping.Map(mn, mapCfg, evalBatch.X, evalBatch.Y)
			if err != nil {
				return res, fmt.Errorf("lifetime: cycle %d remap: %w", cycle, err)
			}
			rec.MapClipped = mapRes.Stats.Clipped
			retry, err := tune(cycle+1_000_000, effTarget)
			if err != nil {
				return res, fmt.Errorf("lifetime: cycle %d retry: %w", cycle, err)
			}
			rec.TuneIters += retry.Iterations
			rec.Converged = retry.Converged
			rec.Acc = retry.FinalAcc
			rec.Retries += retry.Retries
		}
		rec.ConvUpper, rec.FCUpper = mn.MeanUpperBoundByKind()
		if !rec.Converged && floor > 0 && effTarget > floor && rec.Acc >= floor {
			// Stage 3: even remapping missed the target, but the
			// array still clears the reduced accuracy floor — accept
			// degraded operation instead of declaring death.
			effTarget = floor
			rec.Converged = true
			rec.Degraded = true
			if res.DegradedAtCycle == 0 {
				res.DegradedAtCycle = cycle
			}
		}
		// Service wear accumulates into the fault hazard: heavily
		// stressed devices cross their capacity and stick permanently.
		mn.AdvanceFaults()
		lrs, hrs := mn.StuckCounts()
		rec.Stuck = lrs + hrs
		res.FinalAcc = rec.Acc
		if !rec.Converged {
			// Every degradation stage is exhausted: failure.
			rec.Apps = apps
			recordCycleTel(rec)
			res.Records = append(res.Records, rec)
			res.Lifetime = apps
			res.Failed = true
			return res, nil
		}
		if res.DegradedAtCycle != 0 {
			rec.Degraded = true
		}
		apps += cfg.AppsPerCycle
		rec.Apps = apps
		recordCycleTel(rec)
		res.Records = append(res.Records, rec)
	}
	res.Lifetime = apps
	res.Failed = false
	return res, nil
}

// SuggestTarget returns a target accuracy for lifetime runs: the
// hardware accuracy right after an ideal fresh mapping of the trained
// network, minus margin. Matching the paper's setup, the target is
// chosen so a healthy array converges within a handful of iterations.
func SuggestTarget(net *nn.Network, trainDS *dataset.Dataset, p device.Params, model aging.Model, tempK float64, evalN int, margin float64) (float64, error) {
	snap := net.SnapshotParams()
	defer net.RestoreParams(snap)
	mn, err := crossbar.NewMappedNetwork(net, p, model, tempK)
	if err != nil {
		return 0, err
	}
	if _, err := mapping.Map(mn, mapping.Config{Policy: mapping.Fresh}, nil, nil); err != nil {
		return 0, err
	}
	evalDS := trainDS.Subset(evalN)
	b := evalDS.Batches(evalDS.Len(), nil)[0]
	acc, err := mn.Accuracy(b.X, b.Y)
	if err != nil {
		return 0, err
	}
	target := acc - margin
	if target <= 0 {
		return 0, fmt.Errorf("lifetime: suggested target %g is not positive (fresh accuracy %g, margin %g)", target, acc, margin)
	}
	if target > 1 {
		target = 1
	}
	return target, nil
}
