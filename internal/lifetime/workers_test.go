package lifetime

import (
	"testing"

	"memlife/internal/device"
	"memlife/internal/fault"
)

// TestWorkersEquivalence pins the contract of Config.Tuning.Workers:
// forward
// evaluation parallelism is a pure speed knob, so a run with a worker
// pool must produce the exact same Result — record by record, bit by
// bit — as the serial run. This is what keeps campaign shards
// deterministic when -eval-workers is set. CI runs this under -race,
// which also checks the worker pool's synchronization against the
// simulation's mutation pattern.
func TestWorkersEquivalence(t *testing.T) {
	net, trainDS := fixture(t, false)
	snap := net.SnapshotParams()

	cfg := testConfig(0.6)
	cfg.MaxCycles = 6 // enough cycles to hit drift, tuning, and remap paths
	cfg.Faults = fault.Config{
		StuckRate:     0.01,
		TransientProb: 0.02,
		HazardScale:   50,
		ReadBurstProb: 0.1,
		Seed:          9,
	}
	cfg.Mapping.FaultAware = true

	run := func(workers int) Result {
		t.Helper()
		net.RestoreParams(snap)
		c := cfg
		c.Tuning.Workers = workers
		res, err := Run(net, trainDS, STAT, device.Params32(), fastAging(), 300, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}

	want := run(0)
	for _, workers := range []int{1, 4} {
		got := run(workers)
		if got.Lifetime != want.Lifetime || got.Failed != want.Failed ||
			got.DegradedAtCycle != want.DegradedAtCycle || got.FinalAcc != want.FinalAcc {
			t.Fatalf("workers=%d: result diverged: got {lifetime %d failed %v degraded@%d acc %v}, want {lifetime %d failed %v degraded@%d acc %v}",
				workers, got.Lifetime, got.Failed, got.DegradedAtCycle, got.FinalAcc,
				want.Lifetime, want.Failed, want.DegradedAtCycle, want.FinalAcc)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got.Records), len(want.Records))
		}
		for i := range want.Records {
			if got.Records[i] != want.Records[i] {
				t.Fatalf("workers=%d: cycle %d record diverged:\ngot  %+v\nwant %+v",
					workers, i+1, got.Records[i], want.Records[i])
			}
		}
	}
}
