package lifetime

import (
	"testing"

	"memlife/internal/aging"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/nn"
	"memlife/internal/tensor"
	"memlife/internal/train"
	"memlife/internal/tuning"
)

// fastAging returns an aggressive aging model so failures occur within
// a handful of cycles during tests.
func fastAging() aging.Model {
	m := aging.DefaultModel()
	m.A = 20000
	m.B = 2000
	return m
}

// fixture trains a small MLP (L2 or skewed) and returns it with data.
func fixture(t *testing.T, skewed bool) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.SynthConfig{Classes: 4, TrainN: 160, TestN: 60, C: 3, H: 8, W: 8, Noise: 0.15, Seed: 61}
	trainDS, testDS := dataset.MustGenerate(cfg)
	net, err := nn.NewMLP("m", []int{trainDS.SampleSize(), 20, 4}, tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var reg train.Regularizer = train.L2{Lambda: 1e-4}
	if skewed {
		// Pre-train betas from a short conventional run.
		if _, err := train.Train(net, trainDS, testDS, train.Config{
			Epochs: 3, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1, Reg: reg,
		}); err != nil {
			t.Fatal(err)
		}
		sk, err := train.NewSkewed(0.01, 0.001, train.BetasFromNetwork(net, 1.0))
		if err != nil {
			t.Fatal(err)
		}
		reg = sk
	}
	if _, err := train.Train(net, trainDS, testDS, train.Config{
		Epochs: 6, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1, Reg: reg,
	}); err != nil {
		t.Fatal(err)
	}
	return net, trainDS
}

func testConfig(target float64) Config {
	return Config{
		AppsPerCycle: 1000,
		MaxCycles:    25,
		TargetAcc:    target,
		DriftSigma:   0.05,
		EvalN:        64,
		Seed:         5,
		Tuning:       tuning.Config{MaxIters: 40, BatchSize: 32},
	}
}

func TestScenarioStringsAndPolicies(t *testing.T) {
	if TT.String() != "T+T" || STT.String() != "ST+T" || STAT.String() != "ST+AT" {
		t.Fatal("scenario labels must match the paper")
	}
	if TT.MappingPolicy().String() != "fresh" || STT.MappingPolicy().String() != "fresh" {
		t.Fatal("T+T and ST+T map with the fresh policy")
	}
	if STAT.MappingPolicy().String() != "aging-aware" {
		t.Fatal("ST+AT maps with the aging-aware policy")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	tinyTune := tuning.Config{MaxIters: 1, BatchSize: 1}
	bad := []Config{
		{AppsPerCycle: 0, MaxCycles: 1, TargetAcc: 0.5, EvalN: 1, Tuning: tinyTune},
		{AppsPerCycle: 1, MaxCycles: 0, TargetAcc: 0.5, EvalN: 1, Tuning: tinyTune},
		{AppsPerCycle: 1, MaxCycles: 1, TargetAcc: 0.5, EvalN: 1, Tuning: tuning.Config{MaxIters: 0, BatchSize: 1}},
		{AppsPerCycle: 1, MaxCycles: 1, TargetAcc: 0, EvalN: 1, Tuning: tinyTune},
		{AppsPerCycle: 1, MaxCycles: 1, TargetAcc: 0.5, EvalN: 1, Tuning: tuning.Config{MaxIters: 1, BatchSize: 0}},
		{AppsPerCycle: 1, MaxCycles: 1, TargetAcc: 0.5, EvalN: 0, Tuning: tinyTune},
		{AppsPerCycle: 1, MaxCycles: 1, TargetAcc: 0.5, DriftSigma: -1, EvalN: 1, Tuning: tinyTune},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: config %+v should be rejected", i, c)
		}
	}
}

func TestSuggestTargetRestoresWeights(t *testing.T) {
	net, trainDS := fixture(t, false)
	before := net.SnapshotParams()
	target, err := SuggestTarget(net, trainDS, device.Params32(), aging.DefaultModel(), 300, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if target <= 0 || target > 1 {
		t.Fatalf("suggested target %g out of range", target)
	}
	after := net.SnapshotParams()
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatal("SuggestTarget must leave the network untouched")
			}
		}
	}
}

func TestRunProducesRecordsAndFails(t *testing.T) {
	net, trainDS := fixture(t, false)
	target, err := SuggestTarget(net, trainDS, device.Params32(), fastAging(), 300, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, trainDS, TT, device.Params32(), fastAging(), 300, testConfig(target))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("run must record cycles")
	}
	if !res.Failed {
		t.Fatalf("aggressive aging must kill the array within %d cycles; lifetime=%d", testConfig(target).MaxCycles, res.Lifetime)
	}
	last := res.Records[len(res.Records)-1]
	if last.Converged {
		t.Fatal("the failing cycle must be non-converged")
	}
	if res.Lifetime != last.Apps {
		t.Fatalf("lifetime %d must equal apps at failure %d", res.Lifetime, last.Apps)
	}
	if res.Lifetime%1000 != 0 {
		t.Fatalf("lifetime %d must be a whole number of cycles", res.Lifetime)
	}
	// Cumulative apps must be non-decreasing and cycle indices dense.
	for i, r := range res.Records {
		if r.Cycle != i+1 {
			t.Fatalf("cycle indices must be 1..n, got %d at %d", r.Cycle, i)
		}
		if i > 0 && r.Apps < res.Records[i-1].Apps {
			t.Fatal("apps must be non-decreasing")
		}
	}
}

func TestTuningIterationsRiseTowardsFailure(t *testing.T) {
	net, trainDS := fixture(t, false)
	target, err := SuggestTarget(net, trainDS, device.Params32(), fastAging(), 300, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, trainDS, TT, device.Params32(), fastAging(), 300, testConfig(target))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) < 2 {
		t.Skip("array died on the first cycle; no trend to check")
	}
	first := res.Records[0].TuneIters
	last := res.Records[len(res.Records)-1].TuneIters
	if last <= first {
		t.Fatalf("Fig. 10 shape violated: tuning iterations %d -> %d must rise towards failure", first, last)
	}
}

func TestUpperBoundsDecayMonotonically(t *testing.T) {
	net, trainDS := fixture(t, false)
	target, err := SuggestTarget(net, trainDS, device.Params32(), fastAging(), 300, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(net, trainDS, TT, device.Params32(), fastAging(), 300, testConfig(target))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].FCUpper > res.Records[i-1].FCUpper+1e-9 {
			t.Fatal("mean aged upper bound must never recover (aging is irreversible)")
		}
	}
}

// TestSkewedOutlivesConventional is the light-weight version of the
// paper's Table I claim: with identical budgets, ST+T must outlive T+T.
func TestSkewedOutlivesConventional(t *testing.T) {
	ttNet, trainDS := fixture(t, false)
	target, err := SuggestTarget(ttNet, trainDS, device.Params32(), fastAging(), 300, 64, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := Run(ttNet, trainDS, TT, device.Params32(), fastAging(), 300, testConfig(target))
	if err != nil {
		t.Fatal(err)
	}

	stNet, _ := fixture(t, true)
	stTarget, err := SuggestTarget(stNet, trainDS, device.Params32(), fastAging(), 300, 64, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(stNet, trainDS, STT, device.Params32(), fastAging(), 300, testConfig(stTarget))
	if err != nil {
		t.Fatal(err)
	}
	if st.Lifetime < tt.Lifetime {
		t.Fatalf("ST+T lifetime %d must be >= T+T lifetime %d", st.Lifetime, tt.Lifetime)
	}
}
