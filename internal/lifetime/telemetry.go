package lifetime

import "memlife/internal/telemetry"

// Telemetry for the lifetime layer. Handles are resolved per call from
// the global registry — a deployment cycle costs full tuning runs, so
// the lookups are noise — and everything recorded here is a pure
// function of the simulated events (no wall-clock instruments), so the
// deterministic snapshot of two identical runs is bit-identical.
//
// Note on parallel campaigns: shards running concurrently append to the
// same "lifetime/timeline" instrument, so records from different shards
// interleave in schedule-dependent order. Each record carries its cycle
// number; consumers needing per-run trajectories should run sequentially
// (workers=1) or read Result.Records, which is always per-run.

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// recordCycleTel publishes one deployment cycle: a structured record on
// the lifetime timeline (the data behind the Fig. 10/11 trajectories —
// accuracy, tuning iterations, aged bounds by layer kind), a trace
// event, and the cycle counters.
func recordCycleTel(rec CycleRecord) {
	if telemetry.Global() == nil && telemetry.GlobalTracer() == nil {
		return
	}
	telemetry.T("lifetime/timeline").Append(map[string]float64{
		"cycle":       float64(rec.Cycle),
		"apps":        float64(rec.Apps),
		"tune_iters":  float64(rec.TuneIters),
		"converged":   b2f(rec.Converged),
		"acc":         rec.Acc,
		"remapped":    b2f(rec.Remapped),
		"map_clipped": float64(rec.MapClipped),
		"conv_upper":  rec.ConvUpper,
		"fc_upper":    rec.FCUpper,
		"stuck":       float64(rec.Stuck),
		"retries":     float64(rec.Retries),
		"degraded":    b2f(rec.Degraded),
	})
	telemetry.C("lifetime/cycles_total").Inc()
	if rec.Remapped {
		telemetry.C("lifetime/remaps_total").Inc()
	}
	if rec.Degraded {
		telemetry.C("lifetime/degraded_cycles_total").Inc()
	}
	telemetry.Event("lifetime/cycle", telemetry.Attrs{
		"cycle":      rec.Cycle,
		"acc":        rec.Acc,
		"tune_iters": rec.TuneIters,
		"remapped":   rec.Remapped,
		"stuck":      rec.Stuck,
	})
}

// recordRunTel publishes the outcome of one lifetime run.
func recordRunTel(res Result, err error) {
	if telemetry.Global() == nil {
		return
	}
	if err != nil {
		telemetry.C("lifetime/errors").Inc()
		return
	}
	telemetry.C("lifetime/runs").Inc()
	if res.Failed {
		telemetry.C("lifetime/failures").Inc()
	}
}
