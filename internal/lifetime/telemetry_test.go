package lifetime

import (
	"bytes"
	"testing"

	"memlife/internal/device"
	"memlife/internal/telemetry"
)

func sameResult(a, b Result) bool {
	if a.Lifetime != b.Lifetime || a.Failed != b.Failed ||
		a.DegradedAtCycle != b.DegradedAtCycle || a.FinalAcc != b.FinalAcc ||
		len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			return false
		}
	}
	return true
}

// TestTelemetrySnapshotDeterministic pins the telemetry determinism
// contract at the lifetime layer: (1) enabling telemetry does not
// change simulation results, and (2) two identical runs produce
// bit-identical deterministic snapshots (wall-clock instruments
// excluded) with the expected cycle-by-cycle timeline.
func TestTelemetrySnapshotDeterministic(t *testing.T) {
	net, trainDS := fixture(t, false)
	snap := net.SnapshotParams()
	cfg := testConfig(0.6)
	cfg.MaxCycles = 6

	runWith := func(reg *telemetry.Registry) Result {
		t.Helper()
		telemetry.SetGlobal(reg)
		defer telemetry.SetGlobal(nil)
		net.RestoreParams(snap)
		res, err := Run(net, trainDS, STAT, device.Params32(), fastAging(), 300, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := runWith(nil)
	regA := telemetry.NewRegistry()
	resA := runWith(regA)
	regB := telemetry.NewRegistry()
	resB := runWith(regB)

	if !sameResult(plain, resA) {
		t.Fatalf("telemetry changed simulation results:\noff %+v\non  %+v", plain, resA)
	}
	if !sameResult(resA, resB) {
		t.Fatalf("identical runs diverged:\nA %+v\nB %+v", resA, resB)
	}

	var a, b bytes.Buffer
	if err := regA.Snapshot().Deterministic().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := regB.Snapshot().Deterministic().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("deterministic snapshots differ between identical runs:\n--- A ---\n%s\n--- B ---\n%s", a.Bytes(), b.Bytes())
	}

	// The snapshot must actually hold the run: one timeline record per
	// cycle record, and matching cycle counters.
	full := regA.Snapshot()
	recs, ok := full.Timeline("lifetime/timeline")
	if !ok || len(recs) != len(resA.Records) {
		t.Fatalf("lifetime/timeline has %d records (present %v), want %d", len(recs), ok, len(resA.Records))
	}
	for i, rec := range resA.Records {
		if recs[i]["cycle"] != float64(rec.Cycle) || recs[i]["acc"] != rec.Acc ||
			recs[i]["tune_iters"] != float64(rec.TuneIters) ||
			recs[i]["conv_upper"] != rec.ConvUpper || recs[i]["fc_upper"] != rec.FCUpper {
			t.Fatalf("timeline record %d disagrees with CycleRecord:\n%v\nvs %+v", i, recs[i], rec)
		}
	}
	if v, ok := full.Counter("lifetime/cycles_total"); !ok || v != int64(len(resA.Records)) {
		t.Fatalf("lifetime/cycles_total = %d (present %v), want %d", v, ok, len(resA.Records))
	}
	if v, ok := full.Counter("tuning/runs"); !ok || v == 0 {
		t.Fatalf("tuning/runs = %d (present %v), want > 0", v, ok)
	}
}
