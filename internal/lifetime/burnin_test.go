package lifetime

import (
	"testing"

	"memlife/internal/device"
	"memlife/internal/mapping"
)

// TestBurnInShortensLifetime checks that injected prior-life stress
// reduces the measured lifetime, all else equal.
func TestBurnInShortensLifetime(t *testing.T) {
	net, trainDS := fixture(t, false)
	target, err := SuggestTarget(net, trainDS, device.Params32(), fastAging(), 300, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	snap := net.SnapshotParams()

	fresh, err := Run(net, trainDS, TT, device.Params32(), fastAging(), 300, testConfig(target))
	if err != nil {
		t.Fatal(err)
	}
	net.RestoreParams(snap)

	cfg := testConfig(target)
	cfg.BurnInStress = 5
	burned, err := Run(net, trainDS, TT, device.Params32(), fastAging(), 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.RestoreParams(snap)

	if burned.Lifetime > fresh.Lifetime {
		t.Fatalf("burn-in must not extend lifetime: %d vs %d", burned.Lifetime, fresh.Lifetime)
	}
}

func TestBurnInValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurnInStress = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative burn-in must be rejected")
	}
}

// TestPolicyOverridePlumbing verifies the override reaches the mapping
// layer: under a burn-in heavy enough to matter, the Fresh override on
// an STAT run must select full-range mappings (no aging-aware
// candidates recorded anywhere — observable via identical behaviour to
// an STT run with the same seed).
func TestPolicyOverridePlumbing(t *testing.T) {
	net, trainDS := fixture(t, false)
	target, err := SuggestTarget(net, trainDS, device.Params32(), fastAging(), 300, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	snap := net.SnapshotParams()

	cfg := testConfig(target)
	cfg.BurnInStress = 2
	fresh := mapping.Fresh
	cfg.PolicyOverride = &fresh
	overridden, err := Run(net, trainDS, STAT, device.Params32(), fastAging(), 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.RestoreParams(snap)

	cfg2 := testConfig(target)
	cfg2.BurnInStress = 2
	stt, err := Run(net, trainDS, STT, device.Params32(), fastAging(), 300, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	net.RestoreParams(snap)

	if overridden.Lifetime != stt.Lifetime {
		t.Fatalf("STAT overridden to fresh must behave like ST+T: %d vs %d", overridden.Lifetime, stt.Lifetime)
	}
}

// TestTraceStridePlumbing verifies the stride override is honoured (a
// smoke check that stride-1 runs complete and produce records).
func TestTraceStridePlumbing(t *testing.T) {
	net, trainDS := fixture(t, true)
	target, err := SuggestTarget(net, trainDS, device.Params32(), fastAging(), 300, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(target)
	cfg.TraceStride = 1
	cfg.MaxCycles = 5
	res, err := Run(net, trainDS, STAT, device.Params32(), fastAging(), 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("stride-1 run must record cycles")
	}
}
