package dataset

import (
	"math"
	"testing"

	"memlife/internal/tensor"
)

func smallCfg() SynthConfig {
	return SynthConfig{Classes: 4, TrainN: 40, TestN: 12, C: 3, H: 8, W: 8, Noise: 0.1, Seed: 11}
}

func TestGenerateShapesAndLabels(t *testing.T) {
	train, test := MustGenerate(smallCfg())
	if train.Len() != 40 || test.Len() != 12 {
		t.Fatalf("split sizes = %d/%d, want 40/12", train.Len(), test.Len())
	}
	if train.SampleSize() != 3*8*8 {
		t.Fatalf("sample size = %d, want 192", train.SampleSize())
	}
	counts := make([]int, 4)
	for _, y := range train.Labels {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for k, c := range counts {
		if c != 10 {
			t.Fatalf("class %d has %d samples, want balanced 10", k, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := MustGenerate(smallCfg())
	b, _ := MustGenerate(smallCfg())
	for i, v := range a.Images.Data() {
		if b.Images.Data()[i] != v {
			t.Fatal("same seed must generate identical data")
		}
	}
	cfg2 := smallCfg()
	cfg2.Seed = 99
	c, _ := MustGenerate(cfg2)
	same := true
	for i, v := range a.Images.Data() {
		if c.Images.Data()[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must generate different data")
	}
}

func TestTrainTestSplitsDiffer(t *testing.T) {
	train, test := MustGenerate(smallCfg())
	// The first train sample and first test sample share a class
	// prototype but different noise/jitter draws.
	a := train.Image(0).Data()
	b := test.Image(0).Data()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and test must use independent sample draws")
	}
}

// TestClassesAreSeparable verifies a nearest-class-mean classifier beats
// chance comfortably, i.e. the synthetic task is actually learnable.
func TestClassesAreSeparable(t *testing.T) {
	cfg := smallCfg()
	cfg.TrainN, cfg.TestN = 200, 80
	train, test := MustGenerate(cfg)

	means := make([]*tensor.Tensor, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for k := range means {
		means[k] = tensor.New(train.SampleSize())
	}
	for i := 0; i < train.Len(); i++ {
		k := train.Labels[i]
		means[k].Axpy(1, train.Image(i))
		counts[k]++
	}
	for k := range means {
		means[k].Scale(1 / float64(counts[k]))
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		img := test.Image(i)
		best, bestD := -1, math.Inf(1)
		for k := range means {
			d := 0.0
			for j, v := range img.Data() {
				diff := v - means[k].Data()[j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = k, d
			}
		}
		if best == test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.6 {
		t.Fatalf("nearest-mean accuracy %.2f; synthetic classes not separable enough", acc)
	}
}

func TestBatchesCoverAllSamplesOnce(t *testing.T) {
	train, _ := MustGenerate(smallCfg())
	batches := train.Batches(7, tensor.NewRNG(3))
	total := 0
	for _, b := range batches {
		if b.X.Dim(0) != len(b.Y) {
			t.Fatalf("batch X rows %d != labels %d", b.X.Dim(0), len(b.Y))
		}
		total += len(b.Y)
	}
	if total != train.Len() {
		t.Fatalf("batches cover %d samples, want %d", total, train.Len())
	}
	// Last short batch: 40 = 5*7 + 5.
	last := batches[len(batches)-1]
	if len(last.Y) != 5 {
		t.Fatalf("last batch size = %d, want 5", len(last.Y))
	}
}

func TestBatchesSequentialWhenNilRNG(t *testing.T) {
	train, _ := MustGenerate(smallCfg())
	batches := train.Batches(10, nil)
	for i, y := range batches[0].Y {
		if y != train.Labels[i] {
			t.Fatal("nil-RNG batching must preserve order")
		}
	}
}

func TestBatchesInvalidSizePanics(t *testing.T) {
	train, _ := MustGenerate(smallCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for batch size 0")
		}
	}()
	train.Batches(0, nil)
}

func TestOneHot(t *testing.T) {
	oh := OneHot([]int{2, 0}, 3)
	want := []float64{0, 0, 1, 1, 0, 0}
	for i, v := range want {
		if oh.Data()[i] != v {
			t.Fatalf("OneHot = %v, want %v", oh.Data(), want)
		}
	}
}

func TestOneHotOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	OneHot([]int{3}, 3)
}

func TestSubset(t *testing.T) {
	train, _ := MustGenerate(smallCfg())
	s := train.Subset(10)
	if s.Len() != 10 {
		t.Fatalf("subset len = %d, want 10", s.Len())
	}
	s.Images.Set(999, 0, 0)
	if train.Images.At(0, 0) == 999 {
		t.Fatal("Subset must copy image storage")
	}
	if train.Subset(10_000).Len() != train.Len() {
		t.Fatal("oversized Subset must clamp to dataset length")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []SynthConfig{
		{Classes: 1, TrainN: 10, TestN: 5, C: 3, H: 8, W: 8},
		{Classes: 4, TrainN: 2, TestN: 5, C: 3, H: 8, W: 8},
		{Classes: 4, TrainN: 10, TestN: 0, C: 3, H: 8, W: 8},
		{Classes: 4, TrainN: 10, TestN: 5, C: 0, H: 8, W: 8},
		{Classes: 4, TrainN: 10, TestN: 5, C: 3, H: 2, W: 8},
		{Classes: 4, TrainN: 10, TestN: 5, C: 3, H: 8, W: 8, Noise: -1},
	}
	for i, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}

func TestStandardConfigsAreValid(t *testing.T) {
	if err := Synth10Config(1).Validate(); err != nil {
		t.Fatalf("Synth10Config invalid: %v", err)
	}
	if err := Synth100Config(1).Validate(); err != nil {
		t.Fatalf("Synth100Config invalid: %v", err)
	}
	if Synth10Config(1).Classes != 10 || Synth100Config(1).Classes != 100 {
		t.Fatal("standard configs must mirror CIFAR class counts")
	}
}
