// Package dataset provides deterministic synthetic image-classification
// datasets that stand in for CIFAR-10 and CIFAR-100 in the paper's
// experiments.
//
// The paper's aging results depend on (a) the weight distributions that
// training produces, (b) the quantization behaviour of the mapped
// weights, and (c) how many online-tuning iterations are needed to reach
// a target accuracy — not on natural-image semantics. Each synthetic
// class is a parametric texture (an oriented colour grating plus a
// Gaussian blob, both derived deterministically from the class index),
// and each sample perturbs the prototype with noise, translation and
// amplitude jitter. The result is a multi-class image task with the
// same tensor shapes as CIFAR that small CNNs can learn quickly on CPU.
package dataset

import (
	"fmt"
	"math"

	"memlife/internal/tensor"
)

// Dataset is an in-memory labelled image dataset. Images are stored as a
// single rank-2 tensor of shape [N, C*H*W] with row i holding sample i
// in channel-major (C,H,W) order.
type Dataset struct {
	Images     *tensor.Tensor
	Labels     []int
	NumClasses int
	C, H, W    int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// SampleSize returns the flattened size of one image.
func (d *Dataset) SampleSize() int { return d.C * d.H * d.W }

// Image returns a view of sample i as a rank-1 tensor sharing storage.
func (d *Dataset) Image(i int) *tensor.Tensor { return d.Images.RowSlice(i) }

// Subset returns a dataset containing the first n samples (views, not
// copies, of the image storage are NOT taken: images are copied so the
// subset is independent).
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	imgs := tensor.New(n, d.SampleSize())
	copy(imgs.Data(), d.Images.Data()[:n*d.SampleSize()])
	return &Dataset{
		Images:     imgs,
		Labels:     append([]int(nil), d.Labels[:n]...),
		NumClasses: d.NumClasses,
		C:          d.C, H: d.H, W: d.W,
	}
}

// Batch is one minibatch: X has shape [B, C*H*W], Y holds class indices.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// Batches splits the dataset into minibatches after shuffling with rng.
// If rng is nil the order is sequential. The final short batch is kept.
func (d *Dataset) Batches(batchSize int, rng *tensor.RNG) []Batch {
	if batchSize <= 0 {
		panic(fmt.Sprintf("dataset: batch size must be positive, got %d", batchSize))
	}
	n := d.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		order = rng.Perm(n)
	}
	var out []Batch
	ss := d.SampleSize()
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		b := end - start
		x := tensor.New(b, ss)
		y := make([]int, b)
		for i := 0; i < b; i++ {
			src := d.Image(order[start+i]).Data()
			copy(x.Data()[i*ss:(i+1)*ss], src)
			y[i] = d.Labels[order[start+i]]
		}
		out = append(out, Batch{X: x, Y: y})
	}
	return out
}

// OneHot converts class indices to a [len(y), classes] indicator tensor.
func OneHot(y []int, classes int) *tensor.Tensor {
	out := tensor.New(len(y), classes)
	for i, c := range y {
		if c < 0 || c >= classes {
			panic(fmt.Sprintf("dataset: label %d out of range [0,%d)", c, classes))
		}
		out.Set(1, i, c)
	}
	return out
}

// SynthConfig parameterizes a synthetic dataset.
type SynthConfig struct {
	Classes int // number of classes
	TrainN  int // training samples
	TestN   int // test samples
	C, H, W int // image shape
	Noise   float64
	Seed    int64
}

// Validate reports an error for degenerate configurations.
func (c SynthConfig) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("dataset: need at least 2 classes, got %d", c.Classes)
	case c.TrainN < c.Classes || c.TestN < 1:
		return fmt.Errorf("dataset: need >= %d train and >= 1 test samples, got %d/%d", c.Classes, c.TrainN, c.TestN)
	case c.C < 1 || c.H < 4 || c.W < 4:
		return fmt.Errorf("dataset: image shape too small: C=%d H=%d W=%d", c.C, c.H, c.W)
	case c.Noise < 0:
		return fmt.Errorf("dataset: noise must be non-negative, got %g", c.Noise)
	}
	return nil
}

// Synth10Config mirrors CIFAR-10's shape (10 classes, 32x32x3) at a
// sample count small enough for CPU experiments.
func Synth10Config(seed int64) SynthConfig {
	return SynthConfig{Classes: 10, TrainN: 800, TestN: 200, C: 3, H: 16, W: 16, Noise: 0.25, Seed: seed}
}

// Synth100Config mirrors CIFAR-100's class count.
func Synth100Config(seed int64) SynthConfig {
	return SynthConfig{Classes: 100, TrainN: 3000, TestN: 500, C: 3, H: 16, W: 16, Noise: 0.2, Seed: seed}
}

// classProto holds the deterministic texture parameters of one class.
type classProto struct {
	fx, fy, phase float64    // grating frequency and phase
	colorW        [3]float64 // per-channel grating weight
	blobY, blobX  float64    // blob centre in [0,1]
	blobAmp       float64
	bias          float64
}

// protoFor derives class k's texture parameters from a dedicated RNG so
// that prototypes are independent of sample counts.
func protoFor(k int, seed int64) classProto {
	r := tensor.NewRNG(seed*1_000_003 + int64(k)*7919)
	p := classProto{
		fx:      0.5 + 3.5*r.Float64(),
		fy:      0.5 + 3.5*r.Float64(),
		phase:   2 * math.Pi * r.Float64(),
		blobY:   r.Float64(),
		blobX:   r.Float64(),
		blobAmp: 0.6 + 0.8*r.Float64(),
		bias:    0.4*r.Float64() - 0.2,
	}
	for c := 0; c < 3; c++ {
		p.colorW[c] = r.Uniform(-1, 1)
	}
	return p
}

// renderSample writes one perturbed sample of proto into dst (length
// C*H*W, channel-major).
func renderSample(dst []float64, p classProto, cfg SynthConfig, r *tensor.RNG) {
	shiftY := r.Uniform(-2, 2)
	shiftX := r.Uniform(-2, 2)
	amp := 0.8 + 0.4*r.Float64()
	hw := cfg.H * cfg.W
	for c := 0; c < cfg.C; c++ {
		cw := p.colorW[c%3]
		for y := 0; y < cfg.H; y++ {
			fy := (float64(y) + shiftY) / float64(cfg.H)
			for x := 0; x < cfg.W; x++ {
				fx := (float64(x) + shiftX) / float64(cfg.W)
				grating := math.Sin(2*math.Pi*(p.fx*fx+p.fy*fy) + p.phase)
				dy := fy - p.blobY
				dx := fx - p.blobX
				blob := p.blobAmp * math.Exp(-(dy*dy+dx*dx)/0.05)
				v := amp*(cw*grating+blob) + p.bias + cfg.Noise*r.Normal(0, 1)
				dst[c*hw+y*cfg.W+x] = v
			}
		}
	}
}

// Generate builds train and test datasets for cfg. Both splits draw
// classes round-robin so every class is equally represented, and the
// whole construction is deterministic in cfg.Seed.
func Generate(cfg SynthConfig) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	protos := make([]classProto, cfg.Classes)
	for k := range protos {
		protos[k] = protoFor(k, cfg.Seed)
	}
	build := func(n int, r *tensor.RNG) *Dataset {
		d := &Dataset{
			Images:     tensor.New(n, cfg.C*cfg.H*cfg.W),
			Labels:     make([]int, n),
			NumClasses: cfg.Classes,
			C:          cfg.C, H: cfg.H, W: cfg.W,
		}
		ss := d.SampleSize()
		for i := 0; i < n; i++ {
			k := i % cfg.Classes
			d.Labels[i] = k
			renderSample(d.Images.Data()[i*ss:(i+1)*ss], protos[k], cfg, r)
		}
		return d
	}
	trainRNG := tensor.NewRNG(cfg.Seed + 1)
	testRNG := tensor.NewRNG(cfg.Seed + 2)
	return build(cfg.TrainN, trainRNG), build(cfg.TestN, testRNG), nil
}

// MustGenerate is Generate for known-good configs; it panics on error.
func MustGenerate(cfg SynthConfig) (train, test *Dataset) {
	train, test, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return train, test
}
