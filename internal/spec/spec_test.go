package spec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memlife/internal/device"
	"memlife/internal/lifetime"
	"memlife/internal/mapping"
)

func writeScenario(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDefaultsResolvedAndValid: the stage-1 base must validate as-is and
// carry every "zero means X" fallback already resolved, so the
// serialized form is the effective form.
func TestDefaultsResolvedAndValid(t *testing.T) {
	for _, tc := range []struct {
		fixture string
		fast    bool
	}{
		{FixtureLeNet, false},
		{FixtureLeNet, true},
		{FixtureVGG, false},
		{FixtureVGG, true},
	} {
		s := Defaults(tc.fixture, tc.fast)
		if err := s.Validate(); err != nil {
			t.Fatalf("Defaults(%q, fast=%v) must validate: %v", tc.fixture, tc.fast, err)
		}
		lt := s.Lifetime
		if lt.Tuning.Patience != 10 || lt.Tuning.RetryBudget != 2 || lt.Tuning.StepFrac != 0.25 {
			t.Fatalf("tuning fallbacks must be resolved in defaults, got %+v", lt.Tuning)
		}
		if lt.Mapping.MaxCandidates != 8 || lt.Mapping.MinLevels != 4 {
			t.Fatalf("mapping fallbacks must be resolved in defaults, got %+v", lt.Mapping)
		}
		if lt.Faults.LRSFrac != 0.5 || lt.Faults.HazardSpread != 0.5 {
			t.Fatalf("fault fallbacks must be resolved in defaults, got %+v", lt.Faults)
		}
		if lt.RemapIterFrac == 0 {
			t.Fatal("lifetime remap fraction fallback must be resolved in defaults")
		}
	}
	if Defaults(FixtureLeNet, false).Fixture.Skew != LeNetSkew() {
		t.Fatal("lenet defaults must carry the LeNet skew constants")
	}
	if Defaults(FixtureVGG, false).Fixture.Skew != VGGSkew() {
		t.Fatal("vgg defaults must carry the VGG skew constants")
	}
}

// TestResolvePrecedence is the three-stage chain contract: package
// defaults lose to scenario-file values, which lose to explicit flag
// overrides — checked field by field across the stages.
func TestResolvePrecedence(t *testing.T) {
	file := `{
		"version": 1,
		"fixture": {"name": "lenet"},
		"scenario": "T+T",
		"temp_k": 310,
		"lifetime": {"max_cycles": 33},
		"run": {"fast": true, "seed": 7}
	}`

	t.Run("defaults only", func(t *testing.T) {
		s, err := ResolveBytes(nil, Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		d := Defaults(FixtureLeNet, false)
		if s != d {
			t.Fatalf("empty resolution must equal defaults:\ngot  %+v\nwant %+v", s, d)
		}
	})

	t.Run("file over defaults", func(t *testing.T) {
		s, err := ResolveBytes([]byte(file), Overrides{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Scenario != "T+T" || s.TempK != 310 || s.Lifetime.MaxCycles != 33 || s.Run.Seed != 7 {
			t.Fatalf("file values must override defaults, got scenario=%q temp=%g cycles=%d seed=%d",
				s.Scenario, s.TempK, s.Lifetime.MaxCycles, s.Run.Seed)
		}
		// run.fast=true in the file must have selected the fast defaults
		// tier for everything the file does not mention.
		fast := Defaults(FixtureLeNet, true)
		if s.Lifetime.Tuning.MaxIters != fast.Lifetime.Tuning.MaxIters || s.Lifetime.EvalN != fast.Lifetime.EvalN {
			t.Fatalf("file fast=true must pick the fast defaults tier, got tuning=%+v evalN=%d",
				s.Lifetime.Tuning, s.Lifetime.EvalN)
		}
		// Fields the file omits keep their (tiered) defaults.
		if s.Device != fast.Device || s.Aging != fast.Aging {
			t.Fatal("unmentioned sections must keep their defaults")
		}
	})

	t.Run("flags over file", func(t *testing.T) {
		fastOff := false
		seed := int64(99)
		scenario := "ST+AT"
		workers := 4
		s, err := ResolveBytes([]byte(file), Overrides{
			Fast: &fastOff, Seed: &seed, Scenario: &scenario, Workers: &workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s.Run.Fast || s.Run.Seed != 99 || s.Scenario != "ST+AT" || s.Run.Workers != 4 {
			t.Fatalf("flag overrides must win over the file, got %+v", s.Run)
		}
		// The -fast override participates in the probe too: with fast
		// forced off, the defaults tier under the file must be the full
		// one.
		full := Defaults(FixtureLeNet, false)
		if s.Lifetime.Tuning.MaxIters != full.Lifetime.Tuning.MaxIters {
			t.Fatalf("flag fast=false must pick the full defaults tier, got MaxIters=%d",
				s.Lifetime.Tuning.MaxIters)
		}
		// File values no flag touches survive.
		if s.TempK != 310 || s.Lifetime.MaxCycles != 33 {
			t.Fatal("file values without overriding flags must survive")
		}
	})
}

// TestResolveFileSparse: a sparse file overrides only what it mentions,
// via the real file path entry point.
func TestResolveFileSparse(t *testing.T) {
	path := writeScenario(t, `{"version": 1, "fixture": {"name": "vgg"}, "scenario": "ST+T"}`)
	s, err := ResolveFile(path, Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fixture.Name != FixtureVGG || s.Scenario != "ST+T" {
		t.Fatalf("file fields lost: %+v", s.Fixture)
	}
	if s.Fixture.Skew != VGGSkew() {
		t.Fatal("the fixture name in the file must select the VGG skew defaults")
	}
	if s.Lifetime.MaxCycles != Defaults(FixtureVGG, false).Lifetime.MaxCycles {
		t.Fatal("unmentioned budget fields must keep defaults")
	}
}

// TestResolveErrors: unknown fields, bad JSON, and missing files are
// loud errors, never silently ignored.
func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown top-level field", `{"version": 1, "scenaro": "T+T"}`, "scenaro"},
		{"unknown nested field", `{"version": 1, "lifetime": {"tune_cap": 150}}`, "tune_cap"},
		{"malformed json", `{"version": 1,`, "parse scenario"},
		{"wrong version", `{"version": 99}`, "version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ResolveBytes([]byte(tc.body), Overrides{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error mentioning %q, got %v", tc.want, err)
			}
		})
	}
	if _, err := ResolveFile(filepath.Join(t.TempDir(), "absent.json"), Overrides{}); err == nil {
		t.Fatal("missing scenario file must error")
	}
}

// TestValidateCollectsAllErrors: a spec violating several constraints
// reports every violation at once, each under its JSON field path.
func TestValidateCollectsAllErrors(t *testing.T) {
	s := Defaults(FixtureLeNet, false)
	s.Fixture.Name = "alexnet"
	s.Scenario = "bogus"
	s.Policy = "random"
	s.TempK = -1
	s.Lifetime.MaxCycles = 0
	s.Lifetime.Tuning.MaxIters = 0
	s.Lifetime.Tuning.BatchSize = 0
	s.Run.Seed = 0
	s.Run.TargetScale = 2

	err := s.Validate()
	if err == nil {
		t.Fatal("invalid spec must be rejected")
	}
	msg := err.Error()
	for _, path := range []string{
		"fixture.name",
		"scenario",
		"policy",
		"temp_k",
		"lifetime.max_cycles",
		"lifetime.tuning.max_iters",
		"lifetime.tuning.batch_size",
		"run.seed",
		"run.target_scale",
	} {
		if !strings.Contains(msg, path+":") {
			t.Errorf("validation must report %q, got:\n%s", path, msg)
		}
	}
}

// TestValidationFieldTable exercises individual constraints one at a
// time so each field's bound is pinned.
func TestValidationFieldTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		path   string
	}{
		{"negative lambda", func(s *Spec) { s.Fixture.Skew.Lambda1 = -1 }, "fixture.skew"},
		{"target acc above one", func(s *Spec) { s.Lifetime.TargetAcc = 1.5 }, "lifetime.target_acc"},
		{"negative drift", func(s *Spec) { s.Lifetime.DriftSigma = -0.1 }, "lifetime.drift_sigma"},
		{"zero eval", func(s *Spec) { s.Lifetime.EvalN = 0 }, "lifetime.eval_n"},
		{"negative trace stride", func(s *Spec) { s.Lifetime.TraceStride = -1 }, "lifetime.trace_stride"},
		{"remap frac above one", func(s *Spec) { s.Lifetime.RemapIterFrac = 1.5 }, "lifetime.remap_iter_frac"},
		{"degraded frac one", func(s *Spec) { s.Lifetime.DegradedAccFrac = 1 }, "lifetime.degraded_acc_frac"},
		{"step frac above one", func(s *Spec) { s.Lifetime.Tuning.StepFrac = 1.5 }, "lifetime.tuning.step_frac"},
		{"negative candidates", func(s *Spec) { s.Lifetime.Mapping.MaxCandidates = -1 }, "lifetime.mapping.max_candidates"},
		{"bad fault rate", func(s *Spec) { s.Lifetime.Faults.StuckRate = 2 }, "lifetime.faults"},
		{"margin one", func(s *Spec) { s.Run.TargetMargin = 1 }, "run.target_margin"},
		{"zero scale", func(s *Spec) { s.Run.TargetScale = 0 }, "run.target_scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Defaults(FixtureLeNet, false)
			tc.mutate(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.path+":") {
				t.Fatalf("want error under path %q, got %v", tc.path, err)
			}
		})
	}
}

// TestDumpRoundTrip: a dumped spec fed back through the resolver
// reproduces the identical spec and fingerprint — the -dump-spec ->
// -scenario contract.
func TestDumpRoundTrip(t *testing.T) {
	s := Defaults(FixtureVGG, true)
	s.Name = "round-trip"
	s.Scenario = "ST+T"
	s.Lifetime.Faults.StuckRate = 0.01
	s.Lifetime.Faults.HazardScale = 40

	dump, err := s.Dump()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ResolveBytes(dump, Overrides{})
	if err != nil {
		t.Fatalf("dumped spec must resolve cleanly: %v", err)
	}
	if back != s {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", back, s)
	}
	fp1, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("round trip changed the fingerprint: %s vs %s", fp1, fp2)
	}
}

// TestFingerprint pins the hash semantics: stable across calls,
// sensitive to every schema-visible parameter, insensitive to pure
// speed knobs.
func TestFingerprint(t *testing.T) {
	base := Defaults(FixtureLeNet, false)
	fp := func(s Spec) string {
		t.Helper()
		h, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	if a, b := fp(base), fp(Defaults(FixtureLeNet, false)); a != b {
		t.Fatalf("identical specs must share a fingerprint: %s vs %s", a, b)
	}
	if len(fp(base)) != 16 {
		t.Fatalf("fingerprint must be 16 hex chars, got %q", fp(base))
	}

	mutations := map[string]func(*Spec){
		"fixture":     func(s *Spec) { s.Fixture.Name = FixtureVGG },
		"skew":        func(s *Spec) { s.Fixture.Skew.Lambda1 *= 2 },
		"scenario":    func(s *Spec) { s.Scenario = "T+T" },
		"policy":      func(s *Spec) { s.Policy = "worst-case" },
		"device":      func(s *Spec) { s.Device.Levels = 64 },
		"aging":       func(s *Spec) { s.Aging.A *= 2 },
		"temperature": func(s *Spec) { s.TempK = 310 },
		"budget":      func(s *Spec) { s.Lifetime.MaxCycles++ },
		"tuning":      func(s *Spec) { s.Lifetime.Tuning.MaxIters++ },
		"mapping":     func(s *Spec) { s.Lifetime.Mapping.FaultAware = true },
		"faults":      func(s *Spec) { s.Lifetime.Faults.StuckRate = 0.01 },
		"seed":        func(s *Spec) { s.Run.Seed++ },
		"fast":        func(s *Spec) { s.Run.Fast = true },
	}
	for name, mutate := range mutations {
		s := base
		mutate(&s)
		if fp(s) == fp(base) {
			t.Errorf("mutation %q must change the fingerprint", name)
		}
	}

	// Workers is a speed knob: same results, same fingerprint.
	s := base
	s.Run.Workers = 8
	s.Lifetime.Tuning.Workers = 8
	if fp(s) != fp(base) {
		t.Fatal("worker counts must not change the fingerprint")
	}
	// Runtime-injected fields are excluded too.
	s = base
	s.Lifetime.Seed = 42
	s.Lifetime.Tuning.TargetAcc = 0.9
	s.Lifetime.Faults.Seed = 7
	if fp(s) != fp(base) {
		t.Fatal("runtime-injected fields must not change the fingerprint")
	}
}

// TestFixtureFingerprint: bundle sharing is keyed on exactly the
// training-shaping parameters.
func TestFixtureFingerprint(t *testing.T) {
	fp := func(s Spec) string {
		t.Helper()
		h, err := s.FixtureFingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := Defaults(FixtureLeNet, false)

	// Simulation-phase parameters do not re-train the bundle.
	sim := base
	sim.Scenario = "T+T"
	sim.TempK = 310
	sim.Lifetime.MaxCycles = 5
	sim.Lifetime.Faults.StuckRate = 0.05
	if fp(sim) != fp(base) {
		t.Fatal("simulation-phase changes must share the trained bundle")
	}

	for name, mutate := range map[string]func(*Spec){
		"fixture": func(s *Spec) { s.Fixture.Name = FixtureVGG },
		"skew":    func(s *Spec) { s.Fixture.Skew.BetaFactor = -1 },
		"fast":    func(s *Spec) { s.Run.Fast = true },
		"seed":    func(s *Spec) { s.Run.Seed = 2 },
	} {
		s := base
		mutate(&s)
		if fp(s) == fp(base) {
			t.Errorf("mutation %q shapes training and must change the fixture fingerprint", name)
		}
	}
}

// TestLifetimeConfigInjection: the runtime-injected fields come from
// the spec's run section and the caller's target.
func TestLifetimeConfigInjection(t *testing.T) {
	s := Defaults(FixtureLeNet, true)
	s.Run.Seed = 17
	s.Run.Workers = 3
	s.Policy = "mean-bound"
	cfg := s.LifetimeConfig(0.8)
	if cfg.TargetAcc != 0.8 || cfg.Seed != 17 || cfg.Tuning.Workers != 3 {
		t.Fatalf("injection lost: %+v", cfg)
	}
	if cfg.PolicyOverride == nil || *cfg.PolicyOverride != mapping.MeanBound {
		t.Fatalf("policy override lost: %v", cfg.PolicyOverride)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("injected config must validate: %v", err)
	}

	s.Policy = ""
	if cfg := s.LifetimeConfig(0.8); cfg.PolicyOverride != nil {
		t.Fatal("empty policy must not override")
	}
}

// TestScenarioKind: the label maps onto the lifetime scenarios.
func TestScenarioKind(t *testing.T) {
	for label, want := range map[string]lifetime.Scenario{
		"T+T": lifetime.TT, "ST+T": lifetime.STT, "ST+AT": lifetime.STAT,
	} {
		s := Defaults(FixtureLeNet, false)
		s.Scenario = label
		got, err := s.ScenarioKind()
		if err != nil || got != want {
			t.Fatalf("%q: got %v, %v", label, got, err)
		}
	}
}

// TestFleetBlockResolution: a scenario with a sparse fleet block must
// resolve to a normalized, valid config that is a fixed point under
// dump -> resolve, and fleet validation errors must surface under
// their JSON paths.
func TestFleetBlockResolution(t *testing.T) {
	s, err := ResolveBytes([]byte(`{
		"version": 1,
		"fleet": {"instances": 6, "ticks": 300}
	}`), Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fleet == nil {
		t.Fatal("fleet block lost in resolution")
	}
	if s.Fleet.Instances != 6 || s.Fleet.Ticks != 300 {
		t.Fatalf("explicit fleet fields lost: %+v", s.Fleet)
	}
	// Sparse fields must have been normalized to their defaults.
	if s.Fleet.Balancer == "" || s.Fleet.Traffic.Pattern == "" || s.Fleet.Service.Capacity == 0 {
		t.Fatalf("fleet fallbacks not resolved: %+v", s.Fleet)
	}
	if *s.Fleet != s.Fleet.Normalized() {
		t.Fatal("resolved fleet block must be a normalization fixed point")
	}

	// Dump -> resolve must reproduce the identical fleet block.
	dump, err := s.Dump()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ResolveBytes(dump, Overrides{})
	if err != nil {
		t.Fatalf("dumped fleet spec must resolve cleanly: %v", err)
	}
	if back.Fleet == nil || *back.Fleet != *s.Fleet {
		t.Fatalf("fleet round trip drifted:\ngot  %+v\nwant %+v", back.Fleet, s.Fleet)
	}

	// An invalid fleet block must be rejected under its JSON path.
	_, err = ResolveBytes([]byte(`{
		"version": 1,
		"fleet": {"instances": 6, "ticks": 300, "balancer": "random"}
	}`), Overrides{})
	if err == nil || !strings.Contains(err.Error(), "fleet.balancer") {
		t.Fatalf("want fleet.balancer error, got %v", err)
	}
	// Unknown fleet fields are loud, like everywhere else in the schema.
	_, err = ResolveBytes([]byte(`{
		"version": 1,
		"fleet": {"instnces": 6}
	}`), Overrides{})
	if err == nil || !strings.Contains(err.Error(), "instnces") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

// TestFleetFingerprint: adding a fleet block changes the fingerprint;
// specs without one keep their historical hashes (the field is an
// omitted pointer).
func TestFleetFingerprint(t *testing.T) {
	base := Defaults(FixtureLeNet, false)
	fpBase, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// The serialized form of a fleet-less spec must not mention fleet at
	// all — that is what preserves pre-fleet fingerprints.
	dump, err := base.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(dump), "\"fleet\"") {
		t.Fatal("nil fleet must be omitted from the dumped spec")
	}

	withFleet := base
	cfg := DefaultFleet(base)
	withFleet.Fleet = &cfg
	fpFleet, err := withFleet.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpFleet == fpBase {
		t.Fatal("fleet block must change the fingerprint")
	}

	mutated := withFleet
	cfg2 := cfg
	cfg2.Traffic.Load *= 2
	mutated.Fleet = &cfg2
	fpMut, err := mutated.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpMut == fpFleet {
		t.Fatal("fleet parameter changes must change the fingerprint")
	}
}

// TestDumpRoundTripDeviceModel is the fixed-point contract for the
// device-model zoo: a spec selecting a non-default physics model, with
// variation sigmas, state drift and a drift-adaptive tuning policy,
// must survive dump -> resolve byte-identically (same spec, same
// fingerprint) — and a default spec must serialize *without* the
// model/drift/policy keys at all, so every pre-zoo scenario file keeps
// its historical fingerprint.
func TestDumpRoundTripDeviceModel(t *testing.T) {
	s := Defaults(FixtureLeNet, true)
	s.Name = "model-round-trip"
	s.Device.Model = device.ModelSpec{Kind: device.ModelDiffusive, D2D: 0.05, C2C: 0.02}
	s.Device.Drift = device.DriftSpec{Nu: 0.05}
	s.Lifetime.Tuning.Policy = "recalib"

	dump, err := s.Dump()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"model"`, `"drift"`, `"policy"`, `"d2d"`, `"c2c"`, `"nu"`} {
		if !strings.Contains(string(dump), key) {
			t.Fatalf("dump of a non-default model spec must surface %s:\n%s", key, dump)
		}
	}
	back, err := ResolveBytes(dump, Overrides{})
	if err != nil {
		t.Fatalf("dumped spec must resolve cleanly: %v", err)
	}
	if back != s {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", back, s)
	}
	fp1, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("round trip changed the fingerprint: %s vs %s", fp1, fp2)
	}

	// The zero-value blocks must vanish from serialization: a default
	// spec's canonical form mentions none of the new schema keys.
	def := Defaults(FixtureLeNet, true)
	canon, err := def.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"model"`, `"drift"`, `"policy"`} {
		if strings.Contains(string(canon), key) {
			t.Fatalf("default spec must not serialize %s (fingerprint compatibility):\n%s", key, canon)
		}
	}
}

// TestDeviceModelOverrides pins the CLI override path: -device-model
// and -tuning-policy reach the resolved spec, and invalid values are
// rejected with the offending JSON path.
func TestDeviceModelOverrides(t *testing.T) {
	model, policy := "yacopcic", "minreprog"
	s, err := ResolveBytes(nil, Overrides{DeviceModel: &model, TuningPolicy: &policy})
	if err != nil {
		t.Fatal(err)
	}
	if s.Device.Model.Kind != model {
		t.Fatalf("device model override not applied: %+v", s.Device.Model)
	}
	if s.Lifetime.Tuning.Policy != policy {
		t.Fatalf("tuning policy override not applied: %q", s.Lifetime.Tuning.Policy)
	}

	bad := "nonsense"
	if _, err := ResolveBytes(nil, Overrides{DeviceModel: &bad}); err == nil || !strings.Contains(err.Error(), "device") {
		t.Fatalf("invalid device model must fail under the device path, got %v", err)
	}
	if _, err := ResolveBytes(nil, Overrides{TuningPolicy: &bad}); err == nil || !strings.Contains(err.Error(), "lifetime.tuning.policy") {
		t.Fatalf("invalid tuning policy must fail under lifetime.tuning.policy, got %v", err)
	}
}
