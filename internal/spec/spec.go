// Package spec defines the unified scenario specification: one
// versioned, serializable, validatable, hashable Spec that composes
// every layer's parameters — device technology, aging calibration,
// fault injection, mapping, tuning, the lifetime budget, the
// network/dataset fixture with its skewed-training constants, and run
// options. A Spec fully determines one lifetime study; everything a
// registered experiment or a campaign shard runs is a base Spec plus a
// small transform.
//
// Resolution is a three-stage chain:
//
//  1. Defaults(fixture, fast) — the package defaults, with every
//     "zero means X" fallback of the underlying packages already
//     resolved (the serialized form is the effective form);
//  2. a scenario file (JSON, strict: unknown fields are rejected)
//     overlaid on the defaults — sparse files override only what they
//     mention;
//  3. CLI flag overrides applied last.
//
// Fingerprint hashes the canonical (key-sorted) JSON encoding of the
// resolved Spec, so two configurations share a fingerprint iff they
// resolve to the same parameters. The experiments bundle cache and the
// campaign checkpoint journal key on these hashes, which makes cache
// collisions across differing configurations impossible.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"memlife/internal/aging"
	"memlife/internal/device"
	"memlife/internal/fleet"
	"memlife/internal/lifetime"
	"memlife/internal/mapping"
	"memlife/internal/tuning"
)

// Version is the current spec schema version. Files declaring a
// different version are rejected, so old files fail loudly instead of
// silently resolving against a changed schema.
const Version = 1

// FixtureLeNet and FixtureVGG name the two built-in network/dataset
// test cases of Table I.
const (
	FixtureLeNet = "lenet"
	FixtureVGG   = "vgg"
)

// SkewParams are the skewed-training constants of Table II: the
// reference weight beta_i = BetaFactor * sigma_i of each layer, and the
// two segment penalties.
type SkewParams struct {
	BetaFactor float64 `json:"beta_factor"`
	Lambda1    float64 `json:"lambda1"`
	Lambda2    float64 `json:"lambda2"`
}

// LeNetSkew returns the LeNet-5 setting: lambda1 >> lambda2, as in the
// paper's Table II. The reference weight sits at the left edge of the
// conventional distribution (beta_i = -0.5 * sigma_i): the strong
// lambda1 penalty forms a wall below beta while the weak lambda2 drags
// the mass down towards it, producing the left-concentrated skewed
// distribution of Fig. 6(a) whose weights map to small conductances.
func LeNetSkew() SkewParams { return SkewParams{BetaFactor: -0.5, Lambda1: 0.5, Lambda2: 0.005} }

// VGGSkew returns the VGG-16 setting: the paper sets lambda1 == lambda2
// for VGG-16 because its depth makes accuracy more sensitive to the
// asymmetric penalty.
func VGGSkew() SkewParams { return SkewParams{BetaFactor: -0.5, Lambda1: 0.01, Lambda2: 0.01} }

// Fixture selects the network/dataset test case and its skewed-training
// constants.
type Fixture struct {
	// Name is "lenet" or "vgg".
	Name string `json:"name"`
	// Skew holds the Table II constants used to train the skewed
	// variant of the fixture.
	Skew SkewParams `json:"skew"`
}

// Run holds run-shaping options that are not simulation physics.
type Run struct {
	// Fast shrinks networks, datasets and budgets so a run finishes in
	// seconds; full mode reproduces the reported numbers. Fast selects
	// a different set of Defaults, so a file that sets it influences
	// stage 1 of the resolution chain as well.
	Fast bool `json:"fast"`
	// Seed makes training, mapping, drift and fault draws reproducible.
	Seed int64 `json:"seed"`
	// TargetMargin is subtracted from the fresh-mapped hardware
	// accuracy when the tuning target is auto-derived
	// (lifetime.target_acc == 0); see lifetime.SuggestTarget.
	TargetMargin float64 `json:"target_margin"`
	// TargetScale multiplies the auto-derived target; the fault sweep
	// serves at 0.9x the clean target so defect density, not target
	// tightness, sets the lifetime.
	TargetScale float64 `json:"target_scale"`
	// Workers is the forward-pass evaluation parallelism. Results are
	// bit-identical for every value, so it is a pure speed knob and is
	// deliberately excluded from the schema and the fingerprint.
	Workers int `json:"-"`
}

// Spec is the unified scenario specification.
type Spec struct {
	// Version pins the schema; see the package constant.
	Version int `json:"version"`
	// Name optionally labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Notes is free-form documentation carried with the file.
	Notes string `json:"notes,omitempty"`
	// Fixture picks the network/dataset test case.
	Fixture Fixture `json:"fixture"`
	// Scenario is the Table I configuration: "T+T", "ST+T" or "ST+AT".
	Scenario string `json:"scenario"`
	// Policy optionally overrides the scenario's mapping policy
	// ("fresh", "aging-aware", "worst-case", "mean-bound"); empty lets
	// the scenario decide. Used by the range-policy ablation.
	Policy string `json:"policy,omitempty"`
	// Device is the memristor technology.
	Device device.Params `json:"device"`
	// Aging is the aging-model calibration.
	Aging aging.Model `json:"aging"`
	// TempK is the operating temperature in Kelvin.
	TempK float64 `json:"temp_k"`
	// Lifetime is the simulation budget and the nested fault, mapping
	// and tuning sections.
	Lifetime lifetime.Config `json:"lifetime"`
	// Fleet, when present, switches the scenario from a single-crossbar
	// lifetime study to a fleet simulation: a population of crossbar
	// instances behind a load balancer under synthetic traffic (see
	// internal/fleet). The pointer is omitted from serialization when
	// nil, so non-fleet specs keep their historical fingerprints.
	Fleet *fleet.Config `json:"fleet,omitempty"`
	// Run holds seed, fast mode and target-derivation options.
	Run Run `json:"run"`
}

// Defaults returns the fully resolved default Spec for a fixture at the
// given scale — the stage-1 base of the resolution chain and the single
// home of every "zero means X" fallback the simulation packages used to
// re-derive at each call site. The returned spec serializes with all
// effective values explicit (e.g. tuning patience 10, mapping
// max_candidates 8), so a dumped spec is self-describing.
func Defaults(fixture string, fast bool) Spec {
	lt := lifetime.DefaultConfig()
	lt.TargetAcc = 0 // auto-derive from the fresh-mapped accuracy
	lt.Seed = 0      // injected from Run.Seed at run time
	lt.AppsPerCycle = 1_000_000
	lt.MaxCycles = 150
	if fast {
		lt.MaxCycles = 60
		lt.Tuning.MaxIters = 40
		lt.EvalN = 64
	}
	lt = lt.Normalized()

	skew := LeNetSkew()
	if fixture == FixtureVGG {
		skew = VGGSkew()
	}

	m := aging.DefaultModel()
	// Accelerated calibration: crossbars fail within tens of simulated
	// deployment cycles instead of thousands — the same timeline
	// compression the paper applies when it simulates 4x10^7
	// applications against a 150-iteration tuning budget. Relative
	// lifetimes between scenarios are unaffected by the common factor.
	m.A = 8000
	m.B = 1000

	return Spec{
		Version:  Version,
		Fixture:  Fixture{Name: fixture, Skew: skew},
		Scenario: lifetime.STAT.String(),
		Device:   device.Params32(),
		Aging:    m,
		TempK:    300,
		Lifetime: lt,
		Run: Run{
			Fast:         fast,
			Seed:         1,
			TargetMargin: 0.02,
			TargetScale:  1,
		},
	}
}

// DefaultFleet derives the fleet configuration the fleet-survival
// experiment uses when a scenario has no explicit fleet block: fleet
// defaults in the spec's speed tier, with the traffic key space sized
// to the fixture's class count (each key models one request class).
func DefaultFleet(s Spec) fleet.Config {
	keys := 10 // lenet classes
	if s.Fixture.Name == FixtureVGG {
		keys = 50
	}
	return fleet.Defaults(keys, s.Run.Fast)
}

// Validate checks the whole spec and reports every violation at once,
// each prefixed with the JSON field path of the offending value.
func (s Spec) Validate() error {
	var errs []error
	fail := func(path, format string, args ...any) {
		errs = append(errs, fmt.Errorf("%s: %s", path, fmt.Sprintf(format, args...)))
	}

	if s.Version != Version {
		fail("version", "unsupported spec version %d (this build understands %d)", s.Version, Version)
	}
	switch s.Fixture.Name {
	case FixtureLeNet, FixtureVGG:
	default:
		fail("fixture.name", "unknown fixture %q (want %q or %q)", s.Fixture.Name, FixtureLeNet, FixtureVGG)
	}
	if s.Fixture.Skew.Lambda1 < 0 || s.Fixture.Skew.Lambda2 < 0 {
		fail("fixture.skew", "segment penalties must be non-negative, got lambda1=%g lambda2=%g",
			s.Fixture.Skew.Lambda1, s.Fixture.Skew.Lambda2)
	}
	if _, err := lifetime.ParseScenario(s.Scenario); err != nil {
		fail("scenario", "%v", err)
	}
	if s.Policy != "" {
		if _, err := mapping.ParsePolicy(s.Policy); err != nil {
			fail("policy", "%v", err)
		}
	}
	if err := s.Device.Validate(); err != nil {
		fail("device", "%v", err)
	}
	if err := s.Aging.Validate(); err != nil {
		fail("aging", "%v", err)
	}
	if s.TempK <= 0 {
		fail("temp_k", "operating temperature must be positive Kelvin, got %g", s.TempK)
	}

	lt := s.Lifetime
	if lt.AppsPerCycle < 1 {
		fail("lifetime.apps_per_cycle", "must be >= 1, got %d", lt.AppsPerCycle)
	}
	if lt.MaxCycles < 1 {
		fail("lifetime.max_cycles", "must be >= 1, got %d", lt.MaxCycles)
	}
	if lt.TargetAcc < 0 || lt.TargetAcc > 1 {
		fail("lifetime.target_acc", "must be in [0,1] (0 = auto-derive), got %g", lt.TargetAcc)
	}
	if lt.DriftSigma < 0 {
		fail("lifetime.drift_sigma", "must be non-negative, got %g", lt.DriftSigma)
	}
	if lt.EvalN < 1 {
		fail("lifetime.eval_n", "must be >= 1, got %d", lt.EvalN)
	}
	if lt.TraceStride < 0 {
		fail("lifetime.trace_stride", "must be non-negative, got %d", lt.TraceStride)
	}
	if lt.AgingVariability < 0 {
		fail("lifetime.aging_variability", "must be non-negative, got %g", lt.AgingVariability)
	}
	if lt.BurnInStress < 0 {
		fail("lifetime.burn_in_stress", "must be non-negative, got %g", lt.BurnInStress)
	}
	if lt.RemapIterFrac < 0 || lt.RemapIterFrac > 1 {
		fail("lifetime.remap_iter_frac", "must be in [0,1], got %g", lt.RemapIterFrac)
	}
	if lt.DegradedAccFrac < 0 || lt.DegradedAccFrac >= 1 {
		fail("lifetime.degraded_acc_frac", "must be in [0,1), got %g", lt.DegradedAccFrac)
	}
	if lt.Tuning.MaxIters < 1 {
		fail("lifetime.tuning.max_iters", "must be >= 1, got %d", lt.Tuning.MaxIters)
	}
	if lt.Tuning.BatchSize < 1 {
		fail("lifetime.tuning.batch_size", "must be >= 1, got %d", lt.Tuning.BatchSize)
	}
	if lt.Tuning.StepFrac < 0 || lt.Tuning.StepFrac > 1 {
		fail("lifetime.tuning.step_frac", "must be in [0,1], got %g", lt.Tuning.StepFrac)
	}
	if _, err := tuning.ParsePolicy(lt.Tuning.Policy); err != nil {
		fail("lifetime.tuning.policy", "%v", err)
	}
	if lt.Mapping.MaxCandidates < 0 {
		fail("lifetime.mapping.max_candidates", "must be non-negative, got %d", lt.Mapping.MaxCandidates)
	}
	if lt.Mapping.MinLevels < 0 {
		fail("lifetime.mapping.min_levels", "must be non-negative, got %d", lt.Mapping.MinLevels)
	}
	if err := lt.Faults.Validate(); err != nil {
		fail("lifetime.faults", "%v", err)
	}

	if s.Fleet != nil {
		if err := s.Fleet.Validate(); err != nil {
			// fleet.Config.Validate already prefixes each line with its
			// "fleet." JSON path.
			errs = append(errs, err)
		}
	}

	if s.Run.Seed == 0 {
		fail("run.seed", "must be non-zero (seed 0 is reserved to catch unset specs)")
	}
	if s.Run.TargetMargin < 0 || s.Run.TargetMargin >= 1 {
		fail("run.target_margin", "must be in [0,1), got %g", s.Run.TargetMargin)
	}
	if s.Run.TargetScale <= 0 || s.Run.TargetScale > 1 {
		fail("run.target_scale", "must be in (0,1], got %g", s.Run.TargetScale)
	}
	return errors.Join(errs...)
}

// LifetimeConfig converts the spec into the lifetime.Config one run
// needs: target is the effective tuning target (the auto-derivation
// from TargetAcc == 0 is the caller's job, since it needs a trained
// bundle), the run seed and evaluation workers are injected, and a
// non-empty Policy becomes the PolicyOverride.
func (s Spec) LifetimeConfig(target float64) lifetime.Config {
	cfg := s.Lifetime
	cfg.TargetAcc = target
	cfg.Seed = s.Run.Seed
	cfg.Tuning.Workers = s.Run.Workers
	if s.Policy != "" {
		if p, err := mapping.ParsePolicy(s.Policy); err == nil {
			cfg.PolicyOverride = &p
		}
	}
	return cfg
}

// ScenarioKind parses the spec's scenario label.
func (s Spec) ScenarioKind() (lifetime.Scenario, error) {
	return lifetime.ParseScenario(s.Scenario)
}

// canonicalJSON re-encodes a JSON document with all object keys sorted
// (encoding/json sorts map keys), yielding one canonical byte form per
// logical document.
func canonicalJSON(raw []byte) ([]byte, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// Canonical returns the canonical (key-sorted, compact) JSON encoding
// of the spec — the byte form Fingerprint hashes.
func (s Spec) Canonical() ([]byte, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("spec: marshal: %w", err)
	}
	return canonicalJSON(raw)
}

// Fingerprint returns a short stable hash of the canonical encoding.
// Two specs share a fingerprint iff their resolved, schema-visible
// parameters are identical; runtime speed knobs (Workers) and
// runtime-injected values (lifetime seeds, the per-cycle tuning target)
// never participate.
func (s Spec) Fingerprint() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:8]), nil
}

// JobFingerprint keys the served result store: the spec fingerprint
// for a single-seed job, extended with the Monte Carlo seed count when
// a job asks for more than one. Two submissions share a key iff they
// resolve to the same parameters *and* the same sample size — which is
// exactly when their results are interchangeable bytes, making the key
// safe for content addressing.
func (s Spec) JobFingerprint(seeds int) (string, error) {
	fp, err := s.Fingerprint()
	if err != nil {
		return "", err
	}
	if seeds <= 1 {
		return fp, nil
	}
	return fmt.Sprintf("%s-s%d", fp, seeds), nil
}

// FixtureFingerprint hashes only the parameters that shape the trained
// fixture bundle: the fixture section (network choice and skew
// constants) plus the fast flag and seed. Experiments differing only in
// simulation-phase parameters share a trained bundle; experiments
// differing in anything that changes training can never collide.
func (s Spec) FixtureFingerprint() (string, error) {
	raw, err := json.Marshal(struct {
		Fixture Fixture `json:"fixture"`
		Fast    bool    `json:"fast"`
		Seed    int64   `json:"seed"`
	}{s.Fixture, s.Run.Fast, s.Run.Seed})
	if err != nil {
		return "", fmt.Errorf("spec: marshal fixture: %w", err)
	}
	c, err := canonicalJSON(raw)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:8]), nil
}

// Overrides carries CLI flag values for stage 3 of the resolution
// chain; nil fields were not set on the command line and leave the
// file/default value untouched.
type Overrides struct {
	Fast     *bool
	Seed     *int64
	Workers  *int
	Scenario *string
	Policy   *string
	// DeviceModel overrides the device-physics model kind
	// (device.model.kind): "linear", "mms", "yacopcic" or "diffusive".
	// Variation sigmas and the drift block come from the file/defaults.
	DeviceModel *string
	// TuningPolicy overrides the tuning pulse-selection policy
	// (lifetime.tuning.policy): "sign", "recalib" or "minreprog".
	TuningPolicy *string
}

func (o Overrides) apply(s *Spec) {
	if o.Fast != nil {
		s.Run.Fast = *o.Fast
	}
	if o.Seed != nil {
		s.Run.Seed = *o.Seed
	}
	if o.Workers != nil {
		s.Run.Workers = *o.Workers
	}
	if o.Scenario != nil {
		s.Scenario = *o.Scenario
	}
	if o.Policy != nil {
		s.Policy = *o.Policy
	}
	if o.DeviceModel != nil {
		s.Device.Model.Kind = *o.DeviceModel
	}
	if o.TuningPolicy != nil {
		s.Lifetime.Tuning.Policy = *o.TuningPolicy
	}
}

// probe is the loose pre-pass of Resolve: before the strict decode can
// overlay the file onto the right defaults, the resolver has to know
// which defaults the file wants — the fixture name picks the skew
// constants and the fast flag picks the budget tier.
type probe struct {
	Fixture struct {
		Name *string `json:"name"`
	} `json:"fixture"`
	Run struct {
		Fast *bool `json:"fast"`
	} `json:"run"`
}

// ResolveBytes runs the full resolution chain over an in-memory
// scenario document: probe the file for fixture/fast (flag overrides
// win even here, so defaults and final values can't disagree), build
// Defaults, strictly overlay the file (unknown fields are errors),
// apply the flag overrides, validate. A nil or empty raw skips stage 2.
func ResolveBytes(raw []byte, o Overrides) (Spec, error) {
	fixture := FixtureLeNet
	fast := false
	if len(raw) > 0 {
		var p probe
		if err := json.Unmarshal(raw, &p); err != nil {
			return Spec{}, fmt.Errorf("spec: parse scenario: %w", err)
		}
		if p.Fixture.Name != nil {
			fixture = *p.Fixture.Name
		}
		if p.Run.Fast != nil {
			fast = *p.Run.Fast
		}
	}
	if o.Fast != nil {
		fast = *o.Fast
	}

	s := Defaults(fixture, fast)
	if len(raw) > 0 {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return Spec{}, fmt.Errorf("spec: parse scenario: %w", err)
		}
	}
	o.apply(&s)
	if s.Fleet != nil {
		// A sparse fleet block resolves its "zero means default"
		// fallbacks here, so the dumped spec is explicit and a
		// fixed point under re-resolution.
		norm := s.Fleet.Normalized()
		s.Fleet = &norm
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("spec: invalid scenario:\n%w", err)
	}
	return s, nil
}

// ResolveFile is ResolveBytes over a scenario file; an empty path
// resolves pure defaults plus overrides.
func ResolveFile(path string, o Overrides) (Spec, error) {
	var raw []byte
	if path != "" {
		var err error
		raw, err = os.ReadFile(path)
		if err != nil {
			return Spec{}, fmt.Errorf("spec: %w", err)
		}
	}
	s, err := ResolveBytes(raw, o)
	if err != nil && path != "" {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, err
}

// Dump renders the spec as indented JSON (trailing newline included) —
// the -dump-spec output, suitable for feeding back via -scenario.
func (s Spec) Dump() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: marshal: %w", err)
	}
	return append(b, '\n'), nil
}
