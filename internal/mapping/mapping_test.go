package mapping

import (
	"testing"

	"memlife/internal/aging"
	"memlife/internal/crossbar"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/nn"
	"memlife/internal/tensor"
	"memlife/internal/train"
)

// fixture builds a trained small MLP on crossbars plus an eval batch.
func fixture(t *testing.T) (*crossbar.MappedNetwork, *tensor.Tensor, []int) {
	t.Helper()
	cfg := dataset.SynthConfig{Classes: 4, TrainN: 160, TestN: 60, C: 3, H: 8, W: 8, Noise: 0.15, Seed: 41}
	trainDS, testDS := dataset.MustGenerate(cfg)
	net, err := nn.NewMLP("m", []int{trainDS.SampleSize(), 20, 4}, tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Train(net, trainDS, testDS, train.Config{
		Epochs: 5, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	mn, err := crossbar.NewMappedNetwork(net, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		t.Fatal(err)
	}
	b := testDS.Batches(testDS.Len(), nil)[0]
	return mn, b.X, b.Y
}

// ageLayer wears out part of one crossbar, including traced devices, so
// aged bounds differ across the array.
func ageLayer(cb *crossbar.Crossbar, cycles int) {
	p := cb.Params()
	for k := 0; k < cycles; k++ {
		for _, ij := range cb.TracedIndices() {
			d := cb.Device(ij[0], ij[1])
			d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
			d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
		}
		// Also age a diagonal stripe of untraced devices.
		for i := 0; i < cb.Rows && i < cb.Cols; i += 2 {
			d := cb.Device(i, i)
			d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
			d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
		}
	}
}

func TestFreshPolicyUsesFullRange(t *testing.T) {
	mn, x, y := fixture(t)
	res, err := Map(mn, Config{Policy: Fresh}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	p := device.Params32()
	for _, sel := range res.Selections {
		if sel.RLo != p.RminFresh || sel.RHi != p.RmaxFresh {
			t.Fatalf("fresh selection = [%g, %g], want full range", sel.RLo, sel.RHi)
		}
		if len(sel.Candidates) != 0 {
			t.Fatal("fresh policy must not evaluate candidates")
		}
	}
	if res.Stats.Pulses == 0 {
		t.Fatal("mapping must program devices")
	}
}

func TestFreshPolicyNeedsNoEvalData(t *testing.T) {
	mn, _, _ := fixture(t)
	if _, err := Map(mn, Config{Policy: Fresh}, nil, nil); err != nil {
		t.Fatalf("fresh mapping must work without eval data: %v", err)
	}
}

func TestAgingAwareRequiresEvalData(t *testing.T) {
	mn, _, _ := fixture(t)
	if _, err := Map(mn, Config{Policy: AgingAware}, nil, nil); err == nil {
		t.Fatal("aging-aware mapping must demand eval samples")
	}
}

func TestAgingAwareSelectsFreshRangeOnFreshArray(t *testing.T) {
	mn, x, y := fixture(t)
	res, err := Map(mn, Config{Policy: AgingAware}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	p := device.Params32()
	for _, sel := range res.Selections {
		if sel.RHi != p.RmaxFresh {
			t.Fatalf("fresh array: aging-aware must pick the fresh bound, got %g", sel.RHi)
		}
	}
}

func TestAgingAwareTracksAgedBounds(t *testing.T) {
	mn, x, y := fixture(t)
	ageLayer(mn.Layers[0].Crossbar, 4)
	res, err := Map(mn, Config{Policy: AgingAware}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	p := device.Params32()
	sel := res.Selections[0]
	if sel.RHi >= p.RmaxFresh {
		t.Fatalf("aged layer: selected upper bound %g must be below fresh %g", sel.RHi, p.RmaxFresh)
	}
	if len(sel.Candidates) == 0 {
		t.Fatal("aging-aware selection must record candidate scores")
	}
	// Chosen bound must be the argmax of the recorded candidates.
	best := sel.Candidates[0]
	for _, c := range sel.Candidates {
		if c.Accuracy > best.Accuracy {
			best = c
		}
	}
	if sel.RHi != best.RHi && best.Accuracy > candidateAcc(sel.Candidates, sel.RHi) {
		t.Fatalf("selected bound %g is not the best-scoring candidate %g", sel.RHi, best.RHi)
	}
	// Untouched layer keeps the fresh bound.
	if res.Selections[1].RHi != p.RmaxFresh {
		t.Fatal("unaged layer must keep the fresh bound")
	}
}

func candidateAcc(cs []CandidateScore, rHi float64) float64 {
	for _, c := range cs {
		if c.RHi == rHi {
			return c.Accuracy
		}
	}
	return -1
}

// TestAgingAwareBeatsFreshOnAgedArray is the core claim of Section IV-B:
// on a significantly aged array, accuracy right after aging-aware
// mapping exceeds accuracy after fresh-range mapping.
func TestAgingAwareBeatsFreshOnAgedArray(t *testing.T) {
	run := func(policy PolicyKind) float64 {
		mn, x, y := fixture(t)
		// Age every device of layer 0 so fresh mapping clips badly.
		cb := mn.Layers[0].Crossbar
		p := cb.Params()
		for i := 0; i < cb.Rows; i++ {
			for j := 0; j < cb.Cols; j++ {
				d := cb.Device(i, j)
				for k := 0; k < 4; k++ {
					d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
					d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
				}
			}
		}
		if _, err := Map(mn, Config{Policy: policy}, x, y); err != nil {
			t.Fatal(err)
		}
		acc, err := mn.Accuracy(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	freshAcc := run(Fresh)
	awareAcc := run(AgingAware)
	if awareAcc < freshAcc {
		t.Fatalf("aging-aware post-map accuracy %.3f must not lose to fresh %.3f", awareAcc, freshAcc)
	}
}

func TestWorstCaseAndMeanBoundPolicies(t *testing.T) {
	mn, x, y := fixture(t)
	ageLayer(mn.Layers[0].Crossbar, 4)
	worst, err := Map(mn, Config{Policy: WorstCase}, x, y)
	if err != nil {
		t.Fatal(err)
	}

	mn2, x2, y2 := fixture(t)
	ageLayer(mn2.Layers[0].Crossbar, 4)
	mean, err := Map(mn2, Config{Policy: MeanBound}, x2, y2)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Selections[0].RHi > mean.Selections[0].RHi {
		t.Fatalf("worst-case bound %g must be <= mean bound %g",
			worst.Selections[0].RHi, mean.Selections[0].RHi)
	}
}

func TestMinLevelsFloor(t *testing.T) {
	mn, x, y := fixture(t)
	// Age the traced devices of layer 0 to near-death.
	cb := mn.Layers[0].Crossbar
	p := cb.Params()
	for k := 0; k < 40; k++ {
		for _, ij := range cb.TracedIndices() {
			d := cb.Device(ij[0], ij[1])
			d.Program(p.RminFresh, p.RminFresh, p.RmaxFresh)
			d.Program(p.RmaxFresh, p.RminFresh, p.RmaxFresh)
		}
	}
	res, err := Map(mn, Config{Policy: WorstCase, MinLevels: 6}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Selections[0]
	minWidth := 5 * p.LevelSpacing()
	if sel.RHi-sel.RLo < minWidth-1e-9 {
		t.Fatalf("selected range width %g violates MinLevels floor %g", sel.RHi-sel.RLo, minWidth)
	}
}

func TestCandidateBoundsSubsampling(t *testing.T) {
	in := []float64{1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := candidateBounds(in, 4)
	if len(got) > 4 {
		t.Fatalf("subsampled to %d candidates, want <= 4", len(got))
	}
	if got[0] != 1 || got[len(got)-1] != 10 {
		t.Fatalf("subsampling must keep extremes, got %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("candidates must be strictly increasing: %v", got)
		}
	}
	// Few uniques pass through unchanged.
	small := candidateBounds([]float64{2, 2, 5}, 8)
	if len(small) != 2 || small[0] != 2 || small[1] != 5 {
		t.Fatalf("dedup failed: %v", small)
	}
}

func TestMapRefreshesHostNetwork(t *testing.T) {
	mn, x, y := fixture(t)
	if _, err := Map(mn, Config{Policy: Fresh}, x, y); err != nil {
		t.Fatal(err)
	}
	for _, l := range mn.Layers {
		eff, err := l.Crossbar.EffectiveWeights()
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range l.Param.W.Data() {
			if v != eff.Data()[i] {
				t.Fatalf("layer %s: host network not refreshed after Map", l.Name)
			}
		}
	}
}
