// Package mapping implements hardware mapping of trained weights onto
// crossbars: the baseline fresh-range mapping (Section II-B) and the
// paper's aging-aware mapping (Section IV-B), which estimates the aged
// range bounds from the traced 1-of-9 representative devices and picks
// the common resistance range by iterative, accuracy-driven selection
// (Fig. 8). Two simpler aged-range policies (worst-case and mean bound)
// are included as ablation baselines.
package mapping

import (
	"fmt"
	"sort"

	"memlife/internal/crossbar"
	"memlife/internal/tensor"
)

// PolicyKind selects how the common mapping range of each layer is set.
type PolicyKind int

const (
	// Fresh ignores aging and always maps onto the fresh device range —
	// the conventional mapping of the T+T and ST+T scenarios.
	Fresh PolicyKind = iota
	// AgingAware runs the paper's iterative selection: candidate upper
	// bounds are the traced aged bounds between R^L_aged,max and
	// R^U_aged,max; the one with the highest classification accuracy
	// wins (the AT of ST+AT).
	AgingAware
	// WorstCase uses the smallest traced aged upper bound (ablation).
	WorstCase
	// MeanBound uses the mean traced aged upper bound (ablation).
	MeanBound
)

// String names the policy for reports.
func (k PolicyKind) String() string {
	switch k {
	case Fresh:
		return "fresh"
	case AgingAware:
		return "aging-aware"
	case WorstCase:
		return "worst-case"
	case MeanBound:
		return "mean-bound"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// ParsePolicy is the inverse of PolicyKind.String; it is how scenario
// files and CLI flags name mapping policies.
func ParsePolicy(s string) (PolicyKind, error) {
	switch s {
	case "fresh":
		return Fresh, nil
	case "aging-aware":
		return AgingAware, nil
	case "worst-case":
		return WorstCase, nil
	case "mean-bound":
		return MeanBound, nil
	default:
		return 0, fmt.Errorf("mapping: unknown policy %q (want fresh, aging-aware, worst-case, or mean-bound)", s)
	}
}

// Config parameterizes mapping. The JSON tags are the schema of the
// "mapping" section of a scenario spec (internal/spec); Policy is
// excluded because the scenario (T+T / ST+T / ST+AT) or an explicit
// policy override decides it at run time.
type Config struct {
	Policy PolicyKind `json:"-"`
	// MaxCandidates bounds the number of candidate upper bounds the
	// iterative selection evaluates (evenly subsampled from the sorted
	// traced bounds). Zero means 8.
	MaxCandidates int `json:"max_candidates"`
	// MinLevels is the smallest number of quantization levels a
	// selected range may span. Zero means 4.
	MinLevels int `json:"min_levels"`
	// FaultAware makes the mapping tolerate permanently stuck devices
	// instead of fighting them: the common-range selection draws its
	// candidate bounds only from healthy traced devices (a stuck
	// cell's bound says nothing about the programmable range), and
	// programming skips stuck cells while compensating their fixed
	// current contribution through the healthy cells of the same
	// column (Crossbar.MapWeightsFaultAware). With no stuck devices
	// the mapping is identical to the fault-unaware one.
	FaultAware bool `json:"fault_aware"`
}

// Normalized returns the config with its "zero means X" fields
// resolved: MaxCandidates <= 0 -> 8, MinLevels <= 0 -> 4. Map applies
// it on entry; scenario specs serialize the resolved form
// (internal/spec.Defaults).
func (c Config) Normalized() Config {
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	if c.MinLevels <= 0 {
		c.MinLevels = 4
	}
	return c
}

// CandidateScore records one evaluated candidate of the iterative
// selection (the data behind Fig. 8).
type CandidateScore struct {
	RHi      float64
	Accuracy float64
}

// LayerSelection records the chosen range of one layer.
type LayerSelection struct {
	Layer      string
	RLo, RHi   float64
	Candidates []CandidateScore // non-empty only for AgingAware
}

// Result summarizes one mapping pass over a network.
type Result struct {
	Policy     PolicyKind
	Selections []LayerSelection
	Stats      crossbar.MapStatsTotal
}

// Map selects a common range per layer under cfg.Policy, programs every
// crossbar accordingly, and refreshes the host network with the
// effective weights. evalX/evalY are the labelled samples used to score
// candidates; they are required for the AgingAware policy and ignored
// otherwise.
func Map(mn *crossbar.MappedNetwork, cfg Config, evalX *tensor.Tensor, evalY []int) (Result, error) {
	cfg = cfg.Normalized()
	res := Result{Policy: cfg.Policy}
	if cfg.Policy == AgingAware && (evalX == nil || len(evalY) == 0) {
		return res, fmt.Errorf("mapping: aging-aware policy needs evaluation samples")
	}
	// Score candidates against software weights for all not-yet-mapped
	// layers; layers already processed keep their chosen quantized form.
	mn.RestoreSoftwareWeights()

	for i, l := range mn.Layers {
		sel, err := selectRange(mn, i, cfg, evalX, evalY)
		if err != nil {
			return res, fmt.Errorf("mapping: layer %s: %w", l.Name, err)
		}
		res.Selections = append(res.Selections, sel)
		// Commit this layer's hypothetical quantized weights so later
		// layers are scored against it (greedy sequential selection).
		l.Crossbar.QuantizeWeightsInto(l.Param.W, l.Target, sel.RLo, sel.RHi)
	}
	// Only now touch hardware: one programming pass per layer.
	for i, sel := range res.Selections {
		var s crossbar.MapStats
		if cfg.FaultAware {
			s = mn.MapLayerFaultAware(i, sel.RLo, sel.RHi)
		} else {
			s = mn.MapLayer(i, sel.RLo, sel.RHi)
		}
		res.Stats.Pulses += s.Pulses
		res.Stats.Stress += s.Stress
		res.Stats.Clipped += s.Clipped
		res.Stats.Stuck += s.Stuck
		res.Stats.Skipped += s.Skipped
	}
	// Reprogramming devices to their targets makes any drift-compensation
	// gains stale (tuning policy "recalib"); reset before the refresh so
	// the effective weights reflect the fresh programming.
	mn.ResetGains()
	if err := mn.Refresh(); err != nil {
		return res, fmt.Errorf("mapping: %w", err)
	}
	return res, nil
}

// selectRange chooses the common range of layer i.
func selectRange(mn *crossbar.MappedNetwork, i int, cfg Config, evalX *tensor.Tensor, evalY []int) (LayerSelection, error) {
	l := mn.Layers[i]
	p := l.Crossbar.Params()
	rLo := p.RminFresh
	minWidth := float64(cfg.MinLevels-1) * p.LevelSpacing()
	clampHi := func(hi float64) float64 {
		if hi > p.RmaxFresh {
			hi = p.RmaxFresh
		}
		if hi < rLo+minWidth {
			hi = rLo + minWidth
		}
		return hi
	}

	// The traced candidate bounds: fault-aware selection consults only
	// healthy traced devices.
	tracedBounds := func() []float64 {
		if cfg.FaultAware {
			return l.Crossbar.TracedUpperBoundsHealthy()
		}
		return l.Crossbar.TracedUpperBounds()
	}

	switch cfg.Policy {
	case Fresh:
		return LayerSelection{Layer: l.Name, RLo: rLo, RHi: p.RmaxFresh}, nil

	case WorstCase:
		ubs := tracedBounds()
		return LayerSelection{Layer: l.Name, RLo: rLo, RHi: clampHi(ubs[0])}, nil

	case MeanBound:
		ubs := tracedBounds()
		sum := 0.0
		for _, v := range ubs {
			sum += v
		}
		return LayerSelection{Layer: l.Name, RLo: rLo, RHi: clampHi(sum / float64(len(ubs)))}, nil

	case AgingAware:
		sel := LayerSelection{Layer: l.Name, RLo: rLo}
		// Snap candidate bounds down onto the level grid: ranges are
		// realized by the level circuitry, and snapping keeps the
		// selected range stable across mapping events until a traced
		// bound actually crosses a level — avoiding a full-array
		// reprogram (and its aging cost) on every remap.
		raw := tracedBounds()
		snapped := make([]float64, 0, len(raw))
		for _, hi := range raw {
			hi = clampHi(hi)
			lvl := int((hi - p.RminFresh) / p.LevelSpacing())
			if lvl < 0 {
				lvl = 0
			}
			if lvl >= p.Levels {
				lvl = p.Levels - 1
			}
			snapped = append(snapped, clampHi(p.LevelResistance(lvl)))
		}
		sort.Float64s(snapped)
		candidates := candidateBounds(snapped, cfg.MaxCandidates)
		// Evaluate widest-first so ties keep the widest range (more
		// levels, lower currents).
		bestAcc := -1.0
		saved := l.Param.W.Clone()
		for i := len(candidates) - 1; i >= 0; i-- {
			hi := candidates[i]
			l.Crossbar.QuantizeWeightsInto(l.Param.W, l.Target, rLo, hi)
			acc := mn.Net.Accuracy(evalX, evalY)
			sel.Candidates = append(sel.Candidates, CandidateScore{RHi: hi, Accuracy: acc})
			if acc > bestAcc {
				bestAcc = acc
				sel.RHi = hi
			}
		}
		l.Param.W.CopyFrom(saved)
		if sel.RHi == 0 {
			return sel, fmt.Errorf("no candidate ranges available")
		}
		return sel, nil

	default:
		return LayerSelection{}, fmt.Errorf("unknown policy %v", cfg.Policy)
	}
}

// candidateBounds deduplicates the sorted traced upper bounds and, when
// there are more than max, subsamples them evenly across
// [R^L_aged,max, R^U_aged,max] — the iteration interval of Fig. 8.
func candidateBounds(sorted []float64, max int) []float64 {
	uniq := sorted[:0:0]
	for _, v := range sorted {
		if len(uniq) == 0 || v > uniq[len(uniq)-1]+1e-9 {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) <= max {
		return uniq
	}
	out := make([]float64, 0, max)
	for k := 0; k < max; k++ {
		idx := k * (len(uniq) - 1) / (max - 1)
		out = append(out, uniq[idx])
	}
	// Subsampling preserves order; dedupe again in case of collisions.
	sort.Float64s(out)
	dedup := out[:0]
	for _, v := range out {
		if len(dedup) == 0 || v > dedup[len(dedup)-1]+1e-9 {
			dedup = append(dedup, v)
		}
	}
	return dedup
}
