package fault

import (
	"testing"

	"memlife/internal/device"
)

func testConfig() Config {
	return Config{
		StuckRate:     0.1,
		TransientProb: 0.2,
		HazardScale:   10,
		ReadBurstProb: 0.1,
		Seed:          7,
	}
}

func TestInjectorDeterminism(t *testing.T) {
	const n = 500
	a, err := NewInjector(testConfig(), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(testConfig(), n, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if a.InitialFault(i) != b.InitialFault(i) {
			t.Fatalf("device %d: initial fault maps diverge", i)
		}
		if a.WearOutFault(i, 9.5) != b.WearOutFault(i, 9.5) {
			t.Fatalf("device %d: wear-out capacities diverge", i)
		}
	}
	// The event streams are deterministic too.
	for k := 0; k < 200; k++ {
		if a.PulseFails() != b.PulseFails() {
			t.Fatalf("pulse stream diverges at draw %d", k)
		}
		ab, as := a.ReadBurst()
		bb, bs := b.ReadBurst()
		if ab != bb || as != bs {
			t.Fatalf("read stream diverges at draw %d", k)
		}
	}
}

// TestStructuralDrawsIndependentOfEvents locks the stream separation:
// however many pulse/read events a simulation consumes, the fault map
// and capacities stay byte-identical.
func TestStructuralDrawsIndependentOfEvents(t *testing.T) {
	const n = 300
	a, err := NewInjector(testConfig(), n, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(testConfig(), n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Burn b's event streams heavily before comparing structure.
	for k := 0; k < 10_000; k++ {
		b.PulseFails()
		b.ReadBurst()
	}
	for i := 0; i < n; i++ {
		if a.InitialFault(i) != b.InitialFault(i) {
			t.Fatalf("device %d: fault map depends on event consumption", i)
		}
		if a.WearOutFault(i, 9.9) != b.WearOutFault(i, 9.9) {
			t.Fatalf("device %d: capacity depends on event consumption", i)
		}
	}
}

// TestNestedStuckSets locks the sweep monotonicity guarantee: every
// device stuck at a low rate is also stuck at any higher rate under the
// same seed.
func TestNestedStuckSets(t *testing.T) {
	const n = 2000
	rates := []float64{0.01, 0.05, 0.2}
	var prev []bool
	for _, rate := range rates {
		cfg := testConfig()
		cfg.StuckRate = rate
		inj, err := NewInjector(cfg, n, 11)
		if err != nil {
			t.Fatal(err)
		}
		stuck := make([]bool, n)
		count := 0
		for i := 0; i < n; i++ {
			stuck[i] = inj.InitialFault(i) != device.FaultNone
			if stuck[i] {
				count++
			}
		}
		if count == 0 {
			t.Fatalf("rate %g produced no stuck devices out of %d", rate, n)
		}
		for i := range prev {
			if prev[i] && !stuck[i] {
				t.Fatalf("device %d stuck at a lower rate but healthy at %g", i, rate)
			}
		}
		prev = stuck
	}
}

// TestWearOutHazardOrdering locks the aging correlation: a device never
// recovers with stress, and across the array more stress means more
// wear-out faults.
func TestWearOutHazardOrdering(t *testing.T) {
	cfg := testConfig()
	cfg.StuckRate = 0
	inj, err := NewInjector(cfg, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	countAt := func(stress float64) int {
		n := 0
		for i := 0; i < inj.N(); i++ {
			if inj.WearOutFault(i, stress) != device.FaultNone {
				n++
			}
		}
		return n
	}
	low, mid, high := countAt(1), countAt(10), countAt(100)
	if low > mid || mid > high {
		t.Fatalf("wear-out faults must be monotone in stress: %d, %d, %d", low, mid, high)
	}
	if high <= low {
		t.Fatalf("heavy stress must wear out more devices: %d vs %d", high, low)
	}
	// Per device: once stuck at some stress, stuck at any higher stress.
	for i := 0; i < inj.N(); i++ {
		if inj.WearOutFault(i, 10) != device.FaultNone && inj.WearOutFault(i, 20) == device.FaultNone {
			t.Fatalf("device %d recovered with more stress", i)
		}
	}
}

func TestLRSFracPolarity(t *testing.T) {
	cfg := testConfig()
	cfg.StuckRate = 0.5
	cfg.LRSFrac = 1.0
	inj, err := NewInjector(cfg, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inj.N(); i++ {
		if k := inj.InitialFault(i); k != device.FaultNone && k != device.FaultStuckLRS {
			t.Fatalf("LRSFrac=1 must pin every stuck device at LRS, got %v", k)
		}
	}
}

func TestReadNoiseFloored(t *testing.T) {
	inj, err := NewInjector(testConfig(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 1000; k++ {
		if f := inj.ReadNoise(5.0); f < 0.1 {
			t.Fatalf("read-noise factor %g must never drop below the floor", f)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative stuck rate", func(c *Config) { c.StuckRate = -0.1 }},
		{"stuck rate one", func(c *Config) { c.StuckRate = 1 }},
		{"bad lrs frac", func(c *Config) { c.LRSFrac = 1.5 }},
		{"bad transient", func(c *Config) { c.TransientProb = 1 }},
		{"negative hazard", func(c *Config) { c.HazardScale = -1 }},
		{"negative spread", func(c *Config) { c.HazardSpread = -0.5 }},
		{"bad burst prob", func(c *Config) { c.ReadBurstProb = -0.2 }},
		{"negative burst sigma", func(c *Config) { c.ReadBurstSigma = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if !(Config{HazardScale: 1}).Enabled() {
		t.Fatal("hazard alone must enable injection")
	}
}

func TestNewInjectorRejectsBadInput(t *testing.T) {
	if _, err := NewInjector(Config{StuckRate: -1}, 10, 0); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	if _, err := NewInjector(Config{}, 0, 0); err == nil {
		t.Fatal("empty array must be rejected")
	}
}
