// Package fault models device-level hardware failure in memristor
// crossbars and drives its deterministic injection into the simulated
// arrays. The paper's lifetime harness assumes every device stays
// programmable until aging kills the whole array; real arrays fail
// device-by-device. Three empirically dominant mechanisms are modelled
// (cf. Song et al., "Improving Dependability of Neuromorphic Computing
// With Non-Volatile Memory"; Farias & Kung, "Efficient Reprogramming of
// Memristive Crossbars"):
//
//   - Permanent stuck-at faults: a device's filament fuses
//     (stuck-at-LRS) or ruptures (stuck-at-HRS) and stops responding to
//     programming. A fraction of devices may be stuck at deployment
//     (manufacturing defects), and survivors wear out in service with
//     an aging-correlated hazard — each device draws a stress capacity,
//     and the heavily stressed devices cross theirs first.
//   - Transient programming failure: a pulse silently doesn't take
//     (write noise), with a configurable per-pulse probability. The
//     pulse still stresses the device, so retries are never free.
//   - Read-noise bursts: occasionally a whole readback is perturbed by
//     multiplicative resistance noise (sense-amp / IR-drop transients),
//     without changing any device state.
//
// Everything is seeded: two injectors built from the same Config, device
// count and seed produce identical fault maps and identical per-pulse /
// per-read decisions, so fault campaigns are exactly reproducible.
//
// The package sits below internal/crossbar in the dependency order:
// crossbars hold an *Injector and consult it on their program and read
// paths; the tolerance mechanisms (internal/tuning retry/skip,
// internal/mapping compensation) and the graceful-degradation stages
// (internal/lifetime) build on the state it exposes.
package fault

import (
	"fmt"
	"math"

	"memlife/internal/device"
	"memlife/internal/tensor"
)

// Config parameterizes fault injection for one array (or, via
// per-layer derived seeds, a whole mapped network). The zero value
// disables every mechanism. The JSON tags are the schema of the
// "faults" section of a scenario spec (internal/spec); Seed is
// excluded because the run seed is injected at resolution time.
type Config struct {
	// StuckRate is the fraction of devices permanently stuck at
	// deployment (manufacturing defects), in [0, 1). Stuck sets are
	// nested across rates for a fixed seed: every device stuck at rate
	// r is also stuck at any rate r' > r, which keeps fault sweeps
	// monotone in the rate.
	StuckRate float64 `json:"stuck_rate"`
	// LRSFrac is the fraction of stuck devices pinned at LRS (the
	// high-current, high-damage polarity); the rest pin at HRS.
	// Zero means 0.5.
	LRSFrac float64 `json:"lrs_frac"`
	// TransientProb is the per-pulse probability that a programming
	// pulse silently fails to move the device.
	TransientProb float64 `json:"transient_prob"`
	// HazardScale is the mean stress capacity of a device: once its
	// accumulated programming stress exceeds its drawn capacity, the
	// device becomes permanently stuck (aging-correlated wear-out).
	// Zero disables wear-out faults.
	HazardScale float64 `json:"hazard_scale"`
	// HazardSpread is the lognormal sigma of the per-device capacity
	// draw. Zero means 0.5.
	HazardSpread float64 `json:"hazard_spread"`
	// ReadBurstProb is the per-readback probability of a read-noise
	// burst.
	ReadBurstProb float64 `json:"read_burst_prob"`
	// ReadBurstSigma is the relative resistance noise applied during a
	// burst (0.02 = 2% of R). Zero means 0.02.
	ReadBurstSigma float64 `json:"read_burst_sigma"`
	// Seed makes the injection deterministic.
	Seed int64 `json:"-"`
}

// Normalized returns the config with its "zero means X" fields
// resolved: LRSFrac 0 -> 0.5, HazardSpread 0 -> 0.5, ReadBurstSigma 0
// -> 0.02. NewInjector applies it on entry; scenario specs serialize
// the resolved form (internal/spec.Defaults). Note the resolved form
// is not the zero value, so Enabled() must be consulted before
// Normalized() if "all mechanisms off" matters.
func (c Config) Normalized() Config {
	if c.LRSFrac == 0 {
		c.LRSFrac = 0.5
	}
	if c.HazardSpread == 0 {
		c.HazardSpread = 0.5
	}
	if c.ReadBurstSigma == 0 {
		c.ReadBurstSigma = 0.02
	}
	return c
}

// Enabled reports whether any fault mechanism is active.
func (c Config) Enabled() bool {
	return c.StuckRate > 0 || c.TransientProb > 0 || c.HazardScale > 0 || c.ReadBurstProb > 0
}

// Validate reports an error for meaningless parameters.
func (c Config) Validate() error {
	switch {
	case c.StuckRate < 0 || c.StuckRate >= 1:
		return fmt.Errorf("fault: StuckRate must be in [0,1), got %g", c.StuckRate)
	case c.LRSFrac < 0 || c.LRSFrac > 1:
		return fmt.Errorf("fault: LRSFrac must be in [0,1], got %g", c.LRSFrac)
	case c.TransientProb < 0 || c.TransientProb >= 1:
		return fmt.Errorf("fault: TransientProb must be in [0,1), got %g", c.TransientProb)
	case c.HazardScale < 0:
		return fmt.Errorf("fault: HazardScale must be non-negative, got %g", c.HazardScale)
	case c.HazardSpread < 0:
		return fmt.Errorf("fault: HazardSpread must be non-negative, got %g", c.HazardSpread)
	case c.ReadBurstProb < 0 || c.ReadBurstProb >= 1:
		return fmt.Errorf("fault: ReadBurstProb must be in [0,1), got %g", c.ReadBurstProb)
	case c.ReadBurstSigma < 0:
		return fmt.Errorf("fault: ReadBurstSigma must be non-negative, got %g", c.ReadBurstSigma)
	}
	return nil
}

// Injector holds the pre-drawn fault structure of one array plus the
// event streams for transient and read faults. The structural draws
// (which devices start stuck, each device's wear-out capacity and
// stuck polarity) come from their own RNG stream, so the fault map
// depends only on (Config, n, seed) — never on how many pulses or
// reads the simulation happened to perform.
type Injector struct {
	cfg Config

	// u is the per-device uniform draw deciding initial stuck-ness:
	// device i starts stuck iff u[i] < StuckRate (nested across rates).
	u []float64
	// kind is the pre-drawn stuck polarity of each device, used both
	// for initial faults and for wear-out.
	kind []device.FaultKind
	// capacity is the per-device stress capacity (wear-out threshold);
	// +Inf when wear-out is disabled.
	capacity []float64

	rngPulse *tensor.RNG
	rngRead  *tensor.RNG
}

// NewInjector pre-draws the fault structure for an array of n devices.
// The seed combines cfg.Seed with the caller-supplied stream offset so
// each crossbar of a network gets an independent, reproducible stream.
func NewInjector(cfg Config, n int, seed int64) (*Injector, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("fault: need at least one device, got %d", n)
	}
	root := tensor.NewRNG(cfg.Seed + seed)
	rngStruct := root.Split()
	inj := &Injector{
		cfg:      cfg,
		u:        make([]float64, n),
		kind:     make([]device.FaultKind, n),
		capacity: make([]float64, n),
		rngPulse: root.Split(),
		rngRead:  root.Split(),
	}
	for i := 0; i < n; i++ {
		inj.u[i] = rngStruct.Float64()
		if rngStruct.Float64() < cfg.LRSFrac {
			inj.kind[i] = device.FaultStuckLRS
		} else {
			inj.kind[i] = device.FaultStuckHRS
		}
		if cfg.HazardScale > 0 {
			inj.capacity[i] = cfg.HazardScale * math.Exp(rngStruct.Normal(0, cfg.HazardSpread))
		} else {
			inj.capacity[i] = math.Inf(1)
		}
	}
	return inj, nil
}

// N returns the number of devices the injector was built for.
func (in *Injector) N() int { return len(in.u) }

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// InitialFault returns the fault device i carries at deployment
// (manufacturing defect), or FaultNone.
func (in *Injector) InitialFault(i int) device.FaultKind {
	if in.u[i] < in.cfg.StuckRate {
		return in.kind[i]
	}
	return device.FaultNone
}

// WearOutFault returns the fault device i acquires once its accumulated
// stress exceeds its drawn capacity, or FaultNone while it survives.
// Heavily stressed devices cross their capacity first — the
// aging-correlated hazard.
func (in *Injector) WearOutFault(i int, stress float64) device.FaultKind {
	if stress > in.capacity[i] {
		return in.kind[i]
	}
	return device.FaultNone
}

// PulseFails draws one transient programming-failure decision.
func (in *Injector) PulseFails() bool {
	if in.cfg.TransientProb <= 0 {
		return false
	}
	return in.rngPulse.Float64() < in.cfg.TransientProb
}

// ReadBurst draws one readback-event decision: whether this readback is
// hit by a noise burst and, if so, the relative resistance sigma.
func (in *Injector) ReadBurst() (bool, float64) {
	if in.cfg.ReadBurstProb <= 0 {
		return false, 0
	}
	if in.rngRead.Float64() < in.cfg.ReadBurstProb {
		return true, in.cfg.ReadBurstSigma
	}
	return false, 0
}

// ReadNoise draws one multiplicative noise factor for a burst-affected
// read: 1 + N(0, sigma), floored well above zero so a noisy read never
// inverts a resistance.
func (in *Injector) ReadNoise(sigma float64) float64 {
	f := 1 + in.rngRead.Normal(0, sigma)
	if f < 0.1 {
		f = 0.1
	}
	return f
}
