// Package memlife reproduces "Aging-aware Lifetime Enhancement for
// Memristor-based Neuromorphic Computing" (S. Zhang, G. L. Zhang,
// B. Li, H. Li, U. Schlichtmann — DATE 2019) as a pure-Go simulation
// stack.
//
// The implementation lives under internal/:
//
//   - tensor, dataset, nn, train — the software-training substrate
//     (dense/conv networks, SGD, the paper's skewed regularizer).
//   - device, aging, crossbar — the memristor hardware model
//     (quantized programmable resistances, Arrhenius aging of the
//     valid range, crossbar arrays with representative tracing).
//   - mapping, tuning, lifetime — the paper's deployment flow
//     (eq. (4) weight mapping with aging-aware range selection,
//     sign-based online tuning, lifetime measurement).
//   - analysis, experiments — reproduction drivers for every table
//     and figure of the paper's evaluation.
//
// The cmd/memlife CLI runs any experiment; the examples/ directory
// holds runnable walkthroughs; bench_test.go in this directory has one
// benchmark per reproduced table/figure. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package memlife
