module memlife

go 1.22
