// Quickstart: train a small network in software, deploy it onto
// simulated memristor crossbars, classify through the analog hardware,
// and watch programming stress age the array.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"memlife/internal/aging"
	"memlife/internal/crossbar"
	"memlife/internal/dataset"
	"memlife/internal/device"
	"memlife/internal/mapping"
	"memlife/internal/nn"
	"memlife/internal/tensor"
	"memlife/internal/train"
	"memlife/internal/tuning"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A synthetic 4-class image dataset (stand-in for CIFAR).
	cfg := dataset.SynthConfig{Classes: 4, TrainN: 320, TestN: 80, C: 3, H: 8, W: 8, Noise: 0.2, Seed: 42}
	trainDS, testDS, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}

	// 2. Software training (Section II-A of the paper).
	net, err := nn.NewMLP("quickstart", []int{trainDS.SampleSize(), 32, 4}, tensor.NewRNG(7))
	if err != nil {
		return err
	}
	res, err := train.Train(net, trainDS, testDS, train.Config{
		Epochs: 8, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1, Log: os.Stdout,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nsoftware test accuracy: %.3f\n", res.FinalTestAcc)

	// 3. Deploy onto 32-level memristor crossbars (Section II-B):
	// one crossbar per weight matrix, weights mapped to conductances
	// via eq. (4) and quantized to the device level grid.
	mn, err := crossbar.NewMappedNetwork(net, device.Params32(), aging.DefaultModel(), 300)
	if err != nil {
		return err
	}
	if _, err := mapping.Map(mn, mapping.Config{Policy: mapping.Fresh}, nil, nil); err != nil {
		return err
	}
	batch := testDS.Batches(testDS.Len(), nil)[0]
	acc, err := mn.Accuracy(batch.X, batch.Y)
	if err != nil {
		return err
	}
	fmt.Printf("hardware accuracy after mapping: %.3f\n", acc)
	fmt.Printf("programming cost: %d pulses, %.1f stress units\n", mn.TotalPulses(), mn.TotalStress())

	// 4. Read-disturb drift degrades the analog state; online tuning
	// (Section II-C, eq. (5)) repairs it with sign-based pulses — and
	// every pulse ages the array a little more.
	mn.Drift(0.08, tensor.NewRNG(3))
	if acc, err = mn.Accuracy(batch.X, batch.Y); err != nil {
		return err
	}
	fmt.Printf("accuracy after drift: %.3f\n", acc)

	trainBatch := trainDS.Batches(96, nil)[0]
	tuneRes, err := tuning.Tune(mn, trainDS, trainBatch.X, trainBatch.Y, tuning.Config{
		MaxIters: 50, TargetAcc: res.FinalTestAcc - 0.05, BatchSize: 32, Seed: 2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("tuning: converged=%v in %d iterations (%d pulses)\n",
		tuneRes.Converged, tuneRes.Iterations, tuneRes.Pulses)
	if acc, err = mn.Accuracy(batch.X, batch.Y); err != nil {
		return err
	}
	fmt.Printf("accuracy after tuning: %.3f\n", acc)

	// 5. Inspect the aging state the pulses left behind.
	for _, l := range mn.Layers {
		min, mean := l.Crossbar.UsableLevelStats()
		fmt.Printf("layer %-12s usable levels: min=%d mean=%.1f of %d\n",
			l.Name, min, mean, l.Crossbar.Params().Levels)
	}
	return nil
}
