// lenet_lifetime runs the paper's headline experiment end-to-end on
// LeNet-5: train conventionally and with the skewed regularizer, then
// simulate the deployment life of the crossbars under the three
// scenarios of Table I (T+T, ST+T, ST+AT) and report the lifetimes.
//
// Run with: go run ./examples/lenet_lifetime [-fast]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"memlife/internal/experiments"
	"memlife/internal/lifetime"
)

func main() {
	fast := flag.Bool("fast", true, "use the reduced-size fixture (seconds instead of minutes)")
	flag.Parse()
	if err := run(*fast); err != nil {
		log.Fatal(err)
	}
}

func run(fast bool) error {
	opt := experiments.Options{Fast: fast, Seed: 1, Log: os.Stdout}
	fmt.Println("training LeNet-5 twice (L2 and skewed regularizer)...")
	bundle, err := experiments.LeNetBundle(opt)
	if err != nil {
		return err
	}
	fmt.Printf("\nsoftware accuracy: conventional %.3f, skewed %.3f\n", bundle.NormalAcc, bundle.SkewedAcc)

	row, err := experiments.Table1Bundle(bundle, opt)
	if err != nil {
		return err
	}
	fmt.Printf("\nlifetimes (applications served before the crossbar fails):\n")
	fmt.Printf("  %-6s %12d\n", lifetime.TT, row.LifeTT)
	fmt.Printf("  %-6s %12d  (%.1fx)\n", lifetime.STT, row.LifeSTT, row.RatioSTT)
	fmt.Printf("  %-6s %12d  (%.1fx)\n", lifetime.STAT, row.LifeSTAT, row.RatioSTAT)
	fmt.Println("\npaper reference (LeNet-5): ST+T ~6x, ST+AT ~8x")
	return nil
}
