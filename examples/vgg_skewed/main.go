// vgg_skewed trains the (width-reduced) VGG-16 with the paper's skewed
// regularizer and prints the per-layer weight distributions — the data
// behind Fig. 9 — together with their mapped-resistance statistics.
//
// Run with: go run ./examples/vgg_skewed [-fast]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"memlife/internal/analysis"
	"memlife/internal/crossbar"
	"memlife/internal/experiments"
	"memlife/internal/train"
)

func main() {
	fast := flag.Bool("fast", true, "use the reduced-size fixture")
	flag.Parse()
	if err := run(*fast); err != nil {
		log.Fatal(err)
	}
}

func run(fast bool) error {
	opt := experiments.Options{Fast: fast, Seed: 1, Log: os.Stdout}
	fmt.Println("training VGG-16 twice (L2 and skewed regularizer)...")
	b, err := experiments.VGGBundle(opt)
	if err != nil {
		return err
	}
	fmt.Printf("\nsoftware accuracy: conventional %.3f, skewed %.3f\n\n", b.NormalAcc, b.SkewedAcc)

	fmt.Println("per-layer weight statistics after skewed training:")
	for _, s := range train.NetworkStats(b.Skewed) {
		fmt.Println("  " + s.String())
	}

	// Fig. 9: the third layer's skewed weight histogram.
	third := b.Skewed.WeightLayers()[2]
	fmt.Printf("\nFig. 9 — weight distribution of %s:\n", third.Param.Name)
	hist := analysis.NewHistogram(third.Param.W.Data(), 16)
	fmt.Print(hist.Render(40))

	// Where do these weights land in resistance space? (Fig. 6b)
	p := experiments.DeviceParams()
	wMin, wMax := third.Param.W.MinMax()
	var res []float64
	for _, w := range third.Param.W.Data() {
		target := crossbar.TargetResistance(w, wMin, wMax, p.RminFresh, p.RmaxFresh)
		res = append(res, p.LevelResistance(p.NearestLevel(target)))
	}
	sum := analysis.Summarize(res)
	fmt.Printf("\nmapped resistances: median %.0f Ohm (range %.0f..%.0f); higher is better for aging\n",
		sum.Median, sum.Min, sum.Max)
	fmt.Printf("fraction above mid-range: %.2f\n",
		1-analysis.NewHistogramRange(res, p.RminFresh, p.RmaxFresh, 16).MassBelow((p.RminFresh+p.RmaxFresh)/2))
	return nil
}
