// aging_explorer studies a single memristor's aging behaviour: how the
// valid resistance range (eq. (6)/(7)) and the usable level count decay
// with programming activity, and how strongly the programming
// conductance influences that decay — the physics behind the paper's
// skewed-weight idea.
//
// Run with: go run ./examples/aging_explorer
package main

import (
	"fmt"

	"memlife/internal/aging"
	"memlife/internal/analysis"
	"memlife/internal/device"
)

func main() {
	p := device.Params32()
	m := aging.DefaultModel()

	fmt.Printf("device: %d levels, R in [%.0f, %.0f] Ohm, %.1fV/%.0fns pulses\n",
		p.Levels, p.RminFresh, p.RmaxFresh, p.Vprog, p.PulseWidth*1e9)
	fmt.Printf("aging model: A=%.0f B=%.0f Ea=%.2feV M=%.2f Tref=%.0fK\n\n",
		m.A, m.B, m.Ea, m.M, m.TrefK)

	// 1. Range decay under full-range cycling (worst case).
	fmt.Println("full-range cycling (LRS <-> HRS), one device:")
	d := device.New(p)
	var rows [][]string
	for cycle := 0; cycle <= 50; cycle += 10 {
		lo, hi := m.Bounds(p, d.Stress(), 300)
		rows = append(rows, []string{
			fmt.Sprintf("%d", cycle),
			fmt.Sprintf("%d", d.Pulses()),
			fmt.Sprintf("%.2f", d.Stress()),
			fmt.Sprintf("%.0f", lo),
			fmt.Sprintf("%.0f", hi),
			fmt.Sprintf("%d", p.UsableLevels(lo, hi)),
		})
		for k := 0; k < 10; k++ {
			lo, hi := m.Bounds(p, d.Stress(), 300)
			d.Program(p.RminFresh, lo, hi)
			lo, hi = m.Bounds(p, d.Stress(), 300)
			d.Program(p.RmaxFresh, lo, hi)
		}
	}
	fmt.Print(analysis.Table(
		[]string{"cycles", "pulses", "stress", "R_aged_min", "R_aged_max", "usable levels"}, rows))

	// 2. The conductance dependence: cycling between two adjacent
	// levels at the low-R end vs the high-R end.
	fmt.Println("\nconductance dependence (100 pulses each):")
	lowR := device.New(p) // high conductance corner
	highR := device.New(p)
	for k := 0; k < 50; k++ {
		lowR.Program(p.LevelResistance(0), p.RminFresh, p.RmaxFresh)
		lowR.Program(p.LevelResistance(1), p.RminFresh, p.RmaxFresh)
		highR.Program(p.LevelResistance(p.Levels-2), p.RminFresh, p.RmaxFresh)
		highR.Program(p.LevelResistance(p.Levels-1), p.RminFresh, p.RmaxFresh)
	}
	_, hiLow := m.Bounds(p, lowR.Stress(), 300)
	_, hiHigh := m.Bounds(p, highR.Stress(), 300)
	fmt.Printf("  low-R  (high-g) cycling: stress %.2f -> upper bound %.0f Ohm\n", lowR.Stress(), hiLow)
	fmt.Printf("  high-R (low-g)  cycling: stress %.2f -> upper bound %.0f Ohm\n", highR.Stress(), hiHigh)
	fmt.Printf("  stress ratio: %.1fx — the skewed-weight mechanism of Section IV-A\n",
		lowR.Stress()/highR.Stress())

	// 3. Temperature acceleration (Arrhenius).
	fmt.Println("\ntemperature acceleration (same 50 cycles of stress):")
	for _, tK := range []float64{280, 300, 320, 340, 360} {
		lo, hi := m.Bounds(p, lowR.Stress(), tK)
		fmt.Printf("  T=%3.0fK accel=%.2fx usable levels=%d\n", tK, m.Accel(tK), p.UsableLevels(lo, hi))
	}
}
