package main

import (
	"strings"
	"testing"
)

// TestRunCLIErrors locks the CLI's user-error behavior: one-line
// diagnostics on stderr and distinct non-zero exit codes, never a
// panic or stack trace.
func TestRunCLIErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr; empty means stderr unchecked
	}{
		{"unknown experiment", []string{"-run", "no-such-experiment"}, 1, `unknown experiment "no-such-experiment"`},
		{"all and run conflict", []string{"-all", "-run", "table1"}, 2, "mutually exclusive"},
		{"undefined flag", []string{"-bogus"}, 2, ""},
		{"stray positional arg", []string{"-fast", "table1"}, 2, `unexpected argument "table1"`},
		{"no action", []string{"-fast"}, 2, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q must contain %q", stderr.String(), tc.wantErr)
			}
			if n := strings.Count(strings.TrimSpace(stderr.String()), "\n"); tc.wantErr != "" && n > 0 {
				t.Fatalf("user error must be a one-line message, got %d extra lines:\n%s", n, stderr.String())
			}
		})
	}
}

// TestRunCLIList smoke-tests the success path that needs no training.
func TestRunCLIList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, id := range []string{"table1", "fault-sweep"} {
		if !strings.Contains(stdout.String(), id) {
			t.Fatalf("-list output must mention %s:\n%s", id, stdout.String())
		}
	}
}
