package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCLIErrors locks the CLI's user-error behavior: one-line
// diagnostics on stderr and distinct non-zero exit codes, never a
// panic or stack trace.
func TestRunCLIErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr; empty means stderr unchecked
	}{
		{"unknown experiment", []string{"-run", "no-such-experiment"}, 1, `unknown experiment "no-such-experiment"`},
		{"all and run conflict", []string{"-all", "-run", "table1"}, 2, "mutually exclusive"},
		{"undefined flag", []string{"-bogus"}, 2, ""},
		{"stray positional arg", []string{"-fast", "table1"}, 2, `unexpected argument "table1"`},
		{"no action", []string{"-fast"}, 2, ""},
		{"campaign without selection", []string{"-seeds", "3"}, 2, "needs -run or -all"},
		{"bad seed count", []string{"-run", "fig4", "-seeds", "0"}, 2, "-seeds must be >= 1"},
		{"resume without journal", []string{"-run", "fig4", "-resume"}, 2, "-resume needs -checkpoint or -json"},
		{"campaign of metricless experiment", []string{"-run", "fig3", "-seeds", "2"}, 1, ""},
		{"campaign of unknown experiment", []string{"-run", "nope", "-seeds", "2"}, 1, `unknown experiment "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(context.Background(), tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q must contain %q", stderr.String(), tc.wantErr)
			}
			if n := strings.Count(strings.TrimSpace(stderr.String()), "\n"); tc.wantErr != "" && n > 0 {
				t.Fatalf("user error must be a one-line message, got %d extra lines:\n%s", n, stderr.String())
			}
		})
	}
}

// TestRunCLIList smoke-tests the success path that needs no training.
func TestRunCLIList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, id := range []string{"table1", "fault-sweep", "campaign-lifetime"} {
		if !strings.Contains(stdout.String(), id) {
			t.Fatalf("-list output must mention %s:\n%s", id, stdout.String())
		}
	}
}

// campaignJSON runs one fig4 campaign and returns the canonical JSON
// bytes. fig4 is training-free, so these end-to-end runs cost
// milliseconds.
func campaignJSON(t *testing.T, extra ...string) []byte {
	t.Helper()
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	args := append([]string{"-run", "fig4", "-fast", "-seeds", "4", "-json", out}, extra...)
	var stdout, stderr strings.Builder
	if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
		t.Fatalf("campaign exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "levels_final") {
		t.Fatalf("campaign summary must list metrics:\n%s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCampaignJSONDeterministicAcrossWorkers is the CLI half of the
// determinism guarantee: -workers 1 and -workers 4 must produce
// byte-identical aggregated JSON.
func TestCampaignJSONDeterministicAcrossWorkers(t *testing.T) {
	one := campaignJSON(t, "-workers", "1")
	four := campaignJSON(t, "-workers", "4")
	if string(one) != string(four) {
		t.Fatalf("-workers must not change the JSON:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", one, four)
	}
}

// TestCampaignResume reruns a finished campaign with -resume: every
// shard must come from the journal and the JSON must not change.
func TestCampaignResume(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	base := []string{"-run", "fig4", "-fast", "-seeds", "3", "-json", out}

	var stdout, stderr strings.Builder
	if code := run(context.Background(), base, &stdout, &stderr); code != 0 {
		t.Fatalf("first run exited %d: %s", code, stderr.String())
	}
	first, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out + ".ckpt.jsonl"); err != nil {
		t.Fatalf("-json must imply a checkpoint journal: %v", err)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), append(base, "-resume", "-v"), &stdout, &stderr); code != 0 {
		t.Fatalf("resume exited %d: %s", code, stderr.String())
	}
	second, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("resumed JSON differs:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(stderr.String(), "from checkpoint") {
		t.Fatalf("-v resume run must report checkpointed shards:\n%s", stderr.String())
	}
}

// TestCampaignSeedSensitivity: different base seeds must change the
// shard seeds (and so the fingerprint/JSON), or the campaign would
// silently rerun identical work.
func TestCampaignSeedSensitivity(t *testing.T) {
	a := campaignJSON(t, "-seed", "1")
	b := campaignJSON(t, "-seed", "2")
	if string(a) == string(b) {
		t.Fatal("different base seeds must produce different campaign JSON")
	}
}

// TestParallelAllOrdersOutput runs several cheap experiments through
// the parallel text path and checks stdout keeps selection order.
func TestParallelAllOrdersOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	args := []string{"-run", "fig4,fig3,fig6", "-fast", "-workers", "3"}
	if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
		t.Fatalf("parallel run exited %d: %s", code, stderr.String())
	}
	got := stdout.String()
	i4 := strings.Index(got, "=== fig4:")
	i3 := strings.Index(got, "=== fig3:")
	i6 := strings.Index(got, "=== fig6:")
	if i4 < 0 || i3 < 0 || i6 < 0 || !(i4 < i3 && i3 < i6) {
		t.Fatalf("parallel output must keep selection order (fig4 < fig3 < fig6), got offsets %d %d %d:\n%s", i4, i3, i6, got)
	}
}

// TestCancelledContextAborts: an already-cancelled context must abort
// the campaign with an error, leaving the checkpoint for a resume.
func TestCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr strings.Builder
	dir := t.TempDir()
	args := []string{"-run", "fig4", "-fast", "-seeds", "3", "-json", filepath.Join(dir, "out.json")}
	if code := run(ctx, args, &stdout, &stderr); code != 1 {
		t.Fatalf("cancelled campaign must exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr must mention the interruption:\n%s", stderr.String())
	}
}

// TestVersionFlag: -version prints a build identifier and exits 0.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(context.Background(), []string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exited %d: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "memlife ") {
		t.Fatalf("-version output must start with the binary name, got %q", stdout.String())
	}
}

// dumpSpec runs -dump-spec with the given extra args and returns stdout.
func dumpSpec(t *testing.T, extra ...string) string {
	t.Helper()
	var stdout, stderr strings.Builder
	args := append([]string{"-dump-spec"}, extra...)
	if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
		t.Fatalf("-dump-spec %v exited %d: %s", extra, code, stderr.String())
	}
	return stdout.String()
}

// TestDumpSpecRoundTrip is the CLI half of the resolution contract: the
// dumped spec is valid JSON that, fed back through -scenario, resolves
// to byte-identical output — and explicitly set flags override the file.
func TestDumpSpecRoundTrip(t *testing.T) {
	defaults := dumpSpec(t)
	for _, want := range []string{`"version": 1`, `"name": "lenet"`, `"scenario": "ST+AT"`, `"max_iters": 150`} {
		if !strings.Contains(defaults, want) {
			t.Fatalf("default dump must contain %s:\n%s", want, defaults)
		}
	}

	// Feeding a dump back through -scenario must reproduce it exactly.
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(defaults), 0o644); err != nil {
		t.Fatal(err)
	}
	if back := dumpSpec(t, "-scenario", path); back != defaults {
		t.Fatalf("-dump-spec | -scenario round trip drifted:\ngot:\n%s\nwant:\n%s", back, defaults)
	}

	// An explicitly set flag overrides the file. The full dump pins every
	// field, so -fast flips only run.fast there; against a sparse file
	// the flag also picks the fast defaults tier for unmentioned fields.
	fast := dumpSpec(t, "-scenario", path, "-fast", "-seed", "9")
	if !strings.Contains(fast, `"fast": true`) || !strings.Contains(fast, `"seed": 9`) {
		t.Fatalf("explicit flags must override the scenario file:\n%s", fast)
	}
	if !strings.Contains(fast, `"max_iters": 150`) {
		t.Fatalf("fields pinned by the file must survive -fast:\n%s", fast)
	}
	sparse := filepath.Join(dir, "sparse.json")
	if err := os.WriteFile(sparse, []byte(`{"version": 1, "scenario": "T+T"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tiered := dumpSpec(t, "-scenario", sparse, "-fast")
	if !strings.Contains(tiered, `"max_iters": 40`) || !strings.Contains(tiered, `"scenario": "T+T"`) {
		t.Fatalf("-fast over a sparse file must select the fast defaults tier:\n%s", tiered)
	}
}

// TestScenarioCLIErrors: spec-mode user errors are one-line diagnostics.
func TestScenarioCLIErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 1, "scenaro": "T+T"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"scenario with run", []string{"-scenario", bad, "-run", "table1"}, 2, "exclude"},
		{"scenario with campaign", []string{"-scenario", bad, "-seeds", "3"}, 2, "exclude"},
		{"dump-spec with bench", []string{"-dump-spec", "-bench"}, 2, "exclude"},
		{"unknown field", []string{"-scenario", bad}, 1, "scenaro"},
		{"missing file", []string{"-scenario", filepath.Join(dir, "absent.json")}, 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(context.Background(), tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q must contain %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestExampleScenariosResolve: every shipped example must resolve and
// validate against the current schema (the CI scenarios job then runs
// them end to end).
func TestExampleScenariosResolve(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example scenarios found")
	}
	for _, f := range files {
		out := dumpSpec(t, "-scenario", f)
		if !strings.Contains(out, `"version": 1`) {
			t.Fatalf("%s: resolved dump looks wrong:\n%s", f, out)
		}
	}
}
