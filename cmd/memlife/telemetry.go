package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"memlife/internal/telemetry"
)

// telemetrySession owns the process-wide telemetry wiring of one CLI
// invocation: the global registry (-metrics-out / -debug-addr), the
// JSONL tracer (-trace-out), and the debug HTTP listener. The zero
// session (no telemetry flags) is inert.
type telemetrySession struct {
	reg        *telemetry.Registry
	tracer     *telemetry.Tracer
	traceFile  *os.File
	debug      *telemetry.DebugServer
	metricsOut string
}

// startTelemetry installs telemetry when any of -metrics-out,
// -trace-out or -debug-addr is set. The trace file is streamed to
// directly (not temp-then-rename): JSONL is a journal whose readers
// tolerate a torn final line, and a killed run should keep the spans it
// already emitted.
func startTelemetry(c cliConfig, stderr io.Writer) (*telemetrySession, int) {
	s := &telemetrySession{metricsOut: c.metricsOut}
	if c.metricsOut == "" && c.traceOut == "" && c.debugAddr == "" {
		return s, 0
	}
	s.reg = telemetry.NewRegistry()
	telemetry.SetGlobal(s.reg)
	if c.traceOut != "" {
		f, err := os.Create(c.traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "memlife: %v\n", err)
			s.finish(stderr)
			return nil, 1
		}
		s.traceFile = f
		s.tracer = telemetry.NewTracer(f)
		telemetry.SetGlobalTracer(s.tracer)
	}
	if c.debugAddr != "" {
		srv, err := telemetry.StartDebug(c.debugAddr, s.reg)
		if err != nil {
			fmt.Fprintf(stderr, "memlife: %v\n", err)
			s.finish(stderr)
			return nil, 1
		}
		s.debug = srv
		fmt.Fprintf(stderr, "memlife: debug server on http://%s (/metrics/json, /healthz, /debug/pprof/)\n", srv.Addr())
	}
	return s, 0
}

// finish tears the session down: stops the debug server, writes the
// -metrics-out snapshot (temp-then-rename, so a failure never leaves a
// partial file), surfaces any trace-sink error, and uninstalls the
// globals. Returns a non-zero exit code on write failures. Nil-safe.
func (s *telemetrySession) finish(stderr io.Writer) int {
	if s == nil {
		return 0
	}
	code := 0
	if s.debug != nil {
		if err := s.debug.Close(); err != nil {
			fmt.Fprintf(stderr, "memlife: closing debug server: %v\n", err)
		}
	}
	if s.metricsOut != "" && s.reg != nil {
		snap := s.reg.Snapshot()
		snap.Version = fmt.Sprintf("memlife %s", buildVersion())
		if err := writeFileAtomic(s.metricsOut, snap.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "memlife: writing %s: %v\n", s.metricsOut, err)
			code = 1
		}
	}
	if s.tracer != nil {
		telemetry.SetGlobalTracer(nil)
		if err := s.tracer.Err(); err != nil {
			fmt.Fprintf(stderr, "memlife: trace sink: %v\n", err)
			code = 1
		}
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil {
			fmt.Fprintf(stderr, "memlife: closing trace file: %v\n", err)
			code = 1
		}
	}
	telemetry.SetGlobal(nil)
	return code
}

// writeFileAtomic writes via a temp file in the destination directory
// and renames it into place, so readers never observe a partial file —
// a signal-cancelled run leaves either the old content or none, never a
// truncated JSON document.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
