// Command memlife runs the reproduction experiments of "Aging-aware
// Lifetime Enhancement for Memristor-based Neuromorphic Computing"
// (DATE 2019). Each experiment regenerates one table or figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	memlife -list
//	memlife -run table1 [-fast] [-seed N] [-v]
//	memlife -all [-fast]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"memlife/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		run    = flag.String("run", "", "comma-separated experiment ids to run")
		all    = flag.Bool("all", false, "run every experiment")
		fast   = flag.Bool("fast", false, "use reduced sizes/budgets (seconds instead of minutes)")
		seed   = flag.Int64("seed", 1, "random seed")
		verb   = flag.Bool("v", false, "log progress to stderr")
		outDir = flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	case *all || *run != "":
		opt := experiments.Options{Fast: *fast, Seed: *seed}
		if *verb {
			opt.Log = os.Stderr
		}
		var ids []string
		if *all {
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		} else {
			ids = strings.Split(*run, ",")
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "memlife: creating -out dir: %v\n", err)
				os.Exit(1)
			}
		}
		for _, id := range ids {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "memlife: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			var w io.Writer = os.Stdout
			var f *os.File
			if *outDir != "" {
				var err error
				f, err = os.Create(filepath.Join(*outDir, id+".txt"))
				if err != nil {
					fmt.Fprintf(os.Stderr, "memlife: %v\n", err)
					os.Exit(1)
				}
				w = io.MultiWriter(os.Stdout, f)
			}
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			start := time.Now()
			err := e.Run(w, opt)
			if f != nil {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "memlife: %s failed: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("=== %s done in %s ===\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}
